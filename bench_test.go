package rog

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (plus the design-choice ablations from DESIGN.md).
// Each benchmark reruns the corresponding experiment at QuickScale and
// reports the figure's headline quantities as benchmark metrics; the full
// formatted report for any experiment is printed by `go run ./cmd/rogbench
// -exp <id>` (add -full for the paper-scale run).

import (
	"math"
	"testing"

	"rog/internal/atp"
	"rog/internal/harness"
	"rog/internal/trace"
)

// runEndToEndBench executes one end-to-end figure and reports per-system
// stall fraction and final quality.
func runEndToEndBench(b *testing.B, o harness.EndToEndOptions) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		results, err := harness.RunEndToEnd(o)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		for _, r := range results {
			b.ReportMetric(r.StallFrac, "stall_frac_"+r.Label())
			b.ReportMetric(r.FinalValue, "final_"+r.Label())
			b.ReportMetric(float64(r.Iterations), "iters_"+r.Label())
		}
	}
}

// BenchmarkFig1EndToEnd regenerates Fig. 1: CRUDA outdoors across BSP,
// SSP-4, SSP-20, FLOWN, ROG-4, ROG-20 (time composition, statistical
// efficiency, accuracy vs time, energy — all four panels come from this
// run; rogbench prints them).
func BenchmarkFig1EndToEnd(b *testing.B) {
	runEndToEndBench(b, harness.EndToEndOptions{
		Paradigm: "cruda", Env: trace.Outdoor, Scale: harness.Quick,
	})
}

// BenchmarkFig3BandwidthTraces regenerates Fig. 3: the bandwidth
// instability statistics of the indoor and outdoor environments.
func BenchmarkFig3BandwidthTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, env := range []trace.Env{trace.Indoor, trace.Outdoor} {
			tr := trace.GenerateEnv(env, 300, 42)
			if i == 0 {
				b.ReportMetric(tr.MeanFluctuationInterval(0.2), "s_per_20pct_"+env.String())
				b.ReportMetric(tr.MeanFluctuationInterval(0.4), "s_per_40pct_"+env.String())
			}
		}
	}
}

// BenchmarkFig6EndToEnd regenerates Fig. 6: CRUDA indoors.
func BenchmarkFig6EndToEnd(b *testing.B) {
	runEndToEndBench(b, harness.EndToEndOptions{
		Paradigm: "cruda", Env: trace.Indoor, Scale: harness.Quick,
	})
}

// BenchmarkFig7EndToEnd regenerates Fig. 7: CRIMP outdoors (trajectory
// error, lower is better).
func BenchmarkFig7EndToEnd(b *testing.B) {
	runEndToEndBench(b, harness.EndToEndOptions{
		Paradigm: "crimp", Env: trace.Outdoor, Scale: harness.Quick,
	})
}

// BenchmarkFig8MicroEvent regenerates Fig. 8: bandwidth vs ROG's
// transmission rate vs staleness on one robot.
func BenchmarkFig8MicroEvent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := RunExperiment("fig8", QuickScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(out)), "report_bytes")
		}
	}
}

// BenchmarkFig9BatchSize regenerates the batch-size sensitivity study
// (Fig. 9 left column): BSP/SSP/ROG at batch x1, x2, x4.
func BenchmarkFig9BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, scale := range []int{1, 2, 4} {
			results, err := harness.RunEndToEnd(harness.EndToEndOptions{
				Paradigm: "cruda", Env: trace.Outdoor, Scale: harness.Quick,
				BatchScale: scale, Systems: harness.SensitivitySystems(),
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				for _, r := range results {
					b.ReportMetric(r.StallFrac, "stall_"+r.Label()+"_bx"+itoa(scale))
				}
			}
		}
	}
}

// BenchmarkFig9Workers regenerates the worker-count sensitivity study
// (Fig. 9 right column): 4, 6 and 8 robots.
func BenchmarkFig9Workers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{4, 6, 8} {
			results, err := harness.RunEndToEnd(harness.EndToEndOptions{
				Paradigm: "cruda", Env: trace.Outdoor, Scale: harness.Quick,
				Workers: n, Systems: harness.SensitivitySystems(),
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				for _, r := range results {
					b.ReportMetric(r.StallFrac, "stall_"+r.Label()+"_n"+itoa(n))
				}
			}
		}
	}
}

// BenchmarkFig10Threshold regenerates the threshold sensitivity study:
// ROG at thresholds 4/20/30/40.
func BenchmarkFig10Threshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := harness.RunEndToEnd(harness.EndToEndOptions{
			Paradigm: "cruda", Env: trace.Outdoor, Scale: harness.Quick,
			Systems: []harness.SystemSpec{
				{Strategy: ROG, Threshold: 4},
				{Strategy: ROG, Threshold: 20},
				{Strategy: ROG, Threshold: 30},
				{Strategy: ROG, Threshold: 40},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range results {
				b.ReportMetric(float64(r.Iterations), "iters_"+r.Label())
				b.ReportMetric(r.FinalValue, "final_"+r.Label())
			}
		}
	}
}

// BenchmarkTable1MTA regenerates Table I: MTA values for thresholds 2–8,
// verifying against the paper's published row.
func BenchmarkTable1MTA(b *testing.B) {
	paper := map[int]float64{2: 0.5, 3: 0.38, 4: 0.32, 5: 0.28, 6: 0.25, 7: 0.22, 8: 0.2}
	for i := 0; i < b.N; i++ {
		table := atp.MTATable()
		for s, want := range paper {
			if math.Abs(table[s]-want) > 0.011 {
				b.Fatalf("MTA(%d)=%v, paper says %v", s, table[s], want)
			}
		}
		if i == 0 {
			b.ReportMetric(table[4], "MTA_threshold4")
		}
	}
}

// BenchmarkTable2DefaultSetup regenerates Table II (the configuration
// echo).
func BenchmarkTable2DefaultSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("table2", QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3PowerStates regenerates Table III: per-state power.
func BenchmarkTable3PowerStates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := RunExperiment("table3", QuickScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(out)), "report_bytes")
		}
	}
}

// BenchmarkAblationGranularity compares rows vs layers vs elements
// (Sec. III-A's design argument).
func BenchmarkAblationGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("ablation-granularity", QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationImportance compares the importance-metric terms
// (magnitude only / staleness only / both).
func BenchmarkAblationImportance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("ablation-importance", QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSpeculative compares speculative transmission against
// inserting per-row timeout judgements.
func BenchmarkAblationSpeculative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("ablation-speculative", QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtPipeline measures the future-work extension: pipelining
// computation and communication on each robot (paper Sec. VI-D).
func BenchmarkExtPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("ext-pipeline", QuickScale); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
