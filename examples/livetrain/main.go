// Livetrain: ROG over real sockets.
//
// The other examples drive the virtual-time simulator; this one runs the
// actual wire protocol — 1-bit compressed rows, marker-framed, speculative
// sends with wall-clock deadlines, RSP staleness control on a parameter
// server — between goroutine workers connected over TCP loopback. It is
// the in-process analogue of deploying the paper's system on a robot team.
package main

import (
	"fmt"
	"net"
	"sync"

	"rog/internal/livenet"
	"rog/internal/nn"
	"rog/internal/rowsync"
	"rog/internal/tensor"
)

const (
	workers   = 3
	threshold = 4
	iters     = 60
	classes   = 5
	dim       = 8
)

func main() {
	// Shared synthetic task.
	r := tensor.NewRNG(42)
	centroids := make([][]float32, classes)
	for c := range centroids {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(r.Norm() * 2)
		}
		centroids[c] = v
	}
	batch := func(rr *tensor.RNG, n int) (*tensor.Matrix, []int) {
		x := tensor.New(n, dim)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			c := rr.Intn(classes)
			y[i] = c
			for j := 0; j < dim; j++ {
				x.Set(i, j, centroids[c][j]+float32(rr.Norm()))
			}
		}
		return x, y
	}

	// One pretrained prototype, cloned to every worker.
	proto := nn.NewClassifierMLP(dim, []int{16}, classes, tensor.NewRNG(7))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	fmt.Printf("model: %d parameters in %d rows\n", proto.NumParams(), part.NumUnits())

	// Parameter server on TCP loopback.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer ln.Close()
	srv, err := livenet.NewServer(part, livenet.ServerConfig{Workers: workers, Threshold: threshold})
	if err != nil {
		panic(err)
	}
	var serverWG sync.WaitGroup
	serverWG.Add(workers)
	go func() {
		for id := 0; id < workers; id++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(id int, conn net.Conn) {
				defer serverWG.Done()
				if err := srv.HandleConn(id, conn); err != nil {
					fmt.Println("server:", err)
				}
			}(id, conn)
		}
	}()

	evalX, evalY := batch(tensor.NewRNG(99), 300)
	models := make([]*nn.Sequential, workers)
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			panic(err)
		}
		m := nn.NewClassifierMLP(dim, []int{16}, classes, tensor.NewRNG(1))
		m.CopyParamsFrom(proto)
		models[id] = m
		w := livenet.NewWorker(m, part, conn, livenet.WorkerConfig{
			ID: id, Threshold: threshold, LR: 0.08, Momentum: 0.9,
		})
		wg.Add(1)
		go func(id int, conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			rr := tensor.NewRNG(uint64(id)*13 + 5)
			for k := 0; k < iters; k++ {
				err := w.RunIteration(func() {
					x, y := batch(rr, 24)
					_, g := nn.SoftmaxCrossEntropy(models[id].Forward(x), y)
					models[id].Backward(g)
				})
				if err != nil {
					fmt.Printf("worker %d: %v\n", id, err)
					return
				}
				if id == 0 && (k+1)%10 == 0 {
					acc := nn.Accuracy(models[0].Forward(evalX), evalY)
					fmt.Printf("iteration %2d: worker-0 accuracy %.3f\n", k+1, acc)
				}
			}
		}(id, conn)
	}
	wg.Wait()
	srv.Close()
	serverWG.Wait()

	for id, m := range models {
		fmt.Printf("worker %d final accuracy: %.3f\n", id, nn.Accuracy(m.Forward(evalX), evalY))
	}
	fmt.Printf("max staleness observed at server: %d (threshold %d)\n",
		srv.MaxStalenessObserved(), threshold)
}
