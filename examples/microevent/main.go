// Microevent: how ROG reacts to bandwidth in real time (the paper's
// Fig. 8 micro-event analysis).
//
// One robot's link capacity, the fraction of rows ROG chose to transmit in
// each iteration (transmission rate), and how many iterations the robot
// lags the fastest worker (staleness) are sampled at every push. When
// bandwidth degrades, the transmission rate drops within the same
// iteration; when it recovers, the robot catches up and staleness drains.
package main

import (
	"fmt"
	"strings"

	"rog"
)

func main() {
	wl := rog.NewCRUDAWorkload(rog.DefaultCRUDAOptions())
	cfg := rog.Config{
		Strategy:          rog.ROG,
		Workers:           4,
		Threshold:         4,
		Env:               rog.Outdoor,
		Seed:              11,
		MaxVirtualSeconds: 240,
		CheckpointEvery:   1000, // micro run: skip expensive evaluation
		RecordMicro:       true,
	}
	res, err := rog.Run(cfg, wl)
	if err != nil {
		panic(err)
	}

	fmt.Println("time(s)  bandwidth(Mbps)  tx-rate  staleness")
	for _, m := range res.Micro {
		bwBar := bar(m.LinkMbps, 160, 24)
		txBar := bar(100*m.TxRate, 100, 12)
		fmt.Printf("%7.1f  %7.1f %-24s  %3.0f%% %-12s  %d\n",
			m.Time, m.LinkMbps, bwBar, 100*m.TxRate, txBar, m.Staleness)
	}
	fmt.Println("\nWhen the link fades, ROG immediately shrinks the transmission")
	fmt.Println("rate instead of blocking; staleness stays within the threshold.")
}

func bar(v, max float64, width int) string {
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
