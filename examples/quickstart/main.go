// Quickstart: apply ROG to an existing training loop in tens of lines.
//
// The paper's pitch is that adopting ROG means swapping the optimizer. In
// this reproduction the equivalent is implementing the small rog.Workload
// interface on your own model and data — everything below `main` is the
// complete integration.
package main

import (
	"fmt"

	"rog"
)

func main() {
	// A ready-made workload: 4 robots adapting a pretrained classifier to
	// a domain shift over an unstable outdoor wireless network.
	opts := rog.DefaultCRUDAOptions()
	opts.PretrainIters = 200
	wl := rog.NewCRUDAWorkload(opts)
	fmt.Printf("pretrained model: clean accuracy %.3f -> after domain shift %.3f\n",
		wl.PretrainCleanAcc, wl.PretrainNoisyAcc)

	// Train for 5 virtual minutes with ROG (threshold 4), then with BSP,
	// and compare what each achieved in the same time budget.
	for _, spec := range []struct {
		strategy  rog.Strategy
		threshold int
	}{
		{rog.ROG, 4},
		{rog.BSP, 0},
	} {
		wl := rog.NewCRUDAWorkload(opts) // fresh copy: same pretrained state
		cfg := rog.Config{
			Strategy:          spec.strategy,
			Workers:           4,
			Threshold:         spec.threshold,
			Env:               rog.Outdoor,
			Seed:              7,
			MaxVirtualSeconds: 300,
			CheckpointEvery:   10,
		}
		res, err := rog.Run(cfg, wl)
		if err != nil {
			panic(err)
		}
		c := res.Composition
		fmt.Printf("\n%s: %d iterations in 5 virtual minutes\n", res.Label(), res.Iterations)
		fmt.Printf("  avg iteration: compute %.2fs  comm %.2fs  stall %.2fs\n",
			c.Compute, c.Comm, c.Stall)
		fmt.Printf("  final accuracy %.4f, energy %.0fJ\n", res.FinalValue, res.TotalJoules)
	}
}
