// CRUDA: coordinated robotic unsupervised domain adaptation (the paper's
// first application paradigm, Figs. 1 and 6).
//
// A team of robots shares an object-recognition model whose accuracy was
// degraded by an environmental shift (fog/brightness). They adapt it by
// distributed training over their unstable wireless network. This example
// runs the full paper lineup in both environments and prints the accuracy
// each system reaches in the same time budget.
package main

import (
	"fmt"

	"rog"
)

func main() {
	scale := rog.QuickScale
	for _, env := range []rog.Env{rog.Indoor, rog.Outdoor} {
		fmt.Printf("=== CRUDA, %s environment (%.0f virtual seconds per system) ===\n\n",
			env, scale.VirtualSeconds)
		results, err := rog.RunEndToEnd(rog.EndToEndOptions{
			Paradigm: "cruda",
			Env:      env,
			Scale:    scale,
		})
		if err != nil {
			panic(err)
		}
		fmt.Println(rog.CompositionTable(results))
		fmt.Println(rog.SeriesByTime(results, scale.VirtualSeconds/6))
	}
	fmt.Println("Higher is better; ROG sustains more iterations per second under")
	fmt.Println("bandwidth fluctuation, which compounds into higher accuracy.")
}
