// CRIMP: coordinated robotic implicit mapping and positioning (the paper's
// second application paradigm, Fig. 7).
//
// Robots explore a scene, each along its own trajectory, and jointly train
// an implicit map (a coordinate MLP). Quality is the trajectory error:
// localize perturbed poses against the learned map and measure the distance
// to ground truth — lower is better.
package main

import (
	"fmt"

	"rog"
)

func main() {
	scale := rog.QuickScale
	fmt.Printf("=== CRIMP, outdoor environment (%.0f virtual seconds per system) ===\n\n",
		scale.VirtualSeconds)

	results, err := rog.RunEndToEnd(rog.EndToEndOptions{
		Paradigm: "crimp",
		Env:      rog.Outdoor,
		Scale:    scale,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(rog.CompositionTable(results))
	fmt.Println(rog.SeriesByTime(results, scale.VirtualSeconds/6))
	fmt.Println("Values are trajectory errors (lower is better). With the smaller")
	fmt.Println("CRIMP model, compute shrinks too, so communication remains the")
	fmt.Println("bottleneck and the straggler effect persists (paper Sec. VI-A).")
}
