package rog

import (
	"fmt"

	"rog/internal/core"
	"rog/internal/harness"
)

// Experiment is one reproducible unit of the paper's evaluation (a figure,
// a table, or an ablation).
type Experiment = harness.Experiment

// ExperimentScale sizes an experiment run.
type ExperimentScale = harness.Scale

// Predefined experiment scales.
var (
	// QuickScale runs the experiments at ~1/9 of the paper's duration —
	// what the benchmarks use.
	QuickScale = harness.Quick
	// FullScale runs 60 virtual minutes per system, as in the paper.
	FullScale = harness.Full
)

// Experiments lists every reproducible experiment in paper order.
func Experiments() []Experiment { return harness.Registry() }

// RunExperiment reruns one experiment by id ("fig1", "table1",
// "ablation-granularity", …) and returns its formatted report.
func RunExperiment(id string, scale ExperimentScale) (string, error) {
	e, ok := harness.Find(id)
	if !ok {
		return "", fmt.Errorf("rog: unknown experiment %q (see Experiments())", id)
	}
	return e.Run(scale)
}

// SystemSpec identifies one compared system in an end-to-end run.
type SystemSpec = harness.SystemSpec

// EndToEndOptions configures a custom end-to-end comparison.
type EndToEndOptions = harness.EndToEndOptions

// RunEndToEnd executes a lineup of systems on an identical workload and
// network, returning one Result per system.
func RunEndToEnd(o EndToEndOptions) ([]*core.Result, error) { return harness.RunEndToEnd(o) }

// CompositionTable renders the average per-iteration time composition of a
// set of results (the Fig. 1a-style panel).
func CompositionTable(results []*Result) string { return harness.CompositionTable(results) }

// SeriesByTime renders quality against wall-clock time for a set of
// results (the Fig. 1c-style panel).
func SeriesByTime(results []*Result, step float64) string {
	return harness.SeriesByTime(results, step)
}
