module rog

go 1.22
