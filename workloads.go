package rog

import "rog/internal/harness"

// CRUDAOptions configures the coordinated robotic unsupervised domain
// adaptation workload (the paper's first application paradigm).
type CRUDAOptions = harness.CRUDAOptions

// CRUDAWorkload is a Workload: a classifier pretrained on a clean domain
// adapting online to corrupted data spread across non-IID robot shards.
type CRUDAWorkload = harness.CRUDAWorkload

// DefaultCRUDAOptions mirrors the paper's default setup at reduced scale.
func DefaultCRUDAOptions() CRUDAOptions { return harness.DefaultCRUDAOptions() }

// NewCRUDAWorkload synthesizes the dataset, pretrains the shared model,
// applies the domain shift and shards the data across workers.
func NewCRUDAWorkload(opts CRUDAOptions) *CRUDAWorkload { return harness.NewCRUDA(opts) }

// CRIMPOptions configures the coordinated robotic implicit mapping and
// positioning workload (the paper's second application paradigm).
type CRIMPOptions = harness.CRIMPOptions

// CRIMPWorkload is a Workload: a team of robots jointly trains an implicit
// map of a synthetic scene, scored by pose-localization error.
type CRIMPWorkload = harness.CRIMPWorkload

// DefaultCRIMPOptions mirrors the paper's CRIMP setup at reduced scale.
func DefaultCRIMPOptions() CRIMPOptions { return harness.DefaultCRIMPOptions() }

// NewCRIMPWorkload synthesizes the scene and per-robot trajectories.
func NewCRIMPWorkload(opts CRIMPOptions) *CRIMPWorkload { return harness.NewCRIMP(opts) }
