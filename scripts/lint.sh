#!/bin/sh
# lint.sh — run roglint, the repo's invariant analyzer suite
# (internal/analysis), over the whole module with per-pass timing.
# Exits non-zero on any finding that is not covered by a justified
# //roglint:ignore. Exit code 2 from roglint means the analyzer could
# not even load/type-check the tree — that is a build problem, not a
# lint finding, and the gate says so explicitly instead of folding it
# into the findings stream.
set -eu

cd "$(dirname "$0")/.."

rc=0
go run ./cmd/roglint -timing ./... || rc=$?
if [ "$rc" -eq 2 ]; then
	echo "lint: analyzer load error (exit 2) — fix the build before reading findings" >&2
fi
exit "$rc"
