#!/bin/sh
# lint.sh — run roglint, the repo's invariant analyzer suite
# (internal/analysis), over the whole module. Exits non-zero on any
# finding that is not covered by a justified //roglint:ignore.
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/roglint ./...
