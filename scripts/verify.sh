#!/bin/sh
# verify.sh — the pre-merge gate, in order: formatting, build, vet,
# roglint (the invariant analyzer — it runs before any test so a broken
# invariant fails fast, prints per-pass wall time, and distinguishes a
# tree the analyzer cannot load — exit 2, a build problem — from real
# findings), the full test suite, a trace smoke (a tiny
# traced simnet run piped through rogtrace — the observability pipeline
# must stay usable end to end, not just unit-green), a critical-path
# smoke (the same traced run through rogtrace critpath, which exits
# non-zero unless ≥99% of every worker's wall time decomposes and the
# gate stalls attribute), a crash-recovery
# smoke (a run whose parameter server is killed and recovered from its
# checkpoint store, then resumed by a fresh process), a serve smoke (a
# rogserve -listen process training in the background while a gated
# client and then a lossy retrying client exercise the inference tier
# over a real socket), and the
# race-sensitive packages (the concurrent livenet server, the policy
# engine it executes, the simnet drivers and version store that share
# engine.State with it, the wire transport, the lossnet datagram
# transport, the durable checkpoint store and the serving tier's
# snapshot publisher) again under -race. When a
# BENCH_<n>.json snapshot exists, a final non-fatal stage reruns its
# experiment and prints the drift — informational only, never a gate.
# Each stage reports its wall time.
set -eu

cd "$(dirname "$0")/.."

stage() {
	name=$1
	shift
	echo "== $name =="
	t0=$(date +%s)
	"$@"
	echo "   [$name: $(($(date +%s) - t0))s]"
}

check_fmt() {
	unformatted=$(gofmt -l .)
	if [ -n "$unformatted" ]; then
		echo "gofmt needed on:" >&2
		echo "$unformatted" >&2
		return 1
	fi
}

run_race() {
	go test -race ./internal/livenet/... ./internal/engine/... \
		./internal/rowsync/... ./internal/core/... ./internal/transport/... \
		./internal/lossnet/... ./internal/durable/... ./internal/obs/... \
		./internal/serve/...
}

run_serve_smoke() {
	tmp=$(mktemp -d)
	# The inference tier end to end over a real socket: a rogserve -listen
	# process trains in the background while a -connect client demands a
	# snapshot at least 2 versions in (the read gate must hold it until
	# training publishes that far), then a lossy client retries through a
	# frame-dropping channel.
	go build -o "$tmp/rogserve" ./cmd/rogserve
	"$tmp/rogserve" -listen 127.0.0.1:7917 -period 0.1 >"$tmp/listen.out" 2>&1 &
	srv=$!
	sleep 1
	out=$("$tmp/rogserve" -connect 127.0.0.1:7917 -n 5 -min-version 2) || {
		kill "$srv" 2>/dev/null
		cat "$tmp/listen.out" >&2
		rm -rf "$tmp"
		echo "serve smoke: gated client failed" >&2
		return 1
	}
	case "$out" in
	*"reply  4"*) ;;
	*)
		kill "$srv" 2>/dev/null
		echo "$out" >&2
		rm -rf "$tmp"
		echo "serve smoke: gated client finished short of 5 replies" >&2
		return 1
		;;
	esac
	out=$("$tmp/rogserve" -connect 127.0.0.1:7917 -n 5 -loss 0.5 -timeout 0.3 -retries 20 -seed 11) || {
		kill "$srv" 2>/dev/null
		rm -rf "$tmp"
		echo "serve smoke: lossy client never completed" >&2
		return 1
	}
	kill "$srv" 2>/dev/null
	rm -rf "$tmp"
	case "$out" in
	*"lossy channel dropped"*) ;;
	*)
		echo "$out" >&2
		echo "serve smoke: loss channel report missing" >&2
		return 1
		;;
	esac
}

run_recover_smoke() {
	tmp=$(mktemp -d)
	# Leg 1: kill the parameter server mid-run; it recovers from its own
	# checkpoints and the run completes.
	go run ./cmd/rogtrain -strategy rog -threshold 4 -minutes 2 \
		-checkpoint-dir "$tmp/ckpt" -checkpoint-every 20 \
		-faults "servercrash@45+10" >"$tmp/leg1.out" || {
		cat "$tmp/leg1.out" >&2
		rm -rf "$tmp"
		echo "recover smoke: crashed run failed" >&2
		return 1
	}
	case "$(cat "$tmp/leg1.out")" in
	*"recovery: recoveries 1"*) ;;
	*)
		cat "$tmp/leg1.out" >&2
		rm -rf "$tmp"
		echo "recover smoke: run never recovered from the scripted server crash" >&2
		return 1
		;;
	esac
	# Leg 2: a fresh process resumes the finished run from the same store.
	go run ./cmd/rogtrain -strategy rog -threshold 4 -minutes 3 \
		-checkpoint-dir "$tmp/ckpt" -resume >"$tmp/leg2.out" || {
		cat "$tmp/leg2.out" >&2
		rm -rf "$tmp"
		echo "recover smoke: resume failed over the surviving store" >&2
		return 1
	}
	rm -rf "$tmp"
}

run_trace_smoke() {
	tmp=$(mktemp -d)
	go run ./cmd/rogtrain -paradigm crimp -strategy rog -threshold 4 \
		-minutes 2 -trace "$tmp/run.jsonl" >/dev/null
	out=$(go run ./cmd/rogtrace "$tmp/run.jsonl") || {
		rm -rf "$tmp"
		echo "trace smoke: rogtrace failed on a fresh trace" >&2
		return 1
	}
	rm -rf "$tmp"
	case "$out" in
	*"avg iteration"*) ;;
	*)
		echo "trace smoke: rogtrace aggregate missing the composition summary" >&2
		return 1
		;;
	esac
}

run_critpath_smoke() {
	tmp=$(mktemp -d)
	go run ./cmd/rogtrain -paradigm crimp -strategy rog -threshold 4 \
		-minutes 2 -trace "$tmp/run.jsonl" >/dev/null
	# rogtrace critpath exits non-zero when any worker's decomposition
	# covers <99% of its wall time or the trace is structurally broken —
	# that exit code IS the assertion.
	out=$(go run ./cmd/rogtrace critpath "$tmp/run.jsonl") || {
		echo "$out" >&2
		rm -rf "$tmp"
		echo "critpath smoke: decomposition incomplete or trace broken" >&2
		return 1
	}
	rm -rf "$tmp"
	case "$out" in
	*"critical path"*) ;;
	*)
		echo "critpath smoke: rogtrace critpath missing the per-worker table" >&2
		return 1
		;;
	esac
	case "$out" in
	*"top blockers"*) ;;
	*)
		echo "critpath smoke: no stall attribution in a gated RSP run" >&2
		return 1
		;;
	esac
}

run_bench_drift() {
	latest=$(ls BENCH_[0-9]*.json 2>/dev/null | sort -t_ -k2 -n | tail -1)
	if [ -z "$latest" ]; then
		echo "   (no BENCH_<n>.json snapshot; run make bench-save to record one)"
		return 0
	fi
	# Non-fatal by design: drift is information for the reviewer, not a gate.
	go run ./cmd/rogbench -drift "$latest" || echo "   (bench-drift failed; not a gate)"
}

stage fmt check_fmt
stage build go build ./...
stage vet go vet ./...
stage lint sh scripts/lint.sh
stage test go test ./...
stage trace-smoke run_trace_smoke
stage critpath-smoke run_critpath_smoke
stage recover-smoke run_recover_smoke
stage serve-smoke run_serve_smoke
stage race run_race
stage bench-drift run_bench_drift

echo "verify: OK"
