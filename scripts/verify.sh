#!/bin/sh
# verify.sh — the pre-merge gate: formatting, build, vet, full test suite,
# and the race-sensitive packages (the concurrent livenet server, the
# policy engine it executes, and the version store shared with the
# simulated drivers) again under -race.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race (livenet, engine, rowsync) =="
go test -race ./internal/livenet/... ./internal/engine/... ./internal/rowsync/...

echo "verify: OK"
