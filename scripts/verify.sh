#!/bin/sh
# verify.sh — the pre-merge gate, in order: formatting, build, vet,
# roglint (the invariant analyzer — it runs before any test so a broken
# invariant fails fast), the full test suite, a trace smoke (a tiny
# traced simnet run piped through rogtrace — the observability pipeline
# must stay usable end to end, not just unit-green), and the
# race-sensitive packages (the concurrent livenet server, the policy
# engine it executes, the simnet drivers and version store that share
# engine.State with it, the wire transport and the lossnet datagram
# transport) again under -race. Each stage reports its wall time.
set -eu

cd "$(dirname "$0")/.."

stage() {
	name=$1
	shift
	echo "== $name =="
	t0=$(date +%s)
	"$@"
	echo "   [$name: $(($(date +%s) - t0))s]"
}

check_fmt() {
	unformatted=$(gofmt -l .)
	if [ -n "$unformatted" ]; then
		echo "gofmt needed on:" >&2
		echo "$unformatted" >&2
		return 1
	fi
}

run_race() {
	go test -race ./internal/livenet/... ./internal/engine/... \
		./internal/rowsync/... ./internal/core/... ./internal/transport/... \
		./internal/lossnet/...
}

run_trace_smoke() {
	tmp=$(mktemp -d)
	go run ./cmd/rogtrain -paradigm crimp -strategy rog -threshold 4 \
		-minutes 2 -trace "$tmp/run.jsonl" >/dev/null
	out=$(go run ./cmd/rogtrace "$tmp/run.jsonl") || {
		rm -rf "$tmp"
		echo "trace smoke: rogtrace failed on a fresh trace" >&2
		return 1
	}
	rm -rf "$tmp"
	case "$out" in
	*"avg iteration"*) ;;
	*)
		echo "trace smoke: rogtrace aggregate missing the composition summary" >&2
		return 1
		;;
	esac
}

stage fmt check_fmt
stage build go build ./...
stage vet go vet ./...
stage lint sh scripts/lint.sh
stage test go test ./...
stage trace-smoke run_trace_smoke
stage race run_race

echo "verify: OK"
