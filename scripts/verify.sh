#!/bin/sh
# verify.sh — the pre-merge gate: build, vet, full test suite, and the
# race-sensitive packages (the concurrent livenet server and the version
# store it shares with the simulated drivers) again under -race.
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race (livenet, rowsync) =="
go test -race ./internal/livenet/... ./internal/rowsync/...

echo "verify: OK"
