// Package trace models the bandwidth of real-world robotic IoT links.
//
// The paper measured (Fig. 3) that between two moving robots on 802.11ac,
// a ≥20 % bandwidth fluctuation happens about every 0.4 s and a ≥40 % one
// about every 1.2 s, with outdoor runs frequently fading to ≈0 Mbps. Since
// the paper's own artifact replays recorded traces through `tc` on
// stationary devices, this package plays the same role: it synthesizes
// traces calibrated to those statistics (plus CSV record/replay for real
// traces) and exposes the statistics used to validate them.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"rog/internal/tensor"
)

// Trace is a piecewise-constant bandwidth series in Mbps sampled every Dt
// seconds. Reads beyond the end wrap around, so a 5-minute trace can drive
// an arbitrarily long experiment, as in the paper's artifact replay.
type Trace struct {
	Dt      float64
	Samples []float64
	// Loss is an optional per-sample packet-loss-rate series aligned with
	// Samples, so one recorded trace can drive both bandwidth and loss
	// (internal/lossnet replays it). Nil means the trace carries no loss
	// information — LossAt then reports 0.
	Loss []float64
}

// At returns the bandwidth in Mbps at time t (t ≥ 0), wrapping past the end.
func (tr *Trace) At(t float64) float64 {
	if len(tr.Samples) == 0 {
		return 0
	}
	idx := int(t/tr.Dt) % len(tr.Samples)
	if idx < 0 {
		idx = 0
	}
	return tr.Samples[idx]
}

// LossAt returns the packet-loss rate at time t (t ≥ 0), wrapping past the
// end like At. A trace without a loss column never loses.
func (tr *Trace) LossAt(t float64) float64 {
	if len(tr.Loss) == 0 {
		return 0
	}
	idx := int(t/tr.Dt) % len(tr.Loss)
	if idx < 0 {
		idx = 0
	}
	return tr.Loss[idx]
}

// MeanLoss returns the average of the loss column (0 without one).
func (tr *Trace) MeanLoss() float64 {
	if len(tr.Loss) == 0 {
		return 0
	}
	var s float64
	for _, v := range tr.Loss {
		s += v
	}
	return s / float64(len(tr.Loss))
}

// Duration returns the trace length in seconds.
func (tr *Trace) Duration() float64 { return float64(len(tr.Samples)) * tr.Dt }

// NextBoundary returns the earliest time strictly greater than t at which
// the bandwidth may change (the next sample edge).
func (tr *Trace) NextBoundary(t float64) float64 {
	idx := math.Floor(t/tr.Dt) + 1
	b := idx * tr.Dt
	// Guard against float rounding (e.g. 4.3/0.1 = 42.999…): the boundary
	// must be strictly in the future or the caller would spin in place.
	for b <= t {
		idx++
		b = idx * tr.Dt
	}
	return b
}

// Mean returns the average bandwidth.
func (tr *Trace) Mean() float64 {
	if len(tr.Samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range tr.Samples {
		s += v
	}
	return s / float64(len(tr.Samples))
}

// Min returns the smallest sample.
func (tr *Trace) Min() float64 {
	if len(tr.Samples) == 0 {
		return 0
	}
	m := tr.Samples[0]
	for _, v := range tr.Samples {
		if v < m {
			m = v
		}
	}
	return m
}

// MeanFluctuationInterval returns the mean time between consecutive-sample
// relative changes of at least frac (e.g. 0.2 for the paper's "20 %
// fluctuation"). Returns +Inf if no such change occurs.
func (tr *Trace) MeanFluctuationInterval(frac float64) float64 {
	count := 0
	for i := 1; i < len(tr.Samples); i++ {
		prev := tr.Samples[i-1]
		if prev < 1e-9 {
			prev = 1e-9
		}
		if math.Abs(tr.Samples[i]-prev)/prev >= frac {
			count++
		}
	}
	if count == 0 {
		return math.Inf(1)
	}
	return tr.Duration() / float64(count)
}

// FractionBelow returns the fraction of samples strictly below thresh Mbps.
func (tr *Trace) FractionBelow(thresh float64) float64 {
	if len(tr.Samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range tr.Samples {
		if v < thresh {
			n++
		}
	}
	return float64(n) / float64(len(tr.Samples))
}

// Env selects the measured environment profile from the paper.
type Env int

const (
	// Indoor is the laboratory profile: moderate instability, walls
	// reflect signals so deep fades are rare.
	Indoor Env = iota
	// Outdoor is the campus-garden profile: sharper fluctuation and
	// frequent fades toward 0 Mbps behind obstacles.
	Outdoor
)

// String names the environment.
func (e Env) String() string {
	if e == Outdoor {
		return "outdoor"
	}
	return "indoor"
}

// GenConfig parameterizes the synthetic trace generator. The defaults per
// environment are calibrated so the generated traces match the paper's
// Fig. 3 statistics; tests in this package pin that calibration.
type GenConfig struct {
	BaseMbps  float64 // long-run mean capacity
	SlowTau   float64 // OU time constant of the slow mobility component (s)
	SlowSigma float64 // stationary std of the slow component (log scale)
	JitterStd float64 // per-sample lognormal jitter (log scale)
	SpikeProb float64 // probability per sample of a heavy-tailed swing
	SpikeLow  float64 // swing multiplier lower bound
	SpikeHigh float64 // swing multiplier upper bound
	FadeRate  float64 // fade arrivals per second
	FadeMean  float64 // mean fade duration (s)
	FadeDepth float64 // multiplier during a fade
	// Occlusions are the long-timescale component: a robot drives behind a
	// wall or a line of trees and stays there for tens of seconds with a
	// persistently degraded link. These are what turn one robot into a
	// *persistent* straggler and make whole-model synchronization stall.
	OccRate float64 // occlusion arrivals per second
	OccMean float64 // mean occlusion duration (s)
	// OccLongFrac of occlusions instead draw their duration from an
	// exponential with mean OccLongMean — the robot that parks behind a
	// building for minutes. The heavy tail is what defeats fixed staleness
	// slack: any finite threshold eventually drains against it.
	OccLongFrac float64
	OccLongMean float64
	OccDepth    float64 // multiplier while occluded
	FloorMbps   float64 // hard lower bound
	CeilMbps    float64 // hard upper bound
	Dt          float64 // sample period (s)
}

// Config returns the calibrated generator configuration for an environment.
func (e Env) Config() GenConfig {
	cfg := GenConfig{
		BaseMbps:    130,
		SlowTau:     30,
		SlowSigma:   0.3,
		JitterStd:   0.16,
		SpikeProb:   0.10,
		SpikeLow:    0.45,
		SpikeHigh:   1.8,
		FadeRate:    1.0 / 40.0,
		FadeMean:    1.5,
		FadeDepth:   0.15,
		OccRate:     1.0 / 90.0,
		OccMean:     8,
		OccLongFrac: 0.15,
		OccLongMean: 30,
		OccDepth:    0.35,
		FloorMbps:   0.5,
		CeilMbps:    300,
		Dt:          0.1,
	}
	if e == Outdoor {
		cfg.BaseMbps = 95
		// Slow mobility component: persistent minutes-scale 2–5×
		// asymmetry between robots (distance, partial occlusion). This is
		// what no fixed staleness slack can absorb.
		cfg.SlowTau = 60
		cfg.SlowSigma = 0.5
		cfg.JitterStd = 0.12
		cfg.SpikeProb = 0.05
		cfg.SpikeLow = 0.3
		cfg.FadeRate = 1.0 / 8.0
		cfg.FadeMean = 2.0
		cfg.FadeDepth = 0.05
		cfg.OccRate = 1.0 / 45.0
		cfg.OccMean = 8
		cfg.OccLongFrac = 0.4
		cfg.OccLongMean = 90
		cfg.OccDepth = 0.05
		cfg.FloorMbps = 0.1
	}
	return cfg
}

// Generate synthesizes a trace of the given duration (seconds).
//
// The model is multiplicative with three time scales, matching the physical
// story in the paper: a slow Ornstein-Uhlenbeck component for mobility and
// distance, per-sample heavy-tailed jitter for multipath, and an on/off fade
// process for occlusion.
func Generate(cfg GenConfig, duration float64, seed uint64) *Trace {
	r := tensor.NewRNG(seed)
	n := int(duration / cfg.Dt)
	out := &Trace{Dt: cfg.Dt, Samples: make([]float64, n)}

	slow := 0.0 // log-scale OU state
	alpha := cfg.Dt / cfg.SlowTau
	ouNoise := cfg.SlowSigma * math.Sqrt(2*alpha)

	fadeLeft := 0.0
	occLeft := 0.0
	for i := 0; i < n; i++ {
		slow += -alpha*slow + ouNoise*r.Norm()

		jitter := math.Exp(r.Norm() * cfg.JitterStd)
		if r.Float64() < cfg.SpikeProb {
			jitter *= cfg.SpikeLow + (cfg.SpikeHigh-cfg.SpikeLow)*r.Float64()
		}

		if fadeLeft <= 0 && r.Float64() < cfg.FadeRate*cfg.Dt {
			// Exponentially distributed fade duration.
			fadeLeft = -cfg.FadeMean * math.Log(1-r.Float64())
		}
		fade := 1.0
		if fadeLeft > 0 {
			fade = cfg.FadeDepth
			fadeLeft -= cfg.Dt
		}

		if occLeft <= 0 && cfg.OccRate > 0 && r.Float64() < cfg.OccRate*cfg.Dt {
			mean := cfg.OccMean
			if r.Float64() < cfg.OccLongFrac {
				mean = cfg.OccLongMean
			}
			occLeft = -mean * math.Log(1-r.Float64())
		}
		occ := 1.0
		if occLeft > 0 {
			occ = cfg.OccDepth
			occLeft -= cfg.Dt
		}

		b := cfg.BaseMbps * math.Exp(slow) * jitter * fade * occ
		if b < cfg.FloorMbps {
			b = cfg.FloorMbps
		}
		if b > cfg.CeilMbps {
			b = cfg.CeilMbps
		}
		out.Samples[i] = b
	}
	return out
}

// GenerateEnv synthesizes a trace with the calibrated profile of env.
func GenerateEnv(env Env, duration float64, seed uint64) *Trace {
	return Generate(env.Config(), duration, seed)
}

// Constant returns a flat trace, useful for tests and for modelling ideal
// networks.
func Constant(mbps, duration, dt float64) *Trace {
	n := int(duration / dt)
	tr := &Trace{Dt: dt, Samples: make([]float64, n)}
	for i := range tr.Samples {
		tr.Samples[i] = mbps
	}
	return tr
}

// Sparkline renders the trace as a fixed-width line of block glyphs, each
// column the mean of its time bucket scaled to the trace maximum — a quick
// terminal look at Fig. 3-style instability.
func (tr *Trace) Sparkline(width int) string {
	if width <= 0 || len(tr.Samples) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	max := 0.0
	for _, v := range tr.Samples {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	out := make([]rune, width)
	per := float64(len(tr.Samples)) / float64(width)
	for i := 0; i < width; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(tr.Samples) {
			hi = len(tr.Samples)
		}
		var s float64
		for _, v := range tr.Samples[lo:hi] {
			s += v
		}
		mean := s / float64(hi-lo)
		idx := int(mean / max * float64(len(glyphs)))
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		out[i] = glyphs[idx]
	}
	return string(out)
}

// WriteCSV streams the trace as "time,mbps" rows, or "time,mbps,loss" rows
// when the trace carries a loss column.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, v := range tr.Samples {
		var err error
		if len(tr.Loss) > 0 {
			loss := 0.0
			if i < len(tr.Loss) {
				loss = tr.Loss[i]
			}
			_, err = fmt.Fprintf(bw, "%.3f,%.4f,%.6f\n", float64(i)*tr.Dt, v, loss)
		} else {
			_, err = fmt.Fprintf(bw, "%.3f,%.4f\n", float64(i)*tr.Dt, v)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV (or recorded externally in the
// same format): "time,mbps" rows, with an optional third loss-rate column.
// All rows must agree on the column count. The sample period is inferred
// from the first two timestamps; a single-row trace defaults to 0.1 s.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var times, vals, losses []float64
	line, fields := 0, 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 && len(parts) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 2 or 3 fields, got %d", line, len(parts))
		}
		if fields == 0 {
			fields = len(parts)
		} else if len(parts) != fields {
			return nil, fmt.Errorf("trace: line %d: want %d fields like the first row, got %d", line, fields, len(parts))
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %w", line, err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad bandwidth: %w", line, err)
		}
		if len(parts) == 3 {
			loss, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad loss rate: %w", line, err)
			}
			if loss < 0 || loss > 1 {
				return nil, fmt.Errorf("trace: line %d: loss rate %g outside [0, 1]", line, loss)
			}
			losses = append(losses, loss)
		}
		times = append(times, ts)
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	dt := 0.1
	if len(times) > 1 {
		dt = times[1] - times[0]
		if dt <= 0 {
			return nil, fmt.Errorf("trace: non-increasing timestamps")
		}
	}
	return &Trace{Dt: dt, Samples: vals, Loss: losses}, nil
}
