package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAtWrapsAndIndexes(t *testing.T) {
	tr := &Trace{Dt: 0.1, Samples: []float64{10, 20, 30}}
	if tr.At(0) != 10 || tr.At(0.15) != 20 || tr.At(0.25) != 30 {
		t.Fatalf("indexing broken: %v %v %v", tr.At(0), tr.At(0.15), tr.At(0.25))
	}
	if tr.At(0.35) != 10 { // wraps
		t.Fatalf("wrap broken: %v", tr.At(0.35))
	}
	empty := &Trace{Dt: 0.1}
	if empty.At(1) != 0 {
		t.Fatal("empty trace should read 0")
	}
}

func TestNextBoundary(t *testing.T) {
	tr := &Trace{Dt: 0.1, Samples: make([]float64, 10)}
	if b := tr.NextBoundary(0.05); math.Abs(b-0.1) > 1e-12 {
		t.Fatalf("boundary=%v", b)
	}
	// Exactly on a boundary moves to the next one.
	if b := tr.NextBoundary(0.1); math.Abs(b-0.2) > 1e-12 {
		t.Fatalf("boundary at edge=%v", b)
	}
}

func TestMeanMinDuration(t *testing.T) {
	tr := &Trace{Dt: 0.5, Samples: []float64{10, 20, 30, 40}}
	if tr.Mean() != 25 || tr.Min() != 10 || tr.Duration() != 2 {
		t.Fatalf("stats: mean=%v min=%v dur=%v", tr.Mean(), tr.Min(), tr.Duration())
	}
}

func TestMeanFluctuationIntervalKnown(t *testing.T) {
	// Alternating 100/50: every step is a ≥40% change (100→50 is -50%,
	// 50→100 is +100%). 10 samples at 0.1s → 1s duration, 9 changes.
	s := make([]float64, 10)
	for i := range s {
		if i%2 == 0 {
			s[i] = 100
		} else {
			s[i] = 50
		}
	}
	tr := &Trace{Dt: 0.1, Samples: s}
	want := 1.0 / 9.0
	if got := tr.MeanFluctuationInterval(0.4); math.Abs(got-want) > 1e-9 {
		t.Fatalf("interval=%v want %v", got, want)
	}
	flat := Constant(100, 1, 0.1)
	if !math.IsInf(flat.MeanFluctuationInterval(0.2), 1) {
		t.Fatal("flat trace should have infinite fluctuation interval")
	}
}

// TestPaperCalibration pins the generator to the paper's Fig. 3 statistics:
// a ≥20% fluctuation about every 0.4s and a ≥40% one about every 1.2s.
// Generous tolerances: the paper itself reports "typically".
func TestPaperCalibration(t *testing.T) {
	for _, env := range []Env{Indoor, Outdoor} {
		tr := GenerateEnv(env, 300, 42)
		i20 := tr.MeanFluctuationInterval(0.2)
		i40 := tr.MeanFluctuationInterval(0.4)
		if i20 < 0.2 || i20 > 0.8 {
			t.Errorf("%v: 20%% fluctuation interval %.2fs, want ≈0.4s", env, i20)
		}
		if i40 < 0.6 || i40 > 2.5 {
			t.Errorf("%v: 40%% fluctuation interval %.2fs, want ≈1.2s", env, i40)
		}
	}
}

func TestOutdoorMoreUnstableThanIndoor(t *testing.T) {
	in := GenerateEnv(Indoor, 300, 7)
	out := GenerateEnv(Outdoor, 300, 7)
	// Outdoors drops to near-zero far more often (paper Sec. II-B).
	if out.FractionBelow(5) <= in.FractionBelow(5) {
		t.Fatalf("outdoor below-5Mbps %.4f <= indoor %.4f",
			out.FractionBelow(5), in.FractionBelow(5))
	}
	if out.Mean() >= in.Mean() {
		t.Fatalf("outdoor mean %.1f >= indoor mean %.1f", out.Mean(), in.Mean())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateEnv(Outdoor, 10, 5)
	b := GenerateEnv(Outdoor, 10, 5)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	c := GenerateEnv(Outdoor, 10, 6)
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateBounds(t *testing.T) {
	cfg := Outdoor.Config()
	tr := Generate(cfg, 120, 9)
	for i, v := range tr.Samples {
		if v < cfg.FloorMbps || v > cfg.CeilMbps || math.IsNaN(v) {
			t.Fatalf("sample %d = %v out of [%v,%v]", i, v, cfg.FloorMbps, cfg.CeilMbps)
		}
	}
}

func TestConstant(t *testing.T) {
	tr := Constant(50, 2, 0.1)
	if len(tr.Samples) != 20 || tr.Mean() != 50 || tr.Min() != 50 {
		t.Fatalf("constant trace wrong: n=%d mean=%v", len(tr.Samples), tr.Mean())
	}
}

func TestSparkline(t *testing.T) {
	tr := &Trace{Dt: 0.1, Samples: []float64{0, 50, 100, 100, 0, 0, 50, 100}}
	line := tr.Sparkline(4)
	runes := []rune(line)
	if len(runes) != 4 {
		t.Fatalf("width %d: %q", len(runes), line)
	}
	// Bucket means are 25, 100, 0, 75: strictly ordered glyphs.
	if !(runes[2] < runes[0] && runes[0] < runes[3] && runes[3] <= runes[1]) {
		t.Fatalf("glyph ordering wrong: %q", line)
	}
	if (&Trace{}).Sparkline(10) != "" || tr.Sparkline(0) != "" {
		t.Fatal("degenerate sparklines should be empty")
	}
	flat := Constant(0, 1, 0.1)
	if len([]rune(flat.Sparkline(5))) != 5 {
		t.Fatal("all-zero trace should still render")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	tr := GenerateEnv(Indoor, 5, 3)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Dt-tr.Dt) > 1e-9 || len(got.Samples) != len(tr.Samples) {
		t.Fatalf("shape changed: dt=%v n=%d", got.Dt, len(got.Samples))
	}
	for i := range tr.Samples {
		if math.Abs(got.Samples[i]-tr.Samples[i]) > 1e-3 {
			t.Fatalf("sample %d: %v vs %v", i, got.Samples[i], tr.Samples[i])
		}
	}
}

// TestCSVRoundtripWithLoss round-trips the optional third column: loss
// rates survive the write/read cycle and the derived statistics agree.
func TestCSVRoundtripWithLoss(t *testing.T) {
	tr := GenerateEnv(Outdoor, 5, 7)
	tr.Loss = make([]float64, len(tr.Samples))
	for i := range tr.Loss {
		tr.Loss[i] = float64(i%5) / 20 // 0, 0.05, ..., 0.2
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Loss) != len(tr.Loss) {
		t.Fatalf("loss column came back with %d of %d samples", len(got.Loss), len(tr.Loss))
	}
	for i := range tr.Loss {
		if math.Abs(got.Loss[i]-tr.Loss[i]) > 1e-6 {
			t.Fatalf("loss %d: %v vs %v", i, got.Loss[i], tr.Loss[i])
		}
	}
	if math.Abs(got.MeanLoss()-tr.MeanLoss()) > 1e-6 {
		t.Fatalf("mean loss drifted: %v vs %v", got.MeanLoss(), tr.MeanLoss())
	}
	if got.LossAt(0) != got.Loss[0] {
		t.Fatalf("LossAt(0) = %v, want %v", got.LossAt(0), got.Loss[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"lossRange":   "0.0,1.0,2.0\n", // third column is a rate in [0,1]
		"badLoss":     "0.0,1.0,z\n",
		"mixedFields": "0.0,1.0,0.1\n0.1,2.0\n",
		"badTime":     "x,1.0\n",
		"badValue":    "0.0,y\n",
		"decreasing":  "1.0,5\n0.5,6\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Comments and blank lines are tolerated.
	tr, err := ReadCSV(strings.NewReader("# header\n\n0.0,5\n0.1,6\n"))
	if err != nil || len(tr.Samples) != 2 {
		t.Fatalf("comment handling: %v %v", tr, err)
	}
}
