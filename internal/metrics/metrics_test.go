package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCompositionArithmetic(t *testing.T) {
	c := Composition{Compute: 1, Comm: 2, Stall: 3}
	if c.Total() != 6 {
		t.Fatalf("Total=%v", c.Total())
	}
	c.Add(Composition{Compute: 1, Comm: 1, Stall: 1})
	if c.Compute != 2 || c.Comm != 3 || c.Stall != 4 {
		t.Fatalf("Add=%+v", c)
	}
	s := c.Scale(0.5)
	if s.Compute != 1 || s.Comm != 1.5 || s.Stall != 2 {
		t.Fatalf("Scale=%+v", s)
	}
	if !strings.Contains(c.String(), "stall") {
		t.Fatal("String missing stall")
	}
}

func TestCompositionRecorder(t *testing.T) {
	var r CompositionRecorder
	if r.Average() != (Composition{}) {
		t.Fatal("empty average should be zero")
	}
	r.Record(Composition{Compute: 2, Comm: 2, Stall: 2})
	r.Record(Composition{Compute: 4, Comm: 0, Stall: 0})
	avg := r.Average()
	if avg.Compute != 3 || avg.Comm != 1 || avg.Stall != 1 {
		t.Fatalf("avg=%+v", avg)
	}
	if r.Count() != 2 {
		t.Fatalf("count=%d", r.Count())
	}
}

func makeSeries() *Series {
	s := &Series{Name: "acc"}
	s.Add(Point{Iter: 0, Time: 0, Energy: 0, Value: 0.5})
	s.Add(Point{Iter: 100, Time: 60, Energy: 1000, Value: 0.6})
	s.Add(Point{Iter: 200, Time: 120, Energy: 2000, Value: 0.65})
	s.Add(Point{Iter: 300, Time: 180, Energy: 3000, Value: 0.64})
	return s
}

func TestSeriesValueAt(t *testing.T) {
	s := makeSeries()
	if !math.IsNaN(s.ValueAt(-1)) {
		t.Fatal("before first point should be NaN")
	}
	if s.ValueAt(0) != 0.5 || s.ValueAt(90) != 0.6 || s.ValueAt(1000) != 0.64 {
		t.Fatalf("step interp broken: %v %v %v", s.ValueAt(0), s.ValueAt(90), s.ValueAt(1000))
	}
}

func TestSeriesValueAtIter(t *testing.T) {
	s := makeSeries()
	if s.ValueAtIter(150) != 0.6 || s.ValueAtIter(300) != 0.64 {
		t.Fatal("ValueAtIter broken")
	}
	if !math.IsNaN((&Series{}).ValueAtIter(10)) {
		t.Fatal("empty series should give NaN")
	}
}

func TestEnergyAndTimeToReach(t *testing.T) {
	s := makeSeries()
	j, ok := s.EnergyToReach(0.65, true)
	if !ok || j != 2000 {
		t.Fatalf("EnergyToReach=%v ok=%v", j, ok)
	}
	if _, ok := s.EnergyToReach(0.9, true); ok {
		t.Fatal("unreachable target reported reached")
	}
	sec, ok := s.TimeToReach(0.6, true)
	if !ok || sec != 60 {
		t.Fatalf("TimeToReach=%v", sec)
	}
	// Decreasing metric (trajectory error).
	e := &Series{Name: "err"}
	e.Add(Point{Time: 0, Energy: 0, Value: 2.0})
	e.Add(Point{Time: 10, Energy: 100, Value: 0.4})
	j, ok = e.EnergyToReach(0.5, false)
	if !ok || j != 100 {
		t.Fatalf("decreasing EnergyToReach=%v ok=%v", j, ok)
	}
}

func TestSeriesLastAndBackwardsTime(t *testing.T) {
	s := makeSeries()
	if s.Last().Iter != 300 {
		t.Fatalf("Last=%+v", s.Last())
	}
	if (&Series{}).Last() != (Point{}) {
		t.Fatal("empty Last should be zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time regression")
		}
	}()
	s.Add(Point{Time: 10})
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"sys", "value"}, [][]string{
		{"BSP", "1.0"},
		{"ROG-4", "2.123"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines=%d\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "sys  ") || !strings.Contains(lines[3], "ROG-4") {
		t.Fatalf("format:\n%s", out)
	}
	// Alignment: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1.0") || !strings.HasPrefix(lines[3][idx:], "2.123") {
		t.Fatalf("misaligned:\n%s", out)
	}
}
