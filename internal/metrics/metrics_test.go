package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCompositionArithmetic(t *testing.T) {
	c := Composition{Compute: 1, Comm: 2, Stall: 3}
	if c.Total() != 6 {
		t.Fatalf("Total=%v", c.Total())
	}
	c.Add(Composition{Compute: 1, Comm: 1, Stall: 1})
	if c.Compute != 2 || c.Comm != 3 || c.Stall != 4 {
		t.Fatalf("Add=%+v", c)
	}
	s := c.Scale(0.5)
	if s.Compute != 1 || s.Comm != 1.5 || s.Stall != 2 {
		t.Fatalf("Scale=%+v", s)
	}
	if !strings.Contains(c.String(), "stall") {
		t.Fatal("String missing stall")
	}
}

func TestCompositionRecorder(t *testing.T) {
	var r CompositionRecorder
	if r.Average() != (Composition{}) {
		t.Fatal("empty average should be zero")
	}
	r.Record(Composition{Compute: 2, Comm: 2, Stall: 2})
	r.Record(Composition{Compute: 4, Comm: 0, Stall: 0})
	avg := r.Average()
	if avg.Compute != 3 || avg.Comm != 1 || avg.Stall != 1 {
		t.Fatalf("avg=%+v", avg)
	}
	if r.Count() != 2 {
		t.Fatalf("count=%d", r.Count())
	}
}

func makeSeries() *Series {
	s := &Series{Name: "acc"}
	s.Add(Point{Iter: 0, Time: 0, Energy: 0, Value: 0.5})
	s.Add(Point{Iter: 100, Time: 60, Energy: 1000, Value: 0.6})
	s.Add(Point{Iter: 200, Time: 120, Energy: 2000, Value: 0.65})
	s.Add(Point{Iter: 300, Time: 180, Energy: 3000, Value: 0.64})
	return s
}

func TestSeriesValueAt(t *testing.T) {
	s := makeSeries()
	if !math.IsNaN(s.ValueAt(-1)) {
		t.Fatal("before first point should be NaN")
	}
	if s.ValueAt(0) != 0.5 || s.ValueAt(90) != 0.6 || s.ValueAt(1000) != 0.64 {
		t.Fatalf("step interp broken: %v %v %v", s.ValueAt(0), s.ValueAt(90), s.ValueAt(1000))
	}
}

func TestSeriesValueAtIter(t *testing.T) {
	s := makeSeries()
	if s.ValueAtIter(150) != 0.6 || s.ValueAtIter(300) != 0.64 {
		t.Fatal("ValueAtIter broken")
	}
	if !math.IsNaN((&Series{}).ValueAtIter(10)) {
		t.Fatal("empty series should give NaN")
	}
}

func TestEnergyAndTimeToReach(t *testing.T) {
	s := makeSeries()
	j, ok := s.EnergyToReach(0.65, true)
	if !ok || j != 2000 {
		t.Fatalf("EnergyToReach=%v ok=%v", j, ok)
	}
	if _, ok := s.EnergyToReach(0.9, true); ok {
		t.Fatal("unreachable target reported reached")
	}
	sec, ok := s.TimeToReach(0.6, true)
	if !ok || sec != 60 {
		t.Fatalf("TimeToReach=%v", sec)
	}
	// Decreasing metric (trajectory error).
	e := &Series{Name: "err"}
	e.Add(Point{Time: 0, Energy: 0, Value: 2.0})
	e.Add(Point{Time: 10, Energy: 100, Value: 0.4})
	j, ok = e.EnergyToReach(0.5, false)
	if !ok || j != 100 {
		t.Fatalf("decreasing EnergyToReach=%v ok=%v", j, ok)
	}
}

func TestSeriesLastAndBackwardsTime(t *testing.T) {
	s := makeSeries()
	if s.Last().Iter != 300 {
		t.Fatalf("Last=%+v", s.Last())
	}
	if (&Series{}).Last() != (Point{}) {
		t.Fatal("empty Last should be zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time regression")
		}
	}()
	s.Add(Point{Time: 10})
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"sys", "value"}, [][]string{
		{"BSP", "1.0"},
		{"ROG-4", "2.123"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines=%d\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "sys  ") || !strings.Contains(lines[3], "ROG-4") {
		t.Fatalf("format:\n%s", out)
	}
	// Alignment: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1.0") || !strings.HasPrefix(lines[3][idx:], "2.123") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

// TestSeriesLookupEdgeCases pins the binary-search lookups to the exact
// semantics of the linear scans they replaced: last point at-or-before the
// query, NaN before the first point, last-wins on duplicate keys.
func TestSeriesLookupEdgeCases(t *testing.T) {
	var empty Series
	if !math.IsNaN(empty.ValueAt(10)) || !math.IsNaN(empty.ValueAtIter(10)) {
		t.Fatal("empty series must answer NaN")
	}

	s := Series{Name: "edge"}
	s.Add(Point{Iter: 5, Time: 10, Energy: 1, Value: 0.1})
	s.Add(Point{Iter: 10, Time: 20, Energy: 2, Value: 0.2})
	s.Add(Point{Iter: 12, Time: 20, Energy: 3, Value: 0.3}) // duplicate time
	s.Add(Point{Iter: 20, Time: 35, Energy: 4, Value: 0.4})

	if !math.IsNaN(s.ValueAt(9.99)) {
		t.Fatal("t before the first checkpoint must be NaN")
	}
	if got := s.ValueAt(10); got != 0.1 {
		t.Fatalf("exact first boundary: got %g, want 0.1", got)
	}
	if got := s.ValueAt(20); got != 0.3 {
		t.Fatalf("duplicate time must answer the last point: got %g, want 0.3", got)
	}
	if got := s.ValueAt(34.9); got != 0.3 {
		t.Fatalf("between checkpoints: got %g, want 0.3", got)
	}
	if got := s.ValueAt(35); got != 0.4 {
		t.Fatalf("exact last boundary: got %g, want 0.4", got)
	}
	if got := s.ValueAt(1e9); got != 0.4 {
		t.Fatalf("past the end: got %g, want 0.4", got)
	}

	if !math.IsNaN(s.ValueAtIter(4)) {
		t.Fatal("iter before the first checkpoint must be NaN")
	}
	if got := s.ValueAtIter(5); got != 0.1 {
		t.Fatalf("exact iter boundary: got %g, want 0.1", got)
	}
	if got := s.ValueAtIter(11); got != 0.2 {
		t.Fatalf("between iters: got %g, want 0.2", got)
	}
	if got := s.ValueAtIter(100); got != 0.4 {
		t.Fatalf("past the end: got %g, want 0.4", got)
	}
}

// TestEnergyToReachNonMonotone checks the to-target lookups scan values,
// not times: on a noisy series the first checkpoint reaching the target
// wins even when a later one dips back below it.
func TestEnergyToReachNonMonotone(t *testing.T) {
	s := Series{Name: "noisy"}
	s.Add(Point{Iter: 1, Time: 1, Energy: 10, Value: 0.2})
	s.Add(Point{Iter: 2, Time: 2, Energy: 20, Value: 0.6}) // first to reach 0.5
	s.Add(Point{Iter: 3, Time: 3, Energy: 30, Value: 0.4}) // dips back under
	s.Add(Point{Iter: 4, Time: 4, Energy: 40, Value: 0.7})

	if j, ok := s.EnergyToReach(0.5, true); !ok || j != 20 {
		t.Fatalf("EnergyToReach = %g/%v, want 20/true", j, ok)
	}
	if sec, ok := s.TimeToReach(0.5, true); !ok || sec != 2 {
		t.Fatalf("TimeToReach = %g/%v, want 2/true", sec, ok)
	}
	if _, ok := s.EnergyToReach(0.9, true); ok {
		t.Fatal("unreached target reported ok")
	}
	// Decreasing metric (error): first checkpoint at or under the target.
	if sec, ok := s.TimeToReach(0.4, false); !ok || sec != 1 {
		t.Fatalf("decreasing TimeToReach = %g/%v, want 1/true", sec, ok)
	}
}
