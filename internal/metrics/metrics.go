// Package metrics collects what the paper's figures plot: per-iteration
// time composition (computation / communication / stall), and checkpoint
// series of training quality against iterations, wall-clock time and
// energy. It also renders the aligned text tables the benchmark harness
// prints.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Composition is the time breakdown of training (Fig. 1a/6a/7a/9e/9f):
// seconds spent computing, transmitting, and stalling.
type Composition struct {
	Compute float64
	Comm    float64
	Stall   float64
}

// Total returns the summed duration.
func (c Composition) Total() float64 { return c.Compute + c.Comm + c.Stall }

// Add accumulates another composition.
func (c *Composition) Add(o Composition) {
	c.Compute += o.Compute
	c.Comm += o.Comm
	c.Stall += o.Stall
}

// Scale returns the composition multiplied by f.
func (c Composition) Scale(f float64) Composition {
	return Composition{Compute: c.Compute * f, Comm: c.Comm * f, Stall: c.Stall * f}
}

// String renders the composition compactly.
func (c Composition) String() string {
	return fmt.Sprintf("compute %.2fs comm %.2fs stall %.2fs", c.Compute, c.Comm, c.Stall)
}

// CompositionRecorder averages compositions across iterations and workers.
type CompositionRecorder struct {
	sum Composition
	n   int
}

// Record adds one worker-iteration's composition.
func (r *CompositionRecorder) Record(c Composition) {
	r.sum.Add(c)
	r.n++
}

// Average returns the mean composition per recorded iteration (zero value
// if nothing was recorded).
func (r *CompositionRecorder) Average() Composition {
	if r.n == 0 {
		return Composition{}
	}
	return r.sum.Scale(1 / float64(r.n))
}

// Count returns the number of recorded worker-iterations.
func (r *CompositionRecorder) Count() int { return r.n }

// ChurnStats counts membership-churn events and their cost: how often
// workers dropped and returned, how much state a rejoin had to resync, and
// how long survivors stalled waiting on rows only a departed worker could
// have advanced (the deadlock the membership layer converts into bounded
// stall).
type ChurnStats struct {
	Disconnects       int     // workers detached (crash, connection loss, stall)
	Reconnects        int     // workers re-attached after a detach
	RowsResynced      int     // rows replayed to rejoining workers
	DuplicatesDropped int     // pushes re-sent after a server recovery and deduplicated
	DetachStall       float64 // seconds survivors spent blocked until a detach freed them
}

// Add accumulates another stats snapshot.
func (c *ChurnStats) Add(o ChurnStats) {
	c.Disconnects += o.Disconnects
	c.Reconnects += o.Reconnects
	c.RowsResynced += o.RowsResynced
	c.DuplicatesDropped += o.DuplicatesDropped
	c.DetachStall += o.DetachStall
}

// String renders the counters compactly.
func (c ChurnStats) String() string {
	s := fmt.Sprintf("disconnects %d reconnects %d rows resynced %d detach-stall %.2fs",
		c.Disconnects, c.Reconnects, c.RowsResynced, c.DetachStall)
	if c.DuplicatesDropped > 0 {
		s += fmt.Sprintf(" duplicates dropped %d", c.DuplicatesDropped)
	}
	return s
}

// RecoveryStats summarizes server crash-recovery activity in a run: how
// many times the parameter server restarted from its checkpoint store,
// what the write-ahead log replays cost, and what was lost anyway (rows
// whose merged gradients fell in the torn tail past the last sync).
type RecoveryStats struct {
	Recoveries      int     // server restarts served from the checkpoint store
	ReplayedRecords int     // WAL records replayed across all recoveries
	ReplayedBytes   float64 // WAL bytes replayed
	SnapshotBytes   float64 // snapshot bytes loaded
	RowsLost        int     // row versions re-stamped with zero gradient (lost to the crash)
	DowntimeSeconds float64 // virtual seconds the server was unavailable
}

// Add accumulates another stats snapshot.
func (r *RecoveryStats) Add(o RecoveryStats) {
	r.Recoveries += o.Recoveries
	r.ReplayedRecords += o.ReplayedRecords
	r.ReplayedBytes += o.ReplayedBytes
	r.SnapshotBytes += o.SnapshotBytes
	r.RowsLost += o.RowsLost
	r.DowntimeSeconds += o.DowntimeSeconds
}

// Enabled reports whether any recovery happened.
func (r RecoveryStats) Enabled() bool { return r.Recoveries > 0 }

// String renders the counters compactly.
func (r RecoveryStats) String() string {
	return fmt.Sprintf("recoveries %d replayed %d records (%.0f B) rows lost %d downtime %.2fs",
		r.Recoveries, r.ReplayedRecords, r.ReplayedBytes, r.RowsLost, r.DowntimeSeconds)
}

// LossStats counts what the packet-loss channel did to a run and what the
// selective-reliability protocol paid to survive it: best-effort rows lost
// and folded back into their sender's local accumulator (RSP counts them
// as never sent), reliable rows retransmitted until delivered, and the
// extra bytes those repeats put on the wire.
type LossStats struct {
	RowsLostFolded    int     // best-effort rows lost, gradients folded back
	RowsRetransmitted int     // reliable rows sent again after loss
	RetransmitBytes   float64 // wire bytes spent on retransmissions
}

// Add accumulates another stats snapshot.
func (l *LossStats) Add(o LossStats) {
	l.RowsLostFolded += o.RowsLostFolded
	l.RowsRetransmitted += o.RowsRetransmitted
	l.RetransmitBytes += o.RetransmitBytes
}

// Enabled reports whether any loss activity was recorded.
func (l LossStats) Enabled() bool {
	return l.RowsLostFolded != 0 || l.RowsRetransmitted != 0 || l.RetransmitBytes != 0
}

// String renders the counters compactly.
func (l LossStats) String() string {
	return fmt.Sprintf("rows folded %d retransmitted %d retransmit-bytes %.0f",
		l.RowsLostFolded, l.RowsRetransmitted, l.RetransmitBytes)
}

// Point is one checkpoint: training quality at a moment of the run.
type Point struct {
	Iter   int     // training iteration (per-worker count)
	Time   float64 // virtual wall-clock seconds
	Energy float64 // cumulative joules across the team
	Value  float64 // accuracy (higher better) or error (lower better)
}

// Series is a named sequence of checkpoints, ordered by time.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a checkpoint; Time must be non-decreasing.
func (s *Series) Add(p Point) {
	if n := len(s.Points); n > 0 && p.Time < s.Points[n-1].Time {
		panic(fmt.Sprintf("metrics: series %q time went backwards (%v < %v)",
			s.Name, p.Time, s.Points[n-1].Time))
	}
	s.Points = append(s.Points, p)
}

// Last returns the final checkpoint (zero Point if empty).
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// ValueAt returns the value of the last checkpoint at or before time t
// (step interpolation), or NaN when t precedes the first checkpoint.
// Points are time-sorted (Add enforces it), so this is a binary search;
// among duplicate times it picks the last, like the scan it replaced.
func (s *Series) ValueAt(t float64) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].Time > t })
	if i == 0 {
		return math.NaN()
	}
	return s.Points[i-1].Value
}

// EnergyToReach returns the cumulative energy at the first checkpoint whose
// value reaches target (≥ target when increasing, ≤ when not). ok is false
// if the series never reaches it. This is Fig. 1d's "energy to reach the
// same accuracy" metric.
func (s *Series) EnergyToReach(target float64, increasing bool) (joules float64, ok bool) {
	for _, p := range s.Points {
		if (increasing && p.Value >= target) || (!increasing && p.Value <= target) {
			return p.Energy, true
		}
	}
	return 0, false
}

// TimeToReach is EnergyToReach for wall-clock time.
func (s *Series) TimeToReach(target float64, increasing bool) (seconds float64, ok bool) {
	for _, p := range s.Points {
		if (increasing && p.Value >= target) || (!increasing && p.Value <= target) {
			return p.Time, true
		}
	}
	return 0, false
}

// ValueAtIter returns the value at the last checkpoint with Iter ≤ iter
// (NaN if none) — the statistical-efficiency axis of Fig. 1b. Checkpoints
// are recorded in iteration order, so binary search applies here too.
func (s *Series) ValueAtIter(iter int) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].Iter > iter })
	if i == 0 {
		return math.NaN()
	}
	return s.Points[i-1].Value
}

// FormatTable renders an aligned text table with a header row.
func FormatTable(headers []string, rows [][]string) string {
	width := make([]int, len(headers))
	for i, h := range headers {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", width[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
