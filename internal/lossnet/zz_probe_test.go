package lossnet

import (
	"encoding/binary"
	"testing"
	"time"
)

// Probe: after a completed burst, maxSeen goes stale below the frontier.
// In the next burst a gap should produce exactly the gap NACKs, not 128
// bogus NACKs for never-sent sequences.
func TestProbeStaleMaxSeenNacks(t *testing.T) {
	a, b := PacketPipe(nil, nil)
	defer a.Close()
	defer b.Close()
	r := NewBurstReceiver(b)

	send := func(kind uint8, seq uint32, payload []byte) {
		buf := make([]byte, dgramHeaderSize+len(payload))
		dgramHeader{Kind: kind, Seq: seq}.encode(buf)
		copy(buf[dgramHeaderSize:], payload)
		if _, err := a.WriteTo(buf, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	readAck := func() dgramHeader {
		buf := make([]byte, 65536)
		a.SetReadDeadline(time.Now().Add(time.Second))
		n, _, err := a.ReadFrom(buf)
		if err != nil {
			t.Fatal(err)
		}
		h, ok := decodeHeader(buf[:n])
		if !ok {
			t.Fatal("bad ack")
		}
		_ = n
		_ = binary.LittleEndian
		return h
	}

	// Burst 1: seqs 1,2 data + 3 end, all in order.
	go func() {
		send(dgramData, 1, []byte("p1"))
		send(dgramData, 2, []byte("p2"))
		send(dgramEnd, 3, nil)
	}()
	if _, err := r.RecvBurst(time.Now().Add(2*time.Second), func([]byte) {}); err != nil {
		t.Fatalf("burst 1: %v", err)
	}
	for i := 0; i < 3; i++ {
		readAck()
	}
	t.Logf("after burst 1: frontier=%d maxSeen=%d", r.frontier, r.maxSeen)

	// Burst 2: seq 4 arrives, seq 5 is "lost", seq 6 arrives -> gap {5}.
	done := make(chan error, 1)
	go func() {
		_, err := r.RecvBurst(time.Now().Add(500*time.Millisecond), func([]byte) {})
		done <- err
	}()
	send(dgramData, 4, []byte("p4"))
	h1 := readAck()
	send(dgramData, 6, []byte("p6"))
	h2 := readAck()
	t.Logf("ack after seq4: ack=%d nacks=%d lost=%d", h1.Ack, h1.NackCount, h1.LostCount)
	t.Logf("ack after seq6: ack=%d nacks=%d lost=%d (want 1 nack for seq 5)", h2.Ack, h2.NackCount, h2.LostCount)
	<-done
	if h2.NackCount != 1 {
		t.Fatalf("expected exactly 1 NACK (seq 5), got %d", h2.NackCount)
	}
}
