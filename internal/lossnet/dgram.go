package lossnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"
)

// This file is the datagram row transport: the real-socket counterpart of
// the paper's speculative transmission for links where packets, not just
// bandwidth, are unreliable. It runs over any net.PacketConn (UDP, or the
// lossy in-memory pipe in tests) and implements LTP-style selective
// reliability:
//
//   - every datagram carries a sequence number;
//   - the receiver acks cumulatively (everything below the ack frontier is
//     settled) and NACKs the gaps it observes;
//   - NACKed reliable datagrams retransmit until acked;
//   - NACKed best-effort datagrams are *abandoned*: the sender emits a tiny
//     abandon notice so the receiver can close the gap, the receiver
//     reports the sequence back as lost, and the sender's caller folds the
//     row's gradient back into its local accumulator — the row counts as
//     never sent and RSP's staleness accounting stays exact.
//
// A burst is one push worth of datagrams terminated by a reliable End
// marker; SendBurst returns only when every sequence is settled, with the
// per-payload delivery verdict.

// Datagram kinds.
const (
	dgramData    uint8 = 1 // payload datagram
	dgramEnd     uint8 = 2 // reliable burst terminator (no payload)
	dgramAbandon uint8 = 3 // sender gave up on a best-effort seq (no payload)
	dgramAck     uint8 = 4 // receiver status: frontier + nack list + lost list
)

// dgramFlagReliable marks a data datagram as belonging to the reliable
// class (retransmit until acked).
const dgramFlagReliable uint8 = 1

// dgramHeaderSize is the encoded size of dgramHeader.
const dgramHeaderSize = 14

// MaxDatagramPayload bounds one datagram's payload so header+payload stays
// under typical UDP limits.
const MaxDatagramPayload = 60_000

// dgramHeader is the wire header every datagram starts with. Ack packets
// append NackCount then LostCount uint32 sequence numbers.
//
//roglint:wire
type dgramHeader struct {
	Kind      uint8  // dgramData, dgramEnd, dgramAbandon or dgramAck
	Flags     uint8  // dgramFlagReliable on reliable data
	Seq       uint32 // this datagram's sequence (data/end/abandon)
	Ack       uint32 // receiver frontier: every seq below it is settled
	NackCount uint16 // gap sequences appended (ack only)
	LostCount uint16 // settled-as-lost sequences appended (ack only)
}

// encode serializes the header into buf.
func (h dgramHeader) encode(buf []byte) {
	buf[0] = h.Kind
	buf[1] = h.Flags
	binary.LittleEndian.PutUint32(buf[2:], h.Seq)
	binary.LittleEndian.PutUint32(buf[6:], h.Ack)
	binary.LittleEndian.PutUint16(buf[10:], h.NackCount)
	binary.LittleEndian.PutUint16(buf[12:], h.LostCount)
}

// decodeHeader parses a datagram header; false when the packet is shorter
// than a header (corrupt or foreign traffic — dropped).
func decodeHeader(buf []byte) (dgramHeader, bool) {
	if len(buf) < dgramHeaderSize {
		return dgramHeader{}, false
	}
	return dgramHeader{
		Kind:      buf[0],
		Flags:     buf[1],
		Seq:       binary.LittleEndian.Uint32(buf[2:]),
		Ack:       binary.LittleEndian.Uint32(buf[6:]),
		NackCount: binary.LittleEndian.Uint16(buf[10:]),
		LostCount: binary.LittleEndian.Uint16(buf[12:]),
	}, true
}

// DgramStats counts one endpoint's datagram traffic.
type DgramStats struct {
	DataSent    int64 // first-attempt data datagrams
	Retransmits int64 // reliable data datagrams sent again
	Abandons    int64 // abandon notices sent
	AcksSent    int64
	Duplicates  int64 // already-settled datagrams received again
	Lost        int64 // best-effort sequences settled as lost
}

// ErrBurstTimeout is returned when a burst could not settle before its
// deadline.
var ErrBurstTimeout = errors.New("lossnet: burst deadline reached")

// BurstSender transmits payload bursts with selective reliability over a
// packet conn. Not safe for concurrent use.
type BurstSender struct {
	conn net.PacketConn
	peer net.Addr
	// RTO is the retransmission timeout: how long to wait for ack progress
	// before resending everything unsettled.
	RTO   time.Duration
	seq   uint32
	Stats DgramStats
	// OnAbandon, when set, is called once per abandon notice sent — the
	// hook a crash flight recorder hangs its dump on, so giving up on a
	// best-effort payload leaves an event tail behind.
	OnAbandon func()
}

// NewBurstSender sends to peer over conn.
func NewBurstSender(conn net.PacketConn, peer net.Addr) *BurstSender {
	return &BurstSender{conn: conn, peer: peer, RTO: 15 * time.Millisecond, seq: 1}
}

// sendData emits one data datagram for payload index i.
func (s *BurstSender) sendData(seq uint32, payload []byte, reliable bool) error {
	buf := make([]byte, dgramHeaderSize+len(payload))
	h := dgramHeader{Kind: dgramData, Seq: seq}
	if reliable {
		h.Flags = dgramFlagReliable
	}
	h.encode(buf)
	copy(buf[dgramHeaderSize:], payload)
	_, err := s.conn.WriteTo(buf, s.peer)
	return err
}

// sendCtl emits a payload-less datagram (end or abandon).
func (s *BurstSender) sendCtl(kind uint8, seq uint32) error {
	var buf [dgramHeaderSize]byte
	dgramHeader{Kind: kind, Seq: seq, Flags: dgramFlagReliable}.encode(buf[:])
	_, err := s.conn.WriteTo(buf[:], s.peer)
	return err
}

// SendBurst transmits the payloads as one burst: reliable(i) selects the
// reliable class. It blocks until every sequence settles (acked delivered,
// or abandoned and confirmed lost) and returns delivered[i] per payload —
// false means the best-effort payload was lost and its gradient must be
// folded back by the caller. Fails with ErrBurstTimeout at the deadline.
func (s *BurstSender) SendBurst(payloads [][]byte, reliable func(i int) bool, deadline time.Time) (delivered []bool, err error) {
	delivered = make([]bool, len(payloads))
	first := s.seq
	// pending maps each unsettled seq to its payload index (-1 = the End
	// marker). rel mirrors the reliable flag per seq.
	pending := make(map[uint32]int, len(payloads)+1)
	rel := make(map[uint32]bool, len(payloads)+1)
	for i, p := range payloads {
		if len(p) > MaxDatagramPayload {
			return nil, fmt.Errorf("lossnet: payload %d is %d bytes (max %d)", i, len(p), MaxDatagramPayload)
		}
		seq := s.seq
		s.seq++
		pending[seq] = i
		rel[seq] = reliable == nil || reliable(i)
		if err := s.sendData(seq, p, rel[seq]); err != nil {
			return nil, err
		}
		s.Stats.DataSent++
	}
	endSeq := s.seq
	s.seq++
	pending[endSeq] = -1
	rel[endSeq] = true
	if err := s.sendCtl(dgramEnd, endSeq); err != nil {
		return nil, err
	}

	// resend retransmits every unsettled reliable seq and re-abandons every
	// unsettled best-effort one — the timeout path and the NACK path share it.
	resend := func(seqs []uint32) error {
		for _, q := range seqs {
			idx, open := pending[q]
			if !open {
				continue
			}
			switch {
			case idx == -1:
				if err := s.sendCtl(dgramEnd, q); err != nil {
					return err
				}
				s.Stats.Retransmits++
			case rel[q]:
				if err := s.sendData(q, payloads[idx], true); err != nil {
					return err
				}
				s.Stats.Retransmits++
			default:
				if err := s.sendCtl(dgramAbandon, q); err != nil {
					return err
				}
				s.Stats.Abandons++
				if s.OnAbandon != nil {
					s.OnAbandon()
				}
			}
		}
		return nil
	}

	buf := make([]byte, dgramHeaderSize+MaxDatagramPayload)
	for len(pending) > 0 {
		if !time.Now().Before(deadline) {
			return delivered, ErrBurstTimeout
		}
		rto := time.Now().Add(s.RTO)
		if rto.After(deadline) {
			rto = deadline
		}
		if err := s.conn.SetReadDeadline(rto); err != nil {
			return delivered, err
		}
		n, _, err := s.conn.ReadFrom(buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				// No ack progress inside the RTO: resend the world.
				all := make([]uint32, 0, len(pending))
				for q := range pending {
					all = append(all, q)
				}
				if err := resend(all); err != nil {
					return delivered, err
				}
				continue
			}
			return delivered, err
		}
		h, ok := decodeHeader(buf[:n])
		if !ok || h.Kind != dgramAck {
			continue
		}
		lists := buf[dgramHeaderSize:n]
		if len(lists) < 4*(int(h.NackCount)+int(h.LostCount)) {
			continue // truncated ack
		}
		// Lost list first: those sequences settled as lost at the receiver.
		for i := 0; i < int(h.LostCount); i++ {
			q := binary.LittleEndian.Uint32(lists[4*(int(h.NackCount)+i):])
			if idx, open := pending[q]; open {
				if idx >= 0 {
					s.Stats.Lost++
				}
				delete(pending, q)
			}
		}
		// Cumulative frontier: everything below it not reported lost was
		// delivered.
		for q, idx := range pending {
			if q-first < h.Ack-first && h.Ack-first <= endSeq-first+1 {
				if idx >= 0 {
					delivered[idx] = true
				}
				delete(pending, q)
			}
		}
		// NACKed gaps: selective retransmit / abandon.
		nacks := make([]uint32, 0, h.NackCount)
		for i := 0; i < int(h.NackCount); i++ {
			nacks = append(nacks, binary.LittleEndian.Uint32(lists[4*i:]))
		}
		if err := resend(nacks); err != nil {
			return delivered, err
		}
	}
	return delivered, nil
}

// BurstReceiver receives payload bursts and reports sequence gaps. Not
// safe for concurrent use. Frontier state persists across bursts on the
// same receiver, matching the sender's running sequence numbers.
type BurstReceiver struct {
	conn        net.PacketConn
	frontier    uint32            // every seq below is settled
	nextDeliver uint32            // next seq to hand to the burst's handler
	seen        map[uint32]bool   // settled sequences at/above the frontier
	payloads    map[uint32][]byte // received but undelivered (out-of-order)
	maxSeen     uint32
	// lost retains recently settled-as-lost sequences across bursts: a
	// sender whose acks were dropped may still be retransmitting a previous
	// burst, and the re-acks must keep reporting those losses or it would
	// mistake a frontier pass for delivery. The sender ignores entries for
	// sequences it no longer has pending.
	lost  []uint32
	Stats DgramStats
}

// NewBurstReceiver receives on conn.
func NewBurstReceiver(conn net.PacketConn) *BurstReceiver {
	return &BurstReceiver{
		conn:        conn,
		frontier:    1,
		nextDeliver: 1,
		seen:        make(map[uint32]bool),
		payloads:    make(map[uint32][]byte),
	}
}

// advance walks the frontier over contiguously settled sequences.
func (r *BurstReceiver) advance() {
	for r.seen[r.frontier] {
		delete(r.seen, r.frontier)
		r.frontier++
	}
}

// maxSeenStale reports whether maxSeen fell behind the frontier (every
// seen sequence settled, so there is no gap to report): serial arithmetic
// on the frontier would underflow and fabricate NACKs.
func (r *BurstReceiver) maxSeenStale() bool {
	return r.maxSeen == 0 || r.maxSeen-r.frontier >= 1<<31
}

// sendAck reports the frontier plus the current gap and lost lists to addr.
func (r *BurstReceiver) sendAck(addr net.Addr) error {
	var nacks []uint32
	if !r.maxSeenStale() {
		for q := r.frontier; q-r.frontier <= r.maxSeen-r.frontier && len(nacks) < 128; q++ {
			if !r.seen[q] {
				nacks = append(nacks, q)
			}
		}
	}
	lost := r.lost
	if len(lost) > 128 {
		lost = lost[len(lost)-128:]
	}
	buf := make([]byte, dgramHeaderSize+4*(len(nacks)+len(lost)))
	dgramHeader{
		Kind:      dgramAck,
		Ack:       r.frontier,
		NackCount: uint16(len(nacks)),
		LostCount: uint16(len(lost)),
	}.encode(buf)
	for i, q := range nacks {
		binary.LittleEndian.PutUint32(buf[dgramHeaderSize+4*i:], q)
	}
	for i, q := range lost {
		binary.LittleEndian.PutUint32(buf[dgramHeaderSize+4*(len(nacks)+i):], q)
	}
	r.Stats.AcksSent++
	_, err := r.conn.WriteTo(buf, addr)
	return err
}

// RecvBurst collects one burst, invoking handle for every delivered payload
// in sequence order, and returns the number of best-effort sequences the
// burst lost (the gaps the sender folded back). It returns when the burst's
// End marker settles, or ErrBurstTimeout at the deadline.
func (r *BurstReceiver) RecvBurst(deadline time.Time, handle func(payload []byte)) (lost int, err error) {
	burstLost := 0
	buf := make([]byte, dgramHeaderSize+MaxDatagramPayload)
	endSeq, endKnown := uint32(0), false
	// Only an End at or above this call's starting frontier can complete the
	// call: a retransmitted End of an already-finished burst (its ack was
	// lost) is acked but must not make this call return an empty burst.
	startFrontier := r.frontier
	deliver := func() {
		// Hand over settled payloads in sequence order up to the frontier;
		// out-of-order arrivals wait in r.payloads until the gap settles.
		// Lost and control sequences simply advance the cursor.
		for r.nextDeliver != r.frontier {
			if p, ok := r.payloads[r.nextDeliver]; ok {
				handle(p)
				delete(r.payloads, r.nextDeliver)
			}
			r.nextDeliver++
		}
	}
	for {
		if endKnown && endSeq-r.frontier >= 1<<31 { // frontier passed the end marker
			deliver()
			return burstLost, nil
		}
		if !time.Now().Before(deadline) {
			return burstLost, ErrBurstTimeout
		}
		if err := r.conn.SetReadDeadline(deadline); err != nil {
			return burstLost, err
		}
		n, addr, err := r.conn.ReadFrom(buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return burstLost, ErrBurstTimeout
			}
			return burstLost, err
		}
		h, ok := decodeHeader(buf[:n])
		if !ok {
			continue
		}
		switch h.Kind {
		case dgramData, dgramEnd, dgramAbandon:
			settled := h.Seq-r.frontier >= 1<<31 || r.seen[h.Seq]
			if settled {
				r.Stats.Duplicates++
			} else {
				if r.maxSeenStale() || h.Seq-r.frontier > r.maxSeen-r.frontier {
					r.maxSeen = h.Seq
				}
				r.seen[h.Seq] = true
				switch h.Kind {
				case dgramData:
					p := make([]byte, n-dgramHeaderSize)
					copy(p, buf[dgramHeaderSize:n])
					r.payloads[h.Seq] = p
				case dgramAbandon:
					// The sender gave this best-effort sequence up: settle
					// it as lost and report it back so the fold-back is
					// confirmed on both sides.
					r.lost = append(r.lost, h.Seq)
					if len(r.lost) > 128 {
						r.lost = r.lost[len(r.lost)-128:]
					}
					burstLost++
					r.Stats.Lost++
				}
				r.advance()
			}
			if h.Kind == dgramEnd && h.Seq-startFrontier < 1<<31 {
				endSeq, endKnown = h.Seq, true
			}
			deliver()
			if err := r.sendAck(addr); err != nil {
				return burstLost, err
			}
		}
	}
}
