package lossnet

import (
	"testing"

	"rog/internal/trace"
)

// drawSchedule records n fates from a model.
func drawSchedule(m Model, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = m.Lost(float64(i) * 0.001)
	}
	return out
}

// lossRate is the fraction of lost packets in a schedule.
func lossRate(s []bool) float64 {
	n := 0
	for _, l := range s {
		if l {
			n++
		}
	}
	return float64(n) / float64(len(s))
}

// meanBurstLen is the mean length of a maximal run of consecutive losses.
func meanBurstLen(s []bool) float64 {
	runs, total := 0, 0
	cur := 0
	for _, l := range s {
		if l {
			cur++
			continue
		}
		if cur > 0 {
			runs++
			total += cur
			cur = 0
		}
	}
	if cur > 0 {
		runs++
		total += cur
	}
	if runs == 0 {
		return 0
	}
	return float64(total) / float64(runs)
}

func TestBernoulliRateAndDeterminism(t *testing.T) {
	a := drawSchedule(NewBernoulli(0.05, 7), 200_000)
	b := drawSchedule(NewBernoulli(0.05, 7), 200_000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if r := lossRate(a); r < 0.045 || r > 0.055 {
		t.Fatalf("bernoulli(0.05) realized rate %.4f", r)
	}
	c := drawSchedule(NewBernoulli(0.05, 8), 200_000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGilbertElliottCalibrationAndBurstiness(t *testing.T) {
	const rate, burst = 0.05, 8.0
	ge := drawSchedule(NewGilbertElliott(rate, burst, 3), 500_000)
	if r := lossRate(ge); r < 0.035 || r > 0.065 {
		t.Fatalf("GE(%.2f) realized rate %.4f", rate, r)
	}
	iid := drawSchedule(NewBernoulli(rate, 3), 500_000)
	geBurst, iidBurst := meanBurstLen(ge), meanBurstLen(iid)
	// The whole point of the two-state chain: losses cluster. At equal mean
	// rate the GE mean run length must clearly exceed the i.i.d. one (≈1.05).
	if geBurst < 2*iidBurst {
		t.Fatalf("GE mean burst %.2f not clearly burstier than iid %.2f", geBurst, iidBurst)
	}
	// Determinism.
	again := drawSchedule(NewGilbertElliott(rate, burst, 3), 1000)
	for i := range again {
		if again[i] != ge[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestGilbertElliottNeverFullyBlocks(t *testing.T) {
	// LossBad < 1 must hold: retransmission loops rely on packets escaping
	// even mid-burst.
	g := NewGilbertElliott(0.4, 64, 1)
	if g.LossBad >= 1 {
		t.Fatalf("LossBad = %g, retransmission could loop forever", g.LossBad)
	}
	delivered := false
	for i := 0; i < 10_000; i++ {
		if !g.Lost(0) {
			delivered = true
			break
		}
	}
	if !delivered {
		t.Fatal("no packet delivered in 10k draws at rate 0.4")
	}
}

func TestTraceModel(t *testing.T) {
	tr := &trace.Trace{Dt: 1, Samples: []float64{10, 10, 10}, Loss: []float64{0, 1, 0}}
	m := FromTrace(tr, 5)
	for i := 0; i < 100; i++ {
		if m.Lost(0.5) {
			t.Fatal("lost a packet at a 0-loss sample")
		}
	}
	for i := 0; i < 100; i++ {
		if !m.Lost(1.5) {
			t.Fatal("delivered a packet at a 1.0-loss sample")
		}
	}
	// No loss column → never loses.
	bare := FromTrace(&trace.Trace{Dt: 1, Samples: []float64{10}}, 5)
	if bare.Lost(0) {
		t.Fatal("trace without loss column dropped a packet")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		ok   bool
	}{
		{"", Spec{}, true},
		{"none", Spec{}, true},
		{"iid:0.05", Spec{Kind: "iid", Rate: 0.05, Burst: DefaultBurst}, true},
		{"ge:0.05", Spec{Kind: "ge", Rate: 0.05, Burst: DefaultBurst}, true},
		{"ge:0.05/16", Spec{Kind: "ge", Rate: 0.05, Burst: 16}, true},
		{"trace", Spec{Kind: "trace", Burst: DefaultBurst}, true},
		{"ge:0.7", Spec{}, false},  // rate out of range
		{"ge:-0.1", Spec{}, false}, // negative rate
		{"iid:0.05/-2", Spec{}, false},
		{"bogus:0.1", Spec{}, false},
		{"ge", Spec{}, false}, // missing rate
		{"ge:abc", Spec{}, false},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseSpec(%q) err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	// Round-trip through String.
	for _, in := range []string{"iid:0.05", "ge:0.05/16", "trace", "none"} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseSpec(s.String())
		if err != nil || back != s {
			t.Fatalf("round trip %q → %q → %+v (err %v)", in, s.String(), back, err)
		}
	}
}

func TestSpecModel(t *testing.T) {
	m, err := Spec{}.Model(1, nil)
	if err != nil || m != nil {
		t.Fatalf("disabled spec: model %v err %v", m, err)
	}
	if _, err := (Spec{Kind: "trace"}).Model(1, nil); err == nil {
		t.Fatal("trace spec without a trace did not error")
	}
	if _, err := (Spec{Kind: "trace"}).Model(1, &trace.Trace{Dt: 1, Samples: []float64{1}}); err == nil {
		t.Fatal("trace spec without a loss column did not error")
	}
	m, err = Spec{Kind: "ge", Rate: 0.05}.Model(1, nil)
	if err != nil || m == nil {
		t.Fatalf("ge spec: model %v err %v", m, err)
	}
}

func TestParseReliability(t *testing.T) {
	if r, err := ParseReliability("all"); err != nil || r != AllReliable {
		t.Fatalf("all → %v, %v", r, err)
	}
	if r, err := ParseReliability(""); err != nil || r != Selective {
		t.Fatalf("empty → %v, %v", r, err)
	}
	if _, err := ParseReliability("sometimes"); err == nil {
		t.Fatal("bogus reliability accepted")
	}
}

func TestRateSeries(t *testing.T) {
	s := Spec{Kind: "iid", Rate: 0.1}
	for _, v := range s.RateSeries(10, 1) {
		if v != 0.1 {
			t.Fatalf("iid rate series not constant: %g", v)
		}
	}
	g := Spec{Kind: "ge", Rate: 0.1, Burst: 4}
	a := g.RateSeries(5000, 2)
	b := g.RateSeries(5000, 2)
	sawBad := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rate series not deterministic at %d", i)
		}
		if a[i] == geLossBad {
			sawBad = true
		} else if a[i] != 0.1/8 {
			t.Fatalf("sample %d = %g is neither state's loss rate", i, a[i])
		}
	}
	if !sawBad {
		t.Fatal("GE rate series never entered the bad state in 5000 samples")
	}
	for _, v := range (Spec{}).RateSeries(3, 1) {
		if v != 0 {
			t.Fatal("disabled spec rate series not zero")
		}
	}
}
