// Package lossnet is the loss-tolerant row-transport subsystem. The
// bandwidth model in internal/trace reproduces how fast a robotic IoT link
// moves bytes; this package reproduces the fact that 802.11ac between
// moving robots also *drops* packets, in bursts, and provides the machinery
// to train through it:
//
//   - Deterministic, seedable packet-loss channel models: i.i.d. Bernoulli,
//     a Gilbert–Elliott bursty two-state chain calibrated by target loss
//     rate and mean burst length, and a trace-driven model replaying the
//     optional loss-rate column of a recorded bandwidth trace.
//   - A frame-dropping net.Conn wrapper (conn.go) that injects loss under
//     the existing TCP-style stream framing of internal/transport.
//   - A datagram transport (dgram.go) with sequence numbers, cumulative
//     acks and NACK-driven selective retransmission: reliable-class
//     payloads retransmit until acked, best-effort losses are detected via
//     sequence gaps and reported to the sender so their gradients can be
//     folded back into the local accumulator.
//
// The selective-reliability split itself is policy: the reliable class of a
// push plan is its Must prefix (the MTA floor plus the rows RSP forces), so
// ATP's importance ranking decides what retransmits and what may be lost.
package lossnet

import (
	"fmt"
	"strconv"
	"strings"

	"rog/internal/tensor"
	"rog/internal/trace"
)

// Model decides the fate of successive packets on one link. Each Lost call
// consumes draws from a seeded generator, so a fixed seed replays the loss
// schedule bit-identically; t is the send time in seconds (only the
// trace-driven model reads it).
type Model interface {
	Lost(t float64) bool
}

// Bernoulli is i.i.d. loss: every packet is dropped independently with the
// same probability.
type Bernoulli struct {
	rate float64
	rng  *tensor.RNG
}

// NewBernoulli returns an i.i.d. model with the given drop rate.
func NewBernoulli(rate float64, seed uint64) *Bernoulli {
	return &Bernoulli{rate: rate, rng: tensor.NewRNG(seed)}
}

// Lost implements Model.
func (b *Bernoulli) Lost(float64) bool { return b.rng.Float64() < b.rate }

// GilbertElliott is the classic bursty two-state channel: a good state with
// a small residual loss probability and a bad state (deep fade, collision
// burst) where most packets die. State transitions happen per packet, so
// losses cluster into runs whose mean length is the calibrated burst size.
type GilbertElliott struct {
	PGoodBad float64 // per-packet good→bad transition probability
	PBadGood float64 // per-packet bad→good transition probability
	LossGood float64 // loss probability in the good state
	LossBad  float64 // loss probability in the bad state

	bad bool
	rng *tensor.RNG
}

// geLossBad is the in-burst loss probability the calibration assumes: deep
// fades kill most, not all, packets (keeping it below 1 also guarantees
// retransmission loops drain even while a burst persists).
const geLossBad = 0.9

// NewGilbertElliott calibrates a bursty model to a target mean loss rate
// and mean burst length (packets spent in the bad state per visit).
func NewGilbertElliott(rate, burst float64, seed uint64) *GilbertElliott {
	if burst < 1 {
		burst = 1
	}
	lossGood := rate / 8 // small residual loss outside bursts
	// Stationary bad-state occupancy that hits the target mean rate, then
	// the transition pair whose sojourn times realize it: mean bad sojourn
	// is burst packets (PBadGood = 1/burst) and PGoodBad follows from the
	// occupancy balance πB/πG = PGoodBad/PBadGood.
	piBad := (rate - lossGood) / (geLossBad - lossGood)
	if piBad < 0 {
		piBad = 0
	}
	if piBad > 0.5 {
		piBad = 0.5
	}
	pBG := 1 / burst
	pGB := pBG * piBad / (1 - piBad)
	return &GilbertElliott{
		PGoodBad: pGB,
		PBadGood: pBG,
		LossGood: lossGood,
		LossBad:  geLossBad,
		rng:      tensor.NewRNG(seed),
	}
}

// Lost implements Model: draw the packet's fate in the current state, then
// advance the chain one step.
func (g *GilbertElliott) Lost(float64) bool {
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	lost := g.rng.Float64() < p
	if g.bad {
		if g.rng.Float64() < g.PBadGood {
			g.bad = false
		}
	} else if g.rng.Float64() < g.PGoodBad {
		g.bad = true
	}
	return lost
}

// TraceModel replays the loss-rate column of a recorded trace: each packet
// at time t is dropped with the trace's instantaneous rate, so a recorded
// real-world run drives both bandwidth and loss.
type TraceModel struct {
	tr  *trace.Trace
	rng *tensor.RNG
}

// FromTrace returns a model driven by tr's loss-rate column (a trace
// without one never drops).
func FromTrace(tr *trace.Trace, seed uint64) *TraceModel {
	return &TraceModel{tr: tr, rng: tensor.NewRNG(seed)}
}

// Lost implements Model.
func (m *TraceModel) Lost(t float64) bool { return m.rng.Float64() < m.tr.LossAt(t) }

// Reliability selects which transmitted rows retransmit on loss.
type Reliability int

const (
	// Selective retransmits only the reliable class — a speculative plan's
	// Must prefix (MTA floor + RSP-forced rows); lost best-effort rows fold
	// their gradients back into the local accumulator. Whole-model plans
	// (BSP/SSP) have no best-effort class and always fully retransmit.
	Selective Reliability = iota
	// AllReliable retransmits every transmitted row until delivered — the
	// full-reliability baseline the selective protocol is measured against.
	AllReliable
)

// String names the reliability mode.
func (r Reliability) String() string {
	if r == AllReliable {
		return "all"
	}
	return "selective"
}

// ParseReliability is the inverse of Reliability.String.
func ParseReliability(s string) (Reliability, error) {
	switch strings.ToLower(s) {
	case "", "selective":
		return Selective, nil
	case "all", "all-reliable", "reliable":
		return AllReliable, nil
	default:
		return Selective, fmt.Errorf("lossnet: unknown reliability %q (want selective or all)", s)
	}
}

// DefaultBurst is the calibrated mean burst length (packets) when a spec
// does not name one — roughly one 802.11 retry window of a deep fade.
const DefaultBurst = 8

// Spec names a loss model in the config/CLI grammar:
//
//	""            no loss (the default)
//	"iid:0.05"    i.i.d. Bernoulli at 5 %
//	"ge:0.05"     Gilbert–Elliott at 5 % mean, default burst length
//	"ge:0.05/16"  Gilbert–Elliott at 5 % mean, 16-packet mean bursts
//	"trace"       replay the loss-rate column of the run's bandwidth traces
type Spec struct {
	Kind  string  // "", "none", "iid", "ge" or "trace"
	Rate  float64 // target mean loss rate (iid, ge)
	Burst float64 // mean burst length in packets (ge; 0 = DefaultBurst)
}

// Enabled reports whether the spec names any loss at all.
func (s Spec) Enabled() bool {
	switch s.Kind {
	case "", "none":
		return false
	case "trace":
		return true
	default:
		return s.Rate > 0
	}
}

// Validate rejects nonsense and fills defaults.
func (s *Spec) Validate() error {
	switch s.Kind {
	case "", "none", "trace":
	case "iid", "ge":
		if s.Rate < 0 || s.Rate >= 0.5 {
			return fmt.Errorf("lossnet: loss rate must be in [0, 0.5), got %g", s.Rate)
		}
	default:
		return fmt.Errorf("lossnet: unknown loss model %q (want iid, ge or trace)", s.Kind)
	}
	if s.Burst < 0 {
		return fmt.Errorf("lossnet: burst length must be ≥ 1, got %g", s.Burst)
	}
	if s.Burst == 0 {
		s.Burst = DefaultBurst
	}
	return nil
}

// String renders the spec in ParseSpec's grammar.
func (s Spec) String() string {
	switch s.Kind {
	case "", "none":
		return "none"
	case "trace":
		return "trace"
	}
	out := fmt.Sprintf("%s:%g", s.Kind, s.Rate)
	if s.Kind == "ge" && s.Burst != 0 && s.Burst != DefaultBurst {
		out += fmt.Sprintf("/%g", s.Burst)
	}
	return out
}

// ParseSpec parses the loss-model grammar (see Spec).
func ParseSpec(text string) (Spec, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "none" {
		return Spec{}, nil
	}
	if text == "trace" {
		return Spec{Kind: "trace", Burst: DefaultBurst}, nil
	}
	kind, rest, ok := strings.Cut(text, ":")
	if !ok {
		return Spec{}, fmt.Errorf("lossnet: bad loss spec %q (want kind:rate[/burst])", text)
	}
	s := Spec{Kind: kind}
	rateStr, burstStr, hasBurst := strings.Cut(rest, "/")
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil {
		return Spec{}, fmt.Errorf("lossnet: bad loss rate in %q: %w", text, err)
	}
	s.Rate = rate
	if hasBurst {
		b, err := strconv.ParseFloat(burstStr, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("lossnet: bad burst length in %q: %w", text, err)
		}
		s.Burst = b
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Model builds the spec's loss process for one link. tr supplies the
// loss-rate column for the "trace" kind (required there, ignored
// otherwise). A disabled spec returns nil.
func (s Spec) Model(seed uint64, tr *trace.Trace) (Model, error) {
	if !s.Enabled() {
		return nil, nil
	}
	switch s.Kind {
	case "iid":
		return NewBernoulli(s.Rate, seed), nil
	case "ge":
		burst := s.Burst
		if burst == 0 {
			burst = DefaultBurst
		}
		return NewGilbertElliott(s.Rate, burst, seed), nil
	case "trace":
		if tr == nil || tr.Loss == nil {
			return nil, fmt.Errorf("lossnet: loss model %q needs a trace with a loss-rate column", s.Kind)
		}
		return FromTrace(tr, seed), nil
	default:
		return nil, fmt.Errorf("lossnet: unknown loss model %q", s.Kind)
	}
}

// RateSeries synthesizes a per-sample loss-rate series for a bandwidth
// trace of n samples: the Gilbert–Elliott chain advanced once per sample,
// emitting each state's loss probability — the recorded-trace counterpart
// that lets cmd/bandtrace export bandwidth and loss side by side. An iid
// spec yields a constant series; a disabled spec yields zeros.
func (s Spec) RateSeries(n int, seed uint64) []float64 {
	out := make([]float64, n)
	if !s.Enabled() || s.Kind == "trace" {
		return out
	}
	if s.Kind == "iid" {
		for i := range out {
			out[i] = s.Rate
		}
		return out
	}
	g := NewGilbertElliott(s.Rate, s.Burst, seed)
	for i := range out {
		if g.bad {
			out[i] = g.LossBad
		} else {
			out[i] = g.LossGood
		}
		if g.bad {
			if g.rng.Float64() < g.PBadGood {
				g.bad = false
			}
		} else if g.rng.Float64() < g.PGoodBad {
			g.bad = true
		}
	}
	return out
}
