package lossnet

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"rog/internal/transport"
)

// recvAll drains framed payloads from r until EOF.
func recvAll(t *testing.T, r io.Reader, out chan<- []byte) {
	t.Helper()
	rc := transport.NewReceiver(r)
	for {
		p, err := rc.Recv()
		if err == io.EOF {
			close(out)
			return
		}
		if err != nil {
			t.Errorf("recv: %v", err)
			close(out)
			return
		}
		out <- p
	}
}

func TestConnDropsWholeFrames(t *testing.T) {
	a, b := net.Pipe()
	lossy := WrapConn(a, NewBernoulli(0.3, 11), nil)
	got := make(chan []byte, 256)
	go recvAll(t, b, got)

	const frames = 200
	for i := 0; i < frames; i++ {
		payload := []byte(fmt.Sprintf("frame-%03d", i))
		if err := transport.WriteFrame(lossy, payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	lossy.Close()

	var received []string
	for p := range got {
		received = append(received, string(p))
	}
	drops, dropBytes := lossy.Dropped()
	if int(drops)+len(received) != frames {
		t.Fatalf("drops %d + received %d != %d sent", drops, len(received), frames)
	}
	if drops == 0 {
		t.Fatal("bernoulli(0.3) dropped nothing in 200 frames")
	}
	if dropBytes == 0 {
		t.Fatal("dropped frames counted no bytes")
	}
	// Survivors arrive intact and in order: frame indices strictly increase.
	last := -1
	for _, s := range received {
		var idx int
		if _, err := fmt.Sscanf(s, "frame-%d", &idx); err != nil {
			t.Fatalf("corrupt surviving frame %q", s)
		}
		if idx <= last {
			t.Fatalf("frame order violated: %d after %d", idx, last)
		}
		last = idx
	}
}

func TestConnDroppableFilter(t *testing.T) {
	a, b := net.Pipe()
	// Drop everything the filter admits: only payloads starting with 'R'
	// (after the 12-byte frame header) are droppable, mirroring how livenet
	// confines loss to row frames.
	rowOnly := func(frame []byte) bool { return len(frame) > 12 && frame[12] == 'R' }
	lossy := WrapConn(a, NewBernoulli(1.0, 1), rowOnly)
	got := make(chan []byte, 64)
	go recvAll(t, b, got)

	for i := 0; i < 10; i++ {
		if err := transport.WriteFrame(lossy, []byte("Rrow")); err != nil {
			t.Fatal(err)
		}
		if err := transport.WriteFrame(lossy, []byte("Cctl")); err != nil {
			t.Fatal(err)
		}
	}
	lossy.Close()

	var ctl, row int
	for p := range got {
		switch p[0] {
		case 'R':
			row++
		case 'C':
			ctl++
		}
	}
	if row != 0 {
		t.Fatalf("%d row frames leaked through a rate-1.0 model", row)
	}
	if ctl != 10 {
		t.Fatalf("control frames dropped: got %d of 10", ctl)
	}
	if drops, _ := lossy.Dropped(); drops != 10 {
		t.Fatalf("Dropped() = %d, want 10", drops)
	}
}

func TestConnZeroModelPassesEverything(t *testing.T) {
	a, b := net.Pipe()
	lossy := WrapConn(a, NewBernoulli(0, 1), nil)
	got := make(chan []byte, 16)
	go recvAll(t, b, got)
	for i := 0; i < 5; i++ {
		if err := transport.WriteFrame(lossy, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	lossy.Close()
	n := 0
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-got:
			if !ok {
				if n != 5 {
					t.Fatalf("received %d of 5 frames", n)
				}
				return
			}
			n++
		case <-deadline:
			t.Fatal("timed out")
		}
	}
}
