package lossnet

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// burstPayloads builds n distinguishable payloads.
func burstPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("payload-%04d", i))
	}
	return out
}

// runBurst ships payloads from a fresh sender to a fresh receiver over the
// given conns and returns (delivered flags, received payloads, lost count).
func runBurst(t *testing.T, sc, rc net.PacketConn, payloads [][]byte, reliable func(int) bool) ([]bool, [][]byte, int) {
	t.Helper()
	s := NewBurstSender(sc, rc.LocalAddr())
	r := NewBurstReceiver(rc)
	type recvResult struct {
		got  [][]byte
		lost int
		err  error
	}
	done := make(chan recvResult, 1)
	go func() {
		var got [][]byte
		lost, err := r.RecvBurst(time.Now().Add(20*time.Second), func(p []byte) {
			cp := make([]byte, len(p))
			copy(cp, p)
			got = append(got, cp)
		})
		done <- recvResult{got, lost, err}
	}()
	delivered, err := s.SendBurst(payloads, reliable, time.Now().Add(20*time.Second))
	if err != nil {
		t.Fatalf("SendBurst: %v", err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("RecvBurst: %v", res.err)
	}
	return delivered, res.got, res.lost
}

func TestBurstLossless(t *testing.T) {
	a, b := PacketPipe(nil, nil)
	defer a.Close()
	defer b.Close()
	payloads := burstPayloads(50)
	delivered, got, lost := runBurst(t, a, b, payloads, nil)
	if lost != 0 {
		t.Fatalf("lossless burst reported %d lost", lost)
	}
	for i, d := range delivered {
		if !d {
			t.Fatalf("payload %d not delivered on lossless pipe", i)
		}
	}
	if len(got) != len(payloads) {
		t.Fatalf("received %d of %d payloads", len(got), len(payloads))
	}
	for i, p := range got {
		if string(p) != string(payloads[i]) {
			t.Fatalf("payload %d corrupted or reordered: %q", i, p)
		}
	}
}

func TestBurstSelectiveReliabilityUnderLoss(t *testing.T) {
	// Bursty loss on the data direction only; acks travel clean so the
	// protocol's loss accounting — not ack luck — is what's under test.
	a, b := PacketPipe(NewGilbertElliott(0.25, 4, 42), nil)
	defer a.Close()
	defer b.Close()
	payloads := burstPayloads(120)
	reliable := func(i int) bool { return i < 40 } // importance prefix
	delivered, got, lost := runBurst(t, a, b, payloads, reliable)

	// Every reliable payload must have been delivered, whatever the channel did.
	for i := 0; i < 40; i++ {
		if !delivered[i] {
			t.Fatalf("reliable payload %d reported lost", i)
		}
	}
	// Sender and receiver must agree exactly: delivered flags vs payloads
	// handed over, lost flags vs gap count.
	wantLost := 0
	deliveredSet := make(map[string]bool)
	for i, d := range delivered {
		if d {
			deliveredSet[string(payloads[i])] = true
		} else {
			wantLost++
		}
	}
	if lost != wantLost {
		t.Fatalf("receiver counted %d lost, sender abandoned %d", lost, wantLost)
	}
	if len(got) != len(payloads)-wantLost {
		t.Fatalf("received %d payloads, want %d", len(got), len(payloads)-wantLost)
	}
	for _, p := range got {
		if !deliveredSet[string(p)] {
			t.Fatalf("receiver got %q which the sender thinks was lost", p)
		}
	}
	// In-order delivery of what survived.
	last := -1
	for _, p := range got {
		var idx int
		fmt.Sscanf(string(p), "payload-%d", &idx)
		if idx <= last {
			t.Fatalf("delivery order violated: %d after %d", idx, last)
		}
		last = idx
	}
}

func TestBurstAbandonHook(t *testing.T) {
	// Lossy data direction with a mostly best-effort burst: some payloads
	// must be abandoned, and the hook must fire once per abandon notice —
	// that is the contract the flight recorder's dump trigger rides on.
	a, b := PacketPipe(NewGilbertElliott(0.25, 4, 42), nil)
	defer a.Close()
	defer b.Close()
	payloads := burstPayloads(120)
	s := NewBurstSender(a, b.LocalAddr())
	var fired int64
	s.OnAbandon = func() { fired++ }
	r := NewBurstReceiver(b)
	done := make(chan error, 1)
	go func() {
		_, err := r.RecvBurst(time.Now().Add(20*time.Second), func([]byte) {})
		done <- err
	}()
	if _, err := s.SendBurst(payloads, func(i int) bool { return i < 10 }, time.Now().Add(20*time.Second)); err != nil {
		t.Fatalf("SendBurst: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("RecvBurst: %v", err)
	}
	if fired != s.Stats.Abandons {
		t.Errorf("hook fired %d times for %d abandon notices", fired, s.Stats.Abandons)
	}
	if fired == 0 {
		t.Error("no abandons under 25%% loss — the hook path went unexercised")
	}
}

func TestBurstAllReliableUnderLoss(t *testing.T) {
	a, b := PacketPipe(NewGilbertElliott(0.3, 4, 7), nil)
	defer a.Close()
	defer b.Close()
	payloads := burstPayloads(60)
	delivered, got, lost := runBurst(t, a, b, payloads, func(int) bool { return true })
	if lost != 0 {
		t.Fatalf("all-reliable burst lost %d payloads", lost)
	}
	for i, d := range delivered {
		if !d {
			t.Fatalf("payload %d undelivered in all-reliable mode", i)
		}
	}
	if len(got) != len(payloads) {
		t.Fatalf("received %d of %d", len(got), len(payloads))
	}
}

func TestBurstSequencePersistsAcrossBursts(t *testing.T) {
	// Loss on both directions: dropped acks force retransmissions and
	// duplicate handling across burst boundaries. The receiver loops
	// RecvBurst so late retransmits of a finished burst get re-acked.
	a, b := PacketPipe(NewBernoulli(0.15, 3), NewBernoulli(0.15, 4))
	defer a.Close()
	defer b.Close()
	s := NewBurstSender(a, b.LocalAddr())
	r := NewBurstReceiver(b)

	type result struct {
		got  int
		lost int
	}
	results := make(chan result, 16)
	stop := make(chan struct{})
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			got := 0
			lost, err := r.RecvBurst(time.Now().Add(500*time.Millisecond), func([]byte) { got++ })
			if err == nil {
				results <- result{got, lost}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	totalFolded := 0
	const bursts, per = 5, 30
	for i := 0; i < bursts; i++ {
		delivered, err := s.SendBurst(burstPayloads(per), func(j int) bool { return j < 10 }, time.Now().Add(20*time.Second))
		if err != nil {
			t.Fatalf("burst %d: %v", i, err)
		}
		res := <-results
		wantLost := 0
		for _, d := range delivered {
			if !d {
				wantLost++
			}
		}
		if res.lost != wantLost || res.got != per-wantLost {
			t.Fatalf("burst %d: receiver saw got=%d lost=%d, sender delivered=%d lost=%d",
				i, res.got, res.lost, per-wantLost, wantLost)
		}
		totalFolded += wantLost
	}
	close(stop)
	<-recvDone
	if s.Stats.Retransmits == 0 {
		t.Fatal("15% loss over 5 bursts triggered no retransmissions")
	}
	t.Logf("stats: sender %+v receiver %+v folded=%d", s.Stats, r.Stats, totalFolded)
}

func TestBurstOverRealUDP(t *testing.T) {
	sc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP on this host: %v", err)
	}
	defer sc.Close()
	rc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP on this host: %v", err)
	}
	defer rc.Close()
	payloads := burstPayloads(40)
	delivered, got, _ := runBurst(t, sc, rc, payloads, func(i int) bool { return i%2 == 0 })
	// Loopback UDP is effectively lossless; everything should arrive, via
	// first transmission or recovery.
	for i, d := range delivered {
		if !d {
			t.Fatalf("payload %d lost on loopback UDP", i)
		}
	}
	if len(got) != len(payloads) {
		t.Fatalf("received %d of %d on loopback UDP", len(got), len(payloads))
	}
}

func TestBurstDeadline(t *testing.T) {
	// A silent peer (no receiver at all) must produce ErrBurstTimeout, not a
	// hang.
	a, b := PacketPipe(nil, nil)
	defer a.Close()
	defer b.Close()
	s := NewBurstSender(a, b.LocalAddr())
	_, err := s.SendBurst(burstPayloads(3), nil, time.Now().Add(200*time.Millisecond))
	if err != ErrBurstTimeout {
		t.Fatalf("err = %v, want ErrBurstTimeout", err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := dgramHeader{Kind: dgramAck, Flags: dgramFlagReliable, Seq: 0xDEADBEEF, Ack: 42, NackCount: 3, LostCount: 7}
	var buf [dgramHeaderSize]byte
	h.encode(buf[:])
	back, ok := decodeHeader(buf[:])
	if !ok || back != h {
		t.Fatalf("round trip: %+v → %+v (ok=%v)", h, back, ok)
	}
	if _, ok := decodeHeader(buf[:dgramHeaderSize-1]); ok {
		t.Fatal("truncated header decoded")
	}
}
