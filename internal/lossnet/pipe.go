package lossnet

import (
	"errors"
	"net"
	"sync"
	"time"
)

// This file is the datagram-transport test substrate: an in-memory pair of
// net.PacketConn endpoints whose two directions drop datagrams according
// to independent loss models. Real UDP on localhost essentially never
// loses, so deterministic loss injection has to happen in the pipe — the
// same transport code then runs unchanged over genuine UDP sockets.

// pipeAddr is the stub address of a pipe endpoint.
type pipeAddr string

func (a pipeAddr) Network() string { return "lossnet" }
func (a pipeAddr) String() string  { return string(a) }

// ErrPipeClosed is returned by operations on a closed pipe endpoint.
var ErrPipeClosed = errors.New("lossnet: pipe closed")

// pipeEnd is one endpoint of a lossy in-memory packet pipe.
type pipeEnd struct {
	addr pipeAddr
	peer *pipeEnd

	mu           sync.Mutex
	model        Model // applied to datagrams leaving this end (nil = lossless)
	start        time.Time
	dropped      int64
	inbox        chan []byte
	closed       chan struct{}
	onceClose    sync.Once
	readDeadline time.Time
}

// PacketPipe returns two connected net.PacketConn endpoints, "a" and "b".
// aLoss drops datagrams sent from a, bLoss those sent from b (nil = no
// loss on that direction). A full inbox (1024 datagrams) also drops — the
// queue-overflow behaviour of a real interface.
func PacketPipe(aLoss, bLoss Model) (a, b net.PacketConn) {
	ea := &pipeEnd{addr: "pipe-a", model: aLoss, inbox: make(chan []byte, 1024), closed: make(chan struct{}), start: time.Now()}
	eb := &pipeEnd{addr: "pipe-b", model: bLoss, inbox: make(chan []byte, 1024), closed: make(chan struct{}), start: time.Now()}
	ea.peer, eb.peer = eb, ea
	return ea, eb
}

// WriteTo implements net.PacketConn; the destination address is ignored
// (the pipe has exactly one peer).
func (e *pipeEnd) WriteTo(p []byte, _ net.Addr) (int, error) {
	select {
	case <-e.closed:
		return 0, ErrPipeClosed
	case <-e.peer.closed:
		return 0, ErrPipeClosed
	default:
	}
	e.mu.Lock()
	lose := e.model != nil && e.model.Lost(time.Since(e.start).Seconds())
	if lose {
		e.dropped++
	}
	e.mu.Unlock()
	if lose {
		return len(p), nil
	}
	buf := make([]byte, len(p))
	copy(buf, p)
	select {
	case e.peer.inbox <- buf:
	default:
		// Queue overflow: the datagram dies like on a saturated NIC.
		e.mu.Lock()
		e.dropped++
		e.mu.Unlock()
	}
	return len(p), nil
}

// ReadFrom implements net.PacketConn, honoring the read deadline.
func (e *pipeEnd) ReadFrom(p []byte) (int, net.Addr, error) {
	e.mu.Lock()
	deadline := e.readDeadline
	e.mu.Unlock()
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			// Drain anything already queued before declaring timeout.
			select {
			case buf := <-e.inbox:
				return copy(p, buf), e.peer.addr, nil
			default:
				return 0, nil, timeoutError{}
			}
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case buf := <-e.inbox:
		return copy(p, buf), e.peer.addr, nil
	case <-timeout:
		return 0, nil, timeoutError{}
	case <-e.closed:
		return 0, nil, ErrPipeClosed
	}
}

// Close implements net.PacketConn.
func (e *pipeEnd) Close() error {
	e.onceClose.Do(func() { close(e.closed) })
	return nil
}

// LocalAddr implements net.PacketConn.
func (e *pipeEnd) LocalAddr() net.Addr { return e.addr }

// SetDeadline implements net.PacketConn (reads only — writes never block).
func (e *pipeEnd) SetDeadline(t time.Time) error { return e.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (e *pipeEnd) SetReadDeadline(t time.Time) error {
	e.mu.Lock()
	e.readDeadline = t
	e.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.PacketConn (writes never block).
func (e *pipeEnd) SetWriteDeadline(time.Time) error { return nil }

// timeoutError satisfies net.Error with Timeout() == true.
type timeoutError struct{}

func (timeoutError) Error() string   { return "lossnet: read deadline reached" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
