package lossnet

import (
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn and drops whole Write calls according to a loss
// model — the stream-transport injection point. transport.WriteFrame emits
// each frame as a single Write, so one dropped Write is one cleanly lost
// frame: the receiver's marker scan never sees it and the stream stays
// parseable (a dropped *fragment* would instead be resynced past as
// garbage, which Receiver also survives, but frame-granular loss is the
// channel model being reproduced here).
//
// A dropped Write still reports full success to the caller, exactly like a
// datagram swallowed by the air: the sender learns nothing unless a higher
// layer acks.
type Conn struct {
	net.Conn

	mu    sync.Mutex
	model Model
	// Droppable gates which writes may be lost (nil = all). The livenet
	// chaos tests use it to confine loss to row frames: control frames
	// model the reliable side channel a real deployment acks explicitly.
	droppable func(b []byte) bool
	start     time.Time

	dropped      int64
	droppedBytes int64
}

// WrapConn wraps c so that writes accepted by droppable (nil = all) are
// dropped whenever model says so.
func WrapConn(c net.Conn, model Model, droppable func(b []byte) bool) *Conn {
	return &Conn{Conn: c, model: model, droppable: droppable, start: time.Now()}
}

// Write implements net.Conn, consulting the loss model per call.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	lose := (c.droppable == nil || c.droppable(b)) && c.model.Lost(time.Since(c.start).Seconds())
	if lose {
		c.dropped++
		c.droppedBytes += int64(len(b))
	}
	c.mu.Unlock()
	if lose {
		return len(b), nil
	}
	return c.Conn.Write(b)
}

// Dropped reports how many writes (and bytes) the model swallowed.
func (c *Conn) Dropped() (writes, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped, c.droppedBytes
}
