// Package energy models per-device power consumption during distributed
// training. The paper (Table III, measured with jtop on Jetson Xavier NX
// boards) identifies three states with near-constant power: computation
// 13.35 W, communication 4.25 W and stall 4.04 W — the stall state still
// burns ≈30 % of compute power because leakage current keeps CPU/GPU/memory
// warm while the device waits for the parameter server.
//
// In the virtual-time experiments, state residency is known exactly, so
// energy is the exact integral power·time instead of the paper's 10 Hz
// numerical integration.
package energy

import "fmt"

// State is a device's activity at an instant.
type State int

const (
	// Compute covers forward/backward passes and gradient (de)compression,
	// which the paper folds into computation time.
	Compute State = iota
	// Communicate covers active radio transmission/reception.
	Communicate
	// Stall covers waiting at a synchronization barrier.
	Stall
	numStates
)

// String names the state.
func (s State) String() string {
	switch s {
	case Compute:
		return "computation"
	case Communicate:
		return "communication"
	case Stall:
		return "stall"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Model holds per-state power in watts.
type Model struct {
	Watts [numStates]float64
}

// PaperModel returns Table III's measured powers.
func PaperModel() Model {
	return Model{Watts: [numStates]float64{
		Compute:     13.35,
		Communicate: 4.25,
		Stall:       4.04,
	}}
}

// Meter integrates one device's energy across state residencies.
type Meter struct {
	model   Model
	seconds [numStates]float64
}

// NewMeter returns a meter over the given power model.
func NewMeter(m Model) *Meter { return &Meter{model: m} }

// Add records dt seconds spent in state s.
func (m *Meter) Add(s State, dt float64) {
	if dt < 0 {
		panic("energy: negative duration")
	}
	m.seconds[s] += dt
}

// Seconds returns the accumulated residency of state s.
func (m *Meter) Seconds(s State) float64 { return m.seconds[s] }

// TotalSeconds returns total metered time.
func (m *Meter) TotalSeconds() float64 {
	var t float64
	for _, s := range m.seconds {
		t += s
	}
	return t
}

// Joules returns the integrated energy in joules.
func (m *Meter) Joules() float64 {
	var j float64
	for s, sec := range m.seconds {
		j += m.model.Watts[s] * sec
	}
	return j
}

// JoulesIn returns the energy spent in one state.
func (m *Meter) JoulesIn(s State) float64 { return m.model.Watts[s] * m.seconds[s] }
