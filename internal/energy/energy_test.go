package energy

import (
	"math"
	"testing"
)

func TestPaperModelValues(t *testing.T) {
	m := PaperModel()
	if m.Watts[Compute] != 13.35 || m.Watts[Communicate] != 4.25 || m.Watts[Stall] != 4.04 {
		t.Fatalf("Table III values wrong: %+v", m)
	}
	// Stall is ≈30% of compute power (paper Sec. II-C / VI-A).
	ratio := m.Watts[Stall] / m.Watts[Compute]
	if ratio < 0.25 || ratio > 0.35 {
		t.Fatalf("stall/compute ratio %v not ≈0.3", ratio)
	}
}

func TestMeterIntegration(t *testing.T) {
	m := NewMeter(PaperModel())
	m.Add(Compute, 10)
	m.Add(Communicate, 4)
	m.Add(Stall, 6)
	m.Add(Stall, 1)
	wantJ := 13.35*10 + 4.25*4 + 4.04*7
	if math.Abs(m.Joules()-wantJ) > 1e-9 {
		t.Fatalf("Joules=%v want %v", m.Joules(), wantJ)
	}
	if m.Seconds(Stall) != 7 || m.TotalSeconds() != 21 {
		t.Fatalf("residency wrong: stall=%v total=%v", m.Seconds(Stall), m.TotalSeconds())
	}
	if math.Abs(m.JoulesIn(Compute)-133.5) > 1e-9 {
		t.Fatalf("JoulesIn=%v", m.JoulesIn(Compute))
	}
}

func TestMeterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMeter(PaperModel()).Add(Compute, -1)
}

func TestStateString(t *testing.T) {
	if Compute.String() != "computation" || Communicate.String() != "communication" || Stall.String() != "stall" {
		t.Fatal("state names wrong")
	}
}

func TestStallCheaperThanComputePerSecond(t *testing.T) {
	// The economics driving the paper: a stalled robot wastes energy, but
	// less per second than computing — the win comes from finishing sooner.
	a := NewMeter(PaperModel())
	a.Add(Stall, 1)
	b := NewMeter(PaperModel())
	b.Add(Compute, 1)
	if a.Joules() >= b.Joules() {
		t.Fatal("stall should cost less per second than compute")
	}
	if a.Joules() == 0 {
		t.Fatal("stall must still cost energy (leakage)")
	}
}
