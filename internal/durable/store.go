package durable

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"rog/internal/engine"
	"rog/internal/obs"
	"rog/internal/rowsync"
)

// Store is the crash-consistent checkpoint store for one parameter
// server: an atomic model snapshot (temp-file + rename) plus a
// write-ahead log of every state transition applied since (the
// engine.Journal hooks). Recovery loads the latest valid snapshot and
// replays its WAL up to the first torn record, so the recovered state is
// exactly the pre-crash state as of the last synced append.
//
// On disk a checkpoint is a pair: snap-N holds the snapshot, wal-N the
// transitions applied after it. Checkpoint writes snap-(N+1) atomically,
// opens wal-(N+1), then deletes the old pair; a crash between any two
// steps leaves at least one recoverable pair, and Recover prefers the
// newest valid one.
//
// I/O errors are sticky: the first failed append or checkpoint poisons
// the store (Err reports it) and every later journal write is dropped, so
// a store can never present a durably-inconsistent log as valid. The
// methods are mutex-guarded — the livenet server journals from handler
// goroutines while tests crash the store from outside.
type Store struct {
	mu  sync.Mutex
	fs  FS
	dir string

	// SyncEvery batches WAL syncs: the file is synced once per SyncEvery
	// appends (1 — the default — syncs every append). Larger values trade
	// the tail of a crash window for fewer barriers.
	SyncEvery int
	// Probe, when set, receives CheckpointBegin/End, WALAppend and
	// RecoveryReplay events and feeds the matching counters.
	Probe *obs.Probe

	epoch     uint64 // recovery epoch: bumped on every Recover
	seq       uint64 // sequence of the live snapshot/WAL pair
	maxSeq    uint64 // highest sequence seen on disk (collision avoidance)
	haveState bool   // a snapshot exists on disk
	gen       uint64 // journal generation: stale handles are ignored
	wal       File
	walBuf    []byte
	unsynced  int
	down      bool
	err       error
}

// RecoveryInfo reports what one Recover call did.
type RecoveryInfo struct {
	// Epoch is the new recovery epoch (pre-crash epoch + 1).
	Epoch uint64
	// ReplayedRecords is how many WAL records were applied.
	ReplayedRecords int
	// ReplayedBytes is the WAL bytes those records span.
	ReplayedBytes float64
	// TornBytes is the torn tail truncated from the WAL.
	TornBytes int
	// SnapshotBytes is the size of the snapshot loaded.
	SnapshotBytes float64
	// Payload is the opaque payload stored with the snapshot (the runtime's
	// own resume state).
	Payload []byte
}

// Open binds a store to dir on fsys, creating the directory and scanning
// it for existing checkpoints (HasState reports the result). It performs
// no recovery by itself: call Begin to start fresh or Recover to restore.
func Open(fsys FS, dir string) (*Store, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: create %s: %w", dir, err)
	}
	st := &Store{fs: fsys, dir: dir, SyncEvery: 1}
	names, err := fsys.List(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list %s: %w", dir, err)
	}
	for _, name := range names {
		if seq, ok := parseSeq(name, "snap-"); ok {
			st.haveState = true
			if seq > st.maxSeq {
				st.maxSeq = seq
			}
		}
	}
	return st, nil
}

// HasState reports whether the directory holds at least one snapshot.
func (st *Store) HasState() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.haveState
}

// Epoch returns the current recovery epoch (0 until the first recovery).
func (st *Store) Epoch() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epoch
}

// Err returns the sticky I/O error that poisoned the store, if any.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Crash simulates the process dying: the journal detaches (appends from
// the dead server's still-running handlers are dropped), and if the
// filesystem models a power cut (Crasher), unsynced bytes are lost.
// Recover brings the store back.
func (st *Store) Crash() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if c, ok := st.fs.(Crasher); ok {
		c.Crash()
	}
	st.down = true
	st.wal = nil
	st.gen++ // ghost journal handles from the dead server go stale
	st.err = nil
}

// Begin starts a fresh store: snapshot the initial state as checkpoint 0,
// open its WAL, and attach the journal so every later transition is
// logged. payload is the runtime's opaque resume state. Begin refuses a
// directory that already holds checkpoints — Recover them or clear it.
func (st *Store) Begin(state *engine.State, payload []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.haveState {
		return fmt.Errorf("durable: %s already holds a checkpoint; recover it or point at a clean directory", st.dir)
	}
	st.epoch, st.seq = 0, 0
	if err := st.checkpointLocked(state, payload, 0); err != nil {
		return err
	}
	st.haveState = true
	state.Journal = &journalHandle{st: st, gen: st.gen}
	return nil
}

// Checkpoint writes a new snapshot of state (atomic: temp file, sync,
// rename), rotates the WAL, and retires the previous pair. The journal
// stays attached; the caller must guarantee no concurrent state mutation
// (both runtimes already serialize state access).
func (st *Store) Checkpoint(state *engine.State, payload []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.down {
		return ErrCrashed
	}
	if st.err != nil {
		return st.err
	}
	return st.checkpointLocked(state, payload, st.seq+1)
}

// checkpointLocked writes the snap/wal pair for newSeq and makes it live.
func (st *Store) checkpointLocked(state *engine.State, payload []byte, newSeq uint64) error {
	st.Probe.CheckpointBegin(newSeq)
	data := encodeSnapshot(state, st.epoch, newSeq, payload)
	if err := st.writeFileAtomic(snapName(newSeq), data); err != nil {
		st.err = err
		return err
	}
	wal, err := st.fs.Create(st.path(walName(newSeq)))
	if err == nil {
		if _, werr := wal.Write(appendWALHeader(nil, st.epoch, newSeq)); werr != nil {
			err = werr
		} else if serr := wal.Sync(); serr != nil {
			err = serr
		}
	}
	if err != nil {
		st.err = fmt.Errorf("durable: open WAL %d: %w", newSeq, err)
		return st.err
	}
	if st.wal != nil {
		if cerr := st.wal.Close(); cerr != nil && st.err == nil {
			st.err = fmt.Errorf("durable: close WAL %d: %w", st.seq, cerr)
		}
	}
	oldSeq := st.seq
	st.wal, st.unsynced = wal, 0
	st.seq = newSeq
	if newSeq > st.maxSeq {
		st.maxSeq = newSeq
	}
	if oldSeq != newSeq {
		// Best-effort retirement: a leftover pair only costs disk — Recover
		// prefers the newest valid snapshot regardless.
		_ = st.fs.Remove(st.path(snapName(oldSeq)))
		_ = st.fs.Remove(st.path(walName(oldSeq)))
	}
	st.Probe.CheckpointEnd(newSeq, float64(len(data)))
	return st.err
}

// writeFileAtomic publishes name via temp-file + sync + rename, so a
// crash anywhere inside leaves either the old file or the complete new
// one — never a torn snapshot under the live name.
func (st *Store) writeFileAtomic(name string, data []byte) error {
	tmp := st.path(name + ".tmp")
	f, err := st.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("durable: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: close %s: %w", tmp, err)
	}
	if err := st.fs.Rename(tmp, st.path(name)); err != nil {
		return fmt.Errorf("durable: publish %s: %w", name, err)
	}
	return nil
}

// Recover restores server state from the newest valid checkpoint: decode
// its snapshot, replay its WAL up to the first torn record, bump the
// recovery epoch, anchor a fresh checkpoint (so the torn WAL is retired
// before any new writes), and attach the journal to the rebuilt state.
// The policy/partition/workers/initialBudget arguments must describe the
// same run shape the checkpoint was taken from.
func (st *Store) Recover(policy engine.Policy, part *rowsync.Partition, workers int, initialBudget float64) (*engine.State, *RecoveryInfo, error) {
	return st.RecoverSharded(policy, part, workers, initialBudget, 1)
}

// RecoverSharded is Recover for a run whose rebuilt state should be split
// into shards unit-range locks (see engine.NewStateSharded). The on-disk
// format is shard-agnostic: a checkpoint taken at any shard count recovers
// at any other.
func (st *Store) RecoverSharded(policy engine.Policy, part *rowsync.Partition, workers int, initialBudget float64, shards int) (*engine.State, *RecoveryInfo, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	names, err := st.fs.List(st.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: list %s: %w", st.dir, err)
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := parseSeq(name, "snap-"); ok {
			seqs = append(seqs, seq)
			if seq > st.maxSeq {
				st.maxSeq = seq
			}
		}
	}
	if len(seqs) == 0 {
		return nil, nil, fmt.Errorf("durable: %s holds no snapshot to recover", st.dir)
	}
	// Newest first: an older pair is only consulted if the newest snapshot
	// itself is invalid (it was published atomically, so that means
	// external corruption, not a crash).
	sortDesc(seqs)
	var firstErr error
	for _, seq := range seqs {
		// Recovery rebuilds a State that nothing else can reach yet — its
		// locks are uncontended private plumbing until this call returns —
		// so taking them under st.mu cannot deadlock, even though it reads
		// as an inversion of the declared order.
		//roglint:ignore lockorder recovered State is unshared until RecoverSharded returns
		state, info, err := st.recoverFrom(seq, policy, part, workers, initialBudget, shards)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// The recovered pair becomes history: anchor a fresh checkpoint at
		// a new sequence so the replayed WAL (and its torn tail) is retired
		// before the journal reattaches.
		st.epoch = info.Epoch
		st.seq = seq
		st.down, st.err = false, nil
		st.wal, st.unsynced = nil, 0
		if err := st.checkpointLocked(state, info.Payload, st.maxSeq+1); err != nil {
			return nil, nil, err
		}
		st.haveState = true
		st.gen++
		state.Journal = &journalHandle{st: st, gen: st.gen}
		st.Probe.RecoveryReplay(info.ReplayedRecords, info.SnapshotBytes+info.ReplayedBytes, info.Epoch)
		return state, info, nil
	}
	return nil, nil, fmt.Errorf("durable: no recoverable checkpoint in %s: %w", st.dir, firstErr)
}

// recoverFrom rebuilds state from the snap/wal pair at seq.
func (st *Store) recoverFrom(seq uint64, policy engine.Policy, part *rowsync.Partition, workers int, initialBudget float64, shards int) (*engine.State, *RecoveryInfo, error) {
	raw, err := st.readFile(snapName(seq))
	if err != nil {
		return nil, nil, err
	}
	snap, err := decodeSnapshot(raw)
	if err != nil {
		return nil, nil, err
	}
	if snap.seq != seq {
		return nil, nil, fmt.Errorf("durable: snapshot %d claims sequence %d", seq, snap.seq)
	}
	if snap.workers != workers || snap.units != part.NumUnits() {
		return nil, nil, fmt.Errorf("durable: checkpoint shape %d workers × %d units, run has %d × %d",
			snap.workers, snap.units, workers, part.NumUnits())
	}
	maxVals := 0
	for u := 0; u < part.NumUnits(); u++ {
		if n := part.Unit(u).Len; n > maxVals {
			maxVals = n
		}
		if snap.unitLens[u] != part.Unit(u).Len {
			return nil, nil, fmt.Errorf("durable: checkpoint unit %d holds %d values, run partition has %d",
				u, snap.unitLens[u], part.Unit(u).Len)
		}
	}

	state := engine.NewStateSharded(policy, part, workers, initialBudget, shards)
	state.RestoreVersions(snap.versions, snap.active, snap.min)
	copy(state.RowIter, snap.rowIter)
	state.Churn = snap.churn
	state.Loss = snap.loss
	for w := 0; w < workers; w++ {
		state.Tracker.Observe(w, snap.reports[w])
		for u := 0; u < snap.units; u++ {
			state.Acc[w].AddUnit(u, snap.acc[w][u], 1)
		}
	}

	info := &RecoveryInfo{
		Epoch:         snap.epoch + 1,
		SnapshotBytes: float64(len(raw)),
		Payload:       snap.payload,
	}

	// The WAL may be missing entirely (crash between snapshot rename and
	// WAL create) — that is a valid zero-record state, not corruption.
	walRaw, err := st.readFile(walName(seq))
	if err != nil {
		return state, info, nil
	}
	if len(walRaw) < walHeaderSize {
		info.TornBytes = len(walRaw)
		return state, info, nil
	}
	epoch, walSeq, err := parseWALHeader(walRaw)
	if err != nil || epoch != snap.epoch || walSeq != seq {
		info.TornBytes = len(walRaw)
		return state, info, nil
	}
	recs, used, torn := replayWAL(walRaw[walHeaderSize:], maxVals)
	info.TornBytes = torn
	for _, r := range recs {
		if !applyRecord(state, part, r) {
			// A CRC-valid record that still fails shape validation marks the
			// point where log and state diverged; nothing after it can be
			// trusted, so the rest of the log counts as torn.
			info.TornBytes += used - int(info.ReplayedBytes)
			break
		}
		info.ReplayedRecords++
		info.ReplayedBytes += float64(r.encodedLen())
	}
	return state, info, nil
}

// applyRecord replays one journaled transition onto state; false means
// the record does not fit the run shape.
func applyRecord(state *engine.State, part *rowsync.Partition, r Record) bool {
	w, u := int(r.Worker), int(r.Unit)
	switch r.Kind {
	case RecMerge:
		if w < 0 || w >= state.Versions.Workers() || u < 0 || u >= part.NumUnits() || len(r.Vals) != part.Unit(u).Len {
			return false
		}
		state.Merge(w, u, r.Vals, r.Iter)
	case RecDrain:
		if w < 0 || w >= state.Versions.Workers() || u < 0 || u >= part.NumUnits() {
			return false
		}
		state.DrainUnit(w, u)
	case RecRestore:
		if w < 0 || w >= state.Versions.Workers() || u < 0 || u >= part.NumUnits() || len(r.Vals) != part.Unit(u).Len {
			return false
		}
		state.RestoreUnit(w, u, r.Vals)
	case RecDetach:
		if w < 0 || w >= state.Versions.Workers() {
			return false
		}
		state.Detach(w)
	case RecAttach:
		if w < 0 || w >= state.Versions.Workers() {
			return false
		}
		state.Attach(w)
	case RecObserve:
		if w < 0 || w >= state.Versions.Workers() {
			return false
		}
		state.Tracker.Observe(w, r.Aux)
	case RecLoss:
		state.ObserveLoss(w, u, r.Aux)
	default:
		return false
	}
	return true
}

// append logs one record; called by journalHandle with its generation.
// Appends from stale generations (handlers of an already-crashed server)
// and poisoned or down stores are dropped — the log must never contain a
// transition the recovered state did not apply.
func (st *Store) append(gen uint64, r Record) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.down || st.err != nil || gen != st.gen || st.wal == nil {
		return
	}
	st.walBuf = appendRecord(st.walBuf[:0], r)
	if _, err := st.wal.Write(st.walBuf); err != nil {
		st.err = fmt.Errorf("durable: WAL append: %w", err)
		return
	}
	st.unsynced++
	if st.unsynced >= st.syncEvery() {
		if err := st.wal.Sync(); err != nil {
			st.err = fmt.Errorf("durable: WAL sync: %w", err)
			return
		}
		st.unsynced = 0
	}
	st.Probe.WALAppend(len(st.walBuf))
}

func (st *Store) syncEvery() int {
	if st.SyncEvery < 1 {
		return 1
	}
	return st.SyncEvery
}

// readFile slurps one store file.
func (st *Store) readFile(name string) ([]byte, error) {
	f, err := st.fs.Open(st.path(name))
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	_ = f.Close() // read-only handle: nothing a close error could lose
	if err != nil {
		return nil, fmt.Errorf("durable: read %s: %w", name, err)
	}
	return data, nil
}

func (st *Store) path(name string) string { return st.dir + "/" + name }

func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d", seq) }
func walName(seq uint64) string  { return fmt.Sprintf("wal-%08d", seq) }

// parseSeq extracts the sequence from a "prefix-%08d" name.
func parseSeq(name, prefix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok || strings.HasSuffix(rest, ".tmp") {
		return 0, false
	}
	seq, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// sortDesc orders seqs highest-first (tiny n; avoids importing sort for a
// comparator of uint64s).
func sortDesc(seqs []uint64) {
	for i := 1; i < len(seqs); i++ {
		for j := i; j > 0 && seqs[j] > seqs[j-1]; j-- {
			seqs[j], seqs[j-1] = seqs[j-1], seqs[j]
		}
	}
}

// journalHandle adapts a Store generation to engine.Journal. The
// generation pins it to one server incarnation: after Crash or Recover
// the store's generation moves on and appends through this handle become
// no-ops, so a ghost handler finishing its merge on a dead server cannot
// contaminate the next incarnation's log.
type journalHandle struct {
	st  *Store
	gen uint64
}

// JournalMerge implements engine.Journal.
func (j *journalHandle) JournalMerge(worker, unit int, iter int64, vals []float32) {
	j.st.append(j.gen, Record{Kind: RecMerge, Worker: int32(worker), Unit: int32(unit), Iter: iter, Vals: vals})
}

// JournalDrain implements engine.Journal.
func (j *journalHandle) JournalDrain(worker, unit int) {
	j.st.append(j.gen, Record{Kind: RecDrain, Worker: int32(worker), Unit: int32(unit)})
}

// JournalRestore implements engine.Journal.
func (j *journalHandle) JournalRestore(worker, unit int, vals []float32) {
	j.st.append(j.gen, Record{Kind: RecRestore, Worker: int32(worker), Unit: int32(unit), Vals: vals})
}

// JournalDetach implements engine.Journal.
func (j *journalHandle) JournalDetach(worker int) {
	j.st.append(j.gen, Record{Kind: RecDetach, Worker: int32(worker)})
}

// JournalAttach implements engine.Journal.
func (j *journalHandle) JournalAttach(worker int) {
	j.st.append(j.gen, Record{Kind: RecAttach, Worker: int32(worker)})
}

// JournalObserve implements engine.Journal.
func (j *journalHandle) JournalObserve(worker int, seconds float64) {
	j.st.append(j.gen, Record{Kind: RecObserve, Worker: int32(worker), Aux: seconds})
}

// JournalLoss implements engine.Journal.
func (j *journalHandle) JournalLoss(folded, retransmitted int, retransmitBytes float64) {
	j.st.append(j.gen, Record{Kind: RecLoss, Worker: int32(folded), Unit: int32(retransmitted), Aux: retransmitBytes})
}
