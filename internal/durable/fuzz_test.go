package durable

import (
	"testing"
)

// FuzzSnapshotDecode throws arbitrary bytes at the snapshot decoder. The
// decoder's input is "whatever was on disk after the crash" — possibly a
// torn tail, possibly external corruption — so under any input it must
// neither panic nor over-allocate, and it may accept only inputs whose
// checksum actually holds. A valid snapshot round-trips exactly; every
// single-byte mutation of it must be rejected (the CRC trailer's job).
func FuzzSnapshotDecode(f *testing.F) {
	state, part := newTestState(f, 2)
	for _, o := range genOps(f, 21, 15, 2) {
		o.apply(state)
	}
	valid := encodeSnapshot(state, 3, 7, []byte("resume payload"))
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn mid-body
	f.Add(valid[:20])           // torn inside the header
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x40 // epoch bit flip: CRC must catch it
	f.Add(flipped)
	huge := append([]byte(nil), valid...)
	huge[24], huge[25] = 0xFF, 0xFF // workers count inflated
	f.Add(huge)

	workers, units := 2, part.NumUnits()
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		// Accepted input: the checksum held, so the structure must be fully
		// coherent — counts non-negative and every slice at its stated size.
		if snap.workers < 0 || snap.units < 0 {
			t.Fatalf("accepted snapshot with negative shape %d×%d", snap.workers, snap.units)
		}
		if len(snap.active) != snap.workers || len(snap.reports) != snap.workers ||
			len(snap.versions) != snap.workers || len(snap.acc) != snap.workers {
			t.Fatal("accepted snapshot with per-worker slices off its stated shape")
		}
		if len(snap.rowIter) != snap.units || len(snap.unitLens) != snap.units {
			t.Fatal("accepted snapshot with per-unit slices off its stated shape")
		}
		for w := range snap.acc {
			if len(snap.versions[w]) != snap.units || len(snap.acc[w]) != snap.units {
				t.Fatal("accepted snapshot with ragged inner slices")
			}
			for u := range snap.acc[w] {
				if len(snap.acc[w][u]) != snap.unitLens[u] {
					t.Fatal("accepted snapshot with gradient run off its unit length")
				}
			}
		}
		_ = workers
		_ = units
	})
}

// FuzzWALReplay throws arbitrary bytes at the WAL record stream decoder.
// Whatever the input, replay must not panic, must consume monotonically
// (used + torn == len(input)), must never fabricate records beyond what
// the bytes could encode, and applying the decoded records to a real
// state must stay in-bounds (applyRecord's validation is part of the
// recovery surface).
func FuzzWALReplay(f *testing.F) {
	const workers = 2
	ops := genOps(f, 33, 12, workers)
	var valid []byte
	for _, o := range ops {
		r := Record{Kind: o.kind, Worker: int32(o.w), Unit: int32(o.u), Iter: o.iter, Aux: o.sec, Vals: o.vals}
		valid = appendRecord(valid, r)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail mid-record
	f.Add(valid[:recordMinSize-1])
	badKind := append([]byte(nil), valid...)
	badKind[0] = 0xEE
	f.Add(badKind)
	badLen := append([]byte(nil), valid...)
	badLen[25], badLen[26] = 0xFF, 0xFF // value count inflated
	f.Add(badLen)

	_, part := testShape(f, workers)
	maxVals := 0
	for u := 0; u < part.NumUnits(); u++ {
		if n := part.Unit(u).Len; n > maxVals {
			maxVals = n
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, used, torn := replayWAL(data, maxVals)
		if used+torn != len(data) {
			t.Fatalf("used %d + torn %d != %d input bytes", used, torn, len(data))
		}
		if used < 0 || torn < 0 {
			t.Fatalf("negative accounting: used %d torn %d", used, torn)
		}
		if len(recs) > used/recordMinSize {
			t.Fatalf("%d records out of %d used bytes — below the %d-byte record floor",
				len(recs), used, recordMinSize)
		}
		for _, r := range recs {
			if r.Kind == 0 || r.Kind > recKindMax {
				t.Fatalf("decoded record with kind %d outside the valid range", r.Kind)
			}
			if len(r.Vals) > maxVals {
				t.Fatalf("decoded record with %d values above the %d cap", len(r.Vals), maxVals)
			}
		}
		// Applying whatever decoded onto a real state must never index out
		// of bounds or panic; applyRecord rejects shape-mismatched records.
		state, _ := newTestState(t, workers)
		for _, r := range recs {
			if !applyRecord(state, part, r) {
				break
			}
		}
	})
}
