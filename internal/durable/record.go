package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// WAL record kinds — one per engine.State transition the journal observes.
const (
	// RecMerge is one merged row: worker/unit/iter plus the decoded
	// gradient values folded into every averaged copy.
	RecMerge uint8 = iota + 1
	// RecDrain zeroes one worker's averaged copy of a unit (its contents
	// left the server inside a pull or resync transmission).
	RecDrain
	// RecRestore folds values back into a worker's averaged copy (an
	// undelivered pull conserving its mass).
	RecRestore
	// RecDetach removes a worker from membership.
	RecDetach
	// RecAttach re-admits a worker (re-baselining is deterministic, so
	// only the event is logged).
	RecAttach
	// RecObserve is one MTA-time tracker report (Aux carries seconds).
	RecObserve
	// RecLoss is one loss-channel accounting update: Worker carries the
	// folded-row count, Unit the retransmitted-row count, Aux the bytes.
	RecLoss

	recKindMax = RecLoss
)

// Fixed layout: kind(1) worker(4) unit(4) iter(8) aux(8) n(4), then n
// float32 values, then CRC32-IEEE over everything before it.
const (
	recordHeaderSize = 1 + 4 + 4 + 8 + 8 + 4
	recordCRCSize    = 4
	recordMinSize    = recordHeaderSize + recordCRCSize
)

// Record is one WAL entry. The roglint:wire marker holds its fields to
// fixed-width integers and keyed construction (see internal/analysis).
//
//roglint:wire
type Record struct {
	Kind   uint8
	Worker int32
	Unit   int32
	Iter   int64
	Aux    float64
	Vals   []float32
}

// encodedLen returns the on-disk size of the record.
func (r Record) encodedLen() int {
	return recordMinSize + 4*len(r.Vals)
}

// appendRecord encodes r onto dst and returns the extended slice.
func appendRecord(dst []byte, r Record) []byte {
	start := len(dst)
	dst = append(dst, r.Kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Worker))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Unit))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Iter))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Aux))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Vals)))
	for _, v := range r.Vals {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// decodeRecord decodes one record from the head of b. maxVals bounds the
// value count so corrupt (or hostile) input cannot demand an absurd
// allocation. It returns the record and the bytes consumed; any error —
// truncation, CRC mismatch, out-of-range fields — means the record (and
// with it the WAL tail) is torn.
func decodeRecord(b []byte, maxVals int) (Record, int, error) {
	if len(b) < recordMinSize {
		return Record{}, 0, fmt.Errorf("durable: torn record header (%d bytes)", len(b))
	}
	var r Record
	r.Kind = b[0]
	r.Worker = int32(binary.LittleEndian.Uint32(b[1:]))
	r.Unit = int32(binary.LittleEndian.Uint32(b[5:]))
	r.Iter = int64(binary.LittleEndian.Uint64(b[9:]))
	r.Aux = math.Float64frombits(binary.LittleEndian.Uint64(b[17:]))
	n := int(binary.LittleEndian.Uint32(b[25:]))
	if r.Kind == 0 || r.Kind > recKindMax {
		return Record{}, 0, fmt.Errorf("durable: unknown record kind %d", r.Kind)
	}
	if n < 0 || n > maxVals {
		return Record{}, 0, fmt.Errorf("durable: record claims %d values (max %d)", n, maxVals)
	}
	total := recordMinSize + 4*n
	if len(b) < total {
		return Record{}, 0, fmt.Errorf("durable: torn record body (%d of %d bytes)", len(b), total)
	}
	want := binary.LittleEndian.Uint32(b[total-recordCRCSize:])
	if crc32.ChecksumIEEE(b[:total-recordCRCSize]) != want {
		return Record{}, 0, fmt.Errorf("durable: record CRC mismatch")
	}
	if n > 0 {
		r.Vals = make([]float32, n)
		for i := range r.Vals {
			r.Vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[recordHeaderSize+4*i:]))
		}
	}
	return r, total, nil
}
