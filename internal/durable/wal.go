package durable

import (
	"encoding/binary"
	"fmt"
)

// WAL file layout: a fixed header (magic "ROGW", format version, recovery
// epoch, segment sequence) followed by CRC-guarded records. The segment
// sequence ties each WAL to the snapshot it extends: wal-N holds exactly
// the transitions applied after snap-N was taken.
const (
	walMagic      = "ROGW"
	walVersion    = 1
	walHeaderSize = 4 + 4 + 8 + 8
)

// appendWALHeader encodes the segment header onto dst.
func appendWALHeader(dst []byte, epoch, seq uint64) []byte {
	dst = append(dst, walMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, walVersion)
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	return dst
}

// parseWALHeader validates the header at the head of b.
func parseWALHeader(b []byte) (epoch, seq uint64, err error) {
	if len(b) < walHeaderSize {
		return 0, 0, fmt.Errorf("durable: torn WAL header (%d bytes)", len(b))
	}
	if string(b[:4]) != walMagic {
		return 0, 0, fmt.Errorf("durable: bad WAL magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != walVersion {
		return 0, 0, fmt.Errorf("durable: unsupported WAL version %d", v)
	}
	return binary.LittleEndian.Uint64(b[8:]), binary.LittleEndian.Uint64(b[16:]), nil
}

// replayWAL decodes the record stream of a WAL segment body (b excludes
// the header), stopping at the first torn or corrupt record — the tail a
// crash left unfinished. It returns the decoded records, the bytes they
// span, and the torn-tail length that was truncated away. Decoding never
// fails: a WAL is by construction valid up to a cut point.
func replayWAL(b []byte, maxVals int) (recs []Record, used, torn int) {
	off := 0
	for off < len(b) {
		r, n, err := decodeRecord(b[off:], maxVals)
		if err != nil {
			return recs, off, len(b) - off
		}
		recs = append(recs, r)
		off += n
	}
	return recs, off, 0
}
