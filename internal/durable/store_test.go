package durable

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rog/internal/engine"
	"rog/internal/nn"
	"rog/internal/obs"
	"rog/internal/rowsync"
	"rog/internal/tensor"
)

const testThreshold = 4

// testShape builds the small real run shape every durable test shares: a
// classifier MLP partitioned by rows under the paper's policy.
func testShape(t testing.TB, workers int) (engine.Policy, *rowsync.Partition) {
	t.Helper()
	proto := nn.NewClassifierMLP(4, []int{6}, 3, tensor.NewRNG(1))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	pol, err := engine.New("rog", engine.Params{Workers: workers, Threshold: testThreshold, NumUnits: part.NumUnits()})
	if err != nil {
		t.Fatal(err)
	}
	return pol, part
}

func newTestState(t testing.TB, workers int) (*engine.State, *rowsync.Partition) {
	t.Helper()
	pol, part := testShape(t, workers)
	return engine.NewState(pol, part, workers, 1.0), part
}

// op is one scripted state transition. Each op journals exactly one WAL
// record when applied to a store-attached state (the generator arranges
// that no op is a dedup or membership no-op).
type op struct {
	kind            uint8 // Rec* constant
	w, u            int
	iter            int64
	vals            []float32
	sec             float64
	folded, retrans int
	bytes           float64
}

func (o op) apply(s *engine.State) {
	switch o.kind {
	case RecMerge:
		s.Merge(o.w, o.u, o.vals, o.iter)
	case RecDrain:
		s.DrainUnit(o.w, o.u)
	case RecRestore:
		s.RestoreUnit(o.w, o.u, o.vals)
	case RecDetach:
		s.Detach(o.w)
	case RecAttach:
		s.Attach(o.w)
	case RecObserve:
		s.ObservePush(o.w, o.iter, o.sec, o.sec, true)
	case RecLoss:
		s.ObserveLoss(o.folded, o.retrans, o.bytes)
	}
}

// recLen is the WAL footprint the op's single record will take.
func (o op) recLen() int {
	return Record{Vals: o.vals}.encodedLen()
}

// genOps scripts n transitions from seed. It applies each op to a scratch
// state as it generates, so membership choices and staleness clamping see
// exactly the state a replay will see: merges keep every active worker
// within the RSP threshold, detaches only hit attached workers, attaches
// only detached ones.
func genOps(t testing.TB, seed uint64, n, workers int) []op {
	t.Helper()
	scratch, part := newTestState(t, workers)
	units := part.NumUnits()
	rng := seed
	mkVals := func(u int) []float32 {
		vals := make([]float32, part.Unit(u).Len)
		for i := range vals {
			vals[i] = float32(int(splitmix64(&rng)%17)-8) / 4
		}
		return vals
	}
	ops := make([]op, 0, n)
	emit := func(o op) {
		o.apply(scratch)
		ops = append(ops, o)
	}
	for len(ops) < n {
		w := int(splitmix64(&rng) % uint64(workers))
		u := int(splitmix64(&rng) % uint64(units))
		switch r := splitmix64(&rng) % 100; {
		case r < 60:
			// Merge the next iteration of (w, u); if that would breach the
			// staleness bound, advance the row pinning the minimum instead.
			iter := scratch.Versions.Get(w, u) + 1
			if scratch.Versions.IsActive(w) && iter-scratch.Versions.Min() >= testThreshold {
				w, u = minRow(scratch, workers, units)
				iter = scratch.Versions.Get(w, u) + 1
			}
			emit(op{kind: RecMerge, w: w, u: u, iter: iter, vals: mkVals(u)})
		case r < 70:
			emit(op{kind: RecDrain, w: w, u: u})
		case r < 80:
			emit(op{kind: RecRestore, w: w, u: u, vals: mkVals(u)})
		case r < 85:
			// Detach an attached worker, but never the last one (the frozen
			// minimum would make later merges unclampable).
			if scratch.Versions.IsActive(w) && scratch.Versions.ActiveWorkers() > 1 {
				emit(op{kind: RecDetach, w: w})
			}
		case r < 90:
			if !scratch.Versions.IsActive(w) {
				emit(op{kind: RecAttach, w: w})
			}
		case r < 95:
			emit(op{kind: RecObserve, w: w, iter: scratch.Versions.Get(w, 0) + 1,
				sec: 0.05 + float64(splitmix64(&rng)%100)/250})
		default:
			emit(op{kind: RecLoss, folded: int(splitmix64(&rng) % 5), retrans: int(splitmix64(&rng) % 3),
				bytes: float64(splitmix64(&rng) % 4096)})
		}
	}
	return ops
}

// minRow returns the (worker, unit) of an active worker pinning the
// version minimum (lowest indices on ties).
func minRow(s *engine.State, workers, units int) (int, int) {
	bw, bu, best := 0, 0, int64(-1)
	for w := 0; w < workers; w++ {
		if !s.Versions.IsActive(w) {
			continue
		}
		for u := 0; u < units; u++ {
			if v := s.Versions.Get(w, u); best == -1 || v < best {
				bw, bu, best = w, u, v
			}
		}
	}
	return bw, bu
}

// refState rebuilds the state a fresh run reaches after ops[:m].
func refState(t testing.TB, workers int, ops []op, m int) *engine.State {
	t.Helper()
	s, _ := newTestState(t, workers)
	for _, o := range ops[:m] {
		o.apply(s)
	}
	return s
}

// diffStates reports the first difference between two states ("" if
// equal). Gradient copies are compared bitwise: recovery promises the
// exact pre-crash state, not an approximation.
func diffStates(a, b *engine.State, part *rowsync.Partition) string {
	workers, units := a.Versions.Workers(), a.Versions.Units()
	if b.Versions.Workers() != workers || b.Versions.Units() != units {
		return "shape differs"
	}
	if a.Versions.Min() != b.Versions.Min() {
		return fmt.Sprintf("min %d vs %d", a.Versions.Min(), b.Versions.Min())
	}
	if a.Versions.ActiveWorkers() != b.Versions.ActiveWorkers() {
		return fmt.Sprintf("active %d vs %d", a.Versions.ActiveWorkers(), b.Versions.ActiveWorkers())
	}
	for w := 0; w < workers; w++ {
		if a.Versions.IsActive(w) != b.Versions.IsActive(w) {
			return fmt.Sprintf("worker %d activity differs", w)
		}
		if a.Tracker.Report(w) != b.Tracker.Report(w) {
			return fmt.Sprintf("worker %d tracker %v vs %v", w, a.Tracker.Report(w), b.Tracker.Report(w))
		}
		for u := 0; u < units; u++ {
			if a.Versions.Get(w, u) != b.Versions.Get(w, u) {
				return fmt.Sprintf("version[%d][%d] %d vs %d", w, u, a.Versions.Get(w, u), b.Versions.Get(w, u))
			}
			av, bv := a.Acc[w].Unit(u), b.Acc[w].Unit(u)
			for i := range av {
				if av[i] != bv[i] {
					return fmt.Sprintf("acc[%d][%d][%d] %v vs %v", w, u, i, av[i], bv[i])
				}
			}
		}
	}
	for u := 0; u < units; u++ {
		if a.RowIter[u] != b.RowIter[u] {
			return fmt.Sprintf("rowIter[%d] %d vs %d", u, a.RowIter[u], b.RowIter[u])
		}
	}
	if a.Churn != b.Churn {
		return fmt.Sprintf("churn %+v vs %+v", a.Churn, b.Churn)
	}
	if a.Loss != b.Loss {
		return fmt.Sprintf("loss %+v vs %+v", a.Loss, b.Loss)
	}
	_ = part
	return ""
}

// TestStoreRoundtripAndEpoch drives the full lifecycle without a crash:
// Begin, journaled ops, Checkpoint, more ops, then Recover — the rebuilt
// state must equal the live one exactly, the payload must round-trip, and
// each recovery must advance the epoch.
func TestStoreRoundtripAndEpoch(t *testing.T) {
	const workers = 3
	pol, part := testShape(t, workers)
	ops := genOps(t, 11, 60, workers)
	fs := NewMemFS()
	st, err := Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	live, _ := newTestState(t, workers)
	if err := st.Begin(live, []byte("boot")); err != nil {
		t.Fatal(err)
	}
	for _, o := range ops[:25] {
		o.apply(live)
	}
	if err := st.Checkpoint(live, []byte("mid")); err != nil {
		t.Fatal(err)
	}
	for _, o := range ops[25:] {
		o.apply(live)
	}

	rec, info, err := st.Recover(pol, part, workers, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffStates(rec, refState(t, workers, ops, len(ops)), part); d != "" {
		t.Fatalf("recovered state differs from live: %s", d)
	}
	if info.Epoch != 1 || st.Epoch() != 1 {
		t.Fatalf("epoch = %d/%d, want 1", info.Epoch, st.Epoch())
	}
	if string(info.Payload) != "mid" {
		t.Fatalf("payload = %q, want the checkpointed one", info.Payload)
	}
	if info.ReplayedRecords != len(ops)-25 {
		t.Fatalf("replayed %d records, want %d", info.ReplayedRecords, len(ops)-25)
	}

	// Second recovery (no new ops): epoch keeps climbing, state is stable.
	rec2, info2, err := st.Recover(pol, part, workers, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Epoch != 2 {
		t.Fatalf("second epoch = %d, want 2", info2.Epoch)
	}
	if d := diffStates(rec2, rec, part); d != "" {
		t.Fatalf("idempotent recovery drifted: %s", d)
	}
}

// TestCheckpointRotationRetiresOldPair checks the snap/wal pair rotates:
// after a checkpoint the previous pair is gone and the new one is live.
func TestCheckpointRotationRetiresOldPair(t *testing.T) {
	const workers = 2
	fs := NewMemFS()
	st, err := Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	live, _ := newTestState(t, workers)
	if err := st.Begin(live, nil); err != nil {
		t.Fatal(err)
	}
	if fs.Size("ckpt/snap-00000000") < 0 || fs.Size("ckpt/wal-00000000") < 0 {
		t.Fatal("Begin did not publish pair 0")
	}
	if err := st.Checkpoint(live, nil); err != nil {
		t.Fatal(err)
	}
	if fs.Size("ckpt/snap-00000000") >= 0 || fs.Size("ckpt/wal-00000000") >= 0 {
		t.Fatal("checkpoint left the retired pair 0 behind")
	}
	if fs.Size("ckpt/snap-00000001") < 0 || fs.Size("ckpt/wal-00000001") < 0 {
		t.Fatal("checkpoint did not publish pair 1")
	}
}

// TestBeginRefusesExistingState: a directory with checkpoints demands an
// explicit Recover (or cleanup), never a silent overwrite.
func TestBeginRefusesExistingState(t *testing.T) {
	const workers = 2
	fs := NewMemFS()
	st, err := Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	live, _ := newTestState(t, workers)
	if err := st.Begin(live, nil); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if !st2.HasState() {
		t.Fatal("reopened store does not see the checkpoint")
	}
	other, _ := newTestState(t, workers)
	if err := st2.Begin(other, nil); err == nil {
		t.Fatal("Begin overwrote an existing checkpoint")
	}
}

// TestRecoverIgnoresInvalidNewerSnapshot: recovery must fall back past a
// corrupt higher-sequence snapshot file to the newest valid pair.
func TestRecoverIgnoresInvalidNewerSnapshot(t *testing.T) {
	const workers = 3
	pol, part := testShape(t, workers)
	ops := genOps(t, 5, 30, workers)
	fs := NewMemFS()
	st, err := Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	live, _ := newTestState(t, workers)
	if err := st.Begin(live, nil); err != nil {
		t.Fatal(err)
	}
	for _, o := range ops {
		o.apply(live)
	}
	// A garbage file squatting on a newer sequence (external corruption —
	// the store itself never publishes a torn snapshot).
	f, err := fs.Create("ckpt/snap-00000009")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}
	rec, _, err := st.Recover(pol, part, workers, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffStates(rec, refState(t, workers, ops, len(ops)), part); d != "" {
		t.Fatalf("recovered state differs: %s", d)
	}
}

// TestJournalGenerationGuard: a journal handle captured before a crash (a
// ghost handler of the dead server) must not contaminate the recovered
// incarnation's WAL.
func TestJournalGenerationGuard(t *testing.T) {
	const workers = 2
	pol, part := testShape(t, workers)
	ops := genOps(t, 7, 10, workers)
	fs := NewMemFS()
	st, err := Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	live, _ := newTestState(t, workers)
	if err := st.Begin(live, nil); err != nil {
		t.Fatal(err)
	}
	for _, o := range ops {
		o.apply(live)
	}
	st.Crash()
	rec, _, err := st.Recover(pol, part, workers, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	walName := fmt.Sprintf("ckpt/wal-%08d", 1) // anchor pair after recovery
	before := fs.Size(walName)
	if before < 0 {
		t.Fatalf("anchor WAL missing; files: %v", fsNames(t, fs))
	}
	// The ghost: the pre-crash state still holds the old-generation handle.
	// A drain always journals, so only the generation guard can drop it.
	live.DrainUnit(0, 0)
	if got := fs.Size(walName); got != before {
		t.Fatalf("ghost journal append reached the new WAL (%d -> %d bytes)", before, got)
	}
	// The recovered incarnation's appends do land.
	rec.DrainUnit(0, 0)
	if got := fs.Size(walName); got <= before {
		t.Fatal("recovered state's journal append was dropped")
	}
}

func fsNames(t *testing.T, fs *MemFS) []string {
	t.Helper()
	names, err := fs.List("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestStoreProbeCountersAndPairing wires a registry-backed probe plus a
// JSONL tracer through the full lifecycle and checks both the counters
// and the aggregate-level pairing invariants (every CheckpointBegin
// closed, recovery counted).
func TestStoreProbeCountersAndPairing(t *testing.T) {
	const workers = 3
	pol, part := testShape(t, workers)
	ops := genOps(t, 3, 40, workers)
	var trace bytes.Buffer
	tracer := obs.NewJSONLTracer(&trace)
	reg := obs.NewRegistry()
	probe := obs.NewProbe(tracer, reg, nil)

	fs := NewMemFS()
	st, err := Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	st.Probe = probe
	live, _ := newTestState(t, workers)
	if err := st.Begin(live, nil); err != nil {
		t.Fatal(err)
	}
	for _, o := range ops[:20] {
		o.apply(live)
	}
	if err := st.Checkpoint(live, nil); err != nil {
		t.Fatal(err)
	}
	for _, o := range ops[20:] {
		o.apply(live)
	}
	st.Crash()
	if _, _, err := st.Recover(pol, part, workers, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	// Begin + mid checkpoint + recovery anchor = 3 snapshots.
	if snap.Counters["checkpoints"] != 3 {
		t.Fatalf("checkpoints = %d, want 3", snap.Counters["checkpoints"])
	}
	if snap.Counters["wal_appends"] != int64(len(ops)) {
		t.Fatalf("wal_appends = %d, want %d (one per op)", snap.Counters["wal_appends"], len(ops))
	}
	if snap.Counters["recoveries"] != 1 {
		t.Fatalf("recoveries = %d, want 1", snap.Counters["recoveries"])
	}
	if snap.Counters["recovery_replayed_records"] != int64(len(ops)-20) {
		t.Fatalf("replayed records counter = %d, want %d",
			snap.Counters["recovery_replayed_records"], len(ops)-20)
	}

	sum, err := obs.Aggregate(strings.NewReader(trace.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.PairErrors) != 0 {
		t.Fatalf("pairing violations: %v", sum.PairErrors)
	}
	if sum.Checkpoints != 3 || sum.OpenCheckpoints != 0 {
		t.Fatalf("aggregate checkpoints = %d open %d, want 3/0", sum.Checkpoints, sum.OpenCheckpoints)
	}
	if sum.WALAppends != int64(len(ops)) || sum.Recoveries != 1 {
		t.Fatalf("aggregate wal=%d recoveries=%d", sum.WALAppends, sum.Recoveries)
	}
	if sum.ReplayedRecords != int64(len(ops)-20) {
		t.Fatalf("aggregate replayed = %d", sum.ReplayedRecords)
	}
}

// TestStickyErrorPoisonsStore: once an append fails, nothing later is
// journaled and Checkpoint refuses — a half-written log never masquerades
// as valid.
func TestStickyErrorPoisonsStore(t *testing.T) {
	const workers = 2
	ops := genOps(t, 9, 12, workers)
	inner := NewMemFS()
	ffs := NewFaultFS(inner)
	ffs.DropSyncAt = 4 // Begin costs 2 syncs (snapshot + WAL header)
	st, err := Open(ffs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	live, _ := newTestState(t, workers)
	if err := st.Begin(live, nil); err != nil {
		t.Fatal(err)
	}
	for _, o := range ops {
		o.apply(live)
	}
	if st.Err() == nil {
		t.Fatal("dropped sync did not poison the store")
	}
	if err := st.Checkpoint(live, nil); err == nil {
		t.Fatal("checkpoint on a poisoned store succeeded")
	}
}
