// Package durable is the crash-consistency layer of the parameter server:
// a write-ahead log of every state transition appended from engine.State
// (merges, drains, restores, membership changes, tracker observations) plus
// atomic full-state snapshots, with recovery = latest valid snapshot + WAL
// replay. A server process can die at any instant — mid-append, mid-sync,
// mid-checkpoint — and the next incarnation reconstructs exactly the state
// whose mutations reached stable storage, truncating any torn WAL tail.
//
// Everything on disk is a fixed-width little-endian binary format guarded
// by CRC32 (the same discipline roglint's wireframe pass enforces on the
// socket protocol), so a torn or bit-flipped file is detected, never
// misread. Snapshots are written to a temp file, synced, then renamed —
// the classic atomic-publish sequence — so a crash mid-checkpoint leaves
// the previous snapshot intact.
//
// The package is clock-free and allocation-conscious: appends reuse one
// encode buffer and the deterministic simnet drivers can journal through
// an in-memory filesystem (MemFS) whose Crash method models exactly what a
// power cut preserves — the synced prefix of every file.
package durable

import (
	"io"
	"os"
)

// File is the handle surface the store needs: sequential reads and writes,
// an explicit durability barrier, and close.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes written data to stable storage; data not synced (or
	// renamed into place) when the process dies is assumed lost.
	Sync() error
	Close() error
}

// FS abstracts the directory the store persists into, so the deterministic
// drivers run on MemFS, the crash-fault tests on FaultFS, and rogtrain on
// the real filesystem (OSFS).
type FS interface {
	MkdirAll(dir string) error
	// Create truncates/creates the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	Remove(name string) error
	// List returns the base names of the files in dir.
	List(dir string) ([]string, error)
}

// Crasher is implemented by filesystems that can simulate a process/power
// crash: all written-but-unsynced data vanishes. MemFS implements it; the
// real filesystem cannot (and a simulated server crash on OSFS simply
// keeps everything that was written — the kind crash).
type Crasher interface {
	Crash()
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// List implements FS.
func (OSFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}
