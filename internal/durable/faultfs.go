package durable

import (
	"errors"
	"fmt"
)

// ErrCrashed is returned by every FaultFS operation after its scheduled
// fault has fired: from the store's point of view the process is dead.
var ErrCrashed = errors.New("durable: simulated crash")

// FaultFS wraps an FS and kills the process at a scheduled I/O operation:
// the Nth write is torn after a prefix of its bytes, or the Nth sync is
// silently dropped. Either way every subsequent operation returns
// ErrCrashed — the faulted process cannot limp on, it can only be
// restarted against the inner filesystem (whose Crash, for a MemFS,
// then discards whatever was never synced).
//
// Counters are shared across all files, so a schedule addresses the
// store's global I/O sequence deterministically.
type FaultFS struct {
	inner FS

	// TearWriteAt tears the Nth write (1-based) across the filesystem:
	// only KeepBytes of its buffer reach the inner file, then the fault
	// fires. 0 disables.
	TearWriteAt int
	// KeepBytes is how much of the torn write survives.
	KeepBytes int
	// DropSyncAt drops the Nth sync (1-based): the fault fires instead of
	// the barrier, so everything since the last real sync is at the mercy
	// of the inner filesystem's crash model. 0 disables.
	DropSyncAt int

	writes int
	syncs  int
	dead   bool
}

// NewFaultFS wraps inner with an inert fault plan; set TearWriteAt or
// DropSyncAt to arm it.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner}
}

// PlanFromSeed arms a deterministic pseudo-random fault within the first
// maxOps operations: even seeds tear a write (keeping a seed-derived
// prefix), odd seeds drop a sync. The same seed always yields the same
// fault, so failures replay.
func (f *FaultFS) PlanFromSeed(seed uint64, maxOps int) {
	if maxOps < 1 {
		maxOps = 1
	}
	a := splitmix64(&seed)
	b := splitmix64(&seed)
	n := int(a%uint64(maxOps)) + 1
	if seed%2 == 0 {
		f.TearWriteAt = n
		f.KeepBytes = int(b % 64)
	} else {
		f.DropSyncAt = n
	}
}

// splitmix64 is the standard 64-bit mix; state advances in place.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Dead reports whether the scheduled fault has fired.
func (f *FaultFS) Dead() bool { return f.dead }

// Crash implements Crasher by delegating to the inner filesystem (so a
// FaultFS over a MemFS composes both crash models).
func (f *FaultFS) Crash() {
	f.dead = true
	if c, ok := f.inner.(Crasher); ok {
		c.Crash()
	}
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error {
	if f.dead {
		return ErrCrashed
	}
	return f.inner.MkdirAll(dir)
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if f.dead {
		return nil, ErrCrashed
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: inner}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if f.dead {
		return nil, ErrCrashed
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: inner}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if f.dead {
		return ErrCrashed
	}
	return f.inner.Rename(oldname, newname)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if f.dead {
		return ErrCrashed
	}
	return f.inner.Remove(name)
}

// List implements FS.
func (f *FaultFS) List(dir string) ([]string, error) {
	if f.dead {
		return nil, ErrCrashed
	}
	return f.inner.List(dir)
}

type faultHandle struct {
	fs    *FaultFS
	inner File
}

func (h *faultHandle) Read(p []byte) (int, error) {
	if h.fs.dead {
		return 0, ErrCrashed
	}
	return h.inner.Read(p)
}

func (h *faultHandle) Write(p []byte) (int, error) {
	if h.fs.dead {
		return 0, ErrCrashed
	}
	h.fs.writes++
	if h.fs.TearWriteAt > 0 && h.fs.writes == h.fs.TearWriteAt {
		keep := h.fs.KeepBytes
		if keep > len(p) {
			keep = len(p)
		}
		if keep > 0 {
			if _, err := h.inner.Write(p[:keep]); err != nil {
				h.fs.dead = true
				return 0, fmt.Errorf("durable: torn write also failed: %w", err)
			}
		}
		h.fs.dead = true
		return keep, ErrCrashed
	}
	return h.inner.Write(p)
}

func (h *faultHandle) Sync() error {
	if h.fs.dead {
		return ErrCrashed
	}
	h.fs.syncs++
	if h.fs.DropSyncAt > 0 && h.fs.syncs == h.fs.DropSyncAt {
		h.fs.dead = true
		return ErrCrashed
	}
	return h.inner.Sync()
}

func (h *faultHandle) Close() error {
	if h.fs.dead {
		return ErrCrashed
	}
	return h.inner.Close()
}
