package durable

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS with the crash semantics that matter for
// durability testing: every file tracks how many of its bytes have been
// synced, and Crash reverts each file to that synced prefix — written but
// unsynced data is lost, exactly as a power cut loses the page cache.
// Rename is atomic and durable (the rename itself survives the crash, but
// it publishes whatever of the source was synced).
//
// MemFS is safe for concurrent use: the livenet server journals from
// handler goroutines while a test thread snapshots or crashes it.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	data   []byte
	synced int // bytes guaranteed to survive a crash
}

// NewMemFS creates an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// Crash implements Crasher: every file loses its unsynced suffix.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.data = f.data[:f.synced]
	}
}

// Clone deep-copies the filesystem — the property tests fork one recorded
// history into many crash points.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for name, f := range m.files {
		c.files[name] = &memFile{data: append([]byte(nil), f.data...), synced: f.synced}
	}
	return c
}

// Truncate cuts the named file to n bytes (marking them synced) — the
// kill-at-every-offset tests carve arbitrary torn tails with it.
func (m *MemFS) Truncate(name string, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("durable: memfs truncate %q: no such file", name)
	}
	if n > len(f.data) {
		n = len(f.data)
	}
	f.data = f.data[:n]
	f.synced = n
	return nil
}

// Size reports the current length of the named file (-1 if absent).
func (m *MemFS) Size(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return -1
	}
	return len(f.data)
}

// MkdirAll implements FS (directories are implicit in the flat namespace).
func (m *MemFS) MkdirAll(dir string) error { return nil }

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, f: f}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("durable: memfs open %q: no such file", name)
	}
	return &memHandle{fs: m, f: f}, nil
}

// Rename implements FS: atomic and durable (the directory update is
// modeled as journaled by the filesystem).
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("durable: memfs rename %q: no such file", oldname)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("durable: memfs remove %q: no such file", name)
	}
	delete(m.files, name)
	return nil
}

// List implements FS.
func (m *MemFS) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := dir
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, strings.TrimPrefix(name, prefix))
		}
	}
	sort.Strings(names)
	return names, nil
}

// memHandle is one open descriptor: reads see everything written so far
// (the owning process's view), writes append, Sync advances the durable
// watermark.
type memHandle struct {
	fs  *MemFS
	f   *memFile
	off int
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.off >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error { return nil }
