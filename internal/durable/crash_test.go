package durable

import (
	"errors"
	"testing"
)

// TestRecoverAtEveryWALOffset is the kill-at-every-offset property test:
// the server is "killed" at every possible byte length of the live WAL —
// including mid-header and mid-record — and recovery from each truncation
// must rebuild exactly the state reached after the records that survived
// whole, with the torn tail discarded. Three invariants are asserted at
// every cut:
//
//  1. version monotonicity — every recovered row version lies between its
//     snapshot value and its final pre-kill value;
//  2. merge equivalence — the recovered state is bit-identical to a fresh
//     state replaying the same op prefix (shrink-to-attached averaging
//     reproduced exactly, including across detaches);
//  3. the RSP staleness bound — no active row leads the recovered minimum
//     by the threshold or more.
func TestRecoverAtEveryWALOffset(t *testing.T) {
	const (
		workers = 3
		preOps  = 30
	)
	pol, part := testShape(t, workers)
	ops := genOps(t, 0xD15A57E4, 75, workers)

	fs := NewMemFS()
	st, err := Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	live, _ := newTestState(t, workers)
	if err := st.Begin(live, nil); err != nil {
		t.Fatal(err)
	}
	for _, o := range ops[:preOps] {
		o.apply(live)
	}
	if err := st.Checkpoint(live, []byte("anchor")); err != nil {
		t.Fatal(err)
	}
	for _, o := range ops[preOps:] {
		o.apply(live)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	// Record boundaries inside the live WAL: bounds[k] is the body offset
	// after k records — exactly one record per op by construction.
	post := ops[preOps:]
	bounds := make([]int, len(post)+1)
	for i, o := range post {
		bounds[i+1] = bounds[i] + o.recLen()
	}
	const wal = "ckpt/wal-00000001"
	walSize := fs.Size(wal)
	if want := walHeaderSize + bounds[len(post)]; walSize != want {
		t.Fatalf("WAL is %d bytes, want %d — an op journaled more or less than one record", walSize, want)
	}

	snapState := refState(t, workers, ops, preOps)
	finalState := refState(t, workers, ops, len(ops))

	for cut := 0; cut <= walSize; cut++ {
		clone := fs.Clone()
		if err := clone.Truncate(wal, cut); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(clone, "ckpt")
		if err != nil {
			t.Fatal(err)
		}
		rec, info, err := st2.Recover(pol, part, workers, 1.0)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		// How many records survived whole below the cut.
		k := 0
		for k < len(post) && walHeaderSize+bounds[k+1] <= cut {
			k++
		}
		if info.ReplayedRecords != k {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, info.ReplayedRecords, k)
		}
		if d := diffStates(rec, refState(t, workers, ops, preOps+k), part); d != "" {
			t.Fatalf("cut %d (k=%d): recovered state diverges: %s", cut, k, d)
		}
		for w := 0; w < workers; w++ {
			for u := 0; u < part.NumUnits(); u++ {
				v := rec.Versions.Get(w, u)
				if lo, hi := snapState.Versions.Get(w, u), finalState.Versions.Get(w, u); v < lo || v > hi {
					t.Fatalf("cut %d: version[%d][%d]=%d outside [%d,%d]", cut, w, u, v, lo, hi)
				}
			}
		}
		if ahead := rec.Versions.MaxAhead(); ahead >= testThreshold {
			t.Fatalf("cut %d: recovered staleness spread %d breaches RSP bound %d", cut, ahead, testThreshold)
		}
		if string(info.Payload) != "anchor" {
			t.Fatalf("cut %d: payload = %q", cut, info.Payload)
		}
	}
}

// TestCrashFaultSweep schedules a deterministic fault at every write and
// every sync of a journaled run (tearing the Nth write after a seed-vared
// prefix, or dropping the Nth sync), lets the run hit it, then recovers
// from what the simulated power cut left behind. The recovered state must
// equal some prefix of the applied ops, never breach version monotonicity,
// and never exceed the RSP staleness bound.
func TestCrashFaultSweep(t *testing.T) {
	const workers = 3
	pol, part := testShape(t, workers)
	ops := genOps(t, 0xFA17, 50, workers)

	run := func(t *testing.T, arm func(*FaultFS)) {
		inner := NewMemFS()
		ffs := NewFaultFS(inner)
		arm(ffs)
		st, err := Open(ffs, "ckpt")
		if err != nil {
			t.Fatal(err)
		}
		live, _ := newTestState(t, workers)
		if err := st.Begin(live, nil); err != nil {
			// The fault fired inside Begin. Either it hit before the
			// snapshot rename (nothing durable exists — recovery must say
			// so rather than fabricate) or after it (the snapshot is
			// published; recovery must return exactly the initial state).
			if !errors.Is(err, ErrCrashed) {
				t.Fatal(err)
			}
			st.Crash()
			after, err := Open(inner, "ckpt")
			if err != nil {
				t.Fatal(err)
			}
			rec, info, err := after.Recover(pol, part, workers, 1.0)
			if err != nil {
				return
			}
			if info.ReplayedRecords != 0 {
				t.Fatalf("interrupted Begin replayed %d records", info.ReplayedRecords)
			}
			if d := diffStates(rec, refState(t, workers, ops, 0), part); d != "" {
				t.Fatalf("interrupted Begin recovered a non-initial state: %s", d)
			}
			return
		}
		applied := 0
		for i, o := range ops {
			o.apply(live)
			applied = i + 1
			if i == 20 {
				// Mid-run checkpoint so the fault can land inside rotation.
				if st.Checkpoint(live, nil) != nil {
					break
				}
			}
			if st.Err() != nil {
				break
			}
		}
		st.Crash() // power cut: unsynced bytes are gone

		after, err := Open(inner, "ckpt")
		if err != nil {
			t.Fatal(err)
		}
		rec, info, err := after.Recover(pol, part, workers, 1.0)
		if err != nil {
			t.Fatalf("recovery failed after fault (applied %d ops): %v", applied, err)
		}
		match := -1
		for m := 0; m <= applied; m++ {
			if diffStates(rec, refState(t, workers, ops, m), part) == "" {
				match = m
				break
			}
		}
		if match < 0 {
			t.Fatalf("recovered state (epoch %d, %d replayed) matches no op prefix of %d applied",
				info.Epoch, info.ReplayedRecords, applied)
		}
		final := refState(t, workers, ops, applied)
		for w := 0; w < workers; w++ {
			for u := 0; u < part.NumUnits(); u++ {
				if rec.Versions.Get(w, u) > final.Versions.Get(w, u) {
					t.Fatalf("version[%d][%d] recovered ahead of what was ever applied", w, u)
				}
			}
		}
		if ahead := rec.Versions.MaxAhead(); ahead >= testThreshold {
			t.Fatalf("recovered staleness spread %d breaches RSP bound %d", ahead, testThreshold)
		}
	}

	// Ops journal ~50 writes plus checkpoint traffic; sweep past the end so
	// "fault never fires" is covered too.
	for n := 1; n <= 60; n += 1 {
		t.Run("", func(t *testing.T) {
			run(t, func(f *FaultFS) { f.TearWriteAt = n; f.KeepBytes = n % 37 })
		})
		t.Run("", func(t *testing.T) {
			run(t, func(f *FaultFS) { f.DropSyncAt = n })
		})
	}
}

// TestPlanFromSeedDeterminism: the same seed always arms the same fault,
// and distinct seeds cover both fault flavors.
func TestPlanFromSeedDeterminism(t *testing.T) {
	sawTear, sawDrop := false, false
	for seed := uint64(1); seed <= 64; seed++ {
		a, b := NewFaultFS(NewMemFS()), NewFaultFS(NewMemFS())
		a.PlanFromSeed(seed, 40)
		b.PlanFromSeed(seed, 40)
		if a.TearWriteAt != b.TearWriteAt || a.KeepBytes != b.KeepBytes || a.DropSyncAt != b.DropSyncAt {
			t.Fatalf("seed %d: plans diverge: %+v vs %+v", seed, a, b)
		}
		if a.TearWriteAt > 0 {
			sawTear = true
			if a.TearWriteAt > 40 {
				t.Fatalf("seed %d: tear slot %d beyond maxOps", seed, a.TearWriteAt)
			}
		}
		if a.DropSyncAt > 0 {
			sawDrop = true
			if a.DropSyncAt > 40 {
				t.Fatalf("seed %d: drop slot %d beyond maxOps", seed, a.DropSyncAt)
			}
		}
	}
	if !sawTear || !sawDrop {
		t.Fatalf("seed sweep covered tear=%v drop=%v, want both", sawTear, sawDrop)
	}
}

// TestSeededFaultRecovery drives the sweep through PlanFromSeed itself —
// the deterministic seed-addressed interface callers use.
func TestSeededFaultRecovery(t *testing.T) {
	const workers = 3
	pol, part := testShape(t, workers)
	ops := genOps(t, 0x5EED, 40, workers)
	for seed := uint64(1); seed <= 24; seed++ {
		inner := NewMemFS()
		ffs := NewFaultFS(inner)
		ffs.PlanFromSeed(seed, 45)
		st, err := Open(ffs, "ckpt")
		if err != nil {
			t.Fatal(err)
		}
		live, _ := newTestState(t, workers)
		if err := st.Begin(live, nil); err != nil {
			continue // fault inside the initial snapshot; covered above
		}
		applied := 0
		for i, o := range ops {
			o.apply(live)
			applied = i + 1
			if st.Err() != nil {
				break
			}
		}
		st.Crash()
		after, err := Open(inner, "ckpt")
		if err != nil {
			t.Fatal(err)
		}
		rec, _, err := after.Recover(pol, part, workers, 1.0)
		if err != nil {
			t.Fatalf("seed %d: recovery failed: %v", seed, err)
		}
		match := false
		for m := 0; m <= applied; m++ {
			if diffStates(rec, refState(t, workers, ops, m), part) == "" {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("seed %d: recovered state matches no applied prefix", seed)
		}
	}
}
