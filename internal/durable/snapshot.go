package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"rog/internal/engine"
	"rog/internal/metrics"
)

// Snapshot file layout (all little-endian, CRC32-IEEE over everything
// before the trailing checksum):
//
//	magic "ROGS", version u32, epoch u64, seq u64,
//	workers u32, units u32, min i64,
//	active[workers] u8,
//	churn  (disconnects, reconnects, rowsResynced, duplicatesDropped i64; detachStall f64),
//	loss   (rowsLostFolded, rowsRetransmitted i64; retransmitBytes f64),
//	reports[workers] f64, rowIter[units] i64, versions[workers*units] i64,
//	unitLens[units] u32, acc[w][u] f32 runs,
//	payloadLen u32, payload bytes, crc u32
//
// The payload section is opaque to the store: rogtrain parks the worker
// models and iteration counters there so -resume can restart the whole
// process, not just the server.
const (
	snapMagic   = "ROGS"
	snapVersion = 1
)

// snapshot is the decoded form.
type snapshot struct {
	epoch, seq     uint64
	workers, units int
	min            int64
	active         []bool
	churn          metrics.ChurnStats
	loss           metrics.LossStats
	reports        []float64
	rowIter        []int64
	versions       [][]int64
	unitLens       []int
	acc            [][][]float32
	payload        []byte
}

// encodeSnapshot serializes the durable projection of state.
func encodeSnapshot(s *engine.State, epoch, seq uint64, payload []byte) []byte {
	vs := s.Versions
	workers, units := vs.Workers(), vs.Units()
	b := make([]byte, 0, 1024)
	b = append(b, snapMagic...)
	b = binary.LittleEndian.AppendUint32(b, snapVersion)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint32(b, uint32(workers))
	b = binary.LittleEndian.AppendUint32(b, uint32(units))
	b = binary.LittleEndian.AppendUint64(b, uint64(vs.Min()))
	for w := 0; w < workers; w++ {
		if vs.IsActive(w) {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	churn := s.ChurnLocked()
	b = binary.LittleEndian.AppendUint64(b, uint64(churn.Disconnects))
	b = binary.LittleEndian.AppendUint64(b, uint64(churn.Reconnects))
	b = binary.LittleEndian.AppendUint64(b, uint64(churn.RowsResynced))
	b = binary.LittleEndian.AppendUint64(b, uint64(churn.DuplicatesDropped))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(churn.DetachStall))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Loss.RowsLostFolded))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Loss.RowsRetransmitted))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Loss.RetransmitBytes))
	for w := 0; w < workers; w++ {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Tracker.Report(w)))
	}
	for u := 0; u < units; u++ {
		b = binary.LittleEndian.AppendUint64(b, uint64(s.RowIter[u]))
	}
	for w := 0; w < workers; w++ {
		for u := 0; u < units; u++ {
			b = binary.LittleEndian.AppendUint64(b, uint64(vs.Get(w, u)))
		}
	}
	for u := 0; u < units; u++ {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Acc[0].Unit(u))))
	}
	for w := 0; w < workers; w++ {
		for u := 0; u < units; u++ {
			for _, v := range s.Acc[w].Unit(u) {
				b = binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
			}
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// snapReader is a bounds-checked cursor over snapshot bytes.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.err = fmt.Errorf("durable: snapshot truncated at offset %d (want %d more bytes)", r.off, n)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *snapReader) i64() int64   { return int64(r.u64()) }
func (r *snapReader) f64() float64 { return math.Float64frombits(r.u64()) }

// decodeSnapshot parses and CRC-validates a snapshot file. Every count is
// validated against the remaining input before allocation, so corrupt
// input cannot demand more memory than its own length.
func decodeSnapshot(data []byte) (*snapshot, error) {
	if len(data) < 4+4+8+8+4+4+8+4 {
		return nil, fmt.Errorf("durable: snapshot too short (%d bytes)", len(data))
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("durable: snapshot CRC mismatch")
	}
	r := &snapReader{b: body}
	if string(r.take(4)) != snapMagic {
		return nil, fmt.Errorf("durable: bad snapshot magic")
	}
	if v := r.u32(); v != snapVersion {
		return nil, fmt.Errorf("durable: unsupported snapshot version %d", v)
	}
	s := &snapshot{}
	s.epoch = r.u64()
	s.seq = r.u64()
	s.workers = int(r.u32())
	s.units = int(r.u32())
	s.min = r.i64()
	// The fixed-width sections alone need this many bytes; a liar header
	// fails here before any allocation.
	need := s.workers + 5*8 + 3*8 + 8*s.workers + 8*s.units + 8*s.workers*s.units + 4*s.units
	if s.workers < 0 || s.units < 0 || len(body)-r.off < need {
		return nil, fmt.Errorf("durable: snapshot header claims %d workers × %d units beyond its size",
			s.workers, s.units)
	}
	s.active = make([]bool, s.workers)
	for w := range s.active {
		s.active[w] = r.take(1)[0] != 0
	}
	s.churn.Disconnects = int(r.i64())
	s.churn.Reconnects = int(r.i64())
	s.churn.RowsResynced = int(r.i64())
	s.churn.DuplicatesDropped = int(r.i64())
	s.churn.DetachStall = r.f64()
	s.loss.RowsLostFolded = int(r.i64())
	s.loss.RowsRetransmitted = int(r.i64())
	s.loss.RetransmitBytes = r.f64()
	s.reports = make([]float64, s.workers)
	for w := range s.reports {
		s.reports[w] = r.f64()
	}
	s.rowIter = make([]int64, s.units)
	for u := range s.rowIter {
		s.rowIter[u] = r.i64()
	}
	s.versions = make([][]int64, s.workers)
	for w := range s.versions {
		s.versions[w] = make([]int64, s.units)
		for u := range s.versions[w] {
			s.versions[w][u] = r.i64()
		}
	}
	s.unitLens = make([]int, s.units)
	total := 0
	for u := range s.unitLens {
		s.unitLens[u] = int(r.u32())
		total += s.unitLens[u]
	}
	if r.err == nil && (total < 0 || len(body)-r.off < 4*s.workers*total) {
		return nil, fmt.Errorf("durable: snapshot unit lengths exceed its size")
	}
	s.acc = make([][][]float32, s.workers)
	for w := range s.acc {
		s.acc[w] = make([][]float32, s.units)
		for u := range s.acc[w] {
			raw := r.take(4 * s.unitLens[u])
			if raw == nil {
				break
			}
			vals := make([]float32, s.unitLens[u])
			for i := range vals {
				vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
			}
			s.acc[w][u] = vals
		}
	}
	plen := int(r.u32())
	s.payload = append([]byte(nil), r.take(plen)...)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("durable: %d trailing bytes after snapshot payload", len(body)-r.off)
	}
	return s, nil
}
