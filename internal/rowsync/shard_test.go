package rowsync

import "testing"

// TestShardMapBalancedContiguous checks the map's two structural
// invariants: shard ranges are contiguous, cover every unit exactly once,
// and differ in size by at most one unit.
func TestShardMapBalancedContiguous(t *testing.T) {
	for _, tc := range []struct{ units, shards int }{
		{1, 1}, {10, 1}, {10, 3}, {10, 10}, {7, 16}, {97, 8}, {256, 5},
	} {
		sm := NewShardMap(tc.units, tc.shards)
		want := tc.shards
		if want > tc.units {
			want = tc.units
		}
		if want < 1 {
			want = 1
		}
		if got := sm.NumShards(); got != want {
			t.Fatalf("units=%d shards=%d: NumShards=%d, want %d", tc.units, tc.shards, got, want)
		}
		next, minSz, maxSz := 0, tc.units, 0
		for s := 0; s < sm.NumShards(); s++ {
			lo, hi := sm.Range(s)
			if lo != next || hi <= lo {
				t.Fatalf("units=%d shards=%d: shard %d range [%d,%d) not contiguous after %d",
					tc.units, tc.shards, s, lo, hi, next)
			}
			if hi-lo < minSz {
				minSz = hi - lo
			}
			if hi-lo > maxSz {
				maxSz = hi - lo
			}
			next = hi
		}
		if next != tc.units {
			t.Fatalf("units=%d shards=%d: ranges end at %d", tc.units, tc.shards, next)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("units=%d shards=%d: imbalanced shard sizes [%d,%d]", tc.units, tc.shards, minSz, maxSz)
		}
	}
}

// TestShardMapShardOfMatchesRanges cross-checks the arithmetic ShardOf
// against a linear scan of the ranges for every unit.
func TestShardMapShardOfMatchesRanges(t *testing.T) {
	for _, tc := range []struct{ units, shards int }{
		{10, 3}, {97, 8}, {64, 64}, {1000, 7}, {5, 2},
	} {
		sm := NewShardMap(tc.units, tc.shards)
		for u := 0; u < tc.units; u++ {
			got := sm.ShardOf(u)
			lo, hi := sm.Range(got)
			if u < lo || u >= hi {
				t.Fatalf("units=%d shards=%d: ShardOf(%d)=%d but its range is [%d,%d)",
					tc.units, tc.shards, u, got, lo, hi)
			}
		}
	}
}

// TestShardMapEdgeCases pins the clamping rules: zero units, zero/negative
// shard counts and out-of-range lookups.
func TestShardMapEdgeCases(t *testing.T) {
	sm := NewShardMap(0, 4)
	if sm.NumShards() != 1 || sm.NumUnits() != 0 {
		t.Fatalf("empty map: %d shards over %d units, want 1 over 0", sm.NumShards(), sm.NumUnits())
	}
	if sm := NewShardMap(5, 0); sm.NumShards() != 1 {
		t.Fatalf("shards=0 not clamped to 1")
	}
	if sm := NewShardMap(5, -3); sm.NumShards() != 1 {
		t.Fatalf("negative shards not clamped to 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range ShardOf did not panic")
		}
	}()
	NewShardMap(5, 2).ShardOf(5)
}

// TestVersionStoreShardedMatchesUnsharded drives identical update
// sequences through a 1-shard and a many-shard store and checks every
// observable (per-row versions, global and per-shard minima, staleness)
// agrees — the rowsync half of the tentpole's parity guarantee.
func TestVersionStoreShardedMatchesUnsharded(t *testing.T) {
	const workers, units = 4, 13
	ref := NewVersionStore(workers, units)
	sm := NewShardMap(units, 5)
	vs := NewVersionStoreSharded(workers, units, sm)

	type ev struct {
		w, u int
		iter int64
	}
	var evs []ev
	seed := uint64(42)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	iters := make([][]int64, workers)
	for w := range iters {
		iters[w] = make([]int64, units)
	}
	for i := 0; i < 500; i++ {
		w, u := next(workers), next(units)
		iters[w][u]++
		evs = append(evs, ev{w, u, iters[w][u]})
	}
	for _, e := range evs {
		ref.Update(e.w, e.u, e.iter)
		vs.Update(e.w, e.u, e.iter)
		if ref.Min() != vs.Min() {
			t.Fatalf("after (%d,%d,%d): min %d (sharded) != %d (unsharded)",
				e.w, e.u, e.iter, vs.Min(), ref.Min())
		}
	}
	for w := 0; w < workers; w++ {
		for u := 0; u < units; u++ {
			if ref.Get(w, u) != vs.Get(w, u) {
				t.Fatalf("version (%d,%d): %d != %d", w, u, vs.Get(w, u), ref.Get(w, u))
			}
		}
	}
	// Per-shard minima fold to the global minimum.
	min := vs.MinShard(0)
	for s := 1; s < vs.NumShards(); s++ {
		if m := vs.MinShard(s); m < min {
			min = m
		}
	}
	if min != vs.Min() {
		t.Fatalf("folded shard minima %d != Min() %d", min, vs.Min())
	}

	// Detach/attach walk the same lattice on both stores.
	ref.Detach(2)
	vs.Detach(2)
	if ref.Min() != vs.Min() {
		t.Fatalf("post-detach min: %d != %d", vs.Min(), ref.Min())
	}
	ref.Attach(2)
	vs.Attach(2)
	if ref.Min() != vs.Min() {
		t.Fatalf("post-attach min: %d != %d", vs.Min(), ref.Min())
	}
	for u := 0; u < units; u++ {
		if ref.Get(2, u) != vs.Get(2, u) {
			t.Fatalf("re-baselined version (2,%d): %d != %d", u, vs.Get(2, u), ref.Get(2, u))
		}
	}
}

// TestGradStoreShardedBacklogTracksDirtyUnits checks the satellite fix:
// the sharded store's Backlog comes from the per-worker dirty sets and
// must equal the full-scan answer of the unsharded store.
func TestGradStoreShardedBacklogTracksDirtyUnits(t *testing.T) {
	p := NewPartition(testModel(), Rows)
	sm := NewShardMap(p.NumUnits(), 3)
	g := NewGradStoreSharded(p, sm)
	ref := NewGradStore(p)

	add := func(u int, v float32) {
		vals := make([]float32, p.Unit(u).Len)
		for i := range vals {
			vals[i] = v
		}
		g.AddUnit(u, vals, 1)
		ref.AddUnit(u, vals, 1)
	}
	add(0, 1)
	add(2, 2)
	add(0, 1)
	got, want := g.Backlog(), ref.Backlog()
	if len(got) != len(want) {
		t.Fatalf("backlog %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("backlog %v, want %v", got, want)
		}
	}
	// Draining a unit clears it from the dirty set.
	g.ZeroUnit(0)
	ref.ZeroUnit(0)
	got, want = g.Backlog(), ref.Backlog()
	if len(got) != 1 || len(want) != 1 || got[0] != 2 {
		t.Fatalf("after drain: backlog %v, want [2]", got)
	}
	// A unit whose mass cancels to zero drops out of the dirty backlog.
	vals := make([]float32, p.Unit(2).Len)
	for i := range vals {
		vals[i] = -2
	}
	g.AddUnit(2, vals, 1)
	if bl := g.Backlog(); len(bl) != 0 {
		t.Fatalf("cancelled unit still in backlog: %v", bl)
	}
}
