// Package rowsync provides the row-granulated bookkeeping underneath RSP
// (Row Stale Parallel): partitioning a model's parameters into
// synchronization units, per-unit accumulated gradients, and the per-row
// version storage whose two-level staleness predicate gives ROG the same
// convergence guarantee as SSP (paper Sec. IV-C).
package rowsync

import (
	"fmt"
	"sort"

	"rog/internal/compress"
	"rog/internal/tensor"
)

// Granularity selects how a model's parameters are broken into
// transmission/synchronization units (paper Sec. III-A). Rows is ROG's
// choice; Layers and Elements exist for the granularity ablation.
type Granularity int

const (
	// Rows makes each matrix row one unit — ROG's trade-off between index
	// overhead and scheduling flexibility.
	Rows Granularity = iota
	// Layers makes each parameter matrix one unit (model-ish granularity:
	// large units, tiny index).
	Layers
	// Elements makes every scalar one unit (maximal flexibility, index
	// volume comparable to the model itself).
	Elements
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case Layers:
		return "layers"
	case Elements:
		return "elements"
	default:
		return "rows"
	}
}

// Unit is one synchronization unit: a contiguous range of a parameter
// matrix's flat data.
type Unit struct {
	Param  int // index into the model's parameter list
	Offset int // start offset in the parameter's Data
	Len    int // number of scalars
}

// Partition is the unit decomposition of one model architecture. It is
// shared (read-only) by all workers and the server.
type Partition struct {
	Gran  Granularity
	units []Unit
}

// NewPartition decomposes params at the given granularity.
func NewPartition(params []*tensor.Matrix, g Granularity) *Partition {
	p := &Partition{Gran: g}
	for pi, m := range params {
		switch g {
		case Layers:
			p.units = append(p.units, Unit{Param: pi, Offset: 0, Len: len(m.Data)})
		case Elements:
			for off := range m.Data {
				p.units = append(p.units, Unit{Param: pi, Offset: off, Len: 1})
			}
		default: // Rows
			for r := 0; r < m.Rows; r++ {
				p.units = append(p.units, Unit{Param: pi, Offset: r * m.Cols, Len: m.Cols})
			}
		}
	}
	return p
}

// NumUnits returns the number of synchronization units.
func (p *Partition) NumUnits() int { return len(p.units) }

// Unit returns the descriptor of unit u.
func (p *Partition) Unit(u int) Unit { return p.units[u] }

// Slice returns a mutable view of unit u inside params (which must have the
// architecture the partition was built from).
func (p *Partition) Slice(params []*tensor.Matrix, u int) []float32 {
	un := p.units[u]
	return params[un.Param].Data[un.Offset : un.Offset+un.Len]
}

// Widths returns the length of every unit, in unit order (the shape the
// compression codec is initialized with).
func (p *Partition) Widths() []int {
	w := make([]int, len(p.units))
	for i, u := range p.units {
		w[i] = u.Len
	}
	return w
}

// WireSize returns the compressed on-wire size of unit u in bytes,
// including the per-unit index overhead the paper charges against finer
// granularity.
func (p *Partition) WireSize(u int) int {
	return compress.RowWireSize(p.units[u].Len)
}

// TotalWireSize returns the compressed size of the whole model plus all
// per-unit indexing overhead — what one full synchronization transmits.
func (p *Partition) TotalWireSize() int {
	total := 0
	for u := range p.units {
		total += p.WireSize(u)
	}
	return total
}

// IndexOverhead returns the bytes spent on per-unit headers for a full
// model transmission; Sec. III-A's management-cost argument made concrete.
func (p *Partition) IndexOverhead() int {
	total := 0
	for u := range p.units {
		total += p.WireSize(u) - (p.units[u].Len+7)/8
	}
	return total
}

// GradStore holds per-unit accumulated gradients for one model replica.
// Workers accumulate locally computed gradients in one (Algo. 1 line 3);
// the server keeps one per worker for averaged, not-yet-pulled gradients
// (the per-worker copies of Fig. 5).
//
// A sharded store (NewGradStoreSharded) additionally tracks which units
// hold unconsumed mass, one dirty set per shard so concurrent writers
// under different shard locks never share a map. That makes Backlog —
// the rejoin resync listing — proportional to the backlog size instead of
// an O(units) mean-abs scan. Worker-local stores skip the tracking: they
// Accumulate over the whole model every iteration, so a dirty set would
// always be full.
type GradStore struct {
	part  *Partition
	data  [][]float32
	sm    *ShardMap
	dirty []map[int]struct{} // per shard, units with possibly nonzero mass
}

// NewGradStore allocates a zeroed store for the partition with no dirty
// tracking.
func NewGradStore(p *Partition) *GradStore {
	g := &GradStore{part: p, data: make([][]float32, p.NumUnits())}
	for i := range g.data {
		g.data[i] = make([]float32, p.Unit(i).Len)
	}
	return g
}

// NewGradStoreSharded allocates a zeroed store whose dirty-unit tracking is
// split along sm's shard ranges. Each shard's set is guarded by whatever
// lock the caller uses for that shard's units.
func NewGradStoreSharded(p *Partition, sm *ShardMap) *GradStore {
	g := NewGradStore(p)
	if sm.NumUnits() != p.NumUnits() {
		panic(fmt.Sprintf("rowsync: shard map covers %d units, partition has %d", sm.NumUnits(), p.NumUnits()))
	}
	g.sm = sm
	g.dirty = make([]map[int]struct{}, sm.NumShards())
	for s := range g.dirty {
		g.dirty[s] = make(map[int]struct{})
	}
	return g
}

// Accumulate adds a gradient snapshot (matrices matching the partition's
// architecture) into the store.
func (g *GradStore) Accumulate(grads []*tensor.Matrix) {
	for u := range g.data {
		un := g.part.Unit(u)
		src := grads[un.Param].Data[un.Offset : un.Offset+un.Len]
		dst := g.data[u]
		for i, v := range src {
			dst[i] += v
		}
		if g.dirty != nil {
			g.dirty[g.sm.ShardOf(u)][u] = struct{}{}
		}
	}
}

// AddUnit adds vals into unit u, scaled by scale.
func (g *GradStore) AddUnit(u int, vals []float32, scale float32) {
	dst := g.data[u]
	if len(vals) != len(dst) {
		panic(fmt.Sprintf("rowsync: AddUnit %d width %d != %d", u, len(vals), len(dst)))
	}
	for i, v := range vals {
		dst[i] += v * scale
	}
	if g.dirty != nil {
		g.dirty[g.sm.ShardOf(u)][u] = struct{}{}
	}
}

// Unit returns the accumulated gradient of unit u (a live view).
func (g *GradStore) Unit(u int) []float32 { return g.data[u] }

// ZeroUnit clears unit u (after it has been transmitted, Algo. 1 line 10).
func (g *GradStore) ZeroUnit(u int) {
	for i := range g.data[u] {
		g.data[u][i] = 0
	}
	if g.dirty != nil {
		delete(g.dirty[g.sm.ShardOf(u)], u)
	}
}

// Backlog returns the units with nonzero accumulated mass, ascending. On a
// sharded store it walks the dirty sets (pruning entries whose mass
// cancelled back to zero) so the cost is proportional to the number of
// dirty units; an untracked store falls back to the full mean-abs scan.
// The caller must hold every shard lock of a sharded store.
func (g *GradStore) Backlog() []int {
	var units []int
	if g.dirty == nil {
		for u := 0; u < g.NumUnits(); u++ {
			if g.MeanAbs(u) != 0 {
				units = append(units, u)
			}
		}
		return units
	}
	for s := range g.dirty {
		for u := range g.dirty[s] {
			if g.MeanAbs(u) != 0 {
				units = append(units, u)
			} else {
				// Additions cancelled out exactly; the unit carries no
				// mass a rejoin would need.
				delete(g.dirty[s], u)
			}
		}
	}
	sort.Ints(units)
	return units
}

// MeanAbs returns the mean absolute accumulated gradient of unit u — the
// contribution term of the importance metric (Algo. 3).
func (g *GradStore) MeanAbs(u int) float64 {
	d := g.data[u]
	if len(d) == 0 {
		return 0
	}
	var s float64
	for _, v := range d {
		if v < 0 {
			s -= float64(v)
		} else {
			s += float64(v)
		}
	}
	return s / float64(len(d))
}

// NumUnits returns the number of units in the store.
func (g *GradStore) NumUnits() int { return len(g.data) }
