package rowsync

import (
	"fmt"
	"sync/atomic"
)

// VersionStore is the server's Version Storage (Fig. 5): for every worker r
// and unit i it records v[r][i], the latest training iteration of worker r
// whose gradients for unit i have reached the server. The two-level RSP
// staleness predicate is evaluated against the global minimum.
//
// Iterations are 1-based at the first push; 0 means "never pushed".
//
// Membership: a worker that drops out of the team is Detached — its rows
// stop participating in Min()/MaxAhead(), so RSP's wait predicate cannot
// deadlock on a ghost. A returning worker is Attached with its rows
// re-baselined at the surviving minimum, so a rejoin never drags Min()
// backwards nor inflates MaxAhead() past the staleness threshold.
//
// Sharding: the count index that backs the cached minimum is split by the
// ShardMap's contiguous unit ranges, one versionShard per range, so
// concurrent pushes to units in different shards never contend on shared
// bookkeeping. The store itself holds no locks — the caller (engine.State)
// guards each shard's counts and the matrix columns it owns with that
// shard's lock, and membership ops with all locks. The per-shard cached
// minima are atomics, so Min() is computed lock-free as the minimum over
// shard caches.
type VersionStore struct {
	v      [][]int64
	sm     *ShardMap
	shards []versionShard
	active []bool
	actN   int
}

// versionShard is the count index of one contiguous unit range. counts and
// the matrix columns in the range are guarded by the owning caller's shard
// lock; min is atomic so cross-shard readers need no lock.
type versionShard struct {
	counts map[int64]int
	min    atomic.Int64 // cached minimum over active workers' entries in range
}

// NewVersionStore creates unsharded storage for workers × units, all at
// version 0 and all workers attached.
func NewVersionStore(workers, units int) *VersionStore {
	return NewVersionStoreSharded(workers, units, NewShardMap(units, 1))
}

// NewVersionStoreSharded creates storage whose count index is split along
// sm's unit ranges. sm must cover exactly units units.
func NewVersionStoreSharded(workers, units int, sm *ShardMap) *VersionStore {
	if sm.NumUnits() != units {
		panic(fmt.Sprintf("rowsync: shard map covers %d units, store has %d", sm.NumUnits(), units))
	}
	vs := &VersionStore{
		v:      make([][]int64, workers),
		sm:     sm,
		shards: make([]versionShard, sm.NumShards()),
		active: make([]bool, workers),
		actN:   workers,
	}
	for r := range vs.v {
		vs.v[r] = make([]int64, units)
		vs.active[r] = true
	}
	for s := range vs.shards {
		lo, hi := sm.Range(s)
		vs.shards[s].counts = map[int64]int{0: workers * (hi - lo)}
	}
	return vs
}

// RestoreVersionStore rebuilds an unsharded VersionStore from checkpointed
// state. See RestoreVersionStoreSharded.
func RestoreVersionStore(v [][]int64, active []bool, frozenMin int64) *VersionStore {
	units := 0
	if len(v) > 0 {
		units = len(v[0])
	}
	return RestoreVersionStoreSharded(v, active, frozenMin, NewShardMap(units, 1))
}

// RestoreVersionStoreSharded rebuilds a VersionStore from checkpointed
// state: the version matrix and membership flags are adopted as-is and the
// count index is reconstructed per shard from the active workers' entries.
// frozenMin is the cached minimum the checkpoint recorded — it only
// matters when every worker was detached (the counts maps are empty and no
// minimum can be derived; emptiness is global, so the frozen value is
// valid for every shard), exactly the case Min() documents as "the last
// computed minimum". The slices are retained, not copied.
func RestoreVersionStoreSharded(v [][]int64, active []bool, frozenMin int64, sm *ShardMap) *VersionStore {
	vs := &VersionStore{
		v:      v,
		sm:     sm,
		shards: make([]versionShard, sm.NumShards()),
		active: active,
	}
	for s := range vs.shards {
		vs.shards[s].counts = make(map[int64]int)
	}
	for r := range v {
		if !active[r] {
			continue
		}
		vs.actN++
		for u, ver := range v[r] {
			vs.shards[sm.ShardOf(u)].counts[ver]++
		}
	}
	for s := range vs.shards {
		vs.shards[s].min.Store(frozenMin)
		vs.recomputeShardMin(s)
	}
	return vs
}

// recomputeShardMin rescans shard s's count index for its true minimum.
// With no tracked entries the cached value is left frozen.
func (vs *VersionStore) recomputeShardMin(s int) {
	sh := &vs.shards[s]
	first := true
	min := sh.min.Load()
	for ver := range sh.counts {
		if first || ver < min {
			min = ver
			first = false
		}
	}
	sh.min.Store(min)
}

// NumShards returns the number of count-index shards.
func (vs *VersionStore) NumShards() int { return len(vs.shards) }

// ShardMap returns the unit→shard assignment the store was built with.
func (vs *VersionStore) ShardMap() *ShardMap { return vs.sm }

// Get returns v[worker][unit].
func (vs *VersionStore) Get(worker, unit int) int64 { return vs.v[worker][unit] }

// Update sets v[worker][unit] = iter. Versions must not decrease. Updates
// for detached workers are recorded (a late in-flight push still lands) but
// do not touch the active minimum. The caller must hold the lock of the
// unit's shard.
func (vs *VersionStore) Update(worker, unit int, iter int64) {
	old := vs.v[worker][unit]
	if iter < old {
		panic(fmt.Sprintf("rowsync: version of worker %d unit %d decreased %d -> %d", worker, unit, old, iter))
	}
	if iter == old {
		return
	}
	vs.v[worker][unit] = iter
	if !vs.active[worker] {
		return
	}
	sh := &vs.shards[vs.sm.ShardOf(unit)]
	// Register the new version before retiring the old one, so the
	// min-advance scan below always has a populated version to stop at
	// (with a single tracked entry the map would otherwise be empty and
	// the scan would never terminate).
	sh.counts[iter]++
	sh.retire(old)
}

// retire decrements the tracked count of version old and advances the
// shard's cached minimum when old was the last entry pinning it.
func (sh *versionShard) retire(old int64) {
	sh.counts[old]--
	if sh.counts[old] == 0 {
		delete(sh.counts, old)
		if old == sh.min.Load() && len(sh.counts) > 0 {
			// Advance the cached minimum to the next populated version.
			min := old
			for sh.counts[min] == 0 {
				min++
			}
			sh.min.Store(min)
		}
	}
}

// Detach removes a departed worker from membership: its rows no longer hold
// back Min(), so RSP's wait predicate unblocks the survivors. Detaching an
// already-detached worker is a no-op. The caller must hold every shard
// lock.
func (vs *VersionStore) Detach(worker int) {
	if !vs.active[worker] {
		return
	}
	vs.active[worker] = false
	vs.actN--
	for u, v := range vs.v[worker] {
		vs.shards[vs.sm.ShardOf(u)].retire(v)
	}
}

// Attach re-admits a worker, re-baselining every row below the surviving
// minimum at that minimum (the rejoin resync: the returning robot receives
// the rows it missed, so its versions start level with the slowest
// survivor). Rows that already lead the minimum — pushed before the drop or
// landed while detached — keep their higher version. It returns the
// baseline used. Attaching an attached worker is a no-op. The caller must
// hold every shard lock.
func (vs *VersionStore) Attach(worker int) int64 {
	if vs.active[worker] {
		return vs.Min()
	}
	base := vs.Min()
	vs.active[worker] = true
	vs.actN++
	for u, v := range vs.v[worker] {
		if v < base {
			v = base
			vs.v[worker][u] = base
		}
		vs.shards[vs.sm.ShardOf(u)].counts[v]++
	}
	// The re-baselined rows are ≥ the global minimum but may trail a
	// shard's local minimum, and with zero active workers the caches were
	// frozen — recompute each shard from its rebuilt index.
	for s := range vs.shards {
		vs.recomputeShardMin(s)
	}
	return base
}

// IsActive reports whether the worker is currently attached.
func (vs *VersionStore) IsActive(worker int) bool { return vs.active[worker] }

// ActiveWorkers returns the number of currently attached workers.
func (vs *VersionStore) ActiveWorkers() int { return vs.actN }

// Min returns min(V): the oldest version of any unit on any *attached*
// worker, computed lock-free as the minimum over the shards' cached
// minima. With every worker detached it returns the last computed minimum.
func (vs *VersionStore) Min() int64 {
	min := vs.shards[0].min.Load()
	for s := 1; s < len(vs.shards); s++ {
		if m := vs.shards[s].min.Load(); m < min {
			min = m
		}
	}
	return min
}

// MinShard returns shard s's cached minimum — the oldest version of any
// attached worker's entry inside the shard's unit range.
func (vs *VersionStore) MinShard(s int) int64 { return vs.shards[s].min.Load() }

// Stale reports whether worker r's unit i is too far *ahead* of the
// global minimum for threshold t — the condition in Algo. 2 lines 8–9
// (v_i^r − min(V) ≥ t) under which non-stragglers must wait.
func (vs *VersionStore) Stale(worker, unit int, t int64) bool {
	return vs.v[worker][unit]-vs.Min() >= t
}

// MaxAhead returns the largest lead of any attached worker's entry over the
// global minimum — the divergence RSP bounds by the threshold. The caller
// must hold every shard lock.
func (vs *VersionStore) MaxAhead() int64 {
	var max int64
	min := vs.Min()
	for r := range vs.v {
		if !vs.active[r] {
			continue
		}
		for _, v := range vs.v[r] {
			if v-min > max {
				max = v - min
			}
		}
	}
	return max
}

// Workers returns the number of workers tracked (attached or not).
func (vs *VersionStore) Workers() int { return len(vs.v) }

// Units returns the number of units tracked.
func (vs *VersionStore) Units() int {
	if len(vs.v) == 0 {
		return 0
	}
	return len(vs.v[0])
}
