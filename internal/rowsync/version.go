package rowsync

import "fmt"

// VersionStore is the server's Version Storage (Fig. 5): for every worker r
// and unit i it records v[r][i], the latest training iteration of worker r
// whose gradients for unit i have reached the server. The two-level RSP
// staleness predicate is evaluated against the global minimum.
//
// Iterations are 1-based at the first push; 0 means "never pushed".
//
// Membership: a worker that drops out of the team is Detached — its rows
// stop participating in Min()/MaxAhead(), so RSP's wait predicate cannot
// deadlock on a ghost. A returning worker is Attached with its rows
// re-baselined at the surviving minimum, so a rejoin never drags Min()
// backwards nor inflates MaxAhead() past the staleness threshold.
type VersionStore struct {
	v      [][]int64
	min    int64 // cached minimum over active workers' entries
	counts map[int64]int
	active []bool
	actN   int
}

// NewVersionStore creates storage for workers × units, all at version 0 and
// all workers attached.
func NewVersionStore(workers, units int) *VersionStore {
	vs := &VersionStore{
		v:      make([][]int64, workers),
		counts: map[int64]int{0: workers * units},
		active: make([]bool, workers),
		actN:   workers,
	}
	for r := range vs.v {
		vs.v[r] = make([]int64, units)
		vs.active[r] = true
	}
	return vs
}

// RestoreVersionStore rebuilds a VersionStore from checkpointed state: the
// version matrix and membership flags are adopted as-is and the count
// index is reconstructed from the active workers' entries. frozenMin is
// the cached minimum the checkpoint recorded — it only matters when every
// worker was detached (the counts map is empty and the minimum cannot be
// derived), exactly the case Min() documents as "the last computed
// minimum". The slices are retained, not copied.
func RestoreVersionStore(v [][]int64, active []bool, frozenMin int64) *VersionStore {
	vs := &VersionStore{
		v:      v,
		counts: make(map[int64]int),
		active: active,
	}
	for r := range v {
		if !active[r] {
			continue
		}
		vs.actN++
		for _, ver := range v[r] {
			vs.counts[ver]++
		}
	}
	vs.min = frozenMin
	first := true
	for ver := range vs.counts {
		if first || ver < vs.min {
			vs.min = ver
			first = false
		}
	}
	return vs
}

// Get returns v[worker][unit].
func (vs *VersionStore) Get(worker, unit int) int64 { return vs.v[worker][unit] }

// Update sets v[worker][unit] = iter. Versions must not decrease. Updates
// for detached workers are recorded (a late in-flight push still lands) but
// do not touch the active minimum.
func (vs *VersionStore) Update(worker, unit int, iter int64) {
	old := vs.v[worker][unit]
	if iter < old {
		panic(fmt.Sprintf("rowsync: version of worker %d unit %d decreased %d -> %d", worker, unit, old, iter))
	}
	if iter == old {
		return
	}
	vs.v[worker][unit] = iter
	if !vs.active[worker] {
		return
	}
	// Register the new version before retiring the old one, so the
	// min-advance scan below always has a populated version to stop at
	// (with a single tracked entry the map would otherwise be empty and
	// the scan would never terminate).
	vs.counts[iter]++
	vs.retire(old)
}

// retire decrements the tracked count of version old and advances the
// cached minimum when old was the last entry pinning it.
func (vs *VersionStore) retire(old int64) {
	vs.counts[old]--
	if vs.counts[old] == 0 {
		delete(vs.counts, old)
		if old == vs.min && len(vs.counts) > 0 {
			// Advance the cached minimum to the next populated version.
			for vs.counts[vs.min] == 0 {
				vs.min++
			}
		}
	}
}

// Detach removes a departed worker from membership: its rows no longer hold
// back Min(), so RSP's wait predicate unblocks the survivors. Detaching an
// already-detached worker is a no-op.
func (vs *VersionStore) Detach(worker int) {
	if !vs.active[worker] {
		return
	}
	vs.active[worker] = false
	vs.actN--
	for _, v := range vs.v[worker] {
		vs.retire(v)
	}
}

// Attach re-admits a worker, re-baselining every row below the surviving
// minimum at that minimum (the rejoin resync: the returning robot receives
// the rows it missed, so its versions start level with the slowest
// survivor). Rows that already lead the minimum — pushed before the drop or
// landed while detached — keep their higher version. It returns the
// baseline used. Attaching an attached worker is a no-op.
func (vs *VersionStore) Attach(worker int) int64 {
	if vs.active[worker] {
		return vs.min
	}
	base := vs.min
	vs.active[worker] = true
	vs.actN++
	for u, v := range vs.v[worker] {
		if v < base {
			v = base
			vs.v[worker][u] = base
		}
		vs.counts[v]++
	}
	// With zero active workers the cached minimum was frozen; the attached
	// rows are all ≥ base, so the cache only ever needs to advance.
	for vs.counts[vs.min] == 0 {
		vs.min++
	}
	return base
}

// IsActive reports whether the worker is currently attached.
func (vs *VersionStore) IsActive(worker int) bool { return vs.active[worker] }

// ActiveWorkers returns the number of currently attached workers.
func (vs *VersionStore) ActiveWorkers() int { return vs.actN }

// Min returns min(V): the oldest version of any unit on any *attached*
// worker. With every worker detached it returns the last computed minimum.
func (vs *VersionStore) Min() int64 { return vs.min }

// Stale reports whether worker r's unit i is too far *ahead* of the
// global minimum for threshold t — the condition in Algo. 2 lines 8–9
// (v_i^r − min(V) ≥ t) under which non-stragglers must wait.
func (vs *VersionStore) Stale(worker, unit int, t int64) bool {
	return vs.v[worker][unit]-vs.min >= t
}

// MaxAhead returns the largest lead of any attached worker's entry over the
// global minimum — the divergence RSP bounds by the threshold.
func (vs *VersionStore) MaxAhead() int64 {
	var max int64
	for r := range vs.v {
		if !vs.active[r] {
			continue
		}
		for _, v := range vs.v[r] {
			if v-vs.min > max {
				max = v - vs.min
			}
		}
	}
	return max
}

// Workers returns the number of workers tracked (attached or not).
func (vs *VersionStore) Workers() int { return len(vs.v) }

// Units returns the number of units tracked.
func (vs *VersionStore) Units() int {
	if len(vs.v) == 0 {
		return 0
	}
	return len(vs.v[0])
}
