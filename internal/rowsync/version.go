package rowsync

import "fmt"

// VersionStore is the server's Version Storage (Fig. 5): for every worker r
// and unit i it records v[r][i], the latest training iteration of worker r
// whose gradients for unit i have reached the server. The two-level RSP
// staleness predicate is evaluated against the global minimum.
//
// Iterations are 1-based at the first push; 0 means "never pushed".
type VersionStore struct {
	v      [][]int64
	min    int64 // cached global minimum
	counts map[int64]int
}

// NewVersionStore creates storage for workers × units, all at version 0.
func NewVersionStore(workers, units int) *VersionStore {
	vs := &VersionStore{v: make([][]int64, workers), counts: map[int64]int{0: workers * units}}
	for r := range vs.v {
		vs.v[r] = make([]int64, units)
	}
	return vs
}

// Get returns v[worker][unit].
func (vs *VersionStore) Get(worker, unit int) int64 { return vs.v[worker][unit] }

// Update sets v[worker][unit] = iter. Versions must not decrease.
func (vs *VersionStore) Update(worker, unit int, iter int64) {
	old := vs.v[worker][unit]
	if iter < old {
		panic(fmt.Sprintf("rowsync: version of worker %d unit %d decreased %d -> %d", worker, unit, old, iter))
	}
	if iter == old {
		return
	}
	vs.v[worker][unit] = iter
	// Register the new version before retiring the old one, so the
	// min-advance scan below always has a populated version to stop at
	// (with a single tracked entry the map would otherwise be empty and
	// the scan would never terminate).
	vs.counts[iter]++
	vs.counts[old]--
	if vs.counts[old] == 0 {
		delete(vs.counts, old)
		if old == vs.min {
			// Advance the cached minimum to the next populated version.
			for vs.counts[vs.min] == 0 {
				vs.min++
			}
		}
	}
}

// Min returns min(V): the oldest version of any unit on any worker.
func (vs *VersionStore) Min() int64 { return vs.min }

// Stale reports whether worker r's unit i is too far *ahead* of the
// global minimum for threshold t — the condition in Algo. 2 lines 8–9
// (v_i^r − min(V) ≥ t) under which non-stragglers must wait.
func (vs *VersionStore) Stale(worker, unit int, t int64) bool {
	return vs.v[worker][unit]-vs.min >= t
}

// MaxAhead returns the largest lead of any entry over the global minimum —
// the divergence RSP bounds by the threshold.
func (vs *VersionStore) MaxAhead() int64 {
	var max int64
	for r := range vs.v {
		for _, v := range vs.v[r] {
			if v-vs.min > max {
				max = v - vs.min
			}
		}
	}
	return max
}

// Workers returns the number of workers tracked.
func (vs *VersionStore) Workers() int { return len(vs.v) }

// Units returns the number of units tracked.
func (vs *VersionStore) Units() int {
	if len(vs.v) == 0 {
		return 0
	}
	return len(vs.v[0])
}
