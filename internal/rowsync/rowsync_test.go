package rowsync

import (
	"testing"
	"testing/quick"

	"rog/internal/nn"
	"rog/internal/tensor"
)

func testModel() []*tensor.Matrix {
	r := tensor.NewRNG(1)
	m := nn.NewClassifierMLP(4, []int{6}, 3, r)
	return m.Params()
}

func TestPartitionRows(t *testing.T) {
	params := testModel() // W(4x6), B(1x6), W(6x3), B(1x3)
	p := NewPartition(params, Rows)
	if p.NumUnits() != 4+1+6+1 {
		t.Fatalf("NumUnits=%d", p.NumUnits())
	}
	// First unit is row 0 of W0: width 6.
	if u := p.Unit(0); u.Param != 0 || u.Offset != 0 || u.Len != 6 {
		t.Fatalf("unit0=%+v", u)
	}
	// Unit 4 is bias of layer 0.
	if u := p.Unit(4); u.Param != 1 || u.Len != 6 {
		t.Fatalf("unit4=%+v", u)
	}
}

func TestPartitionLayersAndElements(t *testing.T) {
	params := testModel()
	pl := NewPartition(params, Layers)
	if pl.NumUnits() != 4 {
		t.Fatalf("layer units=%d", pl.NumUnits())
	}
	if pl.Unit(0).Len != 24 {
		t.Fatalf("layer unit len=%d", pl.Unit(0).Len)
	}
	pe := NewPartition(params, Elements)
	want := 24 + 6 + 18 + 3
	if pe.NumUnits() != want {
		t.Fatalf("element units=%d want %d", pe.NumUnits(), want)
	}
	for u := 0; u < pe.NumUnits(); u++ {
		if pe.Unit(u).Len != 1 {
			t.Fatal("element unit wider than 1")
		}
	}
}

func TestPartitionCoversModelExactlyOnce(t *testing.T) {
	params := testModel()
	for _, g := range []Granularity{Rows, Layers, Elements} {
		p := NewPartition(params, g)
		covered := make(map[[2]int]int)
		total := 0
		for u := 0; u < p.NumUnits(); u++ {
			un := p.Unit(u)
			for i := 0; i < un.Len; i++ {
				covered[[2]int{un.Param, un.Offset + i}]++
				total++
			}
		}
		wantTotal := 0
		for _, m := range params {
			wantTotal += len(m.Data)
		}
		if total != wantTotal {
			t.Fatalf("%v: covered %d of %d scalars", g, total, wantTotal)
		}
		for k, c := range covered {
			if c != 1 {
				t.Fatalf("%v: scalar %v covered %d times", g, k, c)
			}
		}
	}
}

func TestSliceIsView(t *testing.T) {
	params := testModel()
	p := NewPartition(params, Rows)
	s := p.Slice(params, 0)
	s[0] = 42
	if params[0].Data[0] != 42 {
		t.Fatal("Slice is not a view")
	}
}

func TestWireSizeOrdering(t *testing.T) {
	params := testModel()
	rows := NewPartition(params, Rows)
	layers := NewPartition(params, Layers)
	elems := NewPartition(params, Elements)
	// Finer granularity → more index overhead (Sec. III-A).
	if !(elems.IndexOverhead() > rows.IndexOverhead() && rows.IndexOverhead() > layers.IndexOverhead()) {
		t.Fatalf("index overhead ordering: e=%d r=%d l=%d",
			elems.IndexOverhead(), rows.IndexOverhead(), layers.IndexOverhead())
	}
	if elems.TotalWireSize() <= rows.TotalWireSize() {
		t.Fatal("element granularity should cost more on the wire")
	}
	// Element-granularity total volume should be several times the raw
	// payload — the paper's "transmission volume doubled" argument.
	rawBits := 0
	for u := 0; u < elems.NumUnits(); u++ {
		rawBits += (elems.Unit(u).Len + 7) / 8
	}
	if elems.TotalWireSize() < 2*rawBits {
		t.Fatal("element overhead unexpectedly small")
	}
}

func TestGradStoreAccumulateAndZero(t *testing.T) {
	params := testModel()
	p := NewPartition(params, Rows)
	gs := NewGradStore(p)

	grads := make([]*tensor.Matrix, len(params))
	for i, m := range params {
		g := tensor.New(m.Rows, m.Cols)
		g.Fill(1)
		grads[i] = g
	}
	gs.Accumulate(grads)
	gs.Accumulate(grads)
	if gs.MeanAbs(0) != 2 {
		t.Fatalf("MeanAbs=%v want 2", gs.MeanAbs(0))
	}
	gs.ZeroUnit(0)
	if gs.MeanAbs(0) != 0 {
		t.Fatal("ZeroUnit failed")
	}
	if gs.MeanAbs(1) != 2 {
		t.Fatal("ZeroUnit cleared wrong unit")
	}
}

func TestGradStoreAddUnit(t *testing.T) {
	params := testModel()
	p := NewPartition(params, Rows)
	gs := NewGradStore(p)
	vals := make([]float32, p.Unit(0).Len)
	for i := range vals {
		vals[i] = 2
	}
	gs.AddUnit(0, vals, 0.5)
	if gs.Unit(0)[0] != 1 {
		t.Fatalf("AddUnit got %v", gs.Unit(0)[0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch should panic")
		}
	}()
	gs.AddUnit(0, []float32{1}, 1)
}

func TestVersionStoreMinTracking(t *testing.T) {
	vs := NewVersionStore(2, 3)
	if vs.Min() != 0 {
		t.Fatal("initial min should be 0")
	}
	// Advance all of worker 0 and two units of worker 1.
	for u := 0; u < 3; u++ {
		vs.Update(0, u, 5)
	}
	vs.Update(1, 0, 4)
	vs.Update(1, 1, 2)
	if vs.Min() != 0 { // worker1 unit2 still at 0
		t.Fatalf("min=%d", vs.Min())
	}
	vs.Update(1, 2, 1)
	if vs.Min() != 1 {
		t.Fatalf("min=%d want 1", vs.Min())
	}
	if vs.MaxAhead() != 4 {
		t.Fatalf("MaxAhead=%d", vs.MaxAhead())
	}
}

func TestVersionStoreStalePredicate(t *testing.T) {
	vs := NewVersionStore(2, 2)
	vs.Update(0, 0, 4)
	// min is 0; threshold 4: worker0/unit0 is 4 ahead → must wait.
	if !vs.Stale(0, 0, 4) {
		t.Fatal("should be stale at threshold 4")
	}
	if vs.Stale(0, 0, 5) {
		t.Fatal("should not be stale at threshold 5")
	}
	if vs.Stale(1, 0, 4) {
		t.Fatal("lagging worker should never be stale")
	}
}

func TestVersionStoreMonotonicPanics(t *testing.T) {
	vs := NewVersionStore(1, 1)
	vs.Update(0, 0, 3)
	vs.Update(0, 0, 3) // same value is a no-op
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on decreasing version")
		}
	}()
	vs.Update(0, 0, 2)
}

// Property: cached Min always equals a brute-force scan, under random
// monotone updates.
func TestVersionStoreMinMatchesBruteForce(t *testing.T) {
	f := func(ops []uint16) bool {
		vs := NewVersionStore(3, 4)
		for _, op := range ops {
			w := int(op) % 3
			u := int(op/3) % 4
			inc := int64(op/12)%5 + 1
			vs.Update(w, u, vs.Get(w, u)+inc)
		}
		var brute int64 = 1 << 62
		for w := 0; w < 3; w++ {
			for u := 0; u < 4; u++ {
				if v := vs.Get(w, u); v < brute {
					brute = v
				}
			}
		}
		return vs.Min() == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionStoreDetachAdvancesMin(t *testing.T) {
	vs := NewVersionStore(3, 2)
	for u := 0; u < 2; u++ {
		vs.Update(0, u, 6)
		vs.Update(1, u, 4)
	}
	// Worker 2 never pushed: it pins the minimum at 0.
	if vs.Min() != 0 {
		t.Fatalf("min=%d", vs.Min())
	}
	vs.Detach(2)
	if vs.Min() != 4 {
		t.Fatalf("min after detach=%d want 4", vs.Min())
	}
	if vs.ActiveWorkers() != 2 || vs.IsActive(2) {
		t.Fatal("membership bookkeeping wrong")
	}
	// MaxAhead now only measures the survivors' spread.
	if vs.MaxAhead() != 2 {
		t.Fatalf("MaxAhead=%d want 2", vs.MaxAhead())
	}
	// Detach is idempotent.
	vs.Detach(2)
	if vs.Min() != 4 || vs.ActiveWorkers() != 2 {
		t.Fatal("double detach changed state")
	}
}

func TestVersionStoreDetachedUpdateIgnoredByMin(t *testing.T) {
	vs := NewVersionStore(2, 1)
	vs.Update(0, 0, 3)
	vs.Detach(1)
	if vs.Min() != 3 {
		t.Fatalf("min=%d", vs.Min())
	}
	// A late in-flight push from the detached worker lands but cannot move
	// the active minimum.
	vs.Update(1, 0, 1)
	if vs.Min() != 3 || vs.Get(1, 0) != 1 {
		t.Fatalf("detached update leaked: min=%d v=%d", vs.Min(), vs.Get(1, 0))
	}
}

func TestVersionStoreAttachRebaselines(t *testing.T) {
	vs := NewVersionStore(3, 2)
	for u := 0; u < 2; u++ {
		vs.Update(0, u, 8)
		vs.Update(1, u, 8)
		vs.Update(2, u, 7)
	}
	vs.Detach(2)
	vs.Update(0, 0, 10)
	if vs.Min() != 8 {
		t.Fatalf("min=%d", vs.Min())
	}
	base := vs.Attach(2)
	if base != 8 {
		t.Fatalf("baseline=%d want 8", base)
	}
	// Rejoined rows were lifted to the baseline: Min is unchanged and the
	// rejoin did not inflate the divergence.
	if vs.Min() != 8 {
		t.Fatalf("min after attach=%d", vs.Min())
	}
	if vs.Get(2, 0) != 8 || vs.Get(2, 1) != 8 {
		t.Fatalf("rows not rebaselined: %d %d", vs.Get(2, 0), vs.Get(2, 1))
	}
	if vs.MaxAhead() != 2 {
		t.Fatalf("MaxAhead=%d want 2", vs.MaxAhead())
	}
}

// Property: Min never decreases across any interleaving of monotone
// updates, detaches and attaches, and always equals a brute-force scan of
// the active workers — churn cannot corrupt the cache RSP waits on.
func TestVersionStoreChurnMinMatchesBruteForce(t *testing.T) {
	const workers, units = 3, 4
	f := func(ops []uint16) bool {
		vs := NewVersionStore(workers, units)
		prevMin := vs.Min()
		for _, op := range ops {
			w := int(op) % workers
			switch (op / 7) % 5 {
			case 0:
				vs.Detach(w)
			case 1:
				vs.Attach(w)
			default:
				u := int(op/3) % units
				inc := int64(op/12)%5 + 1
				vs.Update(w, u, vs.Get(w, u)+inc)
			}
			if vs.ActiveWorkers() == 0 {
				continue // frozen minimum; brute force has nothing to scan
			}
			var brute int64 = 1 << 62
			for r := 0; r < workers; r++ {
				if !vs.IsActive(r) {
					continue
				}
				for u := 0; u < units; u++ {
					if v := vs.Get(r, u); v < brute {
						brute = v
					}
				}
			}
			if vs.Min() != brute {
				return false
			}
			if vs.Min() < prevMin {
				return false
			}
			prevMin = vs.Min()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: under the RSP gate, a crash/rejoin cycle never lifts MaxAhead
// past the threshold — Attach's re-baselining preserves the bound Thm. 1
// rests on.
func TestRSPBoundHoldsUnderChurn(t *testing.T) {
	const threshold = 4
	const workers, units = 3, 2
	f := func(ops []uint16) bool {
		vs := NewVersionStore(workers, units)
		next := [workers]int64{1, 1, 1}
		for _, op := range ops {
			w := int(op) % workers
			switch (op / 5) % 6 {
			case 0:
				vs.Detach(w)
				continue
			case 1:
				if !vs.IsActive(w) {
					base := vs.Attach(w)
					// The rejoined worker resumes at the team's pace.
					if next[w] <= base {
						next[w] = base + 1
					}
				}
				continue
			}
			if !vs.IsActive(w) {
				continue // crashed workers do not iterate
			}
			u := int(op/3) % units
			n := next[w]
			if n-vs.Min() >= threshold {
				continue // the RSP gate stalls this worker's iteration
			}
			if n > vs.Get(w, u) {
				vs.Update(w, u, n)
			}
			next[w]++
			if vs.MaxAhead() > threshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: RSP invariant — a worker only advances to iteration n when
// n − min(V) < threshold (the pull gate of Algo. 2), so the divergence
// MaxAhead never exceeds the threshold. This is the bound the convergence
// proof rests on.
func TestRSPBoundInvariant(t *testing.T) {
	const threshold = 4
	f := func(ops []uint16) bool {
		vs := NewVersionStore(3, 4)
		next := [3]int64{1, 1, 1}
		for _, op := range ops {
			w := int(op) % 3
			u := int(op/3) % 4
			n := next[w]
			if n-vs.Min() >= threshold {
				continue // the RSP gate stalls this worker's iteration
			}
			if n > vs.Get(w, u) {
				vs.Update(w, u, n)
			}
			next[w]++
			if vs.MaxAhead() > threshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
