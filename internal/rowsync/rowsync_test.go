package rowsync

import (
	"testing"
	"testing/quick"

	"rog/internal/nn"
	"rog/internal/tensor"
)

func testModel() []*tensor.Matrix {
	r := tensor.NewRNG(1)
	m := nn.NewClassifierMLP(4, []int{6}, 3, r)
	return m.Params()
}

func TestPartitionRows(t *testing.T) {
	params := testModel() // W(4x6), B(1x6), W(6x3), B(1x3)
	p := NewPartition(params, Rows)
	if p.NumUnits() != 4+1+6+1 {
		t.Fatalf("NumUnits=%d", p.NumUnits())
	}
	// First unit is row 0 of W0: width 6.
	if u := p.Unit(0); u.Param != 0 || u.Offset != 0 || u.Len != 6 {
		t.Fatalf("unit0=%+v", u)
	}
	// Unit 4 is bias of layer 0.
	if u := p.Unit(4); u.Param != 1 || u.Len != 6 {
		t.Fatalf("unit4=%+v", u)
	}
}

func TestPartitionLayersAndElements(t *testing.T) {
	params := testModel()
	pl := NewPartition(params, Layers)
	if pl.NumUnits() != 4 {
		t.Fatalf("layer units=%d", pl.NumUnits())
	}
	if pl.Unit(0).Len != 24 {
		t.Fatalf("layer unit len=%d", pl.Unit(0).Len)
	}
	pe := NewPartition(params, Elements)
	want := 24 + 6 + 18 + 3
	if pe.NumUnits() != want {
		t.Fatalf("element units=%d want %d", pe.NumUnits(), want)
	}
	for u := 0; u < pe.NumUnits(); u++ {
		if pe.Unit(u).Len != 1 {
			t.Fatal("element unit wider than 1")
		}
	}
}

func TestPartitionCoversModelExactlyOnce(t *testing.T) {
	params := testModel()
	for _, g := range []Granularity{Rows, Layers, Elements} {
		p := NewPartition(params, g)
		covered := make(map[[2]int]int)
		total := 0
		for u := 0; u < p.NumUnits(); u++ {
			un := p.Unit(u)
			for i := 0; i < un.Len; i++ {
				covered[[2]int{un.Param, un.Offset + i}]++
				total++
			}
		}
		wantTotal := 0
		for _, m := range params {
			wantTotal += len(m.Data)
		}
		if total != wantTotal {
			t.Fatalf("%v: covered %d of %d scalars", g, total, wantTotal)
		}
		for k, c := range covered {
			if c != 1 {
				t.Fatalf("%v: scalar %v covered %d times", g, k, c)
			}
		}
	}
}

func TestSliceIsView(t *testing.T) {
	params := testModel()
	p := NewPartition(params, Rows)
	s := p.Slice(params, 0)
	s[0] = 42
	if params[0].Data[0] != 42 {
		t.Fatal("Slice is not a view")
	}
}

func TestWireSizeOrdering(t *testing.T) {
	params := testModel()
	rows := NewPartition(params, Rows)
	layers := NewPartition(params, Layers)
	elems := NewPartition(params, Elements)
	// Finer granularity → more index overhead (Sec. III-A).
	if !(elems.IndexOverhead() > rows.IndexOverhead() && rows.IndexOverhead() > layers.IndexOverhead()) {
		t.Fatalf("index overhead ordering: e=%d r=%d l=%d",
			elems.IndexOverhead(), rows.IndexOverhead(), layers.IndexOverhead())
	}
	if elems.TotalWireSize() <= rows.TotalWireSize() {
		t.Fatal("element granularity should cost more on the wire")
	}
	// Element-granularity total volume should be several times the raw
	// payload — the paper's "transmission volume doubled" argument.
	rawBits := 0
	for u := 0; u < elems.NumUnits(); u++ {
		rawBits += (elems.Unit(u).Len + 7) / 8
	}
	if elems.TotalWireSize() < 2*rawBits {
		t.Fatal("element overhead unexpectedly small")
	}
}

func TestGradStoreAccumulateAndZero(t *testing.T) {
	params := testModel()
	p := NewPartition(params, Rows)
	gs := NewGradStore(p)

	grads := make([]*tensor.Matrix, len(params))
	for i, m := range params {
		g := tensor.New(m.Rows, m.Cols)
		g.Fill(1)
		grads[i] = g
	}
	gs.Accumulate(grads)
	gs.Accumulate(grads)
	if gs.MeanAbs(0) != 2 {
		t.Fatalf("MeanAbs=%v want 2", gs.MeanAbs(0))
	}
	gs.ZeroUnit(0)
	if gs.MeanAbs(0) != 0 {
		t.Fatal("ZeroUnit failed")
	}
	if gs.MeanAbs(1) != 2 {
		t.Fatal("ZeroUnit cleared wrong unit")
	}
}

func TestGradStoreAddUnit(t *testing.T) {
	params := testModel()
	p := NewPartition(params, Rows)
	gs := NewGradStore(p)
	vals := make([]float32, p.Unit(0).Len)
	for i := range vals {
		vals[i] = 2
	}
	gs.AddUnit(0, vals, 0.5)
	if gs.Unit(0)[0] != 1 {
		t.Fatalf("AddUnit got %v", gs.Unit(0)[0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch should panic")
		}
	}()
	gs.AddUnit(0, []float32{1}, 1)
}

func TestVersionStoreMinTracking(t *testing.T) {
	vs := NewVersionStore(2, 3)
	if vs.Min() != 0 {
		t.Fatal("initial min should be 0")
	}
	// Advance all of worker 0 and two units of worker 1.
	for u := 0; u < 3; u++ {
		vs.Update(0, u, 5)
	}
	vs.Update(1, 0, 4)
	vs.Update(1, 1, 2)
	if vs.Min() != 0 { // worker1 unit2 still at 0
		t.Fatalf("min=%d", vs.Min())
	}
	vs.Update(1, 2, 1)
	if vs.Min() != 1 {
		t.Fatalf("min=%d want 1", vs.Min())
	}
	if vs.MaxAhead() != 4 {
		t.Fatalf("MaxAhead=%d", vs.MaxAhead())
	}
}

func TestVersionStoreStalePredicate(t *testing.T) {
	vs := NewVersionStore(2, 2)
	vs.Update(0, 0, 4)
	// min is 0; threshold 4: worker0/unit0 is 4 ahead → must wait.
	if !vs.Stale(0, 0, 4) {
		t.Fatal("should be stale at threshold 4")
	}
	if vs.Stale(0, 0, 5) {
		t.Fatal("should not be stale at threshold 5")
	}
	if vs.Stale(1, 0, 4) {
		t.Fatal("lagging worker should never be stale")
	}
}

func TestVersionStoreMonotonicPanics(t *testing.T) {
	vs := NewVersionStore(1, 1)
	vs.Update(0, 0, 3)
	vs.Update(0, 0, 3) // same value is a no-op
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on decreasing version")
		}
	}()
	vs.Update(0, 0, 2)
}

// Property: cached Min always equals a brute-force scan, under random
// monotone updates.
func TestVersionStoreMinMatchesBruteForce(t *testing.T) {
	f := func(ops []uint16) bool {
		vs := NewVersionStore(3, 4)
		for _, op := range ops {
			w := int(op) % 3
			u := int(op/3) % 4
			inc := int64(op/12)%5 + 1
			vs.Update(w, u, vs.Get(w, u)+inc)
		}
		var brute int64 = 1 << 62
		for w := 0; w < 3; w++ {
			for u := 0; u < 4; u++ {
				if v := vs.Get(w, u); v < brute {
					brute = v
				}
			}
		}
		return vs.Min() == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RSP invariant — a worker only advances to iteration n when
// n − min(V) < threshold (the pull gate of Algo. 2), so the divergence
// MaxAhead never exceeds the threshold. This is the bound the convergence
// proof rests on.
func TestRSPBoundInvariant(t *testing.T) {
	const threshold = 4
	f := func(ops []uint16) bool {
		vs := NewVersionStore(3, 4)
		next := [3]int64{1, 1, 1}
		for _, op := range ops {
			w := int(op) % 3
			u := int(op/3) % 4
			n := next[w]
			if n-vs.Min() >= threshold {
				continue // the RSP gate stalls this worker's iteration
			}
			if n > vs.Get(w, u) {
				vs.Update(w, u, n)
			}
			next[w]++
			if vs.MaxAhead() > threshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
