package rowsync

import "fmt"

// ShardMap assigns each synchronization unit to one of K shards by
// contiguous unit range. Contiguity matters twice over: pushes walk units
// in ascending order, so a batched merge touches each shard's lock once
// per run of consecutive units, and a range is describable by two ints, so
// per-shard state never needs a unit→shard hash on the hot path.
//
// The ranges are balanced: shard s owns units [s·U/K, (s+1)·U/K), so shard
// sizes differ by at most one unit. A ShardMap is immutable after
// construction and safe to share between goroutines without locking.
type ShardMap struct {
	units  int
	bounds []int // bounds[s] is the first unit of shard s; bounds[K] = units
}

// NewShardMap builds a map of units synchronization units onto shards
// contiguous ranges. shards is clamped to [1, units] (a shard with no
// units would have a meaningless minimum); units must not be negative.
func NewShardMap(units, shards int) *ShardMap {
	if units < 0 {
		panic(fmt.Sprintf("rowsync: ShardMap over %d units", units))
	}
	if shards < 1 || units == 0 {
		shards = 1
	}
	if shards > units && units > 0 {
		shards = units
	}
	sm := &ShardMap{units: units, bounds: make([]int, shards+1)}
	for s := 0; s <= shards; s++ {
		sm.bounds[s] = s * units / shards
	}
	return sm
}

// NumShards returns the number of shards.
func (sm *ShardMap) NumShards() int { return len(sm.bounds) - 1 }

// NumUnits returns the number of units mapped.
func (sm *ShardMap) NumUnits() int { return sm.units }

// ShardOf returns the shard owning unit u.
func (sm *ShardMap) ShardOf(u int) int {
	if u < 0 || u >= sm.units {
		panic(fmt.Sprintf("rowsync: unit %d outside [0,%d)", u, sm.units))
	}
	// With balanced ranges the arithmetic candidate is off by at most one
	// from the true owner; adjust against the exact bounds.
	s := u * sm.NumShards() / sm.units
	for u < sm.bounds[s] {
		s--
	}
	for u >= sm.bounds[s+1] {
		s++
	}
	return s
}

// Range returns the unit range [lo, hi) owned by shard s.
func (sm *ShardMap) Range(s int) (lo, hi int) {
	return sm.bounds[s], sm.bounds[s+1]
}
