package core

import (
	"testing"

	"rog/internal/trace"
)

func TestComputeSkewValidation(t *testing.T) {
	cfg := testConfig(BSP, 0)
	cfg.ComputeSkew = []float64{1, 2} // 2 entries, 3 workers
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad skew length accepted")
	}
	cfg = testConfig(BSP, 0)
	cfg.Traces = []*trace.Trace{trace.Constant(50, 60, 0.1)}
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad traces length accepted")
	}
}

// TestHeterogeneityStallsBSPAndDynamicBatchingFixesIt reproduces the
// paper's setup note: with heterogeneous devices (a slow laptop in the
// team), BSP stalls on the slow computer every iteration; dynamic batching
// equalizes compute time and removes that stall (Sec. VI, [49]).
func TestHeterogeneityStallsBSPAndDynamicBatchingFixesIt(t *testing.T) {
	run := func(skew []float64, dynamic bool) *Result {
		cfg := testConfig(BSP, 0)
		cfg.MaxIterations = 0
		cfg.MaxVirtualSeconds = 400
		cfg.ComputeSkew = skew
		cfg.DynamicBatching = dynamic
		// A calm constant channel isolates the compute heterogeneity.
		cfg.Traces = []*trace.Trace{
			trace.Constant(90, 600, 0.1),
			trace.Constant(90, 600, 0.1),
			trace.Constant(90, 600, 0.1),
		}
		res, err := Run(cfg, newTestWorkload(3, 41))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	skew := []float64{1, 1, 2} // one device computes twice as long
	stalled := run(skew, false)
	balanced := run(skew, true)

	// Without dynamic batching, the two fast devices stall ~1 compute unit
	// per iteration waiting on the slow one.
	if stalled.Composition.Stall < 0.3 {
		t.Fatalf("heterogeneous BSP barely stalled: %.3fs", stalled.Composition.Stall)
	}
	if balanced.Composition.Stall > stalled.Composition.Stall/3 {
		t.Fatalf("dynamic batching did not remove the stall: %.3fs vs %.3fs",
			balanced.Composition.Stall, stalled.Composition.Stall)
	}
	// Balanced team completes more iterations in the same time budget.
	if balanced.Iterations <= stalled.Iterations {
		t.Fatalf("dynamic batching throughput %d <= %d", balanced.Iterations, stalled.Iterations)
	}
}

// TestTraceReplayDeterminism: injecting recorded traces reproduces a run
// exactly — the artifact's tc-replay property.
func TestTraceReplayDeterminism(t *testing.T) {
	traces := []*trace.Trace{
		trace.GenerateEnv(trace.Outdoor, 120, 1),
		trace.GenerateEnv(trace.Outdoor, 120, 2),
		trace.GenerateEnv(trace.Outdoor, 120, 3),
	}
	run := func() *Result {
		cfg := testConfig(ROG, 4)
		cfg.Traces = traces
		cfg.Env = trace.Indoor // must be ignored when traces are injected
		res, err := Run(cfg, newTestWorkload(3, 43))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalJoules != b.TotalJoules || a.FinalValue != b.FinalValue {
		t.Fatal("trace replay not deterministic")
	}

	// A different trace set changes the outcome (proving the injected
	// traces are actually used).
	cfg := testConfig(ROG, 4)
	cfg.Traces = []*trace.Trace{
		trace.Constant(5, 120, 0.1),
		trace.Constant(5, 120, 0.1),
		trace.Constant(5, 120, 0.1),
	}
	res, err := Run(cfg, newTestWorkload(3, 43))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalJoules == a.TotalJoules {
		t.Fatal("injected traces appear to be ignored")
	}
}
