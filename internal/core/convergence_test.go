package core

import (
	"testing"

	"rog/internal/trace"
)

// TestTheorem1ROGMatchesBSPOnIdealNetwork empirically checks the
// convergence claim of Sec. IV-C: because no gradient contribution is ever
// lost (rows are accumulated until transmitted) and divergence is bounded
// by RSP, ROG converges to the same quality as BSP. On an ideal (stable)
// network with a long horizon, their final accuracies must agree within
// the run-to-run noise band.
func TestTheorem1ROGMatchesBSPOnIdealNetwork(t *testing.T) {
	run := func(s Strategy, th int) float64 {
		cfg := Config{
			Strategy:        s,
			Workers:         3,
			Threshold:       th,
			Env:             trace.Indoor, // unused: seed picks the trace; indoor is the calmer profile
			Seed:            42,
			ComputeSeconds:  1.0,
			PaperModelBytes: 2.1e6,
			LR:              0.08,
			Momentum:        0.9,
			MaxIterations:   150,
			CheckpointEvery: 25,
		}
		wl := newTestWorkload(3, 77)
		res, err := Run(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		// Use the best achieved value: the final checkpoint carries batch
		// noise irrelevant to the convergence question.
		best := 0.0
		for _, p := range res.Series.Points {
			if p.Value > best {
				best = p.Value
			}
		}
		return best
	}
	bsp := run(BSP, 0)
	rog4 := run(ROG, 4)
	rog8 := run(ROG, 8)
	if bsp < 0.8 {
		t.Fatalf("BSP did not converge on the easy task: %.3f", bsp)
	}
	for name, v := range map[string]float64{"ROG-4": rog4, "ROG-8": rog8} {
		if v < bsp-0.08 {
			t.Fatalf("%s best %.3f well below BSP %.3f — convergence guarantee violated", name, v, bsp)
		}
	}
}

// TestROGLosesNoGradientMass checks the proof's premise directly: after a
// run, the total gradient mass still parked in local accumulators, server
// copies and compression residuals is small relative to what the run
// produced — nothing leaks.
func TestROGLosesNoGradientMass(t *testing.T) {
	cfg := testConfig(ROG, 4)
	cfg.MaxIterations = 30
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	wl := newTestWorkload(3, 88)
	c := newCluster(cfg, wl)
	c.start()
	c.k.RunUntilIdle(10_000_000)

	var parked float64
	for w := 0; w < cfg.Workers; w++ {
		for u := 0; u < c.part.NumUnits(); u++ {
			parked += c.local[w].MeanAbs(u) + c.serverAcc[w].MeanAbs(u)
		}
	}
	// Parked mass is bounded by a few iterations' worth of gradients, not
	// the whole run's: with 30 iterations and threshold 4, anything above
	// ~threshold iterations' worth would mean rows are being dropped.
	var oneIter float64
	wl2 := newTestWorkload(3, 88)
	wl2.ComputeGradients(0)
	for _, g := range wl2.Model(0).Grads() {
		oneIter += g.MeanAbs() * float64(g.Rows)
	}
	if parked > oneIter*float64(cfg.Workers)*float64(cfg.Threshold)*4 {
		t.Fatalf("parked gradient mass %.4f too large vs one-iteration mass %.4f", parked, oneIter)
	}
}
