// Package core is the simnet runtime of the synchronization engine: it
// executes the single-copy strategy policies from internal/engine (BSP,
// SSP, FLOWN, ROG, pipelined ROG, DSSP) as deterministic state machines
// over the virtual-time channel while doing real SGD math on real models.
//
// The parameter-update discipline is the paper's: workers never apply their
// own gradients directly; gradients travel worker → server (averaged into
// per-worker copies) → worker, and parameters change only when averaged
// gradient rows are pulled (Algo. 1 PullAveragedGradients). The policies
// decide what moves and when a worker may advance; this package owns the
// clock, the fluid-flow links and the fault injector.
package core

import (
	"fmt"

	"rog/internal/atp"
	"rog/internal/compress"
	"rog/internal/durable"
	"rog/internal/energy"
	"rog/internal/engine"
	"rog/internal/lossnet"
	"rog/internal/metrics"
	"rog/internal/nn"
	"rog/internal/obs"
	"rog/internal/rowsync"
	"rog/internal/simnet"
	"rog/internal/trace"
)

// Strategy selects the synchronization algorithm.
type Strategy int

const (
	// BSP is bulk synchronous parallel: a full barrier every iteration.
	BSP Strategy = iota
	// SSP is stale synchronous parallel with a fixed staleness threshold.
	SSP
	// FLOWN is the dynamic-threshold scheduling baseline (model-granular
	// scheduling from estimated bandwidth, after Chen et al. [19]).
	FLOWN
	// ROG is the paper's row-granulated system: RSP staleness control with
	// ATP adaptive row scheduling.
	ROG
	// DSSP is dynamic SSP (after Zhao et al.): SSP whose staleness
	// threshold adapts at run time inside [2, Threshold].
	DSSP
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case BSP:
		return "BSP"
	case SSP:
		return "SSP"
	case FLOWN:
		return "FLOWN"
	case ROG:
		return "ROG"
	case DSSP:
		return "DSSP"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// policyName maps the strategy (plus the Pipeline flag) to its engine
// registry name; "" for unknown strategies.
func (c Config) policyName() string {
	switch c.Strategy {
	case BSP:
		return "bsp"
	case SSP:
		return "ssp"
	case FLOWN:
		return "flown"
	case ROG:
		if c.Pipeline {
			return "pipeline"
		}
		return "rog"
	case DSSP:
		return "dssp"
	default:
		return ""
	}
}

// Workload abstracts the training task (CRUDA or CRIMP): per-worker model
// replicas, local gradient computation, and a global quality metric.
type Workload interface {
	// Model returns worker w's model replica. Replicas must share one
	// architecture.
	Model(w int) *nn.Sequential
	// ComputeGradients runs one local forward/backward on worker w's data
	// shard, accumulating into the replica's gradient matrices, and
	// returns the batch loss.
	ComputeGradients(w int) float64
	// Evaluate returns the team's current quality metric (mean over
	// workers): accuracy for CRUDA, trajectory error for CRIMP.
	Evaluate() float64
	// Increasing reports whether higher Evaluate values are better.
	Increasing() bool
}

// Config parameterizes one experiment run.
type Config struct {
	Strategy  Strategy
	Workers   int
	Threshold int // staleness threshold (SSP/FLOWN/ROG); ignored by BSP

	Env  trace.Env
	Seed uint64
	// Traces overrides the generated per-worker link traces — the replay
	// path of the paper's artifact, which replays recorded bandwidth
	// through tc. Must have Workers entries when set; Env/Seed are then
	// ignored for trace generation.
	Traces []*trace.Trace

	// ComputeSeconds is the virtual time of one local iteration including
	// gradient (de)compression, before BatchScale (paper: 2.18 s compute +
	// ≈0.46 s compression on Jetson Xavier NX).
	ComputeSeconds float64
	// BatchScale multiplies compute time (×2/×4 in the batch-size
	// sensitivity study). The data batch itself is scaled by the workload.
	BatchScale float64
	// ComputeSkew holds per-worker compute-time multipliers for
	// heterogeneous teams (the paper's robots vs laptops). nil means a
	// homogeneous team. Must have Workers entries when set.
	ComputeSkew []float64
	// DynamicBatching equalizes compute time across a skewed team by
	// resizing per-device batches, as the paper does with [49] ("all the
	// involved devices spend equal time computing"): every device computes
	// for the team-mean time instead of its own skewed time.
	DynamicBatching bool

	// PaperModelBytes is the compressed model size whose transmission
	// behaviour the channel is scaled to reproduce (2.1 MB for CRUDA,
	// 0.76 MB for CRIMP). The local model is much smaller, so link
	// capacities are scaled down by localWireSize/PaperModelBytes,
	// preserving the paper's comm:compute ratio.
	PaperModelBytes float64
	// ScaleReferenceBytes overrides the local wire size used for that
	// channel scaling (0 = use this run's own partition size). The
	// granularity ablation needs it: comparing rows vs elements only makes
	// sense on the *same* channel, not one rescaled to each granularity's
	// inflated wire size.
	ScaleReferenceBytes float64

	LR       float64
	Momentum float64
	// LRDecayIters > 0 applies the 1/(1+n/decay) schedule the convergence
	// proof assumes (η_t ∝ 1/√t-style decay); n is the worker's own
	// iteration count, so per-iteration semantics stay comparable across
	// strategies.
	LRDecayIters float64

	Granularity rowsync.Granularity // Rows unless running the ablation
	Coeff       atp.Coefficients    // importance-metric weights (ROG)

	// Shards splits the server state into this many contiguous unit-range
	// shards, each behind its own lock (clamped to [1, NumUnits]; 0 means
	// 1). The simnet kernel is single-threaded, so sharding changes no
	// simulated timing — shards=K runs are bit-identical to shards=1 —
	// but it exercises the same sharded merge path the socket server runs
	// concurrently, and the fleet experiment sweeps it.
	Shards int

	// Aggregators inserts an edge-aggregation tier between the robots and
	// the parameter server: the N workers are split into contiguous groups,
	// each syncing through one of M edge aggregators that coalesces
	// same-unit rows (summing gradient mass, concatenating version stamps)
	// while its uplink is busy and forwards the combined rows to the root.
	// Forwarded rows carry every originating worker's iteration stamp, so
	// the RSP staleness bound is preserved through the tier. Pulls stay
	// direct (root → worker). 0 disables the tier. Requires an
	// async-driver strategy (SSP/FLOWN/ROG/DSSP, no Pipeline) and is
	// mutually exclusive with Faults, Loss and Durable.
	Aggregators int

	// Pipeline enables the paper's future-work extension (Sec. VI-D):
	// overlapping each robot's computation with its communication,
	// Pipe-SGD style. Only meaningful for the ROG strategy.
	Pipeline bool

	// PerUnitCheckSeconds models the ablation where a timeout judgement is
	// inserted between every two units instead of speculative transmission
	// (Sec. III-A): each unit's transmission is stretched by this many
	// seconds of dead air. 0 = speculative transmission (the default).
	PerUnitCheckSeconds float64

	// Loss injects a packet-loss channel model on every worker link
	// (internal/lossnet grammar: "iid:0.05", "ge:0.05/16", "trace", "none").
	// The zero value disables loss and leaves the transmit paths untouched.
	Loss lossnet.Spec
	// Reliability selects how lost rows settle: Selective (default)
	// retransmits only a speculative plan's Must prefix and folds the rest
	// back into the sender's accumulator; AllReliable retransmits
	// everything.
	Reliability lossnet.Reliability

	// Faults is the injected fault schedule: worker crashes (with optional
	// rejoin), link blackouts, flapping links and parameter-server crashes,
	// all in virtual time — parsed from the CLI/config grammar by
	// simnet.ParseFaultSchedule. Empty means a fault-free run.
	Faults simnet.FaultSchedule

	// Durable, when set, makes the parameter-server state crash-consistent:
	// every merge/drain/membership transition is journaled to the store's
	// WAL and a full snapshot is rotated in every SnapshotEverySeconds of
	// virtual time. Required for servercrash faults and for Resume.
	Durable *durable.Store
	// SnapshotEverySeconds is the checkpoint rotation interval in virtual
	// seconds (default 60 when Durable is set).
	SnapshotEverySeconds float64
	// Resume continues a previous run from Durable's latest valid
	// snapshot + WAL instead of starting fresh: server state is recovered,
	// worker replicas and iteration counters are restored from the
	// checkpoint payload.
	Resume bool
	// RecoverySecondsPerMB converts recovered bytes (snapshot + replayed
	// WAL) into virtual restart latency after a servercrash fault. 0 makes
	// recovery instantaneous — useful for bit-exactness tests.
	RecoverySecondsPerMB float64

	MaxIterations     int     // stop after worker 0 completes this many
	MaxVirtualSeconds float64 // and/or after this much virtual time
	CheckpointEvery   int     // evaluate every N worker-0 iterations

	RecordMicro bool // collect Fig. 8 micro-event samples for worker 1

	// OnMerge, when set, observes every row merged into the server state
	// (worker, unit, stamped version) — instrumentation for the
	// simnet↔livenet parity tests.
	OnMerge func(worker, unit int, iter int64)

	// Trace, when set, receives every structured runtime event with
	// virtual-time timestamps (obs.NewJSONLTracer / obs.NewChromeTracer).
	Trace obs.Tracer
	// Metrics, when set, accumulates the runtime counters/gauges/histograms
	// (rows sent, bytes on wire, staleness, stall causes, MTA budget).
	Metrics *obs.Registry
	// Flight, when set, retains the last-N events per worker in a bounded
	// ring and dumps them when a servercrash recovery fires — the crash
	// flight recorder. It sees the same event stream as Trace (teed).
	Flight *obs.FlightRecorder
}

// Validate fills defaults and rejects nonsense.
func (c *Config) Validate() error {
	if c.Workers < 2 {
		return fmt.Errorf("core: need ≥2 workers, got %d", c.Workers)
	}
	if c.policyName() == "" {
		return fmt.Errorf("core: unknown strategy %v", c.Strategy)
	}
	if c.Strategy != BSP && c.Threshold < 2 {
		return fmt.Errorf("core: threshold must be ≥2, got %d", c.Threshold)
	}
	if c.ComputeSeconds <= 0 {
		c.ComputeSeconds = 2.64 // 2.18 compute + 0.46 compression
	}
	if c.BatchScale <= 0 {
		c.BatchScale = 1
	}
	if c.PaperModelBytes <= 0 {
		c.PaperModelBytes = 2.1e6
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Coeff == (atp.Coefficients{}) {
		c.Coeff = atp.DefaultCoefficients()
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 10
	}
	if c.ComputeSkew != nil && len(c.ComputeSkew) != c.Workers {
		return fmt.Errorf("core: ComputeSkew has %d entries for %d workers", len(c.ComputeSkew), c.Workers)
	}
	if c.Traces != nil && len(c.Traces) != c.Workers {
		return fmt.Errorf("core: Traces has %d entries for %d workers", len(c.Traces), c.Workers)
	}
	if err := c.Faults.Validate(c.Workers); err != nil {
		return err
	}
	for _, e := range c.Faults {
		if e.Kind == simnet.FaultServerCrash && c.Durable == nil {
			return fmt.Errorf("core: servercrash fault %q needs a Durable checkpoint store to recover from", e)
		}
	}
	if c.Resume && c.Durable == nil {
		return fmt.Errorf("core: Resume needs a Durable checkpoint store")
	}
	if c.RecoverySecondsPerMB < 0 {
		return fmt.Errorf("core: negative RecoverySecondsPerMB")
	}
	if c.Durable != nil && c.SnapshotEverySeconds <= 0 {
		c.SnapshotEverySeconds = 60
	}
	if err := c.Loss.Validate(); err != nil {
		return err
	}
	if c.Loss.Kind == "trace" {
		if c.Traces == nil {
			return fmt.Errorf("core: loss model %q needs replay Traces with a loss column", c.Loss.Kind)
		}
		for w, tr := range c.Traces {
			if len(tr.Loss) == 0 {
				return fmt.Errorf("core: loss model %q: trace for worker %d has no loss column", c.Loss.Kind, w)
			}
		}
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: negative Shards %d", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Aggregators < 0 {
		return fmt.Errorf("core: negative Aggregators %d", c.Aggregators)
	}
	if c.Aggregators > 0 {
		if c.Aggregators >= c.Workers {
			return fmt.Errorf("core: need fewer Aggregators than Workers, got %d for %d workers",
				c.Aggregators, c.Workers)
		}
		if c.Strategy == BSP || c.Pipeline {
			return fmt.Errorf("core: Aggregators need an async-driver strategy, not %q", c.policyName())
		}
		if len(c.Faults) > 0 || c.Loss.Enabled() || c.Durable != nil {
			return fmt.Errorf("core: Aggregators are mutually exclusive with Faults, Loss and Durable")
		}
	}
	if c.MaxIterations <= 0 && c.MaxVirtualSeconds <= 0 {
		return fmt.Errorf("core: no termination condition configured")
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 1 << 30
	}
	if c.MaxVirtualSeconds <= 0 {
		c.MaxVirtualSeconds = 1e12
	}
	return nil
}

// MicroSample is one Fig. 8 data point: what the link offered and how ROG
// responded.
type MicroSample struct {
	Time      float64 // virtual seconds
	LinkMbps  float64 // instantaneous link capacity of the observed worker
	TxRate    float64 // fraction of units delivered in that push
	Staleness int64   // iterations the worker lags the fastest worker
}

// Result is everything an experiment reports.
type Result struct {
	Strategy    Strategy
	Threshold   int
	Series      metrics.Series      // quality vs iter/time/energy checkpoints
	Composition metrics.Composition // average per worker-iteration
	Iterations  int                 // completed by worker 0
	TotalJoules float64             // summed across the team
	StallFrac   float64             // stall share of the average iteration
	Micro       []MicroSample
	FinalValue  float64
	Churn       metrics.ChurnStats    // membership-churn counters (fault runs)
	Loss        metrics.LossStats     // packet-loss counters (lossy runs)
	Recovery    metrics.RecoveryStats // checkpoint/recovery counters (durable runs)
	// MaxStaleness is the largest lead (merge iteration minus global
	// version floor) any row merge observed — the empirical RSP bound.
	// Aggregated runs assert it stays within the configured threshold.
	MaxStaleness int64
}

// Label renders "BSP", "SSP-4", "ROG-20", …
func (r *Result) Label() string {
	if r.Strategy == BSP || r.Strategy == FLOWN {
		return r.Strategy.String()
	}
	return fmt.Sprintf("%s-%d", r.Strategy, r.Threshold)
}

// cluster is the shared runtime state of one experiment: the simnet
// Runtime that executes an engine.Policy. The policy decides plans and
// gates; the cluster owns the kernel, the channel, the workload math and
// the energy/stall accounting.
type cluster struct {
	cfg  Config
	wl   Workload
	k    *simnet.Kernel
	ch   *simnet.Channel
	part *rowsync.Partition

	policy engine.Policy
	state  *engine.State

	opt   []*nn.SGD            // per-worker optimizer (applies pulled rows)
	local []*rowsync.GradStore // per-worker accumulated gradients g′
	// pushIter[w][u]: last local iteration whose gradients for unit u were
	// pushed (the worker-side `iters` of Algo. 1).
	pushIter [][]int64

	upCodec   []*compress.Codec // worker→server compression (error feedback)
	downCodec []*compress.Codec // server→worker, one per worker copy

	// versions and serverAcc alias the engine state (kept as fields for the
	// invariant checks the tests walk mid-run).
	serverAcc []*rowsync.GradStore
	versions  *rowsync.VersionStore

	meters []*energy.Meter
	comp   metrics.CompositionRecorder
	series metrics.Series

	iter   []int64 // completed iterations per worker
	halted []bool
	// planSeq[w] counts worker w's push plans (including skips) — the
	// correlation id threaded through PushPlanned/RowsSent/Stall*/Merge so
	// the critical-path analyzer can tie a stall to the plan that parked it.
	// Incremented unconditionally (pure memory), so traced and untraced runs
	// stay bit-identical.
	planSeq []int64

	// Fault-tolerance state: crashed workers and the driver's per-worker
	// resume hook for rejoins. RSP parks blocked workers on the engine
	// state's per-shard wait lists (shared with the fault layer so a detach
	// can wake and attribute the released stall); churn counters live there
	// too.
	crashed  []bool
	resumeFn func(w int)

	// agg is the edge-aggregation tier (nil unless cfg.Aggregators > 0).
	agg *aggTier

	// loss holds the per-worker packet-loss models (nil = lossless run,
	// the transmit paths then take their original branches untouched).
	loss []lossnet.Model

	// Durable-server state: the checkpoint store (nil = volatile server),
	// whether the server is currently down, when it crashed, accumulated
	// recovery counters, and the first unrecoverable error (surfaced by Run).
	store      *durable.Store
	serverDown bool
	crashTime  float64
	recovery   metrics.RecoveryStats
	fatalErr   error

	// probe is the observability handle (nil when tracing and metrics are
	// both off — every emit site is then a pointer check).
	probe *obs.Probe

	micro []MicroSample

	// decode scratch
	scratch []float32
}

func newCluster(cfg Config, wl Workload) *cluster {
	k := simnet.NewKernel()
	links := cfg.Traces
	if links == nil {
		links = make([]*trace.Trace, cfg.Workers)
		for w := range links {
			links[w] = trace.GenerateEnv(cfg.Env, 300, cfg.Seed*1000+uint64(w)+1)
		}
	}
	params := wl.Model(0).Params()
	part := rowsync.NewPartition(params, cfg.Granularity)
	// Scale the channel so our small model transmits in the same time the
	// paper's compressed model would on the real link.
	ref := cfg.ScaleReferenceBytes
	if ref <= 0 {
		ref = float64(part.TotalWireSize())
	}
	scale := ref / cfg.PaperModelBytes

	policy, err := engine.New(cfg.policyName(), engine.Params{
		Workers:   cfg.Workers,
		Threshold: cfg.Threshold,
		NumUnits:  part.NumUnits(),
		Coeff:     cfg.Coeff,
	})
	if err != nil {
		// Validate rejects unknown strategies before any cluster is built.
		panic(err)
	}

	c := &cluster{
		cfg:     cfg,
		wl:      wl,
		k:       k,
		ch:      simnet.NewChannel(k, links, scale),
		part:    part,
		policy:  policy,
		state:   engine.NewStateSharded(policy, part, cfg.Workers, 1.0, cfg.Shards),
		scratch: make([]float32, maxUnitLen(part)),
		crashed: make([]bool, cfg.Workers),
	}
	if cfg.Aggregators > 0 {
		c.agg = newAggTier(c)
	}
	if cfg.Loss.Enabled() {
		c.loss = make([]lossnet.Model, cfg.Workers)
		for w := range c.loss {
			// Distinct seed stream from the trace generator's so loss and
			// bandwidth schedules stay independent draws.
			m, err := cfg.Loss.Model(cfg.Seed*6151+uint64(w)+1, links[w])
			if err != nil {
				// Validate pinned the trace-column requirement already.
				panic(err)
			}
			c.loss[w] = m
		}
	}
	c.state.OnMerge = cfg.OnMerge
	// The flight recorder rides the same event stream as the trace sink.
	// The typed-nil check matters: a nil *FlightRecorder in a Tracer
	// interface would survive Tee's nil filter.
	tr := cfg.Trace
	if cfg.Flight != nil {
		tr = obs.Tee(cfg.Flight, cfg.Trace)
	}
	c.probe = obs.NewProbe(tr, cfg.Metrics, k.Now)
	c.state.Probe = c.probe
	c.planSeq = make([]int64, cfg.Workers)
	c.serverAcc = c.state.Acc
	c.versions = c.state.Versions
	c.series.Name = fmt.Sprintf("%s-%d", cfg.Strategy, cfg.Threshold)
	for w := 0; w < cfg.Workers; w++ {
		c.opt = append(c.opt, nn.NewSGD(cfg.LR, cfg.Momentum))
		c.local = append(c.local, rowsync.NewGradStore(part))
		c.pushIter = append(c.pushIter, make([]int64, part.NumUnits()))
		c.upCodec = append(c.upCodec, compress.NewCodec(part.Widths()))
		c.downCodec = append(c.downCodec, compress.NewCodec(part.Widths()))
		c.meters = append(c.meters, energy.NewMeter(energy.PaperModel()))
		c.iter = append(c.iter, 0)
		c.halted = append(c.halted, false)
	}
	return c
}

func maxUnitLen(p *rowsync.Partition) int {
	m := 0
	for u := 0; u < p.NumUnits(); u++ {
		if l := p.Unit(u).Len; l > m {
			m = l
		}
	}
	return m
}

// computeSeconds is one iteration's virtual compute time for worker w,
// honoring heterogeneity and dynamic batching.
func (c *cluster) computeSecondsFor(w int) float64 {
	base := c.cfg.ComputeSeconds * c.cfg.BatchScale
	if c.cfg.ComputeSkew == nil {
		return base
	}
	if c.cfg.DynamicBatching {
		// Dynamic batching resizes each device's batch so everyone
		// computes for the team mean.
		var sum float64
		for _, s := range c.cfg.ComputeSkew {
			sum += s
		}
		return base * sum / float64(len(c.cfg.ComputeSkew))
	}
	return base * c.cfg.ComputeSkew[w]
}

// computeSeconds is the homogeneous-team compute time (worker 0's view);
// retained for call sites that predate heterogeneity support.
func (c *cluster) computeSeconds() float64 {
	return c.computeSecondsFor(0)
}

// shouldHalt reports whether worker w must stop before another iteration.
func (c *cluster) shouldHalt(w int) bool {
	return c.iter[w] >= int64(c.cfg.MaxIterations) ||
		c.k.Now() >= c.cfg.MaxVirtualSeconds
}

// deliverPush decodes worker w's unit u at local iteration n into the
// server state (Algo. 2 lines 2–6: shrink-to-attached averaging and
// version stamping live in engine.State.Merge).
func (c *cluster) deliverPush(w, u int, n int64) {
	g := c.local[w].Unit(u)
	payload := c.upCodec[w].Encode(u, g)
	vals := c.scratch[:len(g)]
	compress.Decode(payload, vals)
	if c.agg != nil {
		// Edge tier: the row lands at w's aggregator, which coalesces and
		// forwards it (with w's stamp) over its own uplink. enqueue copies
		// vals — c.scratch is reused by the next decode.
		c.agg.enqueue(w, u, vals, n)
	} else {
		c.state.Merge(w, u, vals, n)
	}
	// Worker side of Algo. 1 lines 9–11.
	c.local[w].ZeroUnit(u)
	c.pushIter[w][u] = n
}

// deliverPull decodes the server's averaged unit u for worker w and applies
// it to w's replica (Algo. 1 lines 13–16), then clears w's server copy.
func (c *cluster) deliverPull(w, u int) {
	acc := c.serverAcc[w].Unit(u)
	payload := c.downCodec[w].Encode(u, acc)
	vals := c.scratch[:len(acc)]
	compress.Decode(payload, vals)
	c.applyUnit(w, u, vals)
	// Drain through the engine so the transition reaches the WAL: a pulled
	// copy must stay drained across a server crash, or recovery would
	// double-apply it on the next pull.
	c.state.DrainUnit(w, u)
}

// applyUnit runs the SGD row update on one unit of worker w's replica.
func (c *cluster) applyUnit(w, u int, vals []float32) {
	params := c.wl.Model(w).Params()
	un := c.part.Unit(u)
	p := params[un.Param]
	// Units are contiguous ranges; apply row by row through the optimizer
	// so momentum state stays per-row.
	startRow := un.Offset / p.Cols
	endOff := un.Offset + un.Len
	for off := un.Offset; off < endOff; {
		row := off / p.Cols
		colStart := off - row*p.Cols
		width := p.Cols - colStart
		if off+width > endOff {
			width = endOff - off
		}
		if colStart == 0 && width == p.Cols {
			c.opt[w].ApplyRow(params, un.Param, row, vals[off-un.Offset:off-un.Offset+width])
		} else {
			// Partial row (element granularity): apply directly with the
			// same step rule, bypassing per-row momentum.
			lr := float32(c.opt[w].LR)
			pr := p.Data[off : off+width]
			src := vals[off-un.Offset : off-un.Offset+width]
			for i := range pr {
				pr[i] -= lr * src[i]
			}
		}
		off += width
	}
	_ = startRow
}

// snapshotInto accumulates worker w's freshly computed gradients into its
// local store (Algo. 1 lines 2–3) and refreshes the worker's learning rate
// under the decay schedule.
func (c *cluster) snapshotInto(w int) {
	model := c.wl.Model(w)
	grads := model.Grads()
	c.local[w].Accumulate(grads)
	model.ZeroGrads()
	if c.cfg.LRDecayIters > 0 {
		c.opt[w].LR = c.cfg.LR / (1 + float64(c.iter[w])/c.cfg.LRDecayIters)
	}
}

// checkpoint evaluates the workload and appends a series point.
func (c *cluster) checkpoint() {
	var joules float64
	for _, m := range c.meters {
		joules += m.Joules()
	}
	// The iteration axis uses the team mean so that strategies letting fast
	// workers race ahead are not credited with free extra work per
	// "iteration" (statistical efficiency compares equal gradient counts).
	var sum int64
	for _, it := range c.iter {
		sum += it
	}
	c.series.Add(metrics.Point{
		Iter:   int(sum / int64(len(c.iter))),
		Time:   c.k.Now(),
		Energy: joules,
		Value:  c.wl.Evaluate(),
	})
}

// finishIteration updates meters and composition for one worker-iteration
// and advances the iteration counter.
func (c *cluster) finishIteration(w int, startTime, commSeconds float64) {
	total := c.k.Now() - startTime
	comp := c.computeSecondsFor(w)
	stall := total - comp - commSeconds
	if stall < 0 {
		stall = 0
	}
	c.meters[w].Add(energy.Compute, comp)
	c.meters[w].Add(energy.Communicate, commSeconds)
	c.meters[w].Add(energy.Stall, stall)
	c.comp.Record(metrics.Composition{Compute: comp, Comm: commSeconds, Stall: stall})
	// The trace carries the exact values the Result averages, so an
	// aggregated trace reproduces Result.Composition bit-for-bit.
	c.probe.IterEnd(w, c.iter[w]+1, comp, commSeconds, stall)
	c.iter[w]++
	if w == 0 && c.iter[0]%int64(c.cfg.CheckpointEvery) == 0 {
		c.checkpoint()
	}
}

// result finalizes the Result after the kernel drains.
func (c *cluster) result() *Result {
	var joules float64
	for _, m := range c.meters {
		joules += m.Joules()
	}
	comp := c.comp.Average()
	stallFrac := 0.0
	if comp.Total() > 0 {
		stallFrac = comp.Stall / comp.Total()
	}
	r := &Result{
		Strategy:     c.cfg.Strategy,
		Threshold:    c.cfg.Threshold,
		Series:       c.series,
		Composition:  comp,
		Iterations:   int(c.iter[0]),
		TotalJoules:  joules,
		StallFrac:    stallFrac,
		Micro:        c.micro,
		FinalValue:   c.series.Last().Value,
		Churn:        c.state.ChurnSnapshot(),
		Loss:         c.state.LossSnapshot(),
		Recovery:     c.recovery,
		MaxStaleness: c.state.MaxLeadObserved(),
	}
	return r
}

// start launches the driver loop matching the policy's traits: the round
// barrier for BSP, the compute/comm-overlapped pipeline when requested,
// and the shared asynchronous loop for everything else. The traits choose
// the loop shape only — plans, gates and merges all come from the policy.
func (c *cluster) start() {
	switch t := c.policy.Traits(); {
	case t.Barrier:
		c.runBarrier()
	case t.Pipelined:
		c.runPipelined()
	default:
		c.runAsync()
	}
}

// Run executes one experiment to completion and returns its Result.
func Run(cfg Config, wl Workload) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := newCluster(cfg, wl)
	if err := c.setupDurable(); err != nil {
		return nil, err
	}
	c.checkpoint() // baseline point at t=0
	c.start()
	if len(cfg.Faults) > 0 {
		if err := c.installFaults(); err != nil {
			return nil, err
		}
	}
	c.k.RunUntilIdle(200_000_000)
	if c.fatalErr != nil {
		return nil, c.fatalErr
	}
	if c.store != nil {
		// One last checkpoint so a later -resume continues from the end of
		// this run, not the last rotation tick.
		if !c.serverDown {
			if err := c.store.Checkpoint(c.state, c.resumePayload()); err != nil {
				return nil, fmt.Errorf("core: final checkpoint: %w", err)
			}
		}
		if err := c.store.Err(); err != nil {
			return nil, fmt.Errorf("core: checkpoint store failed mid-run: %w", err)
		}
	}
	c.checkpoint() // final point
	return c.result(), nil
}
