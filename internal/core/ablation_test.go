package core

import (
	"math"
	"testing"

	"rog/internal/energy"
	"rog/internal/rowsync"
)

func TestROGLayerGranularityRuns(t *testing.T) {
	cfg := testConfig(ROG, 4)
	cfg.Granularity = rowsync.Layers
	res, err := Run(cfg, newTestWorkload(3, 21))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 5 {
		t.Fatalf("layer granularity barely progressed: %d", res.Iterations)
	}
}

func TestROGElementGranularityRuns(t *testing.T) {
	cfg := testConfig(ROG, 4)
	cfg.Granularity = rowsync.Elements
	cfg.MaxIterations = 8 // element granularity has many units; keep short
	res, err := Run(cfg, newTestWorkload(3, 22))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 8 {
		t.Fatalf("element granularity completed %d", res.Iterations)
	}
}

func TestElementGranularityCostsMoreWire(t *testing.T) {
	// The Sec. III-A argument quantified: same model, same trace, element
	// granularity spends more time communicating per iteration.
	run := func(g rowsync.Granularity) *Result {
		cfg := testConfig(ROG, 4)
		cfg.Granularity = g
		cfg.MaxIterations = 10
		res, err := Run(cfg, newTestWorkload(3, 23))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rows := run(rowsync.Rows)
	elems := run(rowsync.Elements)
	if elems.Composition.Comm <= rows.Composition.Comm {
		t.Fatalf("element comm %.3f <= row comm %.3f",
			elems.Composition.Comm, rows.Composition.Comm)
	}
}

func TestPerUnitCheckSlowsTransmission(t *testing.T) {
	// Inserting a judgement between rows (the design the paper rejects)
	// must reduce iterations completed in the same time budget.
	run := func(check float64) *Result {
		cfg := testConfig(ROG, 4)
		cfg.MaxIterations = 0
		cfg.MaxVirtualSeconds = 200
		cfg.PerUnitCheckSeconds = check
		res, err := Run(cfg, newTestWorkload(3, 24))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	speculative := run(0)
	judged := run(0.05)
	if judged.Iterations >= speculative.Iterations {
		t.Fatalf("per-unit checks did not hurt: %d >= %d",
			judged.Iterations, speculative.Iterations)
	}
}

func TestEnergyAccountingConsistent(t *testing.T) {
	cfg := testConfig(ROG, 4)
	wl := newTestWorkload(3, 25)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	c := newCluster(cfg, wl)
	c.start()
	c.k.RunUntilIdle(10_000_000)

	// TotalJoules must equal the integral of the power model over the
	// recorded composition (energy is bookkept per phase, so totals match).
	var joules, seconds float64
	for _, m := range c.meters {
		joules += m.Joules()
		seconds += m.TotalSeconds()
	}
	model := energy.PaperModel()
	avg := c.comp.Average()
	n := float64(c.comp.Count())
	wantJ := n * (avg.Compute*model.Watts[energy.Compute] +
		avg.Comm*model.Watts[energy.Communicate] +
		avg.Stall*model.Watts[energy.Stall])
	if math.Abs(joules-wantJ) > 1e-6*wantJ {
		t.Fatalf("energy mismatch: meters %.3f vs composition %.3f", joules, wantJ)
	}
	wantSec := n * avg.Total()
	if math.Abs(seconds-wantSec) > 1e-6*wantSec {
		t.Fatalf("time mismatch: meters %.3f vs composition %.3f", seconds, wantSec)
	}
}

func TestFLOWNStalenessBound(t *testing.T) {
	cfg := testConfig(FLOWN, 4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	wl := newTestWorkload(3, 26)
	c := newCluster(cfg, wl)
	c.start()
	for c.k.Step() {
		if ahead := c.versions.MaxAhead(); ahead > int64(cfg.Threshold) {
			t.Fatalf("FLOWN staleness bound violated: %d > %d", ahead, cfg.Threshold)
		}
	}
	if c.iter[0] == 0 {
		t.Fatal("FLOWN made no progress")
	}
}

func TestImportanceCoefficientVariantsRun(t *testing.T) {
	for _, f := range []struct{ f1, f2 float64 }{{1, 0}, {0, 1}, {2, 0.5}} {
		cfg := testConfig(ROG, 4)
		cfg.Coeff.F1 = f.f1
		cfg.Coeff.F2 = f.f2
		cfg.MaxIterations = 12
		res, err := Run(cfg, newTestWorkload(3, 27))
		if err != nil {
			t.Fatalf("f1=%v f2=%v: %v", f.f1, f.f2, err)
		}
		if res.Iterations != 12 {
			t.Fatalf("f1=%v f2=%v: %d iterations", f.f1, f.f2, res.Iterations)
		}
	}
}

// TestNoGradientLost pins the "no update is lost" premise of the
// convergence proof: the total gradient mass produced by workers equals
// what reaches the models, up to the bounded compression residuals and
// whatever is still in flight at cutoff.
func TestNoGradientLost(t *testing.T) {
	cfg := testConfig(ROG, 3)
	cfg.MaxIterations = 25
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	wl := newTestWorkload(3, 28)
	c := newCluster(cfg, wl)
	c.start()
	c.k.RunUntilIdle(10_000_000)

	// After the run: every unit's accumulated gradient still sitting in
	// local stores or server copies is bounded (nothing grows without
	// bound), and version stores show all units were pushed recently.
	for w := 0; w < cfg.Workers; w++ {
		for u := 0; u < c.part.NumUnits(); u++ {
			lag := c.iter[w] - c.pushIter[w][u]
			if lag >= int64(cfg.Threshold) {
				t.Fatalf("worker %d unit %d lag %d >= threshold", w, u, lag)
			}
		}
	}
}
