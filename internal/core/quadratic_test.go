package core

import (
	"math"
	"testing"

	"rog/internal/nn"
	"rog/internal/tensor"
	"rog/internal/trace"
)

// quadWorkload is the convex setting of Theorem 1: minimize
// f(x) = Σ_t ½‖x − c_t‖² where each worker holds its own component
// functions (its c_t samples). The unique minimizer is the mean of all
// centers, so convergence can be checked against a closed form.
type quadWorkload struct {
	models  []*nn.Sequential
	centers [][]float32 // per worker, the mean of its component centers
	optimum []float32   // global mean
	rngs    []*tensor.RNG
	noise   float64
	dim     int
}

func newQuadWorkload(workers, dim int, seed uint64) *quadWorkload {
	r := tensor.NewRNG(seed)
	q := &quadWorkload{dim: dim, noise: 0.05}
	q.optimum = make([]float32, dim)
	for w := 0; w < workers; w++ {
		c := make([]float32, dim)
		for i := range c {
			c[i] = float32(r.Norm() * 2)
			q.optimum[i] += c[i]
		}
		q.centers = append(q.centers, c)
		q.rngs = append(q.rngs, tensor.NewRNG(seed+uint64(w)+50))
		// The "model" is a single 4×(dim/4) parameter matrix holding x,
		// expressed as a bias-free linear layer so it has multiple rows
		// for the row scheduler to work with.
		m := nn.NewSequential(nn.NewLinear(4, dim/4, tensor.NewRNG(1)))
		q.models = append(q.models, m)
	}
	for i := range q.optimum {
		q.optimum[i] /= float32(workers)
	}
	return q
}

func (q *quadWorkload) Model(w int) *nn.Sequential { return q.models[w] }

// ComputeGradients: ∇½‖x−c‖² = x − c, with sampling noise standing in for
// the stochastic component draw.
func (q *quadWorkload) ComputeGradients(w int) float64 {
	params := q.models[w].Params()
	grads := q.models[w].Grads()
	x := params[0].Data // weight matrix; the bias row participates too
	g := grads[0].Data
	var loss float64
	for i := range x {
		d := float64(x[i] - q.centers[w][i])
		g[i] += float32(d + q.rngs[w].Norm()*q.noise)
		loss += 0.5 * d * d
	}
	// The bias matrix (params[1]) pulls toward zero, consistent across
	// workers, so it does not disturb the optimum of the weight part.
	b := params[1].Data
	gb := grads[1].Data
	for i := range b {
		gb[i] += b[i]
	}
	return loss
}

// Evaluate returns −distance(x̄, x*) so that "increasing" semantics hold.
func (q *quadWorkload) Evaluate() float64 {
	var dist float64
	n := 0
	for _, m := range q.models {
		x := m.Params()[0].Data
		for i := range x {
			d := float64(x[i] - q.optimum[i])
			dist += d * d
			n++
		}
	}
	return -math.Sqrt(dist / float64(n))
}

func (q *quadWorkload) Increasing() bool { return true }

// TestTheorem1ConvexConvergence runs every strategy on the convex problem
// of the proof over an unstable outdoor channel. All must converge to the
// same minimizer: mean distance to x* below a small epsilon.
func TestTheorem1ConvexConvergence(t *testing.T) {
	for _, tc := range []struct {
		s  Strategy
		th int
	}{
		{BSP, 0}, {SSP, 4}, {FLOWN, 4}, {ROG, 4}, {ROG, 8},
	} {
		cfg := Config{
			Strategy:        tc.s,
			Workers:         3,
			Threshold:       tc.th,
			Env:             trace.Outdoor,
			Seed:            7,
			ComputeSeconds:  1.0,
			PaperModelBytes: 2.1e6,
			LR:              0.3,
			Momentum:        0,
			LRDecayIters:    60, // the decaying step size of the theorem
			MaxIterations:   450,
			CheckpointEvery: 50,
		}
		wl := newQuadWorkload(3, 16, 99)
		res, err := Run(cfg, wl)
		if err != nil {
			t.Fatalf("%v-%d: %v", tc.s, tc.th, err)
		}
		finalDist := -res.FinalValue
		if finalDist > 0.15 {
			t.Errorf("%v-%d did not converge to x*: RMS distance %.4f", tc.s, tc.th, finalDist)
		}
	}
}
