package core

// runBSP drives Bulk Synchronous Parallel: every iteration all workers
// compute, push their whole (compressed) model of gradients, wait at the
// barrier until everyone's push arrived and everyone's averaged pull is
// delivered, then start the next iteration together. A single slow link
// stalls the entire team — the straggler effect the paper sets out to kill.
func (c *cluster) runBSP() {
	type roundState struct {
		start    float64
		commSec  []float64
		pushLeft int
		pullLeft int
	}
	var startRound func()
	n := int64(0)

	startRound = func() {
		if c.iter[0] >= int64(c.cfg.MaxIterations) || c.k.Now() >= c.cfg.MaxVirtualSeconds {
			return
		}
		n++
		rs := &roundState{
			start:    c.k.Now(),
			commSec:  make([]float64, c.cfg.Workers),
			pushLeft: c.cfg.Workers,
			pullLeft: c.cfg.Workers,
		}
		for w := 0; w < c.cfg.Workers; w++ {
			c.wl.ComputeGradients(w)
			c.snapshotInto(w)
		}
		// Each worker pushes when its own compute finishes (devices may be
		// heterogeneous); the barrier still waits for every push and pull.
		for w := 0; w < c.cfg.Workers; w++ {
			w := w
			c.k.After(c.computeSecondsFor(w), func() {
				pushStart := c.k.Now()
				c.ch.StartFlow(w, float64(c.part.TotalWireSize()), func() {
					rs.commSec[w] += c.k.Now() - pushStart
					for u := 0; u < c.part.NumUnits(); u++ {
						c.deliverPush(w, u, n)
					}
					rs.pushLeft--
					if rs.pushLeft == 0 {
						// Barrier reached: server has every gradient;
						// send averaged models back.
						for s := 0; s < c.cfg.Workers; s++ {
							s := s
							pullStart := c.k.Now()
							c.ch.StartFlow(s, float64(c.part.TotalWireSize()), func() {
								rs.commSec[s] += c.k.Now() - pullStart
								for u := 0; u < c.part.NumUnits(); u++ {
									c.deliverPull(s, u)
								}
								rs.pullLeft--
								if rs.pullLeft == 0 {
									// Iteration ends for everyone at the
									// same instant (the barrier).
									for x := 0; x < c.cfg.Workers; x++ {
										c.finishIteration(x, rs.start, rs.commSec[x])
									}
									startRound()
								}
							})
						}
					}
				})
			})
		}
	}
	startRound()
}
