package core

// runBarrier drives round-lockstep policies (BSP): every iteration all
// workers compute, push what the policy plans, wait at the barrier until
// everyone's push arrived and everyone's averaged pull is delivered, then
// start the next round together. A single slow link stalls the entire
// team — the straggler effect the paper sets out to kill. The barrier is
// the runtime expression of the policy's CanAdvance gate (advance only
// when every attached worker pushed the round); the socket runtime gets
// the identical semantics from the gate alone.
func (c *cluster) runBarrier() {
	type roundState struct {
		start    float64
		commSec  []float64
		pushLeft int
		pullLeft int
	}
	var startRound func()
	n := int64(0)

	startRound = func() {
		if c.iter[0] >= int64(c.cfg.MaxIterations) || c.k.Now() >= c.cfg.MaxVirtualSeconds {
			return
		}
		n++
		rs := &roundState{
			start:   c.k.Now(),
			commSec: make([]float64, c.cfg.Workers),
		}
		// The barrier counts only the workers attached at round start; a
		// crashed robot neither computes nor holds up its teammates, and a
		// rejoined one is included again from the next round.
		barrier := func() {
			// Barrier reached: server has every living worker's gradients;
			// send averaged models back to the workers still attached.
			var targets []int
			for s := 0; s < c.cfg.Workers; s++ {
				if !c.crashed[s] {
					targets = append(targets, s)
				}
			}
			rs.pullLeft = len(targets)
			if rs.pullLeft == 0 {
				return // the whole team is down; the round dies with it
			}
			for _, s := range targets {
				s := s
				c.transmitPull(s, n, c.state.PlanPull(s, n), func(elapsed float64) {
					rs.commSec[s] += elapsed
					rs.pullLeft--
					if rs.pullLeft == 0 {
						// Iteration ends for every participant at the same
						// instant (the barrier).
						for _, x := range targets {
							if !c.crashed[x] {
								c.finishIteration(x, rs.start, rs.commSec[x])
							}
						}
						startRound()
					}
				})
			}
		}
		arrive := func() {
			rs.pushLeft--
			if rs.pushLeft == 0 {
				barrier()
			}
		}
		rs.pushLeft = c.cfg.Workers
		for w := 0; w < c.cfg.Workers; w++ {
			w := w
			if c.crashed[w] {
				arrive() // a downed worker contributes nothing this round
				continue
			}
			c.probe.IterStart(w, n)
			c.wl.ComputeGradients(w)
			c.snapshotInto(w)
			// Each worker pushes when its own compute finishes (devices may
			// be heterogeneous); the barrier still waits for every push and
			// pull of the attached team.
			c.k.After(c.computeSecondsFor(w), func() {
				if c.crashed[w] {
					arrive() // crashed during compute: its round is lost
					return
				}
				plan := c.policy.PlanPush(c.pushView(w, n))
				c.transmitPush(w, n, plan, func(_ int, mtaTime, elapsed float64) {
					rs.commSec[w] += elapsed
					c.state.ObservePush(w, n, mtaTime, elapsed, plan.Speculative)
					arrive()
				})
			})
		}
	}
	// The barrier loop is round-driven: a rejoined worker needs no explicit
	// resume — the next barrier includes every attached worker
	// automatically. (If the entire team goes down the round engine dies
	// with it; BSP has no membership protocol to revive a fully dead run.)
	c.resumeFn = func(int) {}
	startRound()
}
