package core

import (
	"rog/internal/energy"
	"rog/internal/metrics"
)

// runPipelined implements the paper's future-work extension (Sec. VI-D):
// overlapping communication and computation on each robot, in the spirit of
// Pipe-SGD [65]. Each worker owns two serial resources — the CPU and the
// radio. While the radio synchronizes iteration n's rows, the CPU already
// computes iteration n+1's gradients (on the model state before pull n,
// which adds one bounded unit of staleness, still governed by RSP). The
// pipeline depth is one: compute(n+2) cannot start until comm(n+1) begins,
// i.e. until comm(n) finished. What moves and when a worker may advance
// come from the policy (the "pipeline" registry entry — ROG's plans with
// the Pipelined trait).
//
// Accounting: an iteration's span runs from the previous comm completion to
// its own; compute and comm overlap, so the stall residual is clamped at
// zero and total metered time may exceed wall time (both chips draw power
// simultaneously, so the energy integral remains correct).
func (c *cluster) runPipelined() {
	type wstate struct {
		computeIter int64 // iterations whose gradients have been computed
		readyIter   int64 // snapshot awaiting the radio (0 = none)
		cpuBusy     bool
		commBusy    bool
		spanStart   float64 // previous comm completion (iteration span start)
	}
	states := make([]*wstate, c.cfg.Workers)
	for w := range states {
		states[w] = &wstate{}
	}

	var tryCompute func(w int)
	var beginComm func(w int, n int64)

	finish := func(w int, commSec float64) {
		st := states[w]
		span := c.k.Now() - st.spanStart
		st.spanStart = c.k.Now()
		comp := c.computeSecondsFor(w)
		stall := span - comp - commSec
		if stall < 0 {
			stall = 0
		}
		c.meters[w].Add(energy.Compute, comp)
		c.meters[w].Add(energy.Communicate, commSec)
		c.meters[w].Add(energy.Stall, stall)
		c.comp.Record(metrics.Composition{Compute: comp, Comm: commSec, Stall: stall})
		c.probe.IterEnd(w, c.iter[w]+1, comp, commSec, stall)
		c.iter[w]++
		if w == 0 && c.iter[0]%int64(c.cfg.CheckpointEvery) == 0 {
			c.checkpoint()
		}
	}

	beginComm = func(w int, n int64) {
		st := states[w]
		if c.crashed[w] {
			return
		}
		st.commBusy = true
		st.readyIter = 0
		commSec := 0.0

		plan := c.policy.PlanPush(c.pushView(w, n))
		c.transmitPush(w, n, plan, func(_ int, mtaTime, elapsed float64) {
			commSec += elapsed
			c.state.ObservePush(w, n, mtaTime, elapsed, plan.Speculative)
			c.state.WakeWaiters(c.k.Now())
			pull := func() bool {
				if c.crashed[w] {
					return true // abandon: the crash ends the iteration
				}
				if !c.state.CanAdvance(n) {
					return false
				}
				c.transmitPull(w, n, c.state.PlanPull(w, n), func(elapsed float64) {
					commSec += elapsed
					finish(w, commSec)
					st.commBusy = false
					if st.readyIter != 0 {
						beginComm(w, st.readyIter)
					}
					tryCompute(w)
				})
				return true
			}
			if !pull() {
				c.parkStalled(w, n, pull)
			}
		})
		// The radio is now busy with iteration n; the CPU may start on n+1.
		tryCompute(w)
	}

	tryCompute = func(w int) {
		st := states[w]
		if c.crashed[w] {
			return // rejoin restarts the pipeline via resumeFn
		}
		if st.cpuBusy || st.readyIter != 0 {
			return // CPU occupied, or a snapshot still waits for the radio
		}
		if st.computeIter >= int64(c.cfg.MaxIterations) || c.k.Now() >= c.cfg.MaxVirtualSeconds {
			c.halted[w] = true
			return
		}
		st.cpuBusy = true
		st.computeIter++
		n := st.computeIter
		c.probe.IterStart(w, n)
		c.wl.ComputeGradients(w)
		c.k.After(c.computeSecondsFor(w), func() {
			if c.crashed[w] {
				return // crashed during compute: the iteration is lost
			}
			c.snapshotInto(w)
			st.cpuBusy = false
			st.readyIter = n
			if !st.commBusy {
				beginComm(w, n)
			}
		})
	}

	// A rejoined worker restarts with an idle CPU and radio; its pipeline
	// counter fast-forwards to the membership baseline so the first push
	// after the resync stays monotone.
	c.resumeFn = func(w int) {
		st := states[w]
		st.cpuBusy, st.commBusy, st.readyIter = false, false, 0
		if st.computeIter < c.iter[w] {
			st.computeIter = c.iter[w]
		}
		tryCompute(w)
	}
	for w := 0; w < c.cfg.Workers; w++ {
		tryCompute(w)
	}
}
