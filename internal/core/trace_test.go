package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"rog/internal/obs"
)

// closeEnough tolerates float rounding between the streamed aggregate and
// the recorder's running sums (both add the same terms, possibly in a
// different order).
func closeEnough(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestTraceAggregationMatchesResult is the acceptance criterion of the
// tracing tentpole: a traced simnet run must yield a JSONL stream whose
// aggregation reproduces the run's metrics.Result — same iteration
// composition, consistent row/byte totals — with no pairing violations.
func TestTraceAggregationMatchesResult(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig(ROG, 4)
	tr := obs.NewJSONLTracer(&buf)
	cfg.Trace = tr
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg, newTestWorkload(3, 11))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := obs.Aggregate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.PairErrors) != 0 {
		t.Fatalf("pairing violations: %v", sum.PairErrors)
	}
	comp, comm, stall := sum.Composition()
	if !closeEnough(comp, res.Composition.Compute) ||
		!closeEnough(comm, res.Composition.Comm) ||
		!closeEnough(stall, res.Composition.Stall) {
		t.Fatalf("trace composition = %g/%g/%g, result = %g/%g/%g",
			comp, comm, stall,
			res.Composition.Compute, res.Composition.Comm, res.Composition.Stall)
	}
	if sum.Iters == 0 {
		t.Fatal("no IterEnd events in trace")
	}
	if sum.Events["IterStart"] < sum.Events["IterEnd"] {
		t.Fatalf("IterStart (%d) < IterEnd (%d): every finished iteration must have started",
			sum.Events["IterStart"], sum.Events["IterEnd"])
	}
	if sum.RowsSent == 0 || sum.BytesPushed == 0 {
		t.Fatalf("no push traffic traced (rows=%d bytes=%g)", sum.RowsSent, sum.BytesPushed)
	}
	if sum.RowsPlanned < sum.RowsSent {
		t.Fatalf("planned %d rows but sent %d", sum.RowsPlanned, sum.RowsSent)
	}
	if sum.Merges == 0 {
		t.Fatal("no Merge events traced")
	}

	// The registry must agree with the trace on shared counters.
	snap := cfg.Metrics.Snapshot()
	if snap.Counters["iters_completed"] != int64(sum.Iters) {
		t.Fatalf("registry iters_completed = %d, trace = %d",
			snap.Counters["iters_completed"], sum.Iters)
	}
	if snap.Counters["rows_sent"] != sum.RowsSent {
		t.Fatalf("registry rows_sent = %d, trace = %d", snap.Counters["rows_sent"], sum.RowsSent)
	}
	if snap.Counters["rows_merged"] != sum.Merges {
		t.Fatalf("registry rows_merged = %d, trace merges = %d",
			snap.Counters["rows_merged"], sum.Merges)
	}
	if snap.Histograms["staleness"].Count != sum.Merges {
		t.Fatalf("staleness histogram count = %d, merges = %d",
			snap.Histograms["staleness"].Count, sum.Merges)
	}
}

// TestTraceChromeExport runs a traced experiment through the Chrome
// exporter and checks the result is valid trace_event JSON.
func TestTraceChromeExport(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig(ROG, 4)
	tr := obs.NewChromeTracer(&buf)
	cfg.Trace = tr
	if _, err := Run(cfg, newTestWorkload(3, 11)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome trace is not valid JSON (%d bytes)", buf.Len())
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var spans, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %q for %q", e.Ph, e.Name)
		}
	}
	if spans == 0 || instants == 0 {
		t.Fatalf("chrome trace has %d spans, %d instants; want both > 0", spans, instants)
	}
}

// TestTraceChurnEventsMatchCounters crashes and rejoins a worker under
// tracing: Detach/Reconnect/Resync events must agree with Result.Churn
// and the stall/churn pairing rules must hold.
func TestTraceChurnEventsMatchCounters(t *testing.T) {
	var buf bytes.Buffer
	cfg := churnConfig(ROG, 4, "crash:1@30+60")
	tr := obs.NewJSONLTracer(&buf)
	cfg.Trace = tr
	res, err := Run(cfg, newTestWorkload(3, 21))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.Aggregate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.PairErrors) != 0 {
		t.Fatalf("pairing violations: %v", sum.PairErrors)
	}
	if int(sum.Detaches) != res.Churn.Disconnects {
		t.Fatalf("trace detaches = %d, churn disconnects = %d", sum.Detaches, res.Churn.Disconnects)
	}
	if int(sum.Reconnects) != res.Churn.Reconnects {
		t.Fatalf("trace reconnects = %d, churn reconnects = %d", sum.Reconnects, res.Churn.Reconnects)
	}
	if int(sum.ResyncRows) != res.Churn.RowsResynced {
		t.Fatalf("trace resync rows = %d, churn rows = %d", sum.ResyncRows, res.Churn.RowsResynced)
	}
	if sum.Detaches == 0 || sum.Reconnects == 0 {
		t.Fatal("churn run traced no detach/reconnect events")
	}
}

// TestTraceDisabledRunsUnchanged re-runs the same seeded experiment with
// and without tracing: the probe must be purely observational.
func TestTraceDisabledRunsUnchanged(t *testing.T) {
	plain, err := Run(testConfig(ROG, 4), newTestWorkload(3, 11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := testConfig(ROG, 4)
	cfg.Trace = obs.NewJSONLTracer(&buf)
	cfg.Metrics = obs.NewRegistry()
	traced, err := Run(cfg, newTestWorkload(3, 11))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Iterations != traced.Iterations ||
		plain.Composition != traced.Composition ||
		plain.TotalJoules != traced.TotalJoules ||
		plain.FinalValue != traced.FinalValue {
		t.Fatalf("tracing perturbed the run: %+v vs %+v", plain, traced)
	}
}
