package core

import (
	"rog/internal/engine"
	"rog/internal/obs"
	"rog/internal/simnet"
	"rog/internal/trace"
)

// aggTier is the edge-aggregation layer between the robots and the root
// parameter server (Config.Aggregators). Fleet-scale deployments cannot
// point hundreds of radios at one access point; instead the N workers are
// split into contiguous groups of ~N/M robots, each served by one of M
// edge aggregators (a roadside unit or a better-connected robot). A push
// now takes two hops: the robot's own radio carries the row to its
// aggregator (the existing per-worker channel — that contention is why the
// tier exists), and the aggregator forwards it to the root over a
// dedicated backhaul uplink.
//
// The aggregator pre-combines: while its uplink is busy, newly arrived
// rows for the same unit are summed element-wise and their version stamps
// concatenated, so one uplink flow delivers the combined contribution of
// every robot that pushed that unit in the interim. Summing commutes with
// the root's shrink-to-attached averaging (Merge scales each contribution
// by 1/attached, and (a+b)·inv = a·inv + b·inv up to float re-association),
// so the converged math is the paradigm's.
//
// Staleness safety: a forwarded row carries the stamp (worker, iter) of
// every originating push, and engine.State.MergeCombined advances each
// worker's per-unit version exactly as the direct path would. The RSP gate
// is checked against root state, so a row parked in an aggregator queue
// can only delay its own worker (the gate stays conservative); the
// observed lead of any merge still obeys the bound, because a worker at
// iteration n passed CanAdvance(n-1) when the version floor was no higher
// than it is at merge time. Result.MaxStaleness reports the empirical
// maximum for the fleet experiment to assert on.
//
// Pulls are not aggregated: averaged rows are per-worker state (error
// feedback makes every copy different), so they keep the direct
// root→worker path.
type aggTier struct {
	c    *cluster
	up   *simnet.Channel // M backhaul uplinks, one device per aggregator
	aggs []*aggregator
}

// aggregator is one edge node: a coalescing queue and a busy flag for its
// single in-flight uplink flow.
type aggregator struct {
	id    int
	queue map[int]*aggRow // unit → pending combined row
	order []int           // units in first-arrival order (deterministic flush)
	busy  bool
	// flowSeq counts this aggregator's uplink flows — the correlation id on
	// its RowsSent events. Incremented unconditionally (pure memory) so
	// traced and untraced runs stay bit-identical.
	flowSeq int64
}

// aggRow is a pending combined row: the element-wise sum of every queued
// push of one unit, plus the version stamp of each contributing push.
type aggRow struct {
	unit   int
	vals   []float32
	stamps []engine.Stamp
}

// newAggTier builds the tier. Uplink traces draw from the same environment
// distribution as the robot links but from an independent seed stream — a
// backhaul fades too, just not in lockstep with any robot.
func newAggTier(c *cluster) *aggTier {
	m := c.cfg.Aggregators
	links := make([]*trace.Trace, m)
	for a := range links {
		links[a] = trace.GenerateEnv(c.cfg.Env, 300, c.cfg.Seed*7919+uint64(a)+1)
	}
	t := &aggTier{
		c:  c,
		up: simnet.NewChannel(c.k, links, c.ch.Scale),
	}
	for a := 0; a < m; a++ {
		t.aggs = append(t.aggs, &aggregator{id: a, queue: make(map[int]*aggRow)})
	}
	return t
}

// aggOf maps a worker to its aggregator: contiguous balanced groups, the
// same arithmetic rowsync.ShardMap uses for unit ranges.
func (t *aggTier) aggOf(w int) int {
	return w * len(t.aggs) / t.c.cfg.Workers
}

// enqueue accepts worker w's decoded row for unit u at local iteration n.
// vals is borrowed (the cluster's decode scratch) and copied here.
func (t *aggTier) enqueue(w, u int, vals []float32, n int64) {
	a := t.aggs[t.aggOf(w)]
	r := a.queue[u]
	if r == nil {
		r = &aggRow{unit: u, vals: append([]float32(nil), vals...)}
		a.queue[u] = r
		a.order = append(a.order, u)
	} else {
		for i, v := range vals {
			r.vals[i] += v
		}
	}
	r.stamps = append(r.stamps, engine.Stamp{Worker: w, Iter: n})
	t.flush(a)
}

// flush starts the next uplink flow if the aggregator is idle and has
// queued rows. The whole queue ships as one flow (its rows were coalesced
// while the previous flow drained); on completion the combined rows merge
// into the root state and any workers parked on the RSP gate re-check.
func (t *aggTier) flush(a *aggregator) {
	if a.busy || len(a.order) == 0 {
		return
	}
	rows := make([]*aggRow, 0, len(a.order))
	var bytes float64
	for _, u := range a.order {
		rows = append(rows, a.queue[u])
		bytes += float64(t.c.part.WireSize(u))
	}
	a.queue = make(map[int]*aggRow, len(rows))
	a.order = a.order[:0]
	a.busy = true
	a.flowSeq++
	seq := a.flowSeq
	start := t.c.k.Now()
	t.up.StartFlow(a.id, bytes, func() {
		for _, r := range rows {
			t.c.state.MergeCombined(r.unit, r.vals, r.stamps)
		}
		// The backhaul hop is infrastructure time, not any robot's radio:
		// the negative worker id routes it to the critical-path analyzer's
		// infra bucket instead of a worker's comm segment.
		t.c.probe.RowsSent(-(a.id + 1), 0, seq, obs.DirPush, len(rows), bytes,
			t.c.k.Now()-start, false)
		a.busy = false
		t.c.state.WakeWaiters(t.c.k.Now())
		t.flush(a)
	})
}
