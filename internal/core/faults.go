package core

import (
	"rog/internal/energy"
	"rog/internal/simnet"
)

// This file is the membership layer of the simulated cluster: it binds the
// simnet fault injector's crash/rejoin events to the VersionStore's
// Detach/Attach protocol, so every driver survives worker dropout the same
// way the live parameter server does.
//
// Semantics:
//   - A crash takes effect immediately for membership (the worker's rows
//     stop pinning the RSP minimum and parked survivors are re-evaluated)
//     but in-flight events of the crashed worker complete — its abandoned
//     iteration simply never finishes, so the crash lands at an iteration
//     boundary from the driver's point of view.
//   - Gradient averaging keeps folding survivor pushes into the crashed
//     worker's server-side copy, which therefore accumulates exactly the
//     state a rejoin must replay.
//   - A rejoin re-attaches the worker (rows re-baselined at the surviving
//     minimum), transmits the accumulated rows over the worker's link as a
//     single resync flow, fast-forwards the worker's iteration counters to
//     the baseline, and restarts its driver loop.
//
// Link faults (blackout, flap) bypass this file entirely: the injector
// drives Channel.SetLinkDown and the fluid-flow model stalls/resumes the
// affected flows. The worker stays attached — RSP's own staleness control
// is what bounds the damage, which is exactly the behaviour the churn
// experiment measures.

// installFaults schedules cfg.Faults against this cluster's kernel.
func (c *cluster) installFaults() error {
	inj := simnet.NewInjector(c.k, c.ch)
	inj.OnCrash = c.crashWorker
	inj.OnRejoin = c.rejoinWorker
	inj.OnServerCrash = c.crashServer
	inj.OnServerRestart = c.restartServer
	return inj.Install(c.cfg.Faults)
}

// crashWorker detaches worker w at the current virtual instant.
func (c *cluster) crashWorker(w int) {
	if c.crashed[w] {
		return
	}
	c.crashed[w] = true
	c.state.Detach(w)
	c.probe.Detach(w, c.iter[w], "crash")
	// The ghost itself must not resume; survivors it was blocking re-check
	// their staleness predicate now, and any wait the detach releases is
	// churn-attributable stall.
	c.state.DropWaiter(w)
	c.state.WakeWaitersDetach(c.k.Now())
}

// rejoinWorker re-admits worker w: membership first (so the staleness
// bound holds from this instant), then the resync transmission, then the
// driver restart.
func (c *cluster) rejoinWorker(w int) {
	if !c.crashed[w] {
		return
	}
	base := c.state.Attach(w)
	// Fast-forward the worker's counters to the baseline: its next
	// iteration must version-stamp rows above every re-baselined entry.
	if c.iter[w] < base {
		c.iter[w] = base
	}
	for u := range c.pushIter[w] {
		if c.pushIter[w][u] < base {
			c.pushIter[w][u] = base
		}
	}
	// The rejoin resync: every averaged row that accumulated while the
	// worker was away rides one flow over its (possibly still weak) link.
	units := c.state.Backlog(w)
	var bytes float64
	for _, u := range units {
		bytes += float64(c.part.WireSize(u))
	}
	c.state.AddRowsResynced(len(units))
	c.probe.Reconnect(w, base)
	c.probe.Resync(w, len(units), bytes)
	c.crashed[w] = false
	start := c.k.Now()
	c.ch.StartFlow(w, bytes, func() {
		for _, u := range units {
			c.deliverPull(w, u)
		}
		c.meters[w].Add(energy.Communicate, c.k.Now()-start)
		if c.resumeFn != nil {
			c.resumeFn(w)
		}
	})
}
