package core

import (
	"bytes"
	"testing"

	"rog/internal/lossnet"
	"rog/internal/obs"
)

// lossConfig is testConfig plus a 5% Gilbert–Elliott loss channel — the
// acceptance schedule of the loss-tolerant transport.
func lossConfig(s Strategy, threshold int, rel lossnet.Reliability) Config {
	cfg := testConfig(s, threshold)
	cfg.Loss = lossnet.Spec{Kind: "ge", Rate: 0.05, Burst: 8}
	cfg.Reliability = rel
	return cfg
}

// TestROGSelectiveRSPBoundUnderLoss is the correctness half of the
// acceptance criteria: with 5% bursty loss and selective reliability, the
// RSP staleness bound must hold at every kernel event, no row may starve
// (the Must prefix — which carries RSP-forced rows — is the reliable
// class, so loss can delay but never skip them), and the workload must
// still complete.
func TestROGSelectiveRSPBoundUnderLoss(t *testing.T) {
	cfg := lossConfig(ROG, 4, lossnet.Selective)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	wl := newTestWorkload(3, 6)
	c := newCluster(cfg, wl)
	c.checkpoint()
	c.start()
	for c.k.Step() {
		if ahead := c.versions.MaxAhead(); ahead > int64(cfg.Threshold) {
			t.Fatalf("RSP bound violated under loss: %d > %d", ahead, cfg.Threshold)
		}
	}
	if c.iter[0] != int64(cfg.MaxIterations) {
		t.Fatalf("worker0 completed %d of %d iterations under loss", c.iter[0], cfg.MaxIterations)
	}
	for w := 0; w < cfg.Workers; w++ {
		for u := 0; u < c.part.NumUnits(); u++ {
			if lag := c.iter[w] - c.pushIter[w][u]; lag >= int64(cfg.Threshold) {
				t.Fatalf("worker %d unit %d starved under loss: lag %d", w, u, lag)
			}
		}
	}
	if !c.state.Loss.Enabled() {
		t.Fatal("5% loss schedule left no trace in the loss stats")
	}
	if c.state.Loss.RowsLostFolded == 0 {
		t.Fatal("selective reliability never folded a best-effort row at 5% loss")
	}
}

// TestSelectiveBeatsAllReliable is the performance half: same workload,
// same seed, same loss schedule — selective reliability must spend
// strictly fewer retransmitted bytes than all-reliable mode, because only
// the Must prefix retransmits.
func TestSelectiveBeatsAllReliable(t *testing.T) {
	sel, err := Run(lossConfig(ROG, 4, lossnet.Selective), newTestWorkload(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	all, err := Run(lossConfig(ROG, 4, lossnet.AllReliable), newTestWorkload(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Iterations != all.Iterations {
		t.Fatalf("modes completed different workloads: %d vs %d iterations", sel.Iterations, all.Iterations)
	}
	if all.Loss.RetransmitBytes == 0 {
		t.Fatal("all-reliable mode retransmitted nothing at 5% loss")
	}
	if sel.Loss.RetransmitBytes >= all.Loss.RetransmitBytes {
		t.Fatalf("selective retransmitted %.0f bytes, all-reliable %.0f — selective must be strictly cheaper",
			sel.Loss.RetransmitBytes, all.Loss.RetransmitBytes)
	}
	if sel.Loss.RowsLostFolded == 0 {
		t.Fatal("selective mode folded no rows")
	}
	if all.Loss.RowsLostFolded != 0 {
		t.Fatalf("all-reliable mode folded %d rows — everything should retransmit", all.Loss.RowsLostFolded)
	}
}

// TestBSPAllReliableUnderLoss pins the baseline behaviour the harness
// experiment contrasts against: BSP's whole-model plans have no
// best-effort class, so every lost row costs a retransmission round and
// nothing folds back.
func TestBSPUnderLoss(t *testing.T) {
	res, err := Run(lossConfig(BSP, 0, lossnet.Selective), newTestWorkload(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 30 {
		t.Fatalf("BSP under loss completed %d iterations", res.Iterations)
	}
	if res.Loss.RowsRetransmitted == 0 {
		t.Fatal("BSP retransmitted nothing at 5% loss")
	}
	if res.Loss.RowsLostFolded != 0 {
		t.Fatalf("BSP folded %d rows — whole-model plans are fully reliable", res.Loss.RowsLostFolded)
	}
}

// TestLosslessPathUntouched guards the baseline: a zero Loss spec must
// leave results bit-identical to a build without any loss machinery, which
// the shared RNG streams guarantee only if no extra draws happen.
func TestLosslessPathUntouched(t *testing.T) {
	a, err := Run(testConfig(ROG, 4), newTestWorkload(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if a.Loss.Enabled() {
		t.Fatalf("lossless run recorded loss stats: %+v", a.Loss)
	}
}

// traceLossyRun executes one seeded lossy run with the JSONL tracer
// attached and returns the raw trace bytes.
func traceLossyRun(t *testing.T, rel lossnet.Reliability) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewJSONLTracer(&buf)
	cfg := lossConfig(ROG, 4, rel)
	cfg.Trace = tr
	if _, err := Run(cfg, newTestWorkload(3, 6)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLossyRunDeterministic is the reproducibility acceptance criterion:
// same seed + same loss schedule ⇒ bit-identical runs, asserted on the
// full event trace.
func TestLossyRunDeterministic(t *testing.T) {
	a := traceLossyRun(t, lossnet.Selective)
	b := traceLossyRun(t, lossnet.Selective)
	if !bytes.Equal(a, b) {
		t.Fatalf("seeded lossy runs diverged: %d vs %d trace bytes", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
}

// TestLossTracePairing runs the aggregation over a lossy trace and checks
// the structural invariant: every best-effort gap folded back, every
// reliable loss retransmitted — and the trace totals agree with the
// Result counters.
func TestLossTracePairing(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewJSONLTracer(&buf)
	cfg := lossConfig(ROG, 4, lossnet.Selective)
	cfg.Trace = tr
	res, err := Run(cfg, newTestWorkload(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.Aggregate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range sum.PairErrors {
		t.Errorf("pair error: %s", pe)
	}
	if sum.RowsLostFolded != int64(res.Loss.RowsLostFolded) {
		t.Fatalf("trace folded %d, result %d", sum.RowsLostFolded, res.Loss.RowsLostFolded)
	}
	if sum.RowsRetransmitted != int64(res.Loss.RowsRetransmitted) {
		t.Fatalf("trace retransmitted %d, result %d", sum.RowsRetransmitted, res.Loss.RowsRetransmitted)
	}
	if sum.RetransmitBytes != res.Loss.RetransmitBytes {
		t.Fatalf("trace retransmit bytes %.0f, result %.0f", sum.RetransmitBytes, res.Loss.RetransmitBytes)
	}
}

// TestLossConfigValidate pins the config-surface error paths.
func TestLossConfigValidate(t *testing.T) {
	cfg := testConfig(ROG, 4)
	cfg.Loss = lossnet.Spec{Kind: "ge", Rate: 0.9}
	if err := cfg.Validate(); err == nil {
		t.Fatal("rate 0.9 accepted")
	}
	cfg = testConfig(ROG, 4)
	cfg.Loss = lossnet.Spec{Kind: "trace"}
	if err := cfg.Validate(); err == nil {
		t.Fatal("trace loss without traces accepted")
	}
}
