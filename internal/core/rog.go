package core

import (
	"math"

	"rog/internal/atp"
	"rog/internal/simnet"
)

// minBudget floors the MTA-time budget so a transient zero-bandwidth
// estimate cannot collapse transmissions to nothing.
const minBudget = 0.05

// planContext carries one speculative transmission: the ranked unit plan
// and its cumulative wire sizes.
type planContext struct {
	plan   []int
	prefix []float64 // prefix[i] = bytes of plan[:i]; len = len(plan)+1
}

func (c *cluster) newPlan(plan []int) planContext {
	p := planContext{plan: plan, prefix: make([]float64, len(plan)+1)}
	for i, u := range plan {
		p.prefix[i+1] = p.prefix[i] + float64(c.part.WireSize(u))
	}
	return p
}

// deliveredCount maps bytes-on-the-wire to fully transmitted units: the
// in-flight unit at a timeout is discarded, exactly the speculative-
// transmission cost of Sec. III-A.
func (p planContext) deliveredCount(bytes float64) int {
	k := 0
	for k < len(p.plan) && p.prefix[k+1] <= bytes+1e-9 {
		k++
	}
	return k
}

// sendPlan transmits plan units in order on worker w's link: speculatively
// within `budget` seconds, but always completing the first mustCount units
// (Algo. 4 lines 3–7). deliver fires for each fully transmitted unit;
// done receives the delivered count, the (possibly estimated) time the
// first mustCount units took, and the total elapsed transmission time.
func (c *cluster) sendPlan(w int, pc planContext, mustCount int, budget float64, deliver func(u int), done func(delivered int, mtaTime, elapsed float64)) {
	if len(pc.plan) == 0 {
		c.k.After(0, func() { done(0, 0, 0) })
		return
	}
	if mustCount > len(pc.plan) {
		mustCount = len(pc.plan)
	}
	if budget < minBudget {
		budget = minBudget
	}
	if c.cfg.PerUnitCheckSeconds > 0 {
		c.sendPlanSequential(w, pc, mustCount, budget, deliver, done)
		return
	}
	start := c.k.Now()
	total := pc.prefix[len(pc.plan)]
	mustBytes := pc.prefix[mustCount]

	var timer *simnet.Timer
	var flow *simnet.Flow
	// StartFlow only schedules events; neither callback can fire until the
	// kernel processes the next event, so both captures are safe.
	flow = c.ch.StartFlow(w, total, func() {
		timer.Stop()
		for _, u := range pc.plan {
			deliver(u)
		}
		elapsed := c.k.Now() - start
		mta := elapsed
		if total > 0 {
			mta = elapsed * mustBytes / total
		}
		done(len(pc.plan), mta, elapsed)
	})
	timer = c.k.After(budget, func() {
		sent := c.ch.Cancel(flow)
		k := pc.deliveredCount(sent)
		for _, u := range pc.plan[:k] {
			deliver(u)
		}
		if k < mustCount {
			// Forced continuation: retransmit the discarded partial unit
			// and finish the MTA floor (Algo. 4 lines 4–7).
			remaining := mustBytes - pc.prefix[k]
			c.ch.StartFlow(w, remaining, func() {
				for _, u := range pc.plan[k:mustCount] {
					deliver(u)
				}
				elapsed := c.k.Now() - start
				done(mustCount, elapsed, elapsed)
			})
			return
		}
		mta := budget
		if sent > 0 {
			mta = budget * mustBytes / sent
		}
		done(k, mta, budget)
	})
}

// sendPlanSequential is the granularity-ablation path: a timeout judgement
// is inserted between every two unit transmissions (cost
// PerUnitCheckSeconds each) instead of speculating — the design the paper
// rejects in Sec. III-A for under-utilizing the channel.
func (c *cluster) sendPlanSequential(w int, pc planContext, mustCount int, budget float64, deliver func(u int), done func(delivered int, mtaTime, elapsed float64)) {
	start := c.k.Now()
	mtaTime := 0.0
	var next func(i int)
	next = func(i int) {
		elapsed := c.k.Now() - start
		if i == mustCount {
			mtaTime = elapsed
		}
		if i >= len(pc.plan) || (elapsed >= budget && i >= mustCount) {
			if i < mustCount {
				mtaTime = elapsed
			}
			done(i, mtaTime, elapsed)
			return
		}
		u := pc.plan[i]
		c.ch.StartFlow(w, float64(c.part.WireSize(u)), func() {
			deliver(u)
			// The inserted judgement: dead air before the next unit.
			c.k.After(c.cfg.PerUnitCheckSeconds, func() { next(i + 1) })
		})
	}
	next(0)
}

// runROG drives the paper's system: per-iteration speculative row pushes
// and pulls ordered by the ATP importance metric, bounded by the MTA-time
// budget, under RSP's two-level staleness control.
func (c *cluster) runROG() {
	waiters := c.waiters
	numUnits := c.part.NumUnits()
	mtaCount := int(math.Ceil(atp.MTA(c.cfg.Threshold) * float64(numUnits)))

	var startIter func(w int)
	startIter = func(w int) {
		if c.crashed[w] {
			return // rejoin restarts the loop via resumeFn
		}
		if c.shouldHalt(w) {
			c.halted[w] = true
			return
		}
		iterStart := c.k.Now()
		n := c.iter[w] + 1
		commSec := 0.0

		c.wl.ComputeGradients(w)
		c.snapshotInto(w)

		c.k.After(c.computeSecondsFor(w), func() {
			if c.crashed[w] {
				return // crashed during compute: the iteration is lost
			}
			// --- Push phase (Algo. 1 PushGradients + Algo. 3 worker mode).
			// Gradient magnitudes are normalized by their mean so the f1
			// term lives on the same O(1) scale as the staleness term,
			// keeping the paper's f1=f2=1 meaningful for any model.
			rows := make([]atp.RowInfo, numUnits)
			var meanSum float64
			for u := 0; u < numUnits; u++ {
				rows[u] = atp.RowInfo{ID: u, MeanAbs: c.local[w].MeanAbs(u), Iter: c.pushIter[w][u]}
				meanSum += rows[u].MeanAbs
			}
			if meanSum > 0 {
				norm := float64(numUnits) / meanSum
				for u := range rows {
					rows[u].MeanAbs *= norm
				}
			}
			ranked := atp.Rank(rows, atp.Worker, c.cfg.Coeff)
			// Within-worker RSP bound: rows whose staleness would reach the
			// threshold must go out this iteration, budget or not.
			var forced, rest []int
			for _, u := range ranked {
				if n-c.pushIter[w][u] >= int64(c.cfg.Threshold)-1 {
					forced = append(forced, u)
				} else {
					rest = append(rest, u)
				}
			}
			plan := append(forced, rest...)
			must := mtaCount
			if len(forced) > must {
				must = len(forced)
			}
			pc := c.newPlan(plan)
			pushStart := c.k.Now()
			c.sendPlan(w, pc, must, c.tracker.Budget(), func(u int) {
				c.deliverPush(w, u, n)
			}, func(delivered int, mtaTime, elapsed float64) {
				commSec += elapsed
				if must > 0 && mtaTime > 0 {
					c.tracker.Observe(w, mtaTime)
				}
				_ = pushStart
				if c.cfg.RecordMicro && w == 1 {
					var maxIt int64
					for _, it := range c.iter {
						if it > maxIt {
							maxIt = it
						}
					}
					stale := maxIt - (n - 1)
					if stale < 0 {
						stale = 0
					}
					c.micro = append(c.micro, MicroSample{
						Time:      c.k.Now(),
						LinkMbps:  c.ch.LinkMbps(w) / c.ch.Scale, // un-scaled trace value
						TxRate:    float64(delivered) / float64(numUnits),
						Staleness: stale,
					})
				}
				waiters.wake()

				// --- RSP server-side wait (Algo. 2 lines 7–9): worker r's
				// pull is served only when it is not ≥ threshold ahead of
				// the slowest row anywhere.
				pull := func() bool {
					if c.crashed[w] {
						return true // abandon: the crash ends the iteration
					}
					if n-c.versions.Min() >= int64(c.cfg.Threshold) {
						return false
					}
					c.pullROG(w, n, mtaCount, &commSec, func() {
						c.finishIteration(w, iterStart, commSec)
						startIter(w)
					})
					return true
				}
				if !pull() {
					waiters.park(w, c.k.Now(), pull)
				}
			})
		})
	}
	c.resumeFn = startIter
	for w := 0; w < c.cfg.Workers; w++ {
		startIter(w)
	}
}

// pullROG transmits the most important averaged rows from the server's
// per-worker copy to worker w (Algo. 2 lines 10–13, server mode of the
// importance metric: fresher rows first).
func (c *cluster) pullROG(w int, n int64, mtaCount int, commSec *float64, onDone func()) {
	var rows []atp.RowInfo
	var meanSum float64
	for u := 0; u < c.part.NumUnits(); u++ {
		ma := c.serverAcc[w].MeanAbs(u)
		if ma == 0 {
			continue // nothing accumulated for this row — skip
		}
		rows = append(rows, atp.RowInfo{ID: u, MeanAbs: ma, Iter: c.serverIter[u]})
		meanSum += ma
	}
	if meanSum > 0 {
		norm := float64(len(rows)) / meanSum
		for i := range rows {
			rows[i].MeanAbs *= norm
		}
	}
	plan := atp.Rank(rows, atp.Server, c.cfg.Coeff)
	must := mtaCount
	if must > len(plan) {
		must = len(plan)
	}
	pc := c.newPlan(plan)
	c.sendPlan(w, pc, must, c.tracker.Budget(), func(u int) {
		c.deliverPull(w, u)
	}, func(_ int, _, elapsed float64) {
		*commSec += elapsed
		onDone()
	})
}
