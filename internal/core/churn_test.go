package core

import (
	"testing"

	"rog/internal/simnet"
)

// churnConfig is testConfig with a crash/rejoin cycle and a time cap: one
// worker crashes a few iterations in and rejoins half a virtual minute
// later.
func churnConfig(s Strategy, threshold int, spec string) Config {
	cfg := testConfig(s, threshold)
	faults, err := simnet.ParseFaultSchedule(spec)
	if err != nil {
		panic(err)
	}
	cfg.Faults = faults
	cfg.MaxIterations = 25
	cfg.MaxVirtualSeconds = 1200
	return cfg
}

// TestChurnSurvivorsKeepTraining crashes one worker mid-run for every
// strategy: the run must terminate, the survivors must keep iterating well
// past the crash, and the churn counters must record both the detach and
// the rejoin.
func TestChurnSurvivorsKeepTraining(t *testing.T) {
	for _, s := range []Strategy{BSP, SSP, FLOWN, ROG} {
		res, err := Run(churnConfig(s, 4, "crash:1@30+60"), newTestWorkload(3, 21))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Iterations < 15 {
			t.Errorf("%v: worker 0 completed only %d iterations under churn", s, res.Iterations)
		}
		if res.Churn.Disconnects != 1 || res.Churn.Reconnects != 1 {
			t.Errorf("%v: churn counters %+v, want 1 disconnect / 1 reconnect", s, res.Churn)
		}
		if res.Churn.RowsResynced == 0 {
			t.Errorf("%v: rejoin resynced no rows", s)
		}
	}
}

// TestChurnPermanentCrash removes a worker for good: the survivors must not
// deadlock on the ghost's frozen rows, for the barrier strategy and the
// staleness-bounded ones alike.
func TestChurnPermanentCrash(t *testing.T) {
	for _, s := range []Strategy{BSP, SSP, ROG} {
		res, err := Run(churnConfig(s, 4, "crash:2@30"), newTestWorkload(3, 23))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Iterations < 15 {
			t.Errorf("%v: survivors stalled at %d iterations after a permanent crash", s, res.Iterations)
		}
		if res.Churn.Disconnects != 1 || res.Churn.Reconnects != 0 {
			t.Errorf("%v: churn counters %+v, want 1 disconnect / 0 reconnects", s, res.Churn)
		}
	}
}

// TestChurnRSPBoundHolds replays the ROG staleness invariant under churn:
// at no point may an attached worker's row lead the active minimum by the
// threshold or more. (MaxAhead is checked continuously via the versions
// store after the run; the store panics on monotonicity violations during
// it, so a rejoin that rewound versions would abort the test.)
func TestChurnRSPBoundHolds(t *testing.T) {
	const threshold = 4
	res, err := Run(churnConfig(ROG, threshold, "crash:1@25+40,crash:2@90+30"), newTestWorkload(3, 25))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 10 {
		t.Fatalf("run barely progressed: %d iterations", res.Iterations)
	}
	if res.Churn.Disconnects != 2 || res.Churn.Reconnects != 2 {
		t.Fatalf("churn counters %+v", res.Churn)
	}
}

// TestChurnBlackoutRunsThrough injects a link blackout (no membership
// change): the worker stays attached, RSP absorbs the outage, and the run
// completes. A flapping link must behave the same.
func TestChurnBlackoutRunsThrough(t *testing.T) {
	for _, spec := range []string{"blackout:0@20+15", "flap:0@20+30/5"} {
		res, err := Run(churnConfig(ROG, 4, spec), newTestWorkload(3, 27))
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if res.Iterations < 15 {
			t.Errorf("%s: completed only %d iterations", spec, res.Iterations)
		}
		if res.Churn.Disconnects != 0 {
			t.Errorf("%s: link fault was miscounted as a membership change: %+v", spec, res.Churn)
		}
	}
}

// TestChurnDeterminism reruns an identical fault schedule: virtual-time
// fault injection must replay bit-for-bit.
func TestChurnDeterminism(t *testing.T) {
	for _, s := range []Strategy{SSP, ROG} {
		a, err := Run(churnConfig(s, 4, "crash:1@30+60,blackout:0@50+20"), newTestWorkload(3, 29))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(churnConfig(s, 4, "crash:1@30+60,blackout:0@50+20"), newTestWorkload(3, 29))
		if err != nil {
			t.Fatal(err)
		}
		if a.TotalJoules != b.TotalJoules || a.Iterations != b.Iterations || a.FinalValue != b.FinalValue {
			t.Fatalf("%v churn run not deterministic: %v/%d/%v vs %v/%d/%v", s,
				a.TotalJoules, a.Iterations, a.FinalValue, b.TotalJoules, b.Iterations, b.FinalValue)
		}
		if a.Churn != b.Churn {
			t.Fatalf("%v churn counters not deterministic: %+v vs %+v", s, a.Churn, b.Churn)
		}
	}
}
