package core

import (
	"rog/internal/atp"
	"rog/internal/engine"
	"rog/internal/obs"
)

// This file is the asynchronous driver loop shared by every non-barrier,
// non-pipelined policy (SSP, FLOWN, ROG, DSSP): compute → plan → push →
// staleness gate → plan → pull → next iteration, with every decision —
// what to transmit, whether to skip, when to advance — delegated to the
// engine policy. The loop owns only simnet mechanics: flows, timers, the
// waiter list and the energy/stall accounting.

// pushView assembles the policy's worker-side view for iteration n.
func (c *cluster) pushView(w int, n int64) engine.PushView {
	rows := make([]atp.RowInfo, c.part.NumUnits())
	for u := range rows {
		rows[u] = atp.RowInfo{ID: u, MeanAbs: c.local[w].MeanAbs(u), Iter: c.pushIter[w][u]}
	}
	return engine.PushView{
		Worker: w,
		Iter:   n,
		Rows:   rows,
		Min:    c.versions.Min(),
		Budget: c.state.Tracker.Budget(),
	}
}

func (c *cluster) wireSize(u int) float64 { return float64(c.part.WireSize(u)) }

// transmitPush moves one push plan over worker w's link: speculatively
// under the MTA budget when the plan says so, or as a single whole-plan
// flow. done receives the delivered unit count, the (possibly estimated)
// MTA time and the elapsed transmission time.
func (c *cluster) transmitPush(w int, n int64, plan engine.Plan, done func(delivered int, mtaTime, elapsed float64)) {
	c.planSeq[w]++
	seq := c.planSeq[w]
	// Seed the engine state's per-worker plan seq so the Merge events this
	// push produces carry the same correlation id (no-op when tracing is
	// off).
	c.state.NotePushSeq(w, seq)
	ap := atp.NewPlanObserved(plan.Units, c.wireSize, c.probe)
	c.probe.PushPlanned(w, n, seq, len(ap.Units), plan.Must,
		c.part.NumUnits()-len(ap.Units), ap.TotalBytes(), plan.Speculative, "")
	deliver := func(u int) { c.deliverPush(w, u, n) }
	finish := func(delivered int, mtaTime, elapsed float64) {
		c.probe.RowsSent(w, n, seq, obs.DirPush, delivered, ap.Prefix[delivered], elapsed, plan.Speculative)
		done(delivered, mtaTime, elapsed)
	}
	if f := c.newLossFilter(w, n, obs.DirPush, plan, deliver); f != nil {
		deliver = f.filterDeliver
		inner := finish
		finish = func(delivered int, mtaTime, elapsed float64) {
			f.drain(func(retrans float64) {
				// Retransmission rounds extend the transmission: the MTA
				// report (what the straggler tracker sees) and the comm time
				// both include them — loss slows the link, visibly.
				inner(delivered, mtaTime+retrans, elapsed+retrans)
			})
		}
	}
	if plan.Speculative {
		c.sendPlan(w, ap, plan.Must, c.state.Tracker.Budget(), deliver, finish)
		return
	}
	start := c.k.Now()
	c.ch.StartFlow(w, ap.TotalBytes(), func() {
		elapsed := c.k.Now() - start
		for _, u := range plan.Units {
			deliver(u)
		}
		finish(len(plan.Units), elapsed, elapsed)
	})
}

// transmitPull moves one pull plan of worker w's iteration n and reports
// the elapsed transmission time.
func (c *cluster) transmitPull(w int, n int64, plan engine.Plan, done func(elapsed float64)) {
	seq := c.planSeq[w] // the pull completes the push plan's iteration
	ap := atp.NewPlanObserved(plan.Units, c.wireSize, c.probe)
	deliver := func(u int) { c.deliverPull(w, u) }
	finish := func(delivered int, elapsed float64) {
		c.probe.RowsSent(w, n, seq, obs.DirPull, delivered, ap.Prefix[delivered], elapsed, plan.Speculative)
		done(elapsed)
	}
	if f := c.newLossFilter(w, n, obs.DirPull, plan, deliver); f != nil {
		deliver = f.filterDeliver
		inner := finish
		finish = func(delivered int, elapsed float64) {
			f.drain(func(retrans float64) { inner(delivered, elapsed+retrans) })
		}
	}
	if plan.Speculative {
		c.sendPlan(w, ap, plan.Must, c.state.Tracker.Budget(), deliver,
			func(delivered int, _, elapsed float64) {
				finish(delivered, elapsed)
			})
		return
	}
	start := c.k.Now()
	c.ch.StartFlow(w, ap.TotalBytes(), func() {
		for _, u := range plan.Units {
			deliver(u)
		}
		finish(len(plan.Units), c.k.Now()-start)
	})
}

// recordMicro appends one Fig. 8 sample for the observed worker.
func (c *cluster) recordMicro(w int, n int64, delivered int) {
	if !c.cfg.RecordMicro || w != 1 {
		return
	}
	var maxIt int64
	for _, it := range c.iter {
		if it > maxIt {
			maxIt = it
		}
	}
	stale := maxIt - (n - 1)
	if stale < 0 {
		stale = 0
	}
	c.micro = append(c.micro, MicroSample{
		Time:      c.k.Now(),
		LinkMbps:  c.ch.LinkMbps(w) / c.ch.Scale, // un-scaled trace value
		TxRate:    float64(delivered) / float64(c.part.NumUnits()),
		Staleness: stale,
	})
}

// parkStalled parks worker w's gate predicate on the waiter list with the
// stall interval traced: StallBegin at the park, StallEnd when the retried
// predicate finally succeeds. A predicate dropped by a crash leaves its
// interval open — the aggregation tolerates an unclosed stall (the run
// ended, or membership ended it).
func (c *cluster) parkStalled(w int, n int64, pull func() bool) {
	start := c.k.Now()
	if c.probe == nil {
		c.state.ParkWaiter(w, start, pull)
		return
	}
	// Causal attribution: StallBegin names the (worker, unit, version)
	// currently pinning the RSP gate's version floor; StallEnd names the
	// merge that last advanced the floor — the release that let the
	// predicate pass.
	seq := c.planSeq[w]
	c.probe.StallBegin(w, n, seq, "gate", c.state.MinBlocker())
	c.state.ParkWaiter(w, start, func() bool {
		if !pull() {
			return false
		}
		c.probe.StallEnd(w, n, seq, "gate", c.k.Now()-start, c.state.LastRelease())
		return true
	})
}

// runAsync drives independent workers: each computes, pushes what the
// policy plans, waits out the staleness gate (parked on the waiter list so
// version advances and detaches re-evaluate it), pulls what the server
// plans, and loops.
func (c *cluster) runAsync() {
	var startIter func(w int)
	startIter = func(w int) {
		if c.crashed[w] {
			return // rejoin restarts the loop via resumeFn
		}
		if c.shouldHalt(w) {
			c.halted[w] = true
			return
		}
		iterStart := c.k.Now()
		n := c.iter[w] + 1
		commSec := 0.0
		c.probe.IterStart(w, n)

		c.wl.ComputeGradients(w)
		c.snapshotInto(w)

		c.k.After(c.computeSecondsFor(w), func() {
			if c.crashed[w] {
				return // crashed during compute: the iteration is lost
			}
			plan := c.policy.PlanPush(c.pushView(w, n))
			if plan.Skip {
				// The scheduler (FLOWN) sat this one out: local gradients
				// keep accumulating, nothing moves.
				c.planSeq[w]++
				c.probe.PushPlanned(w, n, c.planSeq[w], 0, 0, c.part.NumUnits(), 0, false, "skip")
				c.finishIteration(w, iterStart, 0)
				startIter(w)
				return
			}
			c.transmitPush(w, n, plan, func(delivered int, mtaTime, elapsed float64) {
				commSec += elapsed
				c.state.ObservePush(w, n, mtaTime, elapsed, plan.Speculative)
				c.recordMicro(w, n, delivered)
				c.state.WakeWaiters(c.k.Now())

				pull := func() bool {
					if c.crashed[w] {
						return true // abandon: the crash ends the iteration
					}
					if !c.state.CanAdvance(n) {
						return false
					}
					c.transmitPull(w, n, c.state.PlanPull(w, n), func(elapsed float64) {
						commSec += elapsed
						c.finishIteration(w, iterStart, commSec)
						startIter(w)
					})
					return true
				}
				if !pull() {
					c.parkStalled(w, n, pull)
				}
			})
		})
	}
	c.resumeFn = startIter
	for w := 0; w < c.cfg.Workers; w++ {
		startIter(w)
	}
}
