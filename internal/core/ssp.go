package core

// waitList holds workers blocked on the staleness predicate, with the
// check to re-evaluate whenever server versions advance.
type waitList struct {
	pending map[int]func() bool // worker → "try to resume; true if resumed"
}

func newWaitList() *waitList { return &waitList{pending: make(map[int]func() bool)} }

// park registers worker w's retry closure.
func (wl *waitList) park(w int, retry func() bool) { wl.pending[w] = retry }

// wake retries every parked worker; resumed ones are removed.
func (wl *waitList) wake() {
	for w, retry := range wl.pending {
		if retry() {
			delete(wl.pending, w)
		}
	}
}

// runSSP drives Stale Synchronous Parallel: workers proceed independently,
// pushing and pulling whole models each iteration; a worker entering
// iteration n is blocked while n − min(clock) ≥ threshold. Small thresholds
// keep statistical efficiency but stall under bandwidth fades; large ones
// trade accuracy-per-iteration for speed (paper Fig. 1).
func (c *cluster) runSSP() {
	waiters := newWaitList()
	var startIter func(w int)

	startIter = func(w int) {
		if c.shouldHalt(w) {
			c.halted[w] = true
			return
		}
		iterStart := c.k.Now()
		n := c.iter[w] + 1
		commSec := 0.0

		c.wl.ComputeGradients(w)
		c.snapshotInto(w)

		c.k.After(c.computeSecondsFor(w), func() {
			pushStart := c.k.Now()
			c.ch.StartFlow(w, float64(c.part.TotalWireSize()), func() {
				commSec += c.k.Now() - pushStart
				for u := 0; u < c.part.NumUnits(); u++ {
					c.deliverPush(w, u, n)
				}
				waiters.wake()

				pull := func() bool {
					// SSP condition: too far ahead of the slowest clock?
					if n-c.versions.Min() >= int64(c.cfg.Threshold) {
						return false
					}
					pullStart := c.k.Now()
					c.ch.StartFlow(w, float64(c.part.TotalWireSize()), func() {
						commSec += c.k.Now() - pullStart
						for u := 0; u < c.part.NumUnits(); u++ {
							c.deliverPull(w, u)
						}
						c.finishIteration(w, iterStart, commSec)
						startIter(w)
					})
					return true
				}
				if !pull() {
					waiters.park(w, pull)
				}
			})
		})
	}
	for w := 0; w < c.cfg.Workers; w++ {
		startIter(w)
	}
}
