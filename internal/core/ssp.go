package core

import "sort"

// waitList holds workers blocked on the staleness predicate, with the
// check to re-evaluate whenever server versions advance. Park times are
// recorded so a wake triggered by a membership detach can attribute the
// released stall to churn.
type waitList struct {
	pending  map[int]func() bool // worker → "try to resume; true if resumed"
	parkedAt map[int]float64     // worker → virtual time it parked
}

func newWaitList() *waitList {
	return &waitList{pending: make(map[int]func() bool), parkedAt: make(map[int]float64)}
}

// park registers worker w's retry closure, stamped with the current time.
func (wl *waitList) park(w int, now float64, retry func() bool) {
	wl.pending[w] = retry
	wl.parkedAt[w] = now
}

// drop discards worker w's parked retry without running it (the worker
// crashed while blocked; a ghost must not resume).
func (wl *waitList) drop(w int) {
	delete(wl.pending, w)
	delete(wl.parkedAt, w)
}

// wake retries every parked worker; resumed ones are removed. Workers are
// retried in index order so the resulting event sequence is deterministic.
func (wl *waitList) wake() { wl.wakeAttributing(0, nil) }

// wakeAttributing is wake with churn accounting: when stall is non-nil,
// each resumed worker adds its time-parked to *stall (the caller passes the
// churn counter when the wake was caused by a detach).
func (wl *waitList) wakeAttributing(now float64, stall *float64) {
	workers := make([]int, 0, len(wl.pending))
	for w := range wl.pending {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for _, w := range workers {
		if wl.pending[w]() {
			if stall != nil {
				*stall += now - wl.parkedAt[w]
			}
			wl.drop(w)
		}
	}
}

// runSSP drives Stale Synchronous Parallel: workers proceed independently,
// pushing and pulling whole models each iteration; a worker entering
// iteration n is blocked while n − min(clock) ≥ threshold. Small thresholds
// keep statistical efficiency but stall under bandwidth fades; large ones
// trade accuracy-per-iteration for speed (paper Fig. 1).
func (c *cluster) runSSP() {
	waiters := c.waiters
	var startIter func(w int)

	startIter = func(w int) {
		if c.crashed[w] {
			return // rejoin restarts the loop via resumeFn
		}
		if c.shouldHalt(w) {
			c.halted[w] = true
			return
		}
		iterStart := c.k.Now()
		n := c.iter[w] + 1
		commSec := 0.0

		c.wl.ComputeGradients(w)
		c.snapshotInto(w)

		c.k.After(c.computeSecondsFor(w), func() {
			if c.crashed[w] {
				return // crashed during compute: the iteration is lost
			}
			pushStart := c.k.Now()
			c.ch.StartFlow(w, float64(c.part.TotalWireSize()), func() {
				commSec += c.k.Now() - pushStart
				for u := 0; u < c.part.NumUnits(); u++ {
					c.deliverPush(w, u, n)
				}
				waiters.wake()

				pull := func() bool {
					if c.crashed[w] {
						return true // abandon: the crash ends the iteration
					}
					// SSP condition: too far ahead of the slowest clock?
					if n-c.versions.Min() >= int64(c.cfg.Threshold) {
						return false
					}
					pullStart := c.k.Now()
					c.ch.StartFlow(w, float64(c.part.TotalWireSize()), func() {
						commSec += c.k.Now() - pullStart
						for u := 0; u < c.part.NumUnits(); u++ {
							c.deliverPull(w, u)
						}
						c.finishIteration(w, iterStart, commSec)
						startIter(w)
					})
					return true
				}
				if !pull() {
					waiters.park(w, c.k.Now(), pull)
				}
			})
		})
	}
	c.resumeFn = startIter
	for w := 0; w < c.cfg.Workers; w++ {
		startIter(w)
	}
}
