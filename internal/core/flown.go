package core

import "math"

// runFLOWN drives the dynamic-threshold scheduling baseline (after Chen et
// al. [19], the paper's strongest baseline). The scheduler estimates each
// worker's bandwidth from its most recent transmission and assigns a
// per-worker synchronization period: workers predicted slow sync less often
// (their staleness allowance grows), workers predicted fast sync every
// iteration. Scheduling is model-granular, so when the wireless bandwidth
// shifts *during* a transmission the schedule is already stale — the
// mismatch the paper blames for FLOWN's residual stall (Sec. I, Fig. 1).
func (c *cluster) runFLOWN() {
	waiters := c.waiters
	// Estimated bandwidth per worker (bytes/s on the shared channel),
	// seeded optimistically from the first links.
	estBw := make([]float64, c.cfg.Workers)
	for w := range estBw {
		estBw[w] = c.ch.LinkMbps(w) / float64(c.cfg.Workers) * 1e6 / 8
	}
	lastSync := make([]int64, c.cfg.Workers)

	// syncPeriod computes the worker's scheduled period τ_w ∈ [1, t−1]:
	// the slower the predicted transmission, the less often it syncs.
	syncPeriod := func(w int) int64 {
		tMax := 0.0
		for s := range estBw {
			if tt := float64(c.part.TotalWireSize()) / estBw[s]; tt > tMax {
				tMax = tt
			}
		}
		own := float64(c.part.TotalWireSize()) / estBw[w]
		if tMax <= 0 {
			return 1
		}
		tau := int64(math.Ceil(float64(c.cfg.Threshold) * own / tMax))
		if tau < 1 {
			tau = 1
		}
		if max := int64(c.cfg.Threshold - 1); tau > max {
			tau = max
		}
		return tau
	}

	var startIter func(w int)
	startIter = func(w int) {
		if c.crashed[w] {
			return // rejoin restarts the loop via resumeFn
		}
		if c.shouldHalt(w) {
			c.halted[w] = true
			return
		}
		iterStart := c.k.Now()
		n := c.iter[w] + 1
		commSec := 0.0

		c.wl.ComputeGradients(w)
		c.snapshotInto(w)

		c.k.After(c.computeSecondsFor(w), func() {
			if c.crashed[w] {
				return // crashed during compute: the iteration is lost
			}
			// Scheduling decision: skip synchronization this iteration if
			// the worker is inside its assigned period and skipping cannot
			// trip the global threshold.
			mustSync := n-lastSync[w] >= syncPeriod(w) ||
				n-c.versions.Min() >= int64(c.cfg.Threshold)-1
			if !mustSync {
				c.finishIteration(w, iterStart, 0)
				startIter(w)
				return
			}
			pushStart := c.k.Now()
			bytes := float64(c.part.TotalWireSize())
			c.ch.StartFlow(w, bytes, func() {
				dur := c.k.Now() - pushStart
				commSec += dur
				if dur > 0 {
					estBw[w] = bytes / dur // next iteration's (stale) estimate
				}
				for u := 0; u < c.part.NumUnits(); u++ {
					c.deliverPush(w, u, n)
				}
				lastSync[w] = n
				waiters.wake()

				pull := func() bool {
					if c.crashed[w] {
						return true // abandon: the crash ends the iteration
					}
					if n-c.versions.Min() >= int64(c.cfg.Threshold) {
						return false
					}
					pullStart := c.k.Now()
					c.ch.StartFlow(w, bytes, func() {
						commSec += c.k.Now() - pullStart
						for u := 0; u < c.part.NumUnits(); u++ {
							c.deliverPull(w, u)
						}
						c.finishIteration(w, iterStart, commSec)
						startIter(w)
					})
					return true
				}
				if !pull() {
					waiters.park(w, c.k.Now(), pull)
				}
			})
		})
	}
	c.resumeFn = startIter
	for w := 0; w < c.cfg.Workers; w++ {
		startIter(w)
	}
}
