package core

import (
	"rog/internal/atp"
	"rog/internal/simnet"
)

// minBudget floors the MTA-time budget so a transient zero-bandwidth
// estimate cannot collapse transmissions to nothing.
const minBudget = 0.05

// sendPlan transmits plan units in order on worker w's link: speculatively
// within `budget` seconds, but always completing the first mustCount units
// (Algo. 4 lines 3–7). deliver fires for each fully transmitted unit;
// done receives the delivered count, the (possibly estimated) time the
// first mustCount units took, and the total elapsed transmission time.
func (c *cluster) sendPlan(w int, ap atp.Plan, mustCount int, budget float64, deliver func(u int), done func(delivered int, mtaTime, elapsed float64)) {
	if len(ap.Units) == 0 {
		c.k.After(0, func() { done(0, 0, 0) })
		return
	}
	if mustCount > len(ap.Units) {
		mustCount = len(ap.Units)
	}
	if budget < minBudget {
		budget = minBudget
	}
	if c.cfg.PerUnitCheckSeconds > 0 {
		c.sendPlanSequential(w, ap, mustCount, budget, deliver, done)
		return
	}
	start := c.k.Now()
	total := ap.TotalBytes()
	mustBytes := ap.Prefix[mustCount]

	var timer *simnet.Timer
	var flow *simnet.Flow
	// StartFlow only schedules events; neither callback can fire until the
	// kernel processes the next event, so both captures are safe.
	flow = c.ch.StartFlow(w, total, func() {
		timer.Stop()
		for _, u := range ap.Units {
			deliver(u)
		}
		elapsed := c.k.Now() - start
		mta := elapsed
		if total > 0 {
			mta = elapsed * mustBytes / total
		}
		done(len(ap.Units), mta, elapsed)
	})
	timer = c.k.After(budget, func() {
		sent := c.ch.Cancel(flow)
		k := ap.DeliveredCount(sent)
		for _, u := range ap.Units[:k] {
			deliver(u)
		}
		if k < mustCount {
			// Forced continuation: retransmit the discarded partial unit
			// and finish the MTA floor (Algo. 4 lines 4–7).
			remaining := mustBytes - ap.Prefix[k]
			c.ch.StartFlow(w, remaining, func() {
				for _, u := range ap.Units[k:mustCount] {
					deliver(u)
				}
				elapsed := c.k.Now() - start
				done(mustCount, elapsed, elapsed)
			})
			return
		}
		mta := budget
		if sent > 0 {
			mta = budget * mustBytes / sent
		}
		done(k, mta, budget)
	})
}

// sendPlanSequential is the granularity-ablation path: a timeout judgement
// is inserted between every two unit transmissions (cost
// PerUnitCheckSeconds each) instead of speculating — the design the paper
// rejects in Sec. III-A for under-utilizing the channel.
func (c *cluster) sendPlanSequential(w int, ap atp.Plan, mustCount int, budget float64, deliver func(u int), done func(delivered int, mtaTime, elapsed float64)) {
	start := c.k.Now()
	mtaTime := 0.0
	var next func(i int)
	next = func(i int) {
		elapsed := c.k.Now() - start
		if i == mustCount {
			mtaTime = elapsed
		}
		if i >= len(ap.Units) || (elapsed >= budget && i >= mustCount) {
			if i < mustCount {
				mtaTime = elapsed
			}
			done(i, mtaTime, elapsed)
			return
		}
		u := ap.Units[i]
		c.ch.StartFlow(w, float64(c.part.WireSize(u)), func() {
			deliver(u)
			// The inserted judgement: dead air before the next unit.
			c.k.After(c.cfg.PerUnitCheckSeconds, func() { next(i + 1) })
		})
	}
	next(0)
}
