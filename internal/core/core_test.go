package core

import (
	"math"
	"testing"

	"rog/internal/atp"
	"rog/internal/nn"
	"rog/internal/tensor"
	"rog/internal/trace"
)

// testWorkload is a tiny classification task: each worker draws batches
// from its own Gaussian-cluster shard. Small enough that a full experiment
// runs in milliseconds, real enough that gradients carry signal.
type testWorkload struct {
	models    []*nn.Sequential
	rngs      []*tensor.RNG
	centroids [][]float32
	classes   int
	dim       int
	batch     int
	evalX     *tensor.Matrix
	evalY     []int
}

func newTestWorkload(workers int, seed uint64) *testWorkload {
	const (
		classes = 4
		dim     = 6
		batch   = 8
	)
	r := tensor.NewRNG(seed)
	tw := &testWorkload{classes: classes, dim: dim, batch: batch}
	for c := 0; c < classes; c++ {
		cent := make([]float32, dim)
		for i := range cent {
			cent[i] = float32(r.Norm() * 2)
		}
		tw.centroids = append(tw.centroids, cent)
	}
	arch := tensor.NewRNG(seed + 999)
	proto := nn.NewClassifierMLP(dim, []int{10}, classes, arch)
	for w := 0; w < workers; w++ {
		m := nn.NewClassifierMLP(dim, []int{10}, classes, tensor.NewRNG(1))
		m.CopyParamsFrom(proto) // identical initial replicas
		tw.models = append(tw.models, m)
		tw.rngs = append(tw.rngs, tensor.NewRNG(seed+uint64(w)*7+1))
	}
	// Fixed eval set.
	er := tensor.NewRNG(seed + 5)
	n := 80
	tw.evalX = tensor.New(n, dim)
	tw.evalY = make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		tw.evalY[i] = c
		for j := 0; j < dim; j++ {
			tw.evalX.Set(i, j, tw.centroids[c][j]+float32(er.Norm()))
		}
	}
	return tw
}

func (tw *testWorkload) sample(w int) (*tensor.Matrix, []int) {
	r := tw.rngs[w]
	x := tensor.New(tw.batch, tw.dim)
	y := make([]int, tw.batch)
	for i := 0; i < tw.batch; i++ {
		c := r.Intn(tw.classes)
		y[i] = c
		for j := 0; j < tw.dim; j++ {
			x.Set(i, j, tw.centroids[c][j]+float32(r.Norm()))
		}
	}
	return x, y
}

func (tw *testWorkload) Model(w int) *nn.Sequential { return tw.models[w] }

func (tw *testWorkload) ComputeGradients(w int) float64 {
	x, y := tw.sample(w)
	logits := tw.models[w].Forward(x)
	loss, d := nn.SoftmaxCrossEntropy(logits, y)
	tw.models[w].Backward(d)
	return loss
}

func (tw *testWorkload) Evaluate() float64 {
	var acc float64
	for _, m := range tw.models {
		acc += nn.Accuracy(m.Forward(tw.evalX), tw.evalY)
	}
	return acc / float64(len(tw.models))
}

func (tw *testWorkload) Increasing() bool { return true }

func testConfig(s Strategy, threshold int) Config {
	return Config{
		Strategy:        s,
		Workers:         3,
		Threshold:       threshold,
		Env:             trace.Outdoor,
		Seed:            11,
		ComputeSeconds:  2.0,
		PaperModelBytes: 2.1e6,
		LR:              0.1,
		Momentum:        0.9,
		MaxIterations:   30,
		CheckpointEvery: 5,
	}
}

func TestConfigValidate(t *testing.T) {
	bad := Config{Workers: 1, MaxIterations: 5, Strategy: BSP}
	if err := bad.Validate(); err == nil {
		t.Fatal("1 worker accepted")
	}
	bad = Config{Workers: 3, Strategy: SSP, Threshold: 1, MaxIterations: 5}
	if err := bad.Validate(); err == nil {
		t.Fatal("threshold 1 accepted for SSP")
	}
	bad = Config{Workers: 3, Strategy: BSP}
	if err := bad.Validate(); err == nil {
		t.Fatal("no termination accepted")
	}
	good := testConfig(BSP, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.ComputeSeconds != 2.0 || good.CheckpointEvery != 5 {
		t.Fatal("validate clobbered explicit settings")
	}
}

func TestBSPRunCompletes(t *testing.T) {
	wl := newTestWorkload(3, 1)
	res, err := Run(testConfig(BSP, 0), wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 30 {
		t.Fatalf("iterations=%d", res.Iterations)
	}
	if len(res.Series.Points) < 3 {
		t.Fatalf("too few checkpoints: %d", len(res.Series.Points))
	}
	if res.TotalJoules <= 0 {
		t.Fatal("no energy recorded")
	}
	c := res.Composition
	if c.Compute <= 0 || c.Comm <= 0 {
		t.Fatalf("composition %+v", c)
	}
	if math.Abs(c.Compute-2.0) > 1e-9 {
		t.Fatalf("compute share %v != configured 2.0", c.Compute)
	}
}

// TestBSPReplicasStayIdentical pins the core soundness property of the
// parameter-server discipline: with a full barrier, every replica applies
// exactly the same averaged updates and must remain bit-identical.
func TestBSPReplicasStayIdentical(t *testing.T) {
	wl := newTestWorkload(3, 2)
	if _, err := Run(testConfig(BSP, 0), wl); err != nil {
		t.Fatal(err)
	}
	p0 := wl.models[0].Params()
	for w := 1; w < 3; w++ {
		pw := wl.models[w].Params()
		for i := range p0 {
			if !p0[i].Equal(pw[i]) {
				t.Fatalf("worker %d param %d diverged from worker 0", w, i)
			}
		}
	}
}

func TestBSPTrainsTheModel(t *testing.T) {
	wl := newTestWorkload(3, 3)
	before := wl.Evaluate()
	cfg := testConfig(BSP, 0)
	cfg.MaxIterations = 60
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValue <= before+0.1 {
		t.Fatalf("no learning: %.3f -> %.3f", before, res.FinalValue)
	}
}

func TestSSPRunAndStalenessBound(t *testing.T) {
	wl := newTestWorkload(3, 4)
	cfg := testConfig(SSP, 3)
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 10 {
		t.Fatalf("SSP barely progressed: %d", res.Iterations)
	}
	// White-box: rebuild a cluster and check the invariant during a run.
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	wl2 := newTestWorkload(3, 4)
	c := newCluster(cfg, wl2)
	c.start()
	for c.k.Step() {
		if ahead := c.versions.MaxAhead(); ahead > int64(cfg.Threshold) {
			t.Fatalf("staleness bound violated: %d > %d", ahead, cfg.Threshold)
		}
	}
}

func TestFLOWNRuns(t *testing.T) {
	wl := newTestWorkload(3, 5)
	res, err := Run(testConfig(FLOWN, 4), wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 10 {
		t.Fatalf("FLOWN barely progressed: %d", res.Iterations)
	}
}

func TestROGRunsAndRespectsRSP(t *testing.T) {
	cfg := testConfig(ROG, 4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	wl := newTestWorkload(3, 6)
	c := newCluster(cfg, wl)
	c.checkpoint()
	c.start()
	steps := 0
	for c.k.Step() {
		steps++
		if ahead := c.versions.MaxAhead(); ahead > int64(cfg.Threshold) {
			t.Fatalf("RSP bound violated after %d events: %d > %d", steps, ahead, cfg.Threshold)
		}
	}
	if c.iter[0] != int64(cfg.MaxIterations) {
		t.Fatalf("worker0 completed %d iterations", c.iter[0])
	}
	// Every unit of every worker must have been pushed within the last
	// threshold iterations of that worker (no starved rows).
	for w := 0; w < cfg.Workers; w++ {
		for u := 0; u < c.part.NumUnits(); u++ {
			lag := c.iter[w] - c.pushIter[w][u]
			if lag >= int64(cfg.Threshold) {
				t.Fatalf("worker %d unit %d starved: lag %d", w, u, lag)
			}
		}
	}
}

func TestROGTrainsTheModel(t *testing.T) {
	wl := newTestWorkload(3, 7)
	before := wl.Evaluate()
	cfg := testConfig(ROG, 4)
	cfg.MaxIterations = 60
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValue <= before+0.1 {
		t.Fatalf("ROG did not learn: %.3f -> %.3f", before, res.FinalValue)
	}
}

func TestROGStallsLessThanBSP(t *testing.T) {
	run := func(s Strategy, th int) *Result {
		cfg := testConfig(s, th)
		cfg.MaxIterations = 40
		res, err := Run(cfg, newTestWorkload(4, 9))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bsp := run(BSP, 0)
	rog := run(ROG, 4)
	if rog.Composition.Stall >= bsp.Composition.Stall {
		t.Fatalf("ROG stall %.3fs >= BSP stall %.3fs",
			rog.Composition.Stall, bsp.Composition.Stall)
	}
}

func TestDeterminism(t *testing.T) {
	for _, s := range []Strategy{BSP, SSP, ROG} {
		th := 4
		a, err := Run(testConfig(s, th), newTestWorkload(3, 13))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(testConfig(s, th), newTestWorkload(3, 13))
		if err != nil {
			t.Fatal(err)
		}
		if a.TotalJoules != b.TotalJoules || a.Iterations != b.Iterations {
			t.Fatalf("%v not deterministic: %v/%v vs %v/%v",
				s, a.TotalJoules, a.Iterations, b.TotalJoules, b.Iterations)
		}
		if a.FinalValue != b.FinalValue {
			t.Fatalf("%v final value differs: %v vs %v", s, a.FinalValue, b.FinalValue)
		}
	}
}

func TestROGMicroSamples(t *testing.T) {
	cfg := testConfig(ROG, 4)
	cfg.RecordMicro = true
	res, err := Run(cfg, newTestWorkload(3, 15))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Micro) == 0 {
		t.Fatal("no micro samples recorded")
	}
	for _, m := range res.Micro {
		if m.TxRate < 0 || m.TxRate > 1 {
			t.Fatalf("TxRate %v out of [0,1]", m.TxRate)
		}
		if m.Staleness < 0 {
			t.Fatalf("negative staleness %d", m.Staleness)
		}
		if m.LinkMbps < 0 {
			t.Fatalf("negative bandwidth %v", m.LinkMbps)
		}
	}
}

func TestMaxVirtualSecondsTermination(t *testing.T) {
	cfg := testConfig(BSP, 0)
	cfg.MaxIterations = 0
	cfg.MaxVirtualSeconds = 120
	res, err := Run(cfg, newTestWorkload(3, 17))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations within the time budget")
	}
	last := res.Series.Last()
	// The final checkpoint can overshoot by at most one iteration's worth.
	if last.Time > 200 {
		t.Fatalf("ran far past the virtual deadline: %v", last.Time)
	}
}

func TestStrategyLabels(t *testing.T) {
	r := &Result{Strategy: SSP, Threshold: 20}
	if r.Label() != "SSP-20" {
		t.Fatalf("label=%s", r.Label())
	}
	r = &Result{Strategy: BSP}
	if r.Label() != "BSP" {
		t.Fatalf("label=%s", r.Label())
	}
	if FLOWN.String() != "FLOWN" || ROG.String() != "ROG" {
		t.Fatal("strategy names")
	}
}

func TestSendPlanDeliveredCount(t *testing.T) {
	cfg := testConfig(ROG, 4)
	wl := newTestWorkload(3, 19)
	c := newCluster(cfg, wl)
	plan := []int{0, 1, 2}
	ap := atp.NewPlan(plan, c.wireSize)
	if ap.DeliveredCount(0) != 0 {
		t.Fatal("zero bytes should deliver nothing")
	}
	if ap.DeliveredCount(ap.Prefix[3]) != 3 {
		t.Fatal("full bytes should deliver all")
	}
	mid := ap.Prefix[1] + 0.5*(ap.Prefix[2]-ap.Prefix[1])
	if ap.DeliveredCount(mid) != 1 {
		t.Fatal("partial unit must be discarded")
	}
}
