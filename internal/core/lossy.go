package core

import (
	"rog/internal/engine"
	"rog/internal/lossnet"
	"rog/internal/obs"
)

// This file injects the lossnet channel model into the simnet drivers. The
// interception point is the per-unit deliver callback of transmitPush and
// transmitPull — the one funnel every driver loop (barrier, pipelined,
// async) and every transmission shape (speculative, forced continuation,
// whole-plan) routes row deliveries through. A unit whose bytes crossed
// the simulated link still rolls the loss model's dice:
//
//   - delivered → the normal merge/apply path runs;
//   - lost, best-effort class → nothing runs: the gradient mass stays in
//     the sender's accumulator (push) or the server copy (pull), the row's
//     pushIter/version never advances, and RSP accounting sees a row that
//     was simply never sent. Thm. 1's staleness bound is untouched.
//   - lost, reliable class → the unit queues for a retransmission flow
//     that consumes real airtime on the same link; rounds repeat (each
//     redrawing loss) until everything reliable has landed. The loop
//     terminates because no loss model reaches probability 1.
//
// The reliable class is the policy split of the paper's companion idea
// (LTP-style selective reliability steered by ATP importance): a
// speculative plan's Must prefix — the MTA floor plus the rows RSP forces
// to keep the staleness gate live — retransmits; everything after it may
// be lost cheaply. Whole-model plans (BSP/SSP) and AllReliable mode treat
// every row as reliable.
//
// When Config.Loss is disabled none of this is constructed and the
// transmit paths are byte-identical to the lossless baseline.

// lossFilter carries one transmission's loss state.
type lossFilter struct {
	c       *cluster
	w       int
	n       int64
	dir     obs.Dir
	model   lossnet.Model
	rel     func(u int) bool
	deliver func(u int)

	folded int   // best-effort units lost (gradients fold back)
	retry  []int // reliable units awaiting retransmission
}

// reliableFor returns the reliable-class predicate for one plan. Under
// AllReliable, or for a non-speculative whole-plan transmission, every unit
// retransmits; under Selective only the speculative plan's Must prefix does.
func (c *cluster) reliableFor(plan engine.Plan) func(u int) bool {
	if c.cfg.Reliability == lossnet.AllReliable || !plan.Speculative {
		return func(int) bool { return true }
	}
	rel := make(map[int]bool, plan.Must)
	for i, u := range plan.Units {
		if i >= plan.Must {
			break
		}
		rel[u] = true
	}
	return func(u int) bool { return rel[u] }
}

// newLossFilter wraps deliver for worker w's transmission, or returns nil
// when the run has no loss channel.
func (c *cluster) newLossFilter(w int, n int64, dir obs.Dir, plan engine.Plan, deliver func(u int)) *lossFilter {
	if c.loss == nil {
		return nil
	}
	return &lossFilter{
		c: c, w: w, n: n, dir: dir,
		model:   c.loss[w],
		rel:     c.reliableFor(plan),
		deliver: deliver,
	}
}

// filterDeliver is the wrapped per-unit delivery: roll the dice, then
// deliver, queue or fold.
func (f *lossFilter) filterDeliver(u int) {
	if !f.model.Lost(f.c.k.Now()) {
		f.deliver(u)
		return
	}
	if f.rel(u) {
		f.retry = append(f.retry, u)
	} else {
		f.folded++
	}
}

// drain settles the transmission's losses: report the fold-backs, then run
// retransmission flows until the reliable queue is empty, and hand done the
// extra seconds the repeats cost.
func (f *lossFilter) drain(done func(retransSeconds float64)) {
	if f.folded > 0 {
		f.c.probe.RowsLost(f.w, f.n, f.dir, f.folded, "fold")
		f.c.state.ObserveLoss(f.folded, 0, 0)
		f.folded = 0
	}
	f.retransmitRound(0, done)
}

// retransmitRound moves every queued reliable unit over the link again.
// Units lost again requeue for the next round. RowsLost(retransmit) and
// Retransmit are emitted together per round, counting the units that
// landed — so the aggregate totals pair exactly even if the run halts
// between rounds.
func (f *lossFilter) retransmitRound(spent float64, done func(retransSeconds float64)) {
	if len(f.retry) == 0 {
		done(spent)
		return
	}
	units := f.retry
	f.retry = nil
	var bytes float64
	for _, u := range units {
		bytes += f.c.wireSize(u)
	}
	start := f.c.k.Now()
	f.c.ch.StartFlow(f.w, bytes, func() {
		elapsed := f.c.k.Now() - start
		delivered := 0
		for _, u := range units {
			if f.model.Lost(f.c.k.Now()) {
				f.retry = append(f.retry, u)
			} else {
				f.deliver(u)
				delivered++
			}
		}
		if delivered > 0 {
			f.c.probe.RowsLost(f.w, f.n, f.dir, delivered, "retransmit")
		}
		// Bytes count even on a fully re-lost round — the airtime was spent.
		f.c.probe.Retransmit(f.w, f.n, f.dir, delivered, bytes, elapsed)
		f.c.state.ObserveLoss(0, delivered, bytes)
		f.retransmitRound(spent+elapsed, done)
	})
}
