package core

import (
	"bytes"
	"strings"
	"testing"

	"rog/internal/durable"
	"rog/internal/obs"
	"rog/internal/simnet"
)

// durableConfig is testConfig plus a fresh MemFS-backed checkpoint store.
func durableConfig(t *testing.T, s Strategy, threshold int) (Config, *durable.Store, *durable.MemFS) {
	t.Helper()
	cfg := testConfig(s, threshold)
	fs := durable.NewMemFS()
	st, err := durable.Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Durable = st
	cfg.SnapshotEverySeconds = 20
	return cfg, st, fs
}

// TestServerCrashRecoversAndCompletes kills the parameter server mid-run
// with real downtime and a batched (lossy) WAL: the team must ride out the
// outage, recovery must replay the journal, and the run must still reach
// its iteration target. This is the simnet half of the livenet chaos test.
func TestServerCrashRecoversAndCompletes(t *testing.T) {
	for _, s := range []Strategy{ROG, SSP} {
		cfg, st, _ := durableConfig(t, s, 4)
		st.SyncEvery = 64 // batch syncs so the crash actually loses WAL tail
		faults, err := simnet.ParseFaultSchedule("servercrash@30+10")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = faults
		cfg.MaxIterations = 25
		cfg.MaxVirtualSeconds = 2000
		cfg.RecoverySecondsPerMB = 0.5
		res, err := Run(cfg, newTestWorkload(3, 31))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Iterations < 25 {
			t.Errorf("%v: completed only %d iterations across the server crash", s, res.Iterations)
		}
		if res.Recovery.Recoveries != 1 {
			t.Errorf("%v: recovery counters %+v, want 1 recovery", s, res.Recovery)
		}
		if res.Recovery.DowntimeSeconds < 10 {
			t.Errorf("%v: downtime %.2fs below the scheduled 10 s outage", s, res.Recovery.DowntimeSeconds)
		}
		if res.Recovery.SnapshotBytes <= 0 {
			t.Errorf("%v: recovery restored no snapshot bytes", s)
		}
		if st.Epoch() < 1 {
			t.Errorf("%v: store epoch %d after a recovery", s, st.Epoch())
		}
	}
}

// TestServerCrashFlightDump rides the flight recorder on the servercrash
// chaos run: the crash must produce exactly one dump whose header names the
// trigger and whose retained tail is the pre-crash event stream in emission
// order — the postmortem a real deployment would read.
func TestServerCrashFlightDump(t *testing.T) {
	cfg, st, _ := durableConfig(t, ROG, 4)
	st.SyncEvery = 64
	faults, err := simnet.ParseFaultSchedule("servercrash@30+10")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = faults
	cfg.MaxIterations = 25
	cfg.MaxVirtualSeconds = 2000
	cfg.RecoverySecondsPerMB = 0.5
	var traceBuf, dumpBuf bytes.Buffer
	tr := obs.NewJSONLTracer(&traceBuf)
	cfg.Trace = tr
	cfg.Flight = obs.NewFlightRecorder(cfg.Workers, 8, &dumpBuf)
	res, err := Run(cfg, newTestWorkload(3, 31))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Recovery.Recoveries != 1 {
		t.Fatalf("recovery counters %+v, want 1 recovery", res.Recovery)
	}
	if got := cfg.Flight.Dumps(); got != 1 {
		t.Fatalf("flight dumps = %d, want exactly 1 (one crash, one dump)", got)
	}
	var dumped []obs.Event
	if err := obs.ReadEvents(bytes.NewReader(dumpBuf.Bytes()), func(e obs.Event) error {
		dumped = append(dumped, e)
		return nil
	}); err != nil {
		t.Fatalf("dump is not ReadEvents-parseable: %v", err)
	}
	if len(dumped) < 2 {
		t.Fatalf("dump carries %d events, want a header plus a retained tail", len(dumped))
	}
	head := dumped[0]
	if head.Kind != obs.KindFlightDump || !strings.Contains(head.Cause, "servercrash") {
		t.Errorf("dump header = %+v, want a FlightDump naming the servercrash trigger", head)
	}
	if head.Units != len(dumped)-1 {
		t.Errorf("header counts %d entries, dump carries %d", head.Units, len(dumped)-1)
	}
	// Ordering: the dump replays emission order (the global seq ticket), so
	// virtual timestamps are nondecreasing and everything precedes the
	// t=30 crash instant.
	for i, e := range dumped[1:] {
		if e.Time > 30 {
			t.Errorf("dump entry %d at t=%.3f postdates the crash", i, e.Time)
		}
		if i > 0 && e.Time < dumped[i].Time {
			t.Errorf("dump entries out of order: t=%.3f after t=%.3f", e.Time, dumped[i].Time)
		}
	}
	// The dump is a true tail: each worker's dumped events are the suffix of
	// that worker's pre-crash events in the full trace.
	preCrash := make(map[int][]obs.Event)
	if err := obs.ReadEvents(bytes.NewReader(traceBuf.Bytes()), func(e obs.Event) error {
		if e.Time <= 30 {
			preCrash[e.Worker] = append(preCrash[e.Worker], e)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	byWorker := make(map[int][]obs.Event)
	for _, e := range dumped[1:] {
		byWorker[e.Worker] = append(byWorker[e.Worker], e)
	}
	for w, tail := range byWorker {
		if w < 0 {
			continue // overflow ring mixes server-scoped sources
		}
		full := preCrash[w]
		if len(full) < len(tail) {
			t.Fatalf("worker %d: dump retains %d events but the trace holds %d", w, len(tail), len(full))
		}
		for i, e := range tail {
			if want := full[len(full)-len(tail)+i]; e != want {
				t.Fatalf("worker %d: dump entry %d = %+v, want trace suffix event %+v", w, i, e, want)
			}
		}
	}
}

// TestServerCrashDeterminism is the seeded determinism property: a run that
// crashes and recovers the server mid-flight — with an every-append-synced
// WAL and instantaneous recovery — must reproduce the uninterrupted run of
// the same seed bit-for-bit. Recovery is snapshot + full replay, so the
// swapped-in state is the state that crashed; nothing downstream may
// notice.
func TestServerCrashDeterminism(t *testing.T) {
	base, err := Run(testConfig(ROG, 4), newTestWorkload(3, 33))
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, _ := durableConfig(t, ROG, 4)
	faults, err := simnet.ParseFaultSchedule("servercrash@25")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = faults // zero downtime, zero RecoverySecondsPerMB
	crashed, err := Run(cfg, newTestWorkload(3, 33))
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Recovery.Recoveries != 1 {
		t.Fatalf("recovery counters %+v, want exactly 1 recovery", crashed.Recovery)
	}
	if crashed.Recovery.RowsLost != 0 {
		t.Fatalf("every-append sync lost %d rows", crashed.Recovery.RowsLost)
	}
	if base.Iterations != crashed.Iterations ||
		base.FinalValue != crashed.FinalValue ||
		base.Composition != crashed.Composition ||
		base.TotalJoules != crashed.TotalJoules {
		t.Fatalf("crash+recover diverged from the uninterrupted run:\n %d/%v/%+v/%v\nvs %d/%v/%+v/%v",
			base.Iterations, base.FinalValue, base.Composition, base.TotalJoules,
			crashed.Iterations, crashed.FinalValue, crashed.Composition, crashed.TotalJoules)
	}
}

// TestResumeContinuesRun restarts the whole process: run to 10 iterations,
// reopen the same filesystem, resume, and run to 25. The resumed run must
// pick the counters up where the checkpoint left them.
func TestResumeContinuesRun(t *testing.T) {
	cfg, _, fs := durableConfig(t, ROG, 4)
	cfg.MaxIterations = 10
	wl := newTestWorkload(3, 35)
	res1, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Iterations != 10 {
		t.Fatalf("first leg ran %d iterations", res1.Iterations)
	}

	// A fresh store over the same files refuses to start over silently.
	st2, err := durable.Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(ROG, 4)
	cfg2.Durable = st2
	cfg2.SnapshotEverySeconds = 20
	cfg2.MaxIterations = 25
	if _, err := Run(cfg2, newTestWorkload(3, 35)); err == nil || !strings.Contains(err.Error(), "Resume") {
		t.Fatalf("restart without Resume: err = %v", err)
	}

	st3, err := durable.Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	cfg3 := testConfig(ROG, 4)
	cfg3.Durable = st3
	cfg3.SnapshotEverySeconds = 20
	cfg3.MaxIterations = 25
	cfg3.Resume = true
	res2, err := Run(cfg3, newTestWorkload(3, 35))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations != 25 {
		t.Fatalf("resumed leg ended at %d iterations, want 25", res2.Iterations)
	}
	if res2.Recovery.Recoveries != 1 {
		t.Fatalf("resume recovery counters %+v", res2.Recovery)
	}
	if st3.Epoch() < st2.Epoch() {
		t.Fatalf("epoch went backwards across resume")
	}
}

// TestValidateDurableRules pins the config surface: servercrash faults and
// Resume both demand a checkpoint store.
func TestValidateDurableRules(t *testing.T) {
	cfg := testConfig(ROG, 4)
	faults, err := simnet.ParseFaultSchedule("servercrash@10")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = faults
	if err := cfg.Validate(); err == nil {
		t.Fatal("servercrash without Durable accepted")
	}
	cfg = testConfig(ROG, 4)
	cfg.Resume = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("Resume without Durable accepted")
	}
	cfg = testConfig(ROG, 4)
	cfg.RecoverySecondsPerMB = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative RecoverySecondsPerMB accepted")
	}
}
