package core

import (
	"fmt"
	"testing"
)

// mergeLogRun executes one experiment with an OnMerge recorder and returns
// the ordered merge log plus the trained workload (for parameter
// comparison).
func mergeLogRun(t *testing.T, cfg Config, seed uint64) ([]string, *testWorkload) {
	t.Helper()
	var log []string
	cfg.OnMerge = func(w, u int, it int64) {
		log = append(log, fmt.Sprintf("w%d u%d i%d", w, u, it))
	}
	wl := newTestWorkload(cfg.Workers, seed)
	if _, err := Run(cfg, wl); err != nil {
		t.Fatal(err)
	}
	return log, wl
}

// TestShardedRunBitIdentical is the tentpole's parity guarantee at the
// simnet layer: the kernel is single-threaded, so splitting the server
// state into K independently-locked shards must change nothing — not the
// merge sequence, not the trained parameters.
func TestShardedRunBitIdentical(t *testing.T) {
	base := testConfig(ROG, 6)
	base.MaxIterations = 12
	for _, shards := range []int{2, 4, 7} {
		cfg := base
		cfg.Shards = shards
		ref, refWL := mergeLogRun(t, base, 21)
		got, gotWL := mergeLogRun(t, cfg, 21)
		if len(ref) != len(got) {
			t.Fatalf("shards=%d: %d merges, want %d", shards, len(got), len(ref))
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("shards=%d: merge %d = %q, want %q", shards, i, got[i], ref[i])
			}
		}
		p0 := refWL.models[0].Params()
		pK := gotWL.models[0].Params()
		for i := range p0 {
			if !p0[i].Equal(pK[i]) {
				t.Fatalf("shards=%d: param %d diverged from shards=1", shards, i)
			}
		}
	}
}

// TestAggregatedRunBoundsStaleness drives a fleet through the edge tier
// and checks the RSP invariant end to end: rows coalesced in an aggregator
// queue must never merge with a lead beyond the staleness threshold, and
// the run must still make progress.
func TestAggregatedRunBoundsStaleness(t *testing.T) {
	cfg := testConfig(SSP, 4)
	cfg.Workers = 8
	cfg.Aggregators = 2
	cfg.Shards = 4
	cfg.MaxIterations = 15
	wl := newTestWorkload(cfg.Workers, 6)
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 5 {
		t.Fatalf("aggregated run barely progressed: %d iterations", res.Iterations)
	}
	if res.MaxStaleness > int64(cfg.Threshold) {
		t.Fatalf("RSP bound violated through the edge tier: max lead %d > threshold %d",
			res.MaxStaleness, cfg.Threshold)
	}
	// White-box: the version lattice obeys the bound at every kernel step.
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	wl2 := newTestWorkload(cfg.Workers, 6)
	c := newCluster(cfg, wl2)
	c.start()
	for c.k.Step() {
		if ahead := c.state.MaxAhead(); ahead > int64(cfg.Threshold) {
			t.Fatalf("staleness bound violated mid-run: %d > %d", ahead, cfg.Threshold)
		}
	}
}

// TestAggregatedMatchesDirectVersions checks the tier's stamp forwarding:
// after an aggregated run every worker's per-unit version equals its last
// pushed iteration (nothing lost or reordered in the coalescing queue).
func TestAggregatedMatchesDirectVersions(t *testing.T) {
	cfg := testConfig(ROG, 6)
	cfg.Workers = 6
	cfg.Aggregators = 3
	cfg.MaxIterations = 10
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	wl := newTestWorkload(cfg.Workers, 9)
	c := newCluster(cfg, wl)
	c.start()
	c.k.RunUntilIdle(10_000_000)
	for w := 0; w < cfg.Workers; w++ {
		for u := 0; u < c.part.NumUnits(); u++ {
			if got, want := c.versions.Get(w, u), c.pushIter[w][u]; got != want {
				t.Fatalf("worker %d unit %d: version %d, want pushed iteration %d", w, u, got, want)
			}
		}
	}
}

// TestValidateShardAggregatorRules pins the configuration surface.
func TestValidateShardAggregatorRules(t *testing.T) {
	ok := testConfig(SSP, 4)
	ok.Shards = 0
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.Shards != 1 {
		t.Fatalf("Shards default = %d, want 1", ok.Shards)
	}

	bad := testConfig(SSP, 4)
	bad.Shards = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative Shards accepted")
	}

	bad = testConfig(SSP, 4)
	bad.Aggregators = 3 // == Workers
	if err := bad.Validate(); err == nil {
		t.Fatal("Aggregators == Workers accepted")
	}

	bad = testConfig(BSP, 0)
	bad.Aggregators = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("BSP with Aggregators accepted")
	}

	bad = testConfig(ROG, 6)
	bad.Pipeline = true
	bad.Aggregators = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("Pipeline with Aggregators accepted")
	}

	bad = testConfig(SSP, 4)
	bad.Aggregators = 1
	bad.Loss.Kind = "iid"
	bad.Loss.Rate = 0.05
	if err := bad.Validate(); err == nil {
		t.Fatal("Loss with Aggregators accepted")
	}
}
