package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"rog/internal/engine"
)

// This file is the durability layer of the simulated cluster: it binds the
// internal/durable checkpoint store to the driver loops so the parameter
// server's state survives a servercrash fault (and, via Resume, a whole
// process restart).
//
// Semantics:
//   - With Config.Durable set, every server-state transition (merge, drain,
//     restore, detach/attach, time observation, loss folding) reaches the
//     store's WAL through engine.State.Journal, and a full snapshot rotates
//     in every SnapshotEverySeconds of virtual time. The checkpoint payload
//     carries the worker-side resume state: per-worker iteration counters
//     and model replicas.
//   - A servercrash fault crashes the store (unsynced WAL bytes are lost —
//     the fidelity of that loss is the store's SyncEvery knob) and, when the
//     downtime or recovery rate is non-zero, takes every link down so
//     nothing moves while the server is dead.
//   - The restart recovers the latest valid snapshot + WAL, swaps the
//     recovered state under the running drivers (every driver reads c.state
//     at call time, so parked predicates and in-flight completions see the
//     new state), and re-stamps rows whose merges were lost: a worker that
//     already pushed iteration n will never push n again, so the lost rows'
//     versions are re-stamped with zero gradient mass — the gradient loss is
//     counted in Recovery.RowsLost, and the RSP invariant
//     versions[w][u] == pushIter[w][u] is restored without deadlocking the
//     staleness gate.
//   - Pre-crash pushes that DID survive (journaled and synced) are replayed
//     by the store; a worker retransmitting them after reconnect is deduped
//     by the merge version guard, so no gradient is applied twice.

// setupDurable wires the checkpoint store before the drivers start: Begin a
// fresh store, or Recover and adopt a previous run's state when resuming.
func (c *cluster) setupDurable() error {
	st := c.cfg.Durable
	if st == nil {
		return nil
	}
	c.store = st
	if c.cfg.Resume {
		if !st.HasState() {
			return fmt.Errorf("core: Resume set but the checkpoint store holds no state")
		}
		rec, info, err := st.RecoverSharded(c.policy, c.part, c.cfg.Workers, 1.0, c.cfg.Shards)
		if err != nil {
			return fmt.Errorf("core: resume recovery: %w", err)
		}
		c.adoptState(rec)
		c.recovery.Recoveries++
		c.recovery.ReplayedRecords += info.ReplayedRecords
		c.recovery.ReplayedBytes += info.ReplayedBytes
		c.recovery.SnapshotBytes += info.SnapshotBytes
		if err := c.applyResumePayload(info.Payload); err != nil {
			return err
		}
		// A fresh process brings every worker back: re-attach whoever the
		// previous run had detached, then fast-forward the worker-side
		// counters so the next push of every row stamps a fresh version.
		for w := 0; w < c.cfg.Workers; w++ {
			if !c.state.Versions.IsActive(w) {
				c.state.Attach(w)
			}
		}
		for w := 0; w < c.cfg.Workers; w++ {
			for u := range c.pushIter[w] {
				if v := c.state.Versions.Get(w, u); v > c.pushIter[w][u] {
					c.pushIter[w][u] = v
				}
				if c.pushIter[w][u] > c.iter[w] {
					c.iter[w] = c.pushIter[w][u]
				}
			}
		}
	} else {
		if st.HasState() {
			return fmt.Errorf("core: checkpoint store already holds state (epoch %d); set Resume to continue it", st.Epoch())
		}
		if err := st.Begin(c.state, c.resumePayload()); err != nil {
			return fmt.Errorf("core: begin checkpoint store: %w", err)
		}
	}
	c.scheduleCheckpointTick()
	return nil
}

// adoptState swaps a recovered engine state under the running cluster. The
// driver loops read c.state/c.versions/c.serverAcc at call time, so parked
// gate predicates and in-flight flow completions pick the swap up
// transparently.
func (c *cluster) adoptState(rec *engine.State) {
	rec.OnMerge = c.cfg.OnMerge
	rec.Probe = c.probe
	// Parked gate predicates live on the old state's wait lists; move them
	// so post-recovery merges keep re-evaluating them.
	c.state.TransferWaiters(rec)
	c.state = rec
	c.serverAcc = rec.Acc
	c.versions = rec.Versions
}

// allStopped reports whether no driver will schedule further work — the
// checkpoint tick must then stop re-arming itself or the kernel never
// drains.
func (c *cluster) allStopped() bool {
	if c.k.Now() >= c.cfg.MaxVirtualSeconds {
		return true
	}
	for w := 0; w < c.cfg.Workers; w++ {
		if !c.halted[w] && !c.crashed[w] && c.iter[w] < int64(c.cfg.MaxIterations) {
			return false
		}
	}
	return true
}

// scheduleCheckpointTick rotates a checkpoint every SnapshotEverySeconds of
// virtual time, skipping ticks while the server is down.
func (c *cluster) scheduleCheckpointTick() {
	var tick func()
	tick = func() {
		if c.allStopped() || c.fatalErr != nil {
			return
		}
		if !c.serverDown {
			if err := c.store.Checkpoint(c.state, c.resumePayload()); err != nil {
				c.fatalErr = fmt.Errorf("core: checkpoint at t=%.3f: %w", c.k.Now(), err)
				return
			}
		}
		c.k.After(c.cfg.SnapshotEverySeconds, tick)
	}
	c.k.After(c.cfg.SnapshotEverySeconds, tick)
}

// crashServer kills the parameter server at the current virtual instant:
// unsynced WAL bytes are lost and, unless the restart is modelled as
// instantaneous, every link goes dark until recovery completes.
func (c *cluster) crashServer(duration float64) {
	if c.serverDown {
		return
	}
	c.serverDown = true
	c.crashTime = c.k.Now()
	if c.store != nil {
		c.store.Crash()
	}
	// Flight-recorder dump at the crash instant: the retained tail is the
	// last N events before the server died — exactly what a postmortem
	// wants. Best-effort diagnostics; a sink failure must not kill the run.
	_ = c.cfg.Flight.Dump(fmt.Sprintf("servercrash at t=%.3f", c.k.Now()))
	if duration > 0 || c.cfg.RecoverySecondsPerMB > 0 {
		for w := 0; w < c.cfg.Workers; w++ {
			c.ch.SetLinkDown(w, true)
		}
	}
}

// restartServer brings the parameter server back: recover the durable
// state, swap it under the drivers, re-stamp rows whose merges died with
// the old process, and (after the modelled recovery latency) reopen the
// links and re-evaluate every parked staleness gate.
func (c *cluster) restartServer() {
	if !c.serverDown {
		return
	}
	rec, info, err := c.store.RecoverSharded(c.policy, c.part, c.cfg.Workers, 1.0, c.cfg.Shards)
	if err != nil {
		c.fatalErr = fmt.Errorf("core: server restart at t=%.3f: %w", c.k.Now(), err)
		return
	}
	c.adoptState(rec)
	c.recovery.Recoveries++
	c.recovery.ReplayedRecords += info.ReplayedRecords
	c.recovery.ReplayedBytes += info.ReplayedBytes
	c.recovery.SnapshotBytes += info.SnapshotBytes

	// Re-stamp pass: a row the worker already pushed past the recovered
	// version will never be pushed at that iteration again. Stamp it with
	// zero gradient mass so the version lattice (and with it the RSP gate)
	// matches the workers' view; the lost mass is the price of the crash.
	for w := 0; w < c.cfg.Workers; w++ {
		if c.crashed[w] {
			continue
		}
		for u := range c.pushIter[w] {
			if n := c.pushIter[w][u]; n > c.state.Versions.Get(w, u) {
				un := c.part.Unit(u)
				zero := c.scratch[:un.Len]
				for i := range zero {
					zero[i] = 0
				}
				c.state.Merge(w, u, zero, n)
				c.recovery.RowsLost++
			}
		}
	}

	recSeconds := c.cfg.RecoverySecondsPerMB * (info.SnapshotBytes + info.ReplayedBytes) / 1e6
	c.recovery.DowntimeSeconds += (c.k.Now() - c.crashTime) + recSeconds
	c.probe.Reconnect(-1, int64(c.store.Epoch()))
	finish := func() {
		c.serverDown = false
		for w := 0; w < c.cfg.Workers; w++ {
			c.ch.SetLinkDown(w, false)
		}
		c.state.WakeWaiters(c.k.Now())
	}
	if recSeconds > 0 {
		c.k.After(recSeconds, finish)
	} else {
		finish()
	}
}

const resumePayloadVersion = 1

// resumePayload encodes the worker-side state a process restart cannot
// rebuild from the server journal: per-worker iteration counters and the
// model replicas themselves.
func (c *cluster) resumePayload() []byte {
	var buf bytes.Buffer
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], resumePayloadVersion)
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(c.cfg.Workers))
	buf.Write(u32[:])
	var i64 [8]byte
	for w := 0; w < c.cfg.Workers; w++ {
		binary.LittleEndian.PutUint64(i64[:], uint64(c.iter[w]))
		buf.Write(i64[:])
	}
	for w := 0; w < c.cfg.Workers; w++ {
		var mb bytes.Buffer
		if err := c.wl.Model(w).SaveParams(&mb); err != nil {
			// Buffer writes cannot fail; a failure here is a model bug.
			panic(err)
		}
		binary.LittleEndian.PutUint32(u32[:], uint32(mb.Len()))
		buf.Write(u32[:])
		buf.Write(mb.Bytes())
	}
	return buf.Bytes()
}

// applyResumePayload restores what resumePayload saved.
func (c *cluster) applyResumePayload(p []byte) error {
	bad := func(what string) error {
		return fmt.Errorf("core: resume payload: %s", what)
	}
	if len(p) < 8 {
		return bad("truncated header")
	}
	if v := binary.LittleEndian.Uint32(p[0:4]); v != resumePayloadVersion {
		return bad(fmt.Sprintf("version %d, want %d", v, resumePayloadVersion))
	}
	workers := int(binary.LittleEndian.Uint32(p[4:8]))
	if workers != c.cfg.Workers {
		return bad(fmt.Sprintf("saved for %d workers, running %d", workers, c.cfg.Workers))
	}
	off := 8
	if len(p) < off+8*workers {
		return bad("truncated iteration counters")
	}
	for w := 0; w < workers; w++ {
		c.iter[w] = int64(binary.LittleEndian.Uint64(p[off : off+8]))
		off += 8
	}
	for w := 0; w < workers; w++ {
		if len(p) < off+4 {
			return bad("truncated model length")
		}
		n := int(binary.LittleEndian.Uint32(p[off : off+4]))
		off += 4
		if n < 0 || len(p) < off+n {
			return bad("truncated model blob")
		}
		if err := c.wl.Model(w).LoadParams(bytes.NewReader(p[off : off+n])); err != nil {
			return fmt.Errorf("core: resume payload: worker %d model: %w", w, err)
		}
		off += n
	}
	if off != len(p) {
		return bad(fmt.Sprintf("%d trailing bytes", len(p)-off))
	}
	return nil
}
