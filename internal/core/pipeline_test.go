package core

import "testing"

func TestPipelinedROGRuns(t *testing.T) {
	cfg := testConfig(ROG, 4)
	cfg.Pipeline = true
	res, err := Run(cfg, newTestWorkload(3, 31))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != cfg.MaxIterations {
		t.Fatalf("pipelined ROG completed %d of %d", res.Iterations, cfg.MaxIterations)
	}
	if res.TotalJoules <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestPipelinedROGRespectsRSP(t *testing.T) {
	cfg := testConfig(ROG, 4)
	cfg.Pipeline = true
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	wl := newTestWorkload(3, 32)
	c := newCluster(cfg, wl)
	c.start()
	for c.k.Step() {
		if ahead := c.versions.MaxAhead(); ahead > int64(cfg.Threshold) {
			t.Fatalf("pipelined RSP bound violated: %d > %d", ahead, cfg.Threshold)
		}
	}
}

func TestPipelineImprovesThroughput(t *testing.T) {
	// Overlapping compute with comm must finish more iterations in the
	// same virtual time budget (that is its entire point).
	run := func(pipeline bool) *Result {
		cfg := testConfig(ROG, 4)
		cfg.MaxIterations = 0
		cfg.MaxVirtualSeconds = 240
		cfg.Pipeline = pipeline
		res, err := Run(cfg, newTestWorkload(4, 33))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	piped := run(true)
	if piped.Iterations <= plain.Iterations {
		t.Fatalf("pipeline did not help: %d <= %d", piped.Iterations, plain.Iterations)
	}
}

func TestPipelinedROGTrains(t *testing.T) {
	wl := newTestWorkload(3, 34)
	before := wl.Evaluate()
	cfg := testConfig(ROG, 4)
	cfg.Pipeline = true
	cfg.MaxIterations = 60
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	best := before
	for _, p := range res.Series.Points {
		if p.Value > best {
			best = p.Value
		}
	}
	if best <= before+0.1 {
		t.Fatalf("pipelined ROG did not learn: %.3f -> best %.3f", before, best)
	}
}

func TestPipelineDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := testConfig(ROG, 4)
		cfg.Pipeline = true
		res, err := Run(cfg, newTestWorkload(3, 35))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalJoules != b.TotalJoules || a.FinalValue != b.FinalValue {
		t.Fatal("pipelined run not deterministic")
	}
}
