package atp

// Plan is one ordered speculative transmission: the ranked unit sequence
// and its cumulative wire sizes. Both runtimes share it — the simnet
// drivers read delivered units off a flow's byte count when the budget
// timer fires, and the live worker uses the same prefix sums to apportion
// its measured transmission time to the MTA floor.
type Plan struct {
	Units []int
	// Prefix[i] is the wire size of Units[:i]; len(Prefix) == len(Units)+1.
	Prefix []float64
}

// NewPlan builds the prefix sums for units under the given per-unit wire
// size.
func NewPlan(units []int, size func(u int) float64) Plan {
	p := Plan{Units: units, Prefix: make([]float64, len(units)+1)}
	for i, u := range units {
		p.Prefix[i+1] = p.Prefix[i] + size(u)
	}
	return p
}

// Observer sees every constructed transmission plan — the observability
// hook both runtimes feed their metrics registry through. Implementations
// must tolerate being invoked via a typed-nil pointer inside a non-nil
// interface (the disabled-probe configuration).
type Observer interface {
	ObservePlan(units int, totalBytes float64)
}

// NewPlanObserved is NewPlan plus an observation of the built plan's size.
// o may be nil (or a nil typed pointer whose method is nil-receiver safe).
func NewPlanObserved(units []int, size func(u int) float64, o Observer) Plan {
	p := NewPlan(units, size)
	if o != nil {
		o.ObservePlan(len(p.Units), p.TotalBytes())
	}
	return p
}

// TotalBytes is the wire size of the whole plan.
func (p Plan) TotalBytes() float64 { return p.Prefix[len(p.Units)] }

// DeliveredCount maps bytes-on-the-wire to fully transmitted units: the
// in-flight unit at a timeout is discarded, exactly the speculative-
// transmission cost of Sec. III-A. The epsilon absorbs float drift so a
// unit whose last byte arrived exactly at the deadline still counts.
func (p Plan) DeliveredCount(bytes float64) int {
	k := 0
	for k < len(p.Units) && p.Prefix[k+1] <= bytes+1e-9 {
		k++
	}
	return k
}
