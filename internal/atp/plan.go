package atp

// Plan is one ordered speculative transmission: the ranked unit sequence
// and its cumulative wire sizes. Both runtimes share it — the simnet
// drivers read delivered units off a flow's byte count when the budget
// timer fires, and the live worker uses the same prefix sums to apportion
// its measured transmission time to the MTA floor.
type Plan struct {
	Units []int
	// Prefix[i] is the wire size of Units[:i]; len(Prefix) == len(Units)+1.
	Prefix []float64
}

// NewPlan builds the prefix sums for units under the given per-unit wire
// size.
func NewPlan(units []int, size func(u int) float64) Plan {
	p := Plan{Units: units, Prefix: make([]float64, len(units)+1)}
	for i, u := range units {
		p.Prefix[i+1] = p.Prefix[i] + size(u)
	}
	return p
}

// TotalBytes is the wire size of the whole plan.
func (p Plan) TotalBytes() float64 { return p.Prefix[len(p.Units)] }

// DeliveredCount maps bytes-on-the-wire to fully transmitted units: the
// in-flight unit at a timeout is discarded, exactly the speculative-
// transmission cost of Sec. III-A. The epsilon absorbs float drift so a
// unit whose last byte arrived exactly at the deadline still counts.
func (p Plan) DeliveredCount(bytes float64) int {
	k := 0
	for k < len(p.Units) && p.Prefix[k+1] <= bytes+1e-9 {
		k++
	}
	return k
}
