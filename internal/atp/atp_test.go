package atp

import (
	"math"
	"testing"
	"testing/quick"
)

// TestMTAMatchesPaperTable pins Table I of the paper.
func TestMTAMatchesPaperTable(t *testing.T) {
	want := map[int]float64{2: 0.5, 3: 0.38, 4: 0.32, 5: 0.28, 6: 0.25, 7: 0.22, 8: 0.2}
	got := MTATable()
	for s, w := range want {
		if math.Abs(got[s]-w) > 0.011 {
			t.Errorf("MTA(%d)=%v want %v", s, got[s], w)
		}
	}
}

func TestMTASatisfiesInequality(t *testing.T) {
	// (1-P)^(S-1) ≤ P must hold for the returned P, for all thresholds
	// (equality only at the exact root, e.g. P=0.5 for S=2 as in Table I).
	for s := 2; s <= 40; s++ {
		p := MTA(s)
		if math.Pow(1-p, float64(s-1)) > p+1e-9 {
			t.Errorf("threshold %d: MTA %v violates inequality", s, p)
		}
		if p <= 0 || p > 1 {
			t.Errorf("threshold %d: MTA %v out of range", s, p)
		}
	}
}

func TestMTAMonotoneDecreasing(t *testing.T) {
	prev := MTA(2)
	for s := 3; s <= 30; s++ {
		cur := MTA(s)
		if cur > prev {
			t.Fatalf("MTA(%d)=%v > MTA(%d)=%v", s, cur, s-1, prev)
		}
		prev = cur
	}
}

func TestMTADegenerateThreshold(t *testing.T) {
	if MTA(1) != 1 || MTA(0) != 1 {
		t.Fatal("threshold ≤1 must require full transmission")
	}
}

func TestRankWorkerPrioritizesStale(t *testing.T) {
	rows := []RowInfo{
		{ID: 0, MeanAbs: 0.1, Iter: 10}, // fresh, small gradient
		{ID: 1, MeanAbs: 0.1, Iter: 5},  // stale, small gradient
		{ID: 2, MeanAbs: 0.1, Iter: 10},
	}
	order := Rank(rows, Worker, Coefficients{F1: 1, F2: 1})
	if order[0] != 1 {
		t.Fatalf("worker mode should front the stale row: %v", order)
	}
}

func TestRankServerPrioritizesFresh(t *testing.T) {
	rows := []RowInfo{
		{ID: 0, MeanAbs: 0.1, Iter: 5},
		{ID: 1, MeanAbs: 0.1, Iter: 10}, // freshest
		{ID: 2, MeanAbs: 0.1, Iter: 5},
	}
	order := Rank(rows, Server, Coefficients{F1: 1, F2: 1})
	if order[0] != 1 {
		t.Fatalf("server mode should front the fresh row: %v", order)
	}
}

func TestRankMagnitudeBreaksTies(t *testing.T) {
	rows := []RowInfo{
		{ID: 0, MeanAbs: 0.5, Iter: 7},
		{ID: 1, MeanAbs: 2.0, Iter: 7}, // biggest gradient
		{ID: 2, MeanAbs: 1.0, Iter: 7},
	}
	order := Rank(rows, Worker, DefaultCoefficients())
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("magnitude ordering broken: %v", order)
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	rows := []RowInfo{
		{ID: 2, MeanAbs: 1, Iter: 3},
		{ID: 0, MeanAbs: 1, Iter: 3},
		{ID: 1, MeanAbs: 1, Iter: 3},
	}
	order := Rank(rows, Server, DefaultCoefficients())
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("tie break not by ID: %v", order)
	}
}

func TestRankEmptyAndPermutation(t *testing.T) {
	if Rank(nil, Worker, DefaultCoefficients()) != nil {
		t.Fatal("empty rank should be nil")
	}
	f := func(seeds []uint8) bool {
		rows := make([]RowInfo, len(seeds))
		for i, s := range seeds {
			rows[i] = RowInfo{ID: i, MeanAbs: float64(s%16) / 4, Iter: int64(s % 5)}
		}
		order := Rank(rows, Worker, DefaultCoefficients())
		if len(order) != len(rows) {
			return false
		}
		seen := make(map[int]bool)
		for _, id := range order {
			if id < 0 || id >= len(rows) || seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Rank output is invariant to input order (stable semantics).
func TestRankOrderInvariant(t *testing.T) {
	rows := []RowInfo{
		{ID: 0, MeanAbs: 0.3, Iter: 4},
		{ID: 1, MeanAbs: 0.9, Iter: 2},
		{ID: 2, MeanAbs: 0.1, Iter: 8},
		{ID: 3, MeanAbs: 0.5, Iter: 6},
	}
	a := Rank(rows, Server, DefaultCoefficients())
	rev := []RowInfo{rows[3], rows[2], rows[1], rows[0]}
	b := Rank(rev, Server, DefaultCoefficients())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank depends on input order: %v vs %v", a, b)
		}
	}
}

func TestTimeTracker(t *testing.T) {
	tr := NewTimeTracker(3, 2.0)
	if tr.Budget() != 2.0 {
		t.Fatal("initial budget")
	}
	// Worker 1 becomes the straggler: everyone aligns to its report.
	tr.Observe(1, 6.0)
	tr.Observe(0, 0.5)
	tr.Observe(2, 0.8)
	if tr.Budget() != 6.0 {
		t.Fatalf("budget=%v want straggler's 6.0", tr.Budget())
	}
	if tr.Report(1) != 6.0 || tr.Report(0) != 0.5 {
		t.Fatal("per-device reports wrong")
	}
	// The straggler recovers and overwrites its own report: the budget
	// releases immediately.
	tr.Observe(1, 0.6)
	if math.Abs(tr.Budget()-0.8) > 1e-12 {
		t.Fatalf("budget=%v want 0.8 after recovery", tr.Budget())
	}
}
