// Package atp implements the Adaptive Transmission Protocol (paper
// Sec. IV-B): the importance metric that orders row transmission (Algo. 3),
// the MTA table that lower-bounds how many rows a straggler must push
// (Table I), and the MTA-time tracker that aligns transmission time across
// workers so no device stalls the team (Algo. 4's scheduling state).
//
// The speculative send itself is executed by the core's drivers: over the
// discrete-event channel a flow is started with a timeout timer and the
// rows delivered are read off the byte count when it fires — exactly the
// "discard the in-flight row at the deadline" semantics of the paper.
package atp

import (
	"math"
	"sort"
)

// Mode distinguishes the two ends of a synchronization (Algo. 3 lines 3–6):
// workers prioritize stale rows to avoid tripping the server-side staleness
// threshold; the server prioritizes fresh rows because pulls cannot trip it
// and fresher gradients contribute more.
type Mode int

const (
	// Worker mode: importance = f1·mean|g| + f2·(maxIter − iter_i).
	Worker Mode = iota
	// Server mode: importance = f1·mean|g| + f2·(iter_i − minIter).
	Server
)

// Coefficients are the empirical f1/f2 weights of Algo. 3.
type Coefficients struct {
	F1 float64 // weight of the gradient-magnitude term
	F2 float64 // weight of the staleness term
}

// DefaultCoefficients balances the two terms so one stale iteration is
// worth about one standard batch-gradient magnitude.
func DefaultCoefficients() Coefficients { return Coefficients{F1: 1, F2: 1} }

// RowInfo is the scheduler's view of one row (unit).
type RowInfo struct {
	ID      int     // unit index
	MeanAbs float64 // mean absolute accumulated gradient
	Iter    int64   // last iteration this row was pushed/updated
}

// Rank returns the unit IDs sorted by descending importance (Algo. 3).
// rows is not modified. Ties break by ascending ID for determinism.
func Rank(rows []RowInfo, mode Mode, c Coefficients) []int {
	if len(rows) == 0 {
		return nil
	}
	minIter, maxIter := rows[0].Iter, rows[0].Iter
	for _, r := range rows[1:] {
		if r.Iter < minIter {
			minIter = r.Iter
		}
		if r.Iter > maxIter {
			maxIter = r.Iter
		}
	}
	type scored struct {
		id int
		j  float64
	}
	s := make([]scored, len(rows))
	for i, r := range rows {
		var staleTerm float64
		if mode == Worker {
			staleTerm = float64(maxIter - r.Iter)
		} else {
			staleTerm = float64(r.Iter - minIter)
		}
		s[i] = scored{id: r.ID, j: c.F1*r.MeanAbs + c.F2*staleTerm}
	}
	sort.Slice(s, func(a, b int) bool {
		if s[a].j != s[b].j {
			return s[a].j > s[b].j
		}
		return s[a].id < s[b].id
	})
	out := make([]int, len(s))
	for i, v := range s {
		out[i] = v.id
	}
	return out
}

// MTA returns the minimum transmission amount for a staleness threshold S:
// the smallest per-iteration fraction P of rows such that every row is
// transmitted before its staleness can reach S, i.e. the solution of
// (1−P)^(S−1) < P (paper Sec. IV-B). The result matches Table I.
func MTA(threshold int) float64 {
	if threshold <= 1 {
		return 1 // every row every iteration — degenerates to BSP
	}
	s := float64(threshold)
	f := func(p float64) float64 { return math.Pow(1-p, s-1) - p }
	// f is strictly decreasing in p on (0,1): bisect for the root, then the
	// MTA is the smallest P (rounded up to 1e-2 like Table I) satisfying
	// the strict inequality.
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Round to two decimals, upward, so the inequality stays satisfied.
	return math.Ceil(hi*100) / 100
}

// MTATable reproduces Table I for thresholds 2..8.
func MTATable() map[int]float64 {
	out := make(map[int]float64)
	for s := 2; s <= 8; s++ {
		out[s] = MTA(s)
	}
	return out
}

// TimeTracker maintains the per-iteration MTA time: the transmission-time
// budget all devices align to. Algo. 4's contract is that each device
// reports the time its MTA rows took and everyone transmits for the
// *straggler's* time, so the tracker keeps the latest report per device and
// the budget is their maximum. A recovering straggler overwrites its own
// stale report on its next iteration, so the budget releases immediately
// when the occlusion ends.
type TimeTracker struct {
	reports []float64
}

// NewTimeTracker creates a tracker for `workers` devices with an initial
// per-device report (seconds).
func NewTimeTracker(workers int, initial float64) *TimeTracker {
	t := &TimeTracker{reports: make([]float64, workers)}
	for i := range t.reports {
		t.reports[i] = initial
	}
	return t
}

// Budget returns the current MTA-time budget: the slowest device's latest
// reported MTA time (GetMTATime in Algo. 4).
func (t *TimeTracker) Budget() float64 {
	b := 0.0
	for _, v := range t.reports {
		if v > b {
			b = v
		}
	}
	return b
}

// Observe records device w's measured time to transmit its MTA rows this
// iteration (UpdateMTATime in Algo. 4).
func (t *TimeTracker) Observe(w int, mtaTime float64) {
	t.reports[w] = mtaTime
}

// Report returns device w's latest reported MTA time.
func (t *TimeTracker) Report(w int) float64 { return t.reports[w] }
