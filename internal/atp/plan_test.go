package atp

import "testing"

func sizes(s ...float64) func(u int) float64 {
	return func(u int) float64 { return s[u] }
}

func TestPlanPrefixSums(t *testing.T) {
	p := NewPlan([]int{2, 0, 1}, sizes(10, 20, 30))
	want := []float64{0, 30, 40, 60}
	if len(p.Prefix) != len(want) {
		t.Fatalf("prefix len = %d, want %d", len(p.Prefix), len(want))
	}
	for i, v := range want {
		if p.Prefix[i] != v {
			t.Fatalf("prefix[%d] = %v, want %v", i, p.Prefix[i], v)
		}
	}
	if p.TotalBytes() != 60 {
		t.Fatalf("total = %v, want 60", p.TotalBytes())
	}
}

// TestDeliveredCountBoundary pins the timeout-discard rule: a unit counts
// only when its last byte fit inside the budget, with a 1e-9 epsilon so an
// exact boundary (modulo float drift) is not discarded.
func TestDeliveredCountBoundary(t *testing.T) {
	p := NewPlan([]int{0, 1, 2}, sizes(100, 50, 25))
	cases := []struct {
		bytes float64
		want  int
	}{
		{0, 0},
		{99.999, 0},
		{100, 1},         // exact boundary: the unit completed
		{100 - 1e-12, 1}, // within epsilon of the boundary
		{100 + 1e-6, 1},  // partway into the next unit: discard it
		{149.999999, 1},
		{150, 2},
		{174.9, 2},
		{175, 3},
		{1e9, 3}, // beyond the plan: clamp to all units
	}
	for _, c := range cases {
		if got := p.DeliveredCount(c.bytes); got != c.want {
			t.Errorf("DeliveredCount(%v) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestDeliveredCountEmptyPlan(t *testing.T) {
	p := NewPlan(nil, nil)
	if got := p.DeliveredCount(1e9); got != 0 {
		t.Fatalf("empty plan delivered %d units", got)
	}
	if p.TotalBytes() != 0 {
		t.Fatalf("empty plan total = %v", p.TotalBytes())
	}
}
