// Package compress implements the lossless-in-expectation 1-bit gradient
// compression the paper uses before every transmission: each gradient value
// is quantized to its sign times a per-row scale, and the quantization error
// is kept in a local residual (error compensation) and folded into the next
// encode of the same row, so no gradient mass is ever lost. This is the
// scheme of Sun et al. [22] applied at row granularity, with bit packing
// standing in for cupy/numpy packbits.
package compress

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Payload is one compressed gradient row as it travels on the wire.
type Payload struct {
	Row      int     // global row index within the model
	N        int     // number of values in the row
	PosScale float32 // magnitude applied to positive signs
	NegScale float32 // magnitude applied to negative signs
	Bits     []byte  // packed sign bits, 1 = positive
}

// payloadHeader is the overhead of the self-describing Marshal format used
// by the real-socket transport: row index (4) + n (4) + two scales (8).
const payloadHeader = 16

// wireHeader is the per-row cost charged by the schedulers and the network
// simulation: a 2-byte row index plus a 2-byte scale. The row's length and
// the second scale need not travel — both ends share the partition, and the
// paper's own accounting (Sec. III-A) likewise charges one integer index
// per row.
const wireHeader = 4

// WireSize returns the number of bytes this payload occupies on the wire,
// including the row-index overhead the paper charges to finer granularity.
func (p Payload) WireSize() int { return wireHeader + len(p.Bits) }

// RowWireSize predicts the wire size of a compressed row of n values
// without encoding it; the scheduler uses this to budget transmissions.
func RowWireSize(n int) int { return wireHeader + (n+7)/8 }

// Codec compresses rows with 1-bit quantization and error feedback. One
// Codec instance belongs to one sender (worker or server-side per-worker
// copy); the residual state is what makes the compression lossless over
// time.
type Codec struct {
	residual [][]float32
}

// NewCodec creates a codec for a model whose rows have the given lengths.
func NewCodec(rowLens []int) *Codec {
	res := make([][]float32, len(rowLens))
	for i, n := range rowLens {
		res[i] = make([]float32, n)
	}
	return &Codec{residual: res}
}

// NumRows returns the number of rows the codec tracks.
func (c *Codec) NumRows() int { return len(c.residual) }

// Encode quantizes row g (global row index rowID), folding in and updating
// the error-feedback residual. g itself is not modified.
func (c *Codec) Encode(rowID int, g []float32) Payload {
	res := c.residual[rowID]
	if len(g) != len(res) {
		panic(fmt.Sprintf("compress: row %d length %d != %d", rowID, len(g), len(res)))
	}
	n := len(g)
	// Separate positive/negative means minimize L2 error of the
	// reconstruction (the original 1-bit SGD formulation).
	var posSum, negSum float64
	var posCnt, negCnt int
	comp := make([]float64, n)
	for i, v := range g {
		x := float64(v) + float64(res[i])
		comp[i] = x
		if x >= 0 {
			posSum += x
			posCnt++
		} else {
			negSum += -x
			negCnt++
		}
	}
	var posScale, negScale float64
	if posCnt > 0 {
		posScale = posSum / float64(posCnt)
	}
	if negCnt > 0 {
		negScale = negSum / float64(negCnt)
	}
	p := Payload{
		Row:      rowID,
		N:        n,
		PosScale: float32(posScale),
		NegScale: float32(negScale),
		Bits:     make([]byte, (n+7)/8),
	}
	for i, x := range comp {
		var decoded float64
		if x >= 0 {
			p.Bits[i/8] |= 1 << uint(i%8)
			decoded = posScale
		} else {
			decoded = -negScale
		}
		res[i] = float32(x - decoded)
	}
	return p
}

// Decode reconstructs the row into out, which must have length p.N.
func Decode(p Payload, out []float32) {
	if len(out) != p.N {
		panic(fmt.Sprintf("compress: decode into %d, want %d", len(out), p.N))
	}
	for i := 0; i < p.N; i++ {
		if p.Bits[i/8]&(1<<uint(i%8)) != 0 {
			out[i] = p.PosScale
		} else {
			out[i] = -p.NegScale
		}
	}
}

// Reset clears the residual for one row (used when a row's accumulated
// gradient is re-built from scratch).
func (c *Codec) Reset(rowID int) {
	for i := range c.residual[rowID] {
		c.residual[rowID][i] = 0
	}
}

// ResidualNorm reports the L2 norm of a row's residual, for tests and
// diagnostics.
func (c *Codec) ResidualNorm(rowID int) float64 {
	var s float64
	for _, v := range c.residual[rowID] {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Marshal serializes the payload for transports that need raw bytes.
func (p Payload) Marshal() []byte {
	buf := make([]byte, payloadHeader+len(p.Bits))
	binary.LittleEndian.PutUint32(buf[0:], uint32(p.Row))
	binary.LittleEndian.PutUint32(buf[4:], uint32(p.N))
	binary.LittleEndian.PutUint32(buf[8:], math.Float32bits(p.PosScale))
	binary.LittleEndian.PutUint32(buf[12:], math.Float32bits(p.NegScale))
	copy(buf[payloadHeader:], p.Bits)
	return buf
}

// Unmarshal parses a payload previously produced by Marshal.
func Unmarshal(buf []byte) (Payload, error) {
	if len(buf) < payloadHeader {
		return Payload{}, fmt.Errorf("compress: payload too short (%d bytes)", len(buf))
	}
	p := Payload{
		Row:      int(binary.LittleEndian.Uint32(buf[0:])),
		N:        int(binary.LittleEndian.Uint32(buf[4:])),
		PosScale: math.Float32frombits(binary.LittleEndian.Uint32(buf[8:])),
		NegScale: math.Float32frombits(binary.LittleEndian.Uint32(buf[12:])),
	}
	want := (p.N + 7) / 8
	if len(buf) != payloadHeader+want {
		return Payload{}, fmt.Errorf("compress: payload body %d bytes, want %d", len(buf)-payloadHeader, want)
	}
	p.Bits = make([]byte, want)
	copy(p.Bits, buf[payloadHeader:])
	return p, nil
}

// Ratio reports the compression ratio (wire bytes / raw float32 bytes) for
// a row of n values — the paper quotes ≈3.2 % for its models.
func Ratio(n int) float64 {
	if n == 0 {
		return 1
	}
	return float64(RowWireSize(n)) / float64(4*n)
}
