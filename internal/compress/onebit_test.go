package compress

import (
	"math"
	"testing"
	"testing/quick"

	"rog/internal/tensor"
)

func TestEncodeDecodeSigns(t *testing.T) {
	c := NewCodec([]int{4})
	g := []float32{1, -2, 3, -4}
	p := c.Encode(0, g)
	out := make([]float32, 4)
	Decode(p, out)
	for i, v := range out {
		if (v >= 0) != (g[i] >= 0) {
			t.Fatalf("sign flipped at %d: in %v out %v", i, g[i], v)
		}
	}
	if p.PosScale != 2 || p.NegScale != 3 {
		t.Fatalf("scales %v/%v want 2/3", p.PosScale, p.NegScale)
	}
}

func TestErrorFeedbackLossless(t *testing.T) {
	// Over many iterations, sum(decoded) must track sum(inputs): the
	// residual stays bounded, so no gradient mass is lost. This is the
	// "lossless with error compensation" property the paper relies on.
	c := NewCodec([]int{8})
	r := tensor.NewRNG(3)
	sumIn := make([]float64, 8)
	sumOut := make([]float64, 8)
	out := make([]float32, 8)
	for iter := 0; iter < 500; iter++ {
		g := make([]float32, 8)
		for i := range g {
			g[i] = float32(r.Norm())
			sumIn[i] += float64(g[i])
		}
		Decode(c.Encode(0, g), out)
		for i, v := range out {
			sumOut[i] += float64(v)
		}
	}
	for i := range sumIn {
		// Difference is exactly the current residual, which must be small
		// relative to the accumulated mass.
		diff := math.Abs(sumIn[i] - sumOut[i])
		if diff > 10 {
			t.Fatalf("elem %d: |sumIn-sumOut|=%v (residual unbounded)", i, diff)
		}
	}
}

func TestResidualEqualsDrift(t *testing.T) {
	c := NewCodec([]int{4})
	g := []float32{0.5, -0.25, 0.1, 0}
	p := c.Encode(0, g)
	out := make([]float32, 4)
	Decode(p, out)
	var drift float64
	for i := range g {
		d := float64(g[i]) - float64(out[i])
		drift += d * d
	}
	if math.Abs(c.ResidualNorm(0)-math.Sqrt(drift)) > 1e-5 {
		t.Fatalf("residual %v != drift %v", c.ResidualNorm(0), math.Sqrt(drift))
	}
	c.Reset(0)
	if c.ResidualNorm(0) != 0 {
		t.Fatal("Reset did not clear residual")
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	f := func(row uint8, vals []float32) bool {
		if len(vals) == 0 {
			vals = []float32{1}
		}
		for i, v := range vals {
			if v != v { // NaN breaks sign comparison semantics, skip
				vals[i] = 0
			}
		}
		lens := []int{len(vals)}
		c := NewCodec(lens)
		p := c.Encode(0, vals)
		p.Row = int(row)
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		if q.Row != p.Row || q.N != p.N || q.PosScale != p.PosScale || q.NegScale != p.NegScale {
			return false
		}
		for i := range p.Bits {
			if p.Bits[i] != q.Bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer accepted")
	}
	c := NewCodec([]int{9})
	p := c.Encode(0, make([]float32, 9))
	raw := p.Marshal()
	if _, err := Unmarshal(raw[:len(raw)-1]); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestWireSizeAndRatio(t *testing.T) {
	c := NewCodec([]int{100})
	p := c.Encode(0, make([]float32, 100))
	if p.WireSize() != 4+13 {
		t.Fatalf("WireSize=%d", p.WireSize())
	}
	if RowWireSize(100) != p.WireSize() {
		t.Fatal("RowWireSize disagrees with actual payload")
	}
	// For wide rows the ratio approaches 1/32 ≈ 3.1%, matching the paper's
	// ≈3.2% compressed size.
	if r := Ratio(1024); r > 0.05 || r < 0.03 {
		t.Fatalf("Ratio(1024)=%v", r)
	}
	if Ratio(0) != 1 {
		t.Fatal("Ratio(0) should be 1")
	}
}

func TestEncodeLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCodec([]int{4}).Encode(0, make([]float32, 5))
}

func TestDecodeLengthMismatchPanics(t *testing.T) {
	c := NewCodec([]int{4})
	p := c.Encode(0, make([]float32, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Decode(p, make([]float32, 3))
}

func TestAllNegativeRow(t *testing.T) {
	c := NewCodec([]int{3})
	p := c.Encode(0, []float32{-1, -2, -3})
	if p.PosScale != 0 {
		t.Fatalf("PosScale=%v for all-negative row", p.PosScale)
	}
	out := make([]float32, 3)
	Decode(p, out)
	for _, v := range out {
		if v != -2 {
			t.Fatalf("decode=%v want -2", v)
		}
	}
}
