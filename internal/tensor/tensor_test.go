package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New not zeroed")
		}
	}
}

func TestNewFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFrom(2, 3, []float32{1, 2})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At=%v", m.At(1, 2))
	}
	row := m.Row(1)
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row is not a view")
	}
	if len(row) != 3 {
		t.Fatalf("row len=%d", len(row))
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewFrom(2, 2, []float32{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
	if !m.Equal(NewFrom(2, 2, []float32{1, 2, 3, 4})) {
		t.Fatal("original mutated")
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	a := NewFrom(2, 2, []float32{1, 2, 3, 4})
	b := NewFrom(2, 2, []float32{10, 20, 30, 40})
	a.Add(b)
	if !a.Equal(NewFrom(2, 2, []float32{11, 22, 33, 44})) {
		t.Fatalf("Add: %v", a.Data)
	}
	a.Sub(b)
	if !a.Equal(NewFrom(2, 2, []float32{1, 2, 3, 4})) {
		t.Fatalf("Sub: %v", a.Data)
	}
	a.Scale(2)
	if !a.Equal(NewFrom(2, 2, []float32{2, 4, 6, 8})) {
		t.Fatalf("Scale: %v", a.Data)
	}
	a.AXPY(0.5, b)
	if !a.Equal(NewFrom(2, 2, []float32{7, 14, 21, 28})) {
		t.Fatalf("AXPY: %v", a.Data)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := New(2, 2), New(2, 3)
	for name, f := range map[string]func(){
		"Add":      func() { a.Add(b) },
		"Sub":      func() { a.Sub(b) },
		"AXPY":     func() { a.AXPY(1, b) },
		"CopyFrom": func() { a.CopyFrom(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMul(t *testing.T) {
	a := NewFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := NewFrom(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := NewFrom(2, 2, []float32{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("Mul=%v", got.Data)
	}
}

func TestMulTransA(t *testing.T) {
	a := NewFrom(3, 2, []float32{1, 4, 2, 5, 3, 6}) // aᵀ = [[1,2,3],[4,5,6]]
	b := NewFrom(3, 2, []float32{7, 8, 9, 10, 11, 12})
	dst := New(2, 2)
	MulTransAInto(dst, a, b)
	want := Mul(a.Transpose(), b)
	if !dst.Equal(want) {
		t.Fatalf("MulTransA=%v want %v", dst.Data, want.Data)
	}
}

func TestMulTransB(t *testing.T) {
	a := NewFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := NewFrom(2, 3, []float32{7, 9, 11, 8, 10, 12}) // bᵀ = 3x2
	dst := New(2, 2)
	MulTransBInto(dst, a, b)
	want := Mul(a, b.Transpose())
	if !dst.Equal(want) {
		t.Fatalf("MulTransB=%v want %v", dst.Data, want.Data)
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := NewRNG(1)
	m := New(5, 7)
	m.FillNormal(r, 1)
	if !m.Transpose().Transpose().Equal(m) {
		t.Fatal("transpose twice != identity")
	}
}

func TestNormsAndMeans(t *testing.T) {
	m := NewFrom(1, 4, []float32{-1, 2, -3, 4})
	if m.SumAbs() != 10 {
		t.Fatalf("SumAbs=%v", m.SumAbs())
	}
	if m.MeanAbs() != 2.5 {
		t.Fatalf("MeanAbs=%v", m.MeanAbs())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs=%v", m.MaxAbs())
	}
	if math.Abs(m.Norm2()-math.Sqrt(30)) > 1e-6 {
		t.Fatalf("Norm2=%v", m.Norm2())
	}
	if m.RowMeanAbs(0) != 2.5 {
		t.Fatalf("RowMeanAbs=%v", m.RowMeanAbs(0))
	}
	empty := New(0, 0)
	if empty.MeanAbs() != 0 || empty.MaxAbs() != 0 {
		t.Fatal("empty matrix stats should be 0")
	}
}

func TestApply(t *testing.T) {
	m := NewFrom(1, 3, []float32{1, -2, 3})
	m.Apply(func(v float32) float32 { return v * v })
	if !m.Equal(NewFrom(1, 3, []float32{1, 4, 9})) {
		t.Fatalf("Apply=%v", m.Data)
	}
}

func TestAlmostEqual(t *testing.T) {
	a := NewFrom(1, 2, []float32{1, 2})
	b := NewFrom(1, 2, []float32{1.0000001, 2})
	if !a.AlmostEqual(b, 1e-5) {
		t.Fatal("should be almost equal")
	}
	if a.AlmostEqual(NewFrom(1, 2, []float32{1.1, 2}), 1e-5) {
		t.Fatal("should differ")
	}
	if a.AlmostEqual(New(2, 1), 1) {
		t.Fatal("shape mismatch should not be equal")
	}
}

// Property: matrix multiplication distributes over addition:
// A*(B+C) == A*B + A*C (within float tolerance).
func TestMulDistributesOverAdd(t *testing.T) {
	r := NewRNG(42)
	f := func(seed uint16) bool {
		rr := NewRNG(uint64(seed) + r.Uint64()%1000)
		a, b, c := New(3, 4), New(4, 2), New(4, 2)
		a.FillNormal(rr, 1)
		b.FillNormal(rr, 1)
		c.FillNormal(rr, 1)
		bc := b.Clone()
		bc.Add(c)
		left := Mul(a, bc)
		right := Mul(a, b)
		right.Add(Mul(a, c))
		return left.AlmostEqual(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMulTransposeIdentity(t *testing.T) {
	f := func(seed uint16) bool {
		rr := NewRNG(uint64(seed)*2654435761 + 1)
		a, b := New(3, 5), New(5, 2)
		a.FillNormal(rr, 1)
		b.FillNormal(rr, 1)
		left := Mul(a, b).Transpose()
		right := Mul(b.Transpose(), a.Transpose())
		return left.AlmostEqual(right, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(7).Uint64() == NewRNG(8).Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(123)
	n := 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean=%v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("variance=%v", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad perm %v", p)
		}
		seen[v] = true
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(9)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children identical")
	}
}

func TestXavierInitRange(t *testing.T) {
	r := NewRNG(11)
	m := New(50, 60)
	m.XavierInit(r, 50, 60)
	limit := float32(math.Sqrt(6.0 / 110.0))
	for _, v := range m.Data {
		if v < -limit || v >= limit {
			t.Fatalf("value %v outside ±%v", v, limit)
		}
	}
	if m.MeanAbs() == 0 {
		t.Fatal("init produced all zeros")
	}
}

func BenchmarkMul128(b *testing.B) {
	r := NewRNG(1)
	x, y := New(128, 128), New(128, 128)
	x.FillNormal(r, 1)
	y.FillNormal(r, 1)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}
