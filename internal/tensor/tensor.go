// Package tensor provides the dense float32 matrix and vector types used by
// the neural-network substrate. It is deliberately small: row-major dense
// storage, the handful of BLAS-like kernels training needs, and row views so
// that the row-granulated synchronization layers can address parameter rows
// without copying.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix. The zero value is an empty
// matrix; use New or NewFrom to create a sized one.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewFrom wraps data as a rows×cols matrix without copying.
// len(data) must equal rows*cols.
func NewFrom(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i (no copy).
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

func (m *Matrix) mustSameShape(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add accumulates o into m element-wise.
func (m *Matrix) Add(o *Matrix) {
	m.mustSameShape(o, "Add")
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// Sub subtracts o from m element-wise.
func (m *Matrix) Sub(o *Matrix) {
	m.mustSameShape(o, "Sub")
	for i, v := range o.Data {
		m.Data[i] -= v
	}
}

// Scale multiplies every element of m by s.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AXPY computes m += a*x element-wise.
func (m *Matrix) AXPY(a float32, x *Matrix) {
	m.mustSameShape(x, "AXPY")
	for i, v := range x.Data {
		m.Data[i] += a * v
	}
}

// MulInto computes dst = m × o. dst must be m.Rows×o.Cols and distinct from
// both operands.
func MulInto(dst, m, o *Matrix) {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: MulInto inner dim %d vs %d", m.Cols, o.Rows))
	}
	if dst.Rows != m.Rows || dst.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: MulInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, m.Rows, o.Cols))
	}
	dst.Zero()
	// ikj loop order: streams over o rows, cache friendly for row-major.
	for i := 0; i < m.Rows; i++ {
		di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		for k, mv := range mi {
			if mv == 0 {
				continue
			}
			ok := o.Data[k*o.Cols : (k+1)*o.Cols]
			for j, ov := range ok {
				di[j] += mv * ov
			}
		}
	}
}

// Mul returns m × o as a fresh matrix.
func Mul(m, o *Matrix) *Matrix {
	dst := New(m.Rows, o.Cols)
	MulInto(dst, m, o)
	return dst
}

// MulTransAInto computes dst = mᵀ × o (m is used transposed).
func MulTransAInto(dst, m, o *Matrix) {
	if m.Rows != o.Rows {
		panic(fmt.Sprintf("tensor: MulTransAInto inner dim %d vs %d", m.Rows, o.Rows))
	}
	if dst.Rows != m.Cols || dst.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: MulTransAInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, m.Cols, o.Cols))
	}
	dst.Zero()
	for k := 0; k < m.Rows; k++ {
		mk := m.Data[k*m.Cols : (k+1)*m.Cols]
		ok := o.Data[k*o.Cols : (k+1)*o.Cols]
		for i, mv := range mk {
			if mv == 0 {
				continue
			}
			di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j, ov := range ok {
				di[j] += mv * ov
			}
		}
	}
}

// MulTransBInto computes dst = m × oᵀ (o is used transposed).
func MulTransBInto(dst, m, o *Matrix) {
	if m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: MulTransBInto inner dim %d vs %d", m.Cols, o.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: MulTransBInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, m.Rows, o.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := 0; j < o.Rows; j++ {
			oj := o.Data[j*o.Cols : (j+1)*o.Cols]
			var s float32
			for k, mv := range mi {
				s += mv * oj[k]
			}
			di[j] = s
		}
	}
}

// Transpose returns a fresh transposed copy of m.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Apply replaces every element x with f(x).
func (m *Matrix) Apply(f func(float32) float32) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// SumAbs returns the sum of absolute values of all elements.
func (m *Matrix) SumAbs() float64 {
	var s float64
	for _, v := range m.Data {
		s += math.Abs(float64(v))
	}
	return s
}

// MeanAbs returns the mean absolute value of all elements (0 for empty).
func (m *Matrix) MeanAbs() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.SumAbs() / float64(len(m.Data))
}

// RowMeanAbs returns the mean absolute value of row i.
func (m *Matrix) RowMeanAbs(i int) float64 {
	row := m.Row(i)
	if len(row) == 0 {
		return 0
	}
	var s float64
	for _, v := range row {
		s += math.Abs(float64(v))
	}
	return s / float64(len(row))
}

// Norm2 returns the Frobenius norm of m.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Matrix) MaxAbs() float32 {
	var mx float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Equal reports whether m and o have identical shape and elements.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if o.Data[i] != v {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether m and o agree element-wise within tol.
func (m *Matrix) AlmostEqual(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(float64(v)-float64(o.Data[i])) > tol {
			return false
		}
	}
	return true
}

// String renders a compact shape-and-norm summary (not the full contents).
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d, |.|=%.4g)", m.Rows, m.Cols, m.Norm2())
}
