package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64 core) used for weight initialization and data synthesis.
// It is reproducible across platforms, unlike math/rand's global source,
// and each component owns its own stream so experiments are seed-stable
// regardless of evaluation order.
type RNG struct {
	state uint64
	// spare holds a cached second normal variate from the Box-Muller pair.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Perm returns a pseudo-random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent child generator; useful to give each worker
// or dataset shard its own stream from one experiment seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// FillNormal fills m with N(0, std²) values.
func (m *Matrix) FillNormal(r *RNG, std float64) {
	for i := range m.Data {
		m.Data[i] = float32(r.Norm() * std)
	}
}

// FillUniform fills m with uniform values in [lo,hi).
func (m *Matrix) FillUniform(r *RNG, lo, hi float64) {
	for i := range m.Data {
		m.Data[i] = float32(lo + (hi-lo)*r.Float64())
	}
}

// XavierInit fills m with the Glorot/Xavier uniform initialization for a
// layer with fanIn inputs and fanOut outputs.
func (m *Matrix) XavierInit(r *RNG, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	m.FillUniform(r, -limit, limit)
}
