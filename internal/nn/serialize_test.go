package nn

import (
	"bytes"
	"strings"
	"testing"

	"rog/internal/tensor"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	r := tensor.NewRNG(1)
	m := NewConvMLP(1, 6, 6, []int{4}, []int{12}, 3, r)
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewConvMLP(1, 6, 6, []int{4}, []int{12}, 3, tensor.NewRNG(99))
	if err := m2.LoadParams(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m.Params(), m2.Params()
	for i := range p1 {
		if !p1[i].Equal(p2[i]) {
			t.Fatalf("param %d differs after roundtrip", i)
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	r := tensor.NewRNG(2)
	m := NewClassifierMLP(4, []int{8}, 3, r)
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewClassifierMLP(4, []int{9}, 3, r)
	if err := other.LoadParams(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
	fewer := NewClassifierMLP(4, nil, 3, r)
	if err := fewer.LoadParams(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("wrong matrix count accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	r := tensor.NewRNG(3)
	m := NewClassifierMLP(4, []int{8}, 3, r)
	cases := map[string][]byte{
		"empty":    {},
		"badMagic": []byte("NOPE....extra"),
		"truncated": func() []byte {
			var buf bytes.Buffer
			if err := m.SaveParams(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()/2]
		}(),
	}
	for name, data := range cases {
		if err := m.LoadParams(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	r := tensor.NewRNG(4)
	m := NewClassifierMLP(3, nil, 2, r)
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte
	if err := m.LoadParams(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version accepted: %v", err)
	}
}

func TestSameArchitecture(t *testing.T) {
	r := tensor.NewRNG(5)
	a := NewClassifierMLP(4, []int{8}, 3, r)
	b := NewClassifierMLP(4, []int{8}, 3, tensor.NewRNG(9))
	c := NewClassifierMLP(4, []int{7}, 3, r)
	if !SameArchitecture(a, b) {
		t.Fatal("identical architectures reported different")
	}
	if SameArchitecture(a, c) {
		t.Fatal("different architectures reported same")
	}
}
