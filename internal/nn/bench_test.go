package nn

import (
	"testing"

	"rog/internal/tensor"
)

func benchModel() (*Sequential, *tensor.Matrix, []int) {
	r := tensor.NewRNG(1)
	m := NewClassifierMLP(32, []int{64, 64}, 100, r)
	x := tensor.New(24, 32)
	x.FillNormal(r, 1)
	y := make([]int, 24)
	for i := range y {
		y[i] = i % 100
	}
	return m, x, y
}

func BenchmarkForward(b *testing.B) {
	m, x, _ := benchModel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkForwardBackward(b *testing.B) {
	m, x, y := benchModel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		_, d := SoftmaxCrossEntropy(m.Forward(x), y)
		m.Backward(d)
	}
}

func BenchmarkSGDStep(b *testing.B) {
	m, x, y := benchModel()
	opt := NewSGD(0.01, 0.9)
	m.ZeroGrads()
	_, d := SoftmaxCrossEntropy(m.Forward(x), y)
	m.Backward(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(m.Params(), m.Grads())
	}
}

func BenchmarkConvForward(b *testing.B) {
	r := tensor.NewRNG(2)
	m := NewConvMLP(1, 8, 8, []int{6}, []int{32}, 10, r)
	x := tensor.New(24, 64)
	x.FillNormal(r, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkGridMapForwardBackward(b *testing.B) {
	r := tensor.NewRNG(3)
	m := NewGridMap(24, 8, []int{16}, 1, r)
	x := tensor.New(32, 2)
	x.FillUniform(r, -1, 1)
	tgt := tensor.New(32, 1)
	tgt.FillUniform(r, -1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		_, d := MSE(m.Forward(x), tgt)
		m.Backward(d)
	}
}
