package nn

import "rog/internal/tensor"

// Sequential chains layers. It is the model type used throughout the repo:
// the distributed layers address its parameters as a flat, ordered list of
// matrices whose rows are the synchronization unit.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a model from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs the batch through every layer.
func (s *Sequential) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the loss gradient back through every layer,
// accumulating parameter gradients.
func (s *Sequential) Backward(dout *tensor.Matrix) {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
}

// Params returns all parameter matrices in layer order.
func (s *Sequential) Params() []*tensor.Matrix {
	var out []*tensor.Matrix
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns all gradient matrices, matching Params element-for-element.
func (s *Sequential) Grads() []*tensor.Matrix {
	var out []*tensor.Matrix
	for _, l := range s.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// ZeroGrads clears every gradient matrix.
func (s *Sequential) ZeroGrads() {
	for _, g := range s.Grads() {
		g.Zero()
	}
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += len(p.Data)
	}
	return n
}

// NumRows returns the total number of parameter rows across all matrices —
// the count of schedulable units under row granularity.
func (s *Sequential) NumRows() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Rows
	}
	return n
}

// CopyParamsFrom copies every parameter of src into s. The two models must
// have identical architecture.
func (s *Sequential) CopyParamsFrom(src *Sequential) {
	sp, dp := src.Params(), s.Params()
	if len(sp) != len(dp) {
		panic("nn: CopyParamsFrom architecture mismatch")
	}
	for i, p := range dp {
		p.CopyFrom(sp[i])
	}
}

// SnapshotGrads deep-copies the current gradients and zeroes the originals,
// returning the copies. This is what a training iteration hands to the
// synchronization layer.
func (s *Sequential) SnapshotGrads() []*tensor.Matrix {
	grads := s.Grads()
	out := make([]*tensor.Matrix, len(grads))
	for i, g := range grads {
		out[i] = g.Clone()
		g.Zero()
	}
	return out
}
