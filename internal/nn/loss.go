package nn

import (
	"math"

	"rog/internal/tensor"
)

// SoftmaxCrossEntropy computes the softmax cross-entropy loss for integer
// class labels and its gradient with respect to the logits.
//
// logits is batch×classes; labels holds one class index per batch row.
// The returned gradient is (softmax − onehot)/batch, ready to feed to the
// last layer's Backward.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (loss float64, grad *tensor.Matrix) {
	if len(labels) != logits.Rows {
		panic("nn: label count != batch size")
	}
	grad = tensor.New(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		g := grad.Row(i)
		// Numerically stable softmax.
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - mx))
			g[j] = float32(e)
			sum += e
		}
		inv := 1.0 / sum
		for j := range g {
			g[j] = float32(float64(g[j]) * inv)
		}
		p := float64(g[labels[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
		g[labels[i]] -= 1
	}
	scale := float32(1.0 / float64(logits.Rows))
	grad.Scale(scale)
	return loss / float64(logits.Rows), grad
}

// MSE computes the mean-squared-error loss ½·mean((pred−target)²) and its
// gradient (pred−target)/n with respect to pred.
func MSE(pred, target *tensor.Matrix) (loss float64, grad *tensor.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSE shape mismatch")
	}
	grad = tensor.New(pred.Rows, pred.Cols)
	n := float64(len(pred.Data))
	for i, p := range pred.Data {
		d := float64(p) - float64(target.Data[i])
		loss += d * d
		grad.Data[i] = float32(d / n)
	}
	return loss / (2 * n), grad
}

// Argmax returns the index of the largest value in each row of m.
func Argmax(m *tensor.Matrix) []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Matrix, labels []int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	pred := Argmax(logits)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
