package nn

import (
	"fmt"

	"rog/internal/tensor"
)

// Conv2D is a 2-D convolution with stride 1 and symmetric zero padding.
// Activations travel between layers as flattened batch×(C·H·W) matrices in
// channel-major (C, then H, then W) order.
//
// The kernel is stored as an outC×(inC·K·K) matrix, so each *row* is one
// output filter — under row-granulated synchronization, ROG schedules
// whole filters, matching how ConvMLP's convolutional parameters decompose
// in the paper.
type Conv2D struct {
	InC, H, W int // input geometry
	OutC, K   int // filters and (square) kernel size
	Pad       int

	Kern, B *tensor.Matrix // Kern: OutC×(InC·K·K); B: 1×OutC
	GK, GB  *tensor.Matrix
	x       *tensor.Matrix // cached input
	name    string
}

// NewConv2D creates a convolution layer. pad of K/2 preserves H×W.
func NewConv2D(inC, h, w, outC, k, pad int, r *tensor.RNG) *Conv2D {
	l := &Conv2D{
		InC: inC, H: h, W: w, OutC: outC, K: k, Pad: pad,
		Kern: tensor.New(outC, inC*k*k),
		B:    tensor.New(1, outC),
		GK:   tensor.New(outC, inC*k*k),
		GB:   tensor.New(1, outC),
		name: fmt.Sprintf("conv(%dx%dx%d->%d,k%d)", inC, h, w, outC, k),
	}
	l.Kern.XavierInit(r, inC*k*k, outC)
	return l
}

// OutH returns the output height.
func (l *Conv2D) OutH() int { return l.H + 2*l.Pad - l.K + 1 }

// OutW returns the output width.
func (l *Conv2D) OutW() int { return l.W + 2*l.Pad - l.K + 1 }

// OutDim returns the flattened output width OutC·OutH·OutW.
func (l *Conv2D) OutDim() int { return l.OutC * l.OutH() * l.OutW() }

// at reads input pixel (c,y,x) of sample row, honoring zero padding.
func (l *Conv2D) at(row []float32, c, y, x int) float32 {
	if y < 0 || y >= l.H || x < 0 || x >= l.W {
		return 0
	}
	return row[c*l.H*l.W+y*l.W+x]
}

// Forward computes the convolution for a batch.
func (l *Conv2D) Forward(xm *tensor.Matrix) *tensor.Matrix {
	if xm.Cols != l.InC*l.H*l.W {
		panic(fmt.Sprintf("nn: %s input width %d, want %d", l.name, xm.Cols, l.InC*l.H*l.W))
	}
	l.x = xm
	oh, ow := l.OutH(), l.OutW()
	out := tensor.New(xm.Rows, l.OutDim())
	for b := 0; b < xm.Rows; b++ {
		in := xm.Row(b)
		dst := out.Row(b)
		for oc := 0; oc < l.OutC; oc++ {
			kern := l.Kern.Row(oc)
			bias := l.B.Data[oc]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float32
					ki := 0
					for ic := 0; ic < l.InC; ic++ {
						for ky := 0; ky < l.K; ky++ {
							for kx := 0; kx < l.K; kx++ {
								s += kern[ki] * l.at(in, ic, oy-l.Pad+ky, ox-l.Pad+kx)
								ki++
							}
						}
					}
					dst[oc*oh*ow+oy*ow+ox] = s + bias
				}
			}
		}
	}
	return out
}

// Backward accumulates kernel/bias gradients and returns dLoss/dInput.
func (l *Conv2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	oh, ow := l.OutH(), l.OutW()
	dx := tensor.New(l.x.Rows, l.x.Cols)
	for b := 0; b < l.x.Rows; b++ {
		in := l.x.Row(b)
		dIn := dx.Row(b)
		grad := dout.Row(b)
		for oc := 0; oc < l.OutC; oc++ {
			kern := l.Kern.Row(oc)
			gk := l.GK.Row(oc)
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := grad[oc*oh*ow+oy*ow+ox]
					if g == 0 {
						continue
					}
					l.GB.Data[oc] += g
					ki := 0
					for ic := 0; ic < l.InC; ic++ {
						for ky := 0; ky < l.K; ky++ {
							iy := oy - l.Pad + ky
							for kx := 0; kx < l.K; kx++ {
								ix := ox - l.Pad + kx
								if iy >= 0 && iy < l.H && ix >= 0 && ix < l.W {
									idx := ic*l.H*l.W + iy*l.W + ix
									gk[ki] += g * in[idx]
									dIn[idx] += g * kern[ki]
								}
								ki++
							}
						}
					}
				}
			}
		}
	}
	return dx
}

func (l *Conv2D) Params() []*tensor.Matrix { return []*tensor.Matrix{l.Kern, l.B} }
func (l *Conv2D) Grads() []*tensor.Matrix  { return []*tensor.Matrix{l.GK, l.GB} }
func (l *Conv2D) Name() string             { return l.name }

// AvgPool2D downsamples each channel by averaging non-overlapping S×S
// windows; it has no parameters.
type AvgPool2D struct {
	C, H, W, S int
}

// NewAvgPool2D creates a pooling layer; H and W must be divisible by s.
func NewAvgPool2D(c, h, w, s int) *AvgPool2D {
	if h%s != 0 || w%s != 0 {
		panic(fmt.Sprintf("nn: pool %dx%d not divisible by %d", h, w, s))
	}
	return &AvgPool2D{C: c, H: h, W: w, S: s}
}

// OutDim returns the flattened output width.
func (l *AvgPool2D) OutDim() int { return l.C * (l.H / l.S) * (l.W / l.S) }

// Forward averages each window.
func (l *AvgPool2D) Forward(x *tensor.Matrix) *tensor.Matrix {
	oh, ow := l.H/l.S, l.W/l.S
	out := tensor.New(x.Rows, l.OutDim())
	inv := 1 / float32(l.S*l.S)
	for b := 0; b < x.Rows; b++ {
		in := x.Row(b)
		dst := out.Row(b)
		for c := 0; c < l.C; c++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float32
					for dy := 0; dy < l.S; dy++ {
						for dx := 0; dx < l.S; dx++ {
							s += in[c*l.H*l.W+(oy*l.S+dy)*l.W+ox*l.S+dx]
						}
					}
					dst[c*oh*ow+oy*ow+ox] = s * inv
				}
			}
		}
	}
	return out
}

// Backward distributes each window's gradient evenly.
func (l *AvgPool2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	oh, ow := l.H/l.S, l.W/l.S
	dx := tensor.New(dout.Rows, l.C*l.H*l.W)
	inv := 1 / float32(l.S*l.S)
	for b := 0; b < dout.Rows; b++ {
		grad := dout.Row(b)
		dst := dx.Row(b)
		for c := 0; c < l.C; c++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := grad[c*oh*ow+oy*ow+ox] * inv
					for dy := 0; dy < l.S; dy++ {
						for dxx := 0; dxx < l.S; dxx++ {
							dst[c*l.H*l.W+(oy*l.S+dy)*l.W+ox*l.S+dxx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

func (l *AvgPool2D) Params() []*tensor.Matrix { return nil }
func (l *AvgPool2D) Grads() []*tensor.Matrix  { return nil }
func (l *AvgPool2D) Name() string             { return fmt.Sprintf("avgpool(%d)", l.S) }

// NewConvMLP builds the ConvMLP-family model of the paper's CRUDA
// experiments at reduced scale: a convolutional tokenizer stem followed by
// an MLP head — the architecture whose mixed row shapes (per-filter rows in
// the stem, per-neuron rows in the head) exercise row-granulated
// scheduling exactly as the paper's ConvMLP-M does.
func NewConvMLP(inC, h, w int, stem []int, hidden []int, classes int, r *tensor.RNG) *Sequential {
	var layers []Layer
	c := inC
	for _, outC := range stem {
		conv := NewConv2D(c, h, w, outC, 3, 1, r)
		layers = append(layers, conv, NewReLU())
		c = outC
	}
	pool := NewAvgPool2D(c, h, w, 2)
	layers = append(layers, pool)
	prev := pool.OutDim()
	for _, hdim := range hidden {
		layers = append(layers, NewLinear(prev, hdim, r), NewReLU())
		prev = hdim
	}
	layers = append(layers, NewLinear(prev, classes, r))
	return NewSequential(layers...)
}
