// Package nn is the neural-network substrate: layer-based forward/backward
// propagation, losses, SGD with momentum, and the two model families the
// paper's application paradigms need (a classifier MLP standing in for
// ConvMLP on CRUDA, and a Fourier-feature coordinate MLP standing in for
// NICE-SLAM on CRIMP).
//
// The distributed-training layers above treat a model as an ordered list of
// parameter matrices whose rows are the unit of synchronization, so every
// layer exposes its parameters and gradients as tensor.Matrix values.
package nn

import (
	"fmt"
	"math"

	"rog/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward must be called
// before Backward for the same batch; layers cache whatever activations the
// backward pass needs.
type Layer interface {
	// Forward maps a batch×in activation matrix to batch×out.
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward consumes dLoss/dOut (batch×out), accumulates parameter
	// gradients, and returns dLoss/dIn (batch×in).
	Backward(dout *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's parameter matrices (may be empty).
	Params() []*tensor.Matrix
	// Grads returns gradient matrices matching Params element-for-element.
	Grads() []*tensor.Matrix
	// Name identifies the layer for diagnostics.
	Name() string
}

// Linear is a fully connected layer: out = x·W + b.
// W is in×out so that each of its rows corresponds to one input unit's
// outgoing weights — the "row" granularity the paper schedules.
type Linear struct {
	W, B   *tensor.Matrix // B is 1×out
	GW, GB *tensor.Matrix
	x      *tensor.Matrix // cached input
	name   string
}

// NewLinear creates an in×out fully connected layer with Xavier-initialized
// weights and zero bias.
func NewLinear(in, out int, r *tensor.RNG) *Linear {
	l := &Linear{
		W:    tensor.New(in, out),
		B:    tensor.New(1, out),
		GW:   tensor.New(in, out),
		GB:   tensor.New(1, out),
		name: fmt.Sprintf("linear(%dx%d)", in, out),
	}
	l.W.XavierInit(r, in, out)
	return l
}

// Forward computes x·W + b for a batch.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	l.x = x
	out := tensor.Mul(x, l.W)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j, b := range l.B.Data {
			row[j] += b
		}
	}
	return out
}

// Backward accumulates dW += xᵀ·dout, dB += colsum(dout) and returns
// dx = dout·Wᵀ.
func (l *Linear) Backward(dout *tensor.Matrix) *tensor.Matrix {
	gw := tensor.New(l.W.Rows, l.W.Cols)
	tensor.MulTransAInto(gw, l.x, dout)
	l.GW.Add(gw)
	for i := 0; i < dout.Rows; i++ {
		row := dout.Row(i)
		for j, v := range row {
			l.GB.Data[j] += v
		}
	}
	dx := tensor.New(dout.Rows, l.W.Rows)
	tensor.MulTransBInto(dx, dout, l.W)
	return dx
}

func (l *Linear) Params() []*tensor.Matrix { return []*tensor.Matrix{l.W, l.B} }
func (l *Linear) Grads() []*tensor.Matrix  { return []*tensor.Matrix{l.GW, l.GB} }
func (l *Linear) Name() string             { return l.name }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative activations.
func (l *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	if cap(l.mask) < len(x.Data) {
		l.mask = make([]bool, len(x.Data))
	}
	l.mask = l.mask[:len(x.Data)]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
			l.mask[i] = false
		} else {
			l.mask[i] = true
		}
	}
	return out
}

// Backward gates the upstream gradient by the forward mask.
func (l *ReLU) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dx := dout.Clone()
	for i := range dx.Data {
		if !l.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

func (l *ReLU) Params() []*tensor.Matrix { return nil }
func (l *ReLU) Grads() []*tensor.Matrix  { return nil }
func (l *ReLU) Name() string             { return "relu" }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	out *tensor.Matrix
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (l *Tanh) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	out.Apply(func(v float32) float32 { return float32(math.Tanh(float64(v))) })
	l.out = out
	return out
}

// Backward multiplies by 1−tanh².
func (l *Tanh) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dx := dout.Clone()
	for i, y := range l.out.Data {
		dx.Data[i] *= 1 - y*y
	}
	return dx
}

func (l *Tanh) Params() []*tensor.Matrix { return nil }
func (l *Tanh) Grads() []*tensor.Matrix  { return nil }
func (l *Tanh) Name() string             { return "tanh" }

// FourierEncode is a fixed (non-learned) positional encoding used by the
// implicit-map model: each input coordinate c is expanded to
// [sin(2^k π c), cos(2^k π c)] for k = 0..Levels-1, with the raw coordinate
// prepended. This is the standard NeRF/NICE-SLAM encoding.
type FourierEncode struct {
	In     int
	Levels int
}

// NewFourierEncode returns an encoding layer for `in` coordinates at
// `levels` octaves.
func NewFourierEncode(in, levels int) *FourierEncode {
	return &FourierEncode{In: in, Levels: levels}
}

// OutDim reports the encoded width: in * (1 + 2*levels).
func (l *FourierEncode) OutDim() int { return l.In * (1 + 2*l.Levels) }

// Forward expands each coordinate into its Fourier features.
func (l *FourierEncode) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, l.OutDim())
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		dst := out.Row(i)
		p := 0
		for _, c := range src {
			dst[p] = c
			p++
			for k := 0; k < l.Levels; k++ {
				f := float64(int64(1)<<uint(k)) * math.Pi * float64(c)
				dst[p] = float32(math.Sin(f))
				dst[p+1] = float32(math.Cos(f))
				p += 2
			}
		}
	}
	return out
}

// Backward stops the gradient: the encoding has no parameters and the
// coordinates are inputs, so a zero matrix of the input shape is returned.
func (l *FourierEncode) Backward(dout *tensor.Matrix) *tensor.Matrix {
	return tensor.New(dout.Rows, l.In)
}

func (l *FourierEncode) Params() []*tensor.Matrix { return nil }
func (l *FourierEncode) Grads() []*tensor.Matrix  { return nil }
func (l *FourierEncode) Name() string             { return fmt.Sprintf("fourier(%d,%d)", l.In, l.Levels) }
