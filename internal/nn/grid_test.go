package nn

import (
	"math"
	"testing"

	"rog/internal/tensor"
)

func TestGridInterpolatesCorners(t *testing.T) {
	r := tensor.NewRNG(1)
	l := NewFeatureGrid2D(4, 2, r)
	// Query exactly at the (-1,-1) corner: must return cell (0,0)'s
	// feature exactly.
	x := tensor.NewFrom(1, 2, []float32{-1, -1})
	out := l.Forward(x)
	want := l.Grid.Row(0)
	for j := 0; j < 2; j++ {
		if math.Abs(float64(out.At(0, j)-want[j])) > 1e-6 {
			t.Fatalf("corner feature %v want %v", out.Row(0), want)
		}
	}
	// (+1,+1) corner → last cell.
	out = l.Forward(tensor.NewFrom(1, 2, []float32{1, 1}))
	want = l.Grid.Row(15)
	for j := 0; j < 2; j++ {
		if math.Abs(float64(out.At(0, j)-want[j])) > 1e-6 {
			t.Fatalf("far corner %v want %v", out.Row(0), want)
		}
	}
}

func TestGridInterpolationIsConvex(t *testing.T) {
	// Any interior query is a convex combination of 4 cells: weights sum
	// to 1, so a constant grid returns the constant.
	r := tensor.NewRNG(2)
	l := NewFeatureGrid2D(8, 3, r)
	l.Grid.Fill(0.7)
	rr := tensor.NewRNG(5)
	for i := 0; i < 50; i++ {
		x := tensor.NewFrom(1, 2, []float32{
			float32(2*rr.Float64() - 1), float32(2*rr.Float64() - 1),
		})
		out := l.Forward(x)
		for _, v := range out.Row(0) {
			if math.Abs(float64(v)-0.7) > 1e-5 {
				t.Fatalf("constant grid interpolated to %v", v)
			}
		}
	}
}

func TestGridOutOfRangeClamped(t *testing.T) {
	r := tensor.NewRNG(3)
	l := NewFeatureGrid2D(4, 1, r)
	out := l.Forward(tensor.NewFrom(2, 2, []float32{-5, -5, 5, 5}))
	if math.IsNaN(float64(out.At(0, 0))) || math.IsNaN(float64(out.At(1, 0))) {
		t.Fatal("clamping failed")
	}
}

func TestGridGradientNumerical(t *testing.T) {
	r := tensor.NewRNG(4)
	model := NewGridMap(6, 4, []int{8}, 1, r)
	x := tensor.New(5, 2)
	x.FillUniform(r, -0.9, 0.9)
	target := tensor.New(5, 1)
	target.FillUniform(r, -0.5, 0.5)

	model.ZeroGrads()
	_, d := MSE(model.Forward(x), target)
	model.Backward(d)

	params, grads := model.Params(), model.Grads()
	const eps = 1e-3
	for pi, p := range params {
		for _, idx := range []int{0, len(p.Data) / 2, len(p.Data) - 1} {
			orig := p.Data[idx]
			p.Data[idx] = orig + eps
			lp, _ := MSE(model.Forward(x), target)
			p.Data[idx] = orig - eps
			lm, _ := MSE(model.Forward(x), target)
			p.Data[idx] = orig
			want := (lp - lm) / (2 * eps)
			got := float64(grads[pi].Data[idx])
			if math.Abs(want-got) > 1e-2*(1+math.Abs(want)) {
				t.Fatalf("param %d idx %d: analytic %v numeric %v", pi, idx, got, want)
			}
		}
	}
}

func TestGridMapLearnsAField(t *testing.T) {
	r := tensor.NewRNG(6)
	model := NewGridMap(12, 6, []int{16}, 1, r)
	opt := NewSGD(0.1, 0.9)
	field := func(x, y float64) float64 { return math.Tanh(2 * x * y) }

	rr := tensor.NewRNG(9)
	var last float64
	for i := 0; i < 400; i++ {
		x := tensor.New(32, 2)
		y := tensor.New(32, 1)
		for b := 0; b < 32; b++ {
			px, py := 2*rr.Float64()-1, 2*rr.Float64()-1
			x.Set(b, 0, float32(px))
			x.Set(b, 1, float32(py))
			y.Set(b, 0, float32(field(px, py)))
		}
		model.ZeroGrads()
		loss, g := MSE(model.Forward(x), y)
		last = loss
		model.Backward(g)
		opt.Step(model.Params(), model.Grads())
	}
	if last > 0.02 {
		t.Fatalf("grid map failed to fit field: loss %v", last)
	}
}

func TestGridRowsDominateParams(t *testing.T) {
	// The design intent: most rows belong to the grid (spatial units).
	r := tensor.NewRNG(7)
	model := NewGridMap(16, 8, []int{16}, 1, r)
	gridRows := 16 * 16
	if model.NumRows() < gridRows {
		t.Fatalf("rows %d < grid cells %d", model.NumRows(), gridRows)
	}
	frac := float64(gridRows) / float64(model.NumRows())
	if frac < 0.8 {
		t.Fatalf("grid rows only %.2f of all rows", frac)
	}
}

func TestGridWrongInputPanics(t *testing.T) {
	r := tensor.NewRNG(8)
	l := NewFeatureGrid2D(4, 2, r)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Forward(tensor.New(1, 3))
}
