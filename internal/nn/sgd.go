package nn

import "rog/internal/tensor"

// SGD implements stochastic gradient descent with classical momentum:
//
//	v ← µ·v + g;  w ← w − η·v
//
// Following the paper's implementation section, the distributed layers apply
// updates per parameter row (ROG pulls individual averaged rows from the
// server), so besides the whole-model Step the optimizer exposes ApplyRow
// with a per-row momentum buffer. Block-wise momentum as in the 1-bit SGD
// paper [22] falls out naturally: each row is a block.
type SGD struct {
	LR       float64
	Momentum float64
	velocity []*tensor.Matrix // lazily sized to the model
}

// NewSGD returns an optimizer with the given learning rate and momentum
// coefficient (0 disables momentum).
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum}
}

func (o *SGD) ensureVelocity(params []*tensor.Matrix) {
	if len(o.velocity) == len(params) {
		return
	}
	o.velocity = make([]*tensor.Matrix, len(params))
	for i, p := range params {
		o.velocity[i] = tensor.New(p.Rows, p.Cols)
	}
}

// Step applies one update to every parameter from the matching gradient.
func (o *SGD) Step(params, grads []*tensor.Matrix) {
	if len(params) != len(grads) {
		panic("nn: SGD.Step params/grads length mismatch")
	}
	o.ensureVelocity(params)
	lr := float32(o.LR)
	mu := float32(o.Momentum)
	for i, p := range params {
		g := grads[i]
		v := o.velocity[i]
		for j := range p.Data {
			v.Data[j] = mu*v.Data[j] + g.Data[j]
			p.Data[j] -= lr * v.Data[j]
		}
	}
}

// ApplyRow updates a single row of parameter matrix p (index paramIdx in the
// model's parameter list) from the averaged gradient row grad.
func (o *SGD) ApplyRow(params []*tensor.Matrix, paramIdx, row int, grad []float32) {
	o.ensureVelocity(params)
	p := params[paramIdx]
	v := o.velocity[paramIdx]
	if len(grad) != p.Cols {
		panic("nn: ApplyRow gradient width mismatch")
	}
	lr := float32(o.LR)
	mu := float32(o.Momentum)
	pr := p.Row(row)
	vr := v.Row(row)
	for j, g := range grad {
		vr[j] = mu*vr[j] + g
		pr[j] -= lr * vr[j]
	}
}
