package nn

import "rog/internal/tensor"

// NewClassifierMLP builds the CRUDA stand-in model: a multi-layer perceptron
// classifier. The paper uses ConvMLP-M (16.95M params, 33307 rows); we scale
// the same architecture family down so the whole experiment suite runs at
// laptop scale while the row-granulated machinery operates identically.
func NewClassifierMLP(in int, hidden []int, classes int, r *tensor.RNG) *Sequential {
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewLinear(prev, h, r), NewReLU())
		prev = h
	}
	layers = append(layers, NewLinear(prev, classes, r))
	return NewSequential(layers...)
}

// NewImplicitMapMLP builds the CRIMP stand-in model: a coordinate MLP with
// Fourier positional encoding that regresses scene occupancy/appearance at
// 2-D positions, the same training paradigm as NICE-SLAM's implicit map.
func NewImplicitMapMLP(levels int, hidden []int, out int, r *tensor.RNG) *Sequential {
	enc := NewFourierEncode(2, levels)
	var layers []Layer
	layers = append(layers, enc)
	prev := enc.OutDim()
	for _, h := range hidden {
		layers = append(layers, NewLinear(prev, h, r), NewReLU())
		prev = h
	}
	layers = append(layers, NewLinear(prev, out, r), NewTanh())
	return NewSequential(layers...)
}
