package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Model checkpoint format: magic, version, matrix count, then each
// parameter matrix as rows/cols and row-major float32 data. Robots
// checkpoint the shared model periodically (the paper validates from
// checkpoints every 50 iterations), so the format is part of the library
// surface.
var checkpointMagic = [4]byte{'R', 'O', 'G', 'M'}

const checkpointVersion = 1

// SaveParams writes every parameter matrix of the model to w.
func (s *Sequential) SaveParams(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	params := s.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint32(checkpointVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.Rows)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.Cols)); err != nil {
			return err
		}
		for _, v := range p.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadParams reads a checkpoint written by SaveParams into the model. The
// architecture must match exactly.
func (s *Sequential) LoadParams(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: not a ROG model checkpoint")
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != checkpointVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	params := s.Params()
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d matrices, model has %d", count, len(params))
	}
	for i, p := range params {
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return err
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return err
		}
		if int(rows) != p.Rows || int(cols) != p.Cols {
			return fmt.Errorf("nn: matrix %d is %dx%d in checkpoint, %dx%d in model",
				i, rows, cols, p.Rows, p.Cols)
		}
		buf := make([]byte, 4*rows*cols)
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("nn: matrix %d data: %w", i, err)
		}
		for j := range p.Data {
			p.Data[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
	}
	return nil
}

// SameArchitecture reports whether two models have identical parameter
// shapes (and so can exchange checkpoints and gradient rows).
func SameArchitecture(a, b *Sequential) bool {
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i].Rows != pb[i].Rows || pa[i].Cols != pb[i].Cols {
			return false
		}
	}
	return true
}
