package nn

import (
	"fmt"
	"math"

	"rog/internal/tensor"
)

// FeatureGrid2D is the core representation of NICE-SLAM-style implicit
// mapping: a learned G×G grid of F-dimensional feature vectors covering
// [-1,1]², queried by bilinear interpolation. The grid is stored as a
// (G·G)×F parameter matrix, so each *row* is one map cell — under
// row-granulated synchronization ROG ships individual map regions, which
// is precisely the "neural implicit scalable encoding" decomposition.
type FeatureGrid2D struct {
	G, F  int
	Grid  *tensor.Matrix // (G*G)×F
	GGrid *tensor.Matrix
	// cached interpolation state for the backward pass
	idx [][4]int
	wts [][4]float32
}

// NewFeatureGrid2D creates a grid with small random features.
func NewFeatureGrid2D(g, f int, r *tensor.RNG) *FeatureGrid2D {
	l := &FeatureGrid2D{
		G:     g,
		F:     f,
		Grid:  tensor.New(g*g, f),
		GGrid: tensor.New(g*g, f),
	}
	l.Grid.FillNormal(r, 0.05)
	return l
}

// locate maps a coordinate in [-1,1] to a cell index and fraction.
func (l *FeatureGrid2D) locate(c float32) (int, float32) {
	// Map [-1,1] → [0, G-1].
	v := (float64(c) + 1) / 2 * float64(l.G-1)
	if v < 0 {
		v = 0
	}
	if v > float64(l.G-1) {
		v = float64(l.G - 1)
	}
	i := int(math.Floor(v))
	if i >= l.G-1 {
		i = l.G - 2
	}
	return i, float32(v - float64(i))
}

// Forward interpolates features at batch×2 coordinates.
func (l *FeatureGrid2D) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != 2 {
		panic(fmt.Sprintf("nn: FeatureGrid2D wants batch×2 coords, got %d cols", x.Cols))
	}
	out := tensor.New(x.Rows, l.F)
	l.idx = make([][4]int, x.Rows)
	l.wts = make([][4]float32, x.Rows)
	for b := 0; b < x.Rows; b++ {
		cx, cy := x.At(b, 0), x.At(b, 1)
		ix, fx := l.locate(cx)
		iy, fy := l.locate(cy)
		cells := [4]int{
			iy*l.G + ix, iy*l.G + ix + 1,
			(iy+1)*l.G + ix, (iy+1)*l.G + ix + 1,
		}
		w := [4]float32{
			(1 - fx) * (1 - fy), fx * (1 - fy),
			(1 - fx) * fy, fx * fy,
		}
		l.idx[b] = cells
		l.wts[b] = w
		dst := out.Row(b)
		for k := 0; k < 4; k++ {
			cell := l.Grid.Row(cells[k])
			for j := 0; j < l.F; j++ {
				dst[j] += w[k] * cell[j]
			}
		}
	}
	return out
}

// Backward scatters the feature gradient to the four interpolation corners
// and stops the gradient at the coordinates (they are inputs).
func (l *FeatureGrid2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	for b := 0; b < dout.Rows; b++ {
		g := dout.Row(b)
		for k := 0; k < 4; k++ {
			cell := l.GGrid.Row(l.idx[b][k])
			w := l.wts[b][k]
			for j := 0; j < l.F; j++ {
				cell[j] += w * g[j]
			}
		}
	}
	return tensor.New(dout.Rows, 2)
}

func (l *FeatureGrid2D) Params() []*tensor.Matrix { return []*tensor.Matrix{l.Grid} }
func (l *FeatureGrid2D) Grads() []*tensor.Matrix  { return []*tensor.Matrix{l.GGrid} }
func (l *FeatureGrid2D) Name() string             { return fmt.Sprintf("grid(%dx%dx%d)", l.G, l.G, l.F) }

// NewGridMap builds a NICE-SLAM-style implicit map: a learned feature grid
// followed by a small MLP decoder with a tanh output. Compared with the
// Fourier-feature MLP, most parameter rows live in the grid, giving the
// row scheduler spatially local units to prioritize.
func NewGridMap(gridSize, features int, hidden []int, out int, r *tensor.RNG) *Sequential {
	var layers []Layer
	layers = append(layers, NewFeatureGrid2D(gridSize, features, r))
	prev := features
	for _, h := range hidden {
		layers = append(layers, NewLinear(prev, h, r), NewReLU())
		prev = h
	}
	layers = append(layers, NewLinear(prev, out, r), NewTanh())
	return NewSequential(layers...)
}
