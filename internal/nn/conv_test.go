package nn

import (
	"math"
	"testing"

	"rog/internal/tensor"
)

func TestConvGeometry(t *testing.T) {
	r := tensor.NewRNG(1)
	l := NewConv2D(3, 8, 8, 4, 3, 1, r)
	if l.OutH() != 8 || l.OutW() != 8 || l.OutDim() != 4*64 {
		t.Fatalf("geometry: %d %d %d", l.OutH(), l.OutW(), l.OutDim())
	}
	noPad := NewConv2D(1, 5, 5, 2, 3, 0, r)
	if noPad.OutH() != 3 || noPad.OutW() != 3 {
		t.Fatalf("no-pad geometry: %d %d", noPad.OutH(), noPad.OutW())
	}
}

func TestConvIdentityKernel(t *testing.T) {
	// A 1×1 kernel with weight 1 must reproduce the input.
	r := tensor.NewRNG(2)
	l := NewConv2D(1, 4, 4, 1, 1, 0, r)
	l.Kern.Fill(1)
	l.B.Zero()
	x := tensor.New(2, 16)
	x.FillNormal(r, 1)
	out := l.Forward(x)
	if !out.AlmostEqual(x, 1e-6) {
		t.Fatal("1x1 identity kernel changed the input")
	}
}

func TestConvKnownValue(t *testing.T) {
	// 3×3 all-ones kernel, no padding, on a 3×3 all-ones image = 9.
	r := tensor.NewRNG(3)
	l := NewConv2D(1, 3, 3, 1, 3, 0, r)
	l.Kern.Fill(1)
	l.B.Data[0] = 0.5
	x := tensor.New(1, 9)
	x.Fill(1)
	out := l.Forward(x)
	if out.Cols != 1 || math.Abs(float64(out.Data[0])-9.5) > 1e-6 {
		t.Fatalf("conv sum=%v want 9.5", out.Data)
	}
}

func TestConvGradientNumerical(t *testing.T) {
	r := tensor.NewRNG(4)
	model := NewSequential(
		NewConv2D(2, 4, 4, 3, 3, 1, r),
		NewReLU(),
		NewLinear(3*16, 2, r),
	)
	x := tensor.New(3, 2*16)
	x.FillNormal(r, 1)
	labels := []int{0, 1, 0}

	model.ZeroGrads()
	_, d := SoftmaxCrossEntropy(model.Forward(x), labels)
	model.Backward(d)

	params, grads := model.Params(), model.Grads()
	const eps = 1e-3
	for pi, p := range params {
		for _, idx := range []int{0, len(p.Data) / 3, len(p.Data) - 1} {
			orig := p.Data[idx]
			p.Data[idx] = orig + eps
			lp, _ := SoftmaxCrossEntropy(model.Forward(x), labels)
			p.Data[idx] = orig - eps
			lm, _ := SoftmaxCrossEntropy(model.Forward(x), labels)
			p.Data[idx] = orig
			want := (lp - lm) / (2 * eps)
			got := float64(grads[pi].Data[idx])
			if math.Abs(want-got) > 1e-2*(1+math.Abs(want)) {
				t.Fatalf("param %d idx %d: analytic %v numeric %v", pi, idx, got, want)
			}
		}
	}
}

func TestConvInputGradientNumerical(t *testing.T) {
	r := tensor.NewRNG(5)
	l := NewConv2D(1, 4, 4, 2, 3, 1, r)
	x := tensor.New(1, 16)
	x.FillNormal(r, 1)
	target := tensor.New(1, l.OutDim())
	target.FillNormal(r, 1)

	loss := func() float64 {
		v, _ := MSE(l.Forward(x), target)
		return v
	}
	l.GK.Zero()
	l.GB.Zero()
	_, d := MSE(l.Forward(x), target)
	dx := l.Backward(d)

	const eps = 1e-3
	for _, idx := range []int{0, 7, 15} {
		orig := x.Data[idx]
		x.Data[idx] = orig + eps
		lp := loss()
		x.Data[idx] = orig - eps
		lm := loss()
		x.Data[idx] = orig
		want := (lp - lm) / (2 * eps)
		got := float64(dx.Data[idx])
		if math.Abs(want-got) > 1e-2*(1+math.Abs(want)) {
			t.Fatalf("dx[%d]: analytic %v numeric %v", idx, got, want)
		}
	}
}

func TestAvgPool(t *testing.T) {
	l := NewAvgPool2D(1, 4, 4, 2)
	x := tensor.New(1, 16)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	out := l.Forward(x)
	// Window (rows 0-1, cols 0-1): (0+1+4+5)/4 = 2.5.
	if out.Cols != 4 || math.Abs(float64(out.Data[0])-2.5) > 1e-6 {
		t.Fatalf("pool=%v", out.Data)
	}
	// Backward spreads gradient evenly.
	d := tensor.New(1, 4)
	d.Fill(1)
	dx := l.Backward(d)
	for _, v := range dx.Data {
		if math.Abs(float64(v)-0.25) > 1e-6 {
			t.Fatalf("pool grad=%v", dx.Data)
		}
	}
}

func TestAvgPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on indivisible pool")
		}
	}()
	NewAvgPool2D(1, 5, 5, 2)
}

func TestConvMLPTrains(t *testing.T) {
	r := tensor.NewRNG(6)
	model := NewConvMLP(1, 6, 6, []int{4}, []int{16}, 3, r)
	opt := NewSGD(0.05, 0.9)

	// Three classes of simple patterns: vertical bar, horizontal bar, blob.
	sample := func(rr *tensor.RNG) (*tensor.Matrix, []int) {
		x := tensor.New(12, 36)
		y := make([]int, 12)
		for i := 0; i < 12; i++ {
			c := rr.Intn(3)
			y[i] = c
			img := x.Row(i)
			switch c {
			case 0:
				col := 1 + rr.Intn(4)
				for row := 0; row < 6; row++ {
					img[row*6+col] = 1
				}
			case 1:
				row := 1 + rr.Intn(4)
				for col := 0; col < 6; col++ {
					img[row*6+col] = 1
				}
			default:
				cy, cx := 1+rr.Intn(3), 1+rr.Intn(3)
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						img[(cy+dy)*6+cx+dx] = 1
					}
				}
			}
			for j := range img {
				img[j] += float32(rr.Norm() * 0.1)
			}
		}
		return x, y
	}

	rr := tensor.NewRNG(77)
	for i := 0; i < 120; i++ {
		x, y := sample(rr)
		model.ZeroGrads()
		_, g := SoftmaxCrossEntropy(model.Forward(x), y)
		model.Backward(g)
		opt.Step(model.Params(), model.Grads())
	}
	x, y := sample(tensor.NewRNG(99))
	if acc := Accuracy(model.Forward(x), y); acc < 0.7 {
		t.Fatalf("ConvMLP accuracy %.3f on trivial patterns", acc)
	}
}

func TestConvInputWidthPanics(t *testing.T) {
	r := tensor.NewRNG(7)
	l := NewConv2D(1, 4, 4, 1, 3, 1, r)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Forward(tensor.New(1, 10))
}
