package nn

import (
	"math"
	"testing"
	"testing/quick"

	"rog/internal/tensor"
)

func TestLinearForwardKnown(t *testing.T) {
	l := NewLinear(2, 2, tensor.NewRNG(1))
	l.W.CopyFrom(tensor.NewFrom(2, 2, []float32{1, 2, 3, 4}))
	l.B.CopyFrom(tensor.NewFrom(1, 2, []float32{0.5, -0.5}))
	x := tensor.NewFrom(1, 2, []float32{1, 1})
	out := l.Forward(x)
	want := tensor.NewFrom(1, 2, []float32{4.5, 5.5})
	if !out.AlmostEqual(want, 1e-6) {
		t.Fatalf("forward=%v", out.Data)
	}
}

// numericalGrad estimates dLoss/dTheta for one parameter element by central
// differences, where loss is recomputed via full forward passes.
func numericalGrad(model *Sequential, x *tensor.Matrix, labels []int, p *tensor.Matrix, idx int) float64 {
	const eps = 1e-3
	orig := p.Data[idx]
	p.Data[idx] = orig + eps
	lossPlus, _ := SoftmaxCrossEntropy(model.Forward(x), labels)
	p.Data[idx] = orig - eps
	lossMinus, _ := SoftmaxCrossEntropy(model.Forward(x), labels)
	p.Data[idx] = orig
	return (lossPlus - lossMinus) / (2 * eps)
}

func TestBackpropMatchesNumericalGradient(t *testing.T) {
	r := tensor.NewRNG(7)
	model := NewClassifierMLP(5, []int{8}, 3, r)
	x := tensor.New(4, 5)
	x.FillNormal(r, 1)
	labels := []int{0, 2, 1, 2}

	model.ZeroGrads()
	logits := model.Forward(x)
	_, dlogits := SoftmaxCrossEntropy(logits, labels)
	model.Backward(dlogits)

	params, grads := model.Params(), model.Grads()
	for pi, p := range params {
		// Check a few elements of each parameter.
		for _, idx := range []int{0, len(p.Data) / 2, len(p.Data) - 1} {
			want := numericalGrad(model, x, labels, p, idx)
			got := float64(grads[pi].Data[idx])
			if math.Abs(want-got) > 1e-2*(1+math.Abs(want)) {
				t.Fatalf("param %d elem %d: analytic %v vs numeric %v", pi, idx, got, want)
			}
		}
	}
}

func TestMSEGradientNumerical(t *testing.T) {
	r := tensor.NewRNG(9)
	model := NewImplicitMapMLP(3, []int{10}, 1, r)
	x := tensor.New(6, 2)
	x.FillUniform(r, -1, 1)
	target := tensor.New(6, 1)
	target.FillUniform(r, -0.5, 0.5)

	model.ZeroGrads()
	pred := model.Forward(x)
	_, dpred := MSE(pred, target)
	model.Backward(dpred)

	params, grads := model.Params(), model.Grads()
	p := params[0]
	const eps = 1e-3
	for _, idx := range []int{0, len(p.Data) - 1} {
		orig := p.Data[idx]
		p.Data[idx] = orig + eps
		lp, _ := MSE(model.Forward(x), target)
		p.Data[idx] = orig - eps
		lm, _ := MSE(model.Forward(x), target)
		p.Data[idx] = orig
		want := (lp - lm) / (2 * eps)
		got := float64(grads[0].Data[idx])
		if math.Abs(want-got) > 1e-2*(1+math.Abs(want)) {
			t.Fatalf("elem %d: analytic %v vs numeric %v", idx, got, want)
		}
	}
}

func TestReLU(t *testing.T) {
	l := NewReLU()
	x := tensor.NewFrom(1, 4, []float32{-1, 0, 2, -3})
	out := l.Forward(x)
	if !out.Equal(tensor.NewFrom(1, 4, []float32{0, 0, 2, 0})) {
		t.Fatalf("relu=%v", out.Data)
	}
	dx := l.Backward(tensor.NewFrom(1, 4, []float32{1, 1, 1, 1}))
	if !dx.Equal(tensor.NewFrom(1, 4, []float32{0, 0, 1, 0})) {
		t.Fatalf("relu grad=%v", dx.Data)
	}
}

func TestTanhRangeAndGrad(t *testing.T) {
	l := NewTanh()
	x := tensor.NewFrom(1, 3, []float32{-10, 0, 10})
	out := l.Forward(x)
	if out.Data[0] > -0.99 || out.Data[1] != 0 || out.Data[2] < 0.99 {
		t.Fatalf("tanh=%v", out.Data)
	}
	dx := l.Backward(tensor.NewFrom(1, 3, []float32{1, 1, 1}))
	if dx.Data[1] != 1 { // derivative at 0 is 1
		t.Fatalf("tanh grad at 0 = %v", dx.Data[1])
	}
	if dx.Data[0] > 1e-3 || dx.Data[2] > 1e-3 {
		t.Fatalf("tanh grad saturation: %v", dx.Data)
	}
}

func TestFourierEncodeDims(t *testing.T) {
	enc := NewFourierEncode(2, 4)
	if enc.OutDim() != 2*(1+8) {
		t.Fatalf("OutDim=%d", enc.OutDim())
	}
	x := tensor.NewFrom(1, 2, []float32{0.5, -0.25})
	out := enc.Forward(x)
	if out.Cols != enc.OutDim() {
		t.Fatalf("cols=%d", out.Cols)
	}
	// First feature of each coordinate is the raw value.
	if out.Data[0] != 0.5 || out.Data[9] != -0.25 {
		t.Fatalf("raw passthrough: %v", out.Data)
	}
	// sin(π·0.5)=1 at octave 0.
	if math.Abs(float64(out.Data[1])-1) > 1e-6 {
		t.Fatalf("sin feature=%v", out.Data[1])
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes → loss = ln(4).
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{1, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss=%v", loss)
	}
	// Gradient rows sum to ~0 (softmax sums to 1, minus one-hot).
	for i := 0; i < 2; i++ {
		var s float64
		for _, v := range grad.Row(i) {
			s += float64(v)
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("grad row sum=%v", s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := tensor.NewFrom(1, 3, []float32{1000, 1000, 1000})
	loss, _ := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss=%v", loss)
	}
}

func TestAccuracyAndArgmax(t *testing.T) {
	logits := tensor.NewFrom(3, 3, []float32{
		1, 5, 2,
		9, 0, 0,
		0, 0, 3,
	})
	if got := Argmax(logits); got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("argmax=%v", got)
	}
	acc := Accuracy(logits, []int{1, 0, 0})
	if math.Abs(acc-2.0/3.0) > 1e-9 {
		t.Fatalf("accuracy=%v", acc)
	}
	if Accuracy(tensor.New(0, 3), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestSGDStepReducesLoss(t *testing.T) {
	r := tensor.NewRNG(3)
	model := NewClassifierMLP(4, []int{16}, 3, r)
	opt := NewSGD(0.1, 0.9)
	x := tensor.New(16, 4)
	x.FillNormal(r, 1)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 3
	}
	first, _ := SoftmaxCrossEntropy(model.Forward(x), labels)
	var last float64
	for i := 0; i < 60; i++ {
		model.ZeroGrads()
		logits := model.Forward(x)
		loss, d := SoftmaxCrossEntropy(logits, labels)
		last = loss
		model.Backward(d)
		opt.Step(model.Params(), model.Grads())
	}
	if last >= first/2 {
		t.Fatalf("loss did not drop: %v -> %v", first, last)
	}
}

func TestApplyRowEquivalentToStep(t *testing.T) {
	// A full Step must equal applying every row individually with ApplyRow
	// when momentum state starts equal.
	r := tensor.NewRNG(5)
	m1 := NewClassifierMLP(3, []int{4}, 2, r)
	m2 := NewSequential()
	*m2 = *NewClassifierMLP(3, []int{4}, 2, tensor.NewRNG(5))
	m2.CopyParamsFrom(m1)

	x := tensor.New(5, 3)
	x.FillNormal(r, 1)
	labels := []int{0, 1, 0, 1, 1}

	run := func(m *Sequential) []*tensor.Matrix {
		m.ZeroGrads()
		_, d := SoftmaxCrossEntropy(m.Forward(x), labels)
		m.Backward(d)
		return m.Grads()
	}

	g1 := run(m1)
	g2 := run(m2)

	o1 := NewSGD(0.05, 0.9)
	o2 := NewSGD(0.05, 0.9)
	o1.Step(m1.Params(), g1)
	for pi, g := range g2 {
		for row := 0; row < g.Rows; row++ {
			o2.ApplyRow(m2.Params(), pi, row, g.Row(row))
		}
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		if !p1[i].AlmostEqual(p2[i], 1e-6) {
			t.Fatalf("param %d diverged", i)
		}
	}
}

func TestSnapshotGradsZeroesOriginals(t *testing.T) {
	r := tensor.NewRNG(8)
	model := NewClassifierMLP(3, []int{4}, 2, r)
	x := tensor.New(2, 3)
	x.FillNormal(r, 1)
	_, d := SoftmaxCrossEntropy(model.Forward(x), []int{0, 1})
	model.Backward(d)
	snap := model.SnapshotGrads()
	var any bool
	for _, g := range snap {
		if g.SumAbs() > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("snapshot contained no gradient signal")
	}
	for _, g := range model.Grads() {
		if g.SumAbs() != 0 {
			t.Fatal("original gradients not zeroed")
		}
	}
}

func TestNumRowsAndParams(t *testing.T) {
	r := tensor.NewRNG(1)
	m := NewClassifierMLP(10, []int{20}, 5, r)
	// linear(10x20): W 10 rows + B 1 row; linear(20x5): 20 + 1.
	if m.NumRows() != 10+1+20+1 {
		t.Fatalf("NumRows=%d", m.NumRows())
	}
	if m.NumParams() != 10*20+20+20*5+5 {
		t.Fatalf("NumParams=%d", m.NumParams())
	}
}

// Property: forward pass is deterministic given fixed parameters.
func TestForwardDeterministic(t *testing.T) {
	r := tensor.NewRNG(99)
	model := NewClassifierMLP(4, []int{6}, 3, r)
	f := func(a, b, c, d float32) bool {
		clamp := func(v float32) float32 {
			if v != v || v > 1e6 || v < -1e6 { // NaN/huge guard
				return 0
			}
			return v
		}
		x := tensor.NewFrom(1, 4, []float32{clamp(a), clamp(b), clamp(c), clamp(d)})
		o1 := model.Forward(x).Clone()
		o2 := model.Forward(x)
		return o1.Equal(o2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: SGD with lr=0 never changes parameters.
func TestSGDZeroLRIsNoop(t *testing.T) {
	r := tensor.NewRNG(13)
	model := NewClassifierMLP(3, []int{4}, 2, r)
	before := make([]*tensor.Matrix, 0)
	for _, p := range model.Params() {
		before = append(before, p.Clone())
	}
	x := tensor.New(2, 3)
	x.FillNormal(r, 1)
	_, d := SoftmaxCrossEntropy(model.Forward(x), []int{0, 1})
	model.Backward(d)
	NewSGD(0, 0.9).Step(model.Params(), model.Grads())
	for i, p := range model.Params() {
		if !p.Equal(before[i]) {
			t.Fatal("lr=0 changed parameters")
		}
	}
}
