package simnet

import (
	"math"
	"testing"

	"rog/internal/tensor"
	"rog/internal/trace"
)

// referenceCompletionTimes integrates the fluid-flow model by brute force
// (tiny fixed steps) and returns each flow's completion time. It is the
// specification the event-driven Channel must match.
func referenceCompletionTimes(links []*trace.Trace, starts []float64, devices []int, sizes []float64, dt float64) []float64 {
	n := len(sizes)
	remaining := append([]float64(nil), sizes...)
	done := make([]float64, n)
	for i := range done {
		done[i] = -1
	}
	for now := 0.0; now < 10000; now += dt {
		active := 0
		for i := 0; i < n; i++ {
			if done[i] < 0 && starts[i] <= now {
				active++
			}
		}
		if active == 0 {
			allDone := true
			for i := 0; i < n; i++ {
				if done[i] < 0 {
					allDone = false
				}
			}
			if allDone {
				return done
			}
			continue
		}
		for i := 0; i < n; i++ {
			if done[i] >= 0 || starts[i] > now {
				continue
			}
			rate := links[devices[i]].At(now) * 1e6 / 8 / float64(active)
			remaining[i] -= rate * dt
			if remaining[i] <= 0 {
				done[i] = now + dt
			}
		}
	}
	return done
}

// TestChannelMatchesBruteForceIntegration cross-validates the event-driven
// channel against brute-force integration over random flow schedules on
// fluctuating traces.
func TestChannelMatchesBruteForceIntegration(t *testing.T) {
	r := tensor.NewRNG(2024)
	for trial := 0; trial < 8; trial++ {
		nDev := 2 + r.Intn(3)
		links := make([]*trace.Trace, nDev)
		for d := range links {
			links[d] = trace.GenerateEnv(trace.Outdoor, 60, r.Uint64()%10000)
		}
		nFlows := 2 + r.Intn(4)
		starts := make([]float64, nFlows)
		devices := make([]int, nFlows)
		sizes := make([]float64, nFlows)
		for i := range sizes {
			starts[i] = r.Float64() * 5
			devices[i] = r.Intn(nDev)
			sizes[i] = (0.5 + 4*r.Float64()) * 1e6
		}

		// Event-driven run.
		k := NewKernel()
		ch := NewChannel(k, links, 1)
		got := make([]float64, nFlows)
		for i := range got {
			got[i] = -1
		}
		for i := 0; i < nFlows; i++ {
			i := i
			k.At(starts[i], func() {
				ch.StartFlow(devices[i], sizes[i], func() { got[i] = k.Now() })
			})
		}
		k.RunUntilIdle(50_000_000)

		want := referenceCompletionTimes(links, starts, devices, sizes, 0.001)
		for i := 0; i < nFlows; i++ {
			if got[i] < 0 || want[i] < 0 {
				t.Fatalf("trial %d flow %d incomplete: got %v want %v", trial, i, got[i], want[i])
			}
			// The reference discretization error dominates the tolerance.
			if math.Abs(got[i]-want[i]) > 0.05+want[i]*0.01 {
				t.Fatalf("trial %d flow %d: event-driven %.4f vs brute force %.4f",
					trial, i, got[i], want[i])
			}
		}
	}
}
