package simnet

import (
	"math"
	"testing"

	"rog/internal/trace"
)

func TestParseFaultSchedule(t *testing.T) {
	fs, err := ParseFaultSchedule("crash:1@120+60, blackout:0@60+30,flap:3@100+120/10,crash:2@300")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultSchedule{
		{Kind: FaultCrash, Worker: 1, At: 120, Duration: 60},
		{Kind: FaultBlackout, Worker: 0, At: 60, Duration: 30},
		{Kind: FaultFlap, Worker: 3, At: 100, Duration: 120, Period: 10},
		{Kind: FaultCrash, Worker: 2, At: 300},
	}
	if len(fs) != len(want) {
		t.Fatalf("parsed %d events", len(fs))
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, fs[i], want[i])
		}
	}
	// The spec grammar round-trips through String.
	again, err := ParseFaultSchedule(fs.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != fs.String() {
		t.Fatalf("round trip: %q vs %q", again.String(), fs.String())
	}
	if fs2, err := ParseFaultSchedule(""); err != nil || fs2 != nil {
		t.Fatal("empty spec should parse to nil")
	}
	for _, bad := range []string{
		"crash1@2", "melt:1@2", "crash:x@2", "crash:1@x", "crash:1@2+x",
		"flap:1@2+10", "flap:1@2/0.5",
		"servercrash@x", "servercrash@2+x", "servercrash:1@2", "servercrash",
	} {
		if _, err := ParseFaultSchedule(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestParseServerCrash covers the worker-less servercrash production:
// "servercrash@t" restarts immediately, "servercrash@t+dur" after dur
// seconds of extra downtime; both round-trip through String.
func TestParseServerCrash(t *testing.T) {
	fs, err := ParseFaultSchedule("servercrash@45, servercrash@120+15,crash:0@10")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultSchedule{
		{Kind: FaultServerCrash, Worker: -1, At: 45},
		{Kind: FaultServerCrash, Worker: -1, At: 120, Duration: 15},
		{Kind: FaultCrash, Worker: 0, At: 10},
	}
	if len(fs) != len(want) {
		t.Fatalf("parsed %d events", len(fs))
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, fs[i], want[i])
		}
	}
	if err := fs.Validate(2); err != nil {
		t.Fatalf("valid servercrash schedule rejected: %v", err)
	}
	again, err := ParseFaultSchedule(fs.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != fs.String() {
		t.Fatalf("round trip: %q vs %q", again.String(), fs.String())
	}
	// A servercrash that somehow targets a worker is rejected.
	if err := (FaultSchedule{{Kind: FaultServerCrash, Worker: 0, At: 1}}).Validate(2); err == nil {
		t.Fatal("worker-targeted servercrash accepted")
	}
}

// TestInjectorServerCrashCallbacks: the crash fires at At with the extra
// downtime, the restart at At+Duration — and a zero-duration event still
// crashes before it restarts.
func TestInjectorServerCrashCallbacks(t *testing.T) {
	k := NewKernel()
	links := []*trace.Trace{trace.Constant(8, 1000, 1), trace.Constant(8, 1000, 1)}
	ch := NewChannel(k, links, 1)
	inj := NewInjector(k, ch)
	type ev struct {
		what string
		at   float64
		dur  float64
	}
	var events []ev
	inj.OnServerCrash = func(d float64) { events = append(events, ev{"crash", k.Now(), d}) }
	inj.OnServerRestart = func() { events = append(events, ev{"restart", k.Now(), 0}) }
	if err := inj.Install(FaultSchedule{
		{Kind: FaultServerCrash, Worker: -1, At: 10, Duration: 5},
		{Kind: FaultServerCrash, Worker: -1, At: 40},
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle(1000)
	want := []ev{{"crash", 10, 5}, {"restart", 15, 0}, {"crash", 40, 0}, {"restart", 40, 0}}
	if len(events) != len(want) {
		t.Fatalf("events %+v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, events[i], want[i])
		}
	}
}

func TestFaultScheduleValidate(t *testing.T) {
	for name, fs := range map[string]FaultSchedule{
		"worker range": {{Kind: FaultCrash, Worker: 4, At: 1}},
		"negative t":   {{Kind: FaultCrash, Worker: 0, At: -1}},
		"negative dur": {{Kind: FaultBlackout, Worker: 0, At: 1, Duration: -2}},
		"flap period":  {{Kind: FaultFlap, Worker: 0, At: 1, Duration: 10}},
		"flap dur":     {{Kind: FaultFlap, Worker: 0, At: 1, Period: 2}},
	} {
		if err := fs.Validate(4); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := FaultSchedule{{Kind: FaultCrash, Worker: 3, At: 0, Duration: 5}}
	if err := ok.Validate(4); err != nil {
		t.Fatal(err)
	}
}

// A 10s blackout in the middle of a constant-rate flow must delay its
// completion by exactly 10s, byte-for-byte.
func TestBlackoutStallsFlowExactly(t *testing.T) {
	k := NewKernel()
	// 8 Mbps → 1e6 bytes/s; a 20e6-byte flow alone takes 20 s.
	ch := NewChannel(k, []*trace.Trace{trace.Constant(8, 1000, 1)}, 1)
	var doneAt float64
	ch.StartFlow(0, 20e6, func() { doneAt = k.Now() })

	inj := NewInjector(k, ch)
	if err := inj.Install(FaultSchedule{{Kind: FaultBlackout, Worker: 0, At: 5, Duration: 10}}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle(100000)
	if math.Abs(doneAt-30) > 1e-6 {
		t.Fatalf("flow finished at %.6f, want 30", doneAt)
	}
}

// A flapping link with a 50% duty cycle roughly doubles transfer time; the
// same seed gives bit-identical completion times.
func TestFlapIsDeterministic(t *testing.T) {
	run := func() float64 {
		k := NewKernel()
		ch := NewChannel(k, []*trace.Trace{trace.Constant(8, 1000, 1)}, 1)
		var doneAt float64
		ch.StartFlow(0, 10e6, func() { doneAt = k.Now() })
		inj := NewInjector(k, ch)
		if err := inj.Install(FaultSchedule{{Kind: FaultFlap, Worker: 0, At: 0, Duration: 100, Period: 2}}); err != nil {
			t.Fatal(err)
		}
		k.RunUntilIdle(100000)
		return doneAt
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("flap runs diverged: %v vs %v", a, b)
	}
	// 10e6 bytes at 1e6 B/s needs 10 up-seconds; with 2s-down/2s-up
	// starting down, the 10th up-second ends at t=20.
	if math.Abs(a-20) > 1e-6 {
		t.Fatalf("flap completion %.6f, want 20", a)
	}
}

// Crash callbacks fire at the scheduled virtual instants.
func TestInjectorCrashCallbacks(t *testing.T) {
	k := NewKernel()
	ch := NewChannel(k, []*trace.Trace{trace.Constant(8, 1000, 1), trace.Constant(8, 1000, 1)}, 1)
	inj := NewInjector(k, ch)
	var events []string
	inj.OnCrash = func(w int) { events = append(events, "crash", string(rune('0'+w))) }
	inj.OnRejoin = func(w int) { events = append(events, "rejoin", string(rune('0'+w))) }
	if err := inj.Install(FaultSchedule{
		{Kind: FaultCrash, Worker: 1, At: 10, Duration: 5},
		{Kind: FaultCrash, Worker: 0, At: 20},
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle(1000)
	got := ""
	for _, e := range events {
		got += e + " "
	}
	if got != "crash 1 rejoin 1 crash 0 " {
		t.Fatalf("event order %q", got)
	}
	// Out-of-range worker is rejected at install time.
	if err := inj.Install(FaultSchedule{{Kind: FaultCrash, Worker: 7, At: 1}}); err == nil {
		t.Fatal("bad worker accepted")
	}
}

// A downed flow must not consume airtime share: its peer should drain at
// full solo capacity during the blackout.
func TestBlackoutFreesAirtime(t *testing.T) {
	k := NewKernel()
	links := []*trace.Trace{trace.Constant(8, 1000, 1), trace.Constant(8, 1000, 1)}
	ch := NewChannel(k, links, 1)
	ch.SetLinkDown(0, true)
	var doneAt float64
	ch.StartFlow(0, 1e6, func() {})
	ch.StartFlow(1, 10e6, func() { doneAt = k.Now() })
	k.RunUntilIdle(100000)
	// With device 0 dark, device 1 gets the whole channel: 10 s, not 20 s.
	if math.Abs(doneAt-10) > 1e-6 {
		t.Fatalf("peer finished at %.6f, want 10 (no contention from downed link)", doneAt)
	}
	if !ch.LinkDown(0) || ch.LinkMbps(0) != 0 {
		t.Fatal("downed link should report zero capacity")
	}
}
