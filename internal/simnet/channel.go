package simnet

import (
	"fmt"
	"math"

	"rog/internal/trace"
)

// Channel is a fluid-flow model of the robots' shared wireless medium.
//
// Each device d has a link-quality trace giving the capacity its radio
// could achieve alone (Mbps). Because all devices share one 802.11 channel
// (the paper's hotspot setup), airtime is divided equally among active
// flows: with k concurrent flows, a flow on device d progresses at
// linkCapacity(d, t)/k. This reproduces both per-link fading and the
// contention that grows with worker count (Sec. VI-C).
//
// Flows are drained continuously; the channel recomputes rates at every
// flow arrival/finish/cancel and at every trace sample boundary, so byte
// integrals are exact for piecewise-constant traces.
type Channel struct {
	k     *Kernel
	links []*trace.Trace
	// Scale multiplies all link capacities; experiments use it to keep the
	// comm:compute ratio of the paper while using a smaller model.
	Scale float64

	flows      map[*Flow]struct{}
	lastUpdate float64
	recheck    *Timer
	// down marks links in blackout (capacity forced to 0 Mbps), the
	// fault-injection model of a robot driving behind a thick wall or out
	// of range. Flows on a downed link stall in place and resume when the
	// link comes back.
	down []bool
}

// Flow is one in-flight transmission.
type Flow struct {
	// Device is the index of the wireless link the flow rides on (the
	// non-AP endpoint: pushes and pulls for worker w both traverse w's
	// radio link).
	Device     int
	remaining  float64 // bytes
	sent       float64 // bytes
	onComplete func()
	done       bool
	cancelled  bool
}

// Sent returns the bytes fully delivered so far (advanced lazily; callers
// inside channel callbacks see up-to-date values).
func (f *Flow) Sent() float64 { return f.sent }

// Done reports whether the flow completed (not cancelled).
func (f *Flow) Done() bool { return f.done }

// NewChannel creates a shared channel over the given per-device link
// traces. scale multiplies all capacities (1 = use traces as-is).
func NewChannel(k *Kernel, links []*trace.Trace, scale float64) *Channel {
	if scale <= 0 {
		panic("simnet: non-positive channel scale")
	}
	return &Channel{
		k:          k,
		links:      links,
		Scale:      scale,
		flows:      make(map[*Flow]struct{}),
		lastUpdate: k.Now(),
		down:       make([]bool, len(links)),
	}
}

// bytesPerSec returns the current drain rate of flow f given n active flows.
func (c *Channel) bytesPerSec(f *Flow, at float64, n int) float64 {
	if n == 0 || c.down[f.Device] {
		return 0
	}
	mbps := c.links[f.Device].At(at) * c.Scale / float64(n)
	return mbps * 1e6 / 8
}

// contending returns the number of flows competing for airtime: flows on a
// blacked-out link transmit nothing and do not contend.
func (c *Channel) contending() int {
	n := 0
	for f := range c.flows {
		if !c.down[f.Device] {
			n++
		}
	}
	return n
}

// advance drains all active flows from lastUpdate to now using the rates
// that held over that interval (callers guarantee no trace boundary or
// flow event lies strictly inside it).
func (c *Channel) advance(now float64) {
	dt := now - c.lastUpdate
	if dt <= 0 {
		c.lastUpdate = now
		return
	}
	n := c.contending()
	for f := range c.flows {
		rate := c.bytesPerSec(f, c.lastUpdate, n)
		drained := rate * dt
		if drained > f.remaining {
			drained = f.remaining
		}
		f.remaining -= drained
		f.sent += drained
	}
	c.lastUpdate = now
}

// StartFlow begins transmitting `bytes` on device's link; onComplete fires
// (in virtual time) when the last byte is delivered.
func (c *Channel) StartFlow(device int, bytes float64, onComplete func()) *Flow {
	if device < 0 || device >= len(c.links) {
		panic(fmt.Sprintf("simnet: device %d out of range", device))
	}
	if bytes < 0 {
		panic("simnet: negative flow size")
	}
	c.advance(c.k.Now())
	f := &Flow{Device: device, remaining: bytes, onComplete: onComplete}
	c.flows[f] = struct{}{}
	if bytes == 0 {
		// Complete immediately but asynchronously, preserving event order.
		c.k.After(0, func() { c.finish(f) })
		return f
	}
	c.schedule()
	return f
}

// Cancel aborts the flow and returns the bytes delivered before the abort
// (the paper's speculative transmission discards the in-flight row; the
// caller decides what the delivered bytes amount to).
func (c *Channel) Cancel(f *Flow) float64 {
	c.advance(c.k.Now())
	if _, ok := c.flows[f]; ok {
		delete(c.flows, f)
		f.cancelled = true
		c.schedule()
	}
	return f.sent
}

func (c *Channel) finish(f *Flow) {
	if _, ok := c.flows[f]; !ok {
		return
	}
	delete(c.flows, f)
	f.done = true
	f.remaining = 0
	if f.onComplete != nil {
		f.onComplete()
	}
}

// schedule (re)arms the recheck timer for the earliest of: next trace
// boundary, earliest projected flow completion.
func (c *Channel) schedule() {
	if c.recheck != nil {
		c.recheck.Stop()
		c.recheck = nil
	}
	if len(c.flows) == 0 {
		return
	}
	now := c.k.Now()
	next := math.Inf(1)
	// Trace boundaries of links with active flows (a downed link has no
	// boundary worth waking for — its rate is pinned at zero until the
	// blackout lifts, and SetLinkDown reschedules then).
	for f := range c.flows {
		if c.down[f.Device] {
			continue
		}
		if b := c.links[f.Device].NextBoundary(now); b < next {
			next = b
		}
	}
	// Projected completions under current rates.
	n := c.contending()
	for f := range c.flows {
		if f.remaining <= 1e-6 {
			// Already drained (a rate change landed exactly on the
			// completion instant): complete it on the next recheck now.
			next = now
			continue
		}
		rate := c.bytesPerSec(f, now, n)
		if rate <= 0 {
			continue
		}
		eta := now + f.remaining/rate
		if eta < next {
			next = eta
		}
	}
	if math.IsInf(next, 1) {
		// All links at zero capacity with no future boundary (constant
		// zero trace) — nothing will ever progress; leave unscheduled.
		return
	}
	c.recheck = c.k.At(next, c.onRecheck)
}

func (c *Channel) onRecheck() {
	c.recheck = nil
	c.advance(c.k.Now())
	// Complete everything that drained, tolerating float residue: a flow
	// whose remainder would clear within a nanosecond at its current rate
	// is done. (Without the rate-relative epsilon, an eta that rounds to
	// the current timestamp would reschedule at the same instant forever.)
	n := c.contending()
	var finished []*Flow
	for f := range c.flows {
		eps := 1e-6 + c.bytesPerSec(f, c.k.Now(), n)*1e-9
		if f.remaining <= eps {
			finished = append(finished, f)
		}
	}
	// Deterministic completion order: by device index then pointer-free
	// insertion order is unavailable, so sort by device; ties are broken
	// by remaining (all ~0) and are semantically concurrent anyway.
	for i := 0; i < len(finished); i++ {
		for j := i + 1; j < len(finished); j++ {
			if finished[j].Device < finished[i].Device {
				finished[i], finished[j] = finished[j], finished[i]
			}
		}
	}
	for _, f := range finished {
		f.sent += f.remaining
		f.remaining = 0
		c.finish(f)
	}
	c.schedule()
}

// SetLinkDown forces a device's link capacity to zero (down=true) or
// restores the trace-driven capacity (down=false). In-flight flows on the
// link stall and resume; byte integrals stay exact because the rate change
// lands on an event boundary.
func (c *Channel) SetLinkDown(device int, down bool) {
	if device < 0 || device >= len(c.links) {
		panic(fmt.Sprintf("simnet: device %d out of range", device))
	}
	if c.down[device] == down {
		return
	}
	c.advance(c.k.Now())
	c.down[device] = down
	c.schedule()
}

// LinkDown reports whether the device's link is currently blacked out.
func (c *Channel) LinkDown(device int) bool { return c.down[device] }

// ActiveFlows returns the number of currently active flows.
func (c *Channel) ActiveFlows() int { return len(c.flows) }

// LinkMbps reports the instantaneous solo capacity of a device's link
// (before airtime sharing), already scaled. A blacked-out link reports 0.
func (c *Channel) LinkMbps(device int) float64 {
	if c.down[device] {
		return 0
	}
	return c.links[device].At(c.k.Now()) * c.Scale
}

// NumDevices returns the number of links the channel manages.
func (c *Channel) NumDevices() int { return len(c.links) }
