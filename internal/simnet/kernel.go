// Package simnet provides the virtual-time substrate the experiments run
// on: a deterministic discrete-event kernel and a fluid-flow model of the
// shared wireless channel between the robots.
//
// Gradient math in this repo is real, but compute and transmission consume
// *virtual* seconds, so a "60-minute" training run finishes in wall-clock
// seconds and is reproducible bit-for-bit given a seed.
package simnet

import (
	"container/heap"
	"math"
)

// Kernel is a deterministic discrete-event scheduler over virtual time
// (seconds as float64). Events at the same instant fire in scheduling order.
type Kernel struct {
	now float64
	pq  eventQueue
	seq int64
}

// Timer is a handle to a scheduled event; Stop cancels it.
type Timer struct {
	at        float64
	seq       int64
	fn        func()
	cancelled bool
}

// Stop cancels the timer if it has not fired yet.
func (t *Timer) Stop() { t.cancelled = true }

type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*Timer)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}

// NewKernel returns a kernel at time 0.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (k *Kernel) At(t float64, fn func()) *Timer {
	if t < k.now {
		t = k.now
	}
	k.seq++
	tm := &Timer{at: t, seq: k.seq, fn: fn}
	heap.Push(&k.pq, tm)
	return tm
}

// After schedules fn d seconds from now (d < 0 is treated as 0).
func (k *Kernel) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Step fires the next pending event; it reports false when none remain.
func (k *Kernel) Step() bool {
	for k.pq.Len() > 0 {
		tm := heap.Pop(&k.pq).(*Timer)
		if tm.cancelled {
			continue
		}
		k.now = tm.at
		tm.fn()
		return true
	}
	return false
}

// RunUntil fires events until virtual time would exceed t; the clock ends
// at exactly t (or later event times are left queued).
func (k *Kernel) RunUntil(t float64) {
	for k.pq.Len() > 0 {
		next := k.peek()
		if next.at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunUntilIdle fires all events until the queue is empty. maxEvents bounds
// runaway simulations; it panics if exceeded.
func (k *Kernel) RunUntilIdle(maxEvents int) {
	for i := 0; k.Step(); i++ {
		if i >= maxEvents {
			panic("simnet: RunUntilIdle exceeded event budget")
		}
	}
}

func (k *Kernel) peek() *Timer {
	for k.pq.Len() > 0 {
		if k.pq[0].cancelled {
			heap.Pop(&k.pq)
			continue
		}
		return k.pq[0]
	}
	return &Timer{at: math.Inf(1)}
}

// Pending reports whether any events remain queued.
func (k *Kernel) Pending() bool { return k.peek().at != math.Inf(1) }

// NextEventTime returns the time of the next queued event (+Inf if none).
func (k *Kernel) NextEventTime() float64 { return k.peek().at }
