package simnet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// FaultKind classifies one injected fault.
type FaultKind int

const (
	// FaultCrash stops a worker: it is detached from membership and ceases
	// to compute or transmit; with a Duration it rejoins that many seconds
	// later and resyncs.
	FaultCrash FaultKind = iota
	// FaultBlackout forces a link's capacity to 0 Mbps for Duration seconds
	// (the paper's deep fades, made total): the worker keeps computing, but
	// nothing it sends drains until the blackout lifts.
	FaultBlackout
	// FaultFlap alternates a link between down and up, Period seconds per
	// half-cycle, for Duration seconds — the oscillating connectivity of a
	// robot circling at the edge of range.
	FaultFlap
	// FaultServerCrash kills the parameter server: its durable state must
	// be recovered from the checkpoint store before any worker can push or
	// pull again. Duration adds fixed downtime before the restart begins
	// (0 restarts immediately, modulo the configured recovery rate). The
	// event targets no worker — Worker is -1 in the parsed form.
	FaultServerCrash
)

// String names the fault kind as it appears in schedule specs.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultBlackout:
		return "blackout"
	case FaultFlap:
		return "flap"
	case FaultServerCrash:
		return "servercrash"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultEvent is one scheduled fault against one worker/device.
type FaultEvent struct {
	Kind   FaultKind
	Worker int     // worker index == device index on the shared channel
	At     float64 // virtual seconds when the fault begins
	// Duration is how long the fault lasts in virtual seconds. 0 means the
	// fault never heals: a crash with no rejoin, a permanent blackout.
	Duration float64
	// Period is the flap half-cycle in seconds (down Period, up Period, …).
	// Only meaningful for FaultFlap.
	Period float64
}

// String renders the event in the schedule-spec grammar.
func (e FaultEvent) String() string {
	var s string
	if e.Kind == FaultServerCrash {
		s = fmt.Sprintf("%s@%g", e.Kind, e.At)
	} else {
		s = fmt.Sprintf("%s:%d@%g", e.Kind, e.Worker, e.At)
	}
	if e.Duration > 0 {
		s += fmt.Sprintf("+%g", e.Duration)
	}
	if e.Kind == FaultFlap {
		s += fmt.Sprintf("/%g", e.Period)
	}
	return s
}

// FaultSchedule is a set of fault events, executable in virtual time.
type FaultSchedule []FaultEvent

// String renders the schedule as a comma-separated spec, sorted by time.
func (fs FaultSchedule) String() string {
	sorted := append(FaultSchedule(nil), fs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	parts := make([]string, len(sorted))
	for i, e := range sorted {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Validate rejects events that cannot be scheduled against a team of
// `workers` devices.
func (fs FaultSchedule) Validate(workers int) error {
	for _, e := range fs {
		if e.Kind == FaultServerCrash {
			if e.Worker != -1 {
				return fmt.Errorf("simnet: server crash %q cannot target a worker", e)
			}
		} else if e.Worker < 0 || e.Worker >= workers {
			return fmt.Errorf("simnet: fault %q targets worker %d of %d", e, e.Worker, workers)
		}
		if e.At < 0 {
			return fmt.Errorf("simnet: fault %q starts before t=0", e)
		}
		if e.Duration < 0 {
			return fmt.Errorf("simnet: fault %q has negative duration", e)
		}
		if e.Kind == FaultFlap {
			if e.Period <= 0 {
				return fmt.Errorf("simnet: flap %q needs a positive period", e)
			}
			if e.Duration <= 0 {
				return fmt.Errorf("simnet: flap %q needs a duration", e)
			}
		}
	}
	return nil
}

// ParseFaultSchedule parses the compact CLI/config grammar:
//
//	event[,event...]
//	event = kind ":" worker "@" start [ "+" duration ] [ "/" period ]
//
// Examples:
//
//	crash:1@120+60        worker 1 crashes at t=120 s, rejoins at t=180 s
//	crash:2@300           worker 2 crashes at t=300 s and never returns
//	blackout:0@60+30      worker 0's link fades to 0 Mbps for 30 s
//	flap:3@100+120/10     worker 3's link flaps down/up every 10 s for 120 s
func ParseFaultSchedule(spec string) (FaultSchedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var fs FaultSchedule
	for _, part := range strings.Split(spec, ",") {
		e, err := parseFaultEvent(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		fs = append(fs, e)
	}
	return fs, nil
}

func parseFaultEvent(s string) (FaultEvent, error) {
	malformed := func() (FaultEvent, error) {
		return FaultEvent{}, fmt.Errorf("simnet: malformed fault %q (want kind:worker@start[+dur][/period])", s)
	}
	// The server-crash production carries no worker segment:
	// "servercrash@start[+dur]".
	if rest, ok := strings.CutPrefix(s, "servercrash@"); ok {
		e := FaultEvent{Kind: FaultServerCrash, Worker: -1}
		startStr, durStr, hasDur := strings.Cut(rest, "+")
		var err error
		if e.At, err = strconv.ParseFloat(startStr, 64); err != nil {
			return FaultEvent{}, fmt.Errorf("simnet: malformed fault %q (want servercrash@start[+dur])", s)
		}
		if hasDur {
			if e.Duration, err = strconv.ParseFloat(durStr, 64); err != nil {
				return FaultEvent{}, fmt.Errorf("simnet: malformed fault %q (want servercrash@start[+dur])", s)
			}
		}
		return e, nil
	}
	kindStr, rest, ok := strings.Cut(s, ":")
	if !ok {
		return malformed()
	}
	var e FaultEvent
	switch kindStr {
	case "crash":
		e.Kind = FaultCrash
	case "blackout":
		e.Kind = FaultBlackout
	case "flap":
		e.Kind = FaultFlap
	default:
		return FaultEvent{}, fmt.Errorf("simnet: unknown fault kind %q", kindStr)
	}
	workerStr, rest, ok := strings.Cut(rest, "@")
	if !ok {
		return malformed()
	}
	w, err := strconv.Atoi(workerStr)
	if err != nil {
		return malformed()
	}
	e.Worker = w
	if e.Kind == FaultFlap {
		var periodStr string
		rest, periodStr, ok = strings.Cut(rest, "/")
		if !ok {
			return FaultEvent{}, fmt.Errorf("simnet: flap %q missing /period", s)
		}
		if e.Period, err = strconv.ParseFloat(periodStr, 64); err != nil {
			return malformed()
		}
	}
	startStr, durStr, hasDur := strings.Cut(rest, "+")
	if e.At, err = strconv.ParseFloat(startStr, 64); err != nil {
		return malformed()
	}
	if hasDur {
		if e.Duration, err = strconv.ParseFloat(durStr, 64); err != nil {
			return malformed()
		}
	}
	if e.Kind == FaultFlap && (e.Duration <= 0 || e.Period <= 0) {
		return FaultEvent{}, fmt.Errorf("simnet: flap %q needs +duration and a positive /period", s)
	}
	return e, nil
}

// Injector binds a fault schedule to a kernel and channel. Link faults
// (blackout, flap) drive Channel.SetLinkDown directly; crash/rejoin are
// surfaced through callbacks so the training driver can run its membership
// protocol. All events live in virtual time, so churn experiments replay
// bit-for-bit from a fixed seed.
type Injector struct {
	k  *Kernel
	ch *Channel
	// OnCrash and OnRejoin fire at the scheduled instants of FaultCrash
	// events. Either may be nil.
	OnCrash  func(worker int)
	OnRejoin func(worker int)
	// OnServerCrash and OnServerRestart fire at the scheduled instants of
	// FaultServerCrash events: the crash at At (carrying the configured
	// extra downtime), the restart at At+Duration. Either may be nil.
	OnServerCrash   func(duration float64)
	OnServerRestart func()
}

// NewInjector creates an injector for the kernel/channel pair.
func NewInjector(k *Kernel, ch *Channel) *Injector {
	return &Injector{k: k, ch: ch}
}

// Install schedules every event of fs. It must be called before the kernel
// runs past the earliest event.
func (in *Injector) Install(fs FaultSchedule) error {
	if err := fs.Validate(in.ch.NumDevices()); err != nil {
		return err
	}
	for _, e := range fs {
		e := e
		switch e.Kind {
		case FaultCrash:
			in.k.At(e.At, func() {
				if in.OnCrash != nil {
					in.OnCrash(e.Worker)
				}
			})
			if e.Duration > 0 {
				in.k.At(e.At+e.Duration, func() {
					if in.OnRejoin != nil {
						in.OnRejoin(e.Worker)
					}
				})
			}
		case FaultServerCrash:
			// Crash and restart are scheduled in install order, so a
			// zero-duration event still crashes before it restarts.
			in.k.At(e.At, func() {
				if in.OnServerCrash != nil {
					in.OnServerCrash(e.Duration)
				}
			})
			in.k.At(e.At+e.Duration, func() {
				if in.OnServerRestart != nil {
					in.OnServerRestart()
				}
			})
		case FaultBlackout:
			in.k.At(e.At, func() { in.ch.SetLinkDown(e.Worker, true) })
			if e.Duration > 0 {
				in.k.At(e.At+e.Duration, func() { in.ch.SetLinkDown(e.Worker, false) })
			}
		case FaultFlap:
			for t := 0.0; t < e.Duration; t += 2 * e.Period {
				down := e.At + t
				up := down + e.Period
				if up > e.At+e.Duration {
					up = e.At + e.Duration
				}
				in.k.At(down, func() { in.ch.SetLinkDown(e.Worker, true) })
				in.k.At(up, func() { in.ch.SetLinkDown(e.Worker, false) })
			}
		}
	}
	return nil
}
