package simnet

import (
	"math"
	"testing"

	"rog/internal/trace"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(2, func() { order = append(order, 2) })
	k.At(1, func() { order = append(order, 1) })
	k.At(1, func() { order = append(order, 10) }) // same time: FIFO
	k.At(3, func() { order = append(order, 3) })
	k.RunUntilIdle(100)
	want := []int{1, 10, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order=%v", order)
		}
	}
	if k.Now() != 3 {
		t.Fatalf("now=%v", k.Now())
	}
}

func TestKernelAfterAndStop(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.After(1, func() { fired++ })
	tm := k.After(2, func() { fired += 10 })
	tm.Stop()
	k.RunUntilIdle(10)
	if fired != 1 {
		t.Fatalf("fired=%d", fired)
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var times []float64
	k.After(1, func() {
		times = append(times, k.Now())
		k.After(1, func() { times = append(times, k.Now()) })
	})
	k.RunUntilIdle(10)
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times=%v", times)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	fired := false
	k.At(5, func() { fired = true })
	k.RunUntil(3)
	if fired || k.Now() != 3 {
		t.Fatalf("fired=%v now=%v", fired, k.Now())
	}
	k.RunUntil(6)
	if !fired {
		t.Fatal("event at 5 not fired by RunUntil(6)")
	}
}

func TestKernelPastEventClamped(t *testing.T) {
	k := NewKernel()
	k.At(5, func() {})
	k.Step()
	fired := false
	k.At(1, func() { fired = true }) // in the past: runs now
	k.Step()
	if !fired || k.Now() != 5 {
		t.Fatalf("fired=%v now=%v", fired, k.Now())
	}
}

func TestKernelEventBudget(t *testing.T) {
	k := NewKernel()
	var reschedule func()
	reschedule = func() { k.After(1, reschedule) }
	k.After(1, reschedule)
	defer func() {
		if recover() == nil {
			t.Fatal("expected event-budget panic")
		}
	}()
	k.RunUntilIdle(50)
}

// oneMbpsFor returns a constant trace at the given Mbps for duration secs.
func flat(mbps float64) *trace.Trace { return trace.Constant(mbps, 3600, 0.1) }

func TestSingleFlowCompletionTime(t *testing.T) {
	k := NewKernel()
	// 8 Mbps = 1e6 bytes/s.
	ch := NewChannel(k, []*trace.Trace{flat(8)}, 1)
	var doneAt float64 = -1
	ch.StartFlow(0, 2e6, func() { doneAt = k.Now() })
	k.RunUntilIdle(1e6)
	if math.Abs(doneAt-2.0) > 1e-6 {
		t.Fatalf("completion at %v, want 2.0", doneAt)
	}
}

func TestTwoFlowsShareAirtime(t *testing.T) {
	k := NewKernel()
	ch := NewChannel(k, []*trace.Trace{flat(8), flat(8)}, 1)
	var d0, d1 float64 = -1, -1
	ch.StartFlow(0, 1e6, func() { d0 = k.Now() })
	ch.StartFlow(1, 1e6, func() { d1 = k.Now() })
	k.RunUntilIdle(1e6)
	// Each would take 1s alone; sharing doubles both to 2s.
	if math.Abs(d0-2.0) > 1e-6 || math.Abs(d1-2.0) > 1e-6 {
		t.Fatalf("d0=%v d1=%v want 2.0", d0, d1)
	}
}

func TestLateArrivalSpeedsUpAfterFirstFinishes(t *testing.T) {
	k := NewKernel()
	ch := NewChannel(k, []*trace.Trace{flat(8), flat(8)}, 1)
	var d0, d1 float64 = -1, -1
	ch.StartFlow(0, 1e6, func() { d0 = k.Now() })
	// Second flow arrives at t=0.5 with 1.5e6 bytes.
	k.At(0.5, func() { ch.StartFlow(1, 1.5e6, func() { d1 = k.Now() }) })
	k.RunUntilIdle(1e6)
	// Flow0: 0.5s alone (0.5e6 sent) then shares; 0.5e6 left at 0.5e6/s →
	// finishes at 1.5s. Flow1: from 0.5 to 1.5 sends 0.5e6, then alone
	// 1e6 at 1e6/s → finishes at 2.5s.
	if math.Abs(d0-1.5) > 1e-6 || math.Abs(d1-2.5) > 1e-6 {
		t.Fatalf("d0=%v d1=%v want 1.5/2.5", d0, d1)
	}
}

func TestTraceBoundaryRespected(t *testing.T) {
	k := NewKernel()
	// 8 Mbps for 1s, then 4 Mbps (1e6 B/s then 0.5e6 B/s).
	tr := &trace.Trace{Dt: 1, Samples: []float64{8, 4, 4, 4, 4, 4, 4, 4}}
	ch := NewChannel(k, []*trace.Trace{tr}, 1)
	var done float64 = -1
	ch.StartFlow(0, 1.5e6, func() { done = k.Now() })
	k.RunUntilIdle(1e6)
	// 1e6 in the first second, 0.5e6 at 0.5e6/s → 1s more → t=2.
	if math.Abs(done-2.0) > 1e-6 {
		t.Fatalf("done=%v want 2.0", done)
	}
}

func TestCancelReturnsBytesSent(t *testing.T) {
	k := NewKernel()
	ch := NewChannel(k, []*trace.Trace{flat(8)}, 1)
	f := ch.StartFlow(0, 10e6, nil)
	var got float64
	k.At(1.5, func() { got = ch.Cancel(f) })
	k.RunUntilIdle(1e6)
	if math.Abs(got-1.5e6) > 1 {
		t.Fatalf("cancelled after 1.5s sent %v bytes, want 1.5e6", got)
	}
	if f.Done() {
		t.Fatal("cancelled flow reported done")
	}
	if ch.ActiveFlows() != 0 {
		t.Fatal("flow still active after cancel")
	}
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	k := NewKernel()
	ch := NewChannel(k, []*trace.Trace{flat(8)}, 1)
	done := false
	ch.StartFlow(0, 0, func() { done = true })
	k.RunUntilIdle(10)
	if !done || k.Now() != 0 {
		t.Fatalf("done=%v now=%v", done, k.Now())
	}
}

func TestScaleMultipliesCapacity(t *testing.T) {
	k := NewKernel()
	ch := NewChannel(k, []*trace.Trace{flat(8)}, 2)
	var done float64 = -1
	ch.StartFlow(0, 2e6, func() { done = k.Now() })
	k.RunUntilIdle(1e6)
	if math.Abs(done-1.0) > 1e-6 {
		t.Fatalf("done=%v want 1.0 at 2x scale", done)
	}
	if ch.LinkMbps(0) != 16 {
		t.Fatalf("LinkMbps=%v", ch.LinkMbps(0))
	}
}

func TestAsymmetricLinks(t *testing.T) {
	k := NewKernel()
	ch := NewChannel(k, []*trace.Trace{flat(8), flat(4)}, 1)
	var d0, d1 float64 = -1, -1
	ch.StartFlow(0, 1e6, func() { d0 = k.Now() })
	ch.StartFlow(1, 1e6, func() { d1 = k.Now() })
	k.RunUntilIdle(1e6)
	// Shared airtime: flow0 runs at 0.5e6 B/s, flow1 at 0.25e6 B/s.
	// Flow0 finishes at 2s; then flow1 alone at 0.5e6 B/s with 0.5e6 left
	// → finishes at 3s.
	if math.Abs(d0-2.0) > 1e-6 || math.Abs(d1-3.0) > 1e-6 {
		t.Fatalf("d0=%v d1=%v want 2/3", d0, d1)
	}
}

func TestBytesConservedUnderRandomTrace(t *testing.T) {
	k := NewKernel()
	tr := trace.GenerateEnv(trace.Outdoor, 120, 3)
	ch := NewChannel(k, []*trace.Trace{tr}, 1)
	const totalBytes = 5e6
	var doneAt float64 = -1
	f := ch.StartFlow(0, totalBytes, func() { doneAt = k.Now() })
	k.RunUntilIdle(1e6)
	if doneAt < 0 {
		t.Fatal("flow never completed")
	}
	if math.Abs(f.Sent()-totalBytes) > 1 {
		t.Fatalf("sent %v != %v", f.Sent(), totalBytes)
	}
	// Independently integrate the trace to the completion time: the
	// integral of capacity over [0,doneAt] must equal totalBytes.
	var integral float64
	step := tr.Dt
	for t0 := 0.0; t0 < doneAt; t0 += step {
		end := t0 + step
		if end > doneAt {
			end = doneAt
		}
		integral += tr.At(t0) * 1e6 / 8 * (end - t0)
	}
	if math.Abs(integral-totalBytes) > totalBytes*1e-6 {
		t.Fatalf("trace integral %v != %v", integral, totalBytes)
	}
}

func TestManyFlowsConserveBytes(t *testing.T) {
	k := NewKernel()
	links := make([]*trace.Trace, 4)
	for i := range links {
		links[i] = trace.GenerateEnv(trace.Indoor, 120, uint64(10+i))
	}
	ch := NewChannel(k, links, 1)
	sizes := []float64{1e6, 2e6, 3e6, 4e6}
	flows := make([]*Flow, 4)
	for i, s := range sizes {
		flows[i] = ch.StartFlow(i, s, nil)
	}
	k.RunUntilIdle(1e6)
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d not done", i)
		}
		if math.Abs(f.Sent()-sizes[i]) > 1 {
			t.Fatalf("flow %d sent %v want %v", i, f.Sent(), sizes[i])
		}
	}
}

func TestStartFlowValidation(t *testing.T) {
	k := NewKernel()
	ch := NewChannel(k, []*trace.Trace{flat(8)}, 1)
	for name, f := range map[string]func(){
		"badDevice": func() { ch.StartFlow(5, 1, nil) },
		"negBytes":  func() { ch.StartFlow(0, -1, nil) },
		"badScale":  func() { NewChannel(k, nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
