package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestFlightRecorderWraparound(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlightRecorder(2, 4, &buf)
	// Ten events for worker 0 through a 4-slot ring: only the last 4 live.
	for i := 1; i <= 10; i++ {
		f.Emit(Event{Kind: KindMerge, Worker: 0, Iter: int64(i), Version: int64(i)})
	}
	f.Emit(Event{Kind: KindDetach, Worker: 1, Iter: 3, Cause: "crash"})
	// Out-of-range worker lands in the shared overflow ring.
	f.Emit(Event{Kind: KindWALAppend, Worker: -1, Bytes: 64})

	if err := f.Dump("test trigger"); err != nil {
		t.Fatal(err)
	}
	if f.Dumps() != 1 {
		t.Errorf("dumps = %d, want 1", f.Dumps())
	}
	var got []Event
	if err := ReadEvents(bytes.NewReader(buf.Bytes()), func(e Event) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatalf("dump is not ReadEvents-parseable: %v", err)
	}
	if len(got) != 7 {
		t.Fatalf("dump carries %d events, want 7 (header + 6 retained)", len(got))
	}
	head := got[0]
	if head.Kind != KindFlightDump || head.Cause != "test trigger" || head.Units != 6 {
		t.Errorf("dump header = %+v", head)
	}
	// Worker 0's ring wrapped: iterations 7..10 retained, in emission order.
	for i, want := range []int64{7, 8, 9, 10} {
		if e := got[1+i]; e.Kind != KindMerge || e.Iter != want {
			t.Errorf("entry %d = %+v, want Merge iter %d", i, e, want)
		}
	}
	if got[5].Kind != KindDetach || got[5].Worker != 1 {
		t.Errorf("entry 4 = %+v, want the worker-1 Detach", got[5])
	}
	if got[6].Kind != KindWALAppend || got[6].Worker != -1 {
		t.Errorf("entry 5 = %+v, want the overflow-ring WALAppend", got[6])
	}
}

func TestFlightRecorderConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	const workers, perSource, events = 4, 8, 1000
	f := NewFlightRecorder(workers, perSource, &buf)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				f.Emit(Event{Kind: KindMerge, Worker: w, Iter: int64(i)})
			}
		}(w)
	}
	// Dump while the writers hammer the rings: must stay race-free and the
	// mid-flight dump must still parse.
	if err := f.Dump("mid-flight"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	buf.Reset()
	if err := f.Dump("post"); err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := ReadEvents(bytes.NewReader(buf.Bytes()), func(e Event) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatalf("concurrent-writer dump is not parseable: %v", err)
	}
	// All rings full: header + workers*perSource entries, each worker's
	// slice being its last perSource iterations in order.
	if want := 1 + workers*perSource; len(got) != want {
		t.Fatalf("dump carries %d events, want %d", len(got), want)
	}
	last := make(map[int]int64)
	counts := make(map[int]int)
	for _, e := range got[1:] {
		if prev, ok := last[e.Worker]; ok && e.Iter <= prev {
			t.Fatalf("worker %d entries out of order: %d after %d", e.Worker, e.Iter, prev)
		}
		last[e.Worker] = e.Iter
		counts[e.Worker]++
	}
	for w := 0; w < workers; w++ {
		if counts[w] != perSource {
			t.Errorf("worker %d retained %d events, want %d", w, counts[w], perSource)
		}
		if last[w] != events-1 {
			t.Errorf("worker %d newest retained iter = %d, want %d", w, last[w], events-1)
		}
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var f *FlightRecorder
	if err := f.Dump("nil recorder"); err != nil {
		t.Errorf("nil recorder Dump errored: %v", err)
	}
	if f.Dumps() != 0 {
		t.Error("nil recorder reports dumps")
	}
	// Sink-less recorder retains but does not dump.
	nf := NewFlightRecorder(1, 2, nil)
	nf.Emit(Event{Kind: KindMerge, Worker: 0, Iter: 1})
	if err := nf.Dump("no sink"); err != nil {
		t.Errorf("sink-less Dump errored: %v", err)
	}
	if got := nf.SnapshotEvents(); len(got) != 1 || got[0].Iter != 1 {
		t.Errorf("snapshot = %+v, want the one retained merge", got)
	}
}

func TestTee(t *testing.T) {
	a, b := &collectTracer{}, &collectTracer{}
	if Tee(nil, nil) != nil {
		t.Error("Tee of nothing should be nil")
	}
	if got := Tee(nil, a); got != Tracer(a) {
		t.Error("Tee of one tracer should unwrap it")
	}
	tee := Tee(a, b)
	tee.Emit(Event{Kind: KindIterStart, Worker: 2, Iter: 5})
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Fatalf("fan-out reached %d/%d tracers, want 1/1", len(a.events), len(b.events))
	}
	if a.events[0] != b.events[0] {
		t.Error("tracers saw different events")
	}
}
