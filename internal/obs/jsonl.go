package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// JSONLTracer streams events as one JSON object per line. Lines are
// hand-encoded into a reused buffer (no reflection, no per-event
// allocation once the buffer has grown), with zero-valued optional fields
// omitted; "ev", "t", "w" and "iter" always appear. Safe for concurrent
// emitters.
type JSONLTracer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // underlying writer, when it closes
	buf []byte
}

// NewJSONLTracer wraps w. Call Close to flush (and close w when it is an
// io.Closer).
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	t := &JSONLTracer{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Emit implements Tracer.
func (t *JSONLTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := appendEvent(t.buf[:0], e)
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		// A broken sink cannot fail the training run; the trace is lossy
		// from here and Close reports the flush error.
		return
	}
}

// appendEvent renders one event as a JSONL line (trailing newline
// included). Shared by the live tracer and the flight-recorder dump so
// both streams parse with ReadEvents.
func appendEvent(b []byte, e Event) []byte {
	b = append(b, `{"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","t":`...)
	b = appendFloat(b, e.Time)
	b = append(b, `,"w":`...)
	b = strconv.AppendInt(b, int64(e.Worker), 10)
	b = append(b, `,"iter":`...)
	b = strconv.AppendInt(b, e.Iter, 10)
	if e.Seq != 0 {
		b = append(b, `,"seq":`...)
		b = strconv.AppendInt(b, e.Seq, 10)
	}
	if e.Unit != 0 || e.Kind == KindMerge {
		b = append(b, `,"unit":`...)
		b = strconv.AppendInt(b, int64(e.Unit), 10)
	}
	if e.Units != 0 {
		b = append(b, `,"units":`...)
		b = strconv.AppendInt(b, int64(e.Units), 10)
	}
	if e.Must != 0 {
		b = append(b, `,"must":`...)
		b = strconv.AppendInt(b, int64(e.Must), 10)
	}
	if e.Deferred != 0 {
		b = append(b, `,"def":`...)
		b = strconv.AppendInt(b, int64(e.Deferred), 10)
	}
	if e.Version != 0 {
		b = append(b, `,"ver":`...)
		b = strconv.AppendInt(b, e.Version, 10)
	}
	if e.Lag != 0 {
		b = append(b, `,"lag":`...)
		b = strconv.AppendInt(b, e.Lag, 10)
	}
	if e.Bytes != 0 {
		b = append(b, `,"bytes":`...)
		b = appendFloat(b, e.Bytes)
	}
	if e.Seconds != 0 {
		b = append(b, `,"sec":`...)
		b = appendFloat(b, e.Seconds)
	}
	if e.Compute != 0 {
		b = append(b, `,"compute":`...)
		b = appendFloat(b, e.Compute)
	}
	if e.Comm != 0 {
		b = append(b, `,"comm":`...)
		b = appendFloat(b, e.Comm)
	}
	if e.Stall != 0 {
		b = append(b, `,"stall":`...)
		b = appendFloat(b, e.Stall)
	}
	if e.Dir != DirNone {
		b = append(b, `,"dir":"`...)
		b = append(b, e.Dir.String()...)
		b = append(b, '"')
	}
	if e.Spec {
		b = append(b, `,"spec":true`...)
	}
	if e.Cause != "" {
		b = append(b, `,"cause":`...)
		b = strconv.AppendQuote(b, e.Cause)
	}
	// Stall blocker attribution: worker/unit 0 are real identities, so the
	// stall kinds carry all three fields unconditionally (-1 = unknown) and
	// everything else omits the zero values.
	if e.Kind == KindStallBegin || e.Kind == KindStallEnd ||
		e.BlockWorker != 0 || e.BlockUnit != 0 || e.BlockVersion != 0 {
		b = append(b, `,"bw":`...)
		b = strconv.AppendInt(b, int64(e.BlockWorker), 10)
		b = append(b, `,"bu":`...)
		b = strconv.AppendInt(b, int64(e.BlockUnit), 10)
		b = append(b, `,"bver":`...)
		b = strconv.AppendInt(b, e.BlockVersion, 10)
	}
	return append(b, '}', '\n')
}

// Close flushes buffered lines and closes the underlying writer when it is
// closable.
func (t *JSONLTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.w.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// appendFloat renders a float compactly ('g' with minimal digits).
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// jsonEvent is the decode shadow of the JSONL line format.
type jsonEvent struct {
	Ev       string  `json:"ev"`
	T        float64 `json:"t"`
	W        int     `json:"w"`
	Iter     int64   `json:"iter"`
	Unit     int     `json:"unit"`
	Units    int     `json:"units"`
	Must     int     `json:"must"`
	Deferred int     `json:"def"`
	Ver      int64   `json:"ver"`
	Lag      int64   `json:"lag"`
	Bytes    float64 `json:"bytes"`
	Sec      float64 `json:"sec"`
	Compute  float64 `json:"compute"`
	Comm     float64 `json:"comm"`
	Stall    float64 `json:"stall"`
	Dir      string  `json:"dir"`
	Spec     bool    `json:"spec"`
	Cause    string  `json:"cause"`
	Seq      int64   `json:"seq"`
	Bw       int     `json:"bw"`
	Bu       int     `json:"bu"`
	Bver     int64   `json:"bver"`
}

// ReadEvents streams a JSONL trace, invoking fn per decoded event. Blank
// lines are skipped; a malformed line or an unknown event kind is an
// error (the trace identifies itself by its first line).
func ReadEvents(r io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(line, &je); err != nil {
			return fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		kind := KindFromString(je.Ev)
		if kind == 0 {
			return fmt.Errorf("obs: trace line %d: unknown event kind %q", lineNo, je.Ev)
		}
		dir := DirNone
		switch je.Dir {
		case "push":
			dir = DirPush
		case "pull":
			dir = DirPull
		}
		e := Event{
			Kind: kind, Time: je.T, Worker: je.W, Iter: je.Iter,
			Unit: je.Unit, Units: je.Units, Must: je.Must, Deferred: je.Deferred,
			Version: je.Ver, Lag: je.Lag, Bytes: je.Bytes, Seconds: je.Sec,
			Compute: je.Compute, Comm: je.Comm, Stall: je.Stall,
			Dir: dir, Spec: je.Spec, Cause: je.Cause, Seq: je.Seq,
			BlockWorker: je.Bw, BlockUnit: je.Bu, BlockVersion: je.Bver,
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return sc.Err()
}
