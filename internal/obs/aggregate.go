package obs

import (
	"fmt"
	"io"
	"sort"
)

// IterRow is the aggregated composition of one iteration number across
// workers: n IterEnd events averaged.
type IterRow struct {
	Iter    int64
	Count   int // worker-iterations aggregated into this row
	Compute float64
	Comm    float64
	Stall   float64
}

// UnitRow is per-row-partition staleness: merge count, mean and max lag.
type UnitRow struct {
	Unit    int
	Merges  int64
	LagSum  int64
	MaxLag  int64
	MeanLag float64
}

// Summary is everything Aggregate extracts from one trace.
type Summary struct {
	// Events counts records by kind name.
	Events map[string]int64

	// Iters counts IterEnd events; the sums divide by it to reproduce the
	// run's average composition (metrics.Result.Composition).
	Iters      int64
	ComputeSum float64
	CommSum    float64
	StallSum   float64

	// ByIter groups IterEnd events by iteration number, ascending.
	ByIter []IterRow

	// StallByCause sums StallEnd durations per cause.
	StallByCause map[string]float64

	// Transmission totals from RowsSent/PushPlanned.
	RowsPlanned  int64
	RowsDeferred int64
	RowsSent     int64
	RowsPulled   int64
	BytesPushed  float64
	BytesPulled  float64

	// Staleness from Merge events: per-unit rows and the overall lag
	// histogram (lag value → count).
	Units   []UnitRow
	LagHist map[int64]int64
	Merges  int64

	// Churn.
	Detaches    int64
	Reconnects  int64
	Resyncs     int64
	ResyncRows  int64
	ResyncBytes float64

	// Loss/retransmission totals from RowsLost/Retransmit events. Every
	// lost row is settled exactly one way: folded back into the sender's
	// local accumulator (best-effort) or retransmitted (reliable) — the
	// pairing check below enforces RowsLostRetransmit == RowsRetransmitted.
	RowsLostFolded    int64
	RowsLostRetrans   int64
	RowsRetransmitted int64
	RetransmitBytes   float64
	RetransmitSeconds float64

	// Serving totals from SnapshotPublish/Request*/ReadStall* events. Max
	// values track the empirical read-staleness and latency envelopes.
	SnapshotPublishes int64
	RequestsEnqueued  int64
	RequestsServed    int64
	ServeSeconds      float64 // summed request latency
	MaxServeSeconds   float64
	ReadStalls        int64
	ReadStallSeconds  float64
	MaxReadLag        int64 // largest demanded-floor shortfall at enqueue

	// Durability totals from CheckpointEnd/WALAppend/RecoveryReplay events.
	Checkpoints     int64
	CheckpointBytes float64
	WALAppends      int64
	WALBytes        float64
	Recoveries      int64
	ReplayedRecords int64

	// PairErrors lists structural violations: a StallEnd without an open
	// StallBegin on that worker, a Detach of an already-detached worker, a
	// Reconnect of an attached one, or a CheckpointEnd without its Begin.
	// Empty for a well-formed trace.
	PairErrors []string

	// OpenStalls counts StallBegin intervals never closed (a run may
	// legitimately halt mid-stall).
	OpenStalls int

	// OpenCheckpoints counts CheckpointBegin events never closed — at most
	// one for a run the crash fault killed mid-snapshot.
	OpenCheckpoints int

	// OpenReadStalls counts ReadStallBegin intervals never closed (requests
	// still parked on the read gate when the trace ended).
	OpenReadStalls int
}

// Composition returns the average per-iteration compute/comm/stall seconds
// — comparable to the run's metrics.Result.Composition.
func (s *Summary) Composition() (compute, comm, stall float64) {
	if s.Iters == 0 {
		return 0, 0, 0
	}
	n := float64(s.Iters)
	return s.ComputeSum / n, s.CommSum / n, s.StallSum / n
}

// Aggregate streams a JSONL trace into a Summary.
func Aggregate(r io.Reader) (*Summary, error) {
	s := &Summary{
		Events:       make(map[string]int64),
		StallByCause: make(map[string]float64),
		LagHist:      make(map[int64]int64),
	}
	byIter := make(map[int64]*IterRow)
	units := make(map[int]*UnitRow)
	// Stall pairing is keyed by (worker, cause), not worker alone: a worker
	// can legitimately nest stalls of different causes (a detach stall
	// opening inside a gate stall), and worker-keyed depth counting would
	// silently pair a StallEnd of one cause against a StallBegin of
	// another.
	type stallKey struct {
		worker int
		cause  string
	}
	stallDepth := make(map[stallKey]int)
	detached := make(map[int]bool)
	ckptDepth := 0
	// Read-stall pairing is keyed by request id (Seq): each request parks
	// on the read gate at most once, so a second Begin for the same id or
	// an End without its Begin is structural corruption.
	readStalled := make(map[int64]bool)

	err := ReadEvents(r, func(e Event) error {
		s.Events[e.Kind.String()]++
		switch e.Kind {
		case KindIterEnd:
			s.Iters++
			s.ComputeSum += e.Compute
			s.CommSum += e.Comm
			s.StallSum += e.Stall
			row, ok := byIter[e.Iter]
			if !ok {
				row = &IterRow{Iter: e.Iter}
				byIter[e.Iter] = row
			}
			row.Count++
			row.Compute += e.Compute
			row.Comm += e.Comm
			row.Stall += e.Stall
		case KindPushPlanned:
			s.RowsPlanned += int64(e.Units)
			s.RowsDeferred += int64(e.Deferred)
		case KindRowsSent:
			if e.Dir == DirPull {
				s.RowsPulled += int64(e.Units)
				s.BytesPulled += e.Bytes
			} else {
				s.RowsSent += int64(e.Units)
				s.BytesPushed += e.Bytes
			}
		case KindStallBegin:
			stallDepth[stallKey{e.Worker, e.Cause}]++
		case KindStallEnd:
			k := stallKey{e.Worker, e.Cause}
			if stallDepth[k] == 0 {
				s.PairErrors = append(s.PairErrors, fmt.Sprintf(
					"worker %d: StallEnd(%s) without matching StallBegin at t=%.3f",
					e.Worker, e.Cause, e.Time))
				break
			}
			stallDepth[k]--
			s.StallByCause[e.Cause] += e.Seconds
		case KindMerge:
			s.Merges++
			s.LagHist[e.Lag]++
			u, ok := units[e.Unit]
			if !ok {
				u = &UnitRow{Unit: e.Unit}
				units[e.Unit] = u
			}
			u.Merges++
			u.LagSum += e.Lag
			if e.Lag > u.MaxLag {
				u.MaxLag = e.Lag
			}
		case KindDetach:
			if detached[e.Worker] {
				s.PairErrors = append(s.PairErrors, fmt.Sprintf(
					"worker %d: Detach while already detached at t=%.3f", e.Worker, e.Time))
			}
			detached[e.Worker] = true
			s.Detaches++
		case KindReconnect:
			if !detached[e.Worker] {
				s.PairErrors = append(s.PairErrors, fmt.Sprintf(
					"worker %d: Reconnect without a prior Detach at t=%.3f", e.Worker, e.Time))
			}
			detached[e.Worker] = false
			s.Reconnects++
		case KindResync:
			s.Resyncs++
			s.ResyncRows += int64(e.Units)
			s.ResyncBytes += e.Bytes
		case KindRowsLost:
			switch e.Cause {
			case "fold":
				s.RowsLostFolded += int64(e.Units)
			case "retransmit":
				s.RowsLostRetrans += int64(e.Units)
			default:
				s.PairErrors = append(s.PairErrors, fmt.Sprintf(
					"worker %d: RowsLost with unknown cause %q at t=%.3f", e.Worker, e.Cause, e.Time))
			}
		case KindRetransmit:
			s.RowsRetransmitted += int64(e.Units)
			s.RetransmitBytes += e.Bytes
			s.RetransmitSeconds += e.Seconds
		case KindCheckpointBegin:
			ckptDepth++
		case KindCheckpointEnd:
			if ckptDepth == 0 {
				s.PairErrors = append(s.PairErrors, fmt.Sprintf(
					"CheckpointEnd seq %d without CheckpointBegin at t=%.3f", e.Version, e.Time))
				break
			}
			ckptDepth--
			s.Checkpoints++
			s.CheckpointBytes += e.Bytes
		case KindWALAppend:
			s.WALAppends++
			s.WALBytes += e.Bytes
		case KindRecoveryReplay:
			s.Recoveries++
			s.ReplayedRecords += int64(e.Units)
		case KindSnapshotPublish:
			s.SnapshotPublishes++
		case KindRequestEnqueue:
			s.RequestsEnqueued++
			if e.Lag > s.MaxReadLag {
				s.MaxReadLag = e.Lag
			}
		case KindRequestServe:
			s.RequestsServed++
			s.ServeSeconds += e.Seconds
			if e.Seconds > s.MaxServeSeconds {
				s.MaxServeSeconds = e.Seconds
			}
		case KindReadStallBegin:
			if readStalled[e.Seq] {
				s.PairErrors = append(s.PairErrors, fmt.Sprintf(
					"request %d: ReadStallBegin while already parked at t=%.3f", e.Seq, e.Time))
				break
			}
			readStalled[e.Seq] = true
			s.ReadStalls++
		case KindReadStallEnd:
			if !readStalled[e.Seq] {
				s.PairErrors = append(s.PairErrors, fmt.Sprintf(
					"request %d: ReadStallEnd without matching ReadStallBegin at t=%.3f", e.Seq, e.Time))
				break
			}
			delete(readStalled, e.Seq)
			s.ReadStallSeconds += e.Seconds
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, d := range stallDepth {
		s.OpenStalls += d
	}
	s.OpenCheckpoints = ckptDepth
	s.OpenReadStalls = len(readStalled)
	// Every best-effort gap must be folded back and every reliable loss
	// retransmitted: a RowsLost(retransmit) count that diverges from the
	// Retransmit unit total means a row was dropped and never settled.
	if s.RowsLostRetrans != s.RowsRetransmitted {
		s.PairErrors = append(s.PairErrors, fmt.Sprintf(
			"loss accounting: %d rows lost to retransmission but %d retransmitted",
			s.RowsLostRetrans, s.RowsRetransmitted))
	}
	s.ByIter = make([]IterRow, 0, len(byIter))
	for _, row := range byIter {
		r := *row
		if r.Count > 0 {
			n := float64(r.Count)
			r.Compute /= n
			r.Comm /= n
			r.Stall /= n
		}
		s.ByIter = append(s.ByIter, r)
	}
	sort.Slice(s.ByIter, func(i, j int) bool { return s.ByIter[i].Iter < s.ByIter[j].Iter })
	s.Units = make([]UnitRow, 0, len(units))
	for _, u := range units {
		r := *u
		if r.Merges > 0 {
			r.MeanLag = float64(r.LagSum) / float64(r.Merges)
		}
		s.Units = append(s.Units, r)
	}
	sort.Slice(s.Units, func(i, j int) bool { return s.Units[i].Unit < s.Units[j].Unit })
	return s, nil
}
