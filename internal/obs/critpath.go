package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// CritPath is a streaming critical-path analyzer: fed a trace event stream
// (either live, as a Tracer, or post-hoc via CritPathFromReader), it
// decomposes each worker's end-to-end wall time into four causal segments
// per iteration:
//
//   - compute:  IterStart → PushPlanned (the gradient step; the plan is
//     built the instant compute finishes in every driver)
//   - comm:     the summed durations of the iteration's RowsSent and
//     Retransmit transmissions
//   - stall:    the summed durations of its StallEnd intervals (the RSP
//     staleness gate, detach waits)
//   - merge:    the residual span − compute − comm − stall, clamped at
//     zero — the server-side window (merge work, barrier waits) the
//     worker's own events cannot see
//
// Because merge is the residual, coverage — decomposed time over the
// worker's first-IterStart→last-IterEnd wall time — is exactly 1.0 when
// the trace is complete and iterations do not overlap; a value below that
// means events are missing, which is what the verify.sh critpath-smoke
// stage asserts against. The pipelined driver overlaps one iteration's
// transmission with the next one's compute, so its per-iteration spans can
// double-count wall time and coverage legitimately exceeds 1.0.
//
// Stall attribution rides on the StallEnd blocker fields: the analyzer
// accumulates stalled seconds against each blocking (worker, unit) pair
// and feeds every stall duration into a quantile histogram.
//
// Events from negative workers (the edge-aggregator tier reports uplink
// flows as worker -(id+1)) are infrastructure: their transmission time is
// totalled separately, never charged to a robot's path.
type CritPath struct {
	mu sync.Mutex

	iters    map[critKey]*critIter
	workers  map[int]*critWorker
	blockers map[blockKey]*blockAgg
	open     map[stallOpenKey]int
	hist     *Histogram

	infraComm    float64
	unattributed int64
	errors       []string
}

type critKey struct {
	worker int
	iter   int64
}

type critIter struct {
	start   float64
	planned float64
	hasPlan bool
	comm    float64
	stall   float64
}

type critWorker struct {
	iters     int64
	wallStart float64
	wallEnd   float64
	started   bool
	compute   float64
	comm      float64
	stall     float64
	merge     float64
}

type blockKey struct {
	worker int
	unit   int
}

type blockAgg struct {
	seconds float64
	count   int64
}

type stallOpenKey struct {
	worker int
	cause  string
}

// NewCritPath builds an empty analyzer. Safe for concurrent Emit.
func NewCritPath() *CritPath {
	return &CritPath{
		iters:    make(map[critKey]*critIter),
		workers:  make(map[int]*critWorker),
		blockers: make(map[blockKey]*blockAgg),
		open:     make(map[stallOpenKey]int),
		hist:     NewHistogram(StallDurationBounds),
	}
}

// Emit implements Tracer.
func (c *CritPath) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.Worker < 0 {
		// Infrastructure (aggregator uplinks, server-scoped records): its
		// wire time is reported but never charged to a robot's path.
		if e.Kind == KindRowsSent || e.Kind == KindRetransmit {
			c.infraComm += e.Seconds
		}
		return
	}
	switch e.Kind {
	case KindIterStart:
		c.iters[critKey{e.Worker, e.Iter}] = &critIter{start: e.Time}
		w := c.worker(e.Worker)
		if !w.started || e.Time < w.wallStart {
			w.wallStart = e.Time
			w.started = true
		}
	case KindPushPlanned:
		if it, ok := c.iters[critKey{e.Worker, e.Iter}]; ok && !it.hasPlan {
			it.planned = e.Time
			it.hasPlan = true
		}
	case KindRowsSent, KindRetransmit:
		if it, ok := c.iters[critKey{e.Worker, e.Iter}]; ok {
			it.comm += e.Seconds
		}
	case KindStallBegin:
		c.open[stallOpenKey{e.Worker, e.Cause}]++
	case KindStallEnd:
		k := stallOpenKey{e.Worker, e.Cause}
		if c.open[k] == 0 {
			c.errorf("worker %d: StallEnd(%s) without matching StallBegin at t=%.3f",
				e.Worker, e.Cause, e.Time)
		} else {
			c.open[k]--
		}
		if it, ok := c.iters[critKey{e.Worker, e.Iter}]; ok {
			it.stall += e.Seconds
		}
		c.hist.Observe(e.Seconds)
		bk := blockKey{e.BlockWorker, e.BlockUnit}
		if e.BlockWorker < 0 && e.BlockUnit < 0 {
			c.unattributed++
		}
		agg, ok := c.blockers[bk]
		if !ok {
			agg = &blockAgg{}
			c.blockers[bk] = agg
		}
		agg.seconds += e.Seconds
		agg.count++
	case KindIterEnd:
		key := critKey{e.Worker, e.Iter}
		it, ok := c.iters[key]
		if !ok {
			c.errorf("worker %d: IterEnd for iteration %d without IterStart at t=%.3f",
				e.Worker, e.Iter, e.Time)
			return
		}
		delete(c.iters, key)
		w := c.worker(e.Worker)
		w.iters++
		if e.Time > w.wallEnd {
			w.wallEnd = e.Time
		}
		span := e.Time - it.start
		compute := e.Compute // fallback: the event's own composition
		if it.hasPlan {
			compute = it.planned - it.start
		}
		merge := span - compute - it.comm - it.stall
		if merge < 0 {
			merge = 0
		}
		w.compute += compute
		w.comm += it.comm
		w.stall += it.stall
		w.merge += merge
	}
}

func (c *CritPath) worker(id int) *critWorker {
	w, ok := c.workers[id]
	if !ok {
		w = &critWorker{}
		c.workers[id] = w
	}
	return w
}

func (c *CritPath) errorf(format string, args ...any) {
	if len(c.errors) >= 64 {
		return
	}
	c.errors = append(c.errors, fmt.Sprintf(format, args...))
}

// WorkerPath is one worker's critical-path decomposition over its whole
// trace: wall time from first IterStart to last IterEnd and the four
// segment sums. Coverage is decomposed/wall.
type WorkerPath struct {
	Worker         int     `json:"worker"`
	Iters          int64   `json:"iters"`
	WallSeconds    float64 `json:"wall_seconds"`
	ComputeSeconds float64 `json:"compute_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	StallSeconds   float64 `json:"stall_seconds"`
	MergeSeconds   float64 `json:"merge_seconds"`
	Coverage       float64 `json:"coverage"`
}

// BlockerRow is one blocking (worker, unit) pair's total attributed stall
// time. Worker and Unit are -1 for stalls with no concrete attribution;
// Unit alone is -1 when a detach (not a merge) released the gate.
type BlockerRow struct {
	Worker       int     `json:"worker"`
	Unit         int     `json:"unit"`
	StallSeconds float64 `json:"stall_seconds"`
	Stalls       int64   `json:"stalls"`
}

// CritReport is the analyzer's frozen output.
type CritReport struct {
	Workers  []WorkerPath `json:"workers"`
	Blockers []BlockerRow `json:"blockers"` // descending by stalled seconds

	// StallHist is the stall-duration histogram with interpolated
	// p50/p95/p99.
	StallHist HistSnapshot `json:"stall_hist"`

	// InfraCommSeconds is transmission time spent by non-worker sources
	// (the edge-aggregator uplink tier).
	InfraCommSeconds float64 `json:"infra_comm_seconds,omitempty"`

	// OpenStalls counts StallBegin intervals never closed; Unattributed
	// counts closed stalls whose blocker was unknown.
	OpenStalls   int   `json:"open_stalls"`
	Unattributed int64 `json:"unattributed_stalls"`

	Errors []string `json:"errors,omitempty"`
}

// Report freezes the analyzer. Workers ascend by id; blockers descend by
// attributed seconds (ties ascend by worker then unit, so output is
// deterministic).
func (c *CritPath) Report() *CritReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := &CritReport{
		InfraCommSeconds: c.infraComm,
		Unattributed:     c.unattributed,
		Errors:           append([]string(nil), c.errors...),
	}
	for _, n := range c.open {
		rep.OpenStalls += n
	}
	for id, w := range c.workers {
		wp := WorkerPath{
			Worker: id, Iters: w.iters,
			WallSeconds:    w.wallEnd - w.wallStart,
			ComputeSeconds: w.compute, CommSeconds: w.comm,
			StallSeconds: w.stall, MergeSeconds: w.merge,
		}
		if wp.WallSeconds > 0 {
			wp.Coverage = (w.compute + w.comm + w.stall + w.merge) / wp.WallSeconds
		}
		rep.Workers = append(rep.Workers, wp)
	}
	sort.Slice(rep.Workers, func(i, j int) bool { return rep.Workers[i].Worker < rep.Workers[j].Worker })
	for k, agg := range c.blockers {
		rep.Blockers = append(rep.Blockers, BlockerRow{
			Worker: k.worker, Unit: k.unit, StallSeconds: agg.seconds, Stalls: agg.count,
		})
	}
	sort.Slice(rep.Blockers, func(i, j int) bool {
		a, b := rep.Blockers[i], rep.Blockers[j]
		if a.StallSeconds != b.StallSeconds {
			return a.StallSeconds > b.StallSeconds
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.Unit < b.Unit
	})
	hs := HistSnapshot{
		Bounds: append([]float64(nil), c.hist.bounds...),
		Counts: make([]int64, len(c.hist.counts)),
		Sum:    c.hist.sum.Value(),
		Count:  c.hist.n.Load(),
	}
	for i := range c.hist.counts {
		hs.Counts[i] = c.hist.counts[i].Load()
	}
	hs.fillQuantiles()
	rep.StallHist = hs
	return rep
}

// Totals sums the four segments across workers.
func (r *CritReport) Totals() (compute, comm, stall, merge float64) {
	for _, w := range r.Workers {
		compute += w.ComputeSeconds
		comm += w.CommSeconds
		stall += w.StallSeconds
		merge += w.MergeSeconds
	}
	return
}

// MinCoverage returns the worst per-worker coverage (1 when no workers).
func (r *CritReport) MinCoverage() float64 {
	min := 1.0
	for i, w := range r.Workers {
		if i == 0 || w.Coverage < min {
			min = w.Coverage
		}
	}
	return min
}

// CritPathFromReader runs the analyzer over a stored JSONL trace.
func CritPathFromReader(r io.Reader) (*CritReport, error) {
	cp := NewCritPath()
	if err := ReadEvents(r, func(e Event) error {
		cp.Emit(e)
		return nil
	}); err != nil {
		return nil, err
	}
	return cp.Report(), nil
}
