package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// ChromeTracer streams events in the Chrome trace_event (catapult) JSON
// object format, so a run opens directly in chrome://tracing or Perfetto.
//
// Durations are rendered as retroactive complete ("X") events when their
// closing record arrives — IterEnd, StallEnd and RowsSent all carry the
// elapsed duration, so ts = (now − duration) reconstructs the span without
// begin/end pairing. That sidesteps the B/E nesting rules, which the
// pipelined driver's overlapping compute/comm spans would violate.
// Everything else becomes an instant ("i") event. pid is always 1; tid is
// the worker, so each robot gets its own track.
type ChromeTracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer
	buf    []byte
	n      int // events written, for comma placement
	closed bool
}

// NewChromeTracer wraps w and writes the stream header. Call Close to
// finalize the JSON object — an unterminated stream is not valid JSON.
func NewChromeTracer(w io.Writer) *ChromeTracer {
	t := &ChromeTracer{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	// bufio defers write errors to the Close flush.
	t.w.WriteString(`{"traceEvents":[`)
	return t
}

// Emit implements Tracer.
func (t *ChromeTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	b := t.buf[:0]
	if t.n > 0 {
		b = append(b, ',', '\n')
	}
	t.n++
	switch e.Kind {
	case KindIterEnd:
		total := e.Compute + e.Comm + e.Stall
		b = t.complete(b, "iter", e, total)
		b = append(b, `,"args":{"iter":`...)
		b = strconv.AppendInt(b, e.Iter, 10)
		b = append(b, `,"compute":`...)
		b = appendFloat(b, e.Compute)
		b = append(b, `,"comm":`...)
		b = appendFloat(b, e.Comm)
		b = append(b, `,"stall":`...)
		b = appendFloat(b, e.Stall)
		b = append(b, `}}`...)
	case KindStallEnd:
		b = t.complete(b, "stall:"+e.Cause, e, e.Seconds)
		b = append(b, `,"args":{"iter":`...)
		b = strconv.AppendInt(b, e.Iter, 10)
		b = append(b, `}}`...)
	case KindRowsSent:
		name := e.Dir.String()
		if name == "" {
			name = "tx"
		}
		b = t.complete(b, name, e, e.Seconds)
		b = append(b, `,"args":{"iter":`...)
		b = strconv.AppendInt(b, e.Iter, 10)
		b = append(b, `,"units":`...)
		b = strconv.AppendInt(b, int64(e.Units), 10)
		b = append(b, `,"bytes":`...)
		b = appendFloat(b, e.Bytes)
		b = append(b, `}}`...)
	default:
		b = t.instant(b, e)
	}
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		// Lossy from here; Close reports the flush error.
		return
	}
}

// complete opens an "X" (complete) event of the given duration ending at
// e.Time; the caller appends args and the closing brace.
func (t *ChromeTracer) complete(b []byte, name string, e Event, dur float64) []byte {
	if dur < 0 {
		dur = 0
	}
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"ph":"X","ts":`...)
	b = appendFloat(b, (e.Time-dur)*1e6)
	b = append(b, `,"dur":`...)
	b = appendFloat(b, dur*1e6)
	b = append(b, `,"pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(e.Worker), 10)
	return b
}

// instant renders an "i" (instant) event, thread-scoped.
func (t *ChromeTracer) instant(b []byte, e Event) []byte {
	name := e.Kind.String()
	if e.Cause != "" {
		name += ":" + e.Cause
	}
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"ph":"i","s":"t","ts":`...)
	b = appendFloat(b, e.Time*1e6)
	b = append(b, `,"pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(e.Worker), 10)
	b = append(b, `,"args":{"iter":`...)
	b = strconv.AppendInt(b, e.Iter, 10)
	if e.Kind == KindMerge {
		b = append(b, `,"unit":`...)
		b = strconv.AppendInt(b, int64(e.Unit), 10)
		b = append(b, `,"lag":`...)
		b = strconv.AppendInt(b, e.Lag, 10)
	}
	if e.Units != 0 {
		b = append(b, `,"units":`...)
		b = strconv.AppendInt(b, int64(e.Units), 10)
	}
	b = append(b, `}}`...)
	return b
}

// Close terminates the traceEvents array, flushes, and closes the
// underlying writer when it is closable.
func (t *ChromeTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	// The flush below surfaces any buffered write error.
	t.w.WriteString("]}\n")
	err := t.w.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
