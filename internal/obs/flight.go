package obs

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// FlightRecorder is a bounded, lock-free last-N-events ring buffer: every
// event is recorded into its source's ring (one ring per worker, plus one
// shared ring for server-scoped and infrastructure events), overwriting
// the oldest, and Dump writes the retained tail — globally ordered — to
// the sink when something goes wrong (a server crash recovery, a livenet
// detach storm, a lossnet abandon). The dump is JSONL in the same line
// format as JSONLTracer, headed by a FlightDump event naming the trigger,
// so ReadEvents and rogtrace parse it directly.
//
// Writers never block and never contend on a lock: each Emit takes a slot
// ticket from the ring's atomic cursor and stores a freshly allocated
// entry with an atomic pointer store, so concurrent livenet connection
// goroutines stay race-free. (The recorder allocates per event — it is
// part of the *enabled* tracing configuration; the zero-alloc guarantee
// covers only the disabled nil probe.)
type FlightRecorder struct {
	rings []flightRing
	seq   atomic.Uint64

	mu    sync.Mutex // serializes dumps, not writers
	sink  io.Writer
	buf   []byte
	dumps int
}

type flightRing struct {
	cur   atomic.Uint64
	slots []atomic.Pointer[flightEntry]
}

type flightEntry struct {
	seq uint64
	ev  Event
}

// NewFlightRecorder retains the last perSource events for each of sources
// workers plus a shared overflow ring for events from out-of-range workers
// (server-scoped records use worker -1). Dump writes to sink; a nil sink
// makes Dump a no-op (the recorder still retains, for SnapshotEvents).
func NewFlightRecorder(sources, perSource int, sink io.Writer) *FlightRecorder {
	if sources < 0 {
		sources = 0
	}
	if perSource < 1 {
		perSource = 1
	}
	f := &FlightRecorder{rings: make([]flightRing, sources+1), sink: sink}
	for i := range f.rings {
		f.rings[i].slots = make([]atomic.Pointer[flightEntry], perSource)
	}
	return f
}

// Emit implements Tracer: record the event into its source ring.
func (f *FlightRecorder) Emit(e Event) {
	r := &f.rings[len(f.rings)-1]
	if e.Worker >= 0 && e.Worker < len(f.rings)-1 {
		r = &f.rings[e.Worker]
	}
	ent := &flightEntry{seq: f.seq.Add(1), ev: e}
	slot := (r.cur.Add(1) - 1) % uint64(len(r.slots))
	r.slots[slot].Store(ent)
}

// SnapshotEvents returns the retained events in global emission order.
func (f *FlightRecorder) SnapshotEvents() []Event {
	entries := f.collect()
	evs := make([]Event, len(entries))
	for i, ent := range entries {
		evs[i] = ent.ev
	}
	return evs
}

func (f *FlightRecorder) collect() []*flightEntry {
	var entries []*flightEntry
	for i := range f.rings {
		for j := range f.rings[i].slots {
			if ent := f.rings[i].slots[j].Load(); ent != nil {
				entries = append(entries, ent)
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	return entries
}

// Dump writes the retained tail to the sink, headed by a FlightDump event
// whose Cause is the trigger and whose Units counts the entries that
// follow. Nil-receiver safe, so call sites need no enabled-check. Dumps
// are serialized; writers keep recording concurrently (an entry written
// mid-dump may or may not appear — the tail is a best-effort snapshot).
func (f *FlightRecorder) Dump(reason string) error {
	if f == nil || f.sink == nil {
		return nil
	}
	entries := f.collect()
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.buf[:0]
	b = appendEvent(b, Event{Kind: KindFlightDump, Worker: -1, Units: len(entries), Cause: reason})
	for _, ent := range entries {
		b = appendEvent(b, ent.ev)
	}
	f.buf = b
	f.dumps++
	_, err := f.sink.Write(b)
	return err
}

// Dumps counts completed Dump calls (0 on a nil recorder).
func (f *FlightRecorder) Dumps() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// Tee fans every event out to each non-nil tracer, in order. It returns
// nil when nothing remains and the sole survivor unwrapped, so wiring code
// can compose an optional flight recorder with an optional trace sink
// without case analysis.
func Tee(tracers ...Tracer) Tracer {
	live := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return teeTracer(live)
	}
}

type teeTracer []Tracer

// Emit implements Tracer.
func (t teeTracer) Emit(e Event) {
	for _, tr := range t {
		tr.Emit(e)
	}
}
