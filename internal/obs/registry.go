package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic integer.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is an accumulating atomic float (CAS on the bit pattern).
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates d.
func (c *FloatCounter) Add(d float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the accumulated sum.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a last-value-wins atomic float.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bound bucket histogram with atomic counts. A value
// v lands in the first bucket whose upper bound is >= v; values above the
// last bound land in the overflow bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1: the last entry is the overflow
	sum    FloatCounter
	n      atomic.Int64
}

// NewHistogram builds a histogram over the given (ascending) upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// HistSnapshot is a histogram's frozen state. P50/P95/P99 are the
// interpolated quantile estimates (see Quantile), filled by
// Registry.Snapshot so the debug endpoint serves them directly.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; the last is overflow
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// Mean returns the average observed value (0 when empty).
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// inside the bucket holding the q-th observation. The first bucket's lower
// edge is taken as 0 (every histogram here observes non-negative values);
// observations in the overflow bucket report the last bound — the
// histogram cannot see past it.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Counts) == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := 0.0
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + frac*(hi-lo)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// fillQuantiles stamps the standard quantile estimates.
func (h *HistSnapshot) fillQuantiles() {
	h.P50 = h.Quantile(0.50)
	h.P95 = h.Quantile(0.95)
	h.P99 = h.Quantile(0.99)
}

// Registry is a named collection of counters, float counters, gauges and
// histograms, created on first use and safe for concurrent access. The
// zero-cost disabled configuration is a nil *Registry on the probe, not an
// empty registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	floats   map[string]*FloatCounter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		floats:   make(map[string]*FloatCounter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// FloatCounter returns the named float counter, creating it on first use.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.floats[name]
	if !ok {
		c = &FloatCounter{}
		r.floats[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a registry's frozen state; encoding/json renders map keys
// sorted, so serialized snapshots are deterministic.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Floats     map[string]float64      `json:"floats"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot freezes every metric. Safe on a nil registry (returns empty
// maps), so the debug endpoint can serve a metrics-less server.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Floats:     make(map[string]float64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, c := range r.floats {
		s.Floats[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.sum.Value(),
			Count:  h.n.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		hs.fillQuantiles()
		s.Histograms[name] = hs
	}
	return s
}

// SampleVitals samples Go runtime health into gauges: goroutine count,
// heap bytes, cumulative GC pause seconds and GC cycles. It reads only the
// runtime package (no clocks), so it is legal anywhere in the
// wallclock-restricted core; callers pick the cadence — the debug endpoint
// samples once per scrape, which keeps the deterministic runtimes free of
// sampling timers.
func (r *Registry) SampleVitals() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("vitals/goroutines").Set(float64(runtime.NumGoroutine()))
	r.Gauge("vitals/heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	r.Gauge("vitals/heap_sys_bytes").Set(float64(ms.HeapSys))
	r.Gauge("vitals/gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	r.Gauge("vitals/num_gc").Set(float64(ms.NumGC))
}

// DebugHandler serves the registry snapshot as pretty-printed JSON — the
// expvar-style debug endpoint the live server exposes when configured.
// Runtime vitals are sampled per scrape, so the served snapshot always
// carries fresh goroutine/heap/GC gauges.
func DebugHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		r.SampleVitals()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Snapshot()); err != nil {
			// The client went away mid-response; nothing to serve it.
			return
		}
	})
}
