// Package obs is the observability layer shared by both runtimes: a
// low-overhead structured event tracer and an atomic counters/gauges
// registry. The paper's claims are time-composition claims — rows must
// move during compute, stalls must stay bounded through bandwidth fades —
// and this package makes those properties visible per transmission rather
// than only as post-hoc averages.
//
// Design constraints:
//
//   - Zero cost when disabled. Every emission goes through a *Probe whose
//     methods are nil-receiver safe; a nil probe (tracing and metrics both
//     off) is a pointer check and a return, with no allocation and no
//     interface boxing on the hot paths.
//   - No clock of its own. The probe's timestamps come from an injected
//     clock closure: the simnet drivers pass the kernel's virtual clock,
//     the socket runtime passes a monotonic wall-clock anchor. The package
//     itself never reads wall time, so the deterministic core stays
//     deterministic (enforced by roglint's wallclock pass, which lists
//     internal/obs among the restricted packages).
//   - Flat events. Event is a value struct with a fixed field set; tracers
//     receive it by value, so emitting does not allocate unless the tracer
//     itself does (the JSONL exporter reuses an internal buffer).
package obs

// Kind discriminates trace events.
type Kind uint8

// Event kinds, in rough lifecycle order of a worker-iteration.
const (
	// KindIterStart marks the beginning of a worker-iteration (compute
	// starts now).
	KindIterStart Kind = iota + 1
	// KindIterEnd closes a worker-iteration and carries its time
	// composition (compute/comm/stall seconds — the same values the run's
	// metrics.Result averages).
	KindIterEnd
	// KindPushPlanned records the policy's transmission plan for one push:
	// how many units it scheduled, the MTA floor, and how many accumulated
	// units it deferred.
	KindPushPlanned
	// KindRowsSent records one completed transmission (push or pull
	// direction): delivered units, bytes on the wire, elapsed seconds.
	KindRowsSent
	// KindStallBegin marks a worker blocking on the staleness gate (or
	// another named cause).
	KindStallBegin
	// KindStallEnd closes the matching StallBegin and carries the stalled
	// duration.
	KindStallEnd
	// KindMerge records one row merged into the server state: the stamped
	// version and the row's staleness lag behind the global minimum.
	KindMerge
	// KindDetach records a worker leaving membership (crash, connection
	// loss, silent stall).
	KindDetach
	// KindReconnect records a detached worker re-attaching; Version carries
	// the re-baselined iteration.
	KindReconnect
	// KindResync records the rejoin resync transmission: backlog units
	// replayed and their wire bytes.
	KindResync
	// KindRowsLost records rows the loss channel dropped and how they were
	// settled: Cause "fold" for best-effort rows folded back into the local
	// accumulator, "retransmit" for reliable rows queued for retransmission.
	KindRowsLost
	// KindRetransmit records one retransmission flow: reliable units sent
	// again after loss, with their wire bytes and elapsed seconds.
	KindRetransmit
	// KindCheckpointBegin marks the start of writing one durable snapshot;
	// Version carries the snapshot sequence number.
	KindCheckpointBegin
	// KindCheckpointEnd closes the matching CheckpointBegin; Bytes carries
	// the snapshot size.
	KindCheckpointEnd
	// KindWALAppend records one record appended to the write-ahead log;
	// Bytes carries the encoded record size. Emitted per append, so traces
	// of journaled runs show exactly what a crash could lose.
	KindWALAppend
	// KindRecoveryReplay records one completed crash recovery: Units
	// carries the WAL records replayed, Bytes the snapshot+WAL bytes read,
	// Version the new recovery epoch.
	KindRecoveryReplay
	// KindFlightDump heads a flight-recorder dump: Cause names the trigger
	// (servercrash recovery, a detach storm, a loss abandon) and Units
	// counts the retained events that follow it in the dump stream.
	KindFlightDump
	// KindSnapshotPublish records the serving tier publishing one immutable
	// model snapshot: Version is the training version it captures (the
	// global row minimum at publish), Seq the publish sequence number, and
	// Units the snapshot's row count.
	KindSnapshotPublish
	// KindRequestEnqueue records one inference request entering the serving
	// tier: Seq carries the request id, Version the staleness floor it
	// demands (version ≥ Version), and Lag the shortfall of the currently
	// published snapshot against that floor (0 when it can serve now).
	KindRequestEnqueue
	// KindRequestServe records one inference request answered: Seq the
	// request id, Version the snapshot version that served it, Units the
	// batch size it rode in, Seconds its enqueue-to-reply latency.
	KindRequestServe
	// KindReadStallBegin marks a request parking on the bounded-staleness
	// read gate: Seq the request id, Version the demanded floor,
	// BlockVersion the version published when it parked.
	KindReadStallBegin
	// KindReadStallEnd closes the matching ReadStallBegin: Seconds the time
	// parked, Version the snapshot version that finally admitted it.
	KindReadStallEnd
)

var kindNames = [...]string{
	KindIterStart:       "IterStart",
	KindIterEnd:         "IterEnd",
	KindPushPlanned:     "PushPlanned",
	KindRowsSent:        "RowsSent",
	KindStallBegin:      "StallBegin",
	KindStallEnd:        "StallEnd",
	KindMerge:           "Merge",
	KindDetach:          "Detach",
	KindReconnect:       "Reconnect",
	KindResync:          "Resync",
	KindRowsLost:        "RowsLost",
	KindRetransmit:      "Retransmit",
	KindCheckpointBegin: "CheckpointBegin",
	KindCheckpointEnd:   "CheckpointEnd",
	KindWALAppend:       "WALAppend",
	KindRecoveryReplay:  "RecoveryReplay",
	KindFlightDump:      "FlightDump",
	KindSnapshotPublish: "SnapshotPublish",
	KindRequestEnqueue:  "RequestEnqueue",
	KindRequestServe:    "RequestServe",
	KindReadStallBegin:  "ReadStallBegin",
	KindReadStallEnd:    "ReadStallEnd",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "Unknown"
}

// KindFromString is the inverse of Kind.String; 0 for unknown names.
func KindFromString(s string) Kind {
	for k, name := range kindNames {
		if name == s {
			return Kind(k)
		}
	}
	return 0
}

// Dir is the transmission direction of a RowsSent event.
type Dir uint8

// Transmission directions.
const (
	// DirNone is the zero value (non-transmission events).
	DirNone Dir = iota
	// DirPush is worker → server.
	DirPush
	// DirPull is server → worker.
	DirPull
)

// String names the direction ("" for DirNone).
func (d Dir) String() string {
	switch d {
	case DirPush:
		return "push"
	case DirPull:
		return "pull"
	default:
		return ""
	}
}

// Event is one structured trace record. Only the fields meaningful for the
// Kind are set; the rest stay zero (and the JSONL exporter omits them).
type Event struct {
	Kind   Kind
	Time   float64 // seconds since run start, on the emitter's clock
	Worker int
	Iter   int64

	Unit     int   // row-partition unit (Merge)
	Units    int   // planned/delivered/resynced unit count
	Must     int   // MTA-floor unit count (PushPlanned)
	Deferred int   // accumulated units the plan left behind (PushPlanned)
	Version  int64 // stamped row version (Merge) or rejoin baseline (Reconnect)
	Lag      int64 // staleness lag behind the global minimum (Merge)

	Bytes   float64 // wire bytes (PushPlanned, RowsSent, Resync)
	Seconds float64 // duration: transmission (RowsSent) or stall (StallEnd)

	Compute float64 // IterEnd composition
	Comm    float64
	Stall   float64

	Dir   Dir
	Spec  bool   // speculative transmission
	Cause string // stall/detach cause, or "skip" for a sat-out push

	// Seq is the per-worker push-plan sequence number, the causal
	// correlation ID: a PushPlanned, its RowsSent transmissions, the
	// Merges it produced server-side and any stall it resolved all carry
	// the same (Worker, Iter, Seq) triple.
	Seq int64

	// BlockWorker/BlockUnit/BlockVersion attribute a StallBegin/StallEnd
	// to the concrete blocker: on StallBegin, the (worker, unit) currently
	// pinning the global minimum version the gate is waiting on; on
	// StallEnd, the merge (or detach, Unit -1) whose minimum advance
	// released the gate. Worker and Unit are -1 when unknown.
	BlockWorker  int
	BlockUnit    int
	BlockVersion int64
}

// Blocker identifies the causal party of a staleness-gate stall: the
// (worker, unit) whose stamped version pins — or whose merge released —
// the global minimum the gate compares against. Zero is a real identity
// (worker 0, unit 0), so the unknown blocker is NoBlocker.
type Blocker struct {
	Worker  int
	Unit    int
	Version int64
}

// NoBlocker is the attribution placeholder when no concrete blocker is
// known (for example a stall released by run shutdown).
func NoBlocker() Blocker { return Blocker{Worker: -1, Unit: -1} }

// Tracer receives every emitted event. Implementations must be safe for
// concurrent use when driven from the socket runtime (the simnet kernel is
// single-threaded). The event is passed by value; a tracer that retains it
// may copy freely.
type Tracer interface {
	Emit(Event)
}

// Probe binds an optional Tracer, an optional Registry and a clock into
// the single handle the instrumented code paths hold. All methods are safe
// on a nil *Probe — the disabled configuration — and cost one pointer
// check there.
type Probe struct {
	tracer Tracer
	reg    *Registry
	now    func() float64
}

// NewProbe builds a probe; it returns nil (the disabled probe) when both
// the tracer and the registry are nil. now supplies timestamps in seconds
// since run start; nil freezes the clock at zero.
func NewProbe(t Tracer, r *Registry, now func() float64) *Probe {
	if t == nil && r == nil {
		return nil
	}
	if now == nil {
		now = func() float64 { return 0 }
	}
	return &Probe{tracer: t, reg: r, now: now}
}

// Registry returns the probe's registry (nil when metrics are off).
func (p *Probe) Registry() *Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// emit stamps the event with the probe's clock and hands it to the tracer.
func (p *Probe) emit(e Event) {
	if p.tracer == nil {
		return
	}
	e.Time = p.now()
	p.tracer.Emit(e)
}

// IterStart marks the beginning of worker w's iteration n.
func (p *Probe) IterStart(w int, n int64) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindIterStart, Worker: w, Iter: n})
}

// IterEnd closes worker w's iteration n with its time composition.
func (p *Probe) IterEnd(w int, n int64, compute, comm, stall float64) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindIterEnd, Worker: w, Iter: n, Compute: compute, Comm: comm, Stall: stall})
	if p.reg != nil {
		p.reg.Counter("iters_completed").Add(1)
		p.reg.FloatCounter("iter_compute_seconds").Add(compute)
		p.reg.FloatCounter("iter_comm_seconds").Add(comm)
		p.reg.FloatCounter("iter_stall_seconds").Add(stall)
	}
}

// PushPlanned records a push plan: units scheduled, the MTA floor, units
// deferred, total planned wire bytes. seq is the per-worker plan sequence
// number correlating this plan with its transmissions and merges. cause is
// "" normally and "skip" when the policy sat the iteration out (units is
// then 0).
func (p *Probe) PushPlanned(w int, n, seq int64, units, must, deferred int, bytes float64, spec bool, cause string) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindPushPlanned, Worker: w, Iter: n, Seq: seq,
		Units: units, Must: must, Deferred: deferred, Bytes: bytes, Spec: spec, Cause: cause})
	if p.reg != nil {
		p.reg.Counter("rows_planned").Add(int64(units))
		p.reg.Counter("rows_deferred").Add(int64(deferred))
	}
}

// RowsSent records one completed transmission for worker w's iteration n,
// under plan sequence seq.
func (p *Probe) RowsSent(w int, n, seq int64, dir Dir, units int, bytes, seconds float64, spec bool) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindRowsSent, Worker: w, Iter: n, Seq: seq,
		Units: units, Bytes: bytes, Seconds: seconds, Dir: dir, Spec: spec})
	if p.reg != nil {
		if dir == DirPull {
			p.reg.Counter("rows_pulled").Add(int64(units))
		} else {
			p.reg.Counter("rows_sent").Add(int64(units))
		}
		p.reg.FloatCounter("bytes_on_wire").Add(bytes)
	}
}

// StallBegin marks worker w blocking during iteration n for cause. blk
// names the (worker, unit, version) currently pinning the minimum the gate
// waits on (NoBlocker when unknown).
func (p *Probe) StallBegin(w int, n, seq int64, cause string, blk Blocker) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindStallBegin, Worker: w, Iter: n, Seq: seq, Cause: cause,
		BlockWorker: blk.Worker, BlockUnit: blk.Unit, BlockVersion: blk.Version})
}

// StallEnd closes the matching StallBegin with the stalled duration. blk
// names the merge (unit -1 for a detach) whose minimum advance released
// the gate.
func (p *Probe) StallEnd(w int, n, seq int64, cause string, seconds float64, blk Blocker) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindStallEnd, Worker: w, Iter: n, Seq: seq, Cause: cause, Seconds: seconds,
		BlockWorker: blk.Worker, BlockUnit: blk.Unit, BlockVersion: blk.Version})
	if p.reg != nil {
		p.reg.FloatCounter("stall_seconds/" + cause).Add(seconds)
		p.reg.Histogram("stall_duration_seconds", StallDurationBounds).Observe(seconds)
	}
}

// Merge records one row merged into the server state: unit u stamped at
// version, lagging the global minimum by lag iterations. seq is the plan
// sequence of the push that carried the row (0 when unknown, e.g. a
// recovery re-stamp).
func (p *Probe) Merge(w, u int, n, seq, version, lag int64) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindMerge, Worker: w, Iter: n, Seq: seq, Unit: u, Version: version, Lag: lag})
	if p.reg != nil {
		p.reg.Counter("rows_merged").Add(1)
		p.reg.Histogram("staleness", StalenessBounds).Observe(float64(lag))
		p.reg.Histogram("staleness/unit"+itoa(u), StalenessBounds).Observe(float64(lag))
	}
}

// GateCheck counts one staleness-gate evaluation and whether it blocked.
// No event is emitted — the gate is checked on every wake and would drown
// the trace; the stall interval is what StallBegin/End record.
func (p *Probe) GateCheck(ok bool) {
	if p == nil || p.reg == nil {
		return
	}
	p.reg.Counter("gate_checks").Add(1)
	if !ok {
		p.reg.Counter("gate_blocked").Add(1)
	}
}

// BudgetUsed records one observed push against the MTA-time budget in
// force when it was planned: utilization is elapsed/budget.
func (p *Probe) BudgetUsed(w int, n int64, budget, elapsed float64) {
	if p == nil || p.reg == nil {
		return
	}
	p.reg.FloatCounter("mta_budget_seconds").Add(budget)
	p.reg.FloatCounter("mta_used_seconds").Add(elapsed)
	p.reg.Gauge("mta_budget_last").Set(budget)
	_ = w
	_ = n
}

// Detach records worker w leaving membership during iteration n.
func (p *Probe) Detach(w int, n int64, cause string) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindDetach, Worker: w, Iter: n, Cause: cause})
	if p.reg != nil {
		p.reg.Counter("detaches").Add(1)
	}
}

// Reconnect records worker w re-attaching, re-baselined at iteration base.
func (p *Probe) Reconnect(w int, base int64) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindReconnect, Worker: w, Iter: base, Version: base})
	if p.reg != nil {
		p.reg.Counter("reconnects").Add(1)
	}
}

// Resync records the rejoin resync for worker w: units replayed and their
// wire bytes. The resync backlog gauge reports the latest backlog depth.
func (p *Probe) Resync(w int, units int, bytes float64) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindResync, Worker: w, Units: units, Bytes: bytes})
	if p.reg != nil {
		p.reg.Counter("rows_resynced").Add(int64(units))
		p.reg.Gauge("resync_backlog").Set(float64(units))
	}
}

// RowsLost records units the loss channel dropped from worker w's
// iteration-n transmission, settled per cause: "fold" means best-effort
// rows folded back into the local accumulator (never sent, by RSP
// accounting), "retransmit" means reliable rows queued to go again.
func (p *Probe) RowsLost(w int, n int64, dir Dir, units int, cause string) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindRowsLost, Worker: w, Iter: n, Dir: dir, Units: units, Cause: cause})
	if p.reg != nil {
		p.reg.Counter("rows_lost/" + cause).Add(int64(units))
	}
}

// Retransmit records one completed retransmission flow: units delivered on
// a repeat attempt, their wire bytes and the elapsed seconds the repeat
// cost.
func (p *Probe) Retransmit(w int, n int64, dir Dir, units int, bytes, seconds float64) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindRetransmit, Worker: w, Iter: n, Dir: dir, Units: units, Bytes: bytes, Seconds: seconds})
	if p.reg != nil {
		p.reg.Counter("rows_retransmitted").Add(int64(units))
		p.reg.FloatCounter("retransmit_bytes").Add(bytes)
	}
}

// CheckpointBegin marks the start of writing durable snapshot seq.
func (p *Probe) CheckpointBegin(seq uint64) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindCheckpointBegin, Version: int64(seq)})
}

// CheckpointEnd closes the matching CheckpointBegin: snapshot seq is
// durable at `bytes` bytes.
func (p *Probe) CheckpointEnd(seq uint64, bytes float64) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindCheckpointEnd, Version: int64(seq), Bytes: bytes})
	if p.reg != nil {
		p.reg.Counter("checkpoints").Add(1)
		p.reg.FloatCounter("checkpoint_bytes").Add(bytes)
	}
}

// WALAppend records one write-ahead-log append of `bytes` encoded bytes.
func (p *Probe) WALAppend(bytes int) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindWALAppend, Bytes: float64(bytes)})
	if p.reg != nil {
		p.reg.Counter("wal_appends").Add(1)
		p.reg.FloatCounter("wal_bytes").Add(float64(bytes))
	}
}

// RecoveryReplay records one completed crash recovery: records replayed
// from the WAL, total snapshot+WAL bytes read, and the new recovery epoch.
func (p *Probe) RecoveryReplay(records int, bytes float64, epoch uint64) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindRecoveryReplay, Units: records, Bytes: bytes, Version: int64(epoch)})
	if p.reg != nil {
		p.reg.Counter("recoveries").Add(1)
		p.reg.Counter("recovery_replayed_records").Add(int64(records))
	}
}

// SnapshotPublish records the serving tier publishing snapshot seq at
// training version, holding units rows.
func (p *Probe) SnapshotPublish(version, seq int64, units int) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindSnapshotPublish, Version: version, Seq: seq, Units: units})
	if p.reg != nil {
		p.reg.Counter("snapshots_published").Add(1)
		p.reg.Gauge("snapshot_version").Set(float64(version))
	}
}

// RequestEnqueue records inference request id entering the serving tier,
// demanding version ≥ minVersion while cur is published (lag is the
// shortfall, 0 when it can serve immediately).
func (p *Probe) RequestEnqueue(id, minVersion, cur int64) {
	if p == nil {
		return
	}
	lag := minVersion - cur
	if lag < 0 {
		lag = 0
	}
	p.emit(Event{Kind: KindRequestEnqueue, Seq: id, Version: minVersion, Lag: lag})
	if p.reg != nil {
		p.reg.Counter("requests_enqueued").Add(1)
	}
}

// RequestServe records request id answered from the snapshot at version,
// in a batch of batch requests, seconds after it enqueued.
func (p *Probe) RequestServe(id, version int64, batch int, seconds float64) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindRequestServe, Seq: id, Version: version, Units: batch, Seconds: seconds})
	if p.reg != nil {
		p.reg.Counter("requests_served").Add(1)
		p.reg.Histogram("serve_latency_seconds", ServeLatencyBounds).Observe(seconds)
	}
}

// ReadStallBegin marks request id parking on the read gate: it demands
// version ≥ minVersion but only cur is published.
func (p *Probe) ReadStallBegin(id, minVersion, cur int64) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindReadStallBegin, Seq: id, Version: minVersion, BlockVersion: cur})
	if p.reg != nil {
		p.reg.Counter("read_stalls").Add(1)
	}
}

// ReadStallEnd closes request id's ReadStallBegin: the snapshot at version
// admitted it after seconds parked.
func (p *Probe) ReadStallEnd(id, version int64, seconds float64) {
	if p == nil {
		return
	}
	p.emit(Event{Kind: KindReadStallEnd, Seq: id, Version: version, Seconds: seconds})
	if p.reg != nil {
		p.reg.FloatCounter("read_stall_seconds").Add(seconds)
	}
}

// ObservePlan implements the atp plan-construction observer: every built
// transmission plan reports its size here.
func (p *Probe) ObservePlan(units int, totalBytes float64) {
	if p == nil || p.reg == nil {
		return
	}
	p.reg.Counter("plans_built").Add(1)
	p.reg.Counter("plan_rows").Add(int64(units))
	p.reg.FloatCounter("plan_bytes").Add(totalBytes)
}

// StalenessBounds are the histogram bucket upper bounds for row staleness
// lag (iterations); lags above the last bound land in the overflow bucket.
var StalenessBounds = []float64{0, 1, 2, 4, 8, 16, 32}

// StallDurationBounds are the histogram bucket upper bounds for stall
// durations (seconds); the quantile estimates in rogtrace and the debug
// endpoint interpolate within these buckets.
var StallDurationBounds = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// ServeLatencyBounds are the histogram bucket upper bounds for inference
// request latency (seconds): sub-window batching delays up through
// read-gate stalls spanning several training iterations.
var ServeLatencyBounds = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// itoa is a minimal non-negative integer formatter (avoids strconv for the
// one hot-path name join).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	if v < 0 {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
