package obs

import (
	"bytes"
	"testing"
)

// TestAggregateServingEvents checks the serving-tier counters and the
// ReadStall begin/end pairing over a well-formed stream.
func TestAggregateServingEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	p := NewProbe(tr, nil, func() float64 { return 1.0 })

	p.SnapshotPublish(0, 1, 12)
	p.RequestEnqueue(1, 0, 0) // fresh enough, no stall
	p.RequestServe(1, 0, 1, 0.02)
	p.RequestEnqueue(2, 3, 0) // demands version 3 while 0 is published
	p.ReadStallBegin(2, 3, 0)
	p.SnapshotPublish(3, 2, 12)
	p.ReadStallEnd(2, 3, 0.5)
	p.RequestServe(2, 3, 1, 0.52)
	p.RequestEnqueue(3, 9, 3)
	p.ReadStallBegin(3, 9, 3) // never resumed: run halted mid-stall
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := Aggregate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PairErrors) != 0 {
		t.Fatalf("unexpected pair errors: %v", s.PairErrors)
	}
	if s.SnapshotPublishes != 2 {
		t.Errorf("snapshot publishes = %d, want 2", s.SnapshotPublishes)
	}
	if s.RequestsEnqueued != 3 || s.RequestsServed != 2 {
		t.Errorf("requests enqueued %d served %d, want 3/2", s.RequestsEnqueued, s.RequestsServed)
	}
	if s.ReadStalls != 2 || s.ReadStallSeconds != 0.5 {
		t.Errorf("read stalls %d / %g s, want 2 / 0.5", s.ReadStalls, s.ReadStallSeconds)
	}
	if s.OpenReadStalls != 1 {
		t.Errorf("open read stalls = %d, want 1 (request 3 halted mid-stall)", s.OpenReadStalls)
	}
	if s.MaxReadLag != 6 {
		t.Errorf("max read lag = %d, want 6 (request 3 demanded 9 over 3)", s.MaxReadLag)
	}
	closeTo := func(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }
	if !closeTo(s.ServeSeconds, 0.54) || !closeTo(s.MaxServeSeconds, 0.52) {
		t.Errorf("serve seconds %g max %g, want 0.54/0.52", s.ServeSeconds, s.MaxServeSeconds)
	}
}

// TestAggregateReadStallPairingViolations checks that a double begin and a
// bare end are both reported as structural trace errors.
func TestAggregateReadStallPairingViolations(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	tr.Emit(Event{Kind: KindReadStallEnd, Time: 1, Seq: 7, Seconds: 0.1})
	tr.Emit(Event{Kind: KindReadStallBegin, Time: 2, Seq: 8})
	tr.Emit(Event{Kind: KindReadStallBegin, Time: 3, Seq: 8})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Aggregate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PairErrors) != 2 {
		t.Fatalf("pair errors = %v, want 2", s.PairErrors)
	}
	if s.OpenReadStalls != 1 {
		t.Errorf("open read stalls = %d, want 1", s.OpenReadStalls)
	}
}
