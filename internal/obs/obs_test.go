package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// collectTracer retains every event for assertions.
type collectTracer struct {
	events []Event
}

func (c *collectTracer) Emit(e Event) { c.events = append(c.events, e) }

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindIterStart; k <= KindFlightDump; k++ {
		name := k.String()
		if name == "Unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if got := KindFromString(name); got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", name, got, k)
		}
	}
	if KindFromString("nope") != 0 {
		t.Error("unknown name should map to 0")
	}
}

func TestNilProbeIsSafe(t *testing.T) {
	var p *Probe
	p.IterStart(0, 1)
	p.IterEnd(0, 1, 1, 2, 3)
	p.PushPlanned(0, 1, 1, 3, 1, 2, 100, true, "")
	p.RowsSent(0, 1, 1, DirPush, 3, 100, 0.5, true)
	p.StallBegin(0, 1, 1, "gate", NoBlocker())
	p.StallEnd(0, 1, 1, "gate", 0.25, NoBlocker())
	p.Merge(0, 2, 1, 1, 1, 0)
	p.GateCheck(false)
	p.BudgetUsed(0, 1, 1, 0.5)
	p.Detach(0, 1, "crash")
	p.Reconnect(0, 1)
	p.Resync(0, 3, 100)
	p.ObservePlan(3, 100)
	if p.Registry() != nil {
		t.Error("nil probe should have nil registry")
	}
	if NewProbe(nil, nil, nil) != nil {
		t.Error("NewProbe with nothing enabled must return nil")
	}
}

// TestNilProbeAllocationFree is the acceptance guard: with tracing
// disabled the instrumented hot paths must not allocate.
func TestNilProbeAllocationFree(t *testing.T) {
	var p *Probe
	allocs := testing.AllocsPerRun(1000, func() {
		p.IterStart(1, 7)
		p.Merge(1, 3, 7, 7, 7, 2)
		p.RowsSent(1, 7, 7, DirPush, 5, 1e4, 0.3, true)
		p.GateCheck(true)
		p.StallBegin(1, 7, 7, "gate", Blocker{Worker: 2, Unit: 3, Version: 5})
		p.StallEnd(1, 7, 7, "gate", 0.1, Blocker{Worker: 2, Unit: 3, Version: 6})
	})
	if allocs != 0 {
		t.Fatalf("disabled probe allocated %.1f times per run, want 0", allocs)
	}
}

func TestProbeStampsClock(t *testing.T) {
	now := 0.0
	ct := &collectTracer{}
	p := NewProbe(ct, nil, func() float64 { return now })
	now = 1.5
	p.IterStart(2, 9)
	now = 3.25
	p.IterEnd(2, 9, 1, 0.5, 0.25)
	if len(ct.events) != 2 {
		t.Fatalf("got %d events, want 2", len(ct.events))
	}
	if ct.events[0].Time != 1.5 || ct.events[1].Time != 3.25 {
		t.Errorf("timestamps %v, %v; want 1.5, 3.25", ct.events[0].Time, ct.events[1].Time)
	}
	if ct.events[0].Worker != 2 || ct.events[0].Iter != 9 {
		t.Errorf("event fields %+v", ct.events[0])
	}
}

func sampleEvents() []Event {
	return []Event{
		{Kind: KindIterStart, Time: 0, Worker: 0, Iter: 1},
		{Kind: KindPushPlanned, Time: 2.64, Worker: 0, Iter: 1, Seq: 1, Units: 5, Must: 2, Deferred: 1, Bytes: 5000, Spec: true},
		{Kind: KindRowsSent, Time: 3.1, Worker: 0, Iter: 1, Seq: 1, Units: 4, Bytes: 4000, Seconds: 0.46, Dir: DirPush, Spec: true},
		{Kind: KindMerge, Time: 3.1, Worker: 0, Iter: 1, Seq: 1, Unit: 0, Version: 1, Lag: 0},
		{Kind: KindMerge, Time: 3.1, Worker: 0, Iter: 1, Seq: 1, Unit: 3, Version: 1, Lag: 2},
		{Kind: KindStallBegin, Time: 3.2, Worker: 0, Iter: 1, Seq: 1, Cause: "gate", BlockWorker: 1, BlockUnit: 3, BlockVersion: 1},
		{Kind: KindStallEnd, Time: 4.0, Worker: 0, Iter: 1, Seq: 1, Cause: "gate", Seconds: 0.8, BlockWorker: 1, BlockUnit: 3, BlockVersion: 2},
		{Kind: KindRowsSent, Time: 4.4, Worker: 0, Iter: 1, Seq: 1, Units: 6, Bytes: 6000, Seconds: 0.4, Dir: DirPull, Spec: true},
		{Kind: KindIterEnd, Time: 4.4, Worker: 0, Iter: 1, Compute: 2.64, Comm: 0.86, Stall: 0.9},
		{Kind: KindDetach, Time: 5.0, Worker: 1, Iter: 2, Cause: "crash"},
		{Kind: KindReconnect, Time: 7.0, Worker: 1, Iter: 3, Version: 3},
		{Kind: KindResync, Time: 7.1, Worker: 1, Units: 8, Bytes: 8000},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	want := sampleEvents()
	for _, e := range want {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// Every line must be standalone valid JSON.
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d is not valid JSON: %s", i+1, line)
		}
	}
	var got []Event
	if err := ReadEvents(bytes.NewReader(buf.Bytes()), func(e Event) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d round-tripped to %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if err := ReadEvents(strings.NewReader("{not json\n"), func(Event) error { return nil }); err == nil {
		t.Error("malformed line should error")
	}
	if err := ReadEvents(strings.NewReader(`{"ev":"Martian","t":0,"w":0,"iter":0}`+"\n"),
		func(Event) error { return nil }); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestChromeExporterValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	for _, e := range sampleEvents() {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome trace is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != len(sampleEvents()) {
		t.Fatalf("got %d trace events, want %d", len(doc.TraceEvents), len(sampleEvents()))
	}
	var xCount, iCount int
	for _, te := range doc.TraceEvents {
		switch te.Ph {
		case "X":
			xCount++
			if te.Dur < 0 || te.Ts < 0 {
				t.Errorf("complete event %q has negative ts/dur: %+v", te.Name, te)
			}
		case "i":
			iCount++
		default:
			t.Errorf("unexpected phase %q", te.Ph)
		}
		if te.Pid != 1 {
			t.Errorf("pid = %d, want 1", te.Pid)
		}
	}
	// IterEnd, StallEnd and the two RowsSent become X; the rest instants.
	if xCount != 4 || iCount != len(sampleEvents())-4 {
		t.Errorf("phases: %d X + %d i", xCount, iCount)
	}
	// Empty trace must still be valid.
	var empty bytes.Buffer
	et := NewChromeTracer(&empty)
	if err := et.Close(); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(empty.Bytes()) {
		t.Fatalf("empty chrome trace invalid: %s", empty.String())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("rows").Add(3)
	r.Counter("rows").Add(4)
	r.FloatCounter("sec").Add(1.5)
	r.FloatCounter("sec").Add(2.5)
	r.Gauge("budget").Set(0.5)
	r.Gauge("budget").Set(0.75)
	h := r.Histogram("lag", []float64{0, 1, 2})
	for _, v := range []float64{0, 0, 1, 2, 5} {
		h.Observe(v)
	}

	s := r.Snapshot()
	if s.Counters["rows"] != 7 {
		t.Errorf("counter = %d, want 7", s.Counters["rows"])
	}
	if s.Floats["sec"] != 4 {
		t.Errorf("float counter = %g, want 4", s.Floats["sec"])
	}
	if s.Gauges["budget"] != 0.75 {
		t.Errorf("gauge = %g, want 0.75", s.Gauges["budget"])
	}
	hs := s.Histograms["lag"]
	wantCounts := []int64{2, 1, 1, 1} // <=0, <=1, <=2, overflow
	for i, w := range wantCounts {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hs.Counts[i], w)
		}
	}
	if hs.Count != 5 || hs.Sum != 8 {
		t.Errorf("hist count=%d sum=%g, want 5, 8", hs.Count, hs.Sum)
	}
	if got := hs.Mean(); got != 1.6 {
		t.Errorf("hist mean = %g, want 1.6", got)
	}

	// Nil registry snapshots to empty, not panic (debug endpoint path).
	var nr *Registry
	if got := nr.Snapshot(); len(got.Counters) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", got)
	}
}

func TestDebugHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("iters_completed").Add(12)
	rec := httptest.NewRecorder()
	DebugHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rog", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["iters_completed"] != 12 {
		t.Errorf("served counter = %d, want 12", s.Counters["iters_completed"])
	}
}

func TestProbeFeedsRegistry(t *testing.T) {
	r := NewRegistry()
	p := NewProbe(nil, r, nil)
	p.IterEnd(0, 1, 2, 1, 0.5)
	p.PushPlanned(0, 1, 1, 5, 2, 3, 5000, true, "")
	p.RowsSent(0, 1, 1, DirPush, 4, 4000, 0.4, true)
	p.RowsSent(0, 1, 1, DirPull, 6, 6000, 0.6, true)
	p.StallEnd(0, 1, 1, "gate", 0.8, Blocker{Worker: 1, Unit: 2, Version: 1})
	p.Merge(0, 2, 1, 1, 1, 3)
	p.GateCheck(false)
	p.GateCheck(true)
	p.BudgetUsed(0, 1, 1.0, 0.4)
	p.Detach(1, 2, "crash")
	p.Reconnect(1, 3)
	p.Resync(1, 8, 8000)
	p.ObservePlan(5, 5000)

	s := r.Snapshot()
	checks := map[string]int64{
		"iters_completed": 1, "rows_planned": 5, "rows_deferred": 3,
		"rows_sent": 4, "rows_pulled": 6, "rows_merged": 1,
		"gate_checks": 2, "gate_blocked": 1,
		"detaches": 1, "reconnects": 1, "rows_resynced": 8,
		"plans_built": 1, "plan_rows": 5,
	}
	for name, want := range checks {
		if got := s.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if got := s.Floats["stall_seconds/gate"]; got != 0.8 {
		t.Errorf("stall_seconds/gate = %g, want 0.8", got)
	}
	if got := s.Floats["bytes_on_wire"]; got != 10000 {
		t.Errorf("bytes_on_wire = %g, want 10000", got)
	}
	if got := s.Floats["mta_budget_seconds"]; got != 1.0 {
		t.Errorf("mta_budget_seconds = %g, want 1", got)
	}
	if got := s.Gauges["resync_backlog"]; got != 8 {
		t.Errorf("resync_backlog = %g, want 8", got)
	}
	if got := s.Histograms["staleness"].Count; got != 1 {
		t.Errorf("staleness observations = %d, want 1", got)
	}
	if got := s.Histograms["staleness/unit2"].Count; got != 1 {
		t.Errorf("per-unit staleness observations = %d, want 1", got)
	}
	if got := s.Histograms["stall_duration_seconds"].Count; got != 1 {
		t.Errorf("stall duration observations = %d, want 1", got)
	}
}

func TestAggregate(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	for _, e := range sampleEvents() {
		tr.Emit(e)
	}
	// A second worker-iteration of the same iteration number, to exercise
	// per-iteration averaging.
	tr.Emit(Event{Kind: KindIterEnd, Time: 5.0, Worker: 1, Iter: 1, Compute: 2.64, Comm: 1.0, Stall: 0.1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := Aggregate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PairErrors) != 0 {
		t.Fatalf("unexpected pair errors: %v", s.PairErrors)
	}
	if s.Iters != 2 {
		t.Fatalf("iters = %d, want 2", s.Iters)
	}
	comp, comm, stall := s.Composition()
	closeTo := func(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }
	if !closeTo(comp, 2.64) || !closeTo(comm, 0.93) || !closeTo(stall, 0.5) {
		t.Errorf("composition = %g/%g/%g, want 2.64/0.93/0.5", comp, comm, stall)
	}
	if len(s.ByIter) != 1 || s.ByIter[0].Count != 2 {
		t.Errorf("ByIter = %+v", s.ByIter)
	}
	if s.RowsPlanned != 5 || s.RowsDeferred != 1 || s.RowsSent != 4 || s.RowsPulled != 6 {
		t.Errorf("rows: planned %d deferred %d sent %d pulled %d",
			s.RowsPlanned, s.RowsDeferred, s.RowsSent, s.RowsPulled)
	}
	if s.StallByCause["gate"] != 0.8 {
		t.Errorf("gate stall = %g, want 0.8", s.StallByCause["gate"])
	}
	if s.Merges != 2 || s.LagHist[0] != 1 || s.LagHist[2] != 1 {
		t.Errorf("merges %d hist %v", s.Merges, s.LagHist)
	}
	if len(s.Units) != 2 || s.Units[1].Unit != 3 || s.Units[1].MaxLag != 2 {
		t.Errorf("units %+v", s.Units)
	}
	if s.Detaches != 1 || s.Reconnects != 1 || s.ResyncRows != 8 {
		t.Errorf("churn: detach %d reconnect %d resync rows %d", s.Detaches, s.Reconnects, s.ResyncRows)
	}
	if s.OpenStalls != 0 {
		t.Errorf("open stalls = %d, want 0", s.OpenStalls)
	}
}

func TestAggregatePairingViolations(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	tr.Emit(Event{Kind: KindStallEnd, Time: 1, Worker: 0, Iter: 1, Cause: "gate", Seconds: 1})
	tr.Emit(Event{Kind: KindReconnect, Time: 2, Worker: 1, Iter: 1})
	tr.Emit(Event{Kind: KindDetach, Time: 3, Worker: 2, Iter: 1, Cause: "crash"})
	tr.Emit(Event{Kind: KindDetach, Time: 4, Worker: 2, Iter: 1, Cause: "crash"})
	tr.Emit(Event{Kind: KindStallBegin, Time: 5, Worker: 3, Iter: 1, Cause: "gate"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Aggregate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PairErrors) != 3 {
		t.Fatalf("pair errors = %v, want 3", s.PairErrors)
	}
	if s.OpenStalls != 1 {
		t.Errorf("open stalls = %d, want 1", s.OpenStalls)
	}
}

func BenchmarkDisabledProbeMergePath(b *testing.B) {
	var p *Probe
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Merge(1, 3, int64(i), int64(i), int64(i), 0)
		p.GateCheck(true)
	}
}

func BenchmarkJSONLEmit(b *testing.B) {
	tr := NewJSONLTracer(discard{})
	p := NewProbe(tr, nil, func() float64 { return 1.5 })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.RowsSent(1, int64(i), int64(i), DirPush, 5, 1e4, 0.3, true)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
