package obs

import (
	"bytes"
	"math"
	"testing"
)

// critTrace is a two-iteration single-worker trace shaped like the async
// driver's emission order, with one attributed gate stall.
func critTrace() []Event {
	return []Event{
		{Kind: KindIterStart, Time: 0, Worker: 0, Iter: 1},
		{Kind: KindPushPlanned, Time: 2, Worker: 0, Iter: 1, Seq: 1, Units: 4, Bytes: 4000},
		{Kind: KindRowsSent, Time: 2.5, Worker: 0, Iter: 1, Seq: 1, Units: 4, Bytes: 4000, Seconds: 0.5, Dir: DirPush},
		{Kind: KindStallBegin, Time: 2.5, Worker: 0, Iter: 1, Seq: 1, Cause: "gate", BlockWorker: 1, BlockUnit: 3, BlockVersion: 0},
		{Kind: KindMerge, Time: 3.5, Worker: 1, Iter: 1, Seq: 1, Unit: 3, Version: 1},
		{Kind: KindStallEnd, Time: 3.5, Worker: 0, Iter: 1, Seq: 1, Cause: "gate", Seconds: 1, BlockWorker: 1, BlockUnit: 3, BlockVersion: 1},
		{Kind: KindRowsSent, Time: 4, Worker: 0, Iter: 1, Seq: 1, Units: 4, Bytes: 4000, Seconds: 0.5, Dir: DirPull},
		{Kind: KindIterEnd, Time: 4, Worker: 0, Iter: 1, Compute: 2, Comm: 1, Stall: 1},

		{Kind: KindIterStart, Time: 4, Worker: 0, Iter: 2},
		{Kind: KindPushPlanned, Time: 6, Worker: 0, Iter: 2, Seq: 2, Units: 4, Bytes: 4000},
		{Kind: KindRowsSent, Time: 6.5, Worker: 0, Iter: 2, Seq: 2, Units: 4, Bytes: 4000, Seconds: 0.5, Dir: DirPush},
		{Kind: KindRowsSent, Time: 7, Worker: 0, Iter: 2, Seq: 2, Units: 4, Bytes: 4000, Seconds: 0.5, Dir: DirPull},
		{Kind: KindIterEnd, Time: 7.5, Worker: 0, Iter: 2, Compute: 2, Comm: 1, Stall: 0},
	}
}

func TestCritPathDecomposition(t *testing.T) {
	cp := NewCritPath()
	for _, e := range critTrace() {
		cp.Emit(e)
	}
	rep := cp.Report()
	if len(rep.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", rep.Errors)
	}
	// Worker 1 emitted only a Merge — no iterations, so only worker 0 has
	// a path row with wall time.
	var w0 *WorkerPath
	for i := range rep.Workers {
		if rep.Workers[i].Worker == 0 {
			w0 = &rep.Workers[i]
		}
	}
	if w0 == nil {
		t.Fatal("no worker-0 path")
	}
	closeTo := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
	if w0.Iters != 2 || !closeTo(w0.WallSeconds, 7.5) {
		t.Errorf("worker 0: iters %d wall %g, want 2 / 7.5", w0.Iters, w0.WallSeconds)
	}
	// iter 1: span 4 = compute 2 + comm 1 + stall 1 + merge 0.
	// iter 2: span 3.5 = compute 2 + comm 1 + stall 0 + merge 0.5 (the
	// residual server window between pull completion and IterEnd).
	if !closeTo(w0.ComputeSeconds, 4) || !closeTo(w0.CommSeconds, 2) ||
		!closeTo(w0.StallSeconds, 1) || !closeTo(w0.MergeSeconds, 0.5) {
		t.Errorf("segments = %g/%g/%g/%g, want 4/2/1/0.5",
			w0.ComputeSeconds, w0.CommSeconds, w0.StallSeconds, w0.MergeSeconds)
	}
	if !closeTo(w0.Coverage, 1) {
		t.Errorf("coverage = %g, want 1 (the decomposition is exact by construction)", w0.Coverage)
	}
	if !closeTo(rep.MinCoverage(), 1) {
		t.Errorf("min coverage = %g, want 1", rep.MinCoverage())
	}
	if len(rep.Blockers) != 1 {
		t.Fatalf("blockers = %+v, want exactly the (1, 3) releaser", rep.Blockers)
	}
	b := rep.Blockers[0]
	if b.Worker != 1 || b.Unit != 3 || !closeTo(b.StallSeconds, 1) || b.Stalls != 1 {
		t.Errorf("top blocker = %+v, want worker 1 unit 3 with 1s over 1 stall", b)
	}
	if rep.Unattributed != 0 || rep.OpenStalls != 0 {
		t.Errorf("unattributed %d open %d, want 0/0", rep.Unattributed, rep.OpenStalls)
	}
	if rep.StallHist.Count != 1 || !closeTo(rep.StallHist.Sum, 1) {
		t.Errorf("stall hist = %+v", rep.StallHist)
	}
}

func TestCritPathFromReaderMatchesStreaming(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	for _, e := range critTrace() {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := CritPathFromReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	compute, comm, stall, merge := rep.Totals()
	if compute != 4 || comm != 2 || stall != 1 || merge != 0.5 {
		t.Errorf("totals = %g/%g/%g/%g, want 4/2/1/0.5", compute, comm, stall, merge)
	}
}

func TestCritPathInfraAndErrors(t *testing.T) {
	cp := NewCritPath()
	// Aggregator uplink flow: negative worker, charged to infra.
	cp.Emit(Event{Kind: KindRowsSent, Time: 1, Worker: -1, Iter: 3, Units: 8, Seconds: 0.7, Dir: DirPush})
	// Structural violations: an IterEnd with no IterStart and an unpaired
	// StallEnd, which also lands in the unattributed bucket.
	cp.Emit(Event{Kind: KindIterEnd, Time: 2, Worker: 0, Iter: 9, Compute: 1})
	cp.Emit(Event{Kind: KindStallEnd, Time: 3, Worker: 0, Iter: 9, Cause: "gate", Seconds: 0.2,
		BlockWorker: -1, BlockUnit: -1})
	cp.Emit(Event{Kind: KindStallBegin, Time: 4, Worker: 2, Iter: 1, Cause: "gate", BlockWorker: -1, BlockUnit: -1})
	rep := cp.Report()
	if rep.InfraCommSeconds != 0.7 {
		t.Errorf("infra comm = %g, want 0.7", rep.InfraCommSeconds)
	}
	if len(rep.Errors) != 2 {
		t.Errorf("errors = %v, want 2", rep.Errors)
	}
	if rep.OpenStalls != 1 {
		t.Errorf("open stalls = %d, want 1", rep.OpenStalls)
	}
	if rep.Unattributed != 1 {
		t.Errorf("unattributed = %d, want 1", rep.Unattributed)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("q", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		r.Histogram("q", nil).Observe(v)
	}
	hs := r.Snapshot().Histograms["q"]
	closeTo := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
	// rank(0.5) = 2.5: bucket (1,2] holds observations 2..3, so the
	// interpolated estimate is 1 + (2.5-1)/2 * 1 = 1.75.
	if !closeTo(hs.P50, 1.75) {
		t.Errorf("p50 = %g, want 1.75", hs.P50)
	}
	// Ranks past the last bound saturate at it: the histogram cannot see
	// beyond its overflow bucket.
	if !closeTo(hs.P99, 4) || !closeTo(hs.Quantile(1), 4) {
		t.Errorf("p99 = %g, q(1) = %g, want 4/4", hs.P99, hs.Quantile(1))
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot quantile = %g, want 0", got)
	}
}

func TestAggregateNestedStallCauses(t *testing.T) {
	// Regression: stall pairing used to be keyed by worker alone, so a
	// StallEnd of one cause silently consumed the StallBegin of another.
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	// Legal nesting of two causes on one worker: must pair cleanly.
	tr.Emit(Event{Kind: KindStallBegin, Time: 1, Worker: 0, Iter: 1, Cause: "gate"})
	tr.Emit(Event{Kind: KindStallBegin, Time: 2, Worker: 0, Iter: 1, Cause: "detach"})
	tr.Emit(Event{Kind: KindStallEnd, Time: 3, Worker: 0, Iter: 1, Cause: "detach", Seconds: 1})
	tr.Emit(Event{Kind: KindStallEnd, Time: 4, Worker: 0, Iter: 1, Cause: "gate", Seconds: 3})
	// Cross-cause mismatch on another worker: must be flagged even though
	// a different-cause stall is open there.
	tr.Emit(Event{Kind: KindStallBegin, Time: 5, Worker: 1, Iter: 1, Cause: "gate"})
	tr.Emit(Event{Kind: KindStallEnd, Time: 6, Worker: 1, Iter: 1, Cause: "detach", Seconds: 1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Aggregate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PairErrors) != 1 {
		t.Fatalf("pair errors = %v, want exactly the worker-1 cause mismatch", s.PairErrors)
	}
	if s.OpenStalls != 1 {
		t.Errorf("open stalls = %d, want 1 (worker 1's gate stall)", s.OpenStalls)
	}
	if s.StallByCause["gate"] != 3 || s.StallByCause["detach"] != 1 {
		t.Errorf("stall by cause = %v, want gate 3 / detach 1", s.StallByCause)
	}
}
