package analysis

import (
	"strings"
	"testing"
)

func TestLockguardFixture(t *testing.T) {
	runFixture(t, "lockguard", NewLockguard())
}

func TestWallclockFixture(t *testing.T) {
	runFixture(t, "wallclock", NewWallclock())
}

func TestMaporderFixture(t *testing.T) {
	runFixture(t, "maporder", NewMaporder())
}

func TestWireframeFixture(t *testing.T) {
	runFixture(t, "wireframe", NewWireframe())
}

func TestErrdropFixture(t *testing.T) {
	runFixture(t, "errdrop", NewErrdrop())
}

func TestLockorderFixture(t *testing.T) {
	runFixture(t, "lockorder", NewLockorder())
}

func TestAtomicmixFixture(t *testing.T) {
	runFixture(t, "atomicmix", NewAtomicmix())
}

func TestGoroleakFixture(t *testing.T) {
	runFixture(t, "goroleak", NewGoroleak())
}

// TestSuppressions drives the suppress fixture through the full driver:
// the honored ignore silences its finding, the unused ignore and the
// reason-less ignore are findings themselves, and the unsuppressed
// maporder finding survives.
func TestSuppressions(t *testing.T) {
	pkgs, err := Load("testdata/src/suppress", "")
	if err != nil {
		t.Fatal(err)
	}
	sums := diagSummaries(Analyze(pkgs, []Pass{NewMaporder()}))
	if len(sums) != 3 {
		t.Fatalf("want 3 findings, got %d: %v", len(sums), sums)
	}
	for _, substr := range []string{
		"matched no diagnostic",          // the Unused ignore
		"needs a pass name and a reason", // the NoReason ignore
		"nondeterministic",               // NoReason's unsuppressed finding
	} {
		if !containsSummary(sums, substr) {
			t.Errorf("missing finding containing %q in %v", substr, sums)
		}
	}
	// Exactly one maporder finding: Quiet's was suppressed, NoReason's
	// survived (its ignore is malformed and therefore not honored).
	n := 0
	for _, s := range sums {
		if strings.Contains(s, "nondeterministic") {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly 1 surviving maporder finding, got %d: %v", n, sums)
	}
}

// TestSuppressionScopedToRanPasses checks that an ignore for a pass that
// did not run is not reported as unused (per-pass invocations would
// otherwise always fail).
func TestSuppressionScopedToRanPasses(t *testing.T) {
	pkgs, err := Load("testdata/src/suppress", "")
	if err != nil {
		t.Fatal(err)
	}
	sums := diagSummaries(Analyze(pkgs, []Pass{NewWallclock()}))
	if containsSummary(sums, "matched no diagnostic") {
		t.Errorf("unused-suppression reported for a pass that did not run: %v", sums)
	}
}
