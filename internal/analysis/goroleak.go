package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Goroleak audits goroutine lifecycles in the long-running runtime
// packages (livenet, lossnet, transport, core): a goroutine launched
// there must have a reachable termination path, or it outlives every
// connection and training run the process serves. Two shapes are
// flagged:
//
//   - An unconditional for-loop in a goroutine body with no exit: no
//     return, no break, and no receive from a context/done-style channel
//     (a name matching done/quit/stop/close/exit/shutdown, or a
//     ctx.Done() call). Loops with a condition, range loops (a closed
//     channel or finite collection ends them), and finite bodies that
//     fall off the end (the Close-driven-unblock pattern around
//     http.Serve) are all fine.
//   - A send on a channel that is definitely unbuffered (every binding
//     in the package is a make(chan T) with no or zero capacity) and not
//     wrapped in a select offering an alternative: if the receiver is
//     gone, the goroutine blocks forever.
//
// Named functions launched with `go pkg-local f()` are analyzed like
// literals; launches of other packages' functions are out of scope.
// Test files never reach the loader, so the scope is non-test code by
// construction.
type Goroleak struct{}

// NewGoroleak returns the pass.
func NewGoroleak() *Goroleak { return &Goroleak{} }

// Name implements Pass.
func (*Goroleak) Name() string { return "goroleak" }

// Doc implements Pass.
func (*Goroleak) Doc() string {
	return "goroutines in runtime packages need a termination path; unbuffered sends inside them need an out"
}

// goroleakScope lists the package suffixes the pass applies to.
var goroleakScope = []string{
	"internal/livenet",
	"internal/lossnet",
	"internal/transport",
	"internal/core",
}

var doneNameRe = regexp.MustCompile(`(?i)(done|quit|stop|close|exit|shutdown|term)`)

// Run implements Pass.
func (gl *Goroleak) Run(pkg *Package) []Diagnostic {
	inScope := false
	for _, s := range goroleakScope {
		if pathMatches(pkg.Path, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	declOf := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					declOf[obj] = fn
				}
			}
		}
	}
	chanKind := chanBindings(pkg)

	var diags []Diagnostic
	analyzed := map[*ast.BlockStmt]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				body = lit.Body
			} else if fn := calleeOf(pkg, g.Call); fn != nil {
				if decl := declOf[fn]; decl != nil {
					body = decl.Body
				}
			}
			if body == nil || analyzed[body] {
				return true
			}
			analyzed[body] = true
			diags = append(diags, gl.checkBody(pkg, body, chanKind)...)
			return true
		})
	}
	return diags
}

// checkBody flags unterminated loops and dead-end unbuffered sends in
// one goroutine body. Nested function literals are skipped — if they are
// themselves go-launched they get their own visit, and otherwise they
// run on some other goroutine's terms.
func (gl *Goroleak) checkBody(pkg *Package, body *ast.BlockStmt, chanKind map[types.Object]string) []Diagnostic {
	var diags []Diagnostic

	// Sends that sit in a select with an alternative clause can always
	// take the other arm; collect them before judging sends.
	selectGuarded := map[*ast.SendStmt]bool{}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || len(sel.Body.List) < 2 {
			return
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					selectGuarded[send] = true
				}
			}
		}
	})

	inspectSkippingFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond != nil {
				return
			}
			if loopHasExit(n) {
				return
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(n.Pos()),
				Pass: gl.Name(),
				Msg:  "goroutine loop has no termination path (no return, break, or done-channel receive); select on a done or context channel",
			})
		case *ast.SendStmt:
			if selectGuarded[n] {
				return
			}
			obj := objOfChan(pkg, n.Chan)
			if obj == nil || chanKind[obj] != "unbuffered" {
				return
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(n.Pos()),
				Pass: gl.Name(),
				Msg:  fmt.Sprintf("send on unbuffered channel %s from a goroutine can block forever if the receiver is gone; add a select with a done case or buffer the channel", chanName(n.Chan)),
			})
		}
	})
	return diags
}

// loopHasExit reports whether an unconditional for-loop contains a
// reachable exit: a return, a break or goto that leaves it, a panic, or
// a receive from a done-style channel. Nested function literals do not
// count (their returns exit the literal, not the loop).
func loopHasExit(loop *ast.ForStmt) bool {
	exit := false
	// depth counts break-absorbing constructs between a node and our
	// loop; an unlabeled break at depth 0 exits the loop.
	var scan func(n ast.Node, depth int)
	scan = func(n ast.Node, depth int) {
		if n == nil || exit {
			return
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			exit = true
			return
		case *ast.BranchStmt:
			switch s.Tok {
			case token.BREAK:
				if depth == 0 || s.Label != nil {
					exit = true
				}
			case token.GOTO:
				exit = true
			}
			return
		case *ast.ExprStmt:
			if isPanic(s.X) {
				exit = true
				return
			}
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && isDoneChan(s.X) {
				exit = true
				return
			}
		case *ast.ForStmt:
			scanChildren(s, depth+1, scan)
			return
		case *ast.RangeStmt:
			scanChildren(s, depth+1, scan)
			return
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			scanChildren(s, depth+1, scan)
			return
		}
		scanChildren(n, depth, scan)
	}
	scanChildren(loop.Body, 0, scan)
	return exit
}

// scanChildren applies scan to n's direct children at the given depth.
func scanChildren(n ast.Node, depth int, scan func(ast.Node, int)) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil || child == n {
			return child == n
		}
		scan(child, depth)
		return false
	})
}

// isDoneChan reports whether e looks like a termination channel: a
// ctx.Done()-style call, or a name matching the done/quit/stop family.
func isDoneChan(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done"
		}
		if id, ok := x.Fun.(*ast.Ident); ok {
			return id.Name == "Done"
		}
	case *ast.Ident:
		return doneNameRe.MatchString(x.Name)
	case *ast.SelectorExpr:
		return doneNameRe.MatchString(x.Sel.Name)
	}
	return false
}

// chanBindings classifies every channel-valued object the package binds
// with make: "unbuffered" only when every binding is make(chan T) with
// no or constant-zero capacity; any other binding degrades the object to
// "unknown" and exempts it.
func chanBindings(pkg *Package) map[types.Object]string {
	kinds := map[types.Object]string{}
	noteObj := func(obj types.Object, rhs ast.Expr) {
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
			return
		}
		kind := "unknown"
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 1 {
				if _, ok := pkg.Info.Types[call.Args[0]].Type.(*types.Chan); ok {
					switch {
					case len(call.Args) == 1:
						kind = "unbuffered"
					case len(call.Args) == 2:
						if tv := pkg.Info.Types[call.Args[1]]; tv.Value != nil && tv.Value.String() == "0" {
							kind = "unbuffered"
						} else {
							kind = "buffered"
						}
					}
				}
			}
		}
		if prev, seen := kinds[obj]; seen && prev != kind {
			kinds[obj] = "unknown"
			return
		}
		kinds[obj] = kind
	}
	note := func(lhs ast.Expr, rhs ast.Expr) {
		noteObj(objOfChan(pkg, lhs), rhs)
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						note(s.Lhs[i], s.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) == len(s.Values) {
					for i := range s.Names {
						note(s.Names[i], s.Values[i])
					}
				}
			case *ast.CompositeLit:
				// mux{jobs: make(chan int)} binds a field too.
				for _, el := range s.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok {
						noteObj(pkg.Info.Uses[key], kv.Value)
					}
				}
			}
			return true
		})
	}
	return kinds
}

// objOfChan resolves an ident or selector of channel type to its object.
func objOfChan(pkg *Package, e ast.Expr) types.Object {
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[x.Sel]
	}
	if obj == nil {
		return nil
	}
	if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
		return nil
	}
	return obj
}

// chanName renders the channel expression for the message.
func chanName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return chanName(x.X) + "." + x.Sel.Name
	}
	return "channel"
}

// inspectSkippingFuncLits walks n's subtree, pruning nested function
// literals, and calls visit on every node.
func inspectSkippingFuncLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil {
			return false
		}
		if _, ok := child.(*ast.FuncLit); ok && child != n {
			return false
		}
		visit(child)
		return true
	})
}
