package analysis

import (
	"path/filepath"
	"testing"
)

// TestModuleSelfClean runs the full pass suite over the real module and
// requires zero findings — the same gate scripts/verify.sh enforces via
// cmd/roglint. A failure here means a change broke a checked invariant
// (or needs a justified //roglint:ignore).
func TestModuleSelfClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	modPath, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d); loader lost the tree", len(pkgs))
	}
	diags := Analyze(pkgs, DefaultPasses())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("module is not roglint-clean: %d finding(s)", len(diags))
	}
}

// TestModulePathParsesGoMod pins the module path the loader resolves
// intra-tree imports with.
func TestModulePathParsesGoMod(t *testing.T) {
	mp, err := ModulePath(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if mp != "rog" {
		t.Fatalf("module path = %q, want rog", mp)
	}
}
