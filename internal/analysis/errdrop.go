package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Errdrop flags dropped error returns on the wire and durability hot
// paths. A swallowed net.Conn write error turns a dead connection into
// silent gradient loss (the push "succeeds" but nothing reaches the
// server), an unchecked deadline setter disables the
// speculative-transmission cutoff, an ignored Close can leak the
// descriptor a rejoining worker needs — and on the checkpoint path, a
// dropped Sync or Rename error is the classic torn-checkpoint bug: the
// snapshot "publishes" without ever being durable, and the crash it
// existed for destroys it. The same failure shape exists on the serving
// tier: a dropped reply-write error makes a dead client look served. The
// pass applies to the socket, checkpoint and serving packages and flags
// statement- or defer-position calls of the risky
// methods whose final result is an error; assigning the error away
// explicitly (_ = conn.Close()) is a visible decision and passes.
type Errdrop struct {
	// Scoped lists package-path suffixes the pass applies to.
	Scoped []string
	// Methods lists the method names whose dropped errors are flagged.
	Methods map[string]bool
}

// NewErrdrop returns the pass scoped to the wire and checkpoint packages.
func NewErrdrop() *Errdrop {
	return &Errdrop{
		Scoped: []string{"internal/livenet", "internal/transport", "internal/durable", "internal/serve"},
		Methods: map[string]bool{
			"Close": true, "Write": true, "Encode": true, "Flush": true,
			"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
			"Sync": true, "Rename": true,
		},
	}
}

// Name implements Pass.
func (*Errdrop) Name() string { return "errdrop" }

// Doc implements Pass.
func (*Errdrop) Doc() string {
	return "no dropped errors from conn writes, encoders and Close on wire hot paths"
}

// Run implements Pass.
func (ed *Errdrop) Run(pkg *Package) []Diagnostic {
	inScope := false
	for _, suffix := range ed.Scoped {
		if pathMatches(pkg.Path, suffix) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				if c, ok := s.X.(*ast.CallExpr); ok {
					call = c
				}
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil {
				return true
			}
			if d, ok := ed.check(pkg, call); ok {
				diags = append(diags, d)
			}
			return true
		})
	}
	return diags
}

// check reports a diagnostic when call drops an error from one of the
// risky methods.
func (ed *Errdrop) check(pkg *Package, call *ast.CallExpr) (Diagnostic, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !ed.Methods[sel.Sel.Name] {
		return Diagnostic{}, false
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return Diagnostic{}, false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return Diagnostic{}, false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos:  pkg.Fset.Position(call.Pos()),
		Pass: ed.Name(),
		Msg:  fmt.Sprintf("error from %s.%s is dropped; check it or discard explicitly", exprString(sel.X), sel.Sel.Name),
	}, true
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
