package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Lockguard enforces the socket runtime's lock discipline: a struct field
// annotated "// guarded by <mu>" may only be accessed through the
// receiver in methods that hold that mutex at the access. The analysis is
// an approximate must-hold walk over each method body: recv.mu.Lock()
// acquires, recv.mu.Unlock() releases, defer recv.mu.Unlock() holds to
// return, and branch/loop/switch exits merge conservatively (held only if
// held on every non-terminating path). sync.Cond.Wait needs no modeling —
// it reacquires its locker before returning, so a linear hold survives it
// (the engine's WaitList is the simnet analogue of that pattern and is
// single-threaded by construction, so it carries no annotations).
//
// Methods whose name ends in "Locked" assert that the caller holds the
// mutex (the repo's existing convention) and are skipped. Plain functions
// are out of scope: a constructor touching fields of a value that has not
// escaped yet needs no lock.
//
// A dotted guard — "// guarded by stateShard.mu" — declares that the
// protecting lock lives on another type entirely (the sharded engine's
// per-unit accumulators are owned by their shard's lock, not by a State
// sibling). Lockguard records such annotations but does not check them:
// the receiver-scoped walk cannot see a foreign instance's lock. They
// feed atomicmix, which tracks locks by type-qualified label.
type Lockguard struct{}

// NewLockguard returns the pass.
func NewLockguard() *Lockguard { return &Lockguard{} }

// Name implements Pass.
func (*Lockguard) Name() string { return "lockguard" }

// Doc implements Pass.
func (*Lockguard) Doc() string {
	return `"guarded by <mu>" fields must be accessed with the mutex held`
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+(?:\.\w+)?)`)

// guardRef is one parsed "guarded by" annotation: the guard as written,
// whether it is dotted (external — the lock lives on another type), and
// the name of the struct type owning the annotated field.
type guardRef struct {
	mu     string
	extern bool
	owner  string
}

// label returns the guard as a type-qualified lock label: external
// guards are already written that way; sibling guards qualify with the
// owning struct's name.
func (r guardRef) label() string {
	if r.extern {
		return r.mu
	}
	return r.owner + "." + r.mu
}

// collectGuards parses every "guarded by" annotation in the package.
// It returns field object → guard, the named-type objects owning at
// least one sibling-guarded field, and diagnostics for sibling guards
// that name something that is not a field of the struct.
func collectGuards(pkg *Package, pass string) (map[types.Object]guardRef, map[types.Object]bool, []Diagnostic) {
	guards := map[types.Object]guardRef{}
	structOf := map[types.Object]bool{}
	var diags []Diagnostic

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]bool{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardAnnotation(fld)
				if mu == "" {
					continue
				}
				ref := guardRef{mu: mu, extern: strings.Contains(mu, "."), owner: ts.Name.Name}
				if !ref.extern && !fieldNames[mu] {
					diags = append(diags, Diagnostic{
						Pos:  pkg.Fset.Position(fld.Pos()),
						Pass: pass,
						Msg:  fmt.Sprintf("guard comment names %q, which is not a field of %s", mu, ts.Name.Name),
					})
					continue
				}
				for _, name := range fld.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						guards[obj] = ref
						if !ref.extern {
							if tobj := pkg.Info.Defs[ts.Name]; tobj != nil {
								structOf[tobj] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return guards, structOf, diags
}

// Run implements Pass.
func (lg *Lockguard) Run(pkg *Package) []Diagnostic {
	guards, structOf, diags := collectGuards(pkg, lg.Name())
	// Only sibling guards are checkable by the receiver-scoped walk.
	sibling := guardSet{}
	for obj, ref := range guards {
		if !ref.extern {
			sibling[obj] = ref.mu
		}
	}
	if len(sibling) == 0 {
		return diags
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue // caller-holds convention
			}
			recvType, recvVar := receiverInfo(pkg, fn)
			if recvType == nil || recvVar == nil || !structOf[recvType] {
				continue
			}
			diags = append(diags, runGuardWalk(pkg, lg.Name(), sibling, recvVar, fn)...)
		}
	}
	return diags
}

// guardSet maps a guarded field object to the name of the sibling mutex
// field that protects it.
type guardSet map[types.Object]string

// runGuardWalk checks one method body with the shared must-hold walker,
// scoped to the receiver: recv.<mu>.Lock() acquires, and recv.<field>
// accesses are checked against the held set.
func runGuardWalk(pkg *Package, pass string, guards guardSet, recv types.Object, fn *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	muNames := map[string]bool{}
	for _, mu := range guards {
		muNames[mu] = true
	}
	w := &holdWalker{
		pkg: pkg,
		classify: func(call *ast.CallExpr) (string, string) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isMutexOpName(sel.Sel.Name) {
				return "", ""
			}
			inner, ok := sel.X.(*ast.SelectorExpr)
			if !ok {
				return "", ""
			}
			id, ok := inner.X.(*ast.Ident)
			if !ok || pkg.Info.Uses[id] != recv || !muNames[inner.Sel.Name] {
				return "", ""
			}
			return inner.Sel.Name, sel.Sel.Name
		},
		onAccess: func(sel *ast.SelectorExpr, held map[string]bool) {
			id, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Info.Uses[id] != recv {
				return
			}
			obj := pkg.Info.Uses[sel.Sel]
			if obj == nil {
				obj = pkg.Info.Defs[sel.Sel]
			}
			mu, guarded := guards[obj]
			if !guarded || held[mu] {
				return
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(sel.Pos()),
				Pass: pass,
				Msg:  fmt.Sprintf("%s.%s is guarded by %s, which is not held here", id.Name, sel.Sel.Name, mu),
			})
		},
	}
	w.block(fn.Body.List, map[string]bool{})
	return diags
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, or "" if the field is unannotated.
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// receiverInfo resolves a method's receiver to its named-type object and
// receiver variable object.
func receiverInfo(pkg *Package, fn *ast.FuncDecl) (types.Object, types.Object) {
	if len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil, nil
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	return pkg.Info.Uses[id], pkg.Info.Defs[fn.Recv.List[0].Names[0]]
}

// isPanic reports whether e is a call to the builtin panic.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func copyHeld(h map[string]bool) map[string]bool {
	out := make(map[string]bool, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func replaceHeld(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func intersectHeld(dst, src map[string]bool) {
	for k, v := range dst {
		dst[k] = v && src[k]
	}
}
