package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Lockguard enforces the socket runtime's lock discipline: a struct field
// annotated "// guarded by <mu>" may only be accessed through the
// receiver in methods that hold that mutex at the access. The analysis is
// an approximate must-hold walk over each method body: recv.mu.Lock()
// acquires, recv.mu.Unlock() releases, defer recv.mu.Unlock() holds to
// return, and branch/loop/switch exits merge conservatively (held only if
// held on every non-terminating path). sync.Cond.Wait needs no modeling —
// it reacquires its locker before returning, so a linear hold survives it
// (the engine's WaitList is the simnet analogue of that pattern and is
// single-threaded by construction, so it carries no annotations).
//
// Methods whose name ends in "Locked" assert that the caller holds the
// mutex (the repo's existing convention) and are skipped. Plain functions
// are out of scope: a constructor touching fields of a value that has not
// escaped yet needs no lock.
type Lockguard struct{}

// NewLockguard returns the pass.
func NewLockguard() *Lockguard { return &Lockguard{} }

// Name implements Pass.
func (*Lockguard) Name() string { return "lockguard" }

// Doc implements Pass.
func (*Lockguard) Doc() string {
	return `"guarded by <mu>" fields must be accessed with the mutex held`
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardSet maps a guarded field object to the name of the mutex field
// that protects it.
type guardSet map[types.Object]string

// Run implements Pass.
func (lg *Lockguard) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	guards := guardSet{}
	structOf := map[types.Object]bool{} // named types owning guarded fields

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]bool{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardAnnotation(fld)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					diags = append(diags, Diagnostic{
						Pos:  pkg.Fset.Position(fld.Pos()),
						Pass: lg.Name(),
						Msg:  fmt.Sprintf("guard comment names %q, which is not a field of %s", mu, ts.Name.Name),
					})
					continue
				}
				for _, name := range fld.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						guards[obj] = mu
						if tobj := pkg.Info.Defs[ts.Name]; tobj != nil {
							structOf[tobj] = true
						}
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return diags
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue // caller-holds convention
			}
			recvType, recvVar := receiverInfo(pkg, fn)
			if recvType == nil || recvVar == nil || !structOf[recvType] {
				continue
			}
			w := &lockWalker{pkg: pkg, pass: lg.Name(), guards: guards, recv: recvVar}
			w.block(fn.Body.List, map[string]bool{})
			diags = append(diags, w.diags...)
		}
	}
	return diags
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, or "" if the field is unannotated.
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// receiverInfo resolves a method's receiver to its named-type object and
// receiver variable object.
func receiverInfo(pkg *Package, fn *ast.FuncDecl) (types.Object, types.Object) {
	if len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil, nil
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	return pkg.Info.Uses[id], pkg.Info.Defs[fn.Recv.List[0].Names[0]]
}

// lockWalker performs the must-hold walk. held maps mutex field names to
// "definitely held here"; statement lists thread it forward, and control
// flow merges by intersection so a hold must survive every path to count.
type lockWalker struct {
	pkg    *Package
	pass   string
	guards guardSet
	recv   types.Object
	diags  []Diagnostic
}

// block analyzes a statement list, mutating held in place. It reports
// whether control definitely leaves the list (return, panic, branch).
func (w *lockWalker) block(stmts []ast.Stmt, held map[string]bool) bool {
	for _, st := range stmts {
		if w.stmt(st, held) {
			return true
		}
	}
	return false
}

// stmt analyzes one statement; the return value mirrors block.
func (w *lockWalker) stmt(st ast.Stmt, held map[string]bool) bool {
	switch s := st.(type) {
	case *ast.BlockStmt:
		return w.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := w.block(s.Body.List, thenHeld)
		elseHeld := copyHeld(held)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceHeld(held, elseHeld)
		case elseTerm:
			replaceHeld(held, thenHeld)
		default:
			intersectHeld(held, thenHeld)
			intersectHeld(held, elseHeld)
		}
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		bodyHeld := copyHeld(held)
		w.block(s.Body.List, bodyHeld)
		if s.Post != nil {
			w.stmt(s.Post, bodyHeld)
		}
		if s.Cond == nil {
			// for{}: only a break exits; treat the tail as unreachable
			// rather than merging states we cannot track through breaks.
			return true
		}
		intersectHeld(held, bodyHeld)
		return false
	case *ast.RangeStmt:
		w.expr(s.X, held)
		bodyHeld := copyHeld(held)
		w.block(s.Body.List, bodyHeld)
		intersectHeld(held, bodyHeld)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.switchStmt(st, held)
	case *ast.DeferStmt:
		if mu, op := w.muOp(s.Call, held); mu != "" && op == "Unlock" {
			return false // deferred release: held until return
		}
		w.expr(s.Call, held)
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, held)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.ExprStmt:
		w.expr(s.X, held)
		return isPanic(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, held)
		}
		for _, l := range s.Lhs {
			w.expr(l, held)
		}
		return false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt, *ast.LabeledStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, held)
				return false
			}
			return true
		})
		return false
	default:
		return false
	}
}

// switchStmt merges switch/select clauses: held after the statement only
// if held on entry and at the end of every non-terminating clause.
func (w *lockWalker) switchStmt(st ast.Stmt, held map[string]bool) bool {
	var body *ast.BlockStmt
	switch s := st.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	for _, clause := range body.List {
		clauseHeld := copyHeld(held)
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, clauseHeld)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, clauseHeld)
			}
			stmts = c.Body
		}
		if !w.block(stmts, clauseHeld) {
			intersectHeld(held, clauseHeld)
		}
	}
	return false
}

// expr walks an expression: mutex operations update held, guarded
// receiver-field accesses are checked against it, and function literals
// are analyzed with a copy of the current state (they either run inline
// or inherit the caller's discipline).
func (w *lockWalker) expr(e ast.Expr, held map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.block(n.Body.List, copyHeld(held))
			return false
		case *ast.CallExpr:
			if mu, op := w.muOp(n, held); mu != "" {
				switch op {
				case "Lock", "RLock":
					held[mu] = true
				case "Unlock", "RUnlock":
					held[mu] = false
				}
				return false // the recv.mu selector inside is not an access
			}
		case *ast.SelectorExpr:
			w.checkAccess(n, held)
		}
		return true
	})
}

// muOp recognizes recv.<mu>.Lock/Unlock/RLock/RUnlock calls for any mutex
// named by a guard annotation on the receiver's struct.
func (w *lockWalker) muOp(call *ast.CallExpr, held map[string]bool) (mu, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := inner.X.(*ast.Ident)
	if !ok || w.pkg.Info.Uses[id] != w.recv {
		return "", ""
	}
	for _, muName := range w.guards {
		if inner.Sel.Name == muName {
			return muName, sel.Sel.Name
		}
	}
	return "", ""
}

// checkAccess flags recv.<field> when field is guarded and its mutex is
// not definitely held.
func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, held map[string]bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok || w.pkg.Info.Uses[id] != w.recv {
		return
	}
	obj := w.pkg.Info.Uses[sel.Sel]
	if obj == nil {
		obj = w.pkg.Info.Defs[sel.Sel]
	}
	mu, guarded := w.guards[obj]
	if !guarded || held[mu] {
		return
	}
	w.diags = append(w.diags, Diagnostic{
		Pos:  w.pkg.Fset.Position(sel.Pos()),
		Pass: w.pass,
		Msg:  fmt.Sprintf("%s.%s is guarded by %s, which is not held here", id.Name, sel.Sel.Name, mu),
	})
}

// isPanic reports whether e is a call to the builtin panic.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func copyHeld(h map[string]bool) map[string]bool {
	out := make(map[string]bool, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func replaceHeld(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func intersectHeld(dst, src map[string]bool) {
	for k, v := range dst {
		dst[k] = v && src[k]
	}
}
