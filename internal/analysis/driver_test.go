package analysis

import (
	"encoding/json"
	"go/token"
	"sort"
	"testing"
)

// TestDefaultPassesSuite pins the suite's size and order — the -list
// surface CI and the docs quote.
func TestDefaultPassesSuite(t *testing.T) {
	want := []string{
		"lockguard", "wallclock", "maporder", "wireframe",
		"errdrop", "lockorder", "atomicmix", "goroleak",
	}
	passes := DefaultPasses()
	if len(passes) != len(want) {
		t.Fatalf("suite has %d passes, want %d", len(passes), len(want))
	}
	for i, p := range passes {
		if p.Name() != want[i] {
			t.Errorf("pass %d = %q, want %q", i, p.Name(), want[i])
		}
		if p.Doc() == "" {
			t.Errorf("pass %q has no doc", p.Name())
		}
	}
}

func TestSelectPasses(t *testing.T) {
	all, err := SelectPasses("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(DefaultPasses()) {
		t.Fatalf("empty spec selects %d passes, want the full suite", len(all))
	}

	// Selection keeps suite order regardless of spec order.
	got, err := SelectPasses("goroleak, lockguard")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name() != "lockguard" || got[1].Name() != "goroleak" {
		names := []string{}
		for _, p := range got {
			names = append(names, p.Name())
		}
		t.Fatalf("got %v, want [lockguard goroleak]", names)
	}

	if _, err := SelectPasses("nosuchpass"); err == nil {
		t.Fatal("unknown pass accepted")
	}
}

// fakePass emits a fixed set of diagnostics, for driver-behavior tests
// that need unsorted and duplicated input.
type fakePass struct {
	name  string
	diags []Diagnostic
}

func (f *fakePass) Name() string                  { return f.name }
func (f *fakePass) Doc() string                   { return "fake" }
func (f *fakePass) Run(pkg *Package) []Diagnostic { return f.diags }

// TestAnalyzeSortsAndDedups feeds deliberately shuffled, duplicated
// findings through the driver and expects position-sorted unique output.
func TestAnalyzeSortsAndDedups(t *testing.T) {
	pkgs, err := Load("testdata/src/suppress", "")
	if err != nil {
		t.Fatal(err)
	}
	at := func(file string, line int) token.Position {
		return token.Position{Filename: file, Line: line, Column: 1}
	}
	noisy := &fakePass{name: "fake", diags: []Diagnostic{
		{Pos: at("z.go", 9), Pass: "fake", Msg: "last"},
		{Pos: at("a.go", 2), Pass: "fake", Msg: "dup"},
		{Pos: at("a.go", 2), Pass: "fake", Msg: "dup"},
		{Pos: at("a.go", 1), Pass: "fake", Msg: "first"},
	}}
	diags := Analyze(pkgs, []Pass{noisy})

	var fake []Diagnostic
	for _, d := range diags {
		if d.Pass == "fake" {
			fake = append(fake, d)
		}
	}
	if len(fake) != 3 {
		t.Fatalf("want 3 unique fake findings, got %d: %v", len(fake), fake)
	}
	if fake[0].Msg != "first" || fake[1].Msg != "dup" || fake[2].Msg != "last" {
		t.Errorf("not position-sorted: %v", fake)
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	}) {
		t.Errorf("full output not sorted: %v", diags)
	}
}

// TestAnalyzeTimed checks the timing sidecar lines up with the pass
// list, driving the full eight-pass suite over a fixture tree.
func TestAnalyzeTimed(t *testing.T) {
	pkgs, err := Load("testdata/src/suppress", "")
	if err != nil {
		t.Fatal(err)
	}
	passes := DefaultPasses()
	_, timings := AnalyzeTimed(pkgs, passes)
	if len(timings) != len(passes) {
		t.Fatalf("%d timings for %d passes", len(timings), len(passes))
	}
	for i, tm := range timings {
		if tm.Pass != passes[i].Name() {
			t.Errorf("timing %d is %q, want %q", i, tm.Pass, passes[i].Name())
		}
		if tm.Seconds < 0 {
			t.Errorf("pass %q has negative elapsed time", tm.Pass)
		}
	}
}

// TestUnusedIgnoreAcrossNewPasses checks an ignore naming a new pass is
// flagged as unused when that pass runs and silences nothing.
func TestUnusedIgnoreAcrossNewPasses(t *testing.T) {
	pkgs, err := Load("testdata/src/suppress", "")
	if err != nil {
		t.Fatal(err)
	}
	// The suppress fixture's ignores name maporder only; running the
	// whole suite must not invent unused-ignore findings for passes the
	// fixture never mentions, and the maporder results must be identical
	// to a maporder-only run.
	whole := diagSummaries(Analyze(pkgs, DefaultPasses()))
	only := diagSummaries(Analyze(pkgs, []Pass{NewMaporder()}))
	for _, s := range only {
		if !containsSummary(whole, s) {
			t.Errorf("full-suite run lost finding %q", s)
		}
	}
}

// TestEncodeJSON pins the machine-readable surface: one object per
// finding with pass/file/line/col/msg, in driver order.
func TestEncodeJSON(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "x.go", Line: 3, Column: 7}, Pass: "lockorder", Msg: "boom"},
	}
	raw, err := EncodeJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("EncodeJSON produced invalid JSON: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("want 1 element, got %d", len(out))
	}
	for key, want := range map[string]any{
		"pass": "lockorder", "file": "x.go", "line": float64(3), "col": float64(7), "msg": "boom",
	} {
		if out[0][key] != want {
			t.Errorf("field %q = %v, want %v", key, out[0][key], want)
		}
	}

	empty, err := EncodeJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	var zero []map[string]any
	if err := json.Unmarshal(empty, &zero); err != nil || len(zero) != 0 {
		t.Errorf("empty encoding should be an empty array, got %s (err %v)", empty, err)
	}
}
