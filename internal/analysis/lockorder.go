package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Lockorder pins the sharded runtime's deadlock-freedom argument: the
// documented acquisition order (caller's lock → State.mu → shard.mu →
// store.mu) becomes a machine-checked declaration,
//
//	//roglint:lockorder Server.mu < State.mu < stateShard.mu < Store.mu
//
// and every Lock/RLock site is checked against it. Locks are identified
// by type-qualified label ("Type.field" for a sync.Mutex/RWMutex field of
// a named struct), which conflates instances of one type — adequate for
// a tree whose order is declared per type, and the reason striped
// same-type acquisition (ascending shard loops) does not self-report:
// the walk visits a loop body once, so a loop acquires its label once.
//
// The analysis is cross-package: each Run records, per function, the
// locks acquired directly, the static call edges, and every call made
// with locks held; Finish closes the call graph (interface calls are
// unresolvable and conservatively dropped — the tree's Journal/FS/Policy
// indirections hide no state locks on their far side), derives held →
// acquired edges, and reports three shapes of finding: an edge that
// inverts the declared order (the message quotes the violated "A < B"
// pair), an edge that closes a cycle in the measured graph, and a
// re-acquisition of an already-held label.
type Lockorder struct {
	decls     []loDecl
	funcs     map[*types.Func]*loFunc
	edges     []loEdge
	heldCalls []loHeldCall
}

// NewLockorder returns the pass.
func NewLockorder() *Lockorder {
	return &Lockorder{funcs: map[*types.Func]*loFunc{}}
}

// Name implements Pass.
func (*Lockorder) Name() string { return "lockorder" }

// Doc implements Pass.
func (*Lockorder) Doc() string {
	return "lock acquisitions must respect the declared //roglint:lockorder"
}

// lockorderDirective introduces an order declaration:
//
//	//roglint:lockorder A.mu < B.mu < C.mu
//
// Each label is Type.field; chains compose transitively across
// declarations.
const lockorderDirective = "roglint:lockorder"

var lockLabelRe = regexp.MustCompile(`^\w+\.\w+$`)

// loDecl is one parsed declaration chain.
type loDecl struct {
	pos    token.Position
	labels []string
}

// loFunc is one function's lock summary.
type loFunc struct {
	direct map[string]bool      // labels acquired in the body
	calls  map[*types.Func]bool // statically resolved callees
}

// loEdge is one measured acquisition edge: to was acquired while from
// was held. direct edges sit at a Lock call; indirect ones at the call
// whose transitive summary acquires to.
type loEdge struct {
	from, to string
	pos      token.Position
	direct   bool
}

// loHeldCall is a call made with locks held, resolved later against the
// callee's transitive acquisitions.
type loHeldCall struct {
	held   []string
	callee *types.Func
	pos    token.Position
}

// Run implements Pass: it accumulates declarations, function summaries
// and direct edges; findings come from Finish once every package has
// been seen. Malformed declarations are reported immediately.
func (lo *Lockorder) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, c := range fileComments(f) {
			decl, bad, ok := parseLockorderDecl(pkg, c)
			if !ok {
				continue
			}
			if bad != "" {
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(c.Pos()),
					Pass: lo.Name(),
					Msg:  bad,
				})
				continue
			}
			lo.decls = append(lo.decls, decl)
		}
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fnObj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
			if fnObj == nil {
				continue
			}
			lf := lo.funcs[fnObj]
			if lf == nil {
				lf = &loFunc{direct: map[string]bool{}, calls: map[*types.Func]bool{}}
				lo.funcs[fnObj] = lf
			}
			w := &holdWalker{
				pkg: pkg,
				classify: func(call *ast.CallExpr) (string, string) {
					return mutexFieldOp(pkg, call)
				},
				onAcquire: func(call *ast.CallExpr, key string, held map[string]bool) {
					lf.direct[key] = true
					pos := pkg.Fset.Position(call.Pos())
					for _, h := range heldLabels(held) {
						// h == key yields the self-edge reported as a
						// re-acquisition.
						lo.edges = append(lo.edges, loEdge{from: h, to: key, pos: pos, direct: true})
					}
				},
				onCall: func(call *ast.CallExpr, held map[string]bool) {
					callee := calleeOf(pkg, call)
					if callee == nil {
						return
					}
					lf.calls[callee] = true
					if hs := heldLabels(held); len(hs) > 0 {
						lo.heldCalls = append(lo.heldCalls, loHeldCall{
							held:   hs,
							callee: callee,
							pos:    pkg.Fset.Position(call.Pos()),
						})
					}
				},
			}
			w.block(fn.Body.List, map[string]bool{})
		}
	}
	return diags
}

// parseLockorderDecl parses one comment. ok is false when the comment is
// not a lockorder directive at all; bad carries the malformation message
// when it is one but does not parse.
func parseLockorderDecl(pkg *Package, c *ast.Comment) (decl loDecl, bad string, ok bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	rest, found := strings.CutPrefix(text, lockorderDirective)
	if !found {
		return loDecl{}, "", false
	}
	// Allow a trailing line comment after the chain (fixtures carry
	// want markers there).
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	var labels []string
	for _, tok := range strings.Split(rest, "<") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if !lockLabelRe.MatchString(tok) {
			return loDecl{}, fmt.Sprintf("//roglint:lockorder label %q is not Type.field", tok), true
		}
		labels = append(labels, tok)
	}
	if len(labels) < 2 {
		return loDecl{}, "//roglint:lockorder needs at least two labels: //roglint:lockorder A.mu < B.mu", true
	}
	return loDecl{pos: pkg.Fset.Position(c.Pos()), labels: labels}, "", true
}

// heldLabels returns the definitely-held labels in sorted order.
func heldLabels(held map[string]bool) []string {
	var out []string
	for k, v := range held {
		if v {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Finish implements Finisher: with every package summarized, close the
// call graph, derive the full edge set, and check it against the
// declared order.
func (lo *Lockorder) Finish() []Diagnostic {
	var diags []Diagnostic

	before, conflicts, conflictDiags := lo.declaredOrder()
	diags = append(diags, conflictDiags...)

	acq := lo.transitiveAcquires()

	edges := append([]loEdge(nil), lo.edges...)
	for _, hc := range lo.heldCalls {
		acquired := acq[hc.callee]
		if len(acquired) == 0 {
			continue
		}
		for _, to := range sortedKeys(acquired) {
			for _, from := range hc.held {
				edges = append(edges, loEdge{from: from, to: to, pos: hc.pos, direct: false})
			}
		}
	}

	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}

	seen := map[string]bool{}
	for _, e := range edges {
		key := fmt.Sprintf("%s|%s|%s", e.from, e.to, e.pos)
		if seen[key] {
			continue
		}
		seen[key] = true
		switch {
		case e.from == e.to:
			diags = append(diags, Diagnostic{
				Pos:  e.pos,
				Pass: lo.Name(),
				Msg:  fmt.Sprintf("re-acquires %s while it is already held (self-deadlock on one instance; distinct instances need an ignore with the ordering argument)", e.to),
			})
		case conflicts[pairKey(e.from, e.to)]:
			// Both directions are declared; the declarations themselves
			// were already reported, so the edges stay quiet.
		case before[e.to] != nil && before[e.to][e.from]:
			verb := "acquiring"
			if !e.direct {
				verb = "call acquires"
			}
			diags = append(diags, Diagnostic{
				Pos:  e.pos,
				Pass: lo.Name(),
				Msg:  fmt.Sprintf("%s %s while holding %s inverts the declared lock order (%s < %s)", verb, e.to, e.from, e.to, e.from),
			})
		case before[e.from] != nil && before[e.from][e.to]:
			// Conforms to the declared order. If a cycle runs through it,
			// the inverting edge is the offender and reports at its own
			// site; flagging the conforming edge too would just be noise.
		case reachable(adj, e.to, e.from):
			diags = append(diags, Diagnostic{
				Pos:  e.pos,
				Pass: lo.Name(),
				Msg:  fmt.Sprintf("acquiring %s while holding %s closes a lock-order cycle (%s is also acquired while %s is held); declare a //roglint:lockorder for them", e.to, e.from, e.from, e.to),
			})
		}
	}
	return diags
}

// declaredOrder folds every declaration chain into a transitive "a must
// be acquired before b" relation. Conflicts (a pair ordered both ways,
// directly or transitively) are reported at the declaration that closes
// them and recorded so edge checking can skip the poisoned pairs.
func (lo *Lockorder) declaredOrder() (before map[string]map[string]bool, conflicts map[string]bool, diags []Diagnostic) {
	before = map[string]map[string]bool{}
	conflicts = map[string]bool{}
	addPair := func(a, b string) {
		if before[a] == nil {
			before[a] = map[string]bool{}
		}
		before[a][b] = true
	}
	for _, d := range lo.decls {
		for i := 0; i < len(d.labels); i++ {
			for j := i + 1; j < len(d.labels); j++ {
				addPair(d.labels[i], d.labels[j])
			}
		}
		closeOrder(before)
		for _, a := range sortedKeys(beforeDomain(before)) {
			for _, b := range sortedKeys(before[a]) {
				if a == b {
					// A conflicting pair closes to a <= a; the pair
					// itself is the reportable fact.
					continue
				}
				if before[b] != nil && before[b][a] && !conflicts[pairKey(a, b)] {
					conflicts[pairKey(a, b)] = true
					lo, hi := a, b
					if hi < lo {
						lo, hi = hi, lo
					}
					diags = append(diags, Diagnostic{
						Pos:  d.pos,
						Pass: "lockorder",
						Msg:  fmt.Sprintf("lock-order declarations order %s and %s both ways", lo, hi),
					})
				}
			}
		}
	}
	return before, conflicts, diags
}

// closeOrder computes the transitive closure of before in place.
func closeOrder(before map[string]map[string]bool) {
	for changed := true; changed; {
		changed = false
		for _, succ := range before {
			for b := range succ {
				for c := range before[b] {
					if !succ[c] {
						succ[c] = true
						changed = true
					}
				}
			}
		}
	}
}

// beforeDomain collects the relation's left-hand labels as a set.
func beforeDomain(before map[string]map[string]bool) map[string]bool {
	out := map[string]bool{}
	for a := range before {
		out[a] = true
	}
	return out
}

// transitiveAcquires computes, per function, every label reachable
// through its static call graph (a fixpoint over the recorded
// summaries).
func (lo *Lockorder) transitiveAcquires() map[*types.Func]map[string]bool {
	acq := map[*types.Func]map[string]bool{}
	for fn, lf := range lo.funcs {
		acq[fn] = map[string]bool{}
		for l := range lf.direct {
			acq[fn][l] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, lf := range lo.funcs {
			for callee := range lf.calls {
				for l := range acq[callee] {
					if !acq[fn][l] {
						acq[fn][l] = true
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// reachable reports whether to is reachable from from in the measured
// edge graph.
func reachable(adj map[string]map[string]bool, from, to string) bool {
	seen := map[string]bool{}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for next := range adj[n] {
			if !seen[next] {
				stack = append(stack, next)
			}
		}
	}
	return false
}

// pairKey is an order-insensitive key for a label pair.
func pairKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "|" + b
}

// sortedKeys returns a set's keys in sorted order.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
