// Package tool is outside the restricted set: wall-clock use is fine
// here.
package tool

import "time"

// Stamp may read the real clock; this package is not in the virtual-time
// core.
func Stamp() time.Time { return time.Now() }
