// Flight-recorder fixture: the crash dump and the runtime vitals are the
// two new obs surfaces that tempt a wall-clock read. The dump header must
// reuse the event's virtual timestamp, and the vitals come from package
// runtime — which is fine; only package time is banned here.
package obs

import (
	"runtime"
	"time"
)

// entry mimics a retained flight event: stamped once, at emission, by the
// injected clock.
type entry struct {
	at float64
}

// dumpHeader re-stamping with host time is the regression this fixture
// pins: the retained tail carries virtual timestamps, and a wall-clock
// header would postdate every entry it describes.
func dumpHeader() entry {
	return entry{at: float64(time.Now().Unix())} // want "time.Now"
}

// retained is the correct shape — the header reuses the newest entry's
// virtual timestamp.
func retained(tail []entry) entry {
	if len(tail) == 0 {
		return entry{}
	}
	return tail[len(tail)-1]
}

// vitals reads process gauges from package runtime; nothing here touches
// package time, so the pass must stay quiet.
func vitals() (int, uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runtime.NumGoroutine(), ms.HeapAlloc
}
