// Package obs is a fixture for the wallclock pass: the observability
// probes run inside the simulated runtime, so a wall-clock read here —
// even one buried in a callback the simnet invokes — breaks determinism.
// Timestamps must come through the injected clock closure.
package obs

import "time"

// probe mimics the real package's shape: an injected clock closure.
type probe struct {
	now func() float64
}

// emit stamps an event. Falling back to the real clock when the closure
// is nil is exactly the bug this pass exists to catch: a probe created by
// internal/core would silently time-stamp with host time.
func (p *probe) emit() float64 {
	if p.now == nil {
		return float64(time.Now().UnixNano()) // want "time.Now"
	}
	return p.now()
}

// stamp is a callback handed to the simulated runtime; the clock read
// inside it executes under virtual time and must be flagged.
func stamp() func() float64 {
	return func() float64 {
		return time.Since(time.Time{}).Seconds() // want "time.Since"
	}
}

// ok uses only the injected closure — clean.
func ok(p *probe) float64 { return p.now() }
