// Package core is a fixture for the wallclock pass: wall-clock reads in a
// restricted virtual-time package.
package core

import "time"

// Step mixes allowed time arithmetic with forbidden clock reads.
func Step(virtualNow float64) float64 {
	time.Sleep(time.Millisecond) // want "time.Sleep"
	start := time.Now()          // want "time.Now"
	_ = time.Since(start)        // want "time.Since"
	return virtualNow + time.Millisecond.Seconds()
}

// Tick uses only duration arithmetic and injected time — clean.
func Tick(now, dt float64) float64 { return now + dt }
