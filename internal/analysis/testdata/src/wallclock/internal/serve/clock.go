// Package serve is a fixture for the wallclock pass: the serving tier's
// batching window must run on the injected Clock, never on package time.
package serve

import "time"

// flushLater is the tempting wrong implementation of the batch window.
func flushLater(fn func()) {
	time.AfterFunc(time.Millisecond, fn) // want "time.AfterFunc"
}

// latency is the tempting wrong request-latency measurement.
func latency(enq time.Time) float64 {
	return time.Since(enq).Seconds() // want "time.Since"
}

// virtualLatency measures on injected time — clean.
func virtualLatency(now, enq float64) float64 { return now - enq }
