// Package livenet is a fixture for the wireframe pass: frame structs with
// platform-width integers and positional construction.
package livenet

// helloFrame is detected by its name suffix.
type helloFrame struct {
	Version uint16
	Length  int // want "platform-width"
}

// ack is detected by the marker.
//
//roglint:wire
type ack struct {
	Code uint // want "platform-width"
	Seq  uint32
}

// okFrame is a clean frame struct.
type okFrame struct {
	Kind byte
	Iter int64
	Body []uint8
}

// plain is not a wire struct: bare ints are fine here.
type plain struct {
	Count int
	Sizes []int
}

func buildKeyed() okFrame {
	return okFrame{Kind: 1, Iter: 2}
}

func buildPositional() okFrame {
	return okFrame{1, 2, nil} // want "keyed"
}

func buildPlain() plain {
	return plain{3, nil} // not a wire struct: positional is allowed
}

func use(h helloFrame, a ack) (int, uint32) { return h.Length, a.Seq }
