// Package durable is a fixture for the wireframe pass over the
// checkpoint formats: WAL records and snapshot headers are on-disk wire
// frames — a platform-width field would make a checkpoint written on the
// server unreadable on a robot's 32-bit SoC.
package durable

// walRecord mirrors the real WAL record header: marker-detected, every
// field fixed-width, so it produces no findings.
//
//roglint:wire
type walRecord struct {
	Seq    uint64
	Worker int32
	Unit   int32
	Iter   int64
	Len    uint32
	CRC    uint32
}

// badRecord drifts the length to a platform-width integer — the on-disk
// layout would differ between the writer and a 32-bit reader.
//
//roglint:wire
type badRecord struct {
	Seq uint64
	Len int // want "platform-width"
}

// snapshotMsg is detected by its name suffix.
type snapshotMsg struct {
	Epoch uint64
	Rows  []uint // want "platform-width"
}

func build() []walRecord {
	return []walRecord{
		{Seq: 1, Worker: 0, Unit: 2, Iter: 7, Len: 64, CRC: 0xdeadbeef},
		{2, 1, 0, 8, 64, 0}, // want "keyed"
	}
}

func use(r walRecord, b badRecord, s snapshotMsg) (uint64, int, int) {
	return r.Seq, b.Len, len(s.Rows)
}
