// Package lossnet is a fixture for the wireframe pass over the datagram
// transport: the header struct mirrors the real dgramHeader (marker-tagged,
// all fixed-width) and the bad variants show what the pass must catch.
package lossnet

// dgramHeader mirrors the real datagram header: marker-detected, every
// field fixed-width, so it produces no findings.
//
//roglint:wire
type dgramHeader struct {
	Kind      uint8
	Flags     uint8
	Seq       uint32
	Ack       uint32
	NackCount uint16
	LostCount uint16
}

// badHeader drifts a sequence field to a platform-width integer — the
// 32-bit-SoC-vs-server encoding mismatch the pass exists to stop.
//
//roglint:wire
type badHeader struct {
	Kind uint8
	Seq  uint // want "platform-width"
}

// nackMsg is detected by its name suffix.
type nackMsg struct {
	Seqs []uint32
	Lost []int // want "platform-width"
}

func encode() []dgramHeader {
	return []dgramHeader{
		{Kind: 1, Seq: 7, Ack: 3},
		{2, 0, 8, 3, 0, 0}, // want "keyed"
	}
}

func use(h dgramHeader, b badHeader, n nackMsg) (uint32, uint, int) {
	return h.Seq, b.Seq, len(n.Lost)
}
