// Package serve is a fixture for the wireframe pass: the inference
// request/reply frames must use fixed-width integers and keyed literals.
package serve

// requestFrame is detected by its name suffix.
type requestFrame struct {
	ID         uint64
	MinVersion int64
	N          int // want "platform-width"
	Input      []float32
}

// replyFrame is a clean frame struct: fixed-width throughout, and the
// float32 vector resolves to a fixed-width element type.
type replyFrame struct {
	ID      uint64
	Version int64
	Output  []float32
}

// batchPlan is not a wire struct: bare ints are fine off the wire.
type batchPlan struct {
	Depth  int
	Window float64
}

func buildKeyed() replyFrame {
	return replyFrame{ID: 1, Version: 2}
}

func buildPositional() replyFrame {
	return replyFrame{1, 2, nil} // want "keyed"
}

func buildPlan() batchPlan {
	return batchPlan{Depth: 4, Window: 0.05}
}
