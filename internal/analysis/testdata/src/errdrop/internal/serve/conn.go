// Package serve is a fixture for the errdrop pass: a dropped reply-write
// error makes a dead client look served.
package serve

import "net"

func bad(conn net.Conn, reply []byte) {
	conn.Write(reply)  // want "dropped"
	defer conn.Close() // want "dropped"
}

func good(conn net.Conn, reply []byte) error {
	if _, err := conn.Write(reply); err != nil {
		return err
	}
	_ = conn.Close() // per-conn close errors end that client only
	return nil
}
