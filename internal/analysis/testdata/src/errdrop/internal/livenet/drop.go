// Package livenet is a fixture for the errdrop pass: dropped wire-path
// errors versus checked or explicitly discarded ones.
package livenet

import (
	"net"
	"time"
)

func Bad(conn net.Conn, buf []byte) {
	conn.Write(buf)                 // want "dropped"
	conn.SetReadDeadline(zeroTime)  // want "dropped"
	conn.SetWriteDeadline(zeroTime) // want "dropped"
	defer conn.Close()              // want "dropped"
}

func Good(conn net.Conn, buf []byte) error {
	if _, err := conn.Write(buf); err != nil {
		return err
	}
	if err := conn.SetReadDeadline(zeroTime); err != nil {
		return err
	}
	_ = conn.SetWriteDeadline(zeroTime) // explicit discard is a decision
	return conn.Close()
}

var zeroTime = time.Time{}
