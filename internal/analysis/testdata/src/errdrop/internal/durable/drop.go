// Package durable is a fixture for the errdrop pass on the checkpoint
// path: a dropped Sync or Rename error is the torn-checkpoint bug the
// subsystem exists to prevent.
package durable

// File mirrors the durable.File surface the pass must police.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS mirrors the durable.FS surface.
type FS interface {
	Rename(oldpath, newpath string) error
}

func Bad(fs FS, f File, buf []byte) {
	f.Write(buf)                  // want "dropped"
	f.Sync()                      // want "dropped"
	fs.Rename("snap.tmp", "snap") // want "dropped"
	defer f.Close()               // want "dropped"
}

func Good(fs FS, f File, buf []byte) error {
	if _, err := f.Write(buf); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := fs.Rename("snap.tmp", "snap"); err != nil {
		return err
	}
	_ = f.Close() // explicit discard is a decision
	return nil
}
