// Package suppress is a fixture for the driver's suppression handling:
// one honored ignore, one unused ignore, one missing its reason.
package suppress

func Quiet(m map[int]float32) float32 {
	var sum float32
	for _, v := range m {
		sum += v //roglint:ignore maporder fixture exercises an honored suppression
	}
	return sum
}

func Unused(xs []float32) float32 {
	var sum float32
	for _, v := range xs {
		sum += v //roglint:ignore maporder slices iterate in order, nothing to silence
	}
	return sum
}

func NoReason(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v //roglint:ignore maporder
	}
	return sum
}
