// Package atomicmix is a fixture for the atomicmix pass: fields written
// through sync/atomic and read plainly, with and without their guard
// held, plus typed-atomic misuse.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

// counter mirrors the rowsync version-shard pattern: hits is bumped
// atomically on the hot path and snapshotted under mu, so plain reads
// are legal only with mu held.
type counter struct {
	mu    sync.Mutex
	hits  int64 // guarded by mu
	total atomic.Int64
}

func (c *counter) Incr() {
	atomic.AddInt64(&c.hits, 1)
	c.total.Add(1)
}

func (c *counter) GoodSnapshot() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

func (c *counter) BadPeek() int64 {
	return c.hits // want "hits is accessed atomically elsewhere; this plain access needs counter\.mu held"
}

// hitsLocked asserts via its name that the caller holds mu.
func (c *counter) hitsLocked() int64 { return c.hits }

func (c *counter) GoodTyped() int64 {
	return c.total.Load()
}

func (c *counter) BadTyped() *atomic.Int64 {
	return &c.total // want "field total has a sync/atomic type; access it only through its atomic methods"
}

// shard owns the lock that guards table's cached row count — the dotted
// guard names a foreign type, which the type-labelled hold walk can
// still check.
type shard struct{ mu sync.Mutex }

type table struct {
	rows int64 // guarded by shard.mu
}

func Bump(t *table) {
	atomic.AddInt64(&t.rows, 1)
}

func GoodScan(t *table, sh *shard) int64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return t.rows
}

func BadScan(t *table) int64 {
	return t.rows // want "rows is accessed atomically elsewhere; this plain access needs shard\.mu held"
}

// gauge mixes atomic and plain access with no annotation at all: the
// pass demands a discipline be picked.
type gauge struct {
	level int64
}

func (g *gauge) Set(v int64) {
	atomic.StoreInt64(&g.level, v)
}

func (g *gauge) BadRead() int64 {
	return g.level // want "level mixes sync/atomic and plain access with no guard"
}

func (g *gauge) Startup() {
	//roglint:ignore atomicmix construction-time store before the gauge is shared
	g.level = 0
}
