// Package lockorder is a fixture for the lockorder pass: a declared
// acquisition order, conforming and inverted acquisitions (direct and
// through a call), an undeclared cycle, a re-acquisition, and the
// declaration grammar's failure modes.
package lockorder

import "sync"

//roglint:lockorder A.mu < B.mu < C.mu

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }

func InOrder(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// InOrderTransitive relies on the chain's closure: A.mu < C.mu is
// declared even though no single pair spells it.
func InOrderTransitive(a *A, c *C) {
	a.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	a.mu.Unlock()
}

func Inverted(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "acquiring A\.mu while holding B\.mu inverts the declared lock order \(A\.mu < B\.mu\)"
	a.mu.Unlock()
	b.mu.Unlock()
}

func lockB(b *B) {
	b.mu.Lock()
	b.mu.Unlock()
}

// IndirectInverted inverts through a call: the walk sees no Lock here,
// but lockB's summary acquires B.mu while C.mu is held.
func IndirectInverted(c *C, b *B) {
	c.mu.Lock()
	lockB(b) // want "call acquires B\.mu while holding C\.mu inverts the declared lock order \(B\.mu < C\.mu\)"
	c.mu.Unlock()
}

// IgnoredInverted shows the escape hatch: a real inversion argued safe
// (the lower lock's instance is private here) and suppressed with a
// reason.
func IgnoredInverted(a *A, b *B) {
	b.mu.Lock()
	//roglint:ignore lockorder a is freshly allocated by the caller and unshared
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// D and E have no declared order; acquiring them in both orders is a
// cycle regardless.
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }

func DE(d *D, e *E) {
	d.mu.Lock()
	e.mu.Lock() // want "acquiring E\.mu while holding D\.mu closes a lock-order cycle"
	e.mu.Unlock()
	d.mu.Unlock()
}

func ED(d *D, e *E) {
	e.mu.Lock()
	d.mu.Lock() // want "acquiring D\.mu while holding E\.mu closes a lock-order cycle"
	d.mu.Unlock()
	e.mu.Unlock()
}

func Reacquire(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want "re-acquires A\.mu while it is already held"
	a.mu.Unlock()
}

//roglint:lockorder A.mu // want "needs at least two labels"

//roglint:lockorder lone < B.mu // want "label \"lone\" is not Type\.field"

//roglint:lockorder X.mu < Y.mu

//roglint:lockorder Y.mu < X.mu // want "declarations order X\.mu and Y\.mu both ways"
