// Package maporder is a fixture for the maporder pass: float accumulation
// over randomized map iteration versus order-safe alternatives.
package maporder

type stats struct{ total float64 }

func Bad(m map[int]float32) float32 {
	var sum float32
	for _, v := range m {
		sum += v // want "nondeterministic"
	}
	return sum
}

func BadSpelledOut(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want "nondeterministic"
	}
	return sum
}

func BadField(s *stats, m map[int]float64) {
	for _, v := range m {
		s.total += v // want "nondeterministic"
	}
}

func GoodSortedKeys(m map[int]float32, keys []int) float32 {
	var sum float32
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

func GoodInt(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v // integer addition is associative: order cannot change it
	}
	return n
}

func GoodKeyedSlot(m map[int]float32, out []float32) {
	for k, v := range m {
		out[k] += v // lands in a key-indexed slot: order-independent
	}
}

type flow struct{ rem float64 }

func GoodPerElement(flows map[*flow]struct{}, dt float64) {
	for f := range flows {
		f.rem += dt // field of the iteration variable: per-element, order-safe
	}
}

func GoodLoopLocal(m map[int][]float32) float32 {
	var last float32
	for _, vs := range m {
		rowSum := float32(0)
		for _, v := range vs {
			rowSum += v // accumulator lives inside the map loop body
		}
		last = rowSum
	}
	return last
}
