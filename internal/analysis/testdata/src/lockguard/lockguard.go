// Package lockguard is a fixture for the lockguard pass: guarded fields
// accessed with and without their mutex held.
package lockguard

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int // guarded by mu
	m    int // guarded by mu
	free int
}

func (c *counter) Bad() int {
	return c.n // want "guarded by mu"
}

func (c *counter) BadAfterUnlock() {
	c.mu.Lock()
	c.m++
	c.mu.Unlock()
	c.m++ // want "guarded by mu"
}

func (c *counter) BadBranch(cond bool) {
	if cond {
		c.mu.Lock()
	}
	c.n++ // want "guarded by mu"
	if cond {
		c.mu.Unlock()
	}
}

func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) GoodExplicit() {
	c.mu.Lock()
	c.m++
	c.mu.Unlock()
	c.free++
}

func (c *counter) GoodEarlyReturn(skip bool) {
	c.mu.Lock()
	if skip {
		c.mu.Unlock()
		return
	}
	c.n++ // still held: the unlocking branch returned
	c.mu.Unlock()
}

func (c *counter) GoodLoop(xs []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for range xs {
		c.n++
	}
}

// nLocked asserts via its name that the caller holds mu.
func (c *counter) nLocked() int { return c.n }

type broken struct {
	x int // guarded by missing    want "not a field"
}

func use(b *broken) int { return b.x }
