// Package lockguard is a fixture for the lockguard pass: guarded fields
// accessed with and without their mutex held.
package lockguard

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int // guarded by mu
	m    int // guarded by mu
	free int
}

func (c *counter) Bad() int {
	return c.n // want "guarded by mu"
}

func (c *counter) BadAfterUnlock() {
	c.mu.Lock()
	c.m++
	c.mu.Unlock()
	c.m++ // want "guarded by mu"
}

func (c *counter) BadBranch(cond bool) {
	if cond {
		c.mu.Lock()
	}
	c.n++ // want "guarded by mu"
	if cond {
		c.mu.Unlock()
	}
}

func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) GoodExplicit() {
	c.mu.Lock()
	c.m++
	c.mu.Unlock()
	c.free++
}

func (c *counter) GoodEarlyReturn(skip bool) {
	c.mu.Lock()
	if skip {
		c.mu.Unlock()
		return
	}
	c.n++ // still held: the unlocking branch returned
	c.mu.Unlock()
}

func (c *counter) GoodLoop(xs []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for range xs {
		c.n++
	}
}

// nLocked asserts via its name that the caller holds mu.
func (c *counter) nLocked() int { return c.n }

type broken struct {
	x int // guarded by missing    want "not a field"
}

func use(b *broken) int { return b.x }

// shard mirrors the sharded server state: many instances, each carrying
// its own lock that guards its own counters. The discipline is per
// instance — a method must hold *this* shard's mu, not some global.
type shard struct {
	id int

	mu   sync.Mutex
	dups int64 // guarded by mu
	lead int64 // guarded by mu
}

func (s *shard) BadPeek() int64 {
	return s.dups // want "guarded by mu"
}

func (s *shard) BadLeakedHold(lag int64) {
	s.mu.Lock()
	s.dups++
	s.mu.Unlock()
	if lag > s.lead { // want "guarded by mu"
		s.lead = lag // want "guarded by mu"
	}
}

func (s *shard) GoodSnapshot() (int64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dups, s.lead
}

func (s *shard) GoodMergeCounters(lag int64) {
	s.mu.Lock()
	s.dups++
	if lag > s.lead {
		s.lead = lag
	}
	s.mu.Unlock()
	_ = s.id // unguarded: immutable after construction
}

// mergeLocked asserts via its name that the caller holds this shard's mu —
// how the sharded merge body runs under the lock its caller took.
func (s *shard) mergeLocked() { s.dups++ }

// foldShards documents the approximation: the walk tracks the receiver
// only, so sibling shards reached through a parameter are not checked.
// The repo's real cross-shard folds go through each sibling's own locked
// accessors instead of reaching into its fields.
func (s *shard) foldShards(other *shard) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dups + other.dups // other.dups is outside the analysis
}
