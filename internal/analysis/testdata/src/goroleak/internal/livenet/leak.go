// Package livenet is a goroleak fixture: goroutines with and without
// termination paths, and unbuffered sends with and without an out. The
// directory path puts it in the pass's scope.
package livenet

import "context"

type mux struct {
	jobs chan int
	done chan struct{}
}

func newMux() *mux {
	return &mux{jobs: make(chan int), done: make(chan struct{})}
}

func (m *mux) startLeaky() {
	go func() {
		for { // want "goroutine loop has no termination path"
			m.process()
		}
	}()
}

func (m *mux) startCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-m.jobs:
				_ = j
			}
		}
	}()
}

func (m *mux) startDone() {
	go func() {
		for {
			select {
			case <-m.done:
				return
			case j := <-m.jobs:
				_ = j
			}
		}
	}()
}

func (m *mux) startReturning() {
	go func() {
		for {
			if m.process() {
				return
			}
		}
	}()
}

// startRange drains until the channel closes — a close-driven unblock,
// no finding.
func (m *mux) startRange() {
	go func() {
		for j := range m.jobs {
			_ = j
		}
	}()
}

// startFinite mirrors the http.Serve pattern: the body runs one blocking
// call and falls off the end when Close unblocks it.
func (m *mux) startFinite() {
	go func() {
		m.process()
	}()
}

func (m *mux) startNamed() {
	go m.pump()
}

func (m *mux) pump() {
	for { // want "goroutine loop has no termination path"
		m.process()
	}
}

func (m *mux) process() bool { return true }

func fanOutDeadEnd() {
	results := make(chan int)
	go func() {
		results <- 1 // want "send on unbuffered channel results from a goroutine can block forever"
	}()
}

func fanOutBuffered() {
	results := make(chan int, 1)
	go func() {
		results <- 1
	}()
}

func fanOutSelect(done chan struct{}) {
	results := make(chan int)
	go func() {
		select {
		case results <- 1:
		case <-done:
		}
	}()
}

func (m *mux) fieldSend() {
	go func() {
		m.jobs <- 7 // want "send on unbuffered channel m\.jobs from a goroutine can block forever"
	}()
}
