// Package lossnet exercises goroleak's suppression path in a second
// in-scope package.
package lossnet

type pump struct{ ticks chan int }

func (p *pump) run() {
	go func() {
		//roglint:ignore goroleak lifetime equals the process; shutdown kills it
		for {
			p.tick()
		}
	}()
}

func (p *pump) tick() {}
