// Package tool sits outside goroleak's scope: the same leaky shape as
// the livenet fixture must produce no finding here.
package tool

func spin() {
	go func() {
		for {
		}
	}()
}
