package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomicmix catches the race pattern the sharded engine's cached minima
// invite: a struct field written through sync/atomic on the hot path and
// read with a plain load somewhere else. Mixing the two is a data race
// unless the plain access happens under the mutex that serializes the
// writers (the published-snapshot pattern rowsync's version shards use).
//
// Two field families are tracked:
//
//   - Typed atomics (atomic.Int64 and friends): every access must go
//     through the type's methods; any other selector touch is flagged.
//   - Function-style atomics (a plain int64 whose address reaches an
//     atomic.* call): plain accesses elsewhere must hold the field's
//     declared guard — a "// guarded by" annotation, sibling or dotted —
//     at the access, per the shared must-hold walk keyed on Type.field
//     labels. An unannotated mixed field is flagged at the plain access
//     with a request to pick a discipline.
//
// Methods named *Locked keep the repo's caller-holds convention: the
// guard-held requirement is assumed satisfied there (typed-atomic misuse
// is still flagged — no lock legitimizes a plain read of an
// atomic.Int64).
type Atomicmix struct{}

// NewAtomicmix returns the pass.
func NewAtomicmix() *Atomicmix { return &Atomicmix{} }

// Name implements Pass.
func (*Atomicmix) Name() string { return "atomicmix" }

// Doc implements Pass.
func (*Atomicmix) Doc() string {
	return "fields accessed via sync/atomic must not also be accessed plainly without their guard"
}

// Run implements Pass.
func (am *Atomicmix) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	okUses := map[*ast.SelectorExpr]bool{} // sanctioned atomic access sites
	funcAtomic := map[types.Object]bool{}  // fields reaching atomic.* calls by address

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// atomic.AddInt64(&x.f, 1): the &x.f operand is sanctioned
			// and marks f as a function-style atomic field.
			if id, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "sync/atomic" {
					for _, a := range call.Args {
						u, ok := a.(*ast.UnaryExpr)
						if !ok || u.Op != token.AND {
							continue
						}
						if sel, ok := u.X.(*ast.SelectorExpr); ok {
							if obj := fieldOf(pkg, sel); obj != nil {
								funcAtomic[obj] = true
								okUses[sel] = true
							}
						}
					}
					return true
				}
			}
			// x.f.Load(): a method call on a typed atomic field is the
			// sanctioned access shape.
			if sel, ok := fun.X.(*ast.SelectorExpr); ok {
				if obj := fieldOf(pkg, sel); obj != nil && isAtomicType(obj.Type()) {
					okUses[sel] = true
				}
			}
			return true
		})
	}

	guards, _, _ := collectGuards(pkg, am.Name())

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			callerHolds := strings.HasSuffix(fn.Name.Name, "Locked")
			w := &holdWalker{
				pkg: pkg,
				classify: func(call *ast.CallExpr) (string, string) {
					return mutexFieldOp(pkg, call)
				},
				onAccess: func(sel *ast.SelectorExpr, held map[string]bool) {
					obj := fieldOf(pkg, sel)
					if obj == nil || okUses[sel] {
						return
					}
					if isAtomicType(obj.Type()) {
						diags = append(diags, Diagnostic{
							Pos:  pkg.Fset.Position(sel.Pos()),
							Pass: am.Name(),
							Msg:  fmt.Sprintf("field %s has a sync/atomic type; access it only through its atomic methods", sel.Sel.Name),
						})
						return
					}
					if !funcAtomic[obj] || callerHolds {
						return
					}
					ref, annotated := guards[obj]
					if !annotated {
						diags = append(diags, Diagnostic{
							Pos:  pkg.Fset.Position(sel.Pos()),
							Pass: am.Name(),
							Msg:  fmt.Sprintf("%s mixes sync/atomic and plain access with no guard; make this access atomic or annotate the field \"guarded by <mu>\"", sel.Sel.Name),
						})
						return
					}
					if !held[ref.label()] {
						diags = append(diags, Diagnostic{
							Pos:  pkg.Fset.Position(sel.Pos()),
							Pass: am.Name(),
							Msg:  fmt.Sprintf("%s is accessed atomically elsewhere; this plain access needs %s held", sel.Sel.Name, ref.label()),
						})
					}
				},
			}
			w.block(fn.Body.List, map[string]bool{})
		}
	}
	return diags
}

// fieldOf resolves a selector to the struct-field object it denotes, or
// nil when it names something else (a method, a local, a package).
func fieldOf(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil {
		obj = pkg.Info.Defs[sel.Sel]
	}
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isAtomicType reports whether t is one of sync/atomic's typed values
// (atomic.Int64, atomic.Bool, atomic.Value, ...).
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
