package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the tree under analysis: the
// parsed files (with comments), the shared position set, and the go/types
// objects every pass keys its reasoning on.
type Package struct {
	// Path is the import path ("rog/internal/engine" for module packages,
	// the root-relative directory for fixture trees loaded without a module
	// path).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader type-checks a directory tree with nothing but the standard
// library: module-internal imports are resolved by recursively checking
// the sibling directory, everything else is delegated to the stdlib
// source importer (which reads GOROOT source, so no compiled export data
// or network is needed).
type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// Load parses and type-checks every non-test package under root. modPath
// is the module path used to resolve intra-tree imports; pass "" for
// self-contained trees (fixtures) whose packages only import the standard
// library. Directories named testdata and hidden directories are skipped.
// Packages are returned sorted by import path.
func Load(root, modPath string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	build.Default.CgoEnabled = false // type-check net & friends as pure Go
	fset := token.NewFileSet()
	ld := &loader{
		root:    root,
		modPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if p != root && (strings.HasPrefix(d.Name(), ".") || d.Name() == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		if _, err := ld.loadDir(dir); err != nil {
			return nil, err
		}
	}
	out := make([]*Package, 0, len(ld.pkgs))
	for _, p := range ld.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// pkgPath maps an absolute directory to its import path.
func (ld *loader) pkgPath(dir string) (string, error) {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	switch {
	case rel == ".":
		if ld.modPath == "" {
			// A fixture tree with files at its root: name the package
			// after the directory.
			return filepath.Base(dir), nil
		}
		return ld.modPath, nil
	case ld.modPath == "":
		return rel, nil
	default:
		return ld.modPath + "/" + rel, nil
	}
}

// loadDir type-checks the package in dir, memoized by import path.
func (ld *loader) loadDir(dir string) (*Package, error) {
	path, err := ld.pkgPath(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: %s: no non-test Go files", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importerFunc(ld.importPkg)}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Fset: ld.fset, Files: files, Types: tpkg, Info: info}
	ld.pkgs[path] = p
	return p, nil
}

// importPkg resolves one import: module-internal paths load their source
// directory, everything else is standard library.
func (ld *loader) importPkg(path string) (*types.Package, error) {
	if ld.modPath != "" {
		if path == ld.modPath {
			p, err := ld.loadDir(ld.root)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		if rest, ok := strings.CutPrefix(path, ld.modPath+"/"); ok {
			p, err := ld.loadDir(filepath.Join(ld.root, filepath.FromSlash(rest)))
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	return ld.std.ImportFrom(path, ld.root, 0)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
