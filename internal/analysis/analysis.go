// Package analysis is roglint's engine: a multi-pass static analyzer for
// the repo's Policy×Runtime core, built purely on go/parser, go/ast and
// go/types (no external tooling — the tree must stay checkable offline).
//
// The paper's correctness claims rest on cross-package invariants the
// compiler cannot see: the socket runtime's lock discipline around the
// shared engine.State, virtual-time determinism in the simulated runtime,
// fixed-width wire framing, and never-dropped transport errors. Each pass
// encodes one such invariant and reports findings with file:line
// positions; the driver deduplicates and sorts them for stable output and
// honors //roglint:ignore suppressions (which must carry a reason, and are
// themselves flagged when they match nothing).
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding: where, which pass, and what.
type Diagnostic struct {
	Pos  token.Position
	Pass string
	Msg  string
}

// String formats the finding as file:line:col: [pass] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Msg)
}

// Pass is one invariant checker. Run inspects a single type-checked
// package and returns its findings; the driver owns filtering and output
// order.
type Pass interface {
	Name() string
	Doc() string
	Run(pkg *Package) []Diagnostic
}

// Finisher is implemented by passes whose findings need the whole
// program: Run accumulates per-package facts, and Finish — called once
// after every package has been seen — reports the cross-package
// findings. Such passes are stateful; callers must use a fresh instance
// per Analyze invocation (DefaultPasses and SelectPasses construct new
// ones each call).
type Finisher interface {
	Finish() []Diagnostic
}

// DefaultPasses returns every pass in the suite, in stable order.
func DefaultPasses() []Pass {
	return []Pass{
		NewLockguard(),
		NewWallclock(),
		NewMaporder(),
		NewWireframe(),
		NewErrdrop(),
		NewLockorder(),
		NewAtomicmix(),
		NewGoroleak(),
	}
}

// SelectPasses resolves a comma-separated pass list ("" means all) to
// fresh pass instances in suite order, rejecting unknown names.
func SelectPasses(spec string) ([]Pass, error) {
	all := DefaultPasses()
	if spec == "" {
		return all, nil
	}
	byName := map[string]Pass{}
	for _, p := range all {
		byName[p.Name()] = p
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if byName[name] == nil {
			return nil, fmt.Errorf("unknown pass %q (run -list for the suite)", name)
		}
		want[name] = true
	}
	var out []Pass
	for _, p := range all {
		if want[p.Name()] {
			out = append(out, p)
		}
	}
	return out, nil
}

// suppressPass names the pseudo-pass that reports problems with the
// suppression comments themselves (missing reason, matching nothing).
const suppressPass = "suppress"

// ignoreDirective introduces a suppression comment:
//
//	//roglint:ignore <pass> <reason>
//
// It silences diagnostics of the named pass on the comment's line or the
// line directly below it (so it can trail the offending statement or sit
// on its own line above).
const ignoreDirective = "roglint:ignore"

// suppression is one parsed //roglint:ignore comment.
type suppression struct {
	pos    token.Position
	pass   string
	reason string
	used   bool
}

// PassTiming is one pass's cumulative wall time across every package
// (plus its Finish, for cross-package passes).
type PassTiming struct {
	Pass    string
	Seconds float64
}

// Analyze runs the passes over every package, applies suppressions, and
// returns the surviving findings deduplicated and sorted by position.
func Analyze(pkgs []*Package, passes []Pass) []Diagnostic {
	diags, _ := AnalyzeTimed(pkgs, passes)
	return diags
}

// AnalyzeTimed is Analyze plus per-pass timing, in pass order.
func AnalyzeTimed(pkgs []*Package, passes []Pass) ([]Diagnostic, []PassTiming) {
	var diags []Diagnostic
	var sups []*suppression
	active := map[string]bool{}
	elapsed := make([]time.Duration, len(passes))
	for _, p := range passes {
		active[p.Name()] = true
	}
	for _, pkg := range pkgs {
		for i, p := range passes {
			start := time.Now()
			diags = append(diags, p.Run(pkg)...)
			elapsed[i] += time.Since(start)
		}
		s, malformed := parseSuppressions(pkg)
		sups = append(sups, s...)
		diags = append(diags, malformed...)
	}
	for i, p := range passes {
		fin, ok := p.(Finisher)
		if !ok {
			continue
		}
		start := time.Now()
		diags = append(diags, fin.Finish()...)
		elapsed[i] += time.Since(start)
	}
	timings := make([]PassTiming, len(passes))
	for i, p := range passes {
		timings[i] = PassTiming{Pass: p.Name(), Seconds: elapsed[i].Seconds()}
	}

	// A suppression silences same-pass findings on its own line or the
	// next line.
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.pass == d.Pass && s.pos.Filename == d.Pos.Filename &&
				(s.pos.Line == d.Pos.Line || s.pos.Line == d.Pos.Line-1) {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	diags = kept

	// A suppression for a pass that ran but silenced nothing is dead
	// weight — likely left behind by a fix — and gets flagged itself.
	for _, s := range sups {
		if !s.used && active[s.pass] {
			diags = append(diags, Diagnostic{
				Pos:  s.pos,
				Pass: suppressPass,
				Msg:  fmt.Sprintf("//roglint:ignore %s matched no diagnostic; remove it", s.pass),
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out, timings
}

// jsonFinding is the -json wire shape for one finding.
type jsonFinding struct {
	Pass string `json:"pass"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// EncodeJSON renders findings as a JSON array of
// {pass, file, line, col, msg}, one element per finding, in the
// driver's sorted order — the machine-readable surface CI diffs.
func EncodeJSON(diags []Diagnostic) ([]byte, error) {
	out := make([]jsonFinding, len(diags))
	for i, d := range diags {
		out[i] = jsonFinding{
			Pass: d.Pass,
			File: d.Pos.Filename,
			Line: d.Pos.Line,
			Col:  d.Pos.Column,
			Msg:  d.Msg,
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// parseSuppressions scans a package's comments for //roglint:ignore
// directives. Directives without a pass name or a reason are reported as
// findings rather than honored.
func parseSuppressions(pkg *Package) ([]*suppression, []Diagnostic) {
	var sups []*suppression
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignoreDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos:  pos,
						Pass: suppressPass,
						Msg:  "//roglint:ignore needs a pass name and a reason: //roglint:ignore <pass> <why>",
					})
					continue
				}
				sups = append(sups, &suppression{
					pos:    pos,
					pass:   fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return sups, diags
}

// pathMatches reports whether pkgPath is exactly suffix or ends with
// "/"+suffix — how passes scope themselves to packages like
// "internal/engine" regardless of the module prefix (fixture trees have
// none).
func pathMatches(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// wantRe matches expected-diagnostic comments in fixture packages:
// // want "regexp"
var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// fileComments returns the comment groups of f in source order — a helper
// shared by directive parsing and the fixture harness.
func fileComments(f *ast.File) []*ast.Comment {
	var out []*ast.Comment
	for _, cg := range f.Comments {
		out = append(out, cg.List...)
	}
	return out
}
