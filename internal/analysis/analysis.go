// Package analysis is roglint's engine: a multi-pass static analyzer for
// the repo's Policy×Runtime core, built purely on go/parser, go/ast and
// go/types (no external tooling — the tree must stay checkable offline).
//
// The paper's correctness claims rest on cross-package invariants the
// compiler cannot see: the socket runtime's lock discipline around the
// shared engine.State, virtual-time determinism in the simulated runtime,
// fixed-width wire framing, and never-dropped transport errors. Each pass
// encodes one such invariant and reports findings with file:line
// positions; the driver deduplicates and sorts them for stable output and
// honors //roglint:ignore suppressions (which must carry a reason, and are
// themselves flagged when they match nothing).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding: where, which pass, and what.
type Diagnostic struct {
	Pos  token.Position
	Pass string
	Msg  string
}

// String formats the finding as file:line:col: [pass] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Msg)
}

// Pass is one invariant checker. Run inspects a single type-checked
// package and returns its findings; the driver owns filtering and output
// order.
type Pass interface {
	Name() string
	Doc() string
	Run(pkg *Package) []Diagnostic
}

// DefaultPasses returns every pass in the suite, in stable order.
func DefaultPasses() []Pass {
	return []Pass{
		NewLockguard(),
		NewWallclock(),
		NewMaporder(),
		NewWireframe(),
		NewErrdrop(),
	}
}

// suppressPass names the pseudo-pass that reports problems with the
// suppression comments themselves (missing reason, matching nothing).
const suppressPass = "suppress"

// ignoreDirective introduces a suppression comment:
//
//	//roglint:ignore <pass> <reason>
//
// It silences diagnostics of the named pass on the comment's line or the
// line directly below it (so it can trail the offending statement or sit
// on its own line above).
const ignoreDirective = "roglint:ignore"

// suppression is one parsed //roglint:ignore comment.
type suppression struct {
	pos    token.Position
	pass   string
	reason string
	used   bool
}

// Analyze runs the passes over every package, applies suppressions, and
// returns the surviving findings deduplicated and sorted by position.
func Analyze(pkgs []*Package, passes []Pass) []Diagnostic {
	var diags []Diagnostic
	var sups []*suppression
	active := map[string]bool{}
	for _, p := range passes {
		active[p.Name()] = true
	}
	for _, pkg := range pkgs {
		for _, p := range passes {
			diags = append(diags, p.Run(pkg)...)
		}
		s, malformed := parseSuppressions(pkg)
		sups = append(sups, s...)
		diags = append(diags, malformed...)
	}

	// A suppression silences same-pass findings on its own line or the
	// next line.
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.pass == d.Pass && s.pos.Filename == d.Pos.Filename &&
				(s.pos.Line == d.Pos.Line || s.pos.Line == d.Pos.Line-1) {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	diags = kept

	// A suppression for a pass that ran but silenced nothing is dead
	// weight — likely left behind by a fix — and gets flagged itself.
	for _, s := range sups {
		if !s.used && active[s.pass] {
			diags = append(diags, Diagnostic{
				Pos:  s.pos,
				Pass: suppressPass,
				Msg:  fmt.Sprintf("//roglint:ignore %s matched no diagnostic; remove it", s.pass),
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parseSuppressions scans a package's comments for //roglint:ignore
// directives. Directives without a pass name or a reason are reported as
// findings rather than honored.
func parseSuppressions(pkg *Package) ([]*suppression, []Diagnostic) {
	var sups []*suppression
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignoreDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos:  pos,
						Pass: suppressPass,
						Msg:  "//roglint:ignore needs a pass name and a reason: //roglint:ignore <pass> <why>",
					})
					continue
				}
				sups = append(sups, &suppression{
					pos:    pos,
					pass:   fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return sups, diags
}

// pathMatches reports whether pkgPath is exactly suffix or ends with
// "/"+suffix — how passes scope themselves to packages like
// "internal/engine" regardless of the module prefix (fixture trees have
// none).
func pathMatches(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// wantRe matches expected-diagnostic comments in fixture packages:
// // want "regexp"
var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// fileComments returns the comment groups of f in source order — a helper
// shared by directive parsing and the fixture harness.
func fileComments(f *ast.File) []*ast.Comment {
	var out []*ast.Comment
	for _, cg := range f.Comments {
		out = append(out, cg.List...)
	}
	return out
}
