package analysis

import (
	"fmt"
	"go/ast"
)

// Wallclock forbids wall-clock time sources inside the deterministic
// core. The simulated runtime (internal/core over internal/simnet), the
// policy engine, ATP, and the observability probes all run on injected
// virtual time so that every experiment replays bit-identically and the
// simnet↔livenet parity tests can compare merge sequences; one stray
// time.Now() or time.Sleep() silently couples an experiment to the host
// scheduler. Only the socket runtime (livenet, transport) and the CLIs
// may read the real clock. internal/obs is restricted because its probes
// are invoked from inside the simulated runtime: event timestamps must
// come from the injected clock closure, never from package time.
// internal/serve is restricted because its batching window and request
// latencies run on the injected Clock — the serve harness replays on a
// simnet kernel, and a stray wall read there would desynchronize the
// latency quantiles from the virtual schedule.
type Wallclock struct {
	// Restricted lists package-path suffixes (module-prefix independent)
	// where wall-clock calls are forbidden.
	Restricted []string
	// Banned lists the forbidden functions from package time.
	Banned map[string]bool
}

// NewWallclock returns the pass with the repo's virtual-time packages
// restricted.
func NewWallclock() *Wallclock {
	return &Wallclock{
		Restricted: []string{"internal/core", "internal/engine", "internal/simnet", "internal/atp", "internal/obs", "internal/serve"},
		Banned: map[string]bool{
			"Now": true, "Sleep": true, "Since": true, "Until": true,
			"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
			"AfterFunc": true,
		},
	}
}

// Name implements Pass.
func (*Wallclock) Name() string { return "wallclock" }

// Doc implements Pass.
func (*Wallclock) Doc() string {
	return "no wall-clock time (time.Now/Sleep/...) in the virtual-time core packages"
}

// Run implements Pass.
func (wc *Wallclock) Run(pkg *Package) []Diagnostic {
	restricted := false
	for _, suffix := range wc.Restricted {
		if pathMatches(pkg.Path, suffix) {
			restricted = true
			break
		}
	}
	if !restricted {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !wc.Banned[obj.Name()] {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(id.Pos()),
				Pass: wc.Name(),
				Msg: fmt.Sprintf("time.%s reads the wall clock; %s runs on injected virtual time (pass the clock in)",
					obj.Name(), pkg.Path),
			})
			return true
		})
	}
	return diags
}
