package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags floating-point accumulation inside a range over a map.
// Go randomizes map iteration order, and float addition is not
// associative, so a gradient norm or energy total summed that way differs
// between runs — which breaks the simnet↔livenet parity tests and makes
// the paper's convergence numbers irreproducible. Accumulating into a
// slot indexed by the map key (out[k] += v) is order-independent and not
// flagged; sum over sorted keys instead.
type Maporder struct{}

// NewMaporder returns the pass.
func NewMaporder() *Maporder { return &Maporder{} }

// Name implements Pass.
func (*Maporder) Name() string { return "maporder" }

// Doc implements Pass.
func (*Maporder) Doc() string {
	return "no float accumulation in range-over-map loops (iteration order is random)"
}

// Run implements Pass.
func (mo *Maporder) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pkg.Info.Types[rs.X].Type; t == nil || !isMap(t) {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok {
					return true
				}
				switch as.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					for _, lhs := range as.Lhs {
						if d, ok := mo.accumulator(pkg, rs, lhs); ok {
							diags = append(diags, d)
						}
					}
				case token.ASSIGN:
					// x = x + v spelled out.
					for i, lhs := range as.Lhs {
						if i >= len(as.Rhs) {
							break
						}
						if selfReferential(pkg, lhs, as.Rhs[i]) {
							if d, ok := mo.accumulator(pkg, rs, lhs); ok {
								diags = append(diags, d)
							}
						}
					}
				}
				return true
			})
			return true
		})
	}
	return diags
}

// accumulator reports a diagnostic when lhs is a float-typed scalar
// (identifier or field selector — not a key-indexed slot) declared
// outside the range body.
func (mo *Maporder) accumulator(pkg *Package, rs *ast.RangeStmt, lhs ast.Expr) (Diagnostic, bool) {
	t := pkg.Info.Types[lhs].Type
	if t == nil || !isFloat(t) {
		return Diagnostic{}, false
	}
	switch l := lhs.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[l]
		if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()) {
			return Diagnostic{}, false // loop-local, including the iteration vars
		}
	case *ast.SelectorExpr:
		// A field of the iteration variable (for f := range m { f.x += v })
		// is a per-element update like out[k] += v: order-independent.
		if root, ok := rootIdent(l).(*ast.Ident); ok {
			obj := pkg.Info.Uses[root]
			if obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
				return Diagnostic{}, false
			}
		}
	default:
		return Diagnostic{}, false // indexed slots like out[k] are order-safe
	}
	return Diagnostic{
		Pos:  pkg.Fset.Position(lhs.Pos()),
		Pass: mo.Name(),
		Msg: fmt.Sprintf("float accumulation into %s over map iteration is nondeterministic; sum over sorted keys",
			exprString(lhs)),
	}, true
}

// selfReferential reports whether rhs is an additive expression that
// reads the same object lhs writes (x = x + v).
func selfReferential(pkg *Package, lhs, rhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return false
	}
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
		return false
	}
	found := false
	ast.Inspect(bin, func(n ast.Node) bool {
		if rid, ok := n.(*ast.Ident); ok && pkg.Info.Uses[rid] == obj {
			found = true
		}
		return !found
	})
	return found
}

// rootIdent returns the leftmost expression of a selector chain
// (s.total → s, a.b.c → a).
func rootIdent(e ast.Expr) ast.Expr {
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return e
		}
		e = sel.X
	}
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "value"
	}
}
