package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// holdWalker is the shared must-hold engine behind lockguard, lockorder
// and atomicmix. It walks a function body tracking which mutexes are
// definitely held at each point: classify recognizes acquire/release
// calls and names the lock they operate on, statement lists thread the
// held map forward, and control flow merges by intersection so a hold
// must survive every path to count. The walk is an approximation, not a
// proof — it is keyed on lock *names* (receiver fields for lockguard,
// Type.field labels for the type-based passes), so two instances of the
// same struct alias to one entry. The repo's locking is coarse enough
// that the approximation has not produced a false positive; fixtures pin
// the cases where it deliberately under-claims.
//
// Hook contract:
//   - classify(call) returns the lock's key and the operation
//     (Lock/RLock/Unlock/RUnlock), or ("", "") for ordinary calls.
//   - onAcquire fires at each Lock/RLock site with the locks held on
//     entry to the call (before the new lock is added).
//   - onAccess fires for every selector expression reached outside
//     mutex-operation receivers, with the current held set.
//   - onCall fires for ordinary (non-mutex-op) calls. Deferred calls and
//     go-launched calls are excluded: a defer runs at return when locks
//     may already be released, and a goroutine does not inherit the
//     spawner's holds. Go-launched function literals are walked with an
//     empty held set instead.
//
// held maps lock key to "definitely held here"; a false entry means
// released. Deferred Unlock/RUnlock pins the lock held to return.
type holdWalker struct {
	pkg       *Package
	classify  func(call *ast.CallExpr) (key, op string)
	onAcquire func(call *ast.CallExpr, key string, held map[string]bool)
	onAccess  func(sel *ast.SelectorExpr, held map[string]bool)
	onCall    func(call *ast.CallExpr, held map[string]bool)
}

// walk analyzes a function body starting from an empty held set.
func (w *holdWalker) walk(body *ast.BlockStmt) {
	w.block(body.List, map[string]bool{})
}

// block analyzes a statement list, mutating held in place. It reports
// whether control definitely leaves the list (return, panic, branch).
func (w *holdWalker) block(stmts []ast.Stmt, held map[string]bool) bool {
	for _, st := range stmts {
		if w.stmt(st, held) {
			return true
		}
	}
	return false
}

// stmt analyzes one statement; the return value mirrors block.
func (w *holdWalker) stmt(st ast.Stmt, held map[string]bool) bool {
	switch s := st.(type) {
	case *ast.BlockStmt:
		return w.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := w.block(s.Body.List, thenHeld)
		elseHeld := copyHeld(held)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceHeld(held, elseHeld)
		case elseTerm:
			replaceHeld(held, thenHeld)
		default:
			intersectHeld(held, thenHeld)
			intersectHeld(held, elseHeld)
		}
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		bodyHeld := copyHeld(held)
		w.block(s.Body.List, bodyHeld)
		if s.Post != nil {
			w.stmt(s.Post, bodyHeld)
		}
		if s.Cond == nil {
			// for{}: only a break exits; treat the tail as unreachable
			// rather than merging states we cannot track through breaks.
			return true
		}
		intersectHeld(held, bodyHeld)
		return false
	case *ast.RangeStmt:
		w.expr(s.X, held)
		bodyHeld := copyHeld(held)
		w.block(s.Body.List, bodyHeld)
		intersectHeld(held, bodyHeld)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.switchStmt(st, held)
	case *ast.DeferStmt:
		if key, op := w.callOp(s.Call); key != "" && (op == "Unlock" || op == "RUnlock") {
			return false // deferred release: held until return
		}
		// The deferred call runs at return, possibly after explicit
		// releases; walk its operands for accesses but do not report it
		// as a held-site call.
		savedCall := w.onCall
		w.onCall = nil
		w.expr(s.Call, held)
		w.onCall = savedCall
		return false
	case *ast.GoStmt:
		w.goLaunch(s.Call, held)
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, held)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.ExprStmt:
		w.expr(s.X, held)
		return isPanic(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, held)
		}
		for _, l := range s.Lhs {
			w.expr(l, held)
		}
		return false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.LabeledStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, held)
				return false
			}
			return true
		})
		return false
	default:
		return false
	}
}

// switchStmt merges switch/select clauses: held after the statement only
// if held on entry and at the end of every non-terminating clause.
func (w *holdWalker) switchStmt(st ast.Stmt, held map[string]bool) bool {
	var body *ast.BlockStmt
	switch s := st.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	for _, clause := range body.List {
		clauseHeld := copyHeld(held)
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, clauseHeld)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, clauseHeld)
			}
			stmts = c.Body
		}
		if !w.block(stmts, clauseHeld) {
			intersectHeld(held, clauseHeld)
		}
	}
	return false
}

// goLaunch handles `go f(args)`: the arguments are evaluated in the
// spawning goroutine (current held applies), but the launched body runs
// concurrently and inherits nothing — a function literal is walked with
// an empty held set, and the call itself is not reported through onCall.
func (w *holdWalker) goLaunch(call *ast.CallExpr, held map[string]bool) {
	for _, a := range call.Args {
		w.expr(a, held)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.block(lit.Body.List, map[string]bool{})
	}
}

// expr walks an expression: mutex operations update held, selector
// accesses and ordinary calls are reported through the hooks, and
// function literals are analyzed with a copy of the current state (they
// either run inline or inherit the caller's discipline).
func (w *holdWalker) expr(e ast.Expr, held map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.block(n.Body.List, copyHeld(held))
			return false
		case *ast.GoStmt:
			w.goLaunch(n.Call, held)
			return false
		case *ast.CallExpr:
			if key, op := w.callOp(n); key != "" {
				switch op {
				case "Lock", "RLock":
					if w.onAcquire != nil {
						w.onAcquire(n, key, held)
					}
					held[key] = true
				case "Unlock", "RUnlock":
					held[key] = false
				}
				return false // the x.mu selector inside is not an access
			}
			if w.onCall != nil {
				w.onCall(n, held)
			}
		case *ast.SelectorExpr:
			if w.onAccess != nil {
				w.onAccess(n, held)
			}
		}
		return true
	})
}

// callOp applies classify, tolerating a nil hook.
func (w *holdWalker) callOp(call *ast.CallExpr) (string, string) {
	if w.classify == nil {
		return "", ""
	}
	return w.classify(call)
}

// isMutexOpName reports whether name is one of the four sync mutex
// operations the walkers model.
func isMutexOpName(name string) bool {
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return true
	}
	return false
}

// mutexFieldOp recognizes calls of the shape expr.<mu>.Lock() (and the
// other three operations) where expr's type dereferences to a named
// struct owning a sync.Mutex or sync.RWMutex field <mu>. It returns the
// type-qualified label "Type.mu" and the operation — the lock identity
// used by lockorder and atomicmix, which conflates all instances of a
// type (adequate for a tree whose lock order is declared per type).
func mutexFieldOp(pkg *Package, call *ast.CallExpr) (label, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !isMutexOpName(sel.Sel.Name) {
		return "", ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj := pkg.Info.Uses[inner.Sel]
	if obj == nil || !isSyncMutexType(obj.Type()) {
		return "", ""
	}
	owner := namedOf(pkg.Info.Types[inner.X].Type)
	if owner == nil {
		return "", ""
	}
	return owner.Obj().Name() + "." + inner.Sel.Name, sel.Sel.Name
}

// isSyncMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// calleeOf resolves a call to its static *types.Func: a plain function,
// a method on a concrete type, or — unresolvable for our purposes —
// an interface method (those get no body summaries, so cross-package
// passes conservatively drop such chains). Built-ins, function values
// and literals return nil.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := pkg.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
