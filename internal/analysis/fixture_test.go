package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// expectation is one // want "regexp" comment in a fixture file.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads testdata/src/<dir> as a self-contained tree, runs the
// passes through the real driver (so suppressions apply), and checks the
// findings against the fixture's want comments: every want must be
// matched by a finding on its line, and every finding must be expected.
func runFixture(t *testing.T, dir string, passes ...Pass) {
	t.Helper()
	root := filepath.Join("testdata", "src", dir)
	pkgs, err := Load(root, "")
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, c := range fileComments(f) {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}

	diags := Analyze(pkgs, passes)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Msg) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// diagSummaries renders findings as "pass: msg" lines for exact-set
// assertions.
func diagSummaries(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s: %s", d.Pass, d.Msg))
	}
	sort.Strings(out)
	return out
}

// containsSummary reports whether any summary line contains substr.
func containsSummary(sums []string, substr string) bool {
	for _, s := range sums {
		if strings.Contains(s, substr) {
			return true
		}
	}
	return false
}
