package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Wireframe checks the shape of protocol frame structs in the wire
// packages: every integer field must be a fixed-width type (a bare int or
// uint changes size across architectures, so the same frame would encode
// differently on a robot's 32-bit SoC and the server), and composite
// literals of a frame struct must use keyed fields (a positional literal
// silently shifts values into the wrong wire slot when a field is
// inserted). A struct is a frame struct if its name ends in "Frame" or
// "Msg", or if its doc comment carries a roglint:wire marker.
type Wireframe struct {
	// Scoped lists package-path suffixes the pass applies to.
	Scoped []string
}

// NewWireframe returns the pass scoped to the wire packages.
func NewWireframe() *Wireframe {
	return &Wireframe{Scoped: []string{"internal/livenet", "internal/transport", "internal/lossnet", "internal/durable", "internal/serve"}}
}

// Name implements Pass.
func (*Wireframe) Name() string { return "wireframe" }

// Doc implements Pass.
func (*Wireframe) Doc() string {
	return "wire frame structs use fixed-width integers and keyed literals"
}

// wireMarker in a struct's doc comment opts it into the check regardless
// of its name.
const wireMarker = "roglint:wire"

// Run implements Pass.
func (wf *Wireframe) Run(pkg *Package) []Diagnostic {
	inScope := false
	for _, suffix := range wf.Scoped {
		if pathMatches(pkg.Path, suffix) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var diags []Diagnostic
	wire := map[types.Object]bool{}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || !isWireStruct(ts, gd) {
					continue
				}
				if obj := pkg.Info.Defs[ts.Name]; obj != nil {
					wire[obj] = true
				}
				for _, fld := range st.Fields.List {
					diags = append(diags, wf.checkField(pkg, ts.Name.Name, fld)...)
				}
			}
		}
	}
	if len(wire) == 0 {
		return diags
	}

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			t := pkg.Info.Types[lit].Type
			if t == nil {
				return true
			}
			named, ok := derefNamed(t)
			if !ok || !wire[named.Obj()] {
				return true
			}
			for _, elt := range lit.Elts {
				if _, keyed := elt.(*ast.KeyValueExpr); !keyed {
					diags = append(diags, Diagnostic{
						Pos:  pkg.Fset.Position(lit.Pos()),
						Pass: wf.Name(),
						Msg: fmt.Sprintf("wire struct %s must be constructed with keyed fields",
							named.Obj().Name()),
					})
					break
				}
			}
			return true
		})
	}
	return diags
}

// checkField flags any field whose type resolves (through arrays and
// slices) to a platform-width integer.
func (wf *Wireframe) checkField(pkg *Package, structName string, fld *ast.Field) []Diagnostic {
	t := pkg.Info.Types[fld.Type].Type
	if t == nil || !hasBareInt(t) {
		return nil
	}
	names := "embedded field"
	if len(fld.Names) > 0 {
		var ns []string
		for _, n := range fld.Names {
			ns = append(ns, n.Name)
		}
		names = strings.Join(ns, ", ")
	}
	return []Diagnostic{{
		Pos:  pkg.Fset.Position(fld.Pos()),
		Pass: wf.Name(),
		Msg: fmt.Sprintf("wire struct %s field %s uses a platform-width integer; use a fixed-width type (int32, uint64, ...)",
			structName, names),
	}}
}

// isWireStruct reports whether the type spec is a protocol frame struct:
// marker comment or Frame/Msg name suffix.
func isWireStruct(ts *ast.TypeSpec, gd *ast.GenDecl) bool {
	name := ts.Name.Name
	if strings.HasSuffix(name, "Frame") || strings.HasSuffix(name, "Msg") ||
		strings.HasSuffix(name, "frame") || strings.HasSuffix(name, "msg") {
		return true
	}
	for _, cg := range []*ast.CommentGroup{ts.Doc, ts.Comment, gd.Doc} {
		if cg == nil {
			continue
		}
		// CommentGroup.Text strips directive comments, so scan raw.
		for _, c := range cg.List {
			if strings.Contains(c.Text, wireMarker) {
				return true
			}
		}
	}
	return false
}

// hasBareInt reports whether t contains a platform-width integer,
// looking through named types, arrays and slices.
func hasBareInt(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int, types.Uint, types.Uintptr:
			return true
		}
	case *types.Array:
		return hasBareInt(u.Elem())
	case *types.Slice:
		return hasBareInt(u.Elem())
	}
	return false
}

// derefNamed unwraps pointers to reach a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
