package harness

import (
	"strings"
	"testing"
)

// TestEveryExperimentRunsAtTinyScale executes the entire registry at a
// reduced scale — the same code paths the paper-scale runs take, end to
// end. Skipped under -short.
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep skipped in -short mode")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(tinyScale)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(out) < 80 {
				t.Fatalf("%s: suspiciously short report:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "==") {
				t.Fatalf("%s: missing title banner:\n%s", e.ID, out)
			}
		})
	}
}
