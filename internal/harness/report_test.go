package harness

import (
	"strings"
	"testing"

	"rog/internal/core"
	"rog/internal/metrics"
)

func fakeResult(strategy core.Strategy, threshold int, values []float64, energyStep float64) *core.Result {
	r := &core.Result{Strategy: strategy, Threshold: threshold}
	r.Series.Name = "fake"
	for i, v := range values {
		r.Series.Add(metrics.Point{
			Iter:   (i + 1) * 10,
			Time:   float64(i+1) * 60,
			Energy: float64(i+1) * energyStep,
			Value:  v,
		})
	}
	r.FinalValue = values[len(values)-1]
	r.Iterations = len(values) * 10
	r.TotalJoules = float64(len(values)) * energyStep
	r.Composition = metrics.Composition{Compute: 2, Comm: 1, Stall: 1}
	r.StallFrac = 0.25
	return r
}

func TestEnergyTableCommonTarget(t *testing.T) {
	// System A peaks at 0.7, B at 0.6 → common target 0.6. A reaches 0.6
	// at its second checkpoint (energy 200), B at its last (energy 300).
	a := fakeResult(core.ROG, 4, []float64{0.5, 0.65, 0.7}, 100)
	b := fakeResult(core.BSP, 0, []float64{0.4, 0.5, 0.6}, 100)
	out := EnergyTable([]*core.Result{a, b}, true)
	if !strings.Contains(out, "0.6000") {
		t.Fatalf("target not 0.6:\n%s", out)
	}
	if !strings.Contains(out, "200") || !strings.Contains(out, "300") {
		t.Fatalf("energy-to-target values missing:\n%s", out)
	}
}

func TestEnergyTableDecreasingMetric(t *testing.T) {
	a := fakeResult(core.ROG, 4, []float64{2.0, 0.8, 0.3}, 100)
	b := fakeResult(core.SSP, 20, []float64{2.0, 1.2, 0.5}, 100)
	out := EnergyTable([]*core.Result{a, b}, false)
	// Common target is the loosest best: 0.5 (b's best). a reaches ≤0.5
	// at its third checkpoint.
	if !strings.Contains(out, "error = 0.5000") {
		t.Fatalf("decreasing target wrong:\n%s", out)
	}
}

func TestEnergyTableNotReached(t *testing.T) {
	// A series that never reaches the target renders "not reached".
	a := fakeResult(core.ROG, 4, []float64{0.5, 0.9}, 100)
	b := fakeResult(core.BSP, 0, []float64{0.1, 0.2}, 100)
	// Common target = 0.2 (B's best): both reach it. Use Summary instead
	// to confirm it does not crash with disjoint ranges.
	if s := Summary([]*core.Result{a, b}, true); !strings.Contains(s, "ROG") {
		t.Fatalf("summary: %s", s)
	}
}

func TestSummaryContainsGainAndEnergy(t *testing.T) {
	rog := fakeResult(core.ROG, 4, []float64{0.5, 0.7, 0.8}, 50)
	bsp := fakeResult(core.BSP, 0, []float64{0.4, 0.6, 0.7}, 100)
	s := Summary([]*core.Result{rog, bsp}, true)
	if !strings.Contains(s, "gain") || !strings.Contains(s, "energy") {
		t.Fatalf("summary incomplete: %s", s)
	}
	if Summary([]*core.Result{bsp}, true) != "" {
		t.Fatal("summary without ROG should be empty")
	}
}

func TestMicroTableStride(t *testing.T) {
	samples := make([]core.MicroSample, 100)
	for i := range samples {
		samples[i] = core.MicroSample{Time: float64(i), LinkMbps: 50, TxRate: 0.5, Staleness: 1}
	}
	out := MicroTable(samples, 10)
	lines := strings.Count(out, "\n")
	if lines > 14 { // header + separator + ~10 rows
		t.Fatalf("stride failed, %d lines:\n%s", lines, out)
	}
	full := MicroTable(samples[:5], 0)
	if strings.Count(full, "\n") != 7 {
		t.Fatalf("unstrided table wrong:\n%s", full)
	}
}

func TestCompositionTableColumns(t *testing.T) {
	r := fakeResult(core.SSP, 4, []float64{0.5}, 10)
	out := CompositionTable([]*core.Result{r})
	for _, col := range []string{"compute", "comm", "stall", "SSP-4", "25.0%"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing %q:\n%s", col, out)
		}
	}
}

func TestSeriesTablesHandleShortRuns(t *testing.T) {
	r := fakeResult(core.BSP, 0, []float64{0.5}, 10)
	if SeriesByTime([]*core.Result{r}, 30) == "" {
		t.Fatal("empty time series table")
	}
	if SeriesByIteration([]*core.Result{r}, 5) == "" {
		t.Fatal("empty iteration series table")
	}
	if SeriesByTime(nil, 30) != "" || SeriesByIteration(nil, 5) != "" {
		t.Fatal("nil results should render empty")
	}
}
