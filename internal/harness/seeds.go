package harness

import (
	"fmt"
	"io"
	"math"

	"rog/internal/core"
	"rog/internal/metrics"
)

// SeedSummary aggregates one system's results across experiment seeds —
// the cheap way to separate a real effect from run-to-run noise.
type SeedSummary struct {
	Label      string
	Seeds      int
	MeanFinal  float64
	StdFinal   float64
	MeanStall  float64 // mean stall fraction
	MeanIters  float64
	MeanJoules float64
}

// RunEndToEndSeeds repeats an end-to-end comparison across seeds and
// aggregates per system. The Systems and everything else in o are held
// fixed; o.Seed is overridden by each seed in turn.
func RunEndToEndSeeds(o EndToEndOptions, seeds []uint64) ([]SeedSummary, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("harness: no seeds given")
	}
	if len(o.Systems) == 0 {
		o.Systems = PaperSystems()
	}
	sums := make([]SeedSummary, len(o.Systems))
	finals := make([][]float64, len(o.Systems))
	for _, seed := range seeds {
		oo := o
		oo.Seed = seed
		results, err := RunEndToEnd(oo)
		if err != nil {
			return nil, err
		}
		for i, r := range results {
			sums[i].Label = r.Label()
			sums[i].Seeds++
			sums[i].MeanFinal += r.FinalValue
			sums[i].MeanStall += r.StallFrac
			sums[i].MeanIters += float64(r.Iterations)
			sums[i].MeanJoules += r.TotalJoules
			finals[i] = append(finals[i], r.FinalValue)
		}
	}
	n := float64(len(seeds))
	for i := range sums {
		sums[i].MeanFinal /= n
		sums[i].MeanStall /= n
		sums[i].MeanIters /= n
		sums[i].MeanJoules /= n
		var varAcc float64
		for _, v := range finals[i] {
			d := v - sums[i].MeanFinal
			varAcc += d * d
		}
		sums[i].StdFinal = math.Sqrt(varAcc / n)
	}
	return sums, nil
}

// SeedSummaryTable renders the aggregate as an aligned table.
func SeedSummaryTable(sums []SeedSummary) string {
	rows := make([][]string, 0, len(sums))
	for _, s := range sums {
		rows = append(rows, []string{
			s.Label,
			fmt.Sprintf("%.4f", s.MeanFinal),
			fmt.Sprintf("%.4f", s.StdFinal),
			fmt.Sprintf("%.1f%%", 100*s.MeanStall),
			fmt.Sprintf("%.0f", s.MeanIters),
			fmt.Sprintf("%.0f", s.MeanJoules),
		})
	}
	return metrics.FormatTable(
		[]string{"system", "mean final", "std", "mean stall", "mean iters", "mean J"},
		rows,
	)
}

// WriteSeriesCSV streams every result's checkpoint series as long-format
// CSV: system,iter,time_s,energy_j,value — ready for any plotting tool.
func WriteSeriesCSV(w io.Writer, results []*core.Result) error {
	if _, err := fmt.Fprintln(w, "system,iter,time_s,energy_j,value"); err != nil {
		return err
	}
	for _, r := range results {
		for _, p := range r.Series.Points {
			if _, err := fmt.Fprintf(w, "%s,%d,%.3f,%.3f,%.6f\n",
				r.Label(), p.Iter, p.Time, p.Energy, p.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
