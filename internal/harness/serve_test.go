package harness

import (
	"bytes"
	"strings"
	"testing"

	"rog/internal/obs"
	"rog/internal/simnet"
)

func TestServeCellBoundedStaleness(t *testing.T) {
	run, err := runServeCell(serveCell{clients: 4, window: 0.05, bound: 2}, 20, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.served == 0 {
		t.Fatal("cell served nothing")
	}
	if run.maxStale > 2 {
		t.Fatalf("observed staleness %d over bound 2", run.maxStale)
	}
	if run.publishes < run.rounds {
		t.Fatalf("%d publishes for %d training rounds", run.publishes, run.rounds)
	}
	if run.quantile(0.99) < run.quantile(0.50) {
		t.Fatalf("quantiles unordered: p50 %g > p99 %g", run.quantile(0.50), run.quantile(0.99))
	}
}

func TestServeCellWaitForFreshParks(t *testing.T) {
	run, err := runServeCell(serveCell{clients: 2, window: 0, bound: 0, lead: 1}, 20, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.stalls == 0 {
		t.Fatal("wait-for-fresh clients never hit the read gate")
	}
	if run.stalls != int64(len(run.latencies)) {
		t.Fatalf("%d stalls for %d requests: every lead-1 request should park", run.stalls, len(run.latencies))
	}
}

// TestServeTrainingUnperturbed is the observer-effect gate: attaching the
// full serving tier (publisher, server, clients) to a training run must
// leave the training side bit-identical — same state digest, same traced
// training events — as the same-seed train-only run. The RowSink absorbs
// under the shard lock but schedules nothing and writes no training state,
// so virtual time and merge order cannot shift.
func TestServeTrainingUnperturbed(t *testing.T) {
	const seconds, seed = 20, 9

	// Train-only run, traced.
	var baseBuf bytes.Buffer
	baseK := simnet.NewKernel()
	baseTr := obs.NewJSONLTracer(&baseBuf)
	baseProbe := obs.NewProbe(baseTr, nil, baseK.Now)
	base, err := newServeTraining(baseK, seconds, seed, baseProbe)
	if err != nil {
		t.Fatal(err)
	}
	baseK.RunUntilIdle(1_000_000)
	if err := baseTr.Close(); err != nil {
		t.Fatal(err)
	}

	// Train+serve run with the same seed, traced through the same probe.
	var servBuf bytes.Buffer
	servTr := obs.NewJSONLTracer(&servBuf)
	run, err := runServeCell(serveCell{clients: 4, window: 0.05, bound: 1}, seconds, seed, servTr)
	if err != nil {
		t.Fatal(err)
	}
	if run.served == 0 {
		t.Fatal("serving side did nothing; the non-perturbation claim would be vacuous")
	}
	if err := servTr.Close(); err != nil {
		t.Fatal(err)
	}

	// The serving tier must not have moved a single training bit. The
	// digests cover every stamped version, RowIter entry and accumulated
	// averaged row.
	if base.digest() != run.digest {
		t.Fatalf("training state diverged: train-only %x, train+serve %x", base.digest(), run.digest)
	}

	// And the training slice of the event stream must be byte-identical.
	baseEvents := trainingEvents(t, baseBuf.String())
	servEvents := trainingEvents(t, servBuf.String())
	if baseEvents != servEvents {
		t.Fatalf("traced training events diverged:\ntrain-only %d bytes\ntrain+serve %d bytes",
			len(baseEvents), len(servEvents))
	}
	if !strings.Contains(servBuf.String(), "SnapshotPublish") {
		t.Fatal("train+serve trace carries no serving events")
	}
}

// trainingEvents strips the serving-tier kinds from a JSONL trace,
// leaving the training stream for byte comparison.
func trainingEvents(t *testing.T, raw string) string {
	t.Helper()
	var b strings.Builder
	for _, line := range strings.Split(raw, "\n") {
		if line == "" {
			continue
		}
		if strings.Contains(line, "SnapshotPublish") || strings.Contains(line, "Request") ||
			strings.Contains(line, "ReadStall") {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestServeJSONReport(t *testing.T) {
	rep, err := runServeJSON(Scale{Name: "tiny", VirtualSeconds: 90})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "serve" || len(rep.Systems) != len(serveCells()) {
		t.Fatalf("report %q with %d systems, want serve/%d", rep.Experiment, len(rep.Systems), len(serveCells()))
	}
	for _, sys := range rep.Systems {
		if sys.Serve == nil {
			t.Fatalf("system %s has no serve cell report", sys.Label)
		}
		if sys.Serve.Requests == 0 {
			t.Fatalf("system %s served nothing", sys.Label)
		}
		if sys.Serve.MaxObservedStaleness > sys.Serve.StalenessBound {
			t.Fatalf("system %s: staleness %d over bound %d",
				sys.Label, sys.Serve.MaxObservedStaleness, sys.Serve.StalenessBound)
		}
		if sys.FinalValue != sys.Serve.P95Seconds {
			t.Fatalf("system %s: final value %g != p95 %g", sys.Label, sys.FinalValue, sys.Serve.P95Seconds)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"serve"`, `"throughput_rps"`, `"p95_seconds"`, `"max_observed_staleness"`} {
		if !strings.Contains(buf.String(), key) {
			t.Fatalf("JSON report missing %s", key)
		}
	}
}

func TestJSONExperimentIDsCoverRunners(t *testing.T) {
	ids := JSONExperimentIDs()
	if len(ids) != len(jsonRunners()) {
		t.Fatalf("%d ids for %d runners", len(ids), len(jsonRunners()))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"fig1", "fleet", "serve", "ext-recovery"} {
		if !seen[want] {
			t.Fatalf("id %q missing from %v", want, ids)
		}
	}
	if _, err := RunJSONReport("nope", Quick); err == nil ||
		!strings.Contains(err.Error(), "serve") {
		t.Fatalf("unknown-id error should list the exportable ids, got: %v", err)
	}
}
