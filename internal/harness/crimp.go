package harness

import (
	"rog/internal/core"
	"rog/internal/dataset"
	"rog/internal/nn"
	"rog/internal/tensor"
)

// CRIMPOptions configures the coordinated robotic implicit mapping and
// positioning workload (paper Sec. VI: NICE-SLAM on ScanNet; here a
// coordinate MLP on a synthetic scene).
type CRIMPOptions struct {
	Workers    int
	BatchSize  int
	Seed       uint64
	ObsPerBot  int // trajectory length per robot
	TestObs    int // held-out observations for trajectory error
	Hidden     []int
	EncLevels  int
	RaysPerObs int
	// UseGridMap swaps the Fourier-feature MLP for the NICE-SLAM-faithful
	// representation: a learned feature grid whose rows are map cells,
	// decoded by a small MLP. Used by the ext-gridmap experiment.
	UseGridMap bool
	GridSize   int
}

// DefaultCRIMPOptions mirrors the paper's CRIMP setup at reduced scale.
func DefaultCRIMPOptions() CRIMPOptions {
	return CRIMPOptions{
		Workers:    4,
		BatchSize:  32,
		Seed:       2,
		ObsPerBot:  120,
		TestObs:    8,
		Hidden:     []int{64, 64},
		EncLevels:  6,
		RaysPerObs: 24,
	}
}

// CRIMPWorkload implements core.Workload: each robot contributes camera
// observations along its own trajectory; the team jointly trains an
// implicit map and is scored by trajectory (localization) error — lower is
// better.
type CRIMPWorkload struct {
	models  []*nn.Sequential
	obs     [][]dataset.Observation
	rngs    []*tensor.RNG
	testObs []dataset.Observation
	batch   int
	locCfg  dataset.LocalizeConfig
	seed    uint64
}

var _ core.Workload = (*CRIMPWorkload)(nil)

// NewCRIMP builds the workload: one shared scene, one trajectory per
// robot (all anchored at the shared origin, the paper's shared starting
// image), identical randomly initialized map replicas.
func NewCRIMP(opts CRIMPOptions) *CRIMPWorkload {
	scene := dataset.NewScene(8, 4, opts.Seed)
	w := &CRIMPWorkload{
		batch:  opts.BatchSize,
		locCfg: dataset.DefaultLocalizeConfig(),
		seed:   opts.Seed,
	}
	newModel := func(r *tensor.RNG) *nn.Sequential {
		if opts.UseGridMap {
			g := opts.GridSize
			if g <= 0 {
				g = 24
			}
			return nn.NewGridMap(g, 8, []int{16}, 1, r)
		}
		return nn.NewImplicitMapMLP(opts.EncLevels, opts.Hidden, 1, r)
	}
	proto := newModel(tensor.NewRNG(opts.Seed + 5))
	for i := 0; i < opts.Workers; i++ {
		cfg := dataset.CRIMPConfig{
			Scene:       scene,
			RaysPerObs:  opts.RaysPerObs,
			SensorNoise: 0.02,
			Seed:        opts.Seed + uint64(i)*101 + 7,
		}
		w.obs = append(w.obs, dataset.Trajectory(cfg, opts.ObsPerBot))
		m := newModel(tensor.NewRNG(1))
		m.CopyParamsFrom(proto)
		w.models = append(w.models, m)
		w.rngs = append(w.rngs, tensor.NewRNG(opts.Seed+uint64(i)*13+3))
	}
	testCfg := dataset.CRIMPConfig{
		Scene:       scene,
		RaysPerObs:  opts.RaysPerObs,
		SensorNoise: 0,
		Seed:        opts.Seed + 999,
	}
	w.testObs = dataset.Trajectory(testCfg, opts.TestObs)
	return w
}

// Model returns worker w's map replica.
func (c *CRIMPWorkload) Model(w int) *nn.Sequential { return c.models[w] }

// ComputeGradients regresses the implicit map on a batch of worker w's
// observations.
func (c *CRIMPWorkload) ComputeGradients(w int) float64 {
	x, y := dataset.MapBatch(c.obs[w], c.rngs[w], c.batch)
	pred := c.models[w].Forward(x)
	loss, g := nn.MSE(pred, y)
	c.models[w].Backward(g)
	return loss
}

// fieldAdapter lets a Sequential act as a dataset.MapField.
type fieldAdapter struct{ m *nn.Sequential }

func (f fieldAdapter) Eval(pts *tensor.Matrix) *tensor.Matrix { return f.m.Forward(pts) }

// Evaluate returns the mean trajectory error of worker 0's map on held-out
// poses — the paper's positioning metric (lower is better). Worker 0 is
// representative: RSP keeps replicas within the staleness bound.
func (c *CRIMPWorkload) Evaluate() float64 {
	return dataset.TrajectoryError(fieldAdapter{c.models[0]}, c.testObs, c.locCfg, c.seed+4242)
}

// Increasing reports that trajectory error shrinks as training improves.
func (c *CRIMPWorkload) Increasing() bool { return false }
