package harness

import (
	"math"
	"strings"
	"testing"

	"rog/internal/core"
	"rog/internal/trace"
)

// tinyScale keeps unit-test experiments fast.
var tinyScale = Scale{
	Name:            "tiny",
	VirtualSeconds:  90,
	CheckpointEvery: 5,
	PretrainIters:   150,
	ObsPerBot:       40,
	TestObs:         4,
	MicroSeconds:    60,
}

func tinyCRUDAOptions() CRUDAOptions {
	o := DefaultCRUDAOptions()
	o.PretrainIters = 150
	return o
}

func TestCRUDAWorkloadStory(t *testing.T) {
	wl := NewCRUDA(tinyCRUDAOptions())
	// The paper's setup: pretrained accuracy is high on the clean domain
	// and substantially degraded on the shifted one.
	if wl.PretrainCleanAcc < 0.5 {
		t.Fatalf("pretrain clean acc %.3f too low", wl.PretrainCleanAcc)
	}
	if wl.PretrainNoisyAcc >= wl.PretrainCleanAcc-0.05 {
		t.Fatalf("domain shift did not degrade: clean %.3f noisy %.3f",
			wl.PretrainCleanAcc, wl.PretrainNoisyAcc)
	}
	// Evaluate starts at the degraded level.
	if e := wl.Evaluate(); math.Abs(e-wl.PretrainNoisyAcc) > 1e-9 {
		t.Fatalf("Evaluate %.3f != pretrain noisy %.3f", e, wl.PretrainNoisyAcc)
	}
	if !wl.Increasing() {
		t.Fatal("CRUDA metric must be increasing")
	}
}

func TestCRUDAReplicasIdentical(t *testing.T) {
	wl := NewCRUDA(tinyCRUDAOptions())
	p0 := wl.Model(0).Params()
	for w := 1; w < 4; w++ {
		pw := wl.Model(w).Params()
		for i := range p0 {
			if !p0[i].Equal(pw[i]) {
				t.Fatalf("replica %d differs at param %d", w, i)
			}
		}
	}
}

func TestCRUDAGradientsFlow(t *testing.T) {
	wl := NewCRUDA(tinyCRUDAOptions())
	loss := wl.ComputeGradients(0)
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
	var sum float64
	for _, g := range wl.Model(0).Grads() {
		sum += g.SumAbs()
	}
	if sum == 0 {
		t.Fatal("no gradients accumulated")
	}
}

func TestCRIMPWorkloadBasics(t *testing.T) {
	o := DefaultCRIMPOptions()
	o.ObsPerBot = 30
	o.TestObs = 4
	wl := NewCRIMP(o)
	if wl.Increasing() {
		t.Fatal("CRIMP metric must be decreasing (error)")
	}
	before := wl.Evaluate()
	if before <= 0 {
		t.Fatalf("initial trajectory error %v", before)
	}
	if loss := wl.ComputeGradients(1); loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
	p0, p1 := wl.Model(0).Params(), wl.Model(1).Params()
	for i := range p0 {
		if !p0[i].Equal(p1[i]) {
			t.Fatal("CRIMP replicas differ initially")
		}
	}
}

func TestRunEndToEndSmoke(t *testing.T) {
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "cruda",
		Env:      trace.Outdoor,
		Scale:    tinyScale,
		Systems:  []SystemSpec{{core.BSP, 0}, {core.ROG, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d", len(results))
	}
	bsp, rog := results[0], results[1]
	if bsp.Iterations == 0 || rog.Iterations == 0 {
		t.Fatal("no iterations")
	}
	// The headline claim at any scale: ROG completes more iterations in
	// the same outdoor time budget (higher training throughput).
	if rog.Iterations <= bsp.Iterations {
		t.Fatalf("ROG throughput %d <= BSP %d", rog.Iterations, bsp.Iterations)
	}
	// Renderers produce non-empty aligned tables.
	for name, s := range map[string]string{
		"composition": CompositionTable(results),
		"byTime":      SeriesByTime(results, 30),
		"byIter":      SeriesByIteration(results, 5),
		"energy":      EnergyTable(results, true),
	} {
		if !strings.Contains(s, "ROG-4") || !strings.Contains(s, "BSP") {
			t.Fatalf("%s table missing systems:\n%s", name, s)
		}
	}
	if Summary(results, true) == "" {
		t.Fatal("empty summary")
	}
}

func TestSystemSpecLabels(t *testing.T) {
	if (SystemSpec{core.BSP, 0}).Label() != "BSP" {
		t.Fatal("BSP label")
	}
	if (SystemSpec{core.ROG, 20}).Label() != "ROG-20" {
		t.Fatal("ROG label")
	}
	if len(PaperSystems()) != 6 || len(SensitivitySystems()) != 3 {
		t.Fatal("system lineups wrong")
	}
}

func TestRegistryCompleteness(t *testing.T) {
	reg := Registry()
	want := []string{
		"fig1", "fig3", "fig6", "fig7", "fig8", "fig9batch", "fig9workers",
		"fig10", "table1", "table2", "table3",
		"ablation-granularity", "ablation-importance", "ablation-speculative",
		"churn",
	}
	// +8: ext-pipeline, ext-dssp, ext-convmlp, ext-gridmap, ext-loss,
	// ext-recovery, fleet, serve
	if len(reg) != len(want)+8 {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want)+8)
	}
	for _, id := range []string{"ext-loss", "ext-recovery", "fleet", "serve"} {
		if _, ok := Find(id); !ok {
			t.Fatalf("experiment %q missing", id)
		}
	}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Fatalf("experiment %q missing", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("found nonexistent experiment")
	}
}

func TestFastExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig3", "table1", "table2"} {
		e, _ := Find(id)
		out, err := e.Run(tinyScale)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) < 50 {
			t.Fatalf("%s: suspiciously short output:\n%s", id, out)
		}
	}
}

func TestChurnExperiment(t *testing.T) {
	e, ok := Find("churn")
	if !ok {
		t.Fatal("churn experiment not registered")
	}
	out, err := e.Run(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"disconnects", "reconnects", "rows resynced", "detach-stall"} {
		if !strings.Contains(out, col) {
			t.Fatalf("churn report missing %q:\n%s", col, out)
		}
	}
	if !strings.Contains(out, "ROG-4") || !strings.Contains(out, "BSP") {
		t.Fatalf("churn report missing systems:\n%s", out)
	}
}

func TestFig8MicroExperiment(t *testing.T) {
	e, _ := Find("fig8")
	out, err := e.Run(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bandwidth") || !strings.Contains(out, "tx rate") {
		t.Fatalf("fig8 output missing columns:\n%s", out)
	}
}

func TestParadigmConfig(t *testing.T) {
	c, b := paradigmConfig("cruda")
	if c != 2.64 || b != 2.1e6 {
		t.Fatal("cruda constants")
	}
	c, b = paradigmConfig("crimp")
	if c != 1.4 || b != 0.76e6 {
		t.Fatal("crimp constants")
	}
}
