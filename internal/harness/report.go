package harness

import (
	"fmt"
	"math"
	"strings"

	"rog/internal/core"
	"rog/internal/metrics"
)

// CompositionTable renders the average time composition of a training
// iteration per system — the bar charts of Figs. 1a/6a/7a/9e/9f as rows.
func CompositionTable(results []*core.Result) string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		c := r.Composition
		rows = append(rows, []string{
			r.Label(),
			fmt.Sprintf("%.2f", c.Compute),
			fmt.Sprintf("%.2f", c.Comm),
			fmt.Sprintf("%.2f", c.Stall),
			fmt.Sprintf("%.2f", c.Total()),
			fmt.Sprintf("%.1f%%", 100*r.StallFrac),
		})
	}
	return metrics.FormatTable(
		[]string{"system", "compute(s)", "comm(s)", "stall(s)", "iter total(s)", "stall share"},
		rows,
	)
}

// SeriesByTime renders quality against wall-clock time (Figs. 1c/6c/7c):
// one column per system, one row per time step.
func SeriesByTime(results []*core.Result, step float64) string {
	if len(results) == 0 {
		return ""
	}
	end := 0.0
	for _, r := range results {
		if t := r.Series.Last().Time; t > end {
			end = t
		}
	}
	headers := []string{"time(s)"}
	for _, r := range results {
		headers = append(headers, r.Label())
	}
	var rows [][]string
	for t := step; t <= end+1e-9; t += step {
		row := []string{fmt.Sprintf("%.0f", t)}
		for _, r := range results {
			row = append(row, fmtVal(r.Series.ValueAt(t)))
		}
		rows = append(rows, row)
	}
	return metrics.FormatTable(headers, rows)
}

// SeriesByIteration renders quality against iteration count (statistical
// efficiency, Figs. 1b/6b/7b).
func SeriesByIteration(results []*core.Result, step int) string {
	if len(results) == 0 {
		return ""
	}
	end := 0
	for _, r := range results {
		if it := r.Series.Last().Iter; it > end {
			end = it
		}
	}
	headers := []string{"iteration"}
	for _, r := range results {
		headers = append(headers, r.Label())
	}
	var rows [][]string
	for it := step; it <= end; it += step {
		row := []string{fmt.Sprintf("%d", it)}
		for _, r := range results {
			row = append(row, fmtVal(r.Series.ValueAtIter(it)))
		}
		rows = append(rows, row)
	}
	return metrics.FormatTable(headers, rows)
}

// EnergyTable renders the energy each system needs to reach a common
// quality target (Figs. 1d/6d/7d), plus totals. The target defaults to the
// most conservative final value across systems so that every system can
// reach it.
func EnergyTable(results []*core.Result, increasing bool) string {
	target := commonTarget(results, increasing)
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		j, ok := r.Series.EnergyToReach(target, increasing)
		cell := "not reached"
		if ok {
			cell = fmt.Sprintf("%.0f", j)
		}
		rows = append(rows, []string{
			r.Label(),
			fmt.Sprintf("%.4f", r.FinalValue),
			cell,
			fmt.Sprintf("%.0f", r.TotalJoules),
			fmt.Sprintf("%d", r.Iterations),
		})
	}
	title := fmt.Sprintf("energy to reach %s = %.4f\n", metricName(increasing), target)
	return title + metrics.FormatTable(
		[]string{"system", "final", "J to target", "total J", "iterations"},
		rows,
	)
}

// commonTarget picks the strictest quality level every system attained at
// some checkpoint (noise-robust: best-over-series, not final value).
func commonTarget(results []*core.Result, increasing bool) float64 {
	// Per system, the best value it ever checkpointed; the common target is
	// the loosest of those bests, so every system can reach it.
	target := math.Inf(1) // min over bests for an increasing metric
	if !increasing {
		target = math.Inf(-1) // max over bests for a decreasing metric
	}
	for _, r := range results {
		best := math.Inf(-1)
		if !increasing {
			best = math.Inf(1)
		}
		for _, p := range r.Series.Points {
			if increasing && p.Value > best || !increasing && p.Value < best {
				best = p.Value
			}
		}
		if increasing && best < target || !increasing && best > target {
			target = best
		}
	}
	return target
}

func metricName(increasing bool) string {
	if increasing {
		return "accuracy"
	}
	return "error"
}

func fmtVal(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4f", v)
}

// MicroTable renders Fig. 8's micro-event samples: bandwidth vs ROG's
// chosen transmission rate vs accumulated staleness.
func MicroTable(samples []core.MicroSample, maxRows int) string {
	rows := make([][]string, 0, len(samples))
	stride := 1
	if maxRows > 0 && len(samples) > maxRows {
		stride = (len(samples) + maxRows - 1) / maxRows
	}
	for i := 0; i < len(samples); i += stride {
		s := samples[i]
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", s.Time),
			fmt.Sprintf("%.1f", s.LinkMbps),
			fmt.Sprintf("%.0f%%", 100*s.TxRate),
			fmt.Sprintf("%d", s.Staleness),
		})
	}
	return metrics.FormatTable([]string{"time(s)", "bandwidth(Mbps)", "tx rate", "staleness"}, rows)
}

// ChurnTable renders the membership-churn counters of a fault-injected
// comparison: how each system experienced the same crash/rejoin schedule.
func ChurnTable(results []*core.Result) string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		c := r.Churn
		rows = append(rows, []string{
			r.Label(),
			fmt.Sprintf("%d", c.Disconnects),
			fmt.Sprintf("%d", c.Reconnects),
			fmt.Sprintf("%d", c.RowsResynced),
			fmt.Sprintf("%.1f", c.DetachStall),
			fmt.Sprintf("%d", r.Iterations),
			fmt.Sprintf("%.4f", r.FinalValue),
		})
	}
	return metrics.FormatTable(
		[]string{"system", "disconnects", "reconnects", "rows resynced", "detach-stall(s)", "iterations", "final"},
		rows,
	)
}

// LossTable summarizes loss-channel outcomes per system: best-effort rows
// folded back into local accumulators, reliable rows retransmitted and the
// repeat bytes they cost, against what the run still achieved. labels names
// each result (the same strategy can appear under different reliability
// modes).
func LossTable(labels []string, results []*core.Result) string {
	rows := make([][]string, 0, len(results))
	for i, r := range results {
		l := r.Loss
		rows = append(rows, []string{
			labels[i],
			fmt.Sprintf("%d", l.RowsLostFolded),
			fmt.Sprintf("%d", l.RowsRetransmitted),
			fmt.Sprintf("%.0f", l.RetransmitBytes),
			fmt.Sprintf("%d", r.Iterations),
			fmt.Sprintf("%.4f", r.FinalValue),
		})
	}
	return metrics.FormatTable(
		[]string{"system", "rows folded", "rows retransmitted", "retransmit bytes", "iterations", "final"},
		rows,
	)
}

// Summary is the one-line comparative verdict printed under each figure.
func Summary(results []*core.Result, increasing bool) string {
	var rog, best *core.Result
	for _, r := range results {
		if r.Strategy == core.ROG && (rog == nil || better(r.FinalValue, rog.FinalValue, increasing)) {
			rog = r
		}
		if r.Strategy != core.ROG && (best == nil || better(r.FinalValue, best.FinalValue, increasing)) {
			best = r
		}
	}
	if rog == nil || best == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "best ROG %s=%.4f vs best baseline (%s) %.4f",
		metricName(increasing), rog.FinalValue, best.Label(), best.FinalValue)
	if increasing {
		fmt.Fprintf(&b, " (gain %+.2f pts)", 100*(rog.FinalValue-best.FinalValue))
	} else {
		fmt.Fprintf(&b, " (reduction %+.1f%%)", 100*(best.FinalValue-rog.FinalValue)/math.Max(best.FinalValue, 1e-9))
	}
	target := commonTarget(results, increasing)
	if jr, ok := rog.Series.EnergyToReach(target, increasing); ok {
		if jb, ok2 := best.Series.EnergyToReach(target, increasing); ok2 && jb > 0 {
			fmt.Fprintf(&b, "; energy to common target: ROG %.0fJ vs %.0fJ (%.1f%% saved)",
				jr, jb, 100*(jb-jr)/jb)
		}
	}
	return b.String()
}

func better(a, b float64, increasing bool) bool {
	if increasing {
		return a > b
	}
	return a < b
}
