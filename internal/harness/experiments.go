package harness

import (
	"fmt"

	"rog/internal/core"
	"rog/internal/durable"
	"rog/internal/lossnet"
	"rog/internal/obs"
	"rog/internal/simnet"
	"rog/internal/trace"
)

// Scale sizes an experiment. Quick keeps benchmark runs in seconds of wall
// clock; Full matches the paper's 60–150 minute training budgets (virtual
// time — still fast, but with full checkpoint resolution).
type Scale struct {
	Name            string
	VirtualSeconds  float64 // training budget per system (virtual)
	CheckpointEvery int
	PretrainIters   int // CRUDA pretraining steps
	ObsPerBot       int // CRIMP trajectory length
	TestObs         int // CRIMP held-out poses
	MicroSeconds    float64
}

// Quick is the benchmark scale: the same experiments at ~1/10 duration.
var Quick = Scale{
	Name:            "quick",
	VirtualSeconds:  420,
	CheckpointEvery: 8,
	PretrainIters:   300,
	ObsPerBot:       80,
	TestObs:         6,
	MicroSeconds:    240,
}

// Full is the paper scale: 60 minutes of virtual training per system.
var Full = Scale{
	Name:            "full",
	VirtualSeconds:  3600,
	CheckpointEvery: 25,
	PretrainIters:   500,
	ObsPerBot:       120,
	TestObs:         8,
	MicroSeconds:    240,
}

// SystemSpec identifies one compared system.
type SystemSpec struct {
	Strategy  core.Strategy
	Threshold int
}

// Label renders "SSP-4" style names.
func (s SystemSpec) Label() string {
	if s.Strategy == core.BSP || s.Strategy == core.FLOWN {
		return s.Strategy.String()
	}
	return fmt.Sprintf("%s-%d", s.Strategy, s.Threshold)
}

// PaperSystems is the lineup of Figs. 1/6/7: BSP, SSP-4, SSP-20, FLOWN,
// ROG-4, ROG-20.
func PaperSystems() []SystemSpec {
	return []SystemSpec{
		{core.BSP, 0},
		{core.SSP, 4},
		{core.SSP, 20},
		{core.FLOWN, 4},
		{core.ROG, 4},
		{core.ROG, 20},
	}
}

// SensitivitySystems is the reduced lineup of Fig. 9 (the paper omits
// FLOWN there).
func SensitivitySystems() []SystemSpec {
	return []SystemSpec{{core.BSP, 0}, {core.SSP, 4}, {core.ROG, 4}}
}

// EndToEndOptions configures one end-to-end comparison run.
type EndToEndOptions struct {
	Paradigm    string // "cruda" or "crimp"
	Env         trace.Env
	Workers     int
	BatchScale  int
	Seed        uint64
	Scale       Scale
	Systems     []SystemSpec
	Threshold   int // override threshold for ROG-only sweeps (0 = per spec)
	RecordMicro bool
	// ConvMLP (CRUDA) / GridMap (CRIMP) select the architecture-faithful
	// model variants for the ext-convmlp / ext-gridmap experiments.
	ConvMLP bool
	GridMap bool
	// Faults injects the same virtual-time fault schedule (worker crashes,
	// link blackouts, flaps) into every compared system's run.
	Faults simnet.FaultSchedule
	// Loss injects the same packet-loss channel model into every compared
	// system's run; Reliability selects how lost rows are recovered
	// (selective: only the Must prefix retransmits; all: everything does).
	Loss        lossnet.Spec
	Reliability lossnet.Reliability
	// Checkpoint gives every system run its own fresh in-memory durable
	// store, enabling servercrash faults; the remaining knobs pass through
	// to the durability layer (zero values keep the core defaults).
	Checkpoint           bool
	SnapshotEverySeconds float64
	RecoverySecondsPerMB float64
	WALSyncEvery         int
	// MakeTrace, when set, builds a tracer for each system run (label is
	// the system's Label()); a nil return leaves that run untraced. The
	// JSON exporter hangs the streaming critical-path analyzer on it.
	MakeTrace func(label string) obs.Tracer
}

// paradigmConfig returns the per-paradigm timing constants: compute time
// per iteration and the paper-equivalent compressed model size the channel
// is scaled to (Sec. VI: 2.1 MB for ConvMLP/CRUDA, 0.76 MB for
// nice-slam/CRIMP; compute 2.18 s + ≈0.46 s compression on the Jetson).
func paradigmConfig(paradigm string) (computeSeconds, paperModelBytes float64) {
	if paradigm == "crimp" {
		return 1.4, 0.76e6
	}
	return 2.64, 2.1e6
}

// newWorkload builds a fresh workload for one system run (every system
// must start from the same pretrained state, so each gets its own copy).
func (o EndToEndOptions) newWorkload() core.Workload {
	if o.Paradigm == "crimp" {
		opts := DefaultCRIMPOptions()
		opts.Workers = o.Workers
		opts.Seed = o.Seed
		opts.ObsPerBot = o.Scale.ObsPerBot
		opts.TestObs = o.Scale.TestObs
		opts.UseGridMap = o.GridMap
		return NewCRIMP(opts)
	}
	opts := DefaultCRUDAOptions()
	opts.Workers = o.Workers
	opts.Seed = o.Seed
	opts.PretrainIters = o.Scale.PretrainIters
	opts.UseConvMLP = o.ConvMLP
	if o.BatchScale > 1 {
		opts.BatchScale = o.BatchScale
	}
	return NewCRUDA(opts)
}

// RunEndToEnd executes every system on an identical workload and network
// seed, returning one Result per system in input order.
func RunEndToEnd(o EndToEndOptions) ([]*core.Result, error) {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Systems) == 0 {
		o.Systems = PaperSystems()
	}
	computeSec, paperBytes := paradigmConfig(o.Paradigm)
	var out []*core.Result
	for _, sys := range o.Systems {
		wl := o.newWorkload()
		cfg := core.Config{
			Strategy:          sys.Strategy,
			Workers:           o.Workers,
			Threshold:         sys.Threshold,
			Env:               o.Env,
			Seed:              o.Seed,
			ComputeSeconds:    computeSec,
			BatchScale:        float64(max(1, o.BatchScale)),
			PaperModelBytes:   paperBytes,
			LR:                0.025,
			Momentum:          0.9,
			LRDecayIters:      600,
			MaxVirtualSeconds: o.Scale.VirtualSeconds,
			CheckpointEvery:   o.Scale.CheckpointEvery,
			RecordMicro:       o.RecordMicro,
			Faults:            o.Faults,
			Loss:              o.Loss,
			Reliability:       o.Reliability,
		}
		if o.MakeTrace != nil {
			cfg.Trace = o.MakeTrace(sys.Label())
		}
		if o.Checkpoint {
			st, err := durable.Open(durable.NewMemFS(), "ckpt")
			if err != nil {
				return nil, fmt.Errorf("harness: %s: %w", sys.Label(), err)
			}
			if o.WALSyncEvery > 0 {
				st.SyncEvery = o.WALSyncEvery
			}
			cfg.Durable = st
			cfg.SnapshotEverySeconds = o.SnapshotEverySeconds
			cfg.RecoverySecondsPerMB = o.RecoverySecondsPerMB
		}
		res, err := core.Run(cfg, wl)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", sys.Label(), err)
		}
		out = append(out, res)
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
