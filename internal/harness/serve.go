package harness

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"rog/internal/engine"
	"rog/internal/metrics"
	"rog/internal/nn"
	"rog/internal/obs"
	"rog/internal/rowsync"
	"rog/internal/serve"
	"rog/internal/simnet"
	"rog/internal/tensor"
)

// The serve experiment drives the inference tier end to end on a simnet
// kernel: a scripted training fleet advances the shared State round by
// round while closed-loop clients issue inference requests against the
// Publisher's snapshots. The sweep varies concurrent clients × batching
// window × staleness bound and reports latency quantiles, throughput,
// snapshot swaps and the observed read staleness — asserting in every cell
// that no request was answered from a snapshot older than its bound
// allows, the serving-side mirror of training's RSP guarantee.

// serveCell is one sweep point. A request issued when `expected` rounds
// are complete demands version ≥ expected − bound + lead: bound is the
// staleness it tolerates, and a positive lead makes it a wait-for-fresh
// client that parks on the read gate until the round currently in flight
// publishes.
type serveCell struct {
	clients int
	window  float64 // batching window (virtual seconds)
	bound   int64   // staleness bound: tolerate snapshots this many rounds old
	lead    int64   // freshness lead: demand rounds not yet complete
}

func (c serveCell) label() string {
	l := fmt.Sprintf("c%d-w%.2f-b%d", c.clients, c.window, c.bound)
	if c.lead > 0 {
		l += fmt.Sprintf("-f%d", c.lead)
	}
	return l
}

// serveCells is the sweep: instant serving at a tight bound, growing
// client counts against wider windows and looser bounds, then the
// wait-for-fresh cells that exercise the read gate on every round edge.
func serveCells() []serveCell {
	return []serveCell{
		{2, 0, 0, 0},
		{4, 0.05, 0, 0},
		{4, 0.05, 2, 0},
		{8, 0.10, 2, 0},
		{8, 0.05, 0, 1},
		{16, 0.10, 0, 1},
	}
}

// serveWorkers and the schedule constants shape the scripted trainer: each
// worker merges one iteration per period, phase-shifted so merges never
// tie on the kernel's event queue.
const (
	serveWorkers   = 4
	servePeriod    = 1.0
	servePhaseStep = 0.031
	serveThreshold = 8
	serveLR        = 0.05
)

// serveTraining is the scripted training side of a serve run: a tiny MLP,
// its row partition, the sharded State, and the merge schedule on the
// kernel. The gradient stream is a deterministic function of the seed
// alone, so attaching a Publisher (whose RowSink runs inside merges but
// adds no events and writes no training state) cannot perturb it — the
// bit-identity test in serve_test.go holds the trainer to that.
type serveTraining struct {
	k     *simnet.Kernel
	st    *engine.State
	part  *rowsync.Partition
	model *nn.Sequential
	iters int64 // rounds the schedule will complete
}

// newServeTraining builds the trainer and schedules every merge. Worker w
// merges iteration n (1-based) at n·period + w·phaseStep; a round is
// complete — and the global minimum advances — when its slowest worker
// merges.
func newServeTraining(k *simnet.Kernel, seconds float64, seed uint64, probe *obs.Probe) (*serveTraining, error) {
	model := nn.NewClassifierMLP(6, []int{8}, 4, tensor.NewRNG(seed))
	part := rowsync.NewPartition(model.Params(), rowsync.Rows)
	pol, err := engine.New("rog", engine.Params{
		Workers: serveWorkers, Threshold: serveThreshold, NumUnits: part.NumUnits(),
	})
	if err != nil {
		return nil, fmt.Errorf("harness: serve trainer: %w", err)
	}
	st := engine.NewStateSharded(pol, part, serveWorkers, 1.0, 4)
	st.Probe = probe

	tr := &serveTraining{k: k, st: st, part: part, model: model}
	lastPhase := float64(serveWorkers-1) * servePhaseStep
	tr.iters = int64((seconds - lastPhase) / servePeriod)

	units := make([]int, part.NumUnits())
	for u := range units {
		units[u] = u
	}
	for w := 0; w < serveWorkers; w++ {
		w := w
		rng := tensor.NewRNG(seed*100003 + uint64(w)*31 + 7)
		for n := int64(1); n <= tr.iters; n++ {
			n := n
			at := float64(n)*servePeriod + float64(w)*servePhaseStep
			k.At(at, func() {
				vals := make([][]float32, len(units))
				for u := range units {
					row := make([]float32, part.Unit(u).Len)
					for i := range row {
						row[i] = float32(rng.Norm() * 0.01)
					}
					vals[u] = row
				}
				st.MergeBatch(w, units, vals, n)
			})
		}
	}
	return tr, nil
}

// completedRounds is the version floor a request issued at time t can
// demand knowledge of: round n is complete once its last phase-shifted
// merge (at n·period + lastPhase) has fired.
func (tr *serveTraining) completedRounds(t float64) int64 {
	lastPhase := float64(serveWorkers-1) * servePhaseStep
	n := int64((t - lastPhase) / servePeriod)
	if n < 0 {
		n = 0
	}
	if n > tr.iters {
		n = tr.iters
	}
	return n
}

// digest folds the full training state — every worker's stamped versions,
// the per-row freshness iterations, and every accumulated averaged row's
// exact bits — into one FNV-64 value. Two runs with equal digests merged
// the same gradients in the same effective order.
func (tr *serveTraining) digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	units := tr.part.NumUnits()
	for w := 0; w < serveWorkers; w++ {
		for u := 0; u < units; u++ {
			put(uint64(tr.st.Versions.Get(w, u)))
			for _, x := range tr.st.Acc[w].Unit(u) {
				put(uint64(math.Float32bits(x)))
			}
		}
	}
	for u := 0; u < units; u++ {
		put(uint64(tr.st.RowIter[u]))
	}
	return h.Sum64()
}

// serveRun is one cell's measured outcome.
type serveRun struct {
	cell      serveCell
	rounds    int64     // training rounds completed
	latencies []float64 // per-request latency, sorted ascending
	served    int64
	batches   int64
	publishes int64
	stalls    int64 // requests that parked on the read gate
	maxStale  int64 // max over requests of (expected − served version)
	// digest is the training-state digest after the run drained — the
	// non-perturbation test compares it against a train-only run's.
	digest uint64
}

func (r *serveRun) quantile(p float64) float64 {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(p * float64(len(r.latencies)-1))
	return r.latencies[i]
}

func (r *serveRun) throughput(seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(r.served) / seconds
}

// runServeCell executes one cell: trainer plus publisher plus server plus
// closed-loop clients, all on one kernel. tr may be nil (untraced).
func runServeCell(cell serveCell, seconds float64, seed uint64, tracer obs.Tracer) (*serveRun, error) {
	k := simnet.NewKernel()
	var probe *obs.Probe
	if tracer != nil {
		probe = obs.NewProbe(tracer, nil, k.Now)
	}
	training, err := newServeTraining(k, seconds, seed, probe)
	if err != nil {
		return nil, err
	}
	pub := serve.NewPublisher(training.st, training.part, training.model.Params(), serveLR)
	pub.Probe = probe
	scratch := nn.NewClassifierMLP(6, []int{8}, 4, tensor.NewRNG(seed))
	srv := serve.NewServer(pub, scratch, 6, serve.Config{
		WindowSeconds: cell.window,
		MaxBatch:      cell.clients,
		Clock:         serve.KernelClock{K: k},
		Probe:         probe,
	})

	run := &serveRun{cell: cell}
	var reqID int64
	loadEnd := seconds - 2*servePeriod // let the tail drain before training ends
	var fail error
	for c := 0; c < cell.clients; c++ {
		rng := tensor.NewRNG(seed*7919 + uint64(c)*53 + 1)
		var issue func()
		issue = func() {
			if fail != nil || k.Now() >= loadEnd {
				return
			}
			t0 := k.Now()
			expected := training.completedRounds(t0)
			minV := expected - cell.bound + cell.lead
			if minV < 0 {
				minV = 0
			}
			if minV > training.iters {
				minV = training.iters // never demand past the schedule's end
			}
			if pub.Version() < minV {
				run.stalls++
			}
			reqID++
			input := make([]float32, 6)
			for i := range input {
				input[i] = float32(rng.Norm())
			}
			think := 0.02 + 0.08*rng.Float64()
			err := srv.Submit(serve.Request{ID: reqID, MinVersion: minV, Input: input}, func(rep serve.Reply) {
				lat := k.Now() - t0
				run.latencies = append(run.latencies, lat)
				if stale := expected - rep.Version; stale > run.maxStale {
					run.maxStale = stale
				}
				if rep.Version < minV && fail == nil {
					fail = fmt.Errorf("harness: serve %s: request %d served at version %d below its floor %d",
						cell.label(), rep.ID, rep.Version, minV)
				}
				k.After(think, issue)
			})
			if err != nil && fail == nil {
				fail = fmt.Errorf("harness: serve %s: %w", cell.label(), err)
			}
		}
		k.At(0.1+0.3*rng.Float64(), issue)
	}

	k.RunUntilIdle(20_000_000)
	if fail != nil {
		return nil, fail
	}
	if run.maxStale > cell.bound {
		return nil, fmt.Errorf("harness: serve %s: observed staleness %d exceeds bound %d",
			cell.label(), run.maxStale, cell.bound)
	}
	st := srv.Stats()
	if st.Parked != 0 {
		return nil, fmt.Errorf("harness: serve %s: %d requests still parked after the run drained",
			cell.label(), st.Parked)
	}
	run.rounds = training.iters
	run.digest = training.digest()
	run.served = st.Served
	run.batches = st.Batches
	run.publishes = st.Publishes
	sort.Float64s(run.latencies)
	if int64(len(run.latencies)) != run.served {
		return nil, fmt.Errorf("harness: serve %s: %d replies for %d served requests",
			cell.label(), len(run.latencies), run.served)
	}
	return run, nil
}

// serveSeconds derives the per-cell budget from the scale.
func serveSeconds(s Scale) float64 { return s.VirtualSeconds / 7 }

func runServe(s Scale) (string, error) {
	seconds := serveSeconds(s)
	var b strings.Builder
	b.WriteString("== Inference tier: bounded-staleness serving over versioned snapshots ==\n\n")
	var rows [][]string
	for _, cell := range serveCells() {
		run, err := runServeCell(cell, seconds, 11, nil)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", cell.clients),
			fmt.Sprintf("%.0f", cell.window*1e3),
			fmt.Sprintf("%d", cell.bound),
			fmt.Sprintf("%d", cell.lead),
			fmt.Sprintf("%d", run.served),
			fmt.Sprintf("%.1f", run.throughput(seconds)),
			fmt.Sprintf("%.1f", run.quantile(0.50)*1e3),
			fmt.Sprintf("%.1f", run.quantile(0.95)*1e3),
			fmt.Sprintf("%.1f", run.quantile(0.99)*1e3),
			fmt.Sprintf("%d", run.publishes),
			fmt.Sprintf("%d", run.stalls),
			fmt.Sprintf("%d/%d", run.maxStale, cell.bound),
		})
	}
	b.WriteString(metrics.FormatTable(
		[]string{"clients", "window(ms)", "bound", "lead", "served", "req/s",
			"p50(ms)", "p95(ms)", "p99(ms)", "snapshots", "read stalls", "staleness max/bound"},
		rows,
	))
	fmt.Fprintf(&b, "\nevery request was answered from a snapshot within its staleness bound (%d training rounds per cell);\n",
		int64(serveSeconds(s)/servePeriod))
	b.WriteString("requests demanding unseen versions parked on the read gate and resumed on the satisfying publish\n")
	return b.String(), nil
}

// ServeCellReport is one serve sweep cell in JSON form.
type ServeCellReport struct {
	Clients        int     `json:"clients"`
	WindowSeconds  float64 `json:"window_seconds"`
	StalenessBound int64   `json:"staleness_bound"`
	FreshnessLead  int64   `json:"freshness_lead,omitempty"`
	TrainRounds    int64   `json:"train_rounds"`
	Requests       int64   `json:"requests"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	P50Seconds     float64 `json:"p50_seconds"`
	P95Seconds     float64 `json:"p95_seconds"`
	P99Seconds     float64 `json:"p99_seconds"`
	MaxSeconds     float64 `json:"max_seconds"`
	Snapshots      int64   `json:"snapshots_published"`
	Batches        int64   `json:"forward_batches"`
	ReadStalls     int64   `json:"read_stalls"`
	// MaxObservedStaleness is the largest (expected − served) version gap
	// any request saw; the run fails if it ever exceeds StalenessBound.
	MaxObservedStaleness int64 `json:"max_observed_staleness"`
}

// runServeJSON is the machine-readable sweep: one SystemReport per cell,
// labelled "c8-w0.10-b2" style, with the full serving metrics attached.
func runServeJSON(s Scale) (*Report, error) {
	rep := &Report{
		Experiment: "serve",
		Title:      "Inference tier: bounded-staleness serving over versioned snapshots",
		Scale:      s.Name,
		Paradigm:   "synthetic",
		Env:        "simnet",
		Metric:     "p95 latency (s)",
		Increasing: false,
	}
	seconds := serveSeconds(s)
	for _, cell := range serveCells() {
		run, err := runServeCell(cell, seconds, 11, nil)
		if err != nil {
			return nil, err
		}
		var maxLat float64
		if n := len(run.latencies); n > 0 {
			maxLat = run.latencies[n-1]
		}
		rep.Systems = append(rep.Systems, SystemReport{
			Label:      cell.label(),
			Strategy:   "rog",
			Threshold:  serveThreshold,
			Iterations: int(run.rounds),
			FinalValue: run.quantile(0.95),
			Serve: &ServeCellReport{
				Clients:              cell.clients,
				WindowSeconds:        cell.window,
				StalenessBound:       cell.bound,
				FreshnessLead:        cell.lead,
				TrainRounds:          run.rounds,
				Requests:             run.served,
				ThroughputRPS:        run.throughput(seconds),
				P50Seconds:           run.quantile(0.50),
				P95Seconds:           run.quantile(0.95),
				P99Seconds:           run.quantile(0.99),
				MaxSeconds:           maxLat,
				Snapshots:            run.publishes,
				Batches:              run.batches,
				ReadStalls:           run.stalls,
				MaxObservedStaleness: run.maxStale,
			},
		})
	}
	return rep, nil
}
