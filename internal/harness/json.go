package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"rog/internal/core"
	"rog/internal/lossnet"
	"rog/internal/metrics"
	"rog/internal/obs"
	"rog/internal/simnet"
	"rog/internal/trace"
)

// This file is the machine-readable counterpart of the report tables:
// `rogbench -json` runs one of the end-to-end figures and serializes the
// full per-system results — composition, energy, time/energy-to-target,
// churn counters and the complete checkpoint series — so downstream
// plotting and regression tooling never has to scrape the text tables.

// Report is one experiment's results in JSON form.
type Report struct {
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	Scale      string `json:"scale"`
	Paradigm   string `json:"paradigm"`
	Env        string `json:"env"`
	Faults     string `json:"faults,omitempty"`
	// Loss names the injected packet-loss channel ("ge:0.05" style) and
	// Reliability the recovery mode, for runs over a lossy channel.
	Loss        string `json:"loss,omitempty"`
	Reliability string `json:"reliability,omitempty"`
	// Metric names the quality axis; Increasing tells whether larger is
	// better (accuracy) or worse (trajectory error).
	Metric     string `json:"metric"`
	Increasing bool   `json:"increasing"`
	// Target is the common quality level used for the time/energy-to-target
	// columns: the loosest best-over-series value across systems, so every
	// system can reach it (same rule as the text tables).
	Target  float64        `json:"quality_target"`
	Systems []SystemReport `json:"systems"`
}

// SystemReport is one compared system's slice of a Report.
type SystemReport struct {
	Label       string  `json:"label"`
	Strategy    string  `json:"strategy"`
	Threshold   int     `json:"threshold"`
	Iterations  int     `json:"iterations"`
	FinalValue  float64 `json:"final_value"`
	TotalJoules float64 `json:"total_joules"`
	StallFrac   float64 `json:"stall_frac"`
	// MaxStaleness is the largest merge lead the run observed — the
	// empirical RSP bound (0 is omitted; BSP never leads).
	MaxStaleness   int64   `json:"max_staleness,omitempty"`
	ComputeSeconds float64 `json:"compute_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	StallSeconds   float64 `json:"stall_seconds"`
	// SecondsToTarget / JoulesToTarget are nil when the system never
	// reached the common target.
	SecondsToTarget *float64        `json:"seconds_to_target,omitempty"`
	JoulesToTarget  *float64        `json:"joules_to_target,omitempty"`
	Churn           *ChurnReport    `json:"churn,omitempty"`
	Loss            *LossReport     `json:"loss,omitempty"`
	Recovery        *RecoveryReport `json:"recovery,omitempty"`
	// Serve carries one serve-sweep cell's latency/throughput/staleness
	// metrics (the serve experiment only).
	Serve *ServeCellReport `json:"serve,omitempty"`
	// CritPath is the causal critical-path decomposition of this system's
	// run: per-worker compute/comm/stall/merge segments, the top blocking
	// (worker, unit) pairs and the stall duration quantiles.
	CritPath *obs.CritReport `json:"critpath,omitempty"`
	Series   []SeriesPoint   `json:"series"`
}

// ChurnReport mirrors metrics.ChurnStats with stable JSON names.
type ChurnReport struct {
	Disconnects  int     `json:"disconnects"`
	Reconnects   int     `json:"reconnects"`
	RowsResynced int     `json:"rows_resynced"`
	DetachStall  float64 `json:"detach_stall_seconds"`
}

// RecoveryReport carries one sweep cell's checkpoint policy and what the
// scripted server crash cost under it (mirrors metrics.RecoveryStats, plus
// the policy knobs and the iteration deficit against the baseline).
type RecoveryReport struct {
	CheckpointEverySeconds float64 `json:"checkpoint_every_seconds"`
	WALSyncEvery           int     `json:"wal_sync_every"`
	Recoveries             int     `json:"recoveries"`
	ReplayedRecords        int     `json:"replayed_records"`
	ReplayedBytes          float64 `json:"replayed_bytes"`
	SnapshotBytes          float64 `json:"snapshot_bytes"`
	RowsLost               int     `json:"rows_lost"`
	DowntimeSeconds        float64 `json:"downtime_seconds"`
	IterationsLost         int     `json:"iterations_lost"`
}

// LossReport mirrors metrics.LossStats with stable JSON names.
type LossReport struct {
	RowsLostFolded    int     `json:"rows_lost_folded"`
	RowsRetransmitted int     `json:"rows_retransmitted"`
	RetransmitBytes   float64 `json:"retransmit_bytes"`
}

// SeriesPoint is one quality checkpoint.
type SeriesPoint struct {
	Iter   int     `json:"iter"`
	Time   float64 `json:"time_seconds"`
	Energy float64 `json:"energy_joules"`
	Value  float64 `json:"value"`
}

// jsonExperiments maps the JSON-exportable experiment ids to their run
// options. Only the end-to-end comparisons export cleanly — the micro and
// sensitivity experiments have bespoke shapes and keep their text reports.
func jsonExperiments(id string, s Scale) (EndToEndOptions, Report, error) {
	switch id {
	case "fig1":
		return EndToEndOptions{Paradigm: "cruda", Env: trace.Outdoor, Scale: s},
			Report{Experiment: id, Title: "Fig. 1: CRUDA, outdoors",
				Paradigm: "cruda", Env: "outdoor", Metric: "accuracy", Increasing: true}, nil
	case "fig6":
		return EndToEndOptions{Paradigm: "cruda", Env: trace.Indoor, Scale: s},
			Report{Experiment: id, Title: "Fig. 6: CRUDA, indoors",
				Paradigm: "cruda", Env: "indoor", Metric: "accuracy", Increasing: true}, nil
	case "fig7":
		return EndToEndOptions{Paradigm: "crimp", Env: trace.Outdoor, Scale: s},
			Report{Experiment: id, Title: "Fig. 7: CRIMP, outdoors",
				Paradigm: "crimp", Env: "outdoor", Metric: "trajectory error", Increasing: false}, nil
	case "churn":
		t := s.VirtualSeconds
		spec := fmt.Sprintf("crash:1@%.0f+%.0f,blackout:2@%.0f+%.0f", t/4, t/4, 5*t/8, t/8)
		faults, err := simnet.ParseFaultSchedule(spec)
		if err != nil {
			return EndToEndOptions{}, Report{}, err
		}
		return EndToEndOptions{Paradigm: "cruda", Env: trace.Outdoor, Scale: s,
				Systems: SensitivitySystems(), Faults: faults},
			Report{Experiment: id, Title: "Robustness: membership churn",
				Paradigm: "cruda", Env: "outdoor", Faults: spec,
				Metric: "accuracy", Increasing: true}, nil
	case "loss":
		spec := lossnet.Spec{Kind: "ge", Rate: 0.05}
		return EndToEndOptions{Paradigm: "cruda", Env: trace.Outdoor, Scale: s,
				Systems: SensitivitySystems(), Loss: spec, Reliability: lossnet.Selective},
			Report{Experiment: id, Title: "Loss tolerance: bursty packet loss, selective reliability",
				Paradigm: "cruda", Env: "outdoor",
				Loss: spec.String(), Reliability: lossnet.Selective.String(),
				Metric: "accuracy", Increasing: true}, nil
	default:
		return EndToEndOptions{}, Report{}, fmt.Errorf(
			"harness: experiment %q is not an end-to-end comparison", id)
	}
}

// jsonRunners maps every JSON-exportable experiment id to its report
// builder: the end-to-end comparisons share runEndToEndJSON, the sweeps
// (ext-recovery, fleet, serve) bring their own shapes. This map is the
// single registry the error message and the CLI help derive from — adding
// an entry here is the whole wiring.
func jsonRunners() map[string]func(Scale) (*Report, error) {
	m := map[string]func(Scale) (*Report, error){
		"ext-recovery": runExtRecoveryJSON,
		"fleet":        runFleetJSON,
		"serve":        runServeJSON,
	}
	for _, id := range []string{"fig1", "fig6", "fig7", "churn", "loss"} {
		id := id
		m[id] = func(s Scale) (*Report, error) { return runEndToEndJSON(id, s) }
	}
	return m
}

// JSONExperimentIDs lists the JSON-exportable experiment ids, sorted.
func JSONExperimentIDs() []string {
	m := jsonRunners()
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunJSONReport executes one JSON-exportable experiment at the given scale.
func RunJSONReport(id string, s Scale) (*Report, error) {
	run, ok := jsonRunners()[id]
	if !ok {
		return nil, fmt.Errorf("harness: experiment %q has no JSON export (want %s)",
			id, strings.Join(JSONExperimentIDs(), ", "))
	}
	return run(s)
}

// runEndToEndJSON executes one end-to-end comparison and serializes it.
func runEndToEndJSON(id string, s Scale) (*Report, error) {
	opts, rep, err := jsonExperiments(id, s)
	if err != nil {
		return nil, err
	}
	// Ride the critical-path analyzer on each system's event stream: the
	// simnet is bit-identical traced or untraced, so the decomposition is
	// free of observer effects.
	crit := make(map[string]*obs.CritPath)
	opts.MakeTrace = func(label string) obs.Tracer {
		cp := obs.NewCritPath()
		crit[label] = cp
		return cp
	}
	results, err := RunEndToEnd(opts)
	if err != nil {
		return nil, err
	}
	rep.Scale = s.Name
	fillReport(&rep, results, len(opts.Faults) > 0, opts.Loss.Enabled())
	for i := range rep.Systems {
		if cp := crit[rep.Systems[i].Label]; cp != nil {
			rep.Systems[i].CritPath = cp.Report()
		}
	}
	return &rep, nil
}

// fillReport derives the per-system entries and the common target from the
// raw results. withChurn includes the churn counters (fault runs only —
// all-zero counters on a fault-free run would read as "no churn happened"
// rather than "not measured"); withLoss likewise includes the loss-channel
// counters only when a loss model was injected.
func fillReport(rep *Report, results []*core.Result, withChurn, withLoss bool) {
	rep.Target = commonTarget(results, rep.Increasing)
	for _, r := range results {
		sr := SystemReport{
			Label:          r.Label(),
			Strategy:       r.Strategy.String(),
			Threshold:      r.Threshold,
			Iterations:     r.Iterations,
			FinalValue:     r.FinalValue,
			TotalJoules:    r.TotalJoules,
			StallFrac:      r.StallFrac,
			MaxStaleness:   r.MaxStaleness,
			ComputeSeconds: r.Composition.Compute,
			CommSeconds:    r.Composition.Comm,
			StallSeconds:   r.Composition.Stall,
		}
		if sec, ok := r.Series.TimeToReach(rep.Target, rep.Increasing); ok {
			sr.SecondsToTarget = &sec
		}
		if j, ok := r.Series.EnergyToReach(rep.Target, rep.Increasing); ok {
			sr.JoulesToTarget = &j
		}
		if withChurn {
			sr.Churn = &ChurnReport{
				Disconnects:  r.Churn.Disconnects,
				Reconnects:   r.Churn.Reconnects,
				RowsResynced: r.Churn.RowsResynced,
				DetachStall:  r.Churn.DetachStall,
			}
		}
		if withLoss {
			sr.Loss = &LossReport{
				RowsLostFolded:    r.Loss.RowsLostFolded,
				RowsRetransmitted: r.Loss.RowsRetransmitted,
				RetransmitBytes:   r.Loss.RetransmitBytes,
			}
		}
		sr.Series = seriesPoints(r.Series)
		rep.Systems = append(rep.Systems, sr)
	}
}

func seriesPoints(s metrics.Series) []SeriesPoint {
	pts := make([]SeriesPoint, 0, len(s.Points))
	for _, p := range s.Points {
		pts = append(pts, SeriesPoint{Iter: p.Iter, Time: p.Time, Energy: p.Energy, Value: p.Value})
	}
	return pts
}

// WriteJSON serializes the report, indented for direct human inspection.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
