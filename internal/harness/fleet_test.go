package harness

import "testing"

// TestFleetCellLargeBoundsStaleness runs the acceptance cell — 256 robots,
// 8 shards, 4 edge aggregators — at a reduced budget and checks the RSP
// bound held for every merge (runFleetCell errors on a violation).
func TestFleetCellLargeBoundsStaleness(t *testing.T) {
	res, err := runFleetCell(fleetCell{workers: 256, shards: 8, aggregators: 4}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("fleet cell barely progressed: %d iterations", res.Iterations)
	}
	if res.MaxStaleness > fleetThreshold {
		t.Fatalf("max staleness %d > threshold %d", res.MaxStaleness, fleetThreshold)
	}
}

// TestFleetJSONReport exercises the rogbench JSON path end to end at a
// tiny budget: one SystemReport per sweep cell, fleet-style labels.
func TestFleetJSONReport(t *testing.T) {
	s := Quick
	s.VirtualSeconds = 70 // fleetSeconds → 10s per cell
	rep, err := RunJSONReport("fleet", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Systems) != len(fleetCells()) {
		t.Fatalf("%d system reports, want %d", len(rep.Systems), len(fleetCells()))
	}
	if rep.Systems[len(rep.Systems)-1].Label != "w256-s8-a4" {
		t.Fatalf("last label = %q, want w256-s8-a4", rep.Systems[len(rep.Systems)-1].Label)
	}
	for _, sys := range rep.Systems {
		if sys.MaxStaleness > fleetThreshold {
			t.Fatalf("%s: max staleness %d > threshold %d", sys.Label, sys.MaxStaleness, fleetThreshold)
		}
	}
}
