package harness

import (
	"fmt"
	"strings"

	"rog/internal/core"
	"rog/internal/metrics"
	"rog/internal/nn"
	"rog/internal/tensor"
	"rog/internal/trace"
)

// The fleet experiment scales the sharded parameter service and the edge-
// aggregation tier to fleet-size robot counts (PR 7's tentpole). Training
// hundreds of real CRUDA replicas would measure the workload, not the
// system, so the fleet uses a synthetic Workload: a tiny MLP whose
// "gradients" are cheap deterministic noise. Every systems-level quantity
// the sweep reports — iterations completed, stall share, the empirical RSP
// staleness bound through the aggregation tier — is produced by the same
// engine/simnet machinery the real workloads exercise.

// fleetCell is one sweep point: a fleet size, a server shard count, and an
// edge-aggregator count (0 = every robot talks to the root directly).
type fleetCell struct {
	workers, shards, aggregators int
}

func (c fleetCell) label() string {
	return fmt.Sprintf("w%d-s%d-a%d", c.workers, c.shards, c.aggregators)
}

// fleetCells is the sweep: a direct-root baseline, sharding alone, and the
// full edge tier, up to the 256-robot × 8-shard × 4-aggregator cell.
func fleetCells() []fleetCell {
	return []fleetCell{
		{64, 1, 0},
		{64, 8, 0},
		{128, 8, 2},
		{256, 8, 4},
	}
}

// fleetWorkload is the synthetic Workload: per-worker replicas of a tiny
// MLP, gradient noise drawn from per-worker deterministic streams, and a
// drift metric (mean |param| of worker 0) cheap enough to evaluate at any
// checkpoint cadence.
type fleetWorkload struct {
	models []*nn.Sequential
	rngs   []*tensor.RNG
}

func newFleetWorkload(workers int, seed uint64) *fleetWorkload {
	fw := &fleetWorkload{}
	proto := nn.NewClassifierMLP(6, []int{8}, 4, tensor.NewRNG(seed))
	for w := 0; w < workers; w++ {
		m := nn.NewClassifierMLP(6, []int{8}, 4, tensor.NewRNG(1))
		m.CopyParamsFrom(proto)
		fw.models = append(fw.models, m)
		fw.rngs = append(fw.rngs, tensor.NewRNG(seed*100003+uint64(w)*31+7))
	}
	return fw
}

func (fw *fleetWorkload) Model(w int) *nn.Sequential { return fw.models[w] }

func (fw *fleetWorkload) ComputeGradients(w int) float64 {
	r := fw.rngs[w]
	for _, g := range fw.models[w].Grads() {
		for i := range g.Data {
			g.Data[i] += float32(r.Norm() * 0.01)
		}
	}
	return 0
}

func (fw *fleetWorkload) Evaluate() float64 {
	var sum float64
	var n int
	for _, p := range fw.models[0].Params() {
		for _, v := range p.Data {
			if v < 0 {
				sum -= float64(v)
			} else {
				sum += float64(v)
			}
		}
		n += len(p.Data)
	}
	return sum / float64(n)
}

func (fw *fleetWorkload) Increasing() bool { return false }

const fleetThreshold = 8

// fleetConfig builds one cell's run. The model is tiny, so PaperModelBytes
// is set low (aggressively compressed rows) — otherwise a 256-robot fleet
// sharing one channel would not finish an iteration inside the budget and
// the sweep would measure only contention.
func fleetConfig(cell fleetCell, seconds float64) core.Config {
	return core.Config{
		Strategy:          core.ROG,
		Workers:           cell.workers,
		Threshold:         fleetThreshold,
		Shards:            cell.shards,
		Aggregators:       cell.aggregators,
		Env:               trace.Outdoor,
		Seed:              33,
		ComputeSeconds:    1.0,
		PaperModelBytes:   5e4,
		LR:                0.02,
		Momentum:          0.9,
		MaxVirtualSeconds: seconds,
		CheckpointEvery:   50,
	}
}

// fleetSeconds derives the per-cell training budget from the scale.
func fleetSeconds(s Scale) float64 {
	return s.VirtualSeconds / 7
}

// runFleetCell executes one cell and asserts the RSP bound on its result:
// no merge, direct or forwarded through an aggregator, may exceed the
// staleness threshold.
func runFleetCell(cell fleetCell, seconds float64) (*core.Result, error) {
	wl := newFleetWorkload(cell.workers, 5)
	res, err := core.Run(fleetConfig(cell, seconds), wl)
	if err != nil {
		return nil, fmt.Errorf("harness: fleet %s: %w", cell.label(), err)
	}
	if res.MaxStaleness > fleetThreshold {
		return nil, fmt.Errorf("harness: fleet %s: RSP bound violated: max lead %d > threshold %d",
			cell.label(), res.MaxStaleness, fleetThreshold)
	}
	return res, nil
}

func runFleet(s Scale) (string, error) {
	var b strings.Builder
	b.WriteString("== Fleet scaling: sharded server × edge aggregation (synthetic workload, ROG-8) ==\n\n")
	var rows [][]string
	for _, cell := range fleetCells() {
		res, err := runFleetCell(cell, fleetSeconds(s))
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", cell.workers),
			fmt.Sprintf("%d", cell.shards),
			fmt.Sprintf("%d", cell.aggregators),
			fmt.Sprintf("%d", res.Iterations),
			fmt.Sprintf("%.2f", res.Composition.Total()),
			fmt.Sprintf("%.0f%%", 100*res.StallFrac),
			fmt.Sprintf("%d", res.MaxStaleness),
		})
	}
	b.WriteString(metrics.FormatTable(
		[]string{"robots", "shards", "aggregators", "iterations", "iter span(s)", "stall", "max staleness"},
		rows,
	))
	fmt.Fprintf(&b, "\nevery merge obeyed the RSP bound (threshold %d), including rows forwarded through the edge tier\n",
		fleetThreshold)
	return b.String(), nil
}

// runFleetJSON is the machine-readable sweep: one SystemReport per cell,
// labelled "w256-s8-a4" style, with MaxStaleness carried for regression
// tooling.
func runFleetJSON(s Scale) (*Report, error) {
	rep := &Report{
		Experiment: "fleet",
		Title:      "Fleet scaling: sharded server × edge aggregation",
		Scale:      s.Name,
		Paradigm:   "synthetic",
		Env:        "outdoor",
		Metric:     "parameter drift",
		Increasing: false,
	}
	var results []*core.Result
	var labels []string
	for _, cell := range fleetCells() {
		res, err := runFleetCell(cell, fleetSeconds(s))
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		labels = append(labels, cell.label())
	}
	fillReport(rep, results, false, false)
	for i := range rep.Systems {
		rep.Systems[i].Label = labels[i]
	}
	return rep, nil
}
