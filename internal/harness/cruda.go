// Package harness assembles the paper's experiments: the CRUDA and CRIMP
// workloads as core.Workload implementations, per-figure experiment
// runners, and text renderers for every table and figure of the evaluation
// section.
package harness

import (
	"rog/internal/core"
	"rog/internal/dataset"
	"rog/internal/nn"
	"rog/internal/tensor"
)

// CRUDAOptions configures the coordinated robotic unsupervised domain
// adaptation workload (paper Sec. VI: Fed-CIFAR100 + ConvMLP, noised per
// DeepTest; here the synthetic equivalents from internal/dataset).
type CRUDAOptions struct {
	Workers       int
	BatchSize     int // per-worker batch (paper default 24 on robots)
	BatchScale    int // multiplies BatchSize (sensitivity study)
	Seed          uint64
	PretrainIters int
	Hidden        []int
	// UseConvMLP trains the paper's actual model family — a convolutional
	// stem with an MLP head — on the synthetic image dataset instead of
	// the feature-vector MLP. Slower per iteration (real convolutions)
	// but architecture-faithful; used by the ext-convmlp experiment.
	UseConvMLP bool
}

// DefaultCRUDAOptions mirrors the paper's default setup at reduced scale.
func DefaultCRUDAOptions() CRUDAOptions {
	return CRUDAOptions{
		Workers:       4,
		BatchSize:     24,
		BatchScale:    1,
		Seed:          1,
		PretrainIters: 500,
		Hidden:        []int{64, 64},
	}
}

// CRUDAWorkload implements core.Workload: a model pretrained on the clean
// domain must adapt online to fog/brightness-corrupted data spread across
// non-IID worker shards.
type CRUDAWorkload struct {
	models []*nn.Sequential
	shards []*dataset.Shard
	batch  int
	evalX  *tensor.Matrix
	evalY  []int
	// PretrainCleanAcc and PretrainNoisyAcc record the accuracy story the
	// paper tells: high on the clean domain, degraded by the shift.
	PretrainCleanAcc float64
	PretrainNoisyAcc float64
}

var _ core.Workload = (*CRUDAWorkload)(nil)

// NewCRUDA builds the workload: synthesizes the dataset, pretrains one
// model on the clean domain, corrupts the world, shards the corrupted data
// Pachinko-style, and clones the pretrained model to every worker.
func NewCRUDA(opts CRUDAOptions) *CRUDAWorkload {
	var (
		train, test []dataset.Sample
		dim         int
		classes     int
		superclass  int
		newModel    func(r *tensor.RNG) *nn.Sequential
		corr        dataset.Corruption
	)
	if opts.UseConvMLP {
		icfg := dataset.DefaultImageConfig()
		icfg.Seed = opts.Seed
		img := dataset.NewImageSet(icfg)
		train, test = img.Train, img.Test
		dim, classes, superclass = img.Dim(), icfg.Classes, 5
		newModel = func(r *tensor.RNG) *nn.Sequential {
			return nn.NewConvMLP(1, icfg.H, icfg.W, []int{6}, []int{32}, classes, r)
		}
		corr = dataset.Corruption{Fog: 0.5, Brightness: 0.4, Gain: 0.7, Noise: 0.5, Seed: opts.Seed + 9}
	} else {
		cfg := dataset.DefaultCRUDAConfig()
		cfg.Seed = opts.Seed
		cfg.TestPer = 20 // 2000-sample eval set keeps checkpoint noise low
		data := dataset.NewCRUDA(cfg)
		train, test = data.Train, data.Test
		dim, classes, superclass = cfg.Dim, cfg.Classes, cfg.Superclass
		newModel = func(r *tensor.RNG) *nn.Sequential {
			return nn.NewClassifierMLP(dim, opts.Hidden, classes, r)
		}
		corr = dataset.Corruption{Fog: 0.65, Brightness: 0.6, Gain: 1.0, Noise: 0.7, Seed: opts.Seed + 9}
	}

	proto := newModel(tensor.NewRNG(opts.Seed + 77))
	opt := nn.NewSGD(0.05, 0.9)
	pre := dataset.NewShard(train, opts.Seed+3)
	for i := 0; i < opts.PretrainIters; i++ {
		x, y := pre.Batch(64)
		proto.ZeroGrads()
		_, g := nn.SoftmaxCrossEntropy(proto.Forward(x), y)
		proto.Backward(g)
		opt.Step(proto.Params(), proto.Grads())
	}

	noisyTrain := corr.Apply(train, dim)
	noisyTest := corr.Apply(test, dim)

	w := &CRUDAWorkload{batch: opts.BatchSize * opts.BatchScale}
	w.evalX, w.evalY = samplesToBatch(noisyTest)
	cleanX, cleanY := samplesToBatch(test)
	w.PretrainCleanAcc = nn.Accuracy(proto.Forward(cleanX), cleanY)
	w.PretrainNoisyAcc = nn.Accuracy(proto.Forward(w.evalX), w.evalY)

	parts := dataset.PartitionPachinko(noisyTrain, opts.Workers, classes, superclass, 0.3, opts.Seed+13)
	for i := 0; i < opts.Workers; i++ {
		m := newModel(tensor.NewRNG(1))
		m.CopyParamsFrom(proto)
		w.models = append(w.models, m)
		w.shards = append(w.shards, dataset.NewShard(parts[i], opts.Seed+uint64(i)*31+21))
	}
	return w
}

func samplesToBatch(samples []dataset.Sample) (*tensor.Matrix, []int) {
	x := tensor.New(len(samples), len(samples[0].X))
	y := make([]int, len(samples))
	for i, s := range samples {
		copy(x.Row(i), s.X)
		y[i] = s.Y
	}
	return x, y
}

// Model returns worker w's replica.
func (c *CRUDAWorkload) Model(w int) *nn.Sequential { return c.models[w] }

// ComputeGradients runs one adaptation step on worker w's shard.
func (c *CRUDAWorkload) ComputeGradients(w int) float64 {
	x, y := c.shards[w].Batch(c.batch)
	loss, g := nn.SoftmaxCrossEntropy(c.models[w].Forward(x), y)
	c.models[w].Backward(g)
	return loss
}

// Evaluate returns the mean corrupted-domain test accuracy across workers
// (the paper checkpoints and validates on every worker, then averages).
func (c *CRUDAWorkload) Evaluate() float64 {
	var acc float64
	for _, m := range c.models {
		acc += nn.Accuracy(m.Forward(c.evalX), c.evalY)
	}
	return acc / float64(len(c.models))
}

// Increasing reports that accuracy grows as training improves.
func (c *CRUDAWorkload) Increasing() bool { return true }
