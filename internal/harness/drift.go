package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"rog/internal/metrics"
)

// Bench-drift support: `make bench-save` snapshots a rogbench -json report
// to BENCH_<n>.json, and `rogbench -drift BENCH_<n>.json` reruns the same
// experiment at the same scale and renders what moved. The comparison is a
// report, not a gate — the simnet is deterministic, so any drift is a real
// behaviour change worth reading about, but whether it is a regression or
// an intended improvement is the reader's call.

// ReadJSONReport parses a report previously written by Report.WriteJSON.
func ReadJSONReport(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("harness: parsing benchmark snapshot: %w", err)
	}
	if rep.Experiment == "" {
		return nil, fmt.Errorf("harness: benchmark snapshot names no experiment")
	}
	return &rep, nil
}

// driftPct renders a relative change, guarding the zero baseline.
func driftPct(base, cur float64) string {
	if base == cur {
		return "="
	}
	if base == 0 {
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", 100*(cur-base)/math.Abs(base))
}

// DriftTable compares a fresh report against a snapshot of the same
// experiment, one row per system (matched by label).
func DriftTable(base, cur *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench drift: %s (scale=%s, snapshot scale=%s)\n",
		cur.Experiment, cur.Scale, base.Scale)
	byLabel := make(map[string]*SystemReport, len(base.Systems))
	for i := range base.Systems {
		byLabel[base.Systems[i].Label] = &base.Systems[i]
	}
	var rows [][]string
	for i := range cur.Systems {
		c := &cur.Systems[i]
		o, ok := byLabel[c.Label]
		if !ok {
			rows = append(rows, []string{c.Label, "-", fmt.Sprintf("%d", c.Iterations),
				"new", "new", "new", fmt.Sprintf("%d", c.MaxStaleness)})
			continue
		}
		delete(byLabel, c.Label)
		rows = append(rows, []string{
			c.Label,
			fmt.Sprintf("%d", o.Iterations),
			fmt.Sprintf("%d", c.Iterations),
			driftPct(float64(o.Iterations), float64(c.Iterations)),
			driftPct(o.FinalValue, c.FinalValue),
			driftPct(o.TotalJoules, c.TotalJoules),
			fmt.Sprintf("%d→%d", o.MaxStaleness, c.MaxStaleness),
		})
	}
	dropped := make([]string, 0, len(byLabel))
	for label := range byLabel {
		dropped = append(dropped, label)
	}
	sort.Strings(dropped)
	for _, label := range dropped {
		rows = append(rows, []string{label, fmt.Sprintf("%d", byLabel[label].Iterations),
			"-", "dropped", "dropped", "dropped", "-"})
	}
	b.WriteString(metrics.FormatTable(
		[]string{"system", "iters (base)", "iters (now)", "Δiters", "Δfinal", "Δjoules", "staleness"},
		rows,
	))
	critDrift(&b, base, cur)
	return b.String()
}

// critDrift appends the critical-path comm/stall split per system, with the
// baseline's split alongside when its snapshot carried one (older snapshots
// predate the analyzer and render as "-").
func critDrift(b *strings.Builder, base, cur *Report) {
	byLabel := make(map[string]*SystemReport, len(base.Systems))
	for i := range base.Systems {
		byLabel[base.Systems[i].Label] = &base.Systems[i]
	}
	wrote := false
	for i := range cur.Systems {
		c := &cur.Systems[i]
		if c.CritPath == nil {
			continue
		}
		if !wrote {
			fmt.Fprintf(b, "\ncritical path (comm/stall split, seconds summed over workers):\n")
			wrote = true
		}
		_, comm, stall, _ := c.CritPath.Totals()
		baseline := "-"
		if o, ok := byLabel[c.Label]; ok && o.CritPath != nil {
			_, bc, bs, _ := o.CritPath.Totals()
			baseline = fmt.Sprintf("comm %.1f stall %.1f", bc, bs)
		}
		top := ""
		if len(c.CritPath.Blockers) > 0 {
			blk := c.CritPath.Blockers[0]
			top = fmt.Sprintf("; top blocker worker %d unit %d (%.1fs)", blk.Worker, blk.Unit, blk.StallSeconds)
		}
		fmt.Fprintf(b, "  %-8s comm %.1f stall %.1f (base: %s)%s\n", c.Label, comm, stall, baseline, top)
	}
}
