package harness

import (
	"fmt"
	"strings"

	"rog/internal/core"
	"rog/internal/metrics"
	"rog/internal/simnet"
	"rog/internal/trace"
)

// This file is the ext-recovery experiment: the parameter server is killed
// halfway through a ROG run and recovers from its durable checkpoint store.
// The sweep prices the checkpointing policy — how often to snapshot and how
// eagerly to fsync the WAL — against what a crash then costs: bytes replayed
// at recovery, rows lost from the unsynced WAL tail, downtime, and training
// iterations the team never got back.

// recoveryRun is one cell of the sweep.
type recoveryRun struct {
	Interval  float64 // snapshot interval (virtual seconds)
	SyncEvery int     // WAL records per fsync
	Res       *core.Result
}

// recoverySweep runs the uninterrupted baseline plus one faulted run per
// (snapshot interval × WAL sync cadence) cell. Every run is ROG-4 on the
// same CRUDA workload, seed and outdoor trace; the faulted runs share one
// servercrash schedule so only the checkpoint policy varies.
func recoverySweep(s Scale) (spec string, baseline *core.Result, runs []recoveryRun, err error) {
	t := s.VirtualSeconds
	spec = fmt.Sprintf("servercrash@%.0f+%.0f", t/2, t/16)
	faults, err := simnet.ParseFaultSchedule(spec)
	if err != nil {
		return "", nil, nil, err
	}
	base := EndToEndOptions{
		Paradigm: "cruda", Env: trace.Outdoor, Scale: s,
		Systems: []SystemSpec{{core.ROG, 4}},
	}
	bres, err := RunEndToEnd(base)
	if err != nil {
		return "", nil, nil, err
	}
	baseline = bres[0]
	for _, interval := range []float64{t / 16, t / 4} {
		for _, sync := range []int{1, 64} {
			o := base
			o.Faults = faults
			o.Checkpoint = true
			o.SnapshotEverySeconds = interval
			o.RecoverySecondsPerMB = 0.5
			o.WALSyncEvery = sync
			rs, err := RunEndToEnd(o)
			if err != nil {
				return "", nil, nil, err
			}
			runs = append(runs, recoveryRun{Interval: interval, SyncEvery: sync, Res: rs[0]})
		}
	}
	return spec, baseline, runs, nil
}

// iterationsLost prices the outage in training iterations against the
// uninterrupted baseline (clamped: a lucky run can finish at parity).
func iterationsLost(baseline *core.Result, r *core.Result) int {
	if lost := baseline.Iterations - r.Iterations; lost > 0 {
		return lost
	}
	return 0
}

func runExtRecovery(s Scale) (string, error) {
	s = ablationScale(s)
	spec, baseline, runs, err := recoverySweep(s)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Extension: crash-consistent checkpointing (ROG-4, CRUDA outdoors, faults %s) ==\n\n", spec)
	fmt.Fprintf(&b, "uninterrupted baseline: %d iterations, final acc %.4f\n\n",
		baseline.Iterations, baseline.FinalValue)
	rows := make([][]string, 0, len(runs))
	for _, r := range runs {
		rec := r.Res.Recovery
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r.Interval),
			fmt.Sprintf("%d", r.SyncEvery),
			fmt.Sprintf("%.0f", rec.SnapshotBytes/1e3),
			fmt.Sprintf("%.0f", rec.ReplayedBytes/1e3),
			fmt.Sprintf("%d", rec.ReplayedRecords),
			fmt.Sprintf("%d", rec.RowsLost),
			fmt.Sprintf("%.1f", rec.DowntimeSeconds),
			fmt.Sprintf("%d", r.Res.Iterations),
			fmt.Sprintf("%d", iterationsLost(baseline, r.Res)),
			fmt.Sprintf("%.4f", r.Res.FinalValue),
		})
	}
	b.WriteString(metrics.FormatTable(
		[]string{"ckpt every(s)", "WAL sync", "snap KB", "replay KB", "replay recs",
			"rows lost", "downtime(s)", "iterations", "iters lost", "final acc"},
		rows,
	))
	b.WriteString("\nshorter intervals shrink the WAL replayed at recovery; lazy WAL syncs trade\n")
	b.WriteString("fsync cost for rows lost from the unsynced tail (zero-mass re-stamped on restart)\n")
	return b.String(), nil
}

// runExtRecoveryJSON is the rogbench -json shape of the sweep: the baseline
// plus one system entry per sweep cell, each carrying its recovery counters.
func runExtRecoveryJSON(s Scale) (*Report, error) {
	s = ablationScale(s)
	spec, baseline, runs, err := recoverySweep(s)
	if err != nil {
		return nil, err
	}
	rep := Report{
		Experiment: "ext-recovery",
		Title:      "Extension: crash-consistent checkpointing — interval vs recovery cost",
		Scale:      s.Name, Paradigm: "cruda", Env: "outdoor", Faults: spec,
		Metric: "accuracy", Increasing: true,
	}
	results := []*core.Result{baseline}
	for _, r := range runs {
		results = append(results, r.Res)
	}
	fillReport(&rep, results, false, false)
	rep.Systems[0].Label = "ROG-4 uninterrupted"
	for i, r := range runs {
		sr := &rep.Systems[i+1]
		rec := r.Res.Recovery
		sr.Label = fmt.Sprintf("ROG-4 ckpt=%.0fs sync=%d", r.Interval, r.SyncEvery)
		sr.Recovery = &RecoveryReport{
			CheckpointEverySeconds: r.Interval,
			WALSyncEvery:           r.SyncEvery,
			Recoveries:             rec.Recoveries,
			ReplayedRecords:        rec.ReplayedRecords,
			ReplayedBytes:          rec.ReplayedBytes,
			SnapshotBytes:          rec.SnapshotBytes,
			RowsLost:               rec.RowsLost,
			DowntimeSeconds:        rec.DowntimeSeconds,
			IterationsLost:         iterationsLost(baseline, r.Res),
		}
	}
	return &rep, nil
}
