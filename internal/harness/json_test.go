package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunJSONReportChurn runs the churn experiment at tiny scale through
// the JSON exporter: the report must round-trip through encoding/json with
// populated systems, series and churn counters.
func TestRunJSONReportChurn(t *testing.T) {
	rep, err := RunJSONReport("churn", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "churn" || rep.Scale != "tiny" || rep.Faults == "" {
		t.Fatalf("report header incomplete: %+v", rep)
	}
	if len(rep.Systems) != len(SensitivitySystems()) {
		t.Fatalf("systems = %d, want %d", len(rep.Systems), len(SensitivitySystems()))
	}
	for _, s := range rep.Systems {
		if s.Label == "" || s.Iterations == 0 || len(s.Series) == 0 {
			t.Fatalf("system entry incomplete: %+v", s)
		}
		if s.Churn == nil {
			t.Fatalf("churn run exported no churn counters for %s", s.Label)
		}
		if s.ComputeSeconds <= 0 {
			t.Fatalf("%s compute = %g", s.Label, s.ComputeSeconds)
		}
	}
	// The faulted worker crashed and rejoined in at least one system.
	var reconnects int
	for _, s := range rep.Systems {
		reconnects += s.Churn.Reconnects
	}
	if reconnects == 0 {
		t.Fatal("no system recorded the scripted rejoin")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Target != rep.Target || len(back.Systems) != len(rep.Systems) {
		t.Fatalf("round-trip changed the report: %+v", back)
	}
}

// TestRunJSONReportLoss runs the loss experiment at tiny scale through the
// JSON exporter: the header must name the injected channel and every system
// must carry loss counters.
func TestRunJSONReportLoss(t *testing.T) {
	rep, err := RunJSONReport("loss", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loss != "ge:0.05" || rep.Reliability != "selective" {
		t.Fatalf("loss header incomplete: loss=%q reliability=%q", rep.Loss, rep.Reliability)
	}
	if len(rep.Systems) != len(SensitivitySystems()) {
		t.Fatalf("systems = %d, want %d", len(rep.Systems), len(SensitivitySystems()))
	}
	var retransmitted int
	for _, s := range rep.Systems {
		if s.Loss == nil {
			t.Fatalf("loss run exported no loss counters for %s", s.Label)
		}
		retransmitted += s.Loss.RowsRetransmitted
		if s.Strategy == "ROG" && s.Loss.RowsLostFolded == 0 {
			t.Errorf("%s folded no best-effort rows at 5%% loss", s.Label)
		}
		if s.Strategy == "BSP" && s.Loss.RowsLostFolded != 0 {
			t.Errorf("BSP folded %d rows — whole-model plans are fully reliable", s.Loss.RowsLostFolded)
		}
	}
	if retransmitted == 0 {
		t.Fatal("no system retransmitted anything at 5% loss")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Loss != rep.Loss || back.Systems[0].Loss == nil {
		t.Fatalf("round-trip dropped the loss fields: %+v", back)
	}
}

// TestRunJSONReportExtRecovery runs the checkpoint-policy sweep at tiny
// scale: the baseline entry carries no recovery block, every sweep cell
// carries exactly one recovery with its policy knobs, and a sweep cell with
// lazy WAL syncing must not replay more than its eager sibling at the same
// interval.
func TestRunJSONReportExtRecovery(t *testing.T) {
	rep, err := RunJSONReport("ext-recovery", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "ext-recovery" || rep.Faults == "" {
		t.Fatalf("report header incomplete: %+v", rep)
	}
	if len(rep.Systems) != 5 {
		t.Fatalf("systems = %d, want baseline + 4 sweep cells", len(rep.Systems))
	}
	if rep.Systems[0].Recovery != nil {
		t.Fatal("uninterrupted baseline carries recovery counters")
	}
	for _, s := range rep.Systems[1:] {
		rec := s.Recovery
		if rec == nil {
			t.Fatalf("sweep cell %s exported no recovery counters", s.Label)
		}
		if rec.Recoveries != 1 {
			t.Errorf("%s: %d recoveries, want exactly 1", s.Label, rec.Recoveries)
		}
		if rec.SnapshotBytes <= 0 || rec.DowntimeSeconds <= 0 {
			t.Errorf("%s: empty recovery (%+v)", s.Label, rec)
		}
		if rec.CheckpointEverySeconds <= 0 || rec.WALSyncEvery <= 0 {
			t.Errorf("%s: policy knobs missing (%+v)", s.Label, rec)
		}
		if s.Iterations == 0 || len(s.Series) == 0 {
			t.Errorf("%s: run produced no training history", s.Label)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Systems[1].Recovery == nil || *back.Systems[1].Recovery != *rep.Systems[1].Recovery {
		t.Fatalf("round-trip changed the recovery block: %+v", back.Systems[1].Recovery)
	}
}

// TestRunJSONReportUnknownID checks the exporter refuses non-exportable
// experiment ids instead of writing an empty file.
func TestRunJSONReportUnknownID(t *testing.T) {
	if _, err := RunJSONReport("fig3", tinyScale); err == nil {
		t.Fatal("fig3 (no JSON shape) accepted")
	}
}
