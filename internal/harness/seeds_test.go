package harness

import (
	"bytes"
	"strings"
	"testing"

	"rog/internal/core"
	"rog/internal/trace"
)

func TestRunEndToEndSeeds(t *testing.T) {
	sums, err := RunEndToEndSeeds(EndToEndOptions{
		Paradigm: "cruda",
		Env:      trace.Outdoor,
		Scale:    tinyScale,
		Systems:  []SystemSpec{{core.BSP, 0}, {core.ROG, 4}},
	}, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("summaries %d", len(sums))
	}
	for _, s := range sums {
		if s.Seeds != 2 {
			t.Fatalf("%s aggregated %d seeds", s.Label, s.Seeds)
		}
		if s.MeanFinal <= 0 || s.MeanIters <= 0 || s.MeanJoules <= 0 {
			t.Fatalf("degenerate summary %+v", s)
		}
		if s.StdFinal < 0 {
			t.Fatalf("negative std %+v", s)
		}
	}
	table := SeedSummaryTable(sums)
	if !strings.Contains(table, "ROG-4") || !strings.Contains(table, "mean final") {
		t.Fatalf("summary table:\n%s", table)
	}
}

func TestRunEndToEndSeedsValidation(t *testing.T) {
	if _, err := RunEndToEndSeeds(EndToEndOptions{}, nil); err == nil {
		t.Fatal("no seeds accepted")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "cruda",
		Env:      trace.Indoor,
		Scale:    tinyScale,
		Systems:  []SystemSpec{{core.ROG, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "system,iter,time_s,energy_j,value" {
		t.Fatalf("header: %s", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("too few rows:\n%s", buf.String())
	}
	if !strings.HasPrefix(lines[1], "ROG-4,") {
		t.Fatalf("row: %s", lines[1])
	}
}
