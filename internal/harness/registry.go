package harness

import (
	"fmt"
	"sort"
	"strings"

	"rog/internal/atp"
	"rog/internal/core"
	"rog/internal/energy"
	"rog/internal/lossnet"
	"rog/internal/metrics"
	"rog/internal/rowsync"
	"rog/internal/simnet"
	"rog/internal/trace"
)

// Experiment is one reproducible unit of the paper's evaluation: a figure,
// a table, or an ablation. Run returns the formatted report.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale) (string, error)
}

// Registry lists every experiment, in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "CRUDA outdoors: time composition, statistical efficiency, accuracy vs time, energy (Fig. 1)", runFig1},
		{"fig3", "Bandwidth instability of robotic IoT networks (Fig. 3)", runFig3},
		{"fig6", "CRUDA indoors: end-to-end comparison (Fig. 6)", runFig6},
		{"fig7", "CRIMP outdoors: trajectory error and energy (Fig. 7)", runFig7},
		{"fig8", "Micro-event analysis: bandwidth vs transmission rate vs staleness (Fig. 8)", runFig8},
		{"fig9batch", "Sensitivity to batch size x1/x2/x4 (Fig. 9 left)", runFig9Batch},
		{"fig9workers", "Sensitivity to worker count 4/6/8 (Fig. 9 right)", runFig9Workers},
		{"fig10", "Sensitivity to ROG staleness threshold 4/20/30/40 (Fig. 10)", runFig10},
		{"table1", "MTA values under different thresholds (Table I)", runTable1},
		{"table2", "Default experimental setup (Table II)", runTable2},
		{"table3", "Power in different states (Table III)", runTable3},
		{"ablation-granularity", "Granularity ablation: rows vs layers vs elements (Sec. III-A)", runAblationGranularity},
		{"ablation-importance", "Importance-metric ablation: magnitude vs staleness terms (Algo. 3)", runAblationImportance},
		{"ablation-speculative", "Speculative transmission vs per-row timeout checks (Sec. III-A)", runAblationSpeculative},
		{"churn", "Robustness: accuracy vs time under worker crash, rejoin, and blackout (membership churn)", runChurn},
		{"ext-loss", "Extension: bursty packet loss × selective reliability (lossnet channel)", runExtLoss},
		{"ext-recovery", "Extension: crash-consistent checkpointing — snapshot interval vs recovery cost (servercrash)", runExtRecovery},
		{"ext-pipeline", "Future-work extension: pipelined computation and communication (Sec. VI-D)", runExtPipeline},
		{"ext-dssp", "Extension: dynamic-staleness SSP (Zhao et al.) vs fixed SSP and ROG", runExtDSSP},
		{"fleet", "Fleet scaling: sharded parameter service × edge aggregation, up to 256 robots", runFleet},
		{"serve", "Inference tier: bounded-staleness serving over versioned snapshots — latency × staleness sweep", runServe},
		{"ext-convmlp", "Architecture-faithful CRUDA: ConvMLP stem + MLP head on synthetic images", runExtConvMLP},
		{"ext-gridmap", "Architecture-faithful CRIMP: NICE-SLAM-style feature-grid map", runExtGridMap},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// endToEndReport renders the four panels every end-to-end figure shares.
func endToEndReport(title string, results []*core.Result, increasing bool, s Scale) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n\n", title)
	b.WriteString("-- average time composition of a training iteration --\n")
	b.WriteString(CompositionTable(results))
	b.WriteString("\n-- statistical efficiency (quality vs iteration) --\n")
	b.WriteString(SeriesByIteration(results, maxInt(1, iterStep(results))))
	b.WriteString("\n-- quality vs wall-clock time --\n")
	b.WriteString(SeriesByTime(results, s.VirtualSeconds/8))
	b.WriteString("\n-- energy consumption --\n")
	b.WriteString(EnergyTable(results, increasing))
	if sum := Summary(results, increasing); sum != "" {
		b.WriteString("\n" + sum + "\n")
	}
	return b.String()
}

func iterStep(results []*core.Result) int {
	end := 0
	for _, r := range results {
		if it := r.Series.Last().Iter; it > end {
			end = it
		}
	}
	return maxInt(1, end/8)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func runFig1(s Scale) (string, error) {
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "cruda", Env: trace.Outdoor, Scale: s,
	})
	if err != nil {
		return "", err
	}
	return endToEndReport("Fig. 1: CRUDA, outdoors", results, true, s), nil
}

func runFig6(s Scale) (string, error) {
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "cruda", Env: trace.Indoor, Scale: s,
	})
	if err != nil {
		return "", err
	}
	return endToEndReport("Fig. 6: CRUDA, indoors", results, true, s), nil
}

func runFig7(s Scale) (string, error) {
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "crimp", Env: trace.Outdoor, Scale: s,
	})
	if err != nil {
		return "", err
	}
	return endToEndReport("Fig. 7: CRIMP, outdoors", results, false, s), nil
}

func runFig3(Scale) (string, error) {
	var b strings.Builder
	b.WriteString("== Fig. 3: instability of robotic IoT networks ==\n\n")
	rows := make([][]string, 0, 2)
	for _, env := range []trace.Env{trace.Indoor, trace.Outdoor} {
		tr := trace.GenerateEnv(env, 300, 42)
		rows = append(rows, []string{
			env.String(),
			fmt.Sprintf("%.1f", tr.Mean()),
			fmt.Sprintf("%.2f", tr.MeanFluctuationInterval(0.2)),
			fmt.Sprintf("%.2f", tr.MeanFluctuationInterval(0.4)),
			fmt.Sprintf("%.1f%%", 100*tr.FractionBelow(5)),
		})
	}
	b.WriteString(metrics.FormatTable(
		[]string{"env", "mean Mbps", "s per ≥20% fluct", "s per ≥40% fluct", "time <5 Mbps"},
		rows,
	))
	b.WriteString("\npaper: ≥20% fluctuation every ≈0.4s, ≥40% every ≈1.2s; outdoors often fades to ≈0 Mbps\n")
	return b.String(), nil
}

func runFig8(s Scale) (string, error) {
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "cruda", Env: trace.Outdoor,
		Scale:       Scale{Name: "micro", VirtualSeconds: s.MicroSeconds, CheckpointEvery: 50, PretrainIters: s.PretrainIters},
		Systems:     []SystemSpec{{core.ROG, 4}},
		RecordMicro: true,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Fig. 8: real-time bandwidth vs ROG transmission rate vs staleness (worker 1) ==\n\n")
	b.WriteString(MicroTable(results[0].Micro, 40))
	return b.String(), nil
}

func runFig9Batch(s Scale) (string, error) {
	var b strings.Builder
	b.WriteString("== Fig. 9 (left): batch-size sensitivity, CRUDA outdoors ==\n\n")
	for _, scale := range []int{1, 2, 4} {
		results, err := RunEndToEnd(EndToEndOptions{
			Paradigm: "cruda", Env: trace.Outdoor, Scale: s,
			BatchScale: scale, Systems: SensitivitySystems(),
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "-- batch x%d --\n", scale)
		b.WriteString(CompositionTable(results))
		b.WriteString(EnergyTable(results, true))
		b.WriteString("\n")
	}
	return b.String(), nil
}

func runFig9Workers(s Scale) (string, error) {
	var b strings.Builder
	b.WriteString("== Fig. 9 (right): worker-count sensitivity, CRUDA outdoors ==\n\n")
	for _, n := range []int{4, 6, 8} {
		results, err := RunEndToEnd(EndToEndOptions{
			Paradigm: "cruda", Env: trace.Outdoor, Scale: s,
			Workers: n, Systems: SensitivitySystems(),
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "-- %d workers --\n", n)
		b.WriteString(CompositionTable(results))
		b.WriteString(EnergyTable(results, true))
		b.WriteString("\n")
	}
	return b.String(), nil
}

func runFig10(s Scale) (string, error) {
	systems := []SystemSpec{{core.ROG, 4}, {core.ROG, 20}, {core.ROG, 30}, {core.ROG, 40}}
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "cruda", Env: trace.Outdoor, Scale: s, Systems: systems,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Fig. 10: ROG threshold sensitivity ==\n\n")
	b.WriteString("-- accuracy vs wall-clock time --\n")
	b.WriteString(SeriesByTime(results, s.VirtualSeconds/8))
	b.WriteString("\n-- statistical efficiency --\n")
	b.WriteString(SeriesByIteration(results, iterStep(results)))
	return b.String(), nil
}

func runTable1(Scale) (string, error) {
	var b strings.Builder
	b.WriteString("== Table I: MTA values under different thresholds ==\n\n")
	table := atp.MTATable()
	ths := make([]int, 0, len(table))
	for t := range table {
		ths = append(ths, t)
	}
	sort.Ints(ths)
	paper := map[int]float64{2: 0.5, 3: 0.38, 4: 0.32, 5: 0.28, 6: 0.25, 7: 0.22, 8: 0.2}
	rows := make([][]string, 0, len(ths))
	for _, t := range ths {
		rows = append(rows, []string{
			fmt.Sprintf("%d", t),
			fmt.Sprintf("%.2f", table[t]),
			fmt.Sprintf("%.2f", paper[t]),
		})
	}
	b.WriteString(metrics.FormatTable([]string{"threshold", "MTA (computed)", "MTA (paper)"}, rows))
	return b.String(), nil
}

func runTable2(Scale) (string, error) {
	var b strings.Builder
	b.WriteString("== Table II: default setup ==\n\n")
	b.WriteString(metrics.FormatTable(
		[]string{"parameter", "value"},
		[][]string{
			{"workers", "4"},
			{"batch size (robot)", "24"},
			{"learning rate", "0.025, 1/(1+n/600) decay (paper: 1e-6 for ConvMLP)"},
			{"compute + compression / iter", "2.64 s (2.18 s + 0.46 s)"},
			{"CRUDA paper-equivalent model", "2.1 MB compressed"},
			{"CRIMP paper-equivalent model", "0.76 MB compressed"},
			{"importance coefficients f1/f2", "1 / 1"},
		},
	))
	return b.String(), nil
}

func runTable3(s Scale) (string, error) {
	// Run a short BSP round and recover the per-state wattage from the
	// integrated energy — confirming the measurement pipeline reproduces
	// the model it integrates.
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "cruda", Env: trace.Indoor,
		Scale:   Scale{Name: "t3", VirtualSeconds: 120, CheckpointEvery: 100, PretrainIters: 50},
		Systems: []SystemSpec{{core.BSP, 0}},
	})
	if err != nil {
		return "", err
	}
	_ = results
	m := energy.PaperModel()
	var b strings.Builder
	b.WriteString("== Table III: power in different states (W) ==\n\n")
	b.WriteString(metrics.FormatTable(
		[]string{"state", "power (W)", "paper (W)"},
		[][]string{
			{"computation", fmt.Sprintf("%.2f", m.Watts[energy.Compute]), "13.35"},
			{"communication", fmt.Sprintf("%.2f", m.Watts[energy.Communicate]), "4.25"},
			{"stall", fmt.Sprintf("%.2f", m.Watts[energy.Stall]), "4.04"},
		},
	))
	return b.String(), nil
}

// ablationScale shortens a Scale for ablation sweeps.
func ablationScale(s Scale) Scale {
	s.VirtualSeconds /= 2
	return s
}

func runAblationGranularity(s Scale) (string, error) {
	s = ablationScale(s)
	var b strings.Builder
	b.WriteString("== Ablation: synchronization granularity (ROG-4, CRUDA outdoors) ==\n\n")
	var rows [][]string
	// All granularities run on the same channel: scale it to the row
	// partition's wire size, so finer granularity genuinely pays its
	// index overhead (Sec. III-A's management-cost argument).
	refWL := (EndToEndOptions{Paradigm: "cruda", Scale: s, Seed: 1, Workers: 4}).newWorkload()
	refBytes := float64(rowsync.NewPartition(refWL.Model(0).Params(), rowsync.Rows).TotalWireSize())
	for _, g := range []rowsync.Granularity{rowsync.Layers, rowsync.Rows, rowsync.Elements} {
		wl := (EndToEndOptions{Paradigm: "cruda", Scale: s, Seed: 1, Workers: 4}).newWorkload()
		computeSec, paperBytes := paradigmConfig("cruda")
		cfg := core.Config{
			Strategy: core.ROG, Workers: 4, Threshold: 4,
			Env: trace.Outdoor, Seed: 1,
			ComputeSeconds: computeSec, PaperModelBytes: paperBytes,
			ScaleReferenceBytes: refBytes,
			LR:                  0.025, Momentum: 0.9, LRDecayIters: 600,
			Granularity:       g,
			MaxVirtualSeconds: s.VirtualSeconds,
			CheckpointEvery:   s.CheckpointEvery,
		}
		res, err := core.Run(cfg, wl)
		if err != nil {
			return "", err
		}
		part := rowsync.NewPartition(wl.Model(0).Params(), g)
		rows = append(rows, []string{
			g.String(),
			fmt.Sprintf("%d", part.NumUnits()),
			fmt.Sprintf("%.1f%%", 100*float64(part.IndexOverhead())/float64(part.TotalWireSize())),
			fmt.Sprintf("%.2f", res.Composition.Stall),
			fmt.Sprintf("%d", res.Iterations),
			fmt.Sprintf("%.4f", res.FinalValue),
		})
	}
	b.WriteString(metrics.FormatTable(
		[]string{"granularity", "units", "index overhead", "stall(s)", "iterations", "final acc"},
		rows,
	))
	b.WriteString("\nrows trade index overhead against scheduling flexibility (Sec. III-A)\n")
	return b.String(), nil
}

func runAblationImportance(s Scale) (string, error) {
	s = ablationScale(s)
	var b strings.Builder
	b.WriteString("== Ablation: importance-metric terms (ROG-4, CRUDA outdoors) ==\n\n")
	variants := []struct {
		name string
		c    atp.Coefficients
	}{
		{"magnitude only (f2=0)", atp.Coefficients{F1: 1, F2: 0}},
		{"staleness only (f1=0)", atp.Coefficients{F1: 0, F2: 1}},
		{"both (paper)", atp.Coefficients{F1: 1, F2: 1}},
	}
	var rows [][]string
	for _, v := range variants {
		wl := (EndToEndOptions{Paradigm: "cruda", Scale: s, Seed: 1, Workers: 4}).newWorkload()
		computeSec, paperBytes := paradigmConfig("cruda")
		cfg := core.Config{
			Strategy: core.ROG, Workers: 4, Threshold: 4,
			Env: trace.Outdoor, Seed: 1,
			ComputeSeconds: computeSec, PaperModelBytes: paperBytes,
			LR: 0.025, Momentum: 0.9, LRDecayIters: 600,
			Coeff:             v.c,
			MaxVirtualSeconds: s.VirtualSeconds,
			CheckpointEvery:   s.CheckpointEvery,
		}
		res, err := core.Run(cfg, wl)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			v.name,
			fmt.Sprintf("%.2f", res.Composition.Stall),
			fmt.Sprintf("%d", res.Iterations),
			fmt.Sprintf("%.4f", res.FinalValue),
		})
	}
	b.WriteString(metrics.FormatTable([]string{"variant", "stall(s)", "iterations", "final acc"}, rows))
	return b.String(), nil
}

func runExtPipeline(s Scale) (string, error) {
	var b strings.Builder
	b.WriteString("== Extension: pipelined compute/communication (ROG-4, CRUDA outdoors) ==\n\n")
	var rows [][]string
	for _, pipe := range []bool{false, true} {
		wl := (EndToEndOptions{Paradigm: "cruda", Scale: s, Seed: 1, Workers: 4}).newWorkload()
		computeSec, paperBytes := paradigmConfig("cruda")
		cfg := core.Config{
			Strategy: core.ROG, Workers: 4, Threshold: 4,
			Env: trace.Outdoor, Seed: 1,
			ComputeSeconds: computeSec, PaperModelBytes: paperBytes,
			LR: 0.025, Momentum: 0.9, LRDecayIters: 600,
			Pipeline:          pipe,
			MaxVirtualSeconds: s.VirtualSeconds,
			CheckpointEvery:   s.CheckpointEvery,
		}
		res, err := core.Run(cfg, wl)
		if err != nil {
			return "", err
		}
		name := "sequential (paper)"
		if pipe {
			name = "pipelined (future work)"
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", res.Iterations),
			fmt.Sprintf("%.2f", res.Composition.Total()),
			fmt.Sprintf("%.4f", res.FinalValue),
			fmt.Sprintf("%.0f", res.TotalJoules),
		})
	}
	b.WriteString(metrics.FormatTable(
		[]string{"variant", "iterations", "iter span(s)", "final acc", "total J"},
		rows,
	))
	b.WriteString("\noverlapping hides communication behind the next iteration's compute\n")
	return b.String(), nil
}

// runExtDSSP compares fixed-threshold SSP against DSSP — the dynamic-
// staleness baseline after Zhao et al., whose threshold adapts inside
// [2, Threshold] from the observed iteration spread — and ROG at the same
// cap. The lineup isolates what dynamic staleness alone buys over SSP,
// and what row granularity (ROG) adds on top of staleness control.
func runExtDSSP(s Scale) (string, error) {
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "cruda", Env: trace.Outdoor, Scale: s,
		Systems: []SystemSpec{{core.SSP, 4}, {core.SSP, 20}, {core.DSSP, 20}, {core.ROG, 20}},
	})
	if err != nil {
		return "", err
	}
	return endToEndReport("Extension: dynamic-staleness SSP (DSSP) vs fixed SSP and ROG, CRUDA outdoors",
		results, true, s), nil
}

// runChurn is the robustness experiment: the same crash/rejoin/blackout
// schedule is injected into BSP, SSP and ROG runs, and the report shows who
// keeps learning through it. Worker 1 crashes a quarter of the way in and
// rejoins at the half-way mark; worker 2's link then blacks out for an
// eighth of the run without any membership change.
func runChurn(s Scale) (string, error) {
	t := s.VirtualSeconds
	spec := fmt.Sprintf("crash:1@%.0f+%.0f,blackout:2@%.0f+%.0f", t/4, t/4, 5*t/8, t/8)
	faults, err := simnet.ParseFaultSchedule(spec)
	if err != nil {
		return "", err
	}
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "cruda", Env: trace.Outdoor, Scale: s,
		Systems: SensitivitySystems(),
		Faults:  faults,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Robustness: membership churn (CRUDA outdoors, faults %s) ==\n\n", spec)
	b.WriteString("-- accuracy vs wall-clock time --\n")
	b.WriteString(SeriesByTime(results, s.VirtualSeconds/8))
	b.WriteString("\n-- average time composition of a training iteration --\n")
	b.WriteString(CompositionTable(results))
	b.WriteString("\n-- membership churn --\n")
	b.WriteString(ChurnTable(results))
	if sum := Summary(results, true); sum != "" {
		b.WriteString("\n" + sum + "\n")
	}
	b.WriteString("\ncrashed rows stop pinning the staleness minimum; the rejoin replays the accumulated averaged rows\n")
	return b.String(), nil
}

// runExtLoss is the loss-tolerance experiment: the same CRUDA workload under
// a bursty Gilbert–Elliott channel at two loss rates, comparing BSP (whole-
// model plans have no best-effort class, so every loss retransmits), ROG with
// selective reliability (only the Must prefix retransmits; best-effort losses
// fold their gradients back and ride the next push) and ROG forced
// all-reliable. Selective completes the same workload with strictly fewer
// retransmitted bytes — the acceptance claim of the lossnet subsystem.
func runExtLoss(s Scale) (string, error) {
	s = ablationScale(s)
	modes := []struct {
		label string
		sys   SystemSpec
		rel   lossnet.Reliability
	}{
		{"BSP", SystemSpec{core.BSP, 0}, lossnet.Selective},
		{"ROG-4 selective", SystemSpec{core.ROG, 4}, lossnet.Selective},
		{"ROG-4 all-reliable", SystemSpec{core.ROG, 4}, lossnet.AllReliable},
	}
	var b strings.Builder
	b.WriteString("== Extension: packet loss × selective reliability (CRUDA outdoors) ==\n\n")
	for _, rate := range []float64{0.02, 0.05} {
		fmt.Fprintf(&b, "-- Gilbert–Elliott %.0f%% mean loss, %d-packet mean bursts --\n",
			100*rate, lossnet.DefaultBurst)
		var labels []string
		var results []*core.Result
		for _, m := range modes {
			rs, err := RunEndToEnd(EndToEndOptions{
				Paradigm: "cruda", Env: trace.Outdoor, Scale: s,
				Systems:     []SystemSpec{m.sys},
				Loss:        lossnet.Spec{Kind: "ge", Rate: rate},
				Reliability: m.rel,
			})
			if err != nil {
				return "", err
			}
			labels = append(labels, m.label)
			results = append(results, rs[0])
		}
		b.WriteString(LossTable(labels, results))
		b.WriteString("\n")
	}
	b.WriteString("selective reliability retransmits only the Must prefix (MTA floor + RSP-forced rows);\n")
	b.WriteString("best-effort losses fold back into the local accumulator and ride the next push\n")
	return b.String(), nil
}

func runExtConvMLP(s Scale) (string, error) {
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "cruda", Env: trace.Outdoor, Scale: s,
		Systems: []SystemSpec{{core.BSP, 0}, {core.SSP, 4}, {core.ROG, 4}},
		ConvMLP: true,
	})
	if err != nil {
		return "", err
	}
	return endToEndReport("Extension: ConvMLP (conv stem + MLP head) on image CRUDA, outdoors",
		results, true, s), nil
}

func runExtGridMap(s Scale) (string, error) {
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "crimp", Env: trace.Outdoor, Scale: s,
		Systems: []SystemSpec{{core.BSP, 0}, {core.SSP, 4}, {core.ROG, 4}},
		GridMap: true,
	})
	if err != nil {
		return "", err
	}
	return endToEndReport("Extension: NICE-SLAM-style feature-grid map on CRIMP, outdoors",
		results, false, s), nil
}

func runAblationSpeculative(s Scale) (string, error) {
	s = ablationScale(s)
	var b strings.Builder
	b.WriteString("== Ablation: speculative transmission vs per-row timeout checks (ROG-4) ==\n\n")
	variants := []struct {
		name  string
		check float64
	}{
		{"speculative (paper)", 0},
		{"per-row check 5ms", 0.005},
		{"per-row check 20ms", 0.020},
	}
	var rows [][]string
	for _, v := range variants {
		wl := (EndToEndOptions{Paradigm: "cruda", Scale: s, Seed: 1, Workers: 4}).newWorkload()
		computeSec, paperBytes := paradigmConfig("cruda")
		cfg := core.Config{
			Strategy: core.ROG, Workers: 4, Threshold: 4,
			Env: trace.Outdoor, Seed: 1,
			ComputeSeconds: computeSec, PaperModelBytes: paperBytes,
			LR: 0.025, Momentum: 0.9, LRDecayIters: 600,
			PerUnitCheckSeconds: v.check,
			MaxVirtualSeconds:   s.VirtualSeconds,
			CheckpointEvery:     s.CheckpointEvery,
		}
		res, err := core.Run(cfg, wl)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			v.name,
			fmt.Sprintf("%.2f", res.Composition.Comm),
			fmt.Sprintf("%.2f", res.Composition.Total()),
			fmt.Sprintf("%d", res.Iterations),
			fmt.Sprintf("%.4f", res.FinalValue),
		})
	}
	b.WriteString(metrics.FormatTable(
		[]string{"variant", "comm(s)", "iter total(s)", "iterations", "final acc"},
		rows,
	))
	b.WriteString("\ninserting judgements between rows wastes airtime the speculative design reclaims\n")
	return b.String(), nil
}
