package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"rog/internal/nn"
	"rog/internal/tensor"
)

func smallCRUDA() *CRUDA {
	cfg := DefaultCRUDAConfig()
	cfg.Classes = 10
	cfg.Superclass = 5
	cfg.TrainPer = 20
	cfg.TestPer = 5
	return NewCRUDA(cfg)
}

func TestCRUDASizesAndLabels(t *testing.T) {
	d := smallCRUDA()
	if len(d.Train) != 200 || len(d.Test) != 50 {
		t.Fatalf("sizes %d/%d", len(d.Train), len(d.Test))
	}
	counts := make(map[int]int)
	for _, s := range d.Train {
		if s.Y < 0 || s.Y >= 10 {
			t.Fatalf("label %d out of range", s.Y)
		}
		if len(s.X) != d.Cfg.Dim {
			t.Fatalf("dim %d", len(s.X))
		}
		counts[s.Y]++
	}
	for c := 0; c < 10; c++ {
		if counts[c] != 20 {
			t.Fatalf("class %d has %d samples", c, counts[c])
		}
	}
}

func TestCRUDADeterministic(t *testing.T) {
	a, b := smallCRUDA(), smallCRUDA()
	for i := range a.Train {
		if a.Train[i].Y != b.Train[i].Y || a.Train[i].X[0] != b.Train[i].X[0] {
			t.Fatal("same seed produced different datasets")
		}
	}
}

func TestCRUDAIsLearnable(t *testing.T) {
	// A linear probe should beat chance comfortably on the clean domain.
	d := smallCRUDA()
	r := tensor.NewRNG(2)
	model := nn.NewClassifierMLP(d.Cfg.Dim, []int{32}, 10, r)
	opt := nn.NewSGD(0.05, 0.9)
	shard := NewShard(d.Train, 3)
	for i := 0; i < 300; i++ {
		x, y := shard.Batch(32)
		model.ZeroGrads()
		_, g := nn.SoftmaxCrossEntropy(model.Forward(x), y)
		model.Backward(g)
		opt.Step(model.Params(), model.Grads())
	}
	x, y := batchAll(d.Test)
	acc := nn.Accuracy(model.Forward(x), y)
	if acc < 0.5 {
		t.Fatalf("test accuracy %.3f too low — dataset not learnable", acc)
	}
}

func batchAll(samples []Sample) (*tensor.Matrix, []int) {
	x := tensor.New(len(samples), len(samples[0].X))
	y := make([]int, len(samples))
	for i, s := range samples {
		copy(x.Row(i), s.X)
		y[i] = s.Y
	}
	return x, y
}

func TestCorruptionDegradesAccuracyAndPreservesOriginals(t *testing.T) {
	d := smallCRUDA()
	r := tensor.NewRNG(2)
	model := nn.NewClassifierMLP(d.Cfg.Dim, []int{32}, 10, r)
	opt := nn.NewSGD(0.05, 0.9)
	shard := NewShard(d.Train, 3)
	for i := 0; i < 300; i++ {
		x, y := shard.Batch(32)
		model.ZeroGrads()
		_, g := nn.SoftmaxCrossEntropy(model.Forward(x), y)
		model.Backward(g)
		opt.Step(model.Params(), model.Grads())
	}
	orig := d.Test[0].X[0]
	corr := Corruption{Fog: 0.4, Brightness: 0.4, Gain: 0.5, Noise: 0.4, Seed: 7}
	noisy := corr.Apply(d.Test, d.Cfg.Dim)
	if d.Test[0].X[0] != orig {
		t.Fatal("corruption mutated the source samples")
	}
	xc, yc := batchAll(noisy)
	x, y := batchAll(d.Test)
	clean := nn.Accuracy(model.Forward(x), y)
	foggy := nn.Accuracy(model.Forward(xc), yc)
	if foggy >= clean-0.05 {
		t.Fatalf("corruption did not degrade accuracy: clean %.3f foggy %.3f", clean, foggy)
	}
}

func TestPartitionPachinkoCoversAll(t *testing.T) {
	d := smallCRUDA()
	shards := PartitionPachinko(d.Train, 4, 10, 5, 0.3, 11)
	total := 0
	for _, s := range shards {
		if len(s) == 0 {
			t.Fatal("empty shard")
		}
		total += len(s)
	}
	if total != len(d.Train) {
		t.Fatalf("partition lost samples: %d vs %d", total, len(d.Train))
	}
}

func TestPartitionPachinkoIsNonIID(t *testing.T) {
	d := smallCRUDA()
	shards := PartitionPachinko(d.Train, 4, 10, 5, 0.2, 11)
	// Measure max class share per shard; with a low alpha it should be
	// clearly above the IID share (which is 1/10 per class).
	var maxShare float64
	for _, s := range shards {
		counts := make(map[int]int)
		for _, smp := range s {
			counts[smp.Y]++
		}
		for _, c := range counts {
			share := float64(c) / float64(len(s))
			if share > maxShare {
				maxShare = share
			}
		}
	}
	if maxShare < 0.2 {
		t.Fatalf("partition looks IID: max class share %.3f", maxShare)
	}
}

func TestPartitionEqualBalanced(t *testing.T) {
	d := smallCRUDA()
	shards := PartitionEqual(d.Train, 4, 5)
	for _, s := range shards {
		if len(s) != 50 {
			t.Fatalf("unbalanced equal partition: %d", len(s))
		}
	}
}

func TestShardBatchShape(t *testing.T) {
	d := smallCRUDA()
	sh := NewShard(d.Train, 1)
	x, y := sh.Batch(7)
	if x.Rows != 7 || x.Cols != d.Cfg.Dim || len(y) != 7 {
		t.Fatalf("batch %dx%d labels %d", x.Rows, x.Cols, len(y))
	}
}

func TestGammaPositiveAndMean(t *testing.T) {
	r := tensor.NewRNG(4)
	f := func(a8 uint8) bool {
		alpha := 0.1 + float64(a8%40)/10
		v := gamma(r, alpha)
		return v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Mean of Gamma(2,1) is 2.
	var sum float64
	n := 5000
	for i := 0; i < n; i++ {
		sum += gamma(r, 2)
	}
	if m := sum / float64(n); math.Abs(m-2) > 0.15 {
		t.Fatalf("Gamma(2) mean=%v", m)
	}
}

func TestSceneValuesBounded(t *testing.T) {
	s := NewScene(6, 3, 9)
	r := tensor.NewRNG(1)
	for i := 0; i < 500; i++ {
		x, y := 2*r.Float64()-1, 2*r.Float64()-1
		v := s.At(x, y)
		if v < -1 || v > 1 || math.IsNaN(v) {
			t.Fatalf("scene value %v at (%v,%v)", v, x, y)
		}
	}
}

func TestSceneHasStructure(t *testing.T) {
	s := NewScene(6, 3, 9)
	// The field must not be constant: sample variance should be material.
	var vals []float64
	for x := -0.9; x <= 0.9; x += 0.15 {
		for y := -0.9; y <= 0.9; y += 0.15 {
			vals = append(vals, s.At(x, y))
		}
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	varv := 0.0
	for _, v := range vals {
		varv += (v - mean) * (v - mean)
	}
	varv /= float64(len(vals))
	if varv < 0.01 {
		t.Fatalf("scene variance %v too low", varv)
	}
}

func TestTrajectoryShapeAndBounds(t *testing.T) {
	scene := NewScene(5, 2, 3)
	cfg := CRIMPConfig{Scene: scene, RaysPerObs: 16, SensorNoise: 0.01, Seed: 5}
	obs := Trajectory(cfg, 20)
	if len(obs) != 20 {
		t.Fatalf("obs count %d", len(obs))
	}
	if obs[0].Pose != [2]float64{0, 0} {
		t.Fatalf("trajectory must start at shared origin, got %v", obs[0].Pose)
	}
	for _, o := range obs {
		if o.Points.Rows != 16 || o.Points.Cols != 2 || o.Values.Rows != 16 {
			t.Fatal("bad observation shape")
		}
		if math.Abs(o.Pose[0]) > 1 || math.Abs(o.Pose[1]) > 1 {
			t.Fatalf("pose out of bounds %v", o.Pose)
		}
	}
}

func TestMapBatch(t *testing.T) {
	scene := NewScene(5, 2, 3)
	cfg := CRIMPConfig{Scene: scene, RaysPerObs: 8, SensorNoise: 0, Seed: 5}
	obs := Trajectory(cfg, 5)
	x, y := MapBatch(obs, tensor.NewRNG(1), 12)
	if x.Rows != 12 || x.Cols != 2 || y.Rows != 12 || y.Cols != 1 {
		t.Fatal("bad MapBatch shape")
	}
}

// perfectField evaluates the ground-truth scene directly — localization
// against it must nearly eliminate the initial pose error.
type perfectField struct{ s *Scene }

func (f perfectField) Eval(pts *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(pts.Rows, 1)
	for i := 0; i < pts.Rows; i++ {
		out.Set(i, 0, float32(f.s.At(float64(pts.At(i, 0)), float64(pts.At(i, 1)))))
	}
	return out
}

// constantField knows nothing — localization against it must leave roughly
// the initial error.
type constantField struct{}

func (constantField) Eval(pts *tensor.Matrix) *tensor.Matrix {
	return tensor.New(pts.Rows, 1)
}

func TestTrajectoryErrorSeparatesGoodAndBadMaps(t *testing.T) {
	scene := NewScene(8, 4, 21)
	cfg := CRIMPConfig{Scene: scene, RaysPerObs: 24, SensorNoise: 0, Seed: 6}
	obs := Trajectory(cfg, 12)
	lcfg := DefaultLocalizeConfig()
	good := TrajectoryError(perfectField{scene}, obs, lcfg, 7)
	bad := TrajectoryError(constantField{}, obs, lcfg, 7)
	if good >= bad {
		t.Fatalf("perfect map error %.3f >= blank map error %.3f", good, bad)
	}
	if good > lcfg.InitError*0.8 {
		t.Fatalf("perfect map barely localized: %.3f (init %.3f)", good, lcfg.InitError)
	}
	if bad < lcfg.InitError*0.5 {
		t.Fatalf("blank map localized suspiciously well: %.3f", bad)
	}
}

func TestTrajectoryErrorEmpty(t *testing.T) {
	if TrajectoryError(constantField{}, nil, DefaultLocalizeConfig(), 1) != 0 {
		t.Fatal("empty observation list should give 0")
	}
}
