package dataset

import (
	"rog/internal/tensor"
)

// ImageConfig controls the synthetic image classification task used with
// the ConvMLP model family: each class is a characteristic spatial pattern
// (an oriented grating plus a class-specific blob layout), jittered per
// sample — small images whose class evidence is genuinely spatial, so a
// convolutional stem earns its keep.
type ImageConfig struct {
	Classes  int
	H, W     int
	TrainPer int
	TestPer  int
	Jitter   float64 // per-sample pixel noise std
	Shift    int     // max per-sample translation in pixels
	Seed     uint64
}

// DefaultImageConfig returns an 8×8, 10-class task sized for CI.
func DefaultImageConfig() ImageConfig {
	return ImageConfig{
		Classes:  10,
		H:        8,
		W:        8,
		TrainPer: 60,
		TestPer:  20,
		Jitter:   0.35,
		Shift:    1,
		Seed:     1,
	}
}

// ImageSet is the synthetic image dataset (flattened pixels in Sample.X).
type ImageSet struct {
	Cfg       ImageConfig
	Train     []Sample
	Test      []Sample
	templates []*tensor.Matrix // per-class H×W pattern
}

// NewImageSet synthesizes the dataset.
func NewImageSet(cfg ImageConfig) *ImageSet {
	r := tensor.NewRNG(cfg.Seed)
	d := &ImageSet{Cfg: cfg}
	for c := 0; c < cfg.Classes; c++ {
		d.templates = append(d.templates, classTemplate(cfg, r))
	}
	d.Train = d.generate(cfg.TrainPer, r.Split())
	d.Test = d.generate(cfg.TestPer, r.Split())
	return d
}

// classTemplate draws a class's characteristic pattern: an oriented
// sinusoidal grating plus two bright blobs at class-specific positions.
func classTemplate(cfg ImageConfig, r *tensor.RNG) *tensor.Matrix {
	t := tensor.New(cfg.H, cfg.W)
	theta := r.Float64() * 3.14159
	freq := 0.6 + r.Float64()*1.2
	phase := r.Float64() * 6.28318
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			u := float64(x)*cos(theta) + float64(y)*sin(theta)
			t.Set(y, x, float32(0.6*sin(u*freq+phase)))
		}
	}
	for b := 0; b < 2; b++ {
		by, bx := r.Intn(cfg.H), r.Intn(cfg.W)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				y, x := by+dy, bx+dx
				if y >= 0 && y < cfg.H && x >= 0 && x < cfg.W {
					t.Set(y, x, t.At(y, x)+0.8)
				}
			}
		}
	}
	return t
}

// generate renders per samples per class with jitter and translation.
func (d *ImageSet) generate(per int, r *tensor.RNG) []Sample {
	cfg := d.Cfg
	out := make([]Sample, 0, per*cfg.Classes)
	for c := 0; c < cfg.Classes; c++ {
		tpl := d.templates[c]
		for k := 0; k < per; k++ {
			sy := r.Intn(2*cfg.Shift+1) - cfg.Shift
			sx := r.Intn(2*cfg.Shift+1) - cfg.Shift
			x := make([]float32, cfg.H*cfg.W)
			for y := 0; y < cfg.H; y++ {
				for xx := 0; xx < cfg.W; xx++ {
					ty, tx := y+sy, xx+sx
					var v float32
					if ty >= 0 && ty < cfg.H && tx >= 0 && tx < cfg.W {
						v = tpl.At(ty, tx)
					}
					x[y*cfg.W+xx] = v + float32(r.Norm()*cfg.Jitter)
				}
			}
			out = append(out, Sample{X: x, Y: c})
		}
	}
	return out
}

// Dim returns the flattened sample width H·W.
func (d *ImageSet) Dim() int { return d.Cfg.H * d.Cfg.W }
