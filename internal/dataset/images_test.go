package dataset

import (
	"testing"

	"rog/internal/nn"
	"rog/internal/tensor"
)

func smallImages() *ImageSet {
	cfg := DefaultImageConfig()
	cfg.Classes = 5
	cfg.TrainPer = 40
	cfg.TestPer = 10
	return NewImageSet(cfg)
}

func TestImageSetShapes(t *testing.T) {
	d := smallImages()
	if len(d.Train) != 200 || len(d.Test) != 50 {
		t.Fatalf("sizes %d/%d", len(d.Train), len(d.Test))
	}
	if d.Dim() != 64 {
		t.Fatalf("dim %d", d.Dim())
	}
	for _, s := range d.Train {
		if len(s.X) != 64 || s.Y < 0 || s.Y >= 5 {
			t.Fatalf("bad sample: len=%d y=%d", len(s.X), s.Y)
		}
	}
}

func TestImageSetDeterministic(t *testing.T) {
	a, b := smallImages(), smallImages()
	for i := range a.Train {
		if a.Train[i].X[0] != b.Train[i].X[0] || a.Train[i].Y != b.Train[i].Y {
			t.Fatal("same seed produced different images")
		}
	}
}

func TestImageSetLearnableByConvMLP(t *testing.T) {
	d := smallImages()
	r := tensor.NewRNG(3)
	model := nn.NewConvMLP(1, 8, 8, []int{6}, []int{24}, 5, r)
	opt := nn.NewSGD(0.03, 0.9)
	shard := NewShard(d.Train, 7)
	for i := 0; i < 250; i++ {
		x, y := shard.Batch(24)
		model.ZeroGrads()
		_, g := nn.SoftmaxCrossEntropy(model.Forward(x), y)
		model.Backward(g)
		opt.Step(model.Params(), model.Grads())
	}
	x, y := batchAll(d.Test)
	if acc := nn.Accuracy(model.Forward(x), y); acc < 0.6 {
		t.Fatalf("ConvMLP accuracy %.3f on images", acc)
	}
}

func TestImageCorruptionDegrades(t *testing.T) {
	d := smallImages()
	r := tensor.NewRNG(3)
	model := nn.NewConvMLP(1, 8, 8, []int{6}, []int{24}, 5, r)
	opt := nn.NewSGD(0.03, 0.9)
	shard := NewShard(d.Train, 7)
	for i := 0; i < 250; i++ {
		x, y := shard.Batch(24)
		model.ZeroGrads()
		_, g := nn.SoftmaxCrossEntropy(model.Forward(x), y)
		model.Backward(g)
		opt.Step(model.Params(), model.Grads())
	}
	corr := Corruption{Fog: 0.5, Brightness: 0.4, Gain: 0.7, Noise: 0.5, Seed: 5}
	noisy := corr.Apply(d.Test, d.Dim())
	cx, cy := batchAll(noisy)
	x, y := batchAll(d.Test)
	clean := nn.Accuracy(model.Forward(x), y)
	foggy := nn.Accuracy(model.Forward(cx), cy)
	if foggy >= clean-0.05 {
		t.Fatalf("image corruption did not degrade: %.3f -> %.3f", clean, foggy)
	}
}
