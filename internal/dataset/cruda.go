// Package dataset synthesizes the two workloads the paper evaluates on:
//
//   - CRUDA (coordinated robotic unsupervised domain adaptation): a 100-class
//     classification task standing in for Fed-CIFAR100, with DeepTest-style
//     fog/brightness corruption and a Pachinko-inspired non-IID partition.
//   - CRIMP (coordinated robotic implicit mapping and positioning): a
//     synthetic 2-D scene observed along robot trajectories, learned as an
//     implicit map, with trajectory error measured by pose localization.
//
// The paper's datasets are real images; what its experiments actually
// measure is how synchronization strategies shape SGD trajectories, so a
// controlled synthetic task with the same structure (pretrained model,
// domain shift, unbalanced shards, online adaptation) preserves the
// evaluated behaviour at laptop scale.
package dataset

import (
	"fmt"

	"rog/internal/tensor"
)

// CRUDAConfig controls the synthetic classification task.
type CRUDAConfig struct {
	Classes     int     // number of classes (paper: 100)
	Superclass  int     // classes per superclass group (paper's CIFAR100: 5)
	Dim         int     // feature dimensionality
	TrainPer    int     // training samples per class
	TestPer     int     // test samples per class
	ClusterSep  float64 // distance scale between class centroids
	SampleNoise float64 // within-class noise std
	Seed        uint64
}

// DefaultCRUDAConfig mirrors the paper's dataset shape at reduced scale.
func DefaultCRUDAConfig() CRUDAConfig {
	return CRUDAConfig{
		Classes:     100,
		Superclass:  5,
		Dim:         32,
		TrainPer:    50,
		TestPer:     10,
		ClusterSep:  1.5,
		SampleNoise: 1.4,
		Seed:        1,
	}
}

// Sample is one labelled example.
type Sample struct {
	X []float32
	Y int
}

// CRUDA is the synthetic domain-adaptation dataset.
type CRUDA struct {
	Cfg   CRUDAConfig
	Train []Sample
	Test  []Sample
	// centroids[c] is the clean-domain mean of class c; kept so corruption
	// can be applied deterministically to fresh copies.
	centroids [][]float32
}

// NewCRUDA synthesizes the dataset. Class centroids are grouped into
// superclasses (CIFAR100-style coarse labels): centroids within a superclass
// share a group direction, which is what makes the Pachinko-style partition
// meaningfully non-IID.
func NewCRUDA(cfg CRUDAConfig) *CRUDA {
	if cfg.Classes <= 0 || cfg.Dim <= 0 {
		panic(fmt.Sprintf("dataset: bad CRUDA config %+v", cfg))
	}
	r := tensor.NewRNG(cfg.Seed)
	d := &CRUDA{Cfg: cfg}

	groups := (cfg.Classes + cfg.Superclass - 1) / cfg.Superclass
	groupDir := make([][]float32, groups)
	for g := range groupDir {
		v := make([]float32, cfg.Dim)
		for i := range v {
			v[i] = float32(r.Norm() * cfg.ClusterSep)
		}
		groupDir[g] = v
	}
	d.centroids = make([][]float32, cfg.Classes)
	for c := 0; c < cfg.Classes; c++ {
		v := make([]float32, cfg.Dim)
		base := groupDir[c/cfg.Superclass]
		for i := range v {
			v[i] = base[i] + float32(r.Norm()*cfg.ClusterSep*0.8)
		}
		d.centroids[c] = v
	}

	gen := func(per int, rr *tensor.RNG) []Sample {
		out := make([]Sample, 0, per*cfg.Classes)
		for c := 0; c < cfg.Classes; c++ {
			for k := 0; k < per; k++ {
				x := make([]float32, cfg.Dim)
				for i := range x {
					x[i] = d.centroids[c][i] + float32(rr.Norm()*cfg.SampleNoise)
				}
				out = append(out, Sample{X: x, Y: c})
			}
		}
		return out
	}
	d.Train = gen(cfg.TrainPer, r.Split())
	d.Test = gen(cfg.TestPer, r.Split())
	return d
}

// Corruption is a DeepTest-style domain shift applied to samples: fog
// (contrast compression toward a haze vector), brightness (additive bias),
// per-channel gain jitter (the sensor-response warp that actually moves the
// decision boundaries) and extra sensor noise.
type Corruption struct {
	Fog        float64 // 0 = none, 1 = full haze
	Brightness float64 // additive shift in feature units
	Gain       float64 // std of per-channel multiplicative jitter
	Noise      float64 // extra sensor noise std
	Seed       uint64
}

// Apply returns corrupted copies of the samples. The originals are not
// modified. The haze vector and channel gains are fixed per Corruption value
// (the environment changed once), only Noise is drawn per sample.
func (c Corruption) Apply(in []Sample, dim int) []Sample {
	r := tensor.NewRNG(c.Seed + 0x5eed)
	haze := make([]float32, dim)
	gain := make([]float32, dim)
	for i := range haze {
		haze[i] = float32(r.Norm() * 0.5)
		gain[i] = float32(1 + r.Norm()*c.Gain)
	}
	out := make([]Sample, len(in))
	for i, s := range in {
		x := make([]float32, len(s.X))
		for j, v := range s.X {
			warped := float64(v) * float64(gain[j])
			fogged := warped*(1-c.Fog) + float64(haze[j])*c.Fog
			x[j] = float32(fogged + c.Brightness + r.Norm()*c.Noise)
		}
		out[i] = Sample{X: x, Y: s.Y}
	}
	return out
}

// Shard is one worker's slice of the dataset.
type Shard struct {
	Samples []Sample
	rng     *tensor.RNG
}

// NewShard wraps samples with a private sampling stream.
func NewShard(samples []Sample, seed uint64) *Shard {
	return &Shard{Samples: samples, rng: tensor.NewRNG(seed)}
}

// Len returns the shard size.
func (s *Shard) Len() int { return len(s.Samples) }

// Batch draws a uniform random batch (with replacement) as a design matrix
// and label slice.
func (s *Shard) Batch(size int) (*tensor.Matrix, []int) {
	if len(s.Samples) == 0 {
		panic("dataset: Batch on empty shard")
	}
	dim := len(s.Samples[0].X)
	x := tensor.New(size, dim)
	y := make([]int, size)
	for i := 0; i < size; i++ {
		smp := s.Samples[s.rng.Intn(len(s.Samples))]
		copy(x.Row(i), smp.X)
		y[i] = smp.Y
	}
	return x, y
}

// PartitionPachinko splits samples into n shards with a Pachinko-allocation-
// inspired hierarchical draw: each shard first draws a distribution over
// superclasses, then over classes within them, producing the unbalanced
// non-IID shards the paper simulates with the Pachinko Allocation Method.
// Every sample is assigned to exactly one shard.
func PartitionPachinko(samples []Sample, n int, classes, superclass int, alpha float64, seed uint64) [][]Sample {
	if n <= 0 {
		panic("dataset: PartitionPachinko with n <= 0")
	}
	r := tensor.NewRNG(seed)
	groups := (classes + superclass - 1) / superclass

	// shardWeight[s][c] = unnormalized preference of shard s for class c.
	shardWeight := make([][]float64, n)
	for s := range shardWeight {
		gw := make([]float64, groups)
		for g := range gw {
			gw[g] = gamma(r, alpha)
		}
		cw := make([]float64, classes)
		for c := 0; c < classes; c++ {
			cw[c] = gw[c/superclass] * gamma(r, alpha)
		}
		shardWeight[s] = cw
	}

	out := make([][]Sample, n)
	for _, smp := range samples {
		// Sample shard proportional to its preference for this class.
		var total float64
		for s := 0; s < n; s++ {
			total += shardWeight[s][smp.Y]
		}
		u := r.Float64() * total
		pick := 0
		for s := 0; s < n; s++ {
			u -= shardWeight[s][smp.Y]
			if u <= 0 {
				pick = s
				break
			}
		}
		out[pick] = append(out[pick], smp)
	}
	// Guarantee no empty shard: steal one sample from the largest.
	for s := range out {
		if len(out[s]) == 0 {
			big := 0
			for i := range out {
				if len(out[i]) > len(out[big]) {
					big = i
				}
			}
			last := len(out[big]) - 1
			out[s] = append(out[s], out[big][last])
			out[big] = out[big][:last]
		}
	}
	return out
}

// PartitionEqual splits samples into n near-equal contiguous shards after a
// deterministic shuffle (the paper's "equally divided without overlap").
func PartitionEqual(samples []Sample, n int, seed uint64) [][]Sample {
	r := tensor.NewRNG(seed)
	perm := r.Perm(len(samples))
	out := make([][]Sample, n)
	for i, pi := range perm {
		out[i%n] = append(out[i%n], samples[pi])
	}
	return out
}

// gamma draws a Gamma(alpha, 1) variate (Marsaglia-Tsang for alpha>=1,
// boosted for alpha<1). Used for Dirichlet draws.
func gamma(r *tensor.RNG, alpha float64) float64 {
	if alpha < 1 {
		u := r.Float64()
		if u == 0 {
			u = 1e-12
		}
		return gamma(r, alpha+1) * pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1.0 / (3.0 * sqrt(d))
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			continue
		}
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if ln(u) < 0.5*x*x+d*(1-v+ln(v)) {
			return d * v
		}
	}
}
