package dataset

import "math"

// Thin wrappers keep the sampling code readable without repeating the
// math-package qualifier in hot formulas.

func sqrt(x float64) float64     { return math.Sqrt(x) }
func ln(x float64) float64       { return math.Log(x) }
func pow(x, y float64) float64   { return math.Pow(x, y) }
func hypot(x, y float64) float64 { return math.Hypot(x, y) }
func cos(x float64) float64      { return math.Cos(x) }
func sin(x float64) float64      { return math.Sin(x) }
func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
