package dataset

import (
	"rog/internal/tensor"
)

// Scene is a synthetic 2-D environment: a smooth occupancy field in
// [-1,1]² built from random soft discs and walls. It is the ground truth the
// CRIMP implicit map learns, playing the role of the ScanNet apartment.
type Scene struct {
	discs []disc
	walls []wall
}

type disc struct {
	cx, cy, r, sign float64
}

type wall struct {
	// Soft band around the line segment (x1,y1)-(x2,y2).
	x1, y1, x2, y2, half float64
}

// NewScene synthesizes a scene with the given number of features.
func NewScene(nDiscs, nWalls int, seed uint64) *Scene {
	r := tensor.NewRNG(seed)
	s := &Scene{}
	for i := 0; i < nDiscs; i++ {
		sign := 1.0
		if r.Float64() < 0.4 {
			sign = -1
		}
		s.discs = append(s.discs, disc{
			cx:   2*r.Float64() - 1,
			cy:   2*r.Float64() - 1,
			r:    0.1 + 0.25*r.Float64(),
			sign: sign,
		})
	}
	for i := 0; i < nWalls; i++ {
		x := 2*r.Float64() - 1
		y := 2*r.Float64() - 1
		dx := (2*r.Float64() - 1) * 0.8
		dy := (2*r.Float64() - 1) * 0.8
		s.walls = append(s.walls, wall{x1: x, y1: y, x2: x + dx, y2: y + dy, half: 0.03 + 0.05*r.Float64()})
	}
	return s
}

// At returns the occupancy value in [-1, 1] at position (x, y).
func (s *Scene) At(x, y float64) float64 {
	v := -0.6 // free space bias
	for _, d := range s.discs {
		dist := hypot(x-d.cx, y-d.cy)
		// Smooth bump: contributes sign * falloff.
		v += d.sign * 1.4 / (1 + pow(dist/d.r, 4))
	}
	for _, w := range s.walls {
		v += 1.2 / (1 + pow(w.dist(x, y)/w.half, 4))
	}
	return clamp(v, -1, 1)
}

func (w wall) dist(x, y float64) float64 {
	vx, vy := w.x2-w.x1, w.y2-w.y1
	wx, wy := x-w.x1, y-w.y1
	c1 := vx*wx + vy*wy
	if c1 <= 0 {
		return hypot(x-w.x1, y-w.y1)
	}
	c2 := vx*vx + vy*vy
	if c2 <= c1 {
		return hypot(x-w.x2, y-w.y2)
	}
	t := c1 / c2
	return hypot(x-(w.x1+t*vx), y-(w.y1+t*vy))
}

// Observation is what a robot at a pose sees: occupancy sampled at fixed
// body-frame offsets (a stand-in for a depth image).
type Observation struct {
	Pose   [2]float64 // ground-truth position
	Points *tensor.Matrix
	Values *tensor.Matrix
}

// CRIMPConfig controls trajectory and observation synthesis.
type CRIMPConfig struct {
	Scene       *Scene
	RaysPerObs  int     // samples per observation
	SensorNoise float64 // additive noise on observed values
	Seed        uint64
}

// Trajectory generates n observations along a smooth random walk, the
// "short sequence of continuous images" of the paper. The first observation
// starts at the shared origin (the fixed shared image of the paper).
func Trajectory(cfg CRIMPConfig, n int) []Observation {
	r := tensor.NewRNG(cfg.Seed)
	obs := make([]Observation, 0, n)
	x, y := 0.0, 0.0
	heading := r.Float64() * 6.28318
	for i := 0; i < n; i++ {
		obs = append(obs, observe(cfg, r, x, y))
		heading += (r.Float64() - 0.5) * 0.9
		step := 0.04 + 0.04*r.Float64()
		x = clamp(x+step*cos(heading), -0.95, 0.95)
		y = clamp(y+step*sin(heading), -0.95, 0.95)
	}
	return obs
}

func observe(cfg CRIMPConfig, r *tensor.RNG, px, py float64) Observation {
	pts := tensor.New(cfg.RaysPerObs, 2)
	vals := tensor.New(cfg.RaysPerObs, 1)
	for k := 0; k < cfg.RaysPerObs; k++ {
		// Sample points within sensing radius of the pose.
		ang := r.Float64() * 6.28318
		rad := r.Float64() * 0.35
		sx := clamp(px+rad*cos(ang), -1, 1)
		sy := clamp(py+rad*sin(ang), -1, 1)
		pts.Set(k, 0, float32(sx))
		pts.Set(k, 1, float32(sy))
		vals.Set(k, 0, float32(clamp(cfg.Scene.At(sx, sy)+r.Norm()*cfg.SensorNoise, -1, 1)))
	}
	return Observation{Pose: [2]float64{px, py}, Points: pts, Values: vals}
}

// MapBatch flattens a set of observations into a training batch of
// (coordinate → value) pairs for the implicit map.
func MapBatch(obs []Observation, r *tensor.RNG, size int) (*tensor.Matrix, *tensor.Matrix) {
	x := tensor.New(size, 2)
	y := tensor.New(size, 1)
	for i := 0; i < size; i++ {
		o := obs[r.Intn(len(obs))]
		k := r.Intn(o.Points.Rows)
		copy(x.Row(i), o.Points.Row(k))
		y.Set(i, 0, o.Values.At(k, 0))
	}
	return x, y
}

// MapField is any learned field that can be evaluated at batched 2-D
// coordinates; satisfied by *nn.Sequential via an adapter in the caller.
type MapField interface {
	Eval(pts *tensor.Matrix) *tensor.Matrix
}

// LocalizeConfig controls pose localization against a learned map. The
// solver is a derivative-free pattern search: at each step it probes the
// four axis neighbours at the current step size, moves to the best if it
// improves the photometric loss, and shrinks the step otherwise. This is
// robust to the spiky loss landscapes implicit maps produce, where plain
// finite-difference gradient descent diverges.
type LocalizeConfig struct {
	Steps     int     // pattern-search iterations
	InitStep  float64 // initial probe step size
	Shrink    float64 // step multiplier when no neighbour improves
	InitError float64 // magnitude of the initial pose perturbation
}

// DefaultLocalizeConfig returns the settings used by the experiments.
func DefaultLocalizeConfig() LocalizeConfig {
	return LocalizeConfig{Steps: 30, InitStep: 0.1, Shrink: 0.6, InitError: 0.25}
}

// TrajectoryError measures positioning quality: for each observation, start
// from a perturbed pose and descend the photometric error against the
// learned map; return the mean final distance to the true pose. This mirrors
// the paper's trajectory-error metric (predicted vs ground-truth positions).
func TrajectoryError(field MapField, obs []Observation, cfg LocalizeConfig, seed uint64) float64 {
	if len(obs) == 0 {
		return 0
	}
	r := tensor.NewRNG(seed)
	var total float64
	for _, o := range obs {
		ang := r.Float64() * 6.28318
		ex := cfg.InitError * cos(ang)
		ey := cfg.InitError * sin(ang)
		px, py := o.Pose[0]+ex, o.Pose[1]+ey

		// Body-frame offsets of the observation's sample points.
		n := o.Points.Rows
		off := make([][2]float64, n)
		for k := 0; k < n; k++ {
			off[k][0] = float64(o.Points.At(k, 0)) - o.Pose[0]
			off[k][1] = float64(o.Points.At(k, 1)) - o.Pose[1]
		}
		loss := func(cx, cy float64) float64 {
			pts := tensor.New(n, 2)
			for k := 0; k < n; k++ {
				pts.Set(k, 0, float32(clamp(cx+off[k][0], -1, 1)))
				pts.Set(k, 1, float32(clamp(cy+off[k][1], -1, 1)))
			}
			pred := field.Eval(pts)
			var l float64
			for k := 0; k < n; k++ {
				d := float64(pred.At(k, 0)) - float64(o.Values.At(k, 0))
				l += d * d
			}
			return l / float64(n)
		}
		h := cfg.InitStep
		cur := loss(px, py)
		for s := 0; s < cfg.Steps; s++ {
			bestX, bestY, bestL := px, py, cur
			for _, cand := range [4][2]float64{{h, 0}, {-h, 0}, {0, h}, {0, -h}} {
				cx := clamp(px+cand[0], -1, 1)
				cy := clamp(py+cand[1], -1, 1)
				if l := loss(cx, cy); l < bestL {
					bestX, bestY, bestL = cx, cy, l
				}
			}
			if bestL < cur {
				px, py, cur = bestX, bestY, bestL
			} else {
				h *= cfg.Shrink
			}
		}
		total += hypot(px-o.Pose[0], py-o.Pose[1])
	}
	return total / float64(len(obs))
}
