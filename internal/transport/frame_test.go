package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestWriteRecvRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, []byte("world"), {1, 2, 3}}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	rc := NewReceiver(&buf)
	for i, want := range payloads {
		got, err := rc.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %q != %q", i, got, want)
		}
	}
	if _, err := rc.Recv(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if rc.Skipped != 0 {
		t.Fatalf("clean stream skipped %d bytes", rc.Skipped)
	}
}

func TestRecvSkipsLeadingGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte("noise noise noise"))
	if err := WriteFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(&buf)
	got, err := rc.Recv()
	if err != nil || string(got) != "payload" {
		t.Fatalf("got %q err %v", got, err)
	}
	if rc.Skipped == 0 {
		t.Fatal("garbage not counted as skipped")
	}
}

func TestRecvSkipsAbandonedPartialFrame(t *testing.T) {
	// Simulate the paper's discarded speculative transmission: a frame is
	// cut off mid-payload, then a fresh complete frame follows.
	var full bytes.Buffer
	if err := WriteFrame(&full, bytes.Repeat([]byte{0xAB}, 1000)); err != nil {
		t.Fatal(err)
	}
	cut := full.Bytes()[:300] // start marker + length + partial payload

	var stream bytes.Buffer
	stream.Write(cut)
	if err := WriteFrame(&stream, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(&stream)
	got, err := rc.Recv()
	if err != nil || string(got) != "fresh" {
		t.Fatalf("got %q err %v (skipped=%d)", got, err, rc.Skipped)
	}
}

func TestRecvResyncsOnCorruptLength(t *testing.T) {
	var stream bytes.Buffer
	stream.Write(startMarker)
	stream.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd length
	if err := WriteFrame(&stream, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(&stream)
	got, err := rc.Recv()
	if err != nil || string(got) != "ok" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestMarkerBytesInsidePayload(t *testing.T) {
	// A payload containing the start marker itself must survive.
	payload := append(append([]byte("pre"), startMarker...), []byte("post")...)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(&buf)
	got, err := rc.Recv()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("marker-in-payload broken: %v", err)
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(a, b, c []byte) bool {
		var buf bytes.Buffer
		for _, p := range [][]byte{a, b, c} {
			if err := WriteFrame(&buf, p); err != nil {
				return false
			}
		}
		rc := NewReceiver(&buf)
		for _, want := range [][]byte{a, b, c} {
			got, err := rc.Recv()
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSendFramesAllDelivered(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	payloads := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	errCh := make(chan error, 1)
	sentCh := make(chan int, 1)
	go func() {
		n, err := SendFrames(client, payloads, time.Time{})
		sentCh <- n
		errCh <- err
	}()
	rc := NewReceiver(server)
	for _, want := range payloads {
		got, err := rc.Recv()
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("recv %q err %v", got, err)
		}
	}
	if n := <-sentCh; n != 3 {
		t.Fatalf("sent=%d", n)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestSendFramesTimeoutThenResync(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	big := bytes.Repeat([]byte{7}, 1<<16)
	many := make([][]byte, 50)
	for i := range many {
		many[i] = big
	}

	// Reader consumes slowly at first so the sender's deadline fires
	// mid-stream (net.Pipe is unbuffered: writes block until read).
	readerStarted := make(chan struct{})
	var received [][]byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		rc := NewReceiver(server)
		close(readerStarted)
		for i := 0; ; i++ {
			if i < 3 {
				// Throttle the first frames so the sender's deadline fires
				// mid-stream (net.Pipe writes block until read).
				time.Sleep(25 * time.Millisecond)
			}
			p, err := rc.Recv()
			if err != nil {
				return
			}
			received = append(received, p)
		}
	}()
	<-readerStarted

	sent, err := SendFrames(client, many, time.Now().Add(30*time.Millisecond))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v (sent=%d)", err, sent)
	}
	if sent >= len(many) {
		t.Fatal("timeout but everything sent")
	}

	// After the abandoned frame, a fresh send must still be readable: the
	// receiver resyncs past the fragment.
	if _, err := SendFrames(client, [][]byte{[]byte("after-timeout")}, time.Time{}); err != nil {
		t.Fatal(err)
	}
	client.Close()
	<-done
	if len(received) == 0 {
		t.Fatal("nothing received")
	}
	last := received[len(received)-1]
	if !bytes.Equal(last, []byte("after-timeout")) {
		t.Fatalf("resync failed; last frame = %d bytes", len(last))
	}
}

func TestFrameOverheadConstant(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 100+FrameOverhead {
		t.Fatalf("overhead=%d want %d", buf.Len()-100, FrameOverhead)
	}
}
