package transport

import (
	"bytes"
	"io"
	"testing"
)

// FuzzRecv throws arbitrary byte streams at the resynchronizing receiver.
// The parser sits directly under a lossy conn, so its input is exactly
// "whatever survived the channel": truncated headers, frames whose length
// prefix swallowed the next frame, garbage that happens to contain marker
// bytes. Invariants under any input:
//
//   - Recv never panics and terminates with io.EOF;
//   - every returned payload respects MaxFrameSize, and frames cannot
//     outnumber the bytes that could physically encode them;
//   - Skipped never exceeds the input length;
//   - a well-formed frame appended after the garbage guarantees at least
//     one frame is recovered — resync must always find its way back.
func FuzzRecv(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteFrame(&valid, []byte("speculative row payload")); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:9]) // header truncated inside the length prefix
	corruptLen := append([]byte(nil), valid.Bytes()...)
	corruptLen[11] = 0xFF // length prefix inflated past MaxFrameSize
	f.Add(corruptLen)
	cut := append(append([]byte(nil), valid.Bytes()[:15]...), valid.Bytes()...) // abandoned frame, then a full one
	f.Add(cut)
	f.Add(append([]byte("garbage prefix \xF0\x9F\xA6"), valid.Bytes()...))
	f.Add(append(append([]byte(nil), valid.Bytes()...), valid.Bytes()...))
	f.Add(append([]byte(nil), startMarker...)) // bare marker, nothing behind it

	f.Fuzz(func(t *testing.T, data []byte) {
		rc := NewReceiver(bytes.NewReader(data))
		frames := 0
		for {
			p, err := rc.Recv()
			if err != nil {
				if err != io.EOF {
					t.Fatalf("Recv returned non-EOF error on in-memory stream: %v", err)
				}
				break
			}
			if len(p) > MaxFrameSize {
				t.Fatalf("payload of %d bytes exceeds MaxFrameSize", len(p))
			}
			frames++
		}
		if min := FrameOverhead; frames > 0 && frames > len(data)/min {
			t.Fatalf("%d frames out of %d input bytes — below the %d-byte frame floor", frames, len(data), min)
		}
		if rc.Skipped > len(data) {
			t.Fatalf("skipped %d of %d input bytes", rc.Skipped, len(data))
		}

		// Resync guarantee: however mangled the prefix, a trailing complete
		// frame means the stream holds at least one recoverable frame. (It
		// may not be *that* frame verbatim — crafted garbage can form a
		// valid frame overlapping it — but recovery can never come up empty.)
		rc2 := NewReceiver(io.MultiReader(bytes.NewReader(data), bytes.NewReader(valid.Bytes())))
		recovered := 0
		for {
			if _, err := rc2.Recv(); err != nil {
				break
			}
			recovered++
		}
		if recovered == 0 {
			t.Fatalf("receiver recovered nothing from %d garbage bytes + one valid frame", len(data))
		}
	})
}
