// Package transport implements the wire protocol of the paper's Speculative
// Transmission (Sec. V): each row payload is wrapped with unique begin/end
// marker bytes, senders enforce a time limit with a write deadline and
// simply abandon the in-flight frame when it expires, and receivers resync
// on the next begin marker, skipping any fragments the abandoned frame left
// in their buffer.
//
// The discrete-event experiments model transmission in virtual time via
// simnet; this package is the real-socket counterpart, so the repo's
// protocol can also run over actual TCP/Wi-Fi links. Tests drive it over
// in-memory full-duplex pipes.
package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Frame markers. The sequences are long enough (8 bytes) that a collision
// with payload data is vanishingly unlikely, mirroring the paper's "several
// unique bytes at both the beginning and the ending".
var (
	startMarker = []byte{0xF0, 0x9F, 0xA6, 0xBE, 0x52, 0x4F, 0x47, 0x21}
	endMarker   = []byte{0x21, 0x47, 0x4F, 0x52, 0xBE, 0xA6, 0x9F, 0xF0}
)

// MaxFrameSize bounds a frame body; larger length prefixes are treated as
// corruption and resynced past.
const MaxFrameSize = 16 << 20

// ErrTimeout is returned by SendFrames when the deadline interrupted the
// final, partially written frame.
var ErrTimeout = errors.New("transport: send deadline reached")

// FrameOverhead is the per-frame wire overhead in bytes: both markers plus
// the 4-byte length prefix.
const FrameOverhead = 8 + 4 + 8

// WriteFrame writes one framed payload to w as a single Write call, so a
// per-Write loss injector (lossnet.Conn) drops whole frames — the
// frame-granular channel model — rather than leaving marker-less fragments.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("transport: payload %d exceeds max frame size", len(payload))
	}
	buf := make([]byte, 0, FrameOverhead+len(payload))
	buf = append(buf, startMarker...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = append(buf, endMarker...)
	_, err := w.Write(buf)
	return err
}

// Receiver reads framed payloads from a stream, resynchronizing past any
// garbage or abandoned partial frames. It parses out of an internal buffer
// so that a truncated frame whose claimed length swallowed the next frame's
// bytes can still be recovered: when the end marker check fails, the scan
// restarts one byte past the false start marker and finds the next real
// frame inside the already-buffered bytes.
type Receiver struct {
	r   io.Reader
	buf []byte
	eof bool
	// Skipped counts bytes discarded during resynchronization; useful for
	// tests and diagnostics.
	Skipped int
}

// NewReceiver wraps r.
func NewReceiver(r io.Reader) *Receiver { return &Receiver{r: r} }

// Recv returns the next complete frame payload. Garbage, partial and
// corrupt frames are skipped (their bytes counted in Skipped). Recv returns
// io.EOF when the stream ends before another complete frame.
func (rc *Receiver) Recv() ([]byte, error) {
	headerLen := len(startMarker) + 4
	for {
		i := bytes.Index(rc.buf, startMarker)
		if i < 0 {
			// Keep a potential marker prefix at the tail, drop the rest.
			keep := len(startMarker) - 1
			if drop := len(rc.buf) - keep; drop > 0 {
				rc.Skipped += drop
				rc.buf = append(rc.buf[:0:0], rc.buf[drop:]...)
			}
			if rc.eof {
				return nil, io.EOF
			}
			if err := rc.fill(); err != nil {
				return nil, err
			}
			continue
		}
		rc.Skipped += i
		rc.buf = rc.buf[i:]

		if len(rc.buf) < headerLen {
			if rc.eof {
				return nil, io.EOF
			}
			if err := rc.fill(); err != nil {
				return nil, err
			}
			continue
		}
		n := int(binary.LittleEndian.Uint32(rc.buf[len(startMarker):headerLen]))
		if n > MaxFrameSize {
			// Corrupt length: this "marker" was a coincidence or the frame
			// is garbage — rescan one byte further.
			rc.buf = rc.buf[1:]
			rc.Skipped++
			continue
		}
		total := headerLen + n + len(endMarker)
		if len(rc.buf) < total {
			if rc.eof {
				// Stream ended mid-frame: the frame is unrecoverable, but a
				// later complete frame may hide inside the bytes we already
				// hold — rescan past this marker.
				rc.buf = rc.buf[1:]
				rc.Skipped++
				continue
			}
			if err := rc.fill(); err != nil {
				return nil, err
			}
			continue
		}
		if !bytes.Equal(rc.buf[headerLen+n:total], endMarker) {
			// Abandoned speculative transmission: the frame was cut short
			// and newer bytes follow where its tail should be.
			rc.buf = rc.buf[1:]
			rc.Skipped++
			continue
		}
		payload := make([]byte, n)
		copy(payload, rc.buf[headerLen:headerLen+n])
		rc.buf = append(rc.buf[:0:0], rc.buf[total:]...)
		return payload, nil
	}
}

// fill reads more bytes from the underlying stream into the buffer. At
// stream end it records EOF and returns nil so the parser can drain what
// remains.
func (rc *Receiver) fill() error {
	chunk := make([]byte, 32<<10)
	n, err := rc.r.Read(chunk)
	if n > 0 {
		rc.buf = append(rc.buf, chunk[:n]...)
	}
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) {
			rc.eof = true
			return nil
		}
		return err
	}
	return nil
}

// SendFrames writes the payloads in order until all are sent or the
// deadline passes, mirroring Algo. 4's SendWithTimeout: the in-flight frame
// at expiry is abandoned mid-wire (the receiver will skip its fragment) and
// the number of *fully delivered* frames is returned with ErrTimeout.
//
// A zero deadline means no time limit.
func SendFrames(conn net.Conn, payloads [][]byte, deadline time.Time) (sent int, err error) {
	if !deadline.IsZero() {
		if err := conn.SetWriteDeadline(deadline); err != nil {
			return 0, err
		}
		defer conn.SetWriteDeadline(time.Time{}) //roglint:ignore errdrop best-effort deadline reset; the conn may already be dead and the caller sees the send error
	}
	for i, p := range payloads {
		if err := WriteFrame(conn, p); err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return i, ErrTimeout
			}
			return i, err
		}
	}
	return len(payloads), nil
}
