package transport

import (
	"math"
	"net"
	"testing"
	"time"

	"rog/internal/compress"
	"rog/internal/tensor"
)

// TestCompressedRowsOverWire is the cross-module integration the paper's
// implementation section describes: gradient rows are 1-bit compressed with
// error feedback, framed with marker bytes, sent speculatively with a
// deadline over a real connection, and decoded on the far side — with the
// abandoned in-flight frame discarded by the receiver's resync.
func TestCompressedRowsOverWire(t *testing.T) {
	const rows, width = 64, 32
	widths := make([]int, rows)
	for i := range widths {
		widths[i] = width
	}
	codec := compress.NewCodec(widths)
	r := tensor.NewRNG(77)

	// Build the compressed payloads for one iteration's push.
	payloads := make([][]byte, rows)
	originals := make([][]float32, rows)
	for i := 0; i < rows; i++ {
		g := make([]float32, width)
		for j := range g {
			g[j] = float32(r.Norm())
		}
		originals[i] = g
		payloads[i] = codec.Encode(i, g).Marshal()
	}

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	type rx struct {
		rowSet map[int]bool
		err    error
	}
	done := make(chan rx, 1)
	go func() {
		got := rx{rowSet: make(map[int]bool)}
		rc := NewReceiver(server)
		for {
			buf, err := rc.Recv()
			if err != nil {
				done <- got
				return
			}
			p, err := compress.Unmarshal(buf)
			if err != nil {
				got.err = err
				done <- got
				return
			}
			out := make([]float32, p.N)
			compress.Decode(p, out)
			// Signs must match the originals (1-bit semantic).
			for j, v := range out {
				if (v >= 0) != (originals[p.Row][j] >= 0) {
					got.err = errSign{p.Row, j}
					done <- got
					return
				}
			}
			got.rowSet[p.Row] = true
		}
	}()

	// Speculative send with a deadline long enough for all rows on an
	// in-memory pipe.
	sent, err := SendFrames(client, payloads, time.Now().Add(2*time.Second))
	if err != nil {
		t.Fatalf("send: %v (sent=%d)", err, sent)
	}
	client.Close()
	got := <-done
	if got.err != nil {
		t.Fatal(got.err)
	}
	if len(got.rowSet) != rows {
		t.Fatalf("received %d of %d rows", len(got.rowSet), rows)
	}

	// Error feedback bounds the residual.
	for i := 0; i < rows; i++ {
		if codec.ResidualNorm(i) > float64(width) {
			t.Fatalf("row %d residual unbounded: %v", i, codec.ResidualNorm(i))
		}
		if math.IsNaN(codec.ResidualNorm(i)) {
			t.Fatalf("row %d residual NaN", i)
		}
	}
}

type errSign [2]int

func (e errSign) Error() string { return "sign mismatch in decoded row" }
