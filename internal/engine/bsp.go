package engine

// bsp is Bulk Synchronous Parallel: whole-model push and pull every
// iteration, and a gate equivalent to a full barrier — a worker entering
// iteration n may not advance until every attached worker's rows reached
// n−1. The simnet runtime executes it round-lockstep (the Barrier trait);
// the socket runtime gets the same semantics from CanAdvance alone.
type bsp struct{}

func newBSP() *bsp { return &bsp{} }

func (*bsp) Name() string   { return "bsp" }
func (*bsp) Traits() Traits { return Traits{Barrier: true} }

func (*bsp) PlanPush(v PushView) Plan { return allUnits(len(v.Rows)) }

func (*bsp) CanAdvance(iter, min int64) bool { return iter-min < 1 }

func (*bsp) PlanPull(v PullView) Plan { return allUnits(len(v.Rows)) }

func (*bsp) ObservePush(worker int, iter int64, seconds float64) {}
