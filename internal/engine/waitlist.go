package engine

import "sort"

// WaitList holds workers blocked on the staleness predicate, with the
// check to re-evaluate whenever server versions advance. Park times are
// recorded so a wake triggered by a membership detach can attribute the
// released stall to churn. It is the simnet runtime's analogue of the
// socket server's condition variable, kept here because park/wake ordering
// is part of the engine's determinism contract.
type WaitList struct {
	pending  map[int]func() bool // worker → "try to resume; true if resumed"
	parkedAt map[int]float64     // worker → virtual time it parked
}

// NewWaitList creates an empty wait list.
func NewWaitList() *WaitList {
	return &WaitList{pending: make(map[int]func() bool), parkedAt: make(map[int]float64)}
}

// Park registers worker w's retry closure, stamped with the current time.
func (wl *WaitList) Park(w int, now float64, retry func() bool) {
	wl.pending[w] = retry
	wl.parkedAt[w] = now
}

// Drop discards worker w's parked retry without running it (the worker
// crashed while blocked; a ghost must not resume).
func (wl *WaitList) Drop(w int) {
	delete(wl.pending, w)
	delete(wl.parkedAt, w)
}

// Parked reports whether worker w is currently parked.
func (wl *WaitList) Parked(w int) bool {
	_, ok := wl.pending[w]
	return ok
}

// Len reports how many workers are parked.
func (wl *WaitList) Len() int { return len(wl.pending) }

// Wake retries every parked worker; resumed ones are removed. Workers are
// retried in index order so the resulting event sequence is deterministic.
func (wl *WaitList) Wake() { wl.WakeAttributing(0, nil) }

// WakeAttributing is Wake with churn accounting: when stall is non-nil,
// each resumed worker adds its time-parked to *stall (the caller passes
// the churn counter when the wake was caused by a detach).
func (wl *WaitList) WakeAttributing(now float64, stall *float64) {
	workers := make([]int, 0, len(wl.pending))
	for w := range wl.pending {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for _, w := range workers {
		if wl.pending[w]() {
			if stall != nil {
				*stall += now - wl.parkedAt[w]
			}
			wl.Drop(w)
		}
	}
}
