package engine

import (
	"sort"
	"sync"
)

// WaitList holds workers blocked on the staleness predicate, with the
// check to re-evaluate whenever server versions advance. Park times are
// recorded so a wake triggered by a membership detach can attribute the
// released stall to churn. It is the simnet runtime's analogue of the
// socket server's condition variable, kept here because park/wake ordering
// is part of the engine's determinism contract.
//
// The list is safe for concurrent use: the sharded State keeps one per
// shard, and pushes landing on different shards may wake them from
// different goroutines. Retry closures run without the list's lock held
// (they re-evaluate the staleness predicate, which takes State locks of
// its own), so a closure may park other workers or wake other lists; it
// must not re-park its own worker — a false return already keeps it
// parked.
type WaitList struct {
	mu       sync.Mutex
	pending  map[int]func() bool // worker → "try to resume; true if resumed"; guarded by mu
	parkedAt map[int]float64     // worker → virtual time it parked; guarded by mu
	// dropped tombstones workers whose Drop raced with an in-flight
	// TryResume claim: the claim's restore must not resurrect the entry.
	// Cleared by the next Park (a fresh park supersedes the drop) or by the
	// in-flight claim when it completes. Guarded by mu.
	dropped map[int]bool
}

// NewWaitList creates an empty wait list.
func NewWaitList() *WaitList {
	return &WaitList{
		pending:  make(map[int]func() bool),
		parkedAt: make(map[int]float64),
		dropped:  make(map[int]bool),
	}
}

// Park registers worker w's retry closure, stamped with the current time.
func (wl *WaitList) Park(w int, now float64, retry func() bool) {
	wl.mu.Lock()
	wl.pending[w] = retry
	wl.parkedAt[w] = now
	delete(wl.dropped, w)
	wl.mu.Unlock()
}

// Drop discards worker w's parked retry without running it (the worker
// crashed while blocked; a ghost must not resume). If the retry is
// currently running inside a concurrent TryResume claim, the drop also
// suppresses the claim's still-blocked restore — otherwise the ghost entry
// would be resurrected the moment the retry returned false.
func (wl *WaitList) Drop(w int) {
	wl.mu.Lock()
	wl.dropLocked(w)
	wl.dropped[w] = true
	wl.mu.Unlock()
}

func (wl *WaitList) dropLocked(w int) {
	delete(wl.pending, w)
	delete(wl.parkedAt, w)
}

// Parked reports whether worker w is currently parked.
func (wl *WaitList) Parked(w int) bool {
	wl.mu.Lock()
	_, ok := wl.pending[w]
	wl.mu.Unlock()
	return ok
}

// Len reports how many workers are parked.
func (wl *WaitList) Len() int {
	wl.mu.Lock()
	n := len(wl.pending)
	wl.mu.Unlock()
	return n
}

// Workers returns the parked workers in ascending order — the
// deterministic retry order, and what the sharded State merges across
// shards to preserve the global wake order.
func (wl *WaitList) Workers() []int {
	wl.mu.Lock()
	workers := make([]int, 0, len(wl.pending))
	for w := range wl.pending {
		workers = append(workers, w)
	}
	wl.mu.Unlock()
	sort.Ints(workers)
	return workers
}

// TryResume runs worker w's parked retry, if any. A true return drops the
// entry and — when stall is non-nil — adds the time parked to *stall (the
// caller passes the churn counter when the wake was caused by a detach).
// It reports whether the worker resumed. The retry runs without wl's lock;
// a concurrent TryResume for the same worker runs the closure at most
// once (the entry is claimed before the retry fires and restored if the
// predicate still holds).
func (wl *WaitList) TryResume(w int, now float64, stall *float64) bool {
	wl.mu.Lock()
	retry, ok := wl.pending[w]
	if !ok {
		wl.mu.Unlock()
		return false
	}
	at := wl.parkedAt[w]
	wl.dropLocked(w)
	wl.mu.Unlock()
	ok = retry()
	wl.mu.Lock()
	wasDropped := wl.dropped[w]
	delete(wl.dropped, w)
	if !ok && !wasDropped {
		// Still blocked: restore the entry with its original park stamp so a
		// later churn-attributed wake charges the full wait. A drop that
		// landed while the retry ran wins instead — the worker is gone.
		if _, reparked := wl.pending[w]; !reparked {
			wl.pending[w] = retry
			wl.parkedAt[w] = at
		}
	}
	wl.mu.Unlock()
	if ok && stall != nil {
		*stall += now - at
	}
	return ok
}

// Wake retries every parked worker; resumed ones are removed. Workers are
// retried in index order so the resulting event sequence is deterministic.
func (wl *WaitList) Wake() { wl.WakeAttributing(0, nil) }

// WakeAttributing is Wake with churn accounting: when stall is non-nil,
// each resumed worker adds its time-parked to *stall.
func (wl *WaitList) WakeAttributing(now float64, stall *float64) {
	for _, w := range wl.Workers() {
		wl.TryResume(w, now, stall)
	}
}
