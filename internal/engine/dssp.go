package engine

// dssp is Dynamic SSP (after Zhao et al., "Dynamic Stale Synchronous
// Parallel Distributed Training for Deep Learning"): SSP whose staleness
// threshold is not fixed but adapts at run time inside [lo, hi]. When the
// team runs in step, a tight threshold costs nothing and buys fresher
// updates (better statistical efficiency); when stragglers press against
// the gate, the controller relaxes the threshold toward hi to trade
// staleness for stall. The configured Threshold is the hard upper bound,
// so DSSP inherits SSP's convergence guarantee at that bound.
//
// The policy exists mainly as the demonstration that a new strategy now
// costs one file: transports, merging, membership and accounting all come
// from the engine and its runtimes.
type dssp struct {
	lo, hi int64
	cur    int64
	// lastIter[w] is the newest iteration seen from each worker; its spread
	// is the controller's congestion signal.
	lastIter []int64
}

func newDSSP(p Params) *dssp {
	hi := int64(p.Threshold)
	lo := int64(2)
	if lo > hi {
		lo = hi
	}
	return &dssp{lo: lo, hi: hi, cur: hi, lastIter: make([]int64, p.Workers)}
}

func (*dssp) Name() string   { return "dssp" }
func (*dssp) Traits() Traits { return Traits{} }

func (*dssp) PlanPush(v PushView) Plan { return allUnits(len(v.Rows)) }

// CanAdvance gates on the *current* dynamic threshold. It is a pure read:
// adaptation happens only in PlanPull, which every runtime calls exactly
// once per worker-iteration, so both transports see the same threshold
// sequence for the same event order.
func (d *dssp) CanAdvance(iter, min int64) bool { return iter-min < d.cur }

// PlanPull returns the whole model (SSP-style) and runs one controller
// step: measure the team's iteration spread; if workers are pressing the
// current gate, loosen it, and if they run well inside it, tighten.
func (d *dssp) PlanPull(v PullView) Plan {
	if d.lastIter[v.Worker] < v.Iter {
		d.lastIter[v.Worker] = v.Iter
	}
	minIt, maxIt := d.lastIter[0], d.lastIter[0]
	for _, it := range d.lastIter[1:] {
		if it < minIt {
			minIt = it
		}
		if it > maxIt {
			maxIt = it
		}
	}
	spread := maxIt - minIt
	switch {
	case spread >= d.cur-1 && d.cur < d.hi:
		d.cur++
	case spread < d.cur/2 && d.cur > d.lo:
		d.cur--
	}
	return allUnits(len(v.Rows))
}

func (*dssp) ObservePush(worker int, iter int64, seconds float64) {}

// CurrentThreshold exposes the adapted gate (tests and diagnostics).
func (d *dssp) CurrentThreshold() int64 { return d.cur }
