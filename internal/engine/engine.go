// Package engine is the transport-agnostic synchronization engine: the
// single home of every strategy's *policy* — what to transmit, when a
// worker may advance, how pushed rows merge — shared by the two runtimes
// that execute it (the discrete-event simnet drivers in internal/core and
// the real-socket server/worker in internal/livenet).
//
// A Policy is pure decision logic over views of worker/server state; it
// owns no clock, no links and no membership. The runtimes own those: they
// build the views, transmit what the plans say, gate workers on
// CanAdvance, and fold delivered rows through State.Merge (which also owns
// the shrink-to-attached averaging and churn counters). Adding a strategy
// is one Policy implementation in one file; both transports pick it up
// through the registry.
package engine

import (
	"fmt"

	"rog/internal/atp"
)

// Traits tell a runtime which loop shape executes the policy. They select
// the driver, not the decisions: all plan/gate/merge logic stays in the
// Policy methods.
type Traits struct {
	// Barrier marks round-lockstep strategies (BSP): the simnet runtime
	// drives explicit rounds; the socket runtime gets the same behaviour
	// from CanAdvance alone (iteration n proceeds only once every attached
	// worker pushed n).
	Barrier bool
	// Pipelined lets a runtime overlap a worker's compute with its
	// communication (the paper's Sec. VI-D extension).
	Pipelined bool
}

// Plan is one transmission decision. Units are sent in order; the first
// Must units always complete (the MTA floor and rows at the staleness
// bound), the rest are speculative and may be cut at the budget deadline.
// Non-speculative plans transmit every unit with no deadline. Skip means
// the worker synchronizes nothing this iteration (FLOWN's scheduler).
type Plan struct {
	Skip        bool
	Units       []int
	Must        int
	Speculative bool
}

// PushView is the worker-side state a push decision sees. Rows holds one
// entry per unit, indexed by unit ID (Rows[u].ID == u): the raw mean
// absolute accumulated gradient and the last iteration the unit was
// pushed. Min is the latest known global minimum row version (a socket
// worker learns it from the server's pull-done frame), Budget the current
// MTA-time budget — the straggler's reported transmission time.
type PushView struct {
	Worker int
	Iter   int64
	Rows   []atp.RowInfo
	Min    int64
	Budget float64
}

// PullView is the server-side state a pull decision sees: Rows[u] carries
// the mean absolute mass accumulated for the worker and the latest
// iteration any worker updated the unit at (the freshness input of the
// server-mode importance metric).
type PullView struct {
	Worker int
	Iter   int64
	Rows   []atp.RowInfo
	Min    int64
}

// Policy is one synchronization strategy, transport-free. A policy
// instance serves one run; implementations may keep per-run state but must
// mutate it only in PlanPush, PlanPull and ObservePush — each called at
// most once per worker-iteration by every runtime. CanAdvance must be a
// pure predicate: the socket runtime re-evaluates it arbitrarily often
// inside a condition-variable loop.
type Policy interface {
	// Name is the registry name ("ssp", "rog", ...).
	Name() string
	// Traits selects the runtime loop shape.
	Traits() Traits
	// PlanPush decides what worker v.Worker transmits for iteration v.Iter.
	PlanPush(v PushView) Plan
	// CanAdvance reports whether a worker at iteration iter may proceed
	// past the staleness gate given the global minimum row version.
	CanAdvance(iter, min int64) bool
	// PlanPull decides which averaged rows the server returns to the
	// worker after iteration v.Iter's push.
	PlanPull(v PullView) Plan
	// ObservePush feeds back one completed push: the iteration it
	// synchronized and the seconds it took on the wire.
	ObservePush(worker int, iter int64, seconds float64)
}

// Params configures a policy instance for one run.
type Params struct {
	Workers   int
	Threshold int
	NumUnits  int
	Coeff     atp.Coefficients
}

func (p Params) withDefaults() Params {
	if p.Coeff == (atp.Coefficients{}) {
		p.Coeff = atp.DefaultCoefficients()
	}
	return p
}

// New builds the named policy. Names: "bsp", "ssp", "flown", "rog",
// "pipeline" (ROG with the pipelined trait), "dssp".
func New(name string, p Params) (Policy, error) {
	p = p.withDefaults()
	switch name {
	case "bsp":
		return newBSP(), nil
	case "ssp":
		return newSSP(p), nil
	case "flown":
		return newFLOWN(p), nil
	case "rog":
		return newROG(p, false), nil
	case "pipeline":
		return newROG(p, true), nil
	case "dssp":
		return newDSSP(p), nil
	default:
		return nil, fmt.Errorf("engine: unknown policy %q", name)
	}
}

// Names lists the registered policies.
func Names() []string {
	return []string{"bsp", "ssp", "flown", "rog", "pipeline", "dssp"}
}

// allUnits is the whole-model plan shared by the model-granular policies:
// every unit in index order, all mandatory, no deadline.
func allUnits(n int) Plan {
	units := make([]int, n)
	for i := range units {
		units[i] = i
	}
	return Plan{Units: units, Must: n}
}

// normalized scales a copy of rows so the mean of MeanAbs is 1, putting
// the f1 magnitude term on the same O(1) scale as the staleness term for
// any model (keeps the paper's f1=f2=1 meaningful). Rows with zero total
// mass pass through unscaled.
func normalized(rows []atp.RowInfo) []atp.RowInfo {
	out := make([]atp.RowInfo, len(rows))
	copy(out, rows)
	var meanSum float64
	for _, r := range out {
		meanSum += r.MeanAbs
	}
	if meanSum > 0 {
		norm := float64(len(out)) / meanSum
		for i := range out {
			out[i].MeanAbs *= norm
		}
	}
	return out
}
