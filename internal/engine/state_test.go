package engine

import (
	"testing"

	"rog/internal/nn"
	"rog/internal/obs"
	"rog/internal/rowsync"
	"rog/internal/tensor"
)

func testState(t *testing.T, workers int) (*State, *rowsync.Partition) {
	t.Helper()
	proto := nn.NewClassifierMLP(4, []int{6}, 3, tensor.NewRNG(1))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	pol, err := New("ssp", Params{Workers: workers, Threshold: 4, NumUnits: part.NumUnits()})
	if err != nil {
		t.Fatal(err)
	}
	return NewState(pol, part, workers, 1.0), part
}

// TestMergeShrinkToAttachedAveraging pushes one row before and after a
// detach: with all 3 workers attached the averaged contribution is v/3,
// with one detached it is v/2 — graceful degradation, not dilution.
func TestMergeShrinkToAttachedAveraging(t *testing.T) {
	s, part := testState(t, 3)
	vals := make([]float32, part.Unit(0).Len)
	for i := range vals {
		vals[i] = 3
	}
	s.Merge(0, 0, vals, 1)
	if got := s.Acc[1].Unit(0)[0]; got != 1 {
		t.Fatalf("3 attached: merged value = %v, want 1 (v/3)", got)
	}
	s.Detach(2)
	s.Merge(0, 0, vals, 2)
	if got := s.Acc[1].Unit(0)[0]; got != 2.5 {
		t.Fatalf("2 attached: merged value = %v, want 1 + 1.5 (v/2)", got)
	}
	// The detached worker's copy keeps accumulating the rejoin backlog.
	if got := s.Acc[2].Unit(0)[0]; got != 2.5 {
		t.Fatalf("detached copy = %v, want the same backlog", got)
	}
}

// TestMergeVersionStampsAndHook checks monotone version stamping, the
// per-unit freshness iterator, and the OnMerge observation hook.
func TestMergeVersionStampsAndHook(t *testing.T) {
	s, part := testState(t, 2)
	var log [][3]int64
	s.OnMerge = func(w, u int, it int64) { log = append(log, [3]int64{int64(w), int64(u), it}) }
	vals := make([]float32, part.Unit(1).Len)
	for i := range vals {
		vals[i] = 2
	}
	s.Merge(1, 1, vals, 5)
	s.Merge(1, 1, vals, 4) // stale duplicate: dropped whole, must not rewind
	if got := s.Versions.Get(1, 1); got != 5 {
		t.Fatalf("version = %d, want 5", got)
	}
	if s.RowIter[1] != 5 {
		t.Fatalf("row iter = %d, want 5", s.RowIter[1])
	}
	if len(log) != 1 || log[0] != [3]int64{1, 1, 5} {
		t.Fatalf("hook log = %v, want only the fresh merge", log)
	}
	if got := s.ChurnSnapshot().DuplicatesDropped; got != 1 {
		t.Fatalf("duplicates dropped = %d, want 1", got)
	}
	// The duplicate's gradients must not have been double-counted: one
	// merge of 2s over 2 attached workers leaves exactly 1 in each copy.
	if got := s.Acc[0].Unit(1)[0]; got != 1 {
		t.Fatalf("acc after duplicate = %v, want 1", got)
	}
}

// TestDetachAttachBacklog walks the churn protocol: detach counts once
// (idempotent), attach re-baselines and counts, and the backlog lists
// exactly the units with accumulated mass.
func TestDetachAttachBacklog(t *testing.T) {
	s, part := testState(t, 3)
	vals := make([]float32, part.Unit(0).Len)
	for i := range vals {
		vals[i] = 1
	}
	// Advance the survivors to iteration 3 on every unit.
	for u := 0; u < part.NumUnits(); u++ {
		uv := make([]float32, part.Unit(u).Len)
		for i := range uv {
			uv[i] = 1
		}
		for it := int64(1); it <= 3; it++ {
			s.Merge(0, u, uv, it)
			s.Merge(1, u, uv, it)
		}
	}
	s.Detach(2)
	s.Detach(2)
	if s.Churn.Disconnects != 1 {
		t.Fatalf("disconnects = %d, want 1 (idempotent)", s.Churn.Disconnects)
	}
	if !s.CanAdvance(4) {
		t.Fatal("detached worker's stale rows still pin the gate")
	}
	backlog := s.Backlog(2)
	if len(backlog) != part.NumUnits() {
		t.Fatalf("backlog = %d units, want every unit", len(backlog))
	}
	base := s.Attach(2)
	if base != 3 {
		t.Fatalf("baseline = %d, want the surviving minimum 3", base)
	}
	if s.Churn.Reconnects != 1 {
		t.Fatalf("reconnects = %d", s.Churn.Reconnects)
	}
}

// TestMergeWithoutProbeDoesNotAllocate is the tentpole's overhead guard:
// with observability disabled (nil Probe — the default), the instrumented
// Merge/CanAdvance/ObservePush hot path must not allocate. Each merge
// advances the version (a repeat would short-circuit into the duplicate
// guard and skip the hot path); the version-count map churns one key per
// merge without growing, so any allocation the guard sees would come from
// the instrumentation itself.
func TestMergeWithoutProbeDoesNotAllocate(t *testing.T) {
	s, part := testState(t, 3)
	vals := make([]float32, part.Unit(0).Len)
	s.Merge(0, 0, vals, 1) // warm up version state
	it := int64(1)
	allocs := testing.AllocsPerRun(200, func() {
		it++
		s.Merge(0, 0, vals, it)
		s.CanAdvance(1)
		s.ObservePush(0, 1, 0.5, 0.5, true)
	})
	if allocs != 0 {
		t.Fatalf("nil-probe hot path allocated %.1f times per run, want 0", allocs)
	}
}

// TestStateProbeObservesMergeAndGate wires a registry-backed probe into
// the state and checks the merge, gate and budget metrics move.
func TestStateProbeObservesMergeAndGate(t *testing.T) {
	s, part := testState(t, 3)
	reg := obs.NewRegistry()
	s.Probe = obs.NewProbe(nil, reg, nil)
	vals := make([]float32, part.Unit(0).Len)
	s.Merge(0, 0, vals, 1)
	s.Merge(1, 1, vals, 3)
	s.CanAdvance(10) // way past the minimum: blocked under SSP-4
	s.ObservePush(0, 1, 0.4, 0.4, true)

	snap := reg.Snapshot()
	if snap.Counters["rows_merged"] != 2 {
		t.Fatalf("rows_merged = %d, want 2", snap.Counters["rows_merged"])
	}
	if snap.Histograms["staleness"].Count != 2 {
		t.Fatalf("staleness observations = %d, want 2", snap.Histograms["staleness"].Count)
	}
	if snap.Counters["gate_checks"] != 1 || snap.Counters["gate_blocked"] != 1 {
		t.Fatalf("gate counters = %d checks / %d blocked, want 1/1",
			snap.Counters["gate_checks"], snap.Counters["gate_blocked"])
	}
	if snap.Floats["mta_used_seconds"] != 0.4 {
		t.Fatalf("mta_used_seconds = %g, want 0.4", snap.Floats["mta_used_seconds"])
	}
}

func BenchmarkMergeNilProbe(b *testing.B) {
	proto := nn.NewClassifierMLP(4, []int{6}, 3, tensor.NewRNG(1))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	pol, err := New("ssp", Params{Workers: 3, Threshold: 4, NumUnits: part.NumUnits()})
	if err != nil {
		b.Fatal(err)
	}
	s := NewState(pol, part, 3, 1.0)
	vals := make([]float32, part.Unit(0).Len)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Merge(0, 0, vals, int64(i+1))
	}
}
