package engine

import "math"

// flown is the dynamic-threshold scheduling baseline (after Chen et al.,
// the paper's strongest baseline). The scheduler compares each worker's
// own most recent transmission time against the team's slowest (the
// MTA-time budget doubles as that straggler estimate) and assigns a
// per-worker synchronization period τ ∈ [1, threshold−1]: workers
// predicted slow sync less often, workers predicted fast sync every
// iteration. Scheduling is model-granular, so when the wireless bandwidth
// shifts *during* a transmission the schedule is already stale — the
// mismatch the paper blames for FLOWN's residual stall (Sec. I, Fig. 1).
type flown struct {
	threshold int64
	lastSync  []int64   // last iteration each worker synchronized
	ownTime   []float64 // each worker's last measured push time (0 = none yet)
}

func newFLOWN(p Params) *flown {
	return &flown{
		threshold: int64(p.Threshold),
		lastSync:  make([]int64, p.Workers),
		ownTime:   make([]float64, p.Workers),
	}
}

func (*flown) Name() string   { return "flown" }
func (*flown) Traits() Traits { return Traits{} }

// period computes worker w's scheduled synchronization period: the slower
// its last transmission relative to the team's slowest, the less often it
// syncs. Before the first measurement a worker syncs every iteration.
func (f *flown) period(w int, budget float64) int64 {
	own := f.ownTime[w]
	if own <= 0 || budget <= 0 {
		return 1
	}
	tau := int64(math.Ceil(float64(f.threshold) * own / budget))
	if tau < 1 {
		tau = 1
	}
	if max := f.threshold - 1; tau > max {
		tau = max
	}
	return tau
}

// PlanPush skips the iteration when the worker is inside its assigned
// period and skipping cannot trip the global threshold; otherwise it
// pushes the whole model.
func (f *flown) PlanPush(v PushView) Plan {
	mustSync := v.Iter-f.lastSync[v.Worker] >= f.period(v.Worker, v.Budget) ||
		v.Iter-v.Min >= f.threshold-1
	if !mustSync {
		return Plan{Skip: true}
	}
	return allUnits(len(v.Rows))
}

func (f *flown) CanAdvance(iter, min int64) bool { return iter-min < f.threshold }

func (*flown) PlanPull(v PullView) Plan { return allUnits(len(v.Rows)) }

// ObservePush records the completed synchronization and refreshes the
// (immediately stale) per-worker transmission-time estimate.
func (f *flown) ObservePush(worker int, iter int64, seconds float64) {
	f.lastSync[worker] = iter
	if seconds > 0 {
		f.ownTime[worker] = seconds
	}
}
