package engine

import (
	"rog/internal/atp"
	"rog/internal/metrics"
	"rog/internal/obs"
	"rog/internal/rowsync"
)

// State is the server side of a run, shared verbatim by both runtimes:
// per-worker averaged-gradient copies, row versions, the MTA-time tracker
// and the churn counters. It owns the merge semantics (shrink-to-attached
// averaging) and the membership bookkeeping; the runtimes own transport
// and locking (the socket server calls every method under its mutex, the
// simnet kernel is single-threaded).
type State struct {
	policy  Policy
	part    *rowsync.Partition
	workers int

	// Acc[w] is worker w's averaged-gradient copy ḡ^s; detached workers'
	// copies keep accumulating the backlog their rejoin resync replays.
	Acc      []*rowsync.GradStore
	Versions *rowsync.VersionStore
	// RowIter[u] is the latest iteration (any worker) whose gradients
	// updated unit u — the freshness input of the server-mode importance
	// metric.
	RowIter []int64
	Tracker *atp.TimeTracker
	Churn   metrics.ChurnStats
	Loss    metrics.LossStats

	// OnMerge, when set, observes every merged row (worker, unit, stamped
	// version) — the hook the simnet↔livenet parity tests record with.
	OnMerge func(worker, unit int, iter int64)

	// Probe, when set, receives structured trace events and feeds the
	// runtime counters (merges with staleness lag, gate checks, MTA budget
	// utilization). nil — the default — costs one pointer check per site.
	Probe *obs.Probe

	// Journal, when set, receives every durable transition (see Journal) —
	// the write-ahead log the crash-recovery store replays.
	Journal Journal
}

// NewState builds the server state for one run. initialBudget seeds the
// MTA-time tracker (the simnet drivers use 1 s, the socket server its
// configured floor).
func NewState(policy Policy, part *rowsync.Partition, workers int, initialBudget float64) *State {
	s := &State{
		policy:   policy,
		part:     part,
		workers:  workers,
		Versions: rowsync.NewVersionStore(workers, part.NumUnits()),
		RowIter:  make([]int64, part.NumUnits()),
		Tracker:  atp.NewTimeTracker(workers, initialBudget),
	}
	for i := 0; i < workers; i++ {
		s.Acc = append(s.Acc, rowsync.NewGradStore(part))
	}
	return s
}

// Policy returns the policy this state executes.
func (s *State) Policy() Policy { return s.policy }

// Merge folds one received row into every worker's averaged copy (Algo. 2
// lines 2–6). Averaging is normalized by the attached team size (graceful
// degradation: N−1 workers average over N−1, not N), and the row is
// version-stamped monotonically.
//
// A push whose iteration does not advance the row's stamped version is a
// duplicate and is dropped whole. In normal operation workers push each
// (row, iteration) exactly once, so the guard only fires when a recovered
// server re-receives rows it merged before the crash — applying those
// again would double-count their gradients.
func (s *State) Merge(worker, unit int, vals []float32, iter int64) {
	if iter <= s.Versions.Get(worker, unit) {
		s.Churn.DuplicatesDropped++
		return
	}
	if s.Journal != nil {
		s.Journal.JournalMerge(worker, unit, iter, vals)
	}
	active := s.Versions.ActiveWorkers()
	if active == 0 {
		active = s.workers
	}
	inv := 1 / float32(active)
	for w := range s.Acc {
		s.Acc[w].AddUnit(unit, vals, inv)
	}
	if iter > s.Versions.Get(worker, unit) {
		s.Versions.Update(worker, unit, iter)
	}
	if iter > s.RowIter[unit] {
		s.RowIter[unit] = iter
	}
	if s.OnMerge != nil {
		s.OnMerge(worker, unit, iter)
	}
	if s.Probe != nil {
		// Lag is this row's stamped version ahead of the global minimum —
		// the live staleness spread RSP bounds. Min() is O(1) (cached).
		lag := iter - s.Versions.Min()
		if lag < 0 {
			lag = 0
		}
		s.Probe.Merge(worker, unit, iter, iter, lag)
	}
}

// CanAdvance applies the policy's staleness gate at the current global
// minimum row version.
func (s *State) CanAdvance(iter int64) bool {
	ok := s.policy.CanAdvance(iter, s.Versions.Min())
	s.Probe.GateCheck(ok)
	return ok
}

// PlanPull asks the policy which averaged rows to return to worker after
// its iteration-iter push. Called exactly once per worker-iteration — the
// contract adaptive policies (DSSP) rely on.
func (s *State) PlanPull(worker int, iter int64) Plan {
	rows := make([]atp.RowInfo, s.part.NumUnits())
	for u := range rows {
		rows[u] = atp.RowInfo{ID: u, MeanAbs: s.Acc[worker].MeanAbs(u), Iter: s.RowIter[u]}
	}
	return s.policy.PlanPull(PullView{
		Worker: worker,
		Iter:   iter,
		Rows:   rows,
		Min:    s.Versions.Min(),
	})
}

// ObservePush records one completed push with the tracker and the policy:
// speculative pushes report their (possibly estimated) MTA time, whole-
// model pushes their full elapsed time — either way the tracker's budget
// becomes the straggler's report (Algo. 4).
func (s *State) ObservePush(worker int, iter int64, mtaTime, elapsed float64, speculative bool) {
	if s.Probe != nil {
		// Utilization against the budget in force when the push was
		// planned — read before this report moves it.
		s.Probe.BudgetUsed(worker, iter, s.Tracker.Budget(), elapsed)
	}
	if speculative {
		if mtaTime > 0 {
			s.observeTime(worker, mtaTime)
		}
	} else if elapsed > 0 {
		s.observeTime(worker, elapsed)
	}
	s.policy.ObservePush(worker, iter, elapsed)
}

// observeTime records one tracker report, journaling the exact value so
// replay reproduces the budget bit-for-bit.
func (s *State) observeTime(worker int, seconds float64) {
	if s.Journal != nil {
		s.Journal.JournalObserve(worker, seconds)
	}
	s.Tracker.Observe(worker, seconds)
}

// ObserveLoss records one transmission's loss outcome: folded best-effort
// rows (treated as never sent — their gradients stay in the sender's local
// accumulator and RSP's staleness accounting is untouched) and reliable
// rows that had to be retransmitted, with the repeat bytes they cost.
func (s *State) ObserveLoss(folded, retransmitted int, retransmitBytes float64) {
	if s.Journal != nil {
		s.Journal.JournalLoss(folded, retransmitted, retransmitBytes)
	}
	s.Loss.RowsLostFolded += folded
	s.Loss.RowsRetransmitted += retransmitted
	s.Loss.RetransmitBytes += retransmitBytes
}

// Detach removes the worker from membership: its rows stop pinning the
// RSP minimum. Idempotent; counts one disconnect per actual detach.
func (s *State) Detach(worker int) {
	if !s.Versions.IsActive(worker) {
		return
	}
	if s.Journal != nil {
		s.Journal.JournalDetach(worker)
	}
	s.Versions.Detach(worker)
	s.Churn.Disconnects++
}

// Attach re-admits a detached worker, re-baselining its rows at the
// surviving minimum, and returns that baseline iteration.
func (s *State) Attach(worker int) int64 {
	if s.Journal != nil {
		s.Journal.JournalAttach(worker)
	}
	base := s.Versions.Attach(worker)
	s.Churn.Reconnects++
	return base
}

// DrainUnit zeroes worker's averaged copy of unit after its contents left
// the server inside a pull or resync transmission. Both runtimes must
// drain through here (not GradStore.ZeroUnit directly) so the transition
// reaches the journal.
func (s *State) DrainUnit(worker, unit int) {
	if s.Journal != nil {
		s.Journal.JournalDrain(worker, unit)
	}
	s.Acc[worker].ZeroUnit(unit)
}

// RestoreUnit folds vals back into worker's averaged copy — the undo of a
// DrainUnit whose transmission never made it out, conserving gradient
// mass. Journaled for the same reason DrainUnit is.
func (s *State) RestoreUnit(worker, unit int, vals []float32) {
	if s.Journal != nil {
		s.Journal.JournalRestore(worker, unit, vals)
	}
	s.Acc[worker].AddUnit(unit, vals, 1)
}

// Backlog lists the units holding accumulated mass for the worker — what a
// rejoin resync must replay. The caller transmits them and adds the count
// to Churn.RowsResynced.
func (s *State) Backlog(worker int) []int {
	var units []int
	for u := 0; u < s.part.NumUnits(); u++ {
		if s.Acc[worker].MeanAbs(u) != 0 {
			units = append(units, u)
		}
	}
	return units
}
