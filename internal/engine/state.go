package engine

import (
	"sync"
	"sync/atomic"

	"rog/internal/atp"
	"rog/internal/metrics"
	"rog/internal/obs"
	"rog/internal/rowsync"
)

// State is the server side of a run, shared verbatim by both runtimes:
// per-worker averaged-gradient copies, row versions, the MTA-time tracker
// and the churn counters. It owns the merge semantics (shrink-to-attached
// averaging) and the membership bookkeeping.
//
// Concurrency: the state is sharded by contiguous unit ranges (the
// ShardMap shared with the version store and the per-worker accumulators).
// Each shard owns the merge-path bookkeeping for its unit range behind its
// own lock, so pushes touching different shards proceed in parallel; the
// small residue of genuinely global state — membership, the MTA tracker,
// the policy's adaptive knobs, the churn/loss counters — sits behind
// State.mu. The lock order is
//
//	caller's lock (livenet server.mu) → State.mu → shard.mu (ascending)
//
// and is never taken in reverse: merges take only the owning shard's lock,
// membership ops take State.mu plus every shard lock, and nothing under a
// shard lock reaches back up. Membership arrays are written only under all
// shard locks, so holding any single shard lock is enough to read them
// consistently on the merge path. Cross-shard Min() needs no locks at all:
// it folds the shards' atomically cached minima.
//
// The simnet kernel is single-threaded and calls everything from one
// goroutine; the locks cost it nothing contended. The socket server calls
// the merge path concurrently from its per-connection goroutines.
//
// The declaration below is the machine-checked form of that order: the
// lockorder pass verifies every acquisition in the module against it
// (Server.mu is livenet's, Store.mu is durable's; recovery inverts the
// store edge deliberately and carries its own ignore with the argument).
//
//roglint:lockorder Server.mu < State.mu < stateShard.mu < Store.mu
type State struct {
	policy  Policy // guarded by mu (adaptive policies mutate on observe/plan)
	part    *rowsync.Partition
	workers int

	mu     sync.Mutex
	sm     *rowsync.ShardMap
	shards []*stateShard

	// Acc[w] is worker w's averaged-gradient copy ḡ^s; detached workers'
	// copies keep accumulating the backlog their rejoin resync replays.
	// Unit data (and the dirty sets) are guarded by stateShard.mu — the
	// unit's owning shard; the slice itself is set once at construction.
	Acc      []*rowsync.GradStore
	Versions *rowsync.VersionStore
	// RowIter[u] is the latest iteration (any worker) whose gradients
	// updated unit u — the freshness input of the server-mode importance
	// metric. Entries are guarded by stateShard.mu (unit u's owning shard).
	RowIter []int64
	Tracker *atp.TimeTracker   // guarded by mu
	Churn   metrics.ChurnStats // guarded by mu; per-shard duplicate counts fold in via ChurnSnapshot
	Loss    metrics.LossStats  // guarded by mu

	// OnMerge, when set, observes every merged row (worker, unit, stamped
	// version) — the hook the simnet↔livenet parity tests record with. It
	// runs under the owning shard's lock and must not call back into the
	// State.
	OnMerge func(worker, unit int, iter int64)

	// Probe, when set, receives structured trace events and feeds the
	// runtime counters (merges with staleness lag, gate checks, MTA budget
	// utilization). nil — the default — costs one pointer check per site.
	Probe *obs.Probe

	// pushSeq[w] is worker w's latest push-plan sequence number, noted by
	// the driver before that push's rows merge so every Merge event
	// carries its originating plan's correlation ID. Entry w is written by
	// the goroutine carrying worker w's push and read on that same push's
	// merge path, so no lock is needed.
	pushSeq []int64

	// lastRelease records the most recent merge (or detach) that advanced
	// the global minimum — the causal releaser a closing staleness gate
	// attributes its stall to. Written only when Probe is set, so the
	// disabled path stays allocation-free; a single atomic pointer swap
	// keeps the three fields torn-read-safe against concurrent gate exits.
	lastRelease atomic.Pointer[obs.Blocker]

	// Journal, when set, receives every durable transition (see Journal) —
	// the write-ahead log the crash-recovery store replays. Handles are
	// internally synchronized; records from different shards commute under
	// replay.
	Journal Journal

	// RowSink, when set, observes every merged row's averaged contribution:
	// vals scaled by scale is exactly the mass addMassLocked folded into
	// each worker's averaged copy, and iter is the highest version the
	// merge stamped. The serving tier's weight shadow consumes this stream.
	// It runs under the owning shard's lock, after the version stamp, and
	// must not call back into the State (reading the lock-free
	// Versions.Min() is fine).
	RowSink func(unit int, vals []float32, scale float32, iter int64)
}

// stateShard is the independently lockable slice of server state owning
// one contiguous unit range. Its lock guards the range's version counts,
// every worker's accumulated gradients for those units, RowIter entries,
// and the counters below.
type stateShard struct {
	id     int
	lo, hi int // unit range [lo, hi)

	mu      sync.Mutex
	dups    int64 // guarded by mu; duplicate pushes dropped in this range
	maxLead int64 // guarded by mu; largest stamped lead over Min() observed
	// wait is set once at construction and internally synchronized; its
	// own lock is taken with no other lock held (retry closures run
	// unlocked), so it sits outside the declared order.
	wait *WaitList
}

// Duplicates returns the duplicate pushes dropped in this shard's range.
func (sh *stateShard) Duplicates() int64 {
	sh.mu.Lock()
	n := sh.dups
	sh.mu.Unlock()
	return n
}

// MaxLead returns the largest version lead over the global minimum any
// merge in this shard has stamped. A row's lead is maximal at stamp time —
// the minimum only advances afterwards — so the running maximum recorded
// on the merge path equals the maximum the full-matrix MaxAhead scan would
// ever have observed.
func (sh *stateShard) MaxLead() int64 {
	sh.mu.Lock()
	n := sh.maxLead
	sh.mu.Unlock()
	return n
}

// NewState builds the unsharded (single-shard) server state for one run.
// initialBudget seeds the MTA-time tracker (the simnet drivers use 1 s,
// the socket server its configured floor).
func NewState(policy Policy, part *rowsync.Partition, workers int, initialBudget float64) *State {
	return NewStateSharded(policy, part, workers, initialBudget, 1)
}

// NewStateSharded builds server state split into shards contiguous unit
// ranges (clamped to [1, NumUnits]). Shard 1 is bit-for-bit equivalent to
// the historical single-lock state.
func NewStateSharded(policy Policy, part *rowsync.Partition, workers int, initialBudget float64, shards int) *State {
	sm := rowsync.NewShardMap(part.NumUnits(), shards)
	s := &State{
		policy:   policy,
		part:     part,
		workers:  workers,
		sm:       sm,
		Versions: rowsync.NewVersionStoreSharded(workers, part.NumUnits(), sm),
		RowIter:  make([]int64, part.NumUnits()),
		Tracker:  atp.NewTimeTracker(workers, initialBudget),
		pushSeq:  make([]int64, workers),
	}
	for i := 0; i < workers; i++ {
		s.Acc = append(s.Acc, rowsync.NewGradStoreSharded(part, sm))
	}
	for i := 0; i < sm.NumShards(); i++ {
		lo, hi := sm.Range(i)
		s.shards = append(s.shards, &stateShard{id: i, lo: lo, hi: hi, wait: NewWaitList()})
	}
	return s
}

// Policy returns the policy this state executes.
func (s *State) Policy() Policy {
	s.mu.Lock()
	p := s.policy
	s.mu.Unlock()
	return p
}

// NumShards returns the number of independently locked shards.
func (s *State) NumShards() int { return len(s.shards) }

// ShardMap returns the unit→shard assignment.
func (s *State) ShardMap() *rowsync.ShardMap { return s.sm }

// lockShardsLocked acquires every shard lock in ascending order; the
// caller holds s.mu (the membership section of the lock order).
func (s *State) lockShardsLocked() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

// unlockShardsLocked releases every shard lock.
func (s *State) unlockShardsLocked() {
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// WithAllLocked runs fn with the whole state quiesced — State.mu and every
// shard lock held. This is the checkpoint barrier: a snapshot encoded
// inside fn observes no torn merges.
func (s *State) WithAllLocked(fn func()) {
	s.mu.Lock()
	s.lockShardsLocked()
	fn()
	s.unlockShardsLocked()
	s.mu.Unlock()
}

// Merge folds one received row into every worker's averaged copy (Algo. 2
// lines 2–6), taking only the owning shard's lock. It reports whether the
// global minimum version advanced — the caller's cue to re-evaluate parked
// staleness gates; callers that re-check unconditionally may discard it.
//
// Averaging is normalized by the attached team size (graceful degradation:
// N−1 workers average over N−1, not N), and the row is version-stamped
// monotonically.
//
// A push whose iteration does not advance the row's stamped version is a
// duplicate and is dropped whole. In normal operation workers push each
// (row, iteration) exactly once, so the guard only fires when a recovered
// server re-receives rows it merged before the crash — applying those
// again would double-count their gradients.
func (s *State) Merge(worker, unit int, vals []float32, iter int64) bool {
	before := s.Versions.Min()
	sh := s.shards[s.sm.ShardOf(unit)]
	sh.mu.Lock()
	s.mergeUnitLocked(sh, worker, unit, vals, iter)
	sh.mu.Unlock()
	adv := s.Versions.Min() > before
	if adv && s.Probe != nil {
		s.lastRelease.Store(&obs.Blocker{Worker: worker, Unit: unit, Version: iter})
	}
	return adv
}

// MergeBatch merges one push's rows — units ascending, vals[i] the row for
// units[i], all stamped iter — taking each owning shard's lock once per
// contiguous run instead of once per row. It reports whether the global
// minimum advanced across the whole batch.
func (s *State) MergeBatch(worker int, units []int, vals [][]float32, iter int64) bool {
	before := s.Versions.Min()
	for i := 0; i < len(units); {
		sh := s.shards[s.sm.ShardOf(units[i])]
		sh.mu.Lock()
		for i < len(units) && units[i] >= sh.lo && units[i] < sh.hi {
			s.mergeUnitLocked(sh, worker, units[i], vals[i], iter)
			i++
		}
		sh.mu.Unlock()
	}
	adv := s.Versions.Min() > before
	if adv && s.Probe != nil && len(units) > 0 {
		// The batch is one causal push; its last unit stands for it.
		s.lastRelease.Store(&obs.Blocker{Worker: worker, Unit: units[len(units)-1], Version: iter})
	}
	return adv
}

// Stamp is one originating-worker iteration carried by an aggregated row.
type Stamp struct {
	Worker int
	Iter   int64
}

// MergeCombined folds one edge-aggregated row: vals is the element-wise
// sum of the contributing workers' rows for unit, and stamps carries each
// originator's iteration — the provenance that preserves the RSP staleness
// bound through the aggregation tier (every contributor's version advances
// exactly as if its row had arrived alone; by linearity of the
// shrink-to-attached average, the summed mass lands identically). Stamps
// that would not advance their row's version are dropped as duplicates;
// the mass is applied if at least one stamp is live. It reports whether
// the global minimum advanced.
func (s *State) MergeCombined(unit int, vals []float32, stamps []Stamp) bool {
	before := s.Versions.Min()
	sh := s.shards[s.sm.ShardOf(unit)]
	sh.mu.Lock()
	live := stamps[:0:0]
	for _, st := range stamps {
		if st.Iter > s.Versions.Get(st.Worker, unit) {
			live = append(live, st)
		} else {
			sh.dups++
		}
	}
	if len(live) == 0 {
		sh.mu.Unlock()
		return false
	}
	if s.Journal != nil {
		// Replay equivalence: the first live stamp carries the combined
		// mass, the rest re-stamp with zero rows.
		s.Journal.JournalMerge(live[0].Worker, unit, live[0].Iter, vals)
		if len(live) > 1 {
			zero := make([]float32, len(vals))
			for _, st := range live[1:] {
				s.Journal.JournalMerge(st.Worker, unit, st.Iter, zero)
			}
		}
	}
	inv := s.addMassLocked(unit, vals)
	maxIter := live[0].Iter
	for _, st := range live {
		s.stampLocked(sh, st.Worker, unit, st.Iter)
		if st.Iter > maxIter {
			maxIter = st.Iter
		}
	}
	if s.RowSink != nil {
		s.RowSink(unit, vals, inv, maxIter)
	}
	sh.mu.Unlock()
	adv := s.Versions.Min() > before
	if adv && s.Probe != nil {
		s.lastRelease.Store(&obs.Blocker{Worker: live[0].Worker, Unit: unit, Version: live[0].Iter})
	}
	return adv
}

// mergeUnitLocked is the single-row merge body; the caller holds the lock
// of the shard owning unit.
func (s *State) mergeUnitLocked(sh *stateShard, worker, unit int, vals []float32, iter int64) {
	if iter <= s.Versions.Get(worker, unit) {
		sh.dups++
		return
	}
	if s.Journal != nil {
		s.Journal.JournalMerge(worker, unit, iter, vals)
	}
	inv := s.addMassLocked(unit, vals)
	s.stampLocked(sh, worker, unit, iter)
	if s.RowSink != nil {
		s.RowSink(unit, vals, inv, iter)
	}
}

// addMassLocked folds vals into every worker's averaged copy of unit,
// normalized by the attached team size, and returns the normalization
// factor applied. Caller holds the unit's shard lock, which also pins
// membership (written only under all shard locks).
func (s *State) addMassLocked(unit int, vals []float32) float32 {
	active := s.Versions.ActiveWorkers()
	if active == 0 {
		active = s.workers
	}
	inv := 1 / float32(active)
	for w := range s.Acc {
		s.Acc[w].AddUnit(unit, vals, inv)
	}
	return inv
}

// stampLocked advances worker's version of unit to iter and fires the
// observation hooks. Caller holds the unit's shard lock and has already
// established iter > the stamped version.
func (s *State) stampLocked(sh *stateShard, worker, unit int, iter int64) {
	s.Versions.Update(worker, unit, iter)
	if iter > s.RowIter[unit] {
		s.RowIter[unit] = iter
	}
	// Lag is this row's stamped version ahead of the global minimum — the
	// live staleness spread RSP bounds. Min() is lock-free (cached shard
	// minima), and the lead is maximal now: recording the running maximum
	// here is exactly MaxAhead without ever holding all shard locks.
	lag := iter - s.Versions.Min()
	if lag < 0 {
		lag = 0
	}
	if lag > sh.maxLead {
		sh.maxLead = lag
	}
	if s.OnMerge != nil {
		s.OnMerge(worker, unit, iter)
	}
	if s.Probe != nil {
		s.Probe.Merge(worker, unit, iter, s.pushSeq[worker], iter, lag)
	}
}

// MaxLeadObserved returns the largest staleness lead any merge has ever
// stamped — the whole-run bound the fleet experiment asserts against the
// RSP threshold.
func (s *State) MaxLeadObserved() int64 {
	var max int64
	for _, sh := range s.shards {
		if l := sh.MaxLead(); l > max {
			max = l
		}
	}
	return max
}

// CanAdvance applies the policy's staleness gate at the current global
// minimum row version.
func (s *State) CanAdvance(iter int64) bool {
	s.mu.Lock()
	ok := s.policy.CanAdvance(iter, s.Versions.Min())
	s.mu.Unlock()
	s.Probe.GateCheck(ok)
	return ok
}

// NotePushSeq records worker w's current push-plan sequence number so the
// Merge events its rows produce carry the plan's correlation ID. Entry w
// is only touched by the goroutine carrying w's push (see pushSeq).
func (s *State) NotePushSeq(w int, seq int64) {
	if s.Probe == nil || w < 0 || w >= len(s.pushSeq) {
		return
	}
	s.pushSeq[w] = seq
}

// LastRelease returns the most recent merge or detach that advanced the
// global minimum — the blocker a just-released staleness gate charges its
// stall to. NoBlocker before any release (or with the probe disabled).
func (s *State) LastRelease() obs.Blocker {
	if b := s.lastRelease.Load(); b != nil {
		return *b
	}
	return obs.NoBlocker()
}

// MinBlocker scans for the (worker, unit) pinning the global minimum
// version — what a gate about to park is actually waiting on. The scan is
// deterministic (lowest unit, then lowest worker, among attached workers)
// and quiesces the state, so it runs only on the already-blocked slow path
// of an enabled probe; NoBlocker (with the minimum as Version) when no
// attached entry matches.
func (s *State) MinBlocker() obs.Blocker {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockShardsLocked()
	defer s.unlockShardsLocked()
	min := s.Versions.Min()
	for u := 0; u < s.part.NumUnits(); u++ {
		for w := 0; w < s.workers; w++ {
			if s.Versions.IsActive(w) && s.Versions.Get(w, u) == min {
				return obs.Blocker{Worker: w, Unit: u, Version: min}
			}
		}
	}
	blk := obs.NoBlocker()
	blk.Version = min
	return blk
}

// PlanPull asks the policy which averaged rows to return to worker after
// its iteration-iter push. Called exactly once per worker-iteration — the
// contract adaptive policies (DSSP) rely on.
func (s *State) PlanPull(worker int, iter int64) Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	rows := make([]atp.RowInfo, s.part.NumUnits())
	for _, sh := range s.shards {
		sh.mu.Lock()
		for u := sh.lo; u < sh.hi; u++ {
			rows[u] = atp.RowInfo{ID: u, MeanAbs: s.Acc[worker].MeanAbs(u), Iter: s.RowIter[u]}
		}
		sh.mu.Unlock()
	}
	return s.policy.PlanPull(PullView{
		Worker: worker,
		Iter:   iter,
		Rows:   rows,
		Min:    s.Versions.Min(),
	})
}

// ObservePush records one completed push with the tracker and the policy:
// speculative pushes report their (possibly estimated) MTA time, whole-
// model pushes their full elapsed time — either way the tracker's budget
// becomes the straggler's report (Algo. 4).
func (s *State) ObservePush(worker int, iter int64, mtaTime, elapsed float64, speculative bool) {
	s.mu.Lock()
	if s.Probe != nil {
		// Utilization against the budget in force when the push was
		// planned — read before this report moves it.
		s.Probe.BudgetUsed(worker, iter, s.Tracker.Budget(), elapsed)
	}
	if speculative {
		if mtaTime > 0 {
			s.observeTimeLocked(worker, mtaTime)
		}
	} else if elapsed > 0 {
		s.observeTimeLocked(worker, elapsed)
	}
	s.policy.ObservePush(worker, iter, elapsed)
	s.mu.Unlock()
}

// observeTimeLocked records one tracker report, journaling the exact value
// so replay reproduces the budget bit-for-bit. Caller holds s.mu.
func (s *State) observeTimeLocked(worker int, seconds float64) {
	if s.Journal != nil {
		s.Journal.JournalObserve(worker, seconds)
	}
	s.Tracker.Observe(worker, seconds)
}

// Budget returns the MTA tracker's current per-push time budget.
func (s *State) Budget() float64 {
	s.mu.Lock()
	b := s.Tracker.Budget()
	s.mu.Unlock()
	return b
}

// ObserveLoss records one transmission's loss outcome: folded best-effort
// rows (treated as never sent — their gradients stay in the sender's local
// accumulator and RSP's staleness accounting is untouched) and reliable
// rows that had to be retransmitted, with the repeat bytes they cost.
func (s *State) ObserveLoss(folded, retransmitted int, retransmitBytes float64) {
	s.mu.Lock()
	if s.Journal != nil {
		s.Journal.JournalLoss(folded, retransmitted, retransmitBytes)
	}
	s.Loss.RowsLostFolded += folded
	s.Loss.RowsRetransmitted += retransmitted
	s.Loss.RetransmitBytes += retransmitBytes
	s.mu.Unlock()
}

// Detach removes the worker from membership: its rows stop pinning the
// RSP minimum. Idempotent; counts one disconnect per actual detach.
func (s *State) Detach(worker int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockShardsLocked()
	defer s.unlockShardsLocked()
	if !s.Versions.IsActive(worker) {
		return
	}
	if s.Journal != nil {
		s.Journal.JournalDetach(worker)
	}
	s.Versions.Detach(worker)
	s.Churn.Disconnects++
	if s.Probe != nil {
		// A detach can release the gate without any merge: the departing
		// worker's rows stop pinning the minimum. Unit -1 marks the
		// non-merge release; Version is the surviving minimum.
		s.lastRelease.Store(&obs.Blocker{Worker: worker, Unit: -1, Version: s.Versions.Min()})
	}
}

// Attach re-admits a detached worker, re-baselining its rows at the
// surviving minimum, and returns that baseline iteration.
func (s *State) Attach(worker int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockShardsLocked()
	defer s.unlockShardsLocked()
	if s.Journal != nil {
		s.Journal.JournalAttach(worker)
	}
	base := s.Versions.Attach(worker)
	s.Churn.Reconnects++
	return base
}

// IsActive reports whether the worker is currently attached.
func (s *State) IsActive(worker int) bool {
	s.mu.Lock()
	ok := s.Versions.IsActive(worker)
	s.mu.Unlock()
	return ok
}

// ActiveWorkers returns the number of currently attached workers.
func (s *State) ActiveWorkers() int {
	s.mu.Lock()
	n := s.Versions.ActiveWorkers()
	s.mu.Unlock()
	return n
}

// MaxAhead returns the largest current lead of any attached entry over the
// global minimum, scanning the whole version matrix quiesced.
func (s *State) MaxAhead() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockShardsLocked()
	defer s.unlockShardsLocked()
	return s.Versions.MaxAhead()
}

// DrainUnit zeroes worker's averaged copy of unit after its contents left
// the server inside a pull or resync transmission. Both runtimes must
// drain through here (not GradStore.ZeroUnit directly) so the transition
// reaches the journal.
func (s *State) DrainUnit(worker, unit int) {
	sh := s.shards[s.sm.ShardOf(unit)]
	sh.mu.Lock()
	s.drainUnitLocked(worker, unit)
	sh.mu.Unlock()
}

// DrainUnitWith runs fn over worker's live averaged copy of unit, then
// drains it, all under the owning shard's lock — the encode-then-drain
// step of the socket server's pull path, which must not let a concurrent
// merge land between the copy leaving and the zero (the merged mass would
// be silently dropped).
func (s *State) DrainUnitWith(worker, unit int, fn func(vals []float32)) {
	sh := s.shards[s.sm.ShardOf(unit)]
	sh.mu.Lock()
	fn(s.Acc[worker].Unit(unit))
	s.drainUnitLocked(worker, unit)
	sh.mu.Unlock()
}

// drainUnitLocked journals and zeroes; caller holds the unit's shard lock.
func (s *State) drainUnitLocked(worker, unit int) {
	if s.Journal != nil {
		s.Journal.JournalDrain(worker, unit)
	}
	s.Acc[worker].ZeroUnit(unit)
}

// RestoreUnit folds vals back into worker's averaged copy — the undo of a
// DrainUnit whose transmission never made it out, conserving gradient
// mass. Journaled for the same reason DrainUnit is.
func (s *State) RestoreUnit(worker, unit int, vals []float32) {
	sh := s.shards[s.sm.ShardOf(unit)]
	sh.mu.Lock()
	if s.Journal != nil {
		s.Journal.JournalRestore(worker, unit, vals)
	}
	s.Acc[worker].AddUnit(unit, vals, 1)
	sh.mu.Unlock()
}

// Backlog lists the units holding accumulated mass for the worker — what a
// rejoin resync must replay. The caller transmits them and adds the count
// to the churn stats via AddRowsResynced. Cost is proportional to the
// backlog size (the accumulators track dirty units per shard).
func (s *State) Backlog(worker int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockShardsLocked()
	defer s.unlockShardsLocked()
	return s.Acc[worker].Backlog()
}

// DrainBacklog encodes and drains the worker's whole backlog: fn runs over
// each dirty unit's live mass under the owning locks, and the unit is
// zeroed before the next one is visited. It returns the number of units
// drained. This is the socket server's rejoin resync, made atomic against
// concurrent merges the same way DrainUnitWith is.
func (s *State) DrainBacklog(worker int, fn func(unit int, vals []float32)) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockShardsLocked()
	defer s.unlockShardsLocked()
	units := s.Acc[worker].Backlog()
	for _, u := range units {
		fn(u, s.Acc[worker].Unit(u))
		s.drainUnitLocked(worker, u)
	}
	return len(units)
}

// ChurnSnapshot returns the churn counters with the per-shard duplicate
// counts folded in — the consistent read both runtimes report from.
func (s *State) ChurnSnapshot() metrics.ChurnStats {
	var c metrics.ChurnStats
	s.WithAllLocked(func() { c = s.ChurnLocked() })
	return c
}

// ChurnLocked folds the per-shard duplicate counts into the churn
// counters. The caller holds the whole state (WithAllLocked) — the
// checkpoint encoder reads through here while the snapshot barrier is up.
func (s *State) ChurnLocked() metrics.ChurnStats {
	c := s.Churn
	for _, sh := range s.shards {
		c.DuplicatesDropped += int(sh.dups)
	}
	return c
}

// LossSnapshot returns the loss counters under the state lock.
func (s *State) LossSnapshot() metrics.LossStats {
	s.mu.Lock()
	l := s.Loss
	s.mu.Unlock()
	return l
}

// AddDetachStall charges sec seconds of released wait time to churn —
// stall attributable to a detach unblocking the staleness gate.
func (s *State) AddDetachStall(sec float64) {
	s.mu.Lock()
	s.Churn.DetachStall += sec
	s.mu.Unlock()
}

// AddRowsResynced counts n rows replayed by a rejoin resync.
func (s *State) AddRowsResynced(n int) {
	s.mu.Lock()
	s.Churn.RowsResynced += n
	s.mu.Unlock()
}

// RestoreVersions replaces the version store with one rebuilt from
// checkpointed state, sharded identically. Recovery-time only: the state
// must not be shared yet.
func (s *State) RestoreVersions(v [][]int64, active []bool, frozenMin int64) {
	s.Versions = rowsync.RestoreVersionStoreSharded(v, active, frozenMin, s.sm)
}

// minShardIndex returns the shard whose cached minimum pins the global
// minimum (lowest index on ties) — where a parked staleness gate is most
// usefully registered.
func (s *State) minShardIndex() int {
	best := 0
	min := s.Versions.MinShard(0)
	for i := 1; i < len(s.shards); i++ {
		if m := s.Versions.MinShard(i); m < min {
			min, best = m, i
		}
	}
	return best
}

// ParkWaiter parks worker w's retry closure on the shard currently
// pinning the global minimum — the shard whose progress can unblock it.
func (s *State) ParkWaiter(w int, now float64, retry func() bool) {
	s.shards[s.minShardIndex()].wait.Park(w, now, retry)
}

// DropWaiter discards w's parked retry wherever it is parked.
func (s *State) DropWaiter(w int) {
	for _, sh := range s.shards {
		sh.wait.Drop(w)
	}
}

// WaitersParked reports how many workers are parked across all shards.
func (s *State) WaitersParked() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.wait.Len()
	}
	return n
}

// WakeWaiters retries every parked worker in globally ascending worker
// order — merged across shards, so the wake sequence is identical to the
// single-shard list's and the simnet event order stays deterministic.
func (s *State) WakeWaiters(now float64) { s.wakeWaiters(now, nil) }

// WakeWaitersDetach is WakeWaiters for a detach-triggered wake: each
// resumed worker's time parked is charged to the churn stall counter.
func (s *State) WakeWaitersDetach(now float64) {
	var stall float64
	s.wakeWaiters(now, &stall)
	if stall != 0 {
		s.AddDetachStall(stall)
	}
}

func (s *State) wakeWaiters(now float64, stall *float64) {
	if len(s.shards) == 1 {
		s.shards[0].wait.WakeAttributing(now, stall)
		return
	}
	type parked struct {
		w  int
		wl *WaitList
	}
	var all []parked
	for _, sh := range s.shards {
		for _, w := range sh.wait.Workers() {
			all = append(all, parked{w, sh.wait})
		}
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].w < all[j-1].w; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	for _, p := range all {
		p.wl.TryResume(p.w, now, stall)
	}
}

// TransferWaiters moves every parked retry into dst, preserving park
// stamps — the state-adoption step of a server recovery (the survivors'
// gates must re-evaluate against the recovered state, not the dead one).
func (s *State) TransferWaiters(dst *State) {
	for _, sh := range s.shards {
		sh.wait.mu.Lock()
		pending, parkedAt := sh.wait.pending, sh.wait.parkedAt
		sh.wait.pending = make(map[int]func() bool)
		sh.wait.parkedAt = make(map[int]float64)
		sh.wait.mu.Unlock()
		for w, retry := range pending {
			dst.shards[dst.minShardIndex()].wait.Park(w, parkedAt[w], retry)
		}
	}
}
