package engine

import (
	"math"

	"rog/internal/atp"
)

// rog is the paper's system: RSP bounded per-row staleness with ATP
// importance-ranked speculative transmission. Pushes rank every unit by
// the worker-mode importance metric, force out rows nearing the
// within-worker staleness bound, and floor the transmission at the MTA
// count (Table I); pulls rank the accumulated averaged rows server-mode
// (fresher first). The "pipeline" registry name is the same policy with
// the Pipelined trait (Sec. VI-D: overlap compute with communication).
type rog struct {
	threshold int64
	mtaCount  int
	coeff     atp.Coefficients
	pipelined bool
}

func newROG(p Params, pipelined bool) *rog {
	return &rog{
		threshold: int64(p.Threshold),
		mtaCount:  int(math.Ceil(atp.MTA(p.Threshold) * float64(p.NumUnits))),
		coeff:     p.Coeff,
		pipelined: pipelined,
	}
}

func (r *rog) Name() string {
	if r.pipelined {
		return "pipeline"
	}
	return "rog"
}

func (r *rog) Traits() Traits { return Traits{Pipelined: r.pipelined} }

// PlanPush is Algo. 1 PushGradients with Algo. 3 worker mode: rank all
// units by importance, then force rows whose within-worker staleness would
// reach the threshold to the front — they transmit this iteration, budget
// or not. The MTA floor (Algo. 4) lower-bounds the mandatory prefix.
func (r *rog) PlanPush(v PushView) Plan {
	ranked := atp.Rank(normalized(v.Rows), atp.Worker, r.coeff)
	var forced, rest []int
	for _, u := range ranked {
		if v.Iter-v.Rows[u].Iter >= r.threshold-1 {
			forced = append(forced, u)
		} else {
			rest = append(rest, u)
		}
	}
	plan := append(forced, rest...)
	must := r.mtaCount
	if len(forced) > must {
		must = len(forced)
	}
	if must > len(plan) {
		must = len(plan)
	}
	return Plan{Units: plan, Must: must, Speculative: true}
}

// CanAdvance is the RSP server-side gate (Algo. 2 lines 7–9): a worker at
// iteration n is served only while it is not ≥ threshold ahead of the
// slowest row anywhere.
func (r *rog) CanAdvance(iter, min int64) bool { return iter-min < r.threshold }

// PlanPull ranks the rows with accumulated mass server-mode (Algo. 2
// lines 10–13: fresher rows first — pulls cannot trip the staleness bound,
// so freshness is pure gain) and sends them speculatively under the same
// MTA budget.
func (r *rog) PlanPull(v PullView) Plan {
	rows := make([]atp.RowInfo, 0, len(v.Rows))
	for _, row := range v.Rows {
		if row.MeanAbs != 0 {
			rows = append(rows, row)
		}
	}
	plan := atp.Rank(normalized(rows), atp.Server, r.coeff)
	must := r.mtaCount
	if must > len(plan) {
		must = len(plan)
	}
	return Plan{Units: plan, Must: must, Speculative: true}
}

func (*rog) ObservePush(worker int, iter int64, seconds float64) {}
