package engine

// ssp is Stale Synchronous Parallel: whole-model push and pull every
// iteration, with the classic fixed staleness gate — a worker entering
// iteration n blocks while n − min(clock) ≥ threshold. Small thresholds
// keep statistical efficiency but stall under bandwidth fades; large ones
// trade accuracy-per-iteration for speed (paper Fig. 1).
type ssp struct {
	threshold int64
}

func newSSP(p Params) *ssp { return &ssp{threshold: int64(p.Threshold)} }

func (*ssp) Name() string   { return "ssp" }
func (*ssp) Traits() Traits { return Traits{} }

func (*ssp) PlanPush(v PushView) Plan { return allUnits(len(v.Rows)) }

func (s *ssp) CanAdvance(iter, min int64) bool { return iter-min < s.threshold }

func (*ssp) PlanPull(v PullView) Plan { return allUnits(len(v.Rows)) }

func (*ssp) ObservePush(worker int, iter int64, seconds float64) {}
