package engine

import (
	"reflect"
	"testing"

	"rog/internal/atp"
)

func params(workers, threshold, units int) Params {
	return Params{Workers: workers, Threshold: threshold, NumUnits: units}.withDefaults()
}

func pushRows(meanAbs []float64, lastPush []int64) []atp.RowInfo {
	rows := make([]atp.RowInfo, len(meanAbs))
	for i := range rows {
		rows[i] = atp.RowInfo{ID: i, MeanAbs: meanAbs[i], Iter: lastPush[i]}
	}
	return rows
}

func TestRegistryKnowsEveryPolicy(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, params(4, 4, 8))
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("nope", params(4, 4, 8)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestTraitsSelectLoopShapes(t *testing.T) {
	for name, want := range map[string]Traits{
		"bsp":      {Barrier: true},
		"ssp":      {},
		"flown":    {},
		"rog":      {},
		"pipeline": {Pipelined: true},
		"dssp":     {},
	} {
		p, _ := New(name, params(4, 4, 8))
		if got := p.Traits(); got != want {
			t.Errorf("%s traits = %+v, want %+v", name, got, want)
		}
	}
}

func TestGates(t *testing.T) {
	cases := []struct {
		name      string
		iter, min int64
		want      bool
	}{
		{"bsp", 1, 0, false}, // barrier: nobody else pushed yet
		{"bsp", 1, 1, true},
		{"ssp", 4, 0, false}, // threshold 4: gap 4 blocks
		{"ssp", 4, 1, true},
		{"flown", 4, 0, false},
		{"rog", 4, 0, false},
		{"rog", 4, 1, true},
	}
	for _, c := range cases {
		p, _ := New(c.name, params(4, 4, 8))
		if got := p.CanAdvance(c.iter, c.min); got != c.want {
			t.Errorf("%s.CanAdvance(%d,%d) = %v, want %v", c.name, c.iter, c.min, got, c.want)
		}
	}
}

func TestWholeModelPlans(t *testing.T) {
	for _, name := range []string{"bsp", "ssp", "dssp"} {
		p, _ := New(name, params(3, 4, 5))
		plan := p.PlanPush(PushView{Worker: 0, Iter: 1, Rows: pushRows(
			[]float64{1, 2, 3, 4, 5}, make([]int64, 5))})
		if plan.Skip || plan.Speculative {
			t.Errorf("%s push plan = %+v, want non-speculative full sync", name, plan)
		}
		if want := []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(plan.Units, want) || plan.Must != 5 {
			t.Errorf("%s push plan = %+v, want all units mandatory", name, plan)
		}
	}
}

// TestROGPlanForcedRowsAndMTAFloor checks the two mandatory-prefix rules:
// rows at the within-worker staleness bound lead the plan regardless of
// importance, and the floor never drops below the MTA count.
func TestROGPlanForcedRowsAndMTAFloor(t *testing.T) {
	p, _ := New("rog", params(3, 4, 10))
	last := make([]int64, 10)
	mass := make([]float64, 10)
	for i := range last {
		last[i] = 9 // fresh
		mass[i] = float64(10 - i)
	}
	// Units 7 and 8 were last pushed at iteration 7: at n=10 their
	// staleness reaches threshold−1 = 3, so they must go out first.
	last[7], last[8] = 7, 7
	plan := p.PlanPush(PushView{Worker: 1, Iter: 10, Rows: pushRows(mass, last)})
	if !plan.Speculative {
		t.Fatal("ROG push must be speculative")
	}
	if len(plan.Units) != 10 {
		t.Fatalf("plan has %d units, want all 10", len(plan.Units))
	}
	lead := map[int]bool{plan.Units[0]: true, plan.Units[1]: true}
	if !lead[7] || !lead[8] {
		t.Fatalf("forced rows not at the front: %v", plan.Units)
	}
	mta := int(atp.MTA(4)*10 + 0.999)
	if plan.Must < mta || plan.Must < 2 {
		t.Fatalf("must = %d, want ≥ max(MTA count %d, 2 forced)", plan.Must, mta)
	}
}

// TestROGPullSkipsEmptyRows checks the server-mode pull plans only rows
// with accumulated mass, ranked fresher-first.
func TestROGPullSkipsEmptyRows(t *testing.T) {
	p, _ := New("rog", params(3, 4, 4))
	rows := []atp.RowInfo{
		{ID: 0, MeanAbs: 0, Iter: 5},
		{ID: 1, MeanAbs: 1, Iter: 2},
		{ID: 2, MeanAbs: 1, Iter: 9}, // freshest: first out
		{ID: 3, MeanAbs: 0, Iter: 9},
	}
	plan := p.PlanPull(PullView{Worker: 0, Iter: 10, Rows: rows})
	if want := []int{2, 1}; !reflect.DeepEqual(plan.Units, want) {
		t.Fatalf("pull plan = %v, want %v", plan.Units, want)
	}
	if plan.Must > len(plan.Units) {
		t.Fatalf("must %d exceeds plan length %d", plan.Must, len(plan.Units))
	}
}

// TestFLOWNSkipsInsidePeriod drives the scheduler: before any measurement
// a worker syncs every iteration; once measured fast relative to the
// budget it keeps syncing, and measured slow it skips — except when
// skipping would trip the global threshold.
func TestFLOWNSkipsInsidePeriod(t *testing.T) {
	p, _ := New("flown", params(2, 4, 3))
	rows := pushRows([]float64{1, 1, 1}, make([]int64, 3))

	// Unmeasured: must sync.
	if plan := p.PlanPush(PushView{Worker: 0, Iter: 1, Rows: rows, Min: 0, Budget: 10}); plan.Skip {
		t.Fatal("unmeasured worker skipped its first sync")
	}
	p.ObservePush(0, 1, 9.0) // slow: own 9s of a 10s budget → period 3

	if plan := p.PlanPush(PushView{Worker: 0, Iter: 2, Rows: rows, Min: 1, Budget: 10}); !plan.Skip {
		t.Fatal("slow worker inside its period did not skip")
	}
	// Iteration 4: n−lastSync = 3 ≥ period → sync again.
	if plan := p.PlanPush(PushView{Worker: 0, Iter: 4, Rows: rows, Min: 3, Budget: 10}); plan.Skip {
		t.Fatal("worker at its period boundary skipped")
	}
	p.ObservePush(0, 4, 1.0) // now fast → period 1: syncs every iteration
	if plan := p.PlanPush(PushView{Worker: 0, Iter: 5, Rows: rows, Min: 4, Budget: 10}); plan.Skip {
		t.Fatal("fast worker skipped")
	}
	p.ObservePush(0, 5, 9.0)
	// Slow again, but skipping would reach threshold−1 against min: forced.
	if plan := p.PlanPush(PushView{Worker: 0, Iter: 6, Rows: rows, Min: 3, Budget: 10}); plan.Skip {
		t.Fatal("worker about to trip the global threshold skipped")
	}
}

// TestDSSPAdaptsWithinBounds runs the controller across regimes and checks
// the dynamic threshold stays within [2, Threshold] and moves the right
// way: loosening when the spread presses the gate, tightening in step.
func TestDSSPAdaptsWithinBounds(t *testing.T) {
	pol, _ := New("dssp", params(3, 6, 4))
	d := pol.(*dssp)
	if d.CurrentThreshold() != 6 {
		t.Fatalf("initial threshold = %d, want the configured bound", d.CurrentThreshold())
	}
	rows := make([]atp.RowInfo, 4)

	// A team in lockstep (spread 0) tightens toward the floor.
	for it := int64(1); it <= 20; it++ {
		for w := 0; w < 3; w++ {
			d.PlanPull(PullView{Worker: w, Iter: it, Rows: rows})
		}
	}
	if got := d.CurrentThreshold(); got != 2 {
		t.Fatalf("lockstep team: threshold = %d, want the floor 2", got)
	}
	if d.CanAdvance(4, 1) {
		t.Fatal("tightened gate did not block a 3-iteration lead")
	}

	// A straggler pressing the gate loosens it back toward the bound.
	for it := int64(21); it <= 60; it++ {
		d.PlanPull(PullView{Worker: 0, Iter: it, Rows: rows})
		d.PlanPull(PullView{Worker: 1, Iter: it, Rows: rows})
		// worker 2 stays at iteration 20: spread grows with it.
	}
	if got := d.CurrentThreshold(); got != 6 {
		t.Fatalf("straggling team: threshold = %d, want back at the bound 6", got)
	}
	if !d.CanAdvance(4, 1) {
		t.Fatal("loosened gate still blocks a 3-iteration lead")
	}
}

// TestNormalizedPreservesRanking checks normalization rescales mass to
// mean 1 without touching order, and passes zero-mass row sets through.
func TestNormalizedPreservesRanking(t *testing.T) {
	rows := pushRows([]float64{4, 2, 6}, make([]int64, 3))
	out := normalized(rows)
	var sum float64
	for _, r := range out {
		sum += r.MeanAbs
	}
	if diff := sum - 3; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("normalized mass sums to %v, want the row count", sum)
	}
	if out[2].MeanAbs < out[0].MeanAbs || out[0].MeanAbs < out[1].MeanAbs {
		t.Fatal("normalization reordered the masses")
	}
	if rows[0].MeanAbs != 4 {
		t.Fatal("normalized mutated its input")
	}
	zero := normalized(pushRows([]float64{0, 0}, make([]int64, 2)))
	if zero[0].MeanAbs != 0 || zero[1].MeanAbs != 0 {
		t.Fatal("zero-mass rows must pass through")
	}
}
