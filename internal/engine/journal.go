package engine

// Journal receives every state transition that must survive a server
// crash. The durable store implements it with a write-ahead log; State
// calls each hook exactly once per applied transition, after the
// transition has been validated (a deduplicated merge is never journaled)
// and before observers run. A nil Journal costs one pointer check per
// site.
//
// The contract with recovery: replaying the journaled calls, in order, on
// top of the state a snapshot restored reproduces the pre-crash state
// bit-for-bit — so every hook carries exactly the inputs its transition
// consumed, not derived quantities.
type Journal interface {
	// JournalMerge logs one merged row (Merge's inputs, post-dedup).
	JournalMerge(worker, unit int, iter int64, vals []float32)
	// JournalDrain logs zeroing worker's averaged copy of unit (the rows
	// left inside an outbound pull or resync).
	JournalDrain(worker, unit int)
	// JournalRestore logs folding vals back into worker's averaged copy
	// (an undelivered transmission conserving its mass).
	JournalRestore(worker, unit int, vals []float32)
	// JournalDetach logs a membership removal.
	JournalDetach(worker int)
	// JournalAttach logs a membership re-admission (re-baselining is
	// deterministic, so the event alone suffices).
	JournalAttach(worker int)
	// JournalObserve logs one MTA-time tracker report.
	JournalObserve(worker int, seconds float64)
	// JournalLoss logs one loss-accounting update.
	JournalLoss(folded, retransmitted int, retransmitBytes float64)
}
