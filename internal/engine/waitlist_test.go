package engine

import (
	"reflect"
	"testing"
)

// TestWaitListWakeOrderDeterministic parks workers in scrambled order and
// checks that a wake retries them in ascending worker index — the property
// the simnet runtime's bit-for-bit determinism rests on.
func TestWaitListWakeOrderDeterministic(t *testing.T) {
	wl := NewWaitList()
	var order []int
	for _, w := range []int{3, 0, 2, 1} {
		w := w
		wl.Park(w, 10.0, func() bool {
			order = append(order, w)
			return true
		})
	}
	wl.Wake()
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Fatalf("wake order = %v, want %v", order, want)
	}
	if wl.Len() != 0 {
		t.Fatalf("%d workers still parked after everyone resumed", wl.Len())
	}
}

// TestWaitListRetryKeepsBlockedWorkers checks that a retry returning false
// keeps the worker parked (with its original park time) while resumed
// workers leave the list.
func TestWaitListRetryKeepsBlockedWorkers(t *testing.T) {
	wl := NewWaitList()
	resumed := map[int]bool{}
	park := func(w int, ok bool) {
		wl.Park(w, float64(w), func() bool {
			if ok {
				resumed[w] = true
			}
			return ok
		})
	}
	park(0, true)
	park(1, false)
	park(2, true)
	wl.Wake()
	if !resumed[0] || !resumed[2] || resumed[1] {
		t.Fatalf("resumed = %v, want workers 0 and 2 only", resumed)
	}
	if !wl.Parked(1) || wl.Len() != 1 {
		t.Fatalf("worker 1 should remain parked (len=%d)", wl.Len())
	}
	// A later wake that succeeds releases it.
	wl.Drop(1)
	wl.Park(1, 1, func() bool { return true })
	wl.Wake()
	if wl.Len() != 0 {
		t.Fatal("worker 1 never released")
	}
}

// TestWaitListDropPreventsGhostResume drops a crashed worker and checks
// its retry never runs.
func TestWaitListDropPreventsGhostResume(t *testing.T) {
	wl := NewWaitList()
	ran := false
	wl.Park(5, 0, func() bool { ran = true; return true })
	wl.Drop(5)
	wl.Wake()
	if ran {
		t.Fatal("dropped worker's retry ran — a ghost resumed")
	}
	if wl.Parked(5) {
		t.Fatal("dropped worker still parked")
	}
}

// TestWaitListStallAttribution wakes parked workers through the
// attributing path and checks each resumed worker contributes exactly its
// parked duration — the detach-stall accounting of the churn experiment.
func TestWaitListStallAttribution(t *testing.T) {
	wl := NewWaitList()
	// Worker 1 parked at t=10, worker 2 at t=30; the detach wakes at t=50.
	wl.Park(1, 10, func() bool { return true })
	wl.Park(2, 30, func() bool { return true })
	// Worker 3 stays blocked: no stall is attributed for it.
	wl.Park(3, 0, func() bool { return false })
	var stall float64
	wl.WakeAttributing(50, &stall)
	if want := (50.0 - 10) + (50 - 30); stall != want {
		t.Fatalf("attributed stall = %v, want %v", stall, want)
	}
	if !wl.Parked(3) {
		t.Fatal("blocked worker should remain parked")
	}
	// The plain wake attributes nothing.
	wl.Drop(3)
	wl.Park(3, 0, func() bool { return true })
	wl.Wake()
	if stall != 60 {
		t.Fatalf("plain wake changed attribution: %v", stall)
	}
}

// TestWaitListReparkOverwrites re-parks a worker (a retry loop) and checks
// the newest closure and timestamp win.
func TestWaitListReparkOverwrites(t *testing.T) {
	wl := NewWaitList()
	hits := 0
	wl.Park(7, 1, func() bool { hits += 100; return true })
	wl.Park(7, 2, func() bool { hits++; return true })
	var stall float64
	wl.WakeAttributing(5, &stall)
	if hits != 1 {
		t.Fatalf("stale closure ran (hits=%d)", hits)
	}
	if stall != 3 {
		t.Fatalf("stall attributed from stale park time: %v", stall)
	}
}
