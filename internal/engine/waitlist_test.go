package engine

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestWaitListWakeOrderDeterministic parks workers in scrambled order and
// checks that a wake retries them in ascending worker index — the property
// the simnet runtime's bit-for-bit determinism rests on.
func TestWaitListWakeOrderDeterministic(t *testing.T) {
	wl := NewWaitList()
	var order []int
	for _, w := range []int{3, 0, 2, 1} {
		w := w
		wl.Park(w, 10.0, func() bool {
			order = append(order, w)
			return true
		})
	}
	wl.Wake()
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Fatalf("wake order = %v, want %v", order, want)
	}
	if wl.Len() != 0 {
		t.Fatalf("%d workers still parked after everyone resumed", wl.Len())
	}
}

// TestWaitListRetryKeepsBlockedWorkers checks that a retry returning false
// keeps the worker parked (with its original park time) while resumed
// workers leave the list.
func TestWaitListRetryKeepsBlockedWorkers(t *testing.T) {
	wl := NewWaitList()
	resumed := map[int]bool{}
	park := func(w int, ok bool) {
		wl.Park(w, float64(w), func() bool {
			if ok {
				resumed[w] = true
			}
			return ok
		})
	}
	park(0, true)
	park(1, false)
	park(2, true)
	wl.Wake()
	if !resumed[0] || !resumed[2] || resumed[1] {
		t.Fatalf("resumed = %v, want workers 0 and 2 only", resumed)
	}
	if !wl.Parked(1) || wl.Len() != 1 {
		t.Fatalf("worker 1 should remain parked (len=%d)", wl.Len())
	}
	// A later wake that succeeds releases it.
	wl.Drop(1)
	wl.Park(1, 1, func() bool { return true })
	wl.Wake()
	if wl.Len() != 0 {
		t.Fatal("worker 1 never released")
	}
}

// TestWaitListDropPreventsGhostResume drops a crashed worker and checks
// its retry never runs.
func TestWaitListDropPreventsGhostResume(t *testing.T) {
	wl := NewWaitList()
	ran := false
	wl.Park(5, 0, func() bool { ran = true; return true })
	wl.Drop(5)
	wl.Wake()
	if ran {
		t.Fatal("dropped worker's retry ran — a ghost resumed")
	}
	if wl.Parked(5) {
		t.Fatal("dropped worker still parked")
	}
}

// TestWaitListStallAttribution wakes parked workers through the
// attributing path and checks each resumed worker contributes exactly its
// parked duration — the detach-stall accounting of the churn experiment.
func TestWaitListStallAttribution(t *testing.T) {
	wl := NewWaitList()
	// Worker 1 parked at t=10, worker 2 at t=30; the detach wakes at t=50.
	wl.Park(1, 10, func() bool { return true })
	wl.Park(2, 30, func() bool { return true })
	// Worker 3 stays blocked: no stall is attributed for it.
	wl.Park(3, 0, func() bool { return false })
	var stall float64
	wl.WakeAttributing(50, &stall)
	if want := (50.0 - 10) + (50 - 30); stall != want {
		t.Fatalf("attributed stall = %v, want %v", stall, want)
	}
	if !wl.Parked(3) {
		t.Fatal("blocked worker should remain parked")
	}
	// The plain wake attributes nothing.
	wl.Drop(3)
	wl.Park(3, 0, func() bool { return true })
	wl.Wake()
	if stall != 60 {
		t.Fatalf("plain wake changed attribution: %v", stall)
	}
}

// TestWaitListReparkOverwrites re-parks a worker (a retry loop) and checks
// the newest closure and timestamp win.
func TestWaitListReparkOverwrites(t *testing.T) {
	wl := NewWaitList()
	hits := 0
	wl.Park(7, 1, func() bool { hits += 100; return true })
	wl.Park(7, 2, func() bool { hits++; return true })
	var stall float64
	wl.WakeAttributing(5, &stall)
	if hits != 1 {
		t.Fatalf("stale closure ran (hits=%d)", hits)
	}
	if stall != 3 {
		t.Fatalf("stall attributed from stale park time: %v", stall)
	}
}

// TestWaitListConcurrentWakeWait hammers one list the way the sharded
// socket server does: worker goroutines park (and re-park after spurious
// resumes) while several shard goroutines concurrently Wake. Each worker's
// predicate releases when the shared gate reaches its threshold, and must
// resume exactly once — the claim-run-restore protocol in TryResume may run
// a still-blocked retry many times, but a released one can never be run
// twice or lost. Run under -race this is satellite coverage for concurrent
// wake/wait from multiple shard goroutines.
func TestWaitListConcurrentWakeWait(t *testing.T) {
	const (
		workers = 32
		wakers  = 4
	)
	wl := NewWaitList()
	var (
		gate    atomic.Int64
		resumed [workers]atomic.Int32
		done    atomic.Bool
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		w := w
		wl.Park(w, float64(w), func() bool {
			if gate.Load() < int64(w/4) {
				return false
			}
			resumed[w].Add(1)
			return true
		})
	}
	for k := 0; k < wakers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				wl.Wake()
			}
		}()
	}
	for g := int64(0); g <= workers/4; g++ {
		gate.Store(g)
		// Wake from the driver too — a shard merging while others wake.
		wl.Wake()
	}
	// Every predicate is now satisfied; drain whatever the racing wakers
	// have not yet claimed, then stop them.
	for wl.Len() > 0 {
		wl.Wake()
	}
	done.Store(true)
	wg.Wait()

	for w := 0; w < workers; w++ {
		if n := resumed[w].Load(); n != 1 {
			t.Fatalf("worker %d resumed %d times, want exactly once", w, n)
		}
	}
	if wl.Len() != 0 {
		t.Fatalf("%d workers still parked", wl.Len())
	}
}

// TestWaitListConcurrentParkDrop interleaves Park, Drop and Wake across
// goroutines: droppable workers whose predicate never releases must all be
// gone at the end (no ghost entries), while late-parked workers with an
// always-true predicate must all resume.
func TestWaitListConcurrentParkDrop(t *testing.T) {
	const (
		blocked = 16 // parked with a never-true predicate, then dropped
		late    = 16 // parked mid-storm with an always-true predicate
	)
	wl := NewWaitList()
	var (
		resumed [late]atomic.Int32
		done    atomic.Bool
		wgWork  sync.WaitGroup
		wgWake  sync.WaitGroup
	)
	for w := 0; w < blocked; w++ {
		wl.Park(w, 0, func() bool { return false })
	}
	wgWake.Add(1)
	go func() {
		defer wgWake.Done()
		for !done.Load() {
			wl.Wake()
		}
	}()
	wgWork.Add(1)
	go func() {
		defer wgWork.Done()
		for w := 0; w < late; w++ {
			w := w
			wl.Park(blocked+w, 0, func() bool {
				resumed[w].Add(1)
				return true
			})
		}
	}()
	wgWork.Add(1)
	go func() {
		defer wgWork.Done()
		for w := 0; w < blocked; w++ {
			wl.Drop(w)
		}
	}()
	wgWork.Wait()
	done.Store(true)
	wgWake.Wait()

	// The wake storm is over; anything still parked is either a ghost
	// (bug) or a late worker the storm missed (drain it now).
	wl.Wake()
	for w := 0; w < blocked; w++ {
		if wl.Parked(w) {
			t.Fatalf("dropped worker %d still parked", w)
		}
	}
	for w := 0; w < late; w++ {
		if n := resumed[w].Load(); n != 1 {
			t.Fatalf("late worker %d resumed %d times, want exactly once", w, n)
		}
	}
	if wl.Len() != 0 {
		t.Fatalf("%d entries left parked", wl.Len())
	}
}
